// Quickstart: the paper's Figure 2 program, end to end.
//
// Builds a small TPU cluster, allocates virtual devices, traces a program
// of three compiled functions (y = b(a(v)), z = a(c(a(v)))), runs it under
// the gang scheduler, and prints what happened.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

int main() {
  using namespace pw;
  using namespace pw::pathways;

  // A small pod: 1 island, 2 hosts, 4 TPUs each.
  sim::Simulator sim;
  auto cluster = std::make_unique<hw::Cluster>(
      &sim, hw::SystemParams::TpuDefault(), /*islands=*/1, /*hosts=*/2,
      /*devices_per_host=*/4);
  PathwaysRuntime runtime(cluster.get(), PathwaysOptions{});
  Client* client = runtime.CreateClient();

  // Fig. 2: get_devices(2) — a virtual slice of two TPUs.
  VirtualSlice slice = client->AllocateSlice(2).value();
  std::printf("allocated a 2-device virtual slice on island %lld\n",
              static_cast<long long>(slice.island.value()));

  // Three compiled functions (x*2, x+1, x/2 in the paper; here synthetic
  // kernels with known shapes, times and a gang collective).
  auto a = xlasim::CompiledFunction::Synthetic(
      "a:mul2", 2, Duration::Micros(50), net::CollectiveKind::kAllReduce, 8);
  auto b = xlasim::CompiledFunction::Synthetic("b:add1", 2, Duration::Micros(50));
  auto c = xlasim::CompiledFunction::Synthetic("c:div2", 2, Duration::Micros(50));

  // @pw.program — trace f(v): x = a(v); y = b(x); z = a(c(x)).
  ProgramBuilder pb("f");
  ValueRef v = pb.Argument();
  ValueRef x = pb.Call(a, slice, {v});
  ValueRef y = pb.Call(b, slice, {x});
  ValueRef z = pb.Call(a, slice, {pb.Call(c, slice, {x})});
  pb.Result(y);
  pb.Result(z);
  PathwaysProgram program = std::move(pb).Build();
  std::printf("traced program '%s': %d nodes, %zu results (compact: node "
              "count is independent of shard count)\n",
              program.name().c_str(), program.num_nodes(),
              program.results().size());

  // Stage the input and run.
  ShardedBuffer input = client->TransferToDevice(slice, KiB(4));
  auto result = client->Run(&program, {input});
  sim.Run();  // drive the simulated world to quiescence

  std::printf("program finished at t=%.1f us, outputs: %zu sharded buffers\n",
              sim.now().ToMicros(), result.value().outputs.size());
  for (const auto& out : result.value().outputs) {
    std::printf("  buffer %lld: %d shards x %lld bytes (device-resident)\n",
                static_cast<long long>(out.id.value()), out.num_shards(),
                static_cast<long long>(out.shards[0].bytes));
  }
  std::printf("kernels executed on dev0: %lld; deadlocked: %s\n",
              static_cast<long long>(cluster->device(0).kernels_completed()),
              sim.Deadlocked() ? "yes" : "no");
  return 0;
}
