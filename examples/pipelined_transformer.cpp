// Pipelined Transformer training (the paper's §5.3 / Table 2 workload).
//
// Builds the 3B-parameter decoder-only LM, splits it into 4 balanced GPipe
// stages on 4 slices of a 32-core pod, runs a few training steps, and
// reports step time, tokens/s, and the pipeline-bubble overhead versus the
// ideal.
//
//   $ ./examples/pipelined_transformer
#include <cstdio>
#include <memory>
#include <vector>

#include "hw/cluster.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"

int main() {
  using namespace pw;
  using namespace pw::pathways;
  constexpr int kStages = 4;
  constexpr int kMicroBatches = 16;

  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/4);  // 32 TPUs
  PathwaysOptions options;
  options.max_inflight_gangs = 4 * kStages * kMicroBatches;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();

  models::TransformerConfig config = models::TransformerConfig::Decoder3B();
  config.tokens_per_batch /= 4;  // quarter pod, quarter batch
  models::StepBuilder builder(config, cluster->params());

  std::printf("model: %s, %.2fB params, %lld layers\n", config.name.c_str(),
              static_cast<double>(config.TotalParams()) / 1e9,
              static_cast<long long>(config.num_layers));
  const auto counts = builder.StageLayerCounts(kStages);
  std::printf("stage layer counts (edges freed for embed/softmax):");
  for (int c : counts) std::printf(" %d", c);
  std::printf("\n");

  std::vector<VirtualSlice> slices;
  for (int s = 0; s < kStages; ++s) {
    slices.push_back(client->AllocateSlice(32 / kStages).value());
  }
  PathwaysProgram program = builder.BuildGPipeProgram(
      slices, kMicroBatches, cluster->island(0).collectives());
  std::printf("GPipe step program: %d nodes (%d fwd + %d bwd + %d updates)\n",
              program.num_nodes(), kStages * kMicroBatches,
              kStages * kMicroBatches, kStages);

  const auto m =
      models::MeasureTraining(client, &program, config.tokens_per_batch, 4);
  const Duration ideal = builder.ComputeTime(32, /*model_parallel=*/8);
  std::printf("step time: %.1f ms  (ideal compute %.1f ms, bubble+overhead "
              "%.1f%%)\n",
              m.step_time.ToMillis(), ideal.ToMillis(),
              100.0 * (m.step_time / ideal - 1.0));
  std::printf("throughput: %.1fk tokens/s\n", m.tokens_per_sec / 1e3);
  std::printf("GPipe bubble bound: (M+S-1)/M = %.3f\n",
              static_cast<double>(kMicroBatches + kStages - 1) / kMicroBatches);
  return 0;
}
