// Failover training walkthrough: a training loop that survives a device
// crash mid-run.
//
// A client trains an AllReduce step over half of an 8-device island via
// Client::RunWithRetry. At t=2 ms (simulated), one of its gang's devices
// crashes for 5 ms: the in-flight step aborts (peers parked at the
// rendezvous are released), the resource manager remaps the dead device's
// virtual device onto an island spare, and the client's retry resubmits the
// re-lowered step. The run prints the visible timeline and the injector's
// recovery stats.
//
// Build & run:  cmake --build build --target failover_training &&
//               ./build/failover_training
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"

using namespace pw;
using pathways::Client;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;

int main() {
  sim::Simulator sim;
  auto cluster = std::make_unique<hw::Cluster>(
      &sim, hw::SystemParams::TpuDefault(), /*islands=*/1,
      /*hosts_per_island=*/2, /*devices_per_host=*/4);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  Client* client = runtime.CreateClient();

  auto slice = client->AllocateSlice(4).value();
  auto step_fn = xlasim::CompiledFunction::Synthetic(
      "train_step", 4, Duration::Micros(400), net::CollectiveKind::kAllReduce,
      MiB(1));
  ProgramBuilder pb("train");
  pb.Call(step_fn, slice, {});
  PathwaysProgram step = std::move(pb).Build();

  // Crash the physical device backing the slice's first shard at t=2ms,
  // recovering 5ms later.
  const hw::DeviceId victim =
      runtime.resource_manager().Lookup(slice.devices[0].id);
  faults::FaultPlan plan;
  plan.CrashDevice(victim, TimePoint() + Duration::Millis(2),
                   /*down_for=*/Duration::Millis(5));
  faults::FaultInjector injector(cluster.get(), &runtime, plan);
  injector.Arm();
  std::printf("fault plan:\n  %s\n\n", plan.events()[0].ToString().c_str());

  pathways::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = Duration::Micros(500);

  std::printf("%-6s %-12s %-10s %s\n", "step", "t_start(ms)", "t_end(ms)",
              "outcome");
  for (int i = 0; i < 8; ++i) {
    const TimePoint begin = sim.now();
    auto result = client->RunWithRetry(&step, {}, policy);
    sim.RunUntilPredicate([&result] { return result.ready(); });
    const auto& r = result.value();
    std::printf("%-6d %-12.3f %-10.3f %s%s\n", i, begin.ToMillis(),
                sim.now().ToMillis(), r.failed ? "FAILED" : "ok",
                r.attempts > 1
                    ? (" (after " + std::to_string(r.attempts) + " attempts)")
                          .c_str()
                    : "");
  }
  sim.Run();  // drain the recovery event

  const faults::FaultStats& stats = injector.stats();
  std::printf(
      "\ndevice failures: %lld (recovered %lld), executions aborted: %lld, "
      "client retries: %lld\n",
      static_cast<long long>(stats.device_failures),
      static_cast<long long>(stats.device_recoveries),
      static_cast<long long>(stats.executions_aborted),
      static_cast<long long>(client->retries()));
  std::printf("recovery latency: %.1f us (crash -> next successful step)\n",
              stats.recovery_latency_us.mean());
  std::printf("victim dev%lld remapped -> dev%lld; back in service: %s\n",
              static_cast<long long>(victim.value()),
              static_cast<long long>(
                  runtime.resource_manager().Lookup(slice.devices[0].id).value()),
              runtime.resource_manager().in_service(victim) ? "yes" : "no");
  return 0;
}
