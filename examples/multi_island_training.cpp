// Training across islands over the datacenter network (paper §5.3,
// Fig. 12): data-parallel replicas on two islands exchange gradients over
// the DCN in chunks overlapped with the backward pass.
//
// Also demonstrates dynamic resource management: mid-run, a device is
// drained and the resource manager transparently remaps its virtual device
// before the next step is lowered.
//
//   $ ./examples/multi_island_training
#include <cstdio>
#include <memory>
#include <vector>

#include "hw/cluster.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"

int main() {
  using namespace pw;
  using namespace pw::pathways;

  sim::Simulator sim;
  // Two islands of 2 hosts x 8 TPUs each.
  auto cluster = std::make_unique<hw::Cluster>(
      &sim, hw::SystemParams::TpuDefault(), /*islands=*/2, /*hosts=*/2,
      /*devices_per_host=*/8);
  PathwaysRuntime runtime(cluster.get(), PathwaysOptions{});
  Client* client = runtime.CreateClient();

  models::TransformerConfig config = models::TransformerConfig::Decoder3B();
  config.tokens_per_batch /= 8;
  models::StepBuilder builder(config, cluster->params());

  // 12 of each island's 16 devices: the spare capacity is what lets the
  // resource manager remap around a drained device later.
  std::vector<VirtualSlice> slices;
  slices.push_back(client->AllocateSlice(12, hw::IslandId(0)).value());
  slices.push_back(client->AllocateSlice(12, hw::IslandId(1)).value());
  PathwaysProgram program = builder.BuildMultiIslandStep(
      slices, /*chunks=*/4, cluster->island(0).collectives());
  std::printf("two-island data-parallel step: %d nodes "
              "(4 gradient chunks per island + 2 applies)\n",
              program.num_nodes());

  const auto before = models::MeasureTraining(client, &program,
                                              config.tokens_per_batch, 3);
  std::printf("step time: %.1f ms, %.1fk tokens/s, DCN traffic so far: "
              "%.2f GiB\n",
              before.step_time.ToMillis(), before.tokens_per_sec / 1e3,
              static_cast<double>(cluster->dcn().bytes_sent()) / (1 << 30));

  // Drain a physical device; the virtual device remaps and the next steps
  // re-lower against the new placement with no client-side changes.
  const hw::DeviceId victim =
      runtime.resource_manager().Lookup(slices[0].devices[0].id);
  PW_CHECK_OK(runtime.resource_manager().RemoveDevice(victim));
  const hw::DeviceId replacement =
      runtime.resource_manager().Lookup(slices[0].devices[0].id);
  std::printf("drained dev%lld; virtual device remapped to dev%lld\n",
              static_cast<long long>(victim.value()),
              static_cast<long long>(replacement.value()));

  const auto after = models::MeasureTraining(client, &program,
                                             config.tokens_per_batch, 3);
  std::printf("after remap: step time %.1f ms, %.1fk tokens/s (training "
              "continued transparently)\n",
              after.step_time.ToMillis(), after.tokens_per_sec / 1e3);
  return 0;
}
