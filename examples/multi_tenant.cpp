// Multi-tenant serving: several clients share one pod under the gang
// scheduler with proportional-share weights (paper §5.2, Figs. 8/9).
//
// Three clients with weights 1 / 2 / 4 run continuous inference-style
// programs; the example prints each client's achieved device-time share and
// an ASCII slice of the execution trace showing millisecond-scale
// interleaving with no context-switch overhead.
//
//   $ ./examples/multi_tenant
#include <cstdio>
#include <memory>
#include <vector>

#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

int main() {
  using namespace pw;
  using namespace pw::pathways;

  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/2);  // 16 TPUs
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;
  PathwaysRuntime runtime(cluster.get(), options);

  const std::vector<double> weights = {1, 2, 4};
  struct Loop {
    Client* client;
    PathwaysProgram* prog;
    PathwaysRuntime* rt;
    std::int64_t served = 0;
    void Go() {
      client->Run(prog).Then([this](const ExecutionResult& r) {
        ++served;
        for (const auto& out : r.outputs) rt->object_store().Release(out.id);
        Go();
      });
    }
  };
  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  std::vector<std::unique_ptr<Loop>> loops;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    Client* client = runtime.CreateClient(weights[i]);
    auto slice = client->AllocateSlice(cluster->num_devices()).value();
    // An inference "batch": matmul-heavy kernel with a gather collective.
    ProgramBuilder pb("serve" + std::to_string(i));
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "infer", cluster->num_devices(), Duration::Micros(400),
                net::CollectiveKind::kAllGather, KiB(64)),
            slice, {});
    programs.push_back(std::make_unique<PathwaysProgram>(std::move(pb).Build()));
    // Four programs in flight per client keep its scheduler queue non-empty
    // so the stride policy can express the weights.
    for (int k = 0; k < 4; ++k) {
      loops.push_back(std::make_unique<Loop>(
          Loop{client, programs.back().get(), &runtime}));
      loops.back()->Go();
    }
  }

  sim.RunUntil(TimePoint() + Duration::Millis(60));

  const TimePoint t0 = TimePoint() + Duration::Millis(10);
  const TimePoint t1 = TimePoint() + Duration::Millis(60);
  auto busy = cluster->trace().BusyPerClient(t0, t1);
  double total = 0;
  for (const auto& [c, d] : busy) total += d.ToSeconds();
  std::printf("%8s %8s %14s %10s %10s\n", "client", "weight", "batches",
              "share", "target");
  double wsum = 0;
  for (double w : weights) wsum += w;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    std::int64_t served = 0;
    for (int k = 0; k < 4; ++k) {
      served += loops[4 * i + static_cast<std::size_t>(k)]->served;
    }
    std::printf("%8zu %8.0f %14lld %9.1f%% %9.1f%%\n", i, weights[i],
                static_cast<long long>(served),
                100.0 * busy[static_cast<std::int64_t>(i)].ToSeconds() / total,
                100.0 * weights[i] / wsum);
  }
  std::printf("\npod utilization: %.1f%%\n",
              100.0 * cluster->trace().MeanUtilization(t0, t1));
  std::printf("\ntrace slice (digit = client, '.' = idle):\n%s",
              cluster->trace()
                  .RenderAscii(t0, t0 + Duration::Millis(5), 96, 4)
                  .c_str());
  return 0;
}
