// Open-loop multi-tenant serving with the workload traffic engine.
//
// Three tenants share one 16-core pod under the weighted-stride gang
// scheduler (weights 1 / 2 / 4). Tenant 0 sends smooth Poisson traffic,
// tenant 1 sends the same mean rate in bursts of 8, and tenant 2 is a
// closed loop of 4 synchronous callers. Offered load exceeds capacity, so
// the bounded admission queues shed; the run prints each tenant's goodput
// share next to its weight fraction, latency percentiles, and shed counts.
//
//   $ ./examples/open_loop_serving
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "workload/workload.h"
#include "xlasim/compiled_function.h"

int main() {
  using namespace pw;
  using namespace pw::pathways;
  using namespace pw::workload;

  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/2);  // 16 TPUs
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;
  PathwaysRuntime runtime(cluster.get(), options);

  const std::vector<double> weights = {1, 2, 4};
  const int shards = cluster->num_devices();
  const Duration horizon = Duration::Millis(120);

  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  std::vector<Client*> clients;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    Client* client = runtime.CreateClient(weights[i]);
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("serve" + std::to_string(i));
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "infer", shards, Duration::Micros(400),
                net::CollectiveKind::kAllGather, KiB(64)),
            slice, {});
    programs.push_back(std::make_unique<PathwaysProgram>(std::move(pb).Build()));
    clients.push_back(client);
  }

  AdmissionOptions admission;
  admission.capacity = 32;
  admission.max_outstanding = 2;
  admission.policy = ShedPolicy::kDropTail;

  // Tenant 0: smooth Poisson open loop, well past its fair share.
  OpenLoopSpec poisson;
  poisson.process = ArrivalProcess::kPoisson;
  poisson.rate_per_sec = 2000;
  poisson.horizon = horizon;
  poisson.seed = 1;
  OpenLoopGenerator t0(clients[0], programs[0].get(), poisson, admission);

  // Tenant 1: same mean rate, arriving in bursts of 8.
  OpenLoopSpec bursty = poisson;
  bursty.process = ArrivalProcess::kBurst;
  bursty.burst_size = 8;
  bursty.burst_gap = Duration::Micros(20);
  bursty.seed = 2;
  OpenLoopGenerator t1(clients[1], programs[1].get(), bursty, admission);

  // Tenant 2: four synchronous callers in a closed loop.
  ClosedLoopSpec closed;
  closed.concurrency = 4;
  closed.horizon = horizon;
  ClosedLoopGenerator t2(clients[2], programs[2].get(), closed);

  t0.Start();
  t1.Start();
  t2.Start();
  sim.Run();  // arrivals stop at the horizon, then the queues drain

  LatencyRecorder* recorders[] = {&t0.recorder(), &t1.recorder(),
                                  &t2.recorder()};
  const char* kinds[] = {"poisson", "burst", "closed(4)"};
  double wsum = 0, total = 0;
  for (double w : weights) wsum += w;
  for (auto* r : recorders) total += static_cast<double>(r->completions());

  std::printf("%7s %10s %8s %8s %8s %9s %9s %9s %7s\n", "tenant", "traffic",
              "weight", "share", "target", "p50(us)", "p99(us)", "served",
              "shed");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    LatencyRecorder& r = *recorders[i];
    std::printf("%7zu %10s %8.0f %7.1f%% %7.1f%% %9.0f %9.0f %9lld %7lld\n",
                i, kinds[i], weights[i],
                100.0 * static_cast<double>(r.completions()) / total,
                100.0 * weights[i] / wsum, r.LatencyUs(50), r.LatencyUs(99),
                static_cast<long long>(r.completions()),
                static_cast<long long>(r.sheds()));
  }
  std::printf("\npod utilization: %.1f%%   stride pass rebases: %lld   "
              "deadlocked: %s\n",
              100.0 * cluster->trace().MeanUtilization(
                          TimePoint(), TimePoint() + horizon),
              static_cast<long long>(runtime.total_pass_rebases()),
              sim.Deadlocked() ? "yes" : "no");
  return sim.Deadlocked() ? 1 : 0;
}
