// pwsim — the declarative scenario CLI (docs/SCENARIOS.md).
//
//   pwsim validate <file>...     schema + family validation, clang-style
//                                diagnostics, non-zero exit on any error
//   pwsim run <name|file>        lower a scenario through SweepRunner and
//                                write BENCH_<name>.json
//   pwsim query --select <glob>  path-addressed lookup over BENCH_*.json
//   pwsim dump <name|file>       canonical serialization to stdout
//   pwsim families               list registered measurement families
//
// Scenario arguments that name no existing file and contain no '/' resolve
// through ScenarioDir() (default <repo>/scenarios, override with
// $PWSIM_SCENARIO_DIR).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "scenario/result_store.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sweep/result_table.h"

namespace {

using namespace pw;
using scenario::DiagnosticEngine;
using scenario::ResultStore;
using scenario::Scenario;

int Usage(FILE* out) {
  std::fprintf(out,
               "pwsim — declarative scenario runner for the Pathways "
               "simulator\n"
               "\n"
               "usage:\n"
               "  pwsim validate <scenario.json>...\n"
               "      Parse + schema-check + family-check each file; prints\n"
               "      clang-style diagnostics; exit 1 if any file fails.\n"
               "  pwsim run <name|file> [--quick] [--threads N] [--out DIR]\n"
               "                        [--sim-threads N] [--no-determinism]\n"
               "                        [--dry-run]\n"
               "      Run the scenario's sweep and write BENCH_<name>.json\n"
               "      (--dry-run: validate and list grid points only;\n"
               "      --sim-threads: per-point partitioned-engine threads,\n"
               "      sweep workers become threads / sim-threads).\n"
               "  pwsim query --select <glob> [--dir DIR]\n"
               "      Print 'path value' for every result matching the\n"
               "      glob (segments split on '/'; * ? within a segment,\n"
               "      ** across segments), loaded from DIR's BENCH_*.json\n"
               "      (default: current directory). The glob may be\n"
               "      prefixed with an aggregation — 'p99 over <glob>',\n"
               "      also min/max/mean/sum/count/pNN — to reduce all\n"
               "      matches to one number.\n"
               "  pwsim dump <name|file>\n"
               "      Print the canonical serialization (the parse ->\n"
               "      serialize -> parse fixed point).\n"
               "  pwsim families\n"
               "      List measurement families and their sweep axes.\n");
  return out == stderr ? 2 : 0;
}

// <name> -> ScenarioDir()/<name>.json unless it already names a file.
std::string ResolveScenarioPath(const std::string& arg) {
  if (arg.find('/') != std::string::npos ||
      (arg.size() > 5 && arg.substr(arg.size() - 5) == ".json")) {
    return arg;
  }
  std::ifstream probe(arg);
  if (probe.good()) return arg;
  return scenario::DefaultScenarioPath(arg);
}

bool LoadAndValidate(const std::string& path, Scenario* s,
                     DiagnosticEngine* diags) {
  if (!scenario::LoadScenarioFile(path, s, diags)) return false;
  return scenario::ValidateForFamily(s, diags);
}

int CmdValidate(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "pwsim validate: no files given\n");
    return 2;
  }
  int failures = 0;
  for (const std::string& arg : files) {
    const std::string path = ResolveScenarioPath(arg);
    Scenario s;
    DiagnosticEngine diags;
    if (LoadAndValidate(path, &s, &diags)) {
      // Valid files can still carry notes (e.g. deprecation warnings).
      if (!diags.diagnostics().empty()) {
        std::fputs(diags.Render().c_str(), stdout);
      }
      std::printf("%s: OK (family %s, %zu axes)\n", path.c_str(),
                  s.family.c_str(), s.sweep.size());
    } else {
      std::fputs(diags.Render().c_str(), stderr);
      ++failures;
    }
  }
  return failures > 0 ? 1 : 0;
}

int CmdRun(const std::vector<std::string>& args) {
  std::string target;
  scenario::RunOptions opts;
  bool dry_run = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--quick") {
      opts.quick = true;
    } else if (a == "--no-determinism") {
      opts.check_determinism = false;
    } else if (a == "--dry-run") {
      dry_run = true;
    } else if (a == "--threads" && i + 1 < args.size()) {
      opts.threads = std::atoi(args[++i].c_str());
    } else if (a == "--sim-threads" && i + 1 < args.size()) {
      opts.sim_threads = std::atoi(args[++i].c_str());
    } else if (a == "--out" && i + 1 < args.size()) {
      opts.out_dir = args[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "pwsim run: unknown flag '%s'\n", a.c_str());
      return Usage(stderr);
    } else if (target.empty()) {
      target = a;
    } else {
      std::fprintf(stderr, "pwsim run: more than one scenario given\n");
      return Usage(stderr);
    }
  }
  if (target.empty()) {
    std::fprintf(stderr, "pwsim run: no scenario given\n");
    return Usage(stderr);
  }

  const std::string path = ResolveScenarioPath(target);
  Scenario s;
  DiagnosticEngine diags;
  if (!LoadAndValidate(path, &s, &diags)) {
    std::fputs(diags.Render().c_str(), stderr);
    return 1;
  }

  const sweep::ParamGrid grid = s.Grid(opts.quick);
  const auto points = grid.Points();
  if (dry_run) {
    std::printf("%s: family %s, %zu points%s\n", s.name.c_str(),
                s.family.c_str(), points.size(),
                opts.quick ? " (quick)" : "");
    for (const auto& p : points) {
      std::printf("  %s\n", p.Label().c_str());
    }
    return 0;
  }

  scenario::RunResult result;
  std::string error;
  if (!scenario::RunScenario(s, opts, &result, &error)) {
    std::fprintf(stderr, "pwsim run: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %zu points%s\n", s.name.c_str(), result.points.size(),
              opts.quick ? " (quick)" : "");
  for (const auto& [key, value] : result.summary) {
    std::printf("  %-28s %.6g\n", key.c_str(), value);
  }
  if (!result.json_path.empty()) {
    std::printf("wrote %s\n", result.json_path.c_str());
  }
  return 0;
}

// Shortest printf form of `v` that strtod-round-trips.
std::string RoundTripNumber(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

int CmdQuery(const std::vector<std::string>& args) {
  std::string select;
  std::string dir = ".";
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--select" && i + 1 < args.size()) {
      select = args[++i];
    } else if (a == "--dir" && i + 1 < args.size()) {
      dir = args[++i];
    } else {
      std::fprintf(stderr, "pwsim query: unknown argument '%s'\n", a.c_str());
      return Usage(stderr);
    }
  }
  if (select.empty()) {
    std::fprintf(stderr, "pwsim query: --select <glob> is required\n");
    return Usage(stderr);
  }
  ResultStore store;
  std::string error;
  const int loaded = store.LoadDir(dir, &error);
  if (loaded < 0) {
    std::fprintf(stderr, "pwsim query: %s\n", error.c_str());
    return 1;
  }
  if (loaded == 0) {
    std::fprintf(stderr, "pwsim query: no BENCH_*.json files in %s\n",
                 dir.c_str());
    return 1;
  }
  if (const auto agg = ResultStore::ParseAggregation(select)) {
    const auto value = store.Aggregate(*agg);
    if (!value.has_value()) {
      std::fprintf(stderr, "pwsim query: no results match '%s'\n",
                   agg->glob.c_str());
      return 1;
    }
    std::printf("%s\n", RoundTripNumber(*value).c_str());
    return 0;
  }

  const auto matches = store.Select(select);
  for (const auto& e : matches) {
    // Shortest round-trip form, same as the files themselves.
    std::printf("%s %s\n", e.path.c_str(), RoundTripNumber(e.value).c_str());
  }
  if (matches.empty()) {
    std::fprintf(stderr, "pwsim query: no results match '%s'\n",
                 select.c_str());
    return 1;
  }
  return 0;
}

int CmdDump(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    std::fprintf(stderr, "pwsim dump: expected exactly one scenario\n");
    return 2;
  }
  const std::string path = ResolveScenarioPath(args[0]);
  Scenario s;
  DiagnosticEngine diags;
  if (!LoadAndValidate(path, &s, &diags)) {
    std::fputs(diags.Render().c_str(), stderr);
    return 1;
  }
  std::fputs(s.Serialize().c_str(), stdout);
  return 0;
}

int CmdFamilies() {
  for (const std::string& name : scenario::FamilyNames()) {
    const scenario::Family* f = scenario::FindFamily(name);
    std::printf("%s — %s\n", f->name.c_str(), f->description.c_str());
    for (const auto& axis : f->axes) {
      std::printf("  axis %-18s %s\n", axis.name.c_str(),
                  scenario::AxisKindName(axis.kind));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  const std::string cmd = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (cmd == "validate") return CmdValidate(rest);
  if (cmd == "run") return CmdRun(rest);
  if (cmd == "query") return CmdQuery(rest);
  if (cmd == "dump") return CmdDump(rest);
  if (cmd == "families") return CmdFamilies();
  if (cmd == "--help" || cmd == "-h" || cmd == "help") return Usage(stdout);
  std::fprintf(stderr, "pwsim: unknown command '%s'\n", cmd.c_str());
  return Usage(stderr);
}
