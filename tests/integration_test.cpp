// Cross-module integration scenarios: whole-system behaviours that no
// single module test covers — failure mid-flight, mixed tenancy across
// islands, policy comparisons, and end-to-end accounting invariants.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/jax_mc.h"
#include "baselines/pathways_driver.h"
#include "hw/cluster.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"

namespace pw {
namespace {

using pathways::Client;
using pathways::ExecutionResult;
using pathways::PathwaysOptions;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::SchedulerPolicy;
using pathways::ValueRef;
using xlasim::CompiledFunction;

struct IntWorld {
  IntWorld(int islands, int hosts, int devs, PathwaysOptions options = {}) {
    hw::SystemParams params;
    params.host_jitter_frac = 0;
    cluster = std::make_unique<hw::Cluster>(&sim, params, islands, hosts, devs);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
  }
  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
};

// ----------------------------------------------------------------------- //

TEST(IntegrationTest, HbmFullyReclaimedAfterManyPrograms) {
  // Accounting invariant: after N programs complete and their results are
  // released, every device's HBM usage returns to exactly zero.
  IntWorld w(1, 2, 4);
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(8).value();
  auto fn = CompiledFunction::Synthetic("step", 8, Duration::Micros(200),
                                        net::CollectiveKind::kAllReduce, KiB(4),
                                        MiB(16));
  ProgramBuilder pb("p");
  ValueRef v = pb.Call(fn, slice, {});
  v = pb.Call(fn, slice, {v});
  pb.Result(v);
  PathwaysProgram prog = std::move(pb).Build();
  for (int i = 0; i < 10; ++i) {
    auto r = client->Run(&prog);
    w.sim.RunUntilPredicate([&r] { return r.ready(); });
    for (const auto& out : r.value().outputs) {
      w.runtime->object_store().Release(out.id);
    }
  }
  w.sim.Run();
  for (int d = 0; d < w.cluster->num_devices(); ++d) {
    EXPECT_EQ(w.cluster->device(d).hbm().used(), 0) << "device " << d;
  }
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 0);
}

TEST(IntegrationTest, FifoAndStrideBothCompleteIdenticalWork) {
  // Policy must not change *what* executes, only the order/fairness.
  auto run = [](SchedulerPolicy policy) {
    PathwaysOptions options;
    options.policy = policy;
    IntWorld w(1, 2, 4, options);
    std::int64_t done = 0;
    std::vector<std::unique_ptr<PathwaysProgram>> programs;
    for (int c = 0; c < 3; ++c) {
      Client* client = w.runtime->CreateClient(1.0 + c);
      auto slice = client->AllocateSlice(8).value();
      ProgramBuilder pb("p");
      pb.Call(CompiledFunction::Synthetic("op", 8, Duration::Micros(100),
                                          net::CollectiveKind::kAllReduce, 16),
              slice, {});
      programs.push_back(
          std::make_unique<PathwaysProgram>(std::move(pb).Build()));
      for (int k = 0; k < 5; ++k) {
        client->Run(programs.back().get())
            .Then([&done](const ExecutionResult&) { ++done; });
      }
    }
    w.sim.Run();
    return done;
  };
  EXPECT_EQ(run(SchedulerPolicy::kFifo), 15);
  EXPECT_EQ(run(SchedulerPolicy::kWeightedStride), 15);
}

TEST(IntegrationTest, ClientFailureDoesNotDisturbOtherTenants) {
  // A client's buffers are GC'd while another tenant keeps training.
  IntWorld w(1, 2, 4);
  Client* victim = w.runtime->CreateClient();
  Client* survivor = w.runtime->CreateClient();
  auto vs = victim->AllocateSlice(4).value();
  auto ss = survivor->AllocateSlice(4).value();
  pathways::ShardedBuffer leak = victim->TransferToDevice(vs, MiB(64));
  w.sim.Run();
  ASSERT_GT(w.runtime->object_store().hbm_used(leak.shards[0].device), 0);

  auto fn = CompiledFunction::Synthetic("train", 4, Duration::Micros(300),
                                        net::CollectiveKind::kAllReduce, 64);
  ProgramBuilder pb("p");
  pb.Call(fn, ss, {});
  PathwaysProgram prog = std::move(pb).Build();
  auto r1 = survivor->Run(&prog);
  w.sim.RunFor(Duration::Micros(50));
  w.runtime->FailClient(victim->id());  // mid-flight GC
  w.sim.Run();
  EXPECT_TRUE(r1.ready());
  EXPECT_EQ(w.runtime->object_store().hbm_used(leak.shards[0].device), 0);
  auto r2 = survivor->Run(&prog);
  w.sim.Run();
  EXPECT_TRUE(r2.ready());
}

TEST(IntegrationTest, MixedIslandTenancy) {
  // Two tenants on different islands run concurrently with no cross-talk;
  // a third spans both islands with a pipeline.
  IntWorld w(/*islands=*/2, 2, 4);
  Client* a = w.runtime->CreateClient();
  Client* b = w.runtime->CreateClient();
  Client* spanner = w.runtime->CreateClient();
  auto slice_a = a->AllocateSlice(4, hw::IslandId(0)).value();
  auto slice_b = b->AllocateSlice(4, hw::IslandId(1)).value();
  auto span0 = spanner->AllocateSlice(4, hw::IslandId(0)).value();
  auto span1 = spanner->AllocateSlice(4, hw::IslandId(1)).value();

  auto fn = CompiledFunction::Synthetic("op", 4, Duration::Micros(200),
                                        net::CollectiveKind::kAllReduce, 64);
  ProgramBuilder pba("pa");
  pba.Call(fn, slice_a, {});
  ProgramBuilder pbb("pb");
  pbb.Call(fn, slice_b, {});
  ProgramBuilder pbs("span");
  pbs.Result(pbs.Call(fn, span1, {pbs.Call(fn, span0, {})}));
  PathwaysProgram pa = std::move(pba).Build();
  PathwaysProgram pb2 = std::move(pbb).Build();
  PathwaysProgram ps = std::move(pbs).Build();

  auto ra = a->Run(&pa);
  auto rb = b->Run(&pb2);
  auto rs = spanner->Run(&ps);
  w.sim.Run();
  EXPECT_TRUE(ra.ready());
  EXPECT_TRUE(rb.ready());
  EXPECT_TRUE(rs.ready());
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(IntegrationTest, TrainingSurvivesDeviceDrainMidRun) {
  // Drain a device between steps; the next lowering transparently remaps
  // (requires spare capacity on the island).
  IntWorld w(1, 2, 4);
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(6).value();  // 2 spares
  models::TransformerConfig tiny = models::TransformerConfig::Decoder3B();
  tiny.num_layers = 6;
  tiny.tokens_per_batch = 1 << 12;
  models::StepBuilder builder(tiny, w.cluster->params());
  ProgramBuilder pb("step");
  pb.Call(builder.SpmdStepFunction(6, w.cluster->island(0).collectives(),
                                   /*model_parallel=*/6),
          slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  auto r1 = client->Run(&prog);
  w.sim.RunUntilPredicate([&r1] { return r1.ready(); });
  w.runtime->object_store().Release(r1.value().outputs[0].id);

  const hw::DeviceId victim =
      w.runtime->resource_manager().Lookup(slice.devices[0].id);
  ASSERT_TRUE(w.runtime->resource_manager().RemoveDevice(victim).ok());

  auto r2 = client->Run(&prog);
  w.sim.Run();
  ASSERT_TRUE(r2.ready());
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(IntegrationTest, PathwaysMatchesJaxOnFusedWorkAcrossScales) {
  // The paper's core claim, swept across cluster sizes as a property.
  for (const int hosts : {2, 4, 16}) {
    sim::Simulator sim_jax;
    auto cluster_jax = hw::Cluster::ConfigA(&sim_jax, hosts);
    baselines::JaxMultiController jax(cluster_jax.get());
    baselines::MicrobenchSpec spec;
    spec.mode = baselines::CallMode::kFused;
    spec.chain_length = 128;
    spec.unit_compute = Duration::Micros(5);
    spec.warmup = Duration::Millis(20);
    spec.measure = Duration::Millis(200);
    const double jax_rate = jax.Measure(spec).computations_per_sec;

    sim::Simulator sim_pw;
    auto cluster_pw = hw::Cluster::ConfigA(&sim_pw, hosts);
    baselines::PathwaysDriver pw_driver(cluster_pw.get());
    const double pw_rate = pw_driver.Measure(spec).computations_per_sec;

    EXPECT_GT(pw_rate, 0.8 * jax_rate) << hosts << " hosts";
    EXPECT_LT(pw_rate, 1.3 * jax_rate) << hosts << " hosts";
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // Identical seeds => bit-identical simulated timelines, even through the
  // full runtime stack.
  auto run = [] {
    IntWorld w(1, 4, 4);
    Client* client = w.runtime->CreateClient();
    auto slice = client->AllocateSlice(16).value();
    auto fn = CompiledFunction::Synthetic("op", 16, Duration::Micros(77),
                                          net::CollectiveKind::kAllReduce, 32);
    ProgramBuilder pb("p");
    ValueRef v = pb.Call(fn, slice, {});
    pb.Result(pb.Call(fn, slice, {v}));
    PathwaysProgram prog = std::move(pb).Build();
    for (int i = 0; i < 5; ++i) {
      auto r = client->Run(&prog);
      w.sim.RunUntilPredicate([&r] { return r.ready(); });
      w.runtime->object_store().Release(r.value().outputs[0].id);
    }
    return w.sim.now().nanos();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pw
