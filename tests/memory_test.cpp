// Unit coverage for the src/memory spill subsystem: host-DRAM accounting,
// the wait-for-graph deadlock detector, and the Spiller's stall-driven
// policy loop (against a scripted backend — the ObjectStore integration is
// covered end-to-end in oversub_test.cpp).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "memory/dram_allocator.h"
#include "memory/spiller.h"
#include "memory/wait_graph.h"
#include "sim/simulator.h"

namespace pw::memory {
namespace {

// ------------------------------------------------------------ DramAllocator

TEST(DramAllocatorTest, TracksUsageAndRefusesOvercommit) {
  DramAllocator dram(1000);
  EXPECT_TRUE(dram.TryAllocate(600));
  EXPECT_EQ(dram.used(), 600);
  EXPECT_FALSE(dram.TryAllocate(500));  // refused, nothing allocated
  EXPECT_EQ(dram.used(), 600);
  EXPECT_TRUE(dram.TryAllocate(400));
  EXPECT_EQ(dram.available(), 0);
  dram.Free(1000);
  EXPECT_EQ(dram.used(), 0);
  EXPECT_EQ(dram.peak_used(), 1000);
}

TEST(DramAllocatorDeathTest, OverFreeDies) {
  DramAllocator dram(100);
  ASSERT_TRUE(dram.TryAllocate(50));
  EXPECT_DEATH(dram.Free(60), "freeing more DRAM than allocated");
}

// ------------------------------------------------------------ WaitForGraph

TEST(WaitForGraphTest, AcyclicGraphReportsNoCycle) {
  WaitForGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(1, 3);
  EXPECT_TRUE(g.FindCycle().empty());
  EXPECT_EQ(g.DescribeCycle(), "");
}

TEST(WaitForGraphTest, FindsTwoCycleAndNamesIt) {
  WaitForGraph g;
  g.AddEdge(5, 7, "dev0 HBM");
  g.AddEdge(7, 5, "dev1 HBM");
  const std::vector<std::int64_t> cycle = g.FindCycle();
  ASSERT_EQ(cycle.size(), 3u);
  EXPECT_EQ(cycle.front(), cycle.back());
  const std::string desc =
      g.DescribeCycle({{5, "exec 5"}, {7, "exec 7"}});
  EXPECT_NE(desc.find("exec 5"), std::string::npos);
  EXPECT_NE(desc.find("exec 7"), std::string::npos);
  EXPECT_NE(desc.find("dev0 HBM"), std::string::npos);
}

TEST(WaitForGraphTest, FindsLongerCycleBehindAcyclicPrefix) {
  WaitForGraph g;
  g.AddEdge(0, 1);  // dead end
  g.AddEdge(1, 9);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4, "via dev2");
  g.AddEdge(4, 2);
  const auto cycle = g.FindCycle();
  ASSERT_EQ(cycle.size(), 4u);  // 2 -> 3 -> 4 -> 2
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(WaitForGraphTest, SelfLoopIsACycle) {
  WaitForGraph g;
  g.AddEdge(4, 4, "dev0 HBM");
  EXPECT_EQ(g.FindCycle().size(), 2u);
}

// ----------------------------------------------------------------- Spiller

// Scripted backend: a fixed number of stalled "bytes" per device that each
// StartSpill works off asynchronously (simulated PCIe delay).
class FakeBackend : public SpillBackend {
 public:
  FakeBackend(sim::Simulator* sim, Spiller** spiller)
      : sim_(sim), spiller_(spiller) {}

  bool HasStalledReservation(int device) const override {
    auto it = stalled_.find(device);
    return it != stalled_.end() && it->second > 0;
  }

  bool StartSpill(int device) override {
    ++spills_requested_;
    if (spillable_[device] <= 0) return false;
    --spillable_[device];
    sim_->Schedule(Duration::Micros(10), [this, device] {
      --stalled_[device];  // each landed spill relieves one stalled unit
      (*spiller_)->OnSpillComplete(device);
    });
    return true;
  }

  std::map<int, int> stalled_;
  std::map<int, int> spillable_;
  int spills_requested_ = 0;

 private:
  sim::Simulator* sim_;
  Spiller** spiller_;
};

TEST(SpillerTest, DrainsStallOneVictimAtATime) {
  sim::Simulator sim;
  Spiller* spiller = nullptr;
  FakeBackend backend(&sim, &spiller);
  Spiller s(&sim, &backend, Spiller::Options{true, 1});
  spiller = &s;
  backend.stalled_[0] = 3;
  backend.spillable_[0] = 5;
  s.OnStall(0);
  sim.Run();
  EXPECT_EQ(s.spills_started(), 3);        // exactly the stalled amount
  EXPECT_EQ(backend.spillable_[0], 2);     // no over-eviction
  EXPECT_FALSE(backend.HasStalledReservation(0));
}

TEST(SpillerTest, StopsQuietlyWhenNothingIsSpillable) {
  sim::Simulator sim;
  Spiller* spiller = nullptr;
  FakeBackend backend(&sim, &spiller);
  Spiller s(&sim, &backend, Spiller::Options{true, 1});
  spiller = &s;
  backend.stalled_[0] = 2;
  backend.spillable_[0] = 1;
  s.OnStall(0);
  sim.Run();
  // One victim migrated; the residual stall is left for future frees (or
  // the quiescence wedge check) — no spin, no crash.
  EXPECT_EQ(s.spills_started(), 1);
  EXPECT_TRUE(backend.HasStalledReservation(0));
}

TEST(SpillerTest, DisabledSpillerIgnoresStalls) {
  sim::Simulator sim;
  Spiller* spiller = nullptr;
  FakeBackend backend(&sim, &spiller);
  Spiller s(&sim, &backend, Spiller::Options{false, 1});
  spiller = &s;
  backend.stalled_[0] = 2;
  backend.spillable_[0] = 2;
  s.OnStall(0);
  sim.Run();
  EXPECT_EQ(s.spills_started(), 0);
  EXPECT_EQ(s.stall_kicks(), 0);
}

TEST(SpillerTest, RepeatedStallNotificationsCoalesceIntoOneKick) {
  sim::Simulator sim;
  Spiller* spiller = nullptr;
  FakeBackend backend(&sim, &spiller);
  Spiller s(&sim, &backend, Spiller::Options{true, 1});
  spiller = &s;
  backend.stalled_[0] = 1;
  backend.spillable_[0] = 1;
  s.OnStall(0);
  s.OnStall(0);  // same event: must not double-kick
  s.OnStall(0);
  sim.Run();
  EXPECT_EQ(s.spills_started(), 1);
}

TEST(SpillerTest, DevicesAreIndependent) {
  sim::Simulator sim;
  Spiller* spiller = nullptr;
  FakeBackend backend(&sim, &spiller);
  Spiller s(&sim, &backend, Spiller::Options{true, 1});
  spiller = &s;
  backend.stalled_[0] = 1;
  backend.spillable_[0] = 1;
  backend.stalled_[3] = 2;
  backend.spillable_[3] = 2;
  s.OnStall(0);
  s.OnStall(3);
  sim.Run();
  EXPECT_EQ(s.spills_started(), 3);
  EXPECT_FALSE(backend.HasStalledReservation(0));
  EXPECT_FALSE(backend.HasStalledReservation(3));
}

}  // namespace
}  // namespace pw::memory
