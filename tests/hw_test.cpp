#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/cluster.h"
#include "hw/collective_group.h"
#include "hw/device.h"
#include "hw/hbm.h"
#include "hw/host.h"
#include "hw/system_params.h"
#include "sim/simulator.h"

namespace pw::hw {
namespace {

// ------------------------------------------------------------------- HBM --

TEST(HbmTest, AllocateAndFree) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  EXPECT_TRUE(hbm.Allocate(600).ok());
  EXPECT_EQ(hbm.used(), 600);
  EXPECT_FALSE(hbm.Allocate(500).ok());  // would overcommit
  hbm.Free(600);
  EXPECT_TRUE(hbm.Allocate(500).ok());
  EXPECT_EQ(hbm.peak_used(), 600);
}

TEST(HbmTest, AsyncBackPressure) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  ASSERT_TRUE(hbm.Allocate(900).ok());
  auto fut = hbm.AllocateAsync(500);
  sim.Run();
  EXPECT_FALSE(fut.ready());  // stalled: back-pressure
  EXPECT_EQ(hbm.waiters(), 1u);
  hbm.Free(900);
  sim.Run();
  EXPECT_TRUE(fut.ready());
  EXPECT_EQ(hbm.used(), 500);
}

TEST(HbmTest, WaitersServedFifoNoStarvation) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  ASSERT_TRUE(hbm.Allocate(1000).ok());
  auto big = hbm.AllocateAsync(800);    // first in line
  auto small = hbm.AllocateAsync(100);  // fits earlier, but must not jump
  hbm.Free(500);
  sim.Run();
  EXPECT_FALSE(big.ready());
  EXPECT_FALSE(small.ready());  // FIFO: blocked behind big
  hbm.Free(500);
  sim.Run();
  EXPECT_TRUE(big.ready());
  EXPECT_TRUE(small.ready());
}

TEST(HbmTest, ImmediateAllocateRespectsQueue) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  ASSERT_TRUE(hbm.Allocate(900).ok());
  auto waiting = hbm.AllocateAsync(200);
  // Even though 100 bytes are free, immediate allocation must fail while
  // earlier waiters queue (fairness).
  EXPECT_FALSE(hbm.Allocate(50).ok());
  hbm.Free(900);
  sim.Run();
  EXPECT_TRUE(waiting.ready());
  EXPECT_TRUE(hbm.Allocate(50).ok());
}

TEST(HbmTest, ZeroByteRequestNeverQueues) {
  // An empty shard needs no capacity and can relieve none by waiting; on a
  // full device with waiters it must be granted on the spot or drain paths
  // (in-order executor enqueue streams gated on per-shard reservations)
  // deadlock behind pressure a 0-byte grant cannot relieve.
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  ASSERT_TRUE(hbm.Allocate(1000).ok());     // device full
  auto stalled = hbm.AllocateAsync(400);    // real back-pressure
  ASSERT_EQ(hbm.waiters(), 1u);
  auto empty = hbm.AllocateAsync(0);
  EXPECT_TRUE(empty.ready());               // granted immediately, no queue
  EXPECT_EQ(hbm.waiters(), 1u);
  EXPECT_TRUE(hbm.Allocate(0).ok());        // immediate flavor too
  sim.Run();
  EXPECT_FALSE(stalled.ready());
  EXPECT_EQ(hbm.used(), 1000);
}

TEST(HbmTest, WaitersServedInTicketOrder) {
  // Reservation ordering (docs/MEMORY.md): waiters are served oldest global
  // ticket first regardless of arrival order, so an older execution's shard
  // cannot park behind a younger one that would then circular-wait on it.
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  ASSERT_TRUE(hbm.Allocate(1000).ok());
  auto young = hbm.AllocateAsync(600, /*ticket=*/7);
  auto old_req = hbm.AllocateAsync(600, /*ticket=*/3);
  EXPECT_EQ(hbm.front_waiter_ticket(), 3u);
  hbm.Free(1000);
  sim.Run();
  EXPECT_TRUE(old_req.ready());   // served first despite arriving second
  EXPECT_FALSE(young.ready());    // strict order: no overtaking
  hbm.Free(600);
  sim.Run();
  EXPECT_TRUE(young.ready());
}

TEST(HbmTest, NewOldestRequestIsServedPastQueuedYoungerWaiters) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  ASSERT_TRUE(hbm.Allocate(800).ok());
  auto young = hbm.AllocateAsync(500, /*ticket=*/9);  // stalls (300 free)
  ASSERT_FALSE(young.ready());
  // An older request that fits must not park behind the younger waiter —
  // that inversion is exactly how cross-device reservation cycles form.
  auto old_req = hbm.AllocateAsync(200, /*ticket=*/2);
  EXPECT_TRUE(old_req.ready());
  EXPECT_FALSE(young.ready());
}

TEST(HbmTest, TicketOrderingDisabledRevertsToArrivalFifo) {
  // The pre-fix regression hook: with ordering off, tickets are ignored and
  // the queue is plain arrival-order FIFO again.
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  hbm.set_ticket_ordering(false);
  ASSERT_TRUE(hbm.Allocate(1000).ok());
  auto young = hbm.AllocateAsync(600, /*ticket=*/7);
  auto old_req = hbm.AllocateAsync(600, /*ticket=*/3);
  hbm.Free(600);
  sim.Run();
  EXPECT_TRUE(young.ready());     // arrival order wins
  EXPECT_FALSE(old_req.ready());
}

TEST(HbmTest, StallObserverFiresOnQueueAndOnUndrainableFree) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  int stalls = 0;
  hbm.set_stall_observer([&stalls] { ++stalls; });
  ASSERT_TRUE(hbm.Allocate(900).ok());
  auto waiting = hbm.AllocateAsync(500);
  EXPECT_EQ(stalls, 1);  // queued
  hbm.Free(100);         // 200 free: still cannot serve the waiter
  EXPECT_EQ(stalls, 2);
  hbm.Free(800);
  sim.Run();
  EXPECT_TRUE(waiting.ready());
  EXPECT_EQ(stalls, 2);  // a draining free does not re-notify
  EXPECT_EQ(hbm.used(), 500);
}

TEST(HbmTest, OnAdmitRunsSynchronouslyAtGrant) {
  sim::Simulator sim;
  HbmAllocator hbm(&sim, 1000);
  bool admitted = false;
  auto fut = hbm.AllocateAsync(300, kUnticketed, [&admitted] { admitted = true; });
  EXPECT_TRUE(admitted);  // before any event runs
  EXPECT_TRUE(fut.ready());
  ASSERT_TRUE(hbm.Allocate(700).ok());
  bool admitted2 = false;
  auto queued = hbm.AllocateAsync(100, kUnticketed, [&admitted2] { admitted2 = true; });
  EXPECT_FALSE(admitted2);
  hbm.Free(300);  // grant happens inside Free
  EXPECT_TRUE(admitted2);
  sim.Run();
  EXPECT_TRUE(queued.ready());
}

// ------------------------------------------------------- CollectiveGroup --

TEST(CollectiveGroupTest, CompletesAtLastArrivalPlusCommTime) {
  sim::Simulator sim;
  net::CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = net::LatencyTopology::kTree;
  net::CollectiveModel model(p);
  CollectiveGroup group(&sim, &model, net::CollectiveKind::kAllReduce, 2);
  std::vector<double> done_us;
  sim.Schedule(Duration::Micros(10), [&] {
    group.Arrive(4).Then([&](const sim::Unit&) { done_us.push_back(sim.now().ToMicros()); });
  });
  sim.Schedule(Duration::Micros(50), [&] {
    group.Arrive(4).Then([&](const sim::Unit&) { done_us.push_back(sim.now().ToMicros()); });
  });
  sim.Run();
  // Tree all-reduce over 2: 2 hops of 1us after the last arrival at t=50.
  ASSERT_EQ(done_us.size(), 2u);
  EXPECT_DOUBLE_EQ(done_us[0], 52.0);
  EXPECT_DOUBLE_EQ(done_us[1], 52.0);
}

TEST(CollectiveGroupTest, StalledUntilAllArrive) {
  sim::Simulator sim;
  net::CollectiveModel model;
  CollectiveGroup group(&sim, &model, net::CollectiveKind::kAllReduce, 3);
  group.Arrive(4);
  group.Arrive(4);
  sim.Run();
  EXPECT_TRUE(group.stalled());
  EXPECT_FALSE(group.complete());
  group.Arrive(4);
  sim.Run();
  EXPECT_TRUE(group.complete());
  EXPECT_FALSE(group.stalled());
}

// ---------------------------------------------------------------- Device --

KernelDesc SimpleKernel(Duration d, std::string label = "k") {
  KernelDesc k;
  k.label = std::move(label);
  k.pre_time = d;
  return k;
}

TEST(DeviceTest, ExecutesKernelsInFifoOrder) {
  sim::Simulator sim;
  Device dev(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Zero());
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    auto fut = dev.Enqueue(SimpleKernel(Duration::Micros(10)));
    fut.Then([&order, i](const sim::Unit&) { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(dev.kernels_completed(), 3);
  EXPECT_DOUBLE_EQ(dev.busy_time().ToMicros(), 30.0);
}

TEST(DeviceTest, LaunchOverheadCharged) {
  sim::Simulator sim;
  Device dev(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Micros(3));
  double done = 0;
  dev.Enqueue(SimpleKernel(Duration::Micros(10))).Then([&](const sim::Unit&) {
    done = sim.now().ToMicros();
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 13.0);
}

TEST(DeviceTest, KernelGatesOnInputFutures) {
  sim::Simulator sim;
  Device dev(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Zero());
  sim::SimPromise<sim::Unit> input(&sim);
  KernelDesc k = SimpleKernel(Duration::Micros(5));
  k.inputs.push_back(input.future());
  double done = 0;
  dev.Enqueue(std::move(k)).Then([&](const sim::Unit&) { done = sim.now().ToMicros(); });
  sim.Schedule(Duration::Micros(100), [&] { input.Set(sim::Unit{}); });
  sim.Run();
  EXPECT_DOUBLE_EQ(done, 105.0);
}

TEST(DeviceTest, BlockedOnInputsReportsDeadlock) {
  sim::Simulator sim;
  Device dev(&sim, DeviceId(7), IslandId(0), GiB(16), Duration::Zero());
  sim::SimPromise<sim::Unit> never(&sim);
  KernelDesc k = SimpleKernel(Duration::Micros(5));
  k.inputs.push_back(never.future());
  dev.Enqueue(std::move(k));
  sim.Run();
  EXPECT_TRUE(sim.Deadlocked());
  ASSERT_EQ(sim.BlockedEntities().size(), 1u);
  EXPECT_NE(sim.BlockedEntities()[0].find("dev7"), std::string::npos);
}

TEST(DeviceTest, CollectiveAcrossTwoDevices) {
  sim::Simulator sim;
  net::CollectiveModel model;
  Device d0(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Zero());
  Device d1(&sim, DeviceId(1), IslandId(0), GiB(16), Duration::Zero());
  auto group = std::make_shared<CollectiveGroup>(&sim, &model,
                                                 net::CollectiveKind::kAllReduce, 2);
  KernelDesc k0 = SimpleKernel(Duration::Micros(10), "ar");
  k0.collective = group;
  k0.collective_bytes = 4;
  KernelDesc k1 = SimpleKernel(Duration::Micros(30), "ar");
  k1.collective = group;
  k1.collective_bytes = 4;
  int done = 0;
  d0.Enqueue(std::move(k0)).Then([&](const sim::Unit&) { ++done; });
  d1.Enqueue(std::move(k1)).Then([&](const sim::Unit&) { ++done; });
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_FALSE(sim.Deadlocked());
  // d0 arrived at t=10 but completed only after d1 arrived at t=30.
  EXPECT_GE(d0.busy_time().ToMicros(), 30.0);
}

TEST(DeviceTest, InconsistentCollectiveOrderDeadlocks) {
  // The paper's §2 motivation: program A and program B each run a collective
  // over {dev0, dev1}. dev0's stream has [A, B]; dev1's has [B, A]. Both
  // devices park at different rendezvous — classic gang-scheduling deadlock.
  sim::Simulator sim;
  net::CollectiveModel model;
  Device d0(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Zero());
  Device d1(&sim, DeviceId(1), IslandId(0), GiB(16), Duration::Zero());
  auto groupA = std::make_shared<CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "A");
  auto groupB = std::make_shared<CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "B");
  auto mk = [](std::shared_ptr<CollectiveGroup> g) {
    KernelDesc k;
    k.pre_time = Duration::Micros(1);
    k.collective = std::move(g);
    k.collective_bytes = 4;
    return k;
  };
  d0.Enqueue(mk(groupA));
  d0.Enqueue(mk(groupB));
  d1.Enqueue(mk(groupB));  // reversed order
  d1.Enqueue(mk(groupA));
  sim.Run();
  EXPECT_TRUE(sim.Deadlocked());
  EXPECT_EQ(sim.BlockedEntities().size(), 2u);
  EXPECT_EQ(d0.kernels_completed(), 0);
  EXPECT_EQ(d1.kernels_completed(), 0);
}

TEST(DeviceTest, ConsistentCollectiveOrderCompletes) {
  sim::Simulator sim;
  net::CollectiveModel model;
  Device d0(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Zero());
  Device d1(&sim, DeviceId(1), IslandId(0), GiB(16), Duration::Zero());
  auto groupA = std::make_shared<CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "A");
  auto groupB = std::make_shared<CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "B");
  auto mk = [](std::shared_ptr<CollectiveGroup> g) {
    KernelDesc k;
    k.pre_time = Duration::Micros(1);
    k.collective = std::move(g);
    k.collective_bytes = 4;
    return k;
  };
  d0.Enqueue(mk(groupA));
  d0.Enqueue(mk(groupB));
  d1.Enqueue(mk(groupA));  // same order: gang-scheduled
  d1.Enqueue(mk(groupB));
  sim.Run();
  EXPECT_FALSE(sim.Deadlocked());
  EXPECT_EQ(d0.kernels_completed(), 2);
  EXPECT_EQ(d1.kernels_completed(), 2);
}

TEST(DeviceTest, TraceSpansRecorded) {
  sim::Simulator sim;
  sim::TraceRecorder trace;
  Device dev(&sim, DeviceId(3), IslandId(0), GiB(16), Duration::Zero(), &trace);
  KernelDesc k = SimpleKernel(Duration::Micros(10), "step");
  k.client = 5;
  dev.Enqueue(std::move(k));
  sim.Run();
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].resource, "dev3");
  EXPECT_EQ(trace.spans()[0].client, 5);
  EXPECT_EQ(trace.spans()[0].label, "step");
}

// ------------------------------------------------------------------ Host --

TEST(HostTest, DispatchKernelPaysCpuAndPcie) {
  sim::Simulator sim;
  SystemParams params;
  params.pcie_latency = Duration::Micros(2);
  params.kernel_launch_overhead = Duration::Zero();
  net::DcnFabric dcn(&sim, params.dcn);
  Host host(&sim, HostId(0), params, &dcn);
  Device dev(&sim, DeviceId(0), IslandId(0), GiB(16), Duration::Zero());
  host.AttachDevice(&dev);
  double done = 0;
  host.DispatchKernel(&dev, SimpleKernel(Duration::Micros(100)), Duration::Micros(10))
      .Then([&](const sim::Unit&) { done = sim.now().ToMicros(); });
  sim.Run();
  // 10us CPU + ~0.016us PCIe serialization of a 256B descriptor + 2us PCIe
  // latency + 100us kernel.
  EXPECT_NEAR(done, 112.0, 0.1);
}

TEST(HostTest, CpuWorkSerializes) {
  sim::Simulator sim;
  SystemParams params;
  net::DcnFabric dcn(&sim, params.dcn);
  Host host(&sim, HostId(0), params, &dcn);
  std::vector<double> at;
  host.RunOnCpu(Duration::Micros(10), [&] { at.push_back(sim.now().ToMicros()); });
  host.RunOnCpu(Duration::Micros(10), [&] { at.push_back(sim.now().ToMicros()); });
  sim.Run();
  EXPECT_EQ(at, (std::vector<double>{10, 20}));
}

TEST(HostTest, DcnSendBetweenHosts) {
  sim::Simulator sim;
  SystemParams params;
  net::DcnFabric dcn(&sim, params.dcn);
  Host h0(&sim, HostId(0), params, &dcn);
  Host h1(&sim, HostId(1), params, &dcn);
  double arrival = 0;
  h0.SendDcn(h1.id(), 1024, [&] { arrival = sim.now().ToMicros(); });
  sim.Run();
  EXPECT_GT(arrival, params.dcn.latency.ToMicros());
  EXPECT_LT(arrival, params.dcn.latency.ToMicros() + 5.0);
}

// --------------------------------------------------------------- Cluster --

TEST(ClusterTest, ConfigAShape) {
  sim::Simulator sim;
  auto cluster = Cluster::ConfigA(&sim, /*hosts=*/8);
  EXPECT_EQ(cluster->num_islands(), 1);
  EXPECT_EQ(cluster->num_hosts(), 8);
  EXPECT_EQ(cluster->num_devices(), 32);  // 4 TPUs per host
  EXPECT_EQ(cluster->island(0).devices().size(), 32u);
}

TEST(ClusterTest, ConfigBShape) {
  sim::Simulator sim;
  auto cluster = Cluster::ConfigB(&sim, /*hosts=*/64);
  EXPECT_EQ(cluster->num_devices(), 512);  // 8 TPUs per host
}

TEST(ClusterTest, ConfigCShape) {
  sim::Simulator sim;
  auto cluster = Cluster::ConfigC(&sim);
  EXPECT_EQ(cluster->num_islands(), 4);
  EXPECT_EQ(cluster->num_hosts(), 16);
  EXPECT_EQ(cluster->num_devices(), 128);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster->island(i).devices().size(), 32u);
  }
}

TEST(ClusterTest, GpuVmShape) {
  sim::Simulator sim;
  auto cluster = Cluster::GpuVm(&sim, 16);
  EXPECT_EQ(cluster->num_islands(), 16);
  EXPECT_EQ(cluster->num_devices(), 16);
}

TEST(ClusterTest, HostOfMapsDevicesToOwners) {
  sim::Simulator sim;
  auto cluster = Cluster::ConfigA(&sim, 4);
  // Devices 0..3 on host 0, 4..7 on host 1, ...
  EXPECT_EQ(cluster->host_of(DeviceId(0)).id(), HostId(0));
  EXPECT_EQ(cluster->host_of(DeviceId(5)).id(), HostId(1));
  EXPECT_EQ(cluster->host_of(DeviceId(15)).id(), HostId(3));
}

TEST(ClusterTest, IciTransferWithinIsland) {
  sim::Simulator sim;
  auto cluster = Cluster::ConfigA(&sim, 2);
  auto fut = cluster->island(0).Transfer(DeviceId(0), DeviceId(7), MiB(64));
  sim.Run();
  EXPECT_TRUE(fut.ready());
  // 64 MiB at 100 GB/s ~ 0.67 ms + 1.5us latency.
  EXPECT_NEAR(sim.now().ToMillis(), 0.67, 0.05);
  EXPECT_EQ(cluster->island(0).ici_bytes_transferred(), MiB(64));
}

TEST(ClusterTest, IslandOfResolvesIslandMembership) {
  sim::Simulator sim;
  auto cluster = Cluster::ConfigC(&sim);
  EXPECT_EQ(cluster->island_of(DeviceId(0)).id(), IslandId(0));
  EXPECT_EQ(cluster->island_of(DeviceId(127)).id(), IslandId(3));
}

}  // namespace
}  // namespace pw::hw
