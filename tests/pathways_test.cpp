#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pathways/pathways.h"
#include "sim/simulator.h"

namespace pw::pathways {
namespace {

using xlasim::CompiledFunction;

struct World {
  explicit World(int hosts = 4, int devices_per_host = 2, int islands = 1,
                 PathwaysOptions options = {},
                 hw::SystemParams params = hw::SystemParams::TpuDefault()) {
    params.host_jitter_frac = 0;  // deterministic timing in unit tests
    cluster = std::make_unique<hw::Cluster>(&sim, params, islands, hosts,
                                            devices_per_host);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
  }

  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
};

// -------------------------------------------------------- ResourceManager --

TEST(ResourceManagerTest, AllocatesLeastLoadedDevices) {
  World w;
  ResourceManager& rm = w.runtime->resource_manager();
  auto s1 = rm.AllocateSlice(ClientId(0), 4);
  ASSERT_TRUE(s1.ok());
  auto s2 = rm.AllocateSlice(ClientId(0), 4);
  ASSERT_TRUE(s2.ok());
  // 8 devices total: the two slices must not share devices.
  for (const auto& v1 : s1->devices) {
    for (const auto& v2 : s2->devices) {
      EXPECT_NE(rm.Lookup(v1.id), rm.Lookup(v2.id));
    }
  }
}

TEST(ResourceManagerTest, OversizedSliceFails) {
  World w(/*hosts=*/2, /*devices_per_host=*/2);
  auto s = w.runtime->resource_manager().AllocateSlice(ClientId(0), 5);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceManagerTest, IslandConstraintHonored) {
  World w(/*hosts=*/2, /*devices_per_host=*/2, /*islands=*/3);
  auto s = w.runtime->resource_manager().AllocateSlice(ClientId(0), 2,
                                                       hw::IslandId(2));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->island, hw::IslandId(2));
  for (const auto& v : s->devices) {
    EXPECT_EQ(w.cluster->device(
                  w.runtime->resource_manager().Lookup(v.id)).island(),
              hw::IslandId(2));
  }
}

TEST(ResourceManagerTest, PicksEmptiestIslandByDefault) {
  World w(2, 2, /*islands=*/2);
  ResourceManager& rm = w.runtime->resource_manager();
  auto s1 = rm.AllocateSlice(ClientId(0), 3);
  ASSERT_TRUE(s1.ok());
  auto s2 = rm.AllocateSlice(ClientId(0), 3);
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(s1->island, s2->island);
}

TEST(ResourceManagerTest, ReleaseSliceFreesLoad) {
  World w;
  ResourceManager& rm = w.runtime->resource_manager();
  auto s = rm.AllocateSlice(ClientId(0), 8);
  ASSERT_TRUE(s.ok());
  rm.ReleaseSlice(*s);
  for (int d = 0; d < w.cluster->num_devices(); ++d) {
    EXPECT_EQ(rm.load(w.cluster->device(d).id()), 0);
  }
}

TEST(ResourceManagerTest, RemoveDeviceRemapsVirtualDevices) {
  World w;
  ResourceManager& rm = w.runtime->resource_manager();
  auto s = rm.AllocateSlice(ClientId(0), 2);
  ASSERT_TRUE(s.ok());
  const hw::DeviceId before = rm.Lookup(s->devices[0].id);
  ASSERT_TRUE(rm.RemoveDevice(before).ok());
  const hw::DeviceId after = rm.Lookup(s->devices[0].id);
  EXPECT_NE(before, after);
  EXPECT_EQ(rm.num_available_devices(), w.cluster->num_devices() - 1);
  ASSERT_TRUE(rm.AddDevice(before).ok());
  EXPECT_EQ(rm.num_available_devices(), w.cluster->num_devices());
}

TEST(ResourceManagerTest, RemoveTwiceFails) {
  World w;
  ResourceManager& rm = w.runtime->resource_manager();
  const hw::DeviceId dev = w.cluster->device(0).id();
  ASSERT_TRUE(rm.RemoveDevice(dev).ok());
  EXPECT_EQ(rm.RemoveDevice(dev).code(), StatusCode::kFailedPrecondition);
}

TEST(ResourceManagerTest, RemapKeepsSliceOnDistinctDevices) {
  // Shards of one slice must never share a physical device after a remap
  // (two gang members on one single-threaded device deadlock at their
  // collective), so the remap target set excludes the slice's own devices.
  World w(/*hosts=*/1, /*devices_per_host=*/3);
  ResourceManager& rm = w.runtime->resource_manager();
  auto s = rm.AllocateSlice(ClientId(0), 2);
  ASSERT_TRUE(s.ok());
  const hw::DeviceId d0 = rm.Lookup(s->devices[0].id);
  const hw::DeviceId d1 = rm.Lookup(s->devices[1].id);
  ASSERT_TRUE(rm.MarkDeviceFailed(d0).ok());
  const hw::DeviceId remapped = rm.Lookup(s->devices[0].id);
  EXPECT_NE(remapped, d0);
  EXPECT_NE(remapped, d1) << "remap collapsed two gang members onto one core";
  EXPECT_EQ(rm.vdevs_remapped(), 1);
  EXPECT_EQ(rm.vdevs_stranded(), 0);
}

TEST(ResourceManagerTest, CrashWithNoViableSpareStrandsVdev) {
  World w(/*hosts=*/1, /*devices_per_host=*/2);
  ResourceManager& rm = w.runtime->resource_manager();
  auto s = rm.AllocateSlice(ClientId(0), 2);  // slice covers the island
  ASSERT_TRUE(s.ok());
  const hw::DeviceId d0 = rm.Lookup(s->devices[0].id);
  // A crash always takes the device out of service, even with nowhere to
  // remap: the vdev stays pointed at the dead device (stranded).
  ASSERT_TRUE(rm.MarkDeviceFailed(d0).ok());
  EXPECT_FALSE(rm.in_service(d0));
  EXPECT_EQ(rm.Lookup(s->devices[0].id), d0);
  EXPECT_EQ(rm.vdevs_stranded(), 1);
  // Unlike a crash, a *drain* of the remaining device must refuse and roll
  // back (it would strand the other shard).
  const hw::DeviceId d1 = rm.Lookup(s->devices[1].id);
  EXPECT_EQ(rm.RemoveDevice(d1).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rm.in_service(d1));
  // Recovery restores service and future allocations.
  ASSERT_TRUE(rm.MarkDeviceRecovered(d0).ok());
  EXPECT_TRUE(rm.in_service(d0));
  EXPECT_EQ(rm.num_available_devices(), 2);
}

TEST(ResourceManagerTest, MarkFailedTwiceIsFailedPrecondition) {
  World w;
  ResourceManager& rm = w.runtime->resource_manager();
  const hw::DeviceId dev = w.cluster->device(0).id();
  ASSERT_TRUE(rm.MarkDeviceFailed(dev).ok());
  EXPECT_EQ(rm.MarkDeviceFailed(dev).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(rm.MarkDeviceFailed(hw::DeviceId(9999)).code(),
            StatusCode::kNotFound);
}

TEST(ResourceManagerTest, ReleaseSliceAfterRemapFreesRemappedLoad) {
  World w(/*hosts=*/1, /*devices_per_host=*/3);
  ResourceManager& rm = w.runtime->resource_manager();
  auto s = rm.AllocateSlice(ClientId(0), 1);
  ASSERT_TRUE(s.ok());
  const hw::DeviceId before = rm.Lookup(s->devices[0].id);
  ASSERT_TRUE(rm.MarkDeviceFailed(before).ok());
  const hw::DeviceId after = rm.Lookup(s->devices[0].id);
  ASSERT_NE(before, after);
  rm.ReleaseSlice(*s);
  // Load accounting followed the remap: the spare's load drops to zero and
  // the dead device never went negative.
  EXPECT_EQ(rm.load(after), 0);
  EXPECT_EQ(rm.load(before), 0);
}

TEST(ResourceManagerTest, ReleaseClientDropsAllItsSlices) {
  World w;
  ResourceManager& rm = w.runtime->resource_manager();
  ASSERT_TRUE(rm.AllocateSlice(ClientId(7), 4).ok());
  ASSERT_TRUE(rm.AllocateSlice(ClientId(7), 2).ok());
  ASSERT_TRUE(rm.AllocateSlice(ClientId(8), 2).ok());
  rm.ReleaseClient(ClientId(7));
  int total_load = 0;
  for (int d = 0; d < w.cluster->num_devices(); ++d) {
    total_load += rm.load(w.cluster->device(d).id());
  }
  EXPECT_EQ(total_load, 2);  // only client 8's slice remains
}

// ------------------------------------------------------------ ObjectStore --

TEST(ObjectStoreTest, LogicalRefcountCoversAllShards) {
  World w;
  ObjectStore& store = w.runtime->object_store();
  std::vector<hw::DeviceId> devices;
  for (int d = 0; d < 8; ++d) devices.push_back(w.cluster->device(d).id());
  ShardedBuffer buf = store.CreateBuffer(ClientId(0), ExecutionId(), devices,
                                         MiB(100));
  w.sim.Run();
  EXPECT_TRUE(buf.ready.ready());
  EXPECT_EQ(buf.num_shards(), 8);
  EXPECT_EQ(store.hbm_used(devices[0]), MiB(100));
  store.AddRef(buf.id);
  store.Release(buf.id);
  EXPECT_TRUE(store.Contains(buf.id));  // refcount was 2
  store.Release(buf.id);
  EXPECT_FALSE(store.Contains(buf.id));
  EXPECT_EQ(store.hbm_used(devices[0]), 0);
}

TEST(ObjectStoreTest, GarbageCollectsFailedClientsBuffers) {
  World w;
  ObjectStore& store = w.runtime->object_store();
  std::vector<hw::DeviceId> devices{w.cluster->device(0).id()};
  store.CreateBuffer(ClientId(1), ExecutionId(), devices, MiB(10));
  store.CreateBuffer(ClientId(1), ExecutionId(), devices, MiB(20));
  ShardedBuffer keep = store.CreateBuffer(ClientId(2), ExecutionId(), devices, MiB(5));
  w.sim.Run();
  EXPECT_EQ(w.runtime->FailClient(ClientId(1)), 2);
  EXPECT_TRUE(store.Contains(keep.id));
  EXPECT_EQ(store.hbm_used(devices[0]), MiB(5));
}

TEST(ObjectStoreTest, DeferredBufferReservesPerShardLazily) {
  World w;
  ObjectStore& store = w.runtime->object_store();
  std::vector<hw::DeviceId> devices{w.cluster->device(0).id(),
                                    w.cluster->device(1).id()};
  ShardedBuffer buf =
      store.CreateBufferDeferred(ClientId(0), ExecutionId(5), devices, MiB(10));
  w.sim.Run();
  // Deferred: handle exists, ready immediately, but no HBM held yet.
  EXPECT_TRUE(buf.ready.ready());
  EXPECT_EQ(store.hbm_used(devices[0]), 0);
  auto r0 = store.ReserveShard(buf.id, 0);
  w.sim.Run();
  EXPECT_TRUE(r0.ready());
  EXPECT_EQ(store.hbm_used(devices[0]), MiB(10));
  EXPECT_EQ(store.hbm_used(devices[1]), 0);  // shard 1 still unreserved
  // Releasing frees only what was actually reserved.
  store.Release(buf.id);
  EXPECT_EQ(store.hbm_used(devices[0]), 0);
  EXPECT_EQ(store.hbm_used(devices[1]), 0);
}

TEST(ObjectStoreTest, ReservationGrantedAfterReleaseReturnsMemory) {
  // A deferred shard reservation that is still queued behind HBM
  // back-pressure when its buffer is released must hand the grant straight
  // back instead of leaking it.
  hw::SystemParams params;
  params.hbm_capacity = MiB(100);
  World w(1, 1, 1, {}, params);
  ObjectStore& store = w.runtime->object_store();
  std::vector<hw::DeviceId> devices{w.cluster->device(0).id()};
  ShardedBuffer hog = store.CreateBuffer(ClientId(0), ExecutionId(), devices,
                                         MiB(90));
  ShardedBuffer deferred =
      store.CreateBufferDeferred(ClientId(0), ExecutionId(7), devices, MiB(50));
  w.sim.Run();
  auto grant = store.ReserveShard(deferred.id, 0);
  w.sim.Run();
  EXPECT_FALSE(grant.ready());  // parked behind the hog
  store.Release(deferred.id);   // released while the reservation queues
  store.Release(hog.id);        // frees capacity; the stale grant fires...
  w.sim.Run();
  // ...and the memory must be back: nothing holds HBM now.
  EXPECT_EQ(store.hbm_used(devices[0]), 0);
  EXPECT_FALSE(store.Contains(deferred.id));
}

TEST(ObjectStoreTest, ReleaseAllForProducerFreesRegardlessOfRefcount) {
  World w;
  ObjectStore& store = w.runtime->object_store();
  std::vector<hw::DeviceId> devices{w.cluster->device(0).id()};
  ShardedBuffer a = store.CreateBuffer(ClientId(0), ExecutionId(3), devices,
                                       MiB(4));
  ShardedBuffer b = store.CreateBuffer(ClientId(0), ExecutionId(3), devices,
                                       MiB(8));
  ShardedBuffer other = store.CreateBuffer(ClientId(0), ExecutionId(4), devices,
                                           MiB(16));
  w.sim.Run();
  store.AddRef(a.id);  // refcount 2: an abort must still collect it
  EXPECT_EQ(store.ReleaseAllForProducer(ExecutionId(3)), 2);
  EXPECT_FALSE(store.Contains(a.id));
  EXPECT_FALSE(store.Contains(b.id));
  EXPECT_TRUE(store.Contains(other.id));
  EXPECT_EQ(store.hbm_used(devices[0]), MiB(16));
}

TEST(ObjectStoreTest, BackPressureDelaysReservation) {
  hw::SystemParams params;
  params.hbm_capacity = MiB(100);
  World w(1, 1, 1, {}, params);
  ObjectStore& store = w.runtime->object_store();
  std::vector<hw::DeviceId> devices{w.cluster->device(0).id()};
  ShardedBuffer big = store.CreateBuffer(ClientId(0), ExecutionId(), devices, MiB(80));
  ShardedBuffer blocked = store.CreateBuffer(ClientId(0), ExecutionId(), devices, MiB(50));
  w.sim.Run();
  EXPECT_TRUE(big.ready.ready());
  EXPECT_FALSE(blocked.ready.ready());  // stalled: back-pressure
  store.Release(big.id);
  w.sim.Run();
  EXPECT_TRUE(blocked.ready.ready());
}

// -------------------------------------------------------------- Program IR --

TEST(ProgramTest, TracerBuildsFig2StyleDag) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();
  auto a = CompiledFunction::Synthetic("a", 2, Duration::Micros(10));
  auto b = CompiledFunction::Synthetic("b", 2, Duration::Micros(10));
  auto c = CompiledFunction::Synthetic("c", 2, Duration::Micros(10));

  ProgramBuilder pb("f");
  const ValueRef v = pb.Argument();
  const ValueRef x = pb.Call(a, slice, {v});
  const ValueRef y = pb.Call(b, slice, {x});
  const ValueRef z = pb.Call(a, slice, {pb.Call(c, slice, {x})});
  pb.Result(y);
  pb.Result(z);
  PathwaysProgram prog = std::move(pb).Build();

  EXPECT_EQ(prog.num_nodes(), 4);
  EXPECT_EQ(prog.num_arguments(), 1);
  EXPECT_EQ(prog.results().size(), 2u);
  // x (node 0) feeds b (node 1) and c (node 2).
  EXPECT_EQ(prog.ConsumersOf(0), (std::vector<int>{1, 2}));
  EXPECT_TRUE(prog.IsResult(y));
  EXPECT_FALSE(prog.IsResult(x));
}

TEST(ProgramTest, DefaultResultIsLastNode) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(1).value();
  auto f = CompiledFunction::Synthetic("f", 1, Duration::Micros(1));
  ProgramBuilder pb("p");
  pb.Call(f, slice, {});
  PathwaysProgram prog = std::move(pb).Build();
  ASSERT_EQ(prog.results().size(), 1u);
  EXPECT_TRUE(prog.IsResult(ValueRef::Node(0)));
}

// ------------------------------------------------------------- End-to-end --

TEST(ExecutionTest, SingleNodeProgramCompletes) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(4).value();
  auto fn = CompiledFunction::Synthetic("step", 4, Duration::Millis(1),
                                        net::CollectiveKind::kAllReduce, 1024);
  auto result = client->RunFunction(fn, slice);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_EQ(result.value().outputs.size(), 1u);
  EXPECT_EQ(result.value().outputs[0].num_shards(), 4);
  // Sanity: total time covers RPC + dispatch + 1ms kernel.
  EXPECT_GT(w.sim.now().ToMillis(), 1.0);
  EXPECT_LT(w.sim.now().ToMillis(), 3.0);
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(ExecutionTest, ChainRunsInDataflowOrder) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();
  auto fn = CompiledFunction::Synthetic("stage", 2, Duration::Millis(1));
  ProgramBuilder pb("chain");
  ValueRef v = pb.Call(fn, slice, {});
  for (int i = 0; i < 3; ++i) v = pb.Call(fn, slice, {v});
  pb.Result(v);
  PathwaysProgram prog = std::move(pb).Build();
  auto result = client->Run(&prog);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  // 4 chained 1ms kernels on the same devices: >= 4ms of simulated time.
  EXPECT_GE(w.sim.now().ToMillis(), 4.0);
  EXPECT_EQ(w.cluster->device(0).kernels_completed(), 4);
}

TEST(ExecutionTest, ArgumentsFlowIntoPrograms) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();
  ShardedBuffer input = client->TransferToDevice(slice, MiB(1));
  auto fn = CompiledFunction::Synthetic("consume", 2, Duration::Micros(100));
  auto result = client->RunFunction(fn, slice, {input});
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(ExecutionTest, IntermediateBuffersAreReleased) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();
  auto fn = CompiledFunction::Synthetic("stage", 2, Duration::Micros(100),
                                        std::nullopt, 0, MiB(8));
  ProgramBuilder pb("chain");
  ValueRef v = pb.Call(fn, slice, {});
  for (int i = 0; i < 9; ++i) v = pb.Call(fn, slice, {v});
  pb.Result(v);
  PathwaysProgram prog = std::move(pb).Build();
  auto result = client->Run(&prog);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  // Only the program result should survive; 9 intermediates were collected.
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 1);
}

TEST(ExecutionTest, ReshardingEdgePerformsScatterGather) {
  World w(/*hosts=*/4, /*devices_per_host=*/2);
  Client* client = w.runtime->CreateClient();
  auto slice4 = client->AllocateSlice(4).value();
  auto slice2 = client->AllocateSlice(2).value();
  auto wide = CompiledFunction::Synthetic("wide", 4, Duration::Micros(100),
                                          std::nullopt, 0, MiB(4));
  auto narrow = CompiledFunction::Synthetic("narrow", 2, Duration::Micros(100));
  ProgramBuilder pb("reshard");
  pb.Result(pb.Call(narrow, slice2, {pb.Call(wide, slice4, {})}));
  PathwaysProgram prog = std::move(pb).Build();
  auto result = client->Run(&prog);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(ExecutionTest, MultiIslandPipelineCrossesDcn) {
  World w(/*hosts=*/2, /*devices_per_host=*/2, /*islands=*/2);
  Client* client = w.runtime->CreateClient();
  auto s0 = client->AllocateSlice(2, hw::IslandId(0)).value();
  auto s1 = client->AllocateSlice(2, hw::IslandId(1)).value();
  auto fn = CompiledFunction::Synthetic("stage", 2, Duration::Micros(500),
                                        std::nullopt, 0, MiB(1));
  ProgramBuilder pb("xisland");
  pb.Result(pb.Call(fn, s1, {pb.Call(fn, s0, {})}));
  PathwaysProgram prog = std::move(pb).Build();
  const Bytes dcn_before = w.cluster->dcn().bytes_sent();
  auto result = client->Run(&prog);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  // The stage outputs crossed the DCN (2 shards x 1 MiB, plus control).
  EXPECT_GT(w.cluster->dcn().bytes_sent() - dcn_before, MiB(2) - 1);
}

TEST(ExecutionTest, ReLoweringPicksUpDeviceRemap) {
  World w;
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(1).value();
  auto fn = CompiledFunction::Synthetic("f", 1, Duration::Micros(100));
  ProgramBuilder pb("p");
  pb.Call(fn, slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  auto r1 = client->Run(&prog);
  w.sim.Run();
  ASSERT_TRUE(r1.ready());
  const hw::DeviceId original =
      w.runtime->resource_manager().Lookup(slice.devices[0].id);
  const std::int64_t kernels_before =
      w.cluster->device(original).kernels_completed();

  ASSERT_TRUE(w.runtime->resource_manager().RemoveDevice(original).ok());
  auto r2 = client->Run(&prog);  // re-lowered against the new mapping
  w.sim.Run();
  ASSERT_TRUE(r2.ready());
  EXPECT_EQ(w.cluster->device(original).kernels_completed(), kernels_before);
}

// -------------------------------------------------- Gang scheduling safety --

// The core paper claim: concurrent programs with collectives from multiple
// clients never deadlock under the centralized gang scheduler, at any
// interleaving.
class GangSafetyProperty : public ::testing::TestWithParam<int> {};

TEST_P(GangSafetyProperty, ConcurrentCollectiveProgramsNeverDeadlock) {
  const int num_clients = GetParam();
  World w(/*hosts=*/2, /*devices_per_host=*/4);
  std::vector<sim::SimFuture<ExecutionResult>> results;
  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  for (int c = 0; c < num_clients; ++c) {
    Client* client = w.runtime->CreateClient();
    auto slice = client->AllocateSlice(8).value();  // all devices: full overlap
    auto fn = CompiledFunction::Synthetic(
        "ar" + std::to_string(c), 8, Duration::Micros(50 + 13 * c),
        net::CollectiveKind::kAllReduce, 256);
    ProgramBuilder pb("prog" + std::to_string(c));
    ValueRef v = pb.Call(fn, slice, {});
    for (int i = 0; i < 4; ++i) v = pb.Call(fn, slice, {v});
    pb.Result(v);
    programs.push_back(std::make_unique<PathwaysProgram>(std::move(pb).Build()));
    results.push_back(client->Run(programs.back().get()));
  }
  w.sim.Run();
  EXPECT_FALSE(w.sim.Deadlocked()) << "gang scheduler must prevent deadlock";
  for (auto& r : results) EXPECT_TRUE(r.ready());
}

INSTANTIATE_TEST_SUITE_P(Clients, GangSafetyProperty,
                         ::testing::Values(2, 3, 4, 8));

// ------------------------------------------------------ Dispatch modes ----

TEST(DispatchModeTest, ParallelBeatsSequentialOnPipelines) {
  auto run_pipeline = [](DispatchMode mode) {
    PathwaysOptions options;
    options.dispatch = mode;
    World w(/*hosts=*/8, /*devices_per_host=*/1, 1, options);
    Client* client = w.runtime->CreateClient();
    auto fn = CompiledFunction::Synthetic("tiny", 1, Duration::Micros(20));
    ProgramBuilder pb("pipeline");
    ValueRef v = pb.Call(fn, client->AllocateSlice(1).value(), {});
    for (int i = 0; i < 7; ++i) {
      v = pb.Call(fn, client->AllocateSlice(1).value(), {v});
    }
    pb.Result(v);
    PathwaysProgram prog = std::move(pb).Build();
    auto result = client->Run(&prog);
    w.sim.Run();
    EXPECT_TRUE(result.ready());
    return w.sim.now();
  };
  const TimePoint parallel = run_pipeline(DispatchMode::kParallel);
  const TimePoint sequential = run_pipeline(DispatchMode::kSequential);
  // Sequential serializes host-side work behind each enqueue (Fig. 4a);
  // parallel overlaps it (Fig. 4b).
  EXPECT_LT(parallel.nanos(), sequential.nanos());
}

// ------------------------------------------- Data-dependent control flow --

TEST(IrregularDispatchTest, IrregularNodeWaitsForProducers) {
  // Paper §4.5: parallel scheduling is an optimization; nodes whose
  // resource requirements depend on predecessor *values* fall back to the
  // traditional model. The irregular chain must therefore be strictly
  // slower than the regular one (no overlapped host-side work).
  auto run_chain = [](bool irregular) {
    World w(/*hosts=*/4, /*devices_per_host=*/1);
    Client* client = w.runtime->CreateClient();
    auto fn = CompiledFunction::Synthetic("stage", 1, Duration::Micros(20));
    ProgramBuilder pb("chain");
    ValueRef v = pb.Call(fn, client->AllocateSlice(1).value(), {});
    for (int i = 0; i < 3; ++i) {
      auto slice = client->AllocateSlice(1).value();
      v = irregular ? pb.CallIrregular(fn, slice, {v})
                    : pb.Call(fn, slice, {v});
    }
    pb.Result(v);
    PathwaysProgram prog = std::move(pb).Build();
    auto result = client->Run(&prog);
    w.sim.Run();
    EXPECT_TRUE(result.ready());
    EXPECT_FALSE(w.sim.Deadlocked());
    return w.sim.now();
  };
  const TimePoint regular = run_chain(false);
  const TimePoint data_dependent = run_chain(true);
  EXPECT_LT(regular.nanos(), data_dependent.nanos());
}

TEST(IrregularDispatchTest, OtherTenantsProceedWhileParked) {
  // While an irregular node waits for its producer, the scheduler must keep
  // serving other clients' gangs.
  World w(/*hosts=*/2, /*devices_per_host=*/2);
  Client* sparse_client = w.runtime->CreateClient();
  Client* dense_client = w.runtime->CreateClient();

  auto slow = CompiledFunction::Synthetic("slow", 2, Duration::Millis(5));
  auto routed = CompiledFunction::Synthetic("routed", 2, Duration::Micros(50));
  auto s1 = sparse_client->AllocateSlice(2).value();
  ProgramBuilder pb1("moe");
  pb1.Result(pb1.CallIrregular(routed, s1, {pb1.Call(slow, s1, {})}));
  PathwaysProgram moe = std::move(pb1).Build();

  auto s2 = dense_client->AllocateSlice(2).value();
  ProgramBuilder pb2("dense");
  pb2.Call(CompiledFunction::Synthetic("quick", 2, Duration::Micros(100)), s2, {});
  PathwaysProgram dense = std::move(pb2).Build();

  auto moe_result = sparse_client->Run(&moe);
  auto dense_result = dense_client->Run(&dense);
  // The dense program must finish long before the 5 ms producer does.
  w.sim.RunUntilPredicate([&dense_result] { return dense_result.ready(); });
  EXPECT_LT(w.sim.now().ToMillis(), 5.0);
  w.sim.Run();
  EXPECT_TRUE(moe_result.ready());
}

// --------------------------------------------------------------- Fairness --

TEST(FairnessTest, WeightedStrideApproximatesProportionalShare) {
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  // Shallow in-flight window so the policy has a backlog to arbitrate.
  options.max_inflight_gangs = 2;
  World w(/*hosts=*/2, /*devices_per_host=*/2, 1, options);
  Client* c1 = w.runtime->CreateClient(/*weight=*/1.0);
  Client* c2 = w.runtime->CreateClient(/*weight=*/3.0);

  auto submit_loop = [&w](Client* client, const PathwaysProgram* prog,
                          auto&& self) -> void {
    client->Run(prog).Then(
        [&w, client, prog, self](const ExecutionResult&) {
          if (w.sim.now() < TimePoint() + Duration::Millis(50)) {
            self(client, prog, self);
          }
        });
  };

  auto slice1 = c1->AllocateSlice(4).value();
  auto slice2 = c2->AllocateSlice(4).value();
  auto fn = CompiledFunction::Synthetic("work", 4, Duration::Micros(330),
                                        net::CollectiveKind::kAllReduce, 64);
  ProgramBuilder pb1("p1");
  pb1.Call(fn, slice1, {});
  PathwaysProgram prog1 = std::move(pb1).Build();
  ProgramBuilder pb2("p2");
  pb2.Call(fn, slice2, {});
  PathwaysProgram prog2 = std::move(pb2).Build();

  // Keep 4 programs in flight per client so the scheduler always has a
  // choice to make.
  for (int i = 0; i < 4; ++i) {
    submit_loop(c1, &prog1, submit_loop);
    submit_loop(c2, &prog2, submit_loop);
  }
  w.sim.RunUntil(TimePoint() + Duration::Millis(60));

  auto busy = w.cluster->trace().BusyPerClient(
      TimePoint() + Duration::Millis(10), TimePoint() + Duration::Millis(50));
  const double ratio = busy[c2->id().value()] / busy[c1->id().value()];
  EXPECT_GT(ratio, 2.0) << "weight-3 client should get ~3x the device time";
  EXPECT_LT(ratio, 4.5);
}

// Keeps resubmitting `prog` on `client` — releasing outputs through the
// Client::Submit path — until the simulated clock passes `until`.
void SubmitLoop(World& w, Client* client, const PathwaysProgram* prog,
                TimePoint until) {
  client->Submit(prog, [&w, client, prog, until](const ExecutionResult&) {
    if (w.sim.now() < until) SubmitLoop(w, client, prog, until);
  });
}

TEST(FairnessTest, AgedPassesKeepProportionalShare) {
  // Long-run pass-drift regression (the stride-rebase fix). Passes grow by
  // one stride per pick, so after enough gangs pass/stride crosses 2^52 and
  // `pass += stride` rounds to a no-op: the affected queue's virtual time
  // freezes and tie-breaking hands it the whole island. Simulating years of
  // traffic is not an option, so AgePassesForTesting advances every queue's
  // pass by 2^53 — a relative no-op that lands the scheduler exactly in the
  // degenerate regime. Without RebasePasses (revert the fix to check) the
  // weight-3 client starves and this test fails; with it, the first pick
  // rebases the passes back to zero and the shares recover.
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;
  World w(/*hosts=*/2, /*devices_per_host=*/2, 1, options);
  Client* c1 = w.runtime->CreateClient(/*weight=*/1.0);
  Client* c2 = w.runtime->CreateClient(/*weight=*/3.0);

  auto slice1 = c1->AllocateSlice(4).value();
  auto slice2 = c2->AllocateSlice(4).value();
  auto fn = CompiledFunction::Synthetic("work", 4, Duration::Micros(330),
                                        net::CollectiveKind::kAllReduce, 64);
  ProgramBuilder pb1("p1");
  pb1.Call(fn, slice1, {});
  PathwaysProgram prog1 = std::move(pb1).Build();
  ProgramBuilder pb2("p2");
  pb2.Call(fn, slice2, {});
  PathwaysProgram prog2 = std::move(pb2).Build();
  const TimePoint until = TimePoint() + Duration::Millis(55);
  for (int i = 0; i < 4; ++i) {
    SubmitLoop(w, c1, &prog1, until);
    SubmitLoop(w, c2, &prog2, until);
  }
  // Let both queues come into existence, then age the scheduler as if it
  // had already served ~2^53 units of virtual time.
  w.sim.RunUntil(TimePoint() + Duration::Millis(2));
  w.runtime->scheduler(hw::IslandId(0)).AgePassesForTesting(9007199254740992.0);
  w.sim.RunUntil(TimePoint() + Duration::Millis(60));

  auto busy = w.cluster->trace().BusyPerClient(
      TimePoint() + Duration::Millis(10), TimePoint() + Duration::Millis(50));
  ASSERT_GT(busy[c1->id().value()].nanos(), 0)
      << "weight-1 client starved: pass drift un-rebased";
  const double ratio = busy[c2->id().value()] / busy[c1->id().value()];
  EXPECT_GT(ratio, 2.0) << "weight-3 client starved: pass drift un-rebased";
  EXPECT_LT(ratio, 4.5);
  EXPECT_GT(w.runtime->scheduler(hw::IslandId(0)).pass_rebases(), 0);
}

TEST(FairnessTest, IdleClientReEntryGetsNoCatchUpBurst) {
  // A client that sat idle while another served (and the rebase anchored
  // passes near zero) must re-enter at the current virtual time, not claim
  // a catch-up monopoly for the time it was away.
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;
  World w(/*hosts=*/2, /*devices_per_host=*/2, 1, options);
  Client* steady = w.runtime->CreateClient(/*weight=*/1.0);
  Client* late = w.runtime->CreateClient(/*weight=*/1.0);

  auto slice1 = steady->AllocateSlice(4).value();
  auto slice2 = late->AllocateSlice(4).value();
  auto fn = CompiledFunction::Synthetic("work", 4, Duration::Micros(330),
                                        net::CollectiveKind::kAllReduce, 64);
  ProgramBuilder pb1("steady");
  pb1.Call(fn, slice1, {});
  PathwaysProgram prog1 = std::move(pb1).Build();
  ProgramBuilder pb2("late");
  pb2.Call(fn, slice2, {});
  PathwaysProgram prog2 = std::move(pb2).Build();

  const TimePoint until = TimePoint() + Duration::Millis(55);
  // `late` touches the scheduler once at t=0 (creating its queue at pass
  // ~0), then goes idle while `steady` accrues 20ms of virtual time.
  late->Submit(&prog2, {});
  w.sim.ScheduleAt(TimePoint() + Duration::Millis(2), [&] {
    for (int i = 0; i < 4; ++i) SubmitLoop(w, steady, &prog1, until);
  });
  // `late` re-enters at t=20ms with 4 programs in flight.
  w.sim.ScheduleAt(TimePoint() + Duration::Millis(20), [&] {
    for (int i = 0; i < 4; ++i) SubmitLoop(w, late, &prog2, until);
  });
  w.sim.RunUntil(TimePoint() + Duration::Millis(60));

  // In the window right after re-entry both clients are backlogged with
  // equal weights: the late client must share ~50/50, not monopolize.
  auto busy = w.cluster->trace().BusyPerClient(
      TimePoint() + Duration::Millis(22), TimePoint() + Duration::Millis(50));
  const double total = (busy[steady->id().value()] + busy[late->id().value()])
                           .ToSeconds();
  ASSERT_GT(total, 0);
  const double late_share = busy[late->id().value()].ToSeconds() / total;
  EXPECT_GT(late_share, 0.35);
  EXPECT_LT(late_share, 0.65) << "idle re-entry claimed a catch-up burst";
}

// ----------------------------------------------------------- Retry policy --

TEST(RetryPolicyTest, BackoffIsCappedAndMonotone) {
  RetryPolicy policy;
  policy.initial_backoff = Duration::Micros(500);
  policy.multiplier = 2.0;
  policy.max_backoff = Duration::Millis(10);
  EXPECT_EQ(policy.BackoffFor(1), Duration::Micros(500));
  EXPECT_EQ(policy.BackoffFor(2), Duration::Millis(1));
  EXPECT_EQ(policy.BackoffFor(3), Duration::Millis(2));
  // 500us * 2^5 = 16ms clamps to the 10ms cap...
  EXPECT_EQ(policy.BackoffFor(6), Duration::Millis(10));
  // ...and stays there for any attempt count, including ones where the
  // uncapped product overflows double and int64 alike.
  Duration prev = Duration::Zero();
  for (int k = 1; k <= 400; ++k) {
    const Duration b = policy.BackoffFor(k);
    EXPECT_GT(b.nanos(), 0);
    EXPECT_LE(b, policy.max_backoff);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_EQ(policy.BackoffFor(400), Duration::Millis(10));
}

TEST(RetryPolicyTest, ManyAttemptsDoNotOverflowSimulatedTime) {
  // Pre-fix, initial_backoff * pow(multiplier, k-1) overflowed Duration
  // around k=60 (4^k), producing a negative delay that died inside
  // Simulator::Schedule. Post-fix the total backoff is bounded by
  // max_attempts * max_backoff.
  World w(/*hosts=*/1, /*devices_per_host=*/2);
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();
  ProgramBuilder pb("train");
  pb.Call(CompiledFunction::Synthetic("step", 2, Duration::Micros(200),
                                      net::CollectiveKind::kAllReduce,
                                      KiB(64)),
          slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  // Permanent failure with no spare devices: every attempt aborts.
  w.sim.Schedule(Duration::Micros(100), [&] {
    w.cluster->device(0).Fail();
    (void)w.runtime->resource_manager().MarkDeviceFailed(
        w.cluster->device(0).id());
    w.runtime->AbortExecutionsUsing(w.cluster->device(0).id());
  });

  RetryPolicy policy;
  policy.max_attempts = 80;
  policy.multiplier = 4.0;
  policy.initial_backoff = Duration::Micros(500);
  policy.max_backoff = Duration::Millis(2);
  auto result = client->RunWithRetry(&prog, {}, policy);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().failed);
  EXPECT_EQ(result.value().attempts, 80);
  // 80 attempts x (2ms cap + per-attempt work) stays well under a second.
  EXPECT_LT(w.sim.now().ToSeconds(), 1.0);
}

// ------------------------------------------------- Back-pressure liveness --

TEST(BackPressureTest, HbmPressureStallsButCompletes) {
  hw::SystemParams params;
  params.hbm_capacity = MiB(64);
  World w(1, 2, 1, {}, params);
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();
  // Each step's working set is 24 MiB (in+out+scratch): three programs in
  // flight exceed HBM, forcing back-pressure.
  auto fn = CompiledFunction::Synthetic("big", 2, Duration::Micros(200),
                                        std::nullopt, 0, MiB(8));
  ProgramBuilder pb("mem");
  ValueRef v = pb.Call(fn, slice, {});
  v = pb.Call(fn, slice, {v});
  pb.Result(v);
  PathwaysProgram prog = std::move(pb).Build();
  std::vector<sim::SimFuture<ExecutionResult>> results;
  std::vector<ShardedBuffer> outputs;
  for (int i = 0; i < 6; ++i) {
    auto r = client->Run(&prog);
    r.Then([&w, &outputs](const ExecutionResult& res) {
      // Hold results briefly, then release (frees HBM for waiters).
      for (const auto& out : res.outputs) {
        w.runtime->object_store().Release(out.id);
      }
    });
    results.push_back(r);
  }
  w.sim.Run();
  EXPECT_FALSE(w.sim.Deadlocked());
  for (auto& r : results) EXPECT_TRUE(r.ready());
}

// ----------------------------------------------------- Failure injection --

TEST(FailureTest, ClientFailureReclaimsEverything) {
  World w;
  Client* doomed = w.runtime->CreateClient();
  Client* survivor = w.runtime->CreateClient();
  auto ds = doomed->AllocateSlice(4).value();
  auto ss = survivor->AllocateSlice(4).value();
  ShardedBuffer d1 = doomed->TransferToDevice(ds, MiB(32));
  ShardedBuffer s1 = survivor->TransferToDevice(ss, MiB(16));
  w.sim.Run();
  const int collected = w.runtime->FailClient(doomed->id());
  EXPECT_EQ(collected, 1);
  EXPECT_FALSE(w.runtime->object_store().Contains(d1.id));
  EXPECT_TRUE(w.runtime->object_store().Contains(s1.id));
  // Survivor can still run programs.
  auto fn = CompiledFunction::Synthetic("ok", 4, Duration::Micros(50));
  auto r = survivor->RunFunction(fn, ss, {s1});
  w.sim.Run();
  EXPECT_TRUE(r.ready());
}

}  // namespace
}  // namespace pw::pathways
