// Unit tests for the multi-tenant traffic engine: arrival processes and
// their determinism, the bounded admission queue's shed policies, closed-
// loop concurrency, and the end-to-end proportional-share behavior the
// engine exists to exercise.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace pw::workload {
namespace {

using pathways::Client;
using pathways::PathwaysOptions;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::SchedulerPolicy;
using xlasim::CompiledFunction;

struct World {
  explicit World(int hosts = 1, int devices_per_host = 2,
                 PathwaysOptions options = {}) {
    hw::SystemParams params = hw::SystemParams::TpuDefault();
    params.host_jitter_frac = 0;  // deterministic timing in unit tests
    cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                            hosts, devices_per_host);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
  }

  // A client plus a single-node program over `shards` devices.
  struct Tenant {
    Client* client;
    std::unique_ptr<PathwaysProgram> program;
  };
  Tenant MakeTenant(int shards, double weight = 1.0,
                    Duration step = Duration::Micros(100)) {
    Client* client = runtime->CreateClient(weight);
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("work");
    pb.Call(CompiledFunction::Synthetic("step", shards, step), slice, {});
    return Tenant{client,
                  std::make_unique<PathwaysProgram>(std::move(pb).Build())};
  }

  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
};

// ------------------------------------------------------ Arrival processes --

TEST(OpenLoopGeneratorTest, PoissonArrivalCountTracksRate) {
  World w;
  auto t = w.MakeTenant(2);
  OpenLoopSpec spec;
  spec.rate_per_sec = 2000;
  spec.horizon = Duration::Millis(100);  // expect ~200 arrivals
  spec.seed = 7;
  AdmissionOptions adm;
  adm.capacity = 64;
  OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);
  gen.Start();
  w.sim.Run();
  EXPECT_GT(gen.arrivals_generated(), 140);
  EXPECT_LT(gen.arrivals_generated(), 260);
  EXPECT_EQ(gen.arrivals_generated(), gen.recorder().arrivals());
  EXPECT_GT(gen.recorder().completions(), 0);
  EXPECT_TRUE(gen.queue().drained());
}

TEST(OpenLoopGeneratorTest, BurstProcessKeepsMeanRateButQueues) {
  auto run = [](ArrivalProcess process) {
    World w;
    auto t = w.MakeTenant(2);
    OpenLoopSpec spec;
    spec.process = process;
    spec.rate_per_sec = 2000;
    spec.burst_size = 8;
    spec.burst_gap = Duration::Micros(10);
    spec.horizon = Duration::Millis(100);
    spec.seed = 11;
    AdmissionOptions adm;
    adm.capacity = 32;
    OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);
    gen.Start();
    w.sim.Run();
    // Deepest arrival-observed queue depth.
    int deepest = 0;
    const Histogram& h = gen.recorder().queue_depth();
    for (int b = 0; b < h.num_buckets(); ++b) {
      if (h.bucket_count(b) > 0) deepest = b;
    }
    return std::make_pair(gen.arrivals_generated(), deepest);
  };
  const auto [poisson_n, poisson_depth] = run(ArrivalProcess::kPoisson);
  const auto [burst_n, burst_depth] = run(ArrivalProcess::kBurst);
  // Same mean rate (wider bounds than Poisson: whole bursts land or miss)...
  EXPECT_GT(burst_n, 110);
  EXPECT_LT(burst_n, 290);
  (void)poisson_n;
  // ...but bursts pile arrivals into the queue much deeper.
  EXPECT_GE(burst_depth, 6);
  EXPECT_LT(poisson_depth, burst_depth);
}

TEST(OpenLoopGeneratorTest, SameSeedIsBitReproducible) {
  auto run = [] {
    World w;
    auto t = w.MakeTenant(2);
    OpenLoopSpec spec;
    spec.rate_per_sec = 3000;
    spec.horizon = Duration::Millis(50);
    spec.seed = 42;
    AdmissionOptions adm;
    adm.capacity = 8;
    OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);
    gen.Start();
    w.sim.Run();
    return std::make_tuple(w.sim.now().nanos(), w.sim.events_executed(),
                           gen.arrivals_generated(),
                           gen.recorder().completions(),
                           gen.recorder().sheds(),
                           gen.recorder().LatencyUs(50),
                           gen.recorder().LatencyUs(99));
  };
  EXPECT_EQ(run(), run());
}

TEST(OpenLoopGeneratorTest, DifferentSeedsProduceDifferentTraces) {
  auto run = [](std::uint64_t seed) {
    World w;
    auto t = w.MakeTenant(2);
    OpenLoopSpec spec;
    spec.rate_per_sec = 3000;
    spec.horizon = Duration::Millis(50);
    spec.seed = seed;
    OpenLoopGenerator gen(t.client, t.program.get(), spec, {});
    gen.Start();
    w.sim.Run();
    return std::make_pair(w.sim.now().nanos(), gen.recorder().LatencyUs(50));
  };
  EXPECT_NE(run(1), run(2));
}

// -------------------------------------------------------- Admission queue --

TEST(AdmissionQueueTest, DropTailShedsOverflowAndBooksConsistently) {
  World w;
  auto t = w.MakeTenant(2, 1.0, Duration::Millis(1));  // slow service
  OpenLoopSpec spec;
  spec.rate_per_sec = 5000;  // far beyond ~1k/s service
  spec.horizon = Duration::Millis(20);
  spec.seed = 3;
  AdmissionOptions adm;
  adm.capacity = 4;
  adm.max_outstanding = 1;
  adm.policy = ShedPolicy::kDropTail;
  OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);
  gen.Start();
  w.sim.Run();
  const LatencyRecorder& r = gen.recorder();
  EXPECT_GT(r.sheds(), 0);
  EXPECT_GT(r.completions(), 0);
  EXPECT_EQ(r.failures(), 0);
  EXPECT_EQ(r.admission_retries(), 0);  // drop-tail never defers
  // Every arrival either completed or was shed; the queue fully drained.
  EXPECT_TRUE(gen.queue().drained());
  EXPECT_EQ(r.arrivals(), r.completions() + r.sheds());
  // Arrival-sampled depth never exceeds capacity, and under this overload
  // the typical arrival finds a non-empty queue.
  EXPECT_EQ(gen.recorder().queue_depth().overflow(), 0);
  EXPECT_GT(gen.recorder().MeanQueueDepth(), 0.0);
  EXPECT_LE(gen.recorder().MeanQueueDepth(), 4.0);
}

TEST(AdmissionQueueTest, RejectWithRetryDefersThenShedsOnBudget) {
  World w;
  auto t = w.MakeTenant(2, 1.0, Duration::Millis(1));
  OpenLoopSpec spec;
  spec.rate_per_sec = 5000;
  spec.horizon = Duration::Millis(20);
  spec.seed = 3;
  AdmissionOptions adm;
  adm.capacity = 4;
  adm.max_outstanding = 1;
  adm.policy = ShedPolicy::kRejectWithRetry;
  adm.retry.max_attempts = 3;
  adm.retry.initial_backoff = Duration::Micros(100);
  OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);
  gen.Start();
  w.sim.Run();
  const LatencyRecorder& r = gen.recorder();
  EXPECT_GT(r.admission_retries(), 0);
  EXPECT_GT(r.sheds(), 0);  // budget of 3 offers exhausts under overload
  EXPECT_TRUE(gen.queue().drained());
  EXPECT_EQ(r.arrivals(), r.completions() + r.sheds());
}

TEST(AdmissionQueueTest, ReofferBackoffIsCappedForLargeBudgets) {
  // A pathological retry policy (60 offers, 10x multiplier) must not
  // overflow: every re-offer waits at most max_backoff, so the run ends in
  // bounded simulated time. Pre-cap, the uncapped pow() product overflowed
  // Duration and aborted inside Simulator::Schedule.
  World w;
  auto t = w.MakeTenant(2, 1.0, Duration::Millis(1));
  OpenLoopSpec spec;
  spec.rate_per_sec = 5000;
  spec.horizon = Duration::Millis(10);
  spec.seed = 5;
  AdmissionOptions adm;
  adm.capacity = 2;
  adm.max_outstanding = 1;
  adm.policy = ShedPolicy::kRejectWithRetry;
  adm.retry.max_attempts = 60;
  adm.retry.multiplier = 10.0;
  adm.retry.initial_backoff = Duration::Micros(50);
  adm.retry.max_backoff = Duration::Millis(2);
  OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);
  gen.Start();
  w.sim.Run();
  EXPECT_TRUE(gen.queue().drained());
  // 60 offers x 2ms cap bounds any request's admission wait to ~120ms.
  EXPECT_LT(w.sim.now().ToMillis(), 200.0);
  EXPECT_EQ(gen.recorder().arrivals(),
            gen.recorder().completions() + gen.recorder().sheds());
}

// ------------------------------------------------------------ Closed loop --

TEST(ClosedLoopGeneratorTest, MaintainsFixedConcurrencyThenDrains) {
  World w;
  auto t = w.MakeTenant(2);
  ClosedLoopSpec spec;
  spec.concurrency = 3;
  spec.horizon = Duration::Millis(20);
  ClosedLoopGenerator gen(t.client, t.program.get(), spec);
  gen.Start();
  EXPECT_EQ(gen.in_flight(), 3);
  // Mid-run the loop is still exactly `concurrency` wide.
  w.sim.RunUntil(TimePoint() + Duration::Millis(10));
  EXPECT_EQ(gen.in_flight(), 3);
  w.sim.Run();
  EXPECT_EQ(gen.in_flight(), 0);
  const LatencyRecorder& r = gen.recorder();
  EXPECT_GT(r.completions(), 10);
  EXPECT_EQ(r.arrivals(), r.completions());
  EXPECT_EQ(r.sheds(), 0);
}

// ------------------------------------------- Faults under open-loop load --

TEST(WorkloadFaultTest, OpenLoopTrafficRidesThroughDeviceCrash) {
  // A crash-with-recovery under open-loop load: with retry_executions the
  // generator's requests resubmit after the abort and the run ends with
  // zero failed requests.
  World w(/*hosts=*/2, /*devices_per_host=*/4);  // 8 devices, 4 spares
  auto t = w.MakeTenant(4);
  OpenLoopSpec spec;
  spec.rate_per_sec = 2000;
  spec.horizon = Duration::Millis(20);
  spec.seed = 9;
  AdmissionOptions adm;
  adm.capacity = 32;
  adm.retry_executions = true;
  adm.retry.max_attempts = 6;
  adm.retry.initial_backoff = Duration::Micros(100);
  OpenLoopGenerator gen(t.client, t.program.get(), spec, adm);

  faults::FaultPlan plan;
  plan.CrashDevice(w.cluster->device(0).id(), TimePoint() + Duration::Millis(5),
                   /*down_for=*/Duration::Millis(4));
  faults::FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();

  gen.Start();
  w.sim.Run();
  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(gen.queue().drained());
  EXPECT_GT(gen.recorder().completions(), 0);
  EXPECT_EQ(gen.recorder().failures(), 0);
  EXPECT_GT(t.client->retries(), 0);  // the crash really did hit the run
}

// --------------------------------------------- Proportional share, end-to-end --

TEST(WorkloadFairnessTest, OverloadedOpenLoopFollowsStrideWeights) {
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  options.max_inflight_gangs = 2;
  World w(/*hosts=*/2, /*devices_per_host=*/2, options);
  auto a = w.MakeTenant(4, /*weight=*/1.0, Duration::Micros(300));
  auto b = w.MakeTenant(4, /*weight=*/3.0, Duration::Micros(300));

  auto make_gen = [&](World::Tenant& t, std::uint64_t seed) {
    OpenLoopSpec spec;
    spec.rate_per_sec = 6000;  // both far beyond fair share => backlogged
    spec.horizon = Duration::Millis(60);
    spec.seed = seed;
    AdmissionOptions adm;
    adm.capacity = 32;
    // The dispatch window must exceed the island's inflight cap, or each
    // tenant's throughput is limited by its own submit round-trip and the
    // stride policy never has a contended backlog to arbitrate.
    adm.max_outstanding = 6;
    return std::make_unique<OpenLoopGenerator>(t.client, t.program.get(),
                                               spec, adm);
  };
  auto ga = make_gen(a, 21);
  auto gb = make_gen(b, 22);
  ga->Start();
  gb->Start();

  // Measure goodput over [10ms, 60ms): skip the fill-up transient.
  std::int64_t base_a = 0, base_b = 0;
  w.sim.ScheduleAt(TimePoint() + Duration::Millis(10), [&] {
    base_a = ga->recorder().completions();
    base_b = gb->recorder().completions();
  });
  w.sim.RunUntil(TimePoint() + Duration::Millis(60));

  const double got_a =
      static_cast<double>(ga->recorder().completions() - base_a);
  const double got_b =
      static_cast<double>(gb->recorder().completions() - base_b);
  // Arrivals stopped at the horizon; drain the backlog so no execution is
  // torn down mid-flight (the dataflow graph of an in-flight execution
  // holds reference cycles that only completion unwinds).
  w.sim.Run();
  ASSERT_GT(got_a, 0);
  const double ratio = got_b / got_a;
  EXPECT_GT(ratio, 2.2) << "weight-3 tenant should complete ~3x the work";
  EXPECT_LT(ratio, 3.8);

  // The scheduler's per-client accounting sees the same story: the
  // weight-3 tenant dispatched ~3x the gangs, and both backlogged tenants
  // accumulated real scheduler-queue wait.
  const auto stats_a = w.runtime->SchedStatsFor(a.client->id());
  const auto stats_b = w.runtime->SchedStatsFor(b.client->id());
  EXPECT_GT(stats_b.gangs_dispatched, 2 * stats_a.gangs_dispatched);
  EXPECT_GT(stats_a.queue_wait.nanos(), 0);
  EXPECT_GT(stats_b.queue_wait.nanos(), 0);
}

TEST(LatencyRecorderTest, FullQueueDepthSampleIsCountedNotDropped) {
  // Regression: an arrival that finds the waiting queue full observes
  // depth == capacity — the signature sample of the overloaded regime
  // bench_multitenant measures. It must land in its own histogram bucket
  // (not overflow, not one bucket low via the old fraction-of-range index
  // math) and be reflected by MeanQueueDepth.
  for (std::size_t capacity : {4u, 21u, 64u}) {
    LatencyRecorder r(capacity);
    r.OnArrival(capacity);  // full queue
    const Histogram& h = r.queue_depth();
    EXPECT_EQ(h.overflow(), 0) << "capacity=" << capacity;
    EXPECT_EQ(h.bucket_count(static_cast<int>(capacity)), 1)
        << "capacity=" << capacity;
    EXPECT_DOUBLE_EQ(r.MeanQueueDepth(), static_cast<double>(capacity));
  }
  // The interior depth that the old index math misplaced (15/22*22 < 15).
  LatencyRecorder r(21);
  r.OnArrival(15);
  EXPECT_EQ(r.queue_depth().bucket_count(15), 1);
  EXPECT_EQ(r.queue_depth().bucket_count(14), 0);
  EXPECT_DOUBLE_EQ(r.MeanQueueDepth(), 15.0);
}

}  // namespace
}  // namespace pw::workload
