// Property/stress tests for the pooled-event Simulator: randomized
// schedules (seeded pw::Rng) pinning the ordering contract, RunUntil/RunFor
// boundary semantics, cancellation and handle staleness, periodic timers,
// and death on scheduling in the past.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace pw::sim {
namespace {

// ------------------------------------------------- randomized ordering --

// The engine's whole contract in one property: events run in (time, seq)
// order. A randomized schedule (including duplicates and nested schedules)
// must replay exactly like a stable sort of (time, insertion index).
TEST(SimPropertyTest, RandomScheduleRunsInStableTimeOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    Simulator sim;
    std::vector<std::pair<std::int64_t, int>> expected;  // (time, id)
    std::vector<int> actual;
    const int n = 200 + static_cast<int>(rng.NextBounded(300));
    for (int i = 0; i < n; ++i) {
      // Small time range forces many FIFO ties.
      const auto t = static_cast<std::int64_t>(rng.NextBounded(50));
      expected.emplace_back(t, i);
      sim.Schedule(Duration::Nanos(t), [&actual, i] { actual.push_back(i); });
    }
    sim.Run();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    ASSERT_EQ(actual.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i].second) << "seed " << seed << " pos " << i;
    }
  }
}

// Nested scheduling: events scheduled from callbacks at the current time
// run after everything already queued for that time (their seq is larger).
TEST(SimPropertyTest, NestedZeroDelayEventsRunAfterQueuedPeers) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Duration::Nanos(5), [&] {
    order.push_back(0);
    sim.Schedule(Duration::Zero(), [&] { order.push_back(2); });
  });
  sim.Schedule(Duration::Nanos(5), [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// A future event at time t scheduled earlier (smaller seq) runs before
// events that land at t with larger seq — the heap and the zero-delay
// now-ring merge by sequence number.
TEST(SimPropertyTest, HeapAndNowRingMergeBySequence) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Duration::Nanos(10), [&] { order.push_back(1); });
  sim.Schedule(Duration::Nanos(10), [&] { order.push_back(2); });
  sim.Schedule(Duration::Nanos(4), [&] {
    // At t=4: schedule for t=10 — seq after the two events above.
    sim.Schedule(Duration::Nanos(6), [&] { order.push_back(3); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Stress: randomized interleaving of upfront and nested scheduling must be
// bit-identical across runs.
TEST(SimPropertyTest, StressDeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      const auto t = static_cast<std::int64_t>(rng.NextBounded(1000));
      const int fan = 1 + static_cast<int>(rng.NextBounded(3));
      sim.Schedule(Duration::Nanos(t), [&sim, &order, i, fan] {
        order.push_back(i);
        for (int f = 0; f < fan; ++f) {
          sim.Schedule(Duration::Nanos(f * 17), [&order, i, f] {
            order.push_back(1000 * (f + 1) + i);
          });
        }
      });
    }
    sim.Run();
    return order;
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
}

// -------------------------------------------------- boundary semantics --

TEST(SimPropertyTest, RunUntilExecutesEventsAtExactlyT) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(Duration::Micros(10), [&] { ++ran; });  // exactly t: runs
  sim.Schedule(Duration::Micros(10) + Duration::Nanos(1), [&] { ++ran; });
  sim.RunUntil(TimePoint() + Duration::Micros(10));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now().nanos(), Duration::Micros(10).nanos());  // clock lands on t
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimPropertyTest, RunForBoundaryIsInclusiveAndClockAdvances) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(Duration::Micros(3), [&] { ++ran; });
  const std::int64_t executed = sim.RunFor(Duration::Micros(3));
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now().ToMicros(), 3.0);
  // Empty window still advances the clock.
  sim.RunFor(Duration::Micros(7));
  EXPECT_EQ(sim.now().ToMicros(), 10.0);
}

TEST(SimPropertyTest, RunUntilThenRunResumesExactly) {
  Rng rng(7);
  Simulator sim;
  std::vector<std::int64_t> fire_times;
  for (int i = 0; i < 200; ++i) {
    const auto t = static_cast<std::int64_t>(rng.NextBounded(2000));
    sim.Schedule(Duration::Nanos(t),
                 [&fire_times, &sim] { fire_times.push_back(sim.now().nanos()); });
  }
  sim.RunUntil(TimePoint() + Duration::Nanos(1000));
  const std::size_t at_boundary = fire_times.size();
  for (std::size_t i = 0; i < at_boundary; ++i) EXPECT_LE(fire_times[i], 1000);
  sim.Run();
  for (std::size_t i = at_boundary; i < fire_times.size(); ++i) {
    EXPECT_GT(fire_times[i], 1000);
  }
  EXPECT_EQ(fire_times.size(), 200u);
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

// ------------------------------------------------------- cancellation --

TEST(SimCancelTest, CancelPendingEventPreventsFiring) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.Schedule(Duration::Micros(5), [&] { ++fired; });
  EXPECT_TRUE(sim.IsPending(h));
  EXPECT_TRUE(sim.Cancel(h));
  EXPECT_FALSE(sim.IsPending(h));
  EXPECT_TRUE(sim.empty());
  sim.Run();
  EXPECT_EQ(fired, 0);
  // Second cancel is a stale no-op.
  EXPECT_FALSE(sim.Cancel(h));
}

TEST(SimCancelTest, CancelFiredHandleIsStaleNoOp) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.Schedule(Duration::Micros(1), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.IsPending(h));
  EXPECT_FALSE(sim.Cancel(h));
}

TEST(SimCancelTest, StaleHandleStaysStaleAfterNodeRecycling) {
  Simulator sim;
  int first = 0, second = 0;
  EventHandle h1 = sim.Schedule(Duration::Micros(1), [&] { ++first; });
  sim.Run();
  // The pool recycles h1's node for the next event; h1 must not be able to
  // cancel the new occupant.
  EventHandle h2 = sim.Schedule(Duration::Micros(1), [&] { ++second; });
  EXPECT_FALSE(sim.Cancel(h1));
  EXPECT_TRUE(sim.IsPending(h2));
  sim.Run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(SimCancelTest, DefaultHandleIsInvalid) {
  Simulator sim;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(sim.IsPending(h));
  EXPECT_FALSE(sim.Cancel(h));
}

TEST(SimCancelTest, RandomizedCancellationExactlyTheSurvivorsFire) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    Simulator sim;
    std::vector<int> fired;
    std::vector<EventHandle> handles;
    const int n = 300;
    for (int i = 0; i < n; ++i) {
      handles.push_back(sim.Schedule(
          Duration::Nanos(static_cast<std::int64_t>(rng.NextBounded(100))),
          [&fired, i] { fired.push_back(i); }));
    }
    std::vector<bool> cancelled(n, false);
    for (int i = 0; i < n; ++i) {
      if (rng.NextBounded(2) == 0) {
        const auto idx = static_cast<std::size_t>(i);
        cancelled[idx] = sim.Cancel(handles[idx]);
        EXPECT_TRUE(cancelled[idx]);
      }
    }
    const std::size_t survivors = static_cast<std::size_t>(
        std::count(cancelled.begin(), cancelled.end(), false));
    EXPECT_EQ(sim.pending_events(), survivors);
    sim.Run();
    EXPECT_EQ(fired.size(), survivors) << "seed " << seed;
    for (int id : fired) EXPECT_FALSE(cancelled[static_cast<std::size_t>(id)]);
  }
}

TEST(SimCancelTest, CancelReleasesCapturedResourcesEagerly) {
  // The watchdog pattern: the cancelled callback's captures must die at
  // Cancel() time, not when simulated time reaches the original timestamp.
  Simulator sim;
  auto guarded = std::make_shared<int>(7);
  EventHandle h =
      sim.Schedule(Duration::Seconds(10), [guarded] { (void)*guarded; });
  EXPECT_EQ(guarded.use_count(), 2);
  EXPECT_TRUE(sim.Cancel(h));
  EXPECT_EQ(guarded.use_count(), 1);  // released immediately
  sim.Run();
  EXPECT_EQ(guarded.use_count(), 1);
}

TEST(SimCancelTest, PeriodicSelfCancelDefersCallableDestructionSafely) {
  // A periodic timer cancelling itself from inside its own callback: the
  // running lambda must survive its own Cancel() call; its captures are
  // released once the tombstone pops (or at simulator destruction).
  auto guarded = std::make_shared<int>(0);
  {
    Simulator sim;
    EventHandle h;
    h = sim.SchedulePeriodic(Duration::Micros(1), [&sim, &h, guarded] {
      ++*guarded;  // touch captures after Cancel below would have destroyed them
      sim.Cancel(h);
      ++*guarded;
    });
    sim.RunFor(Duration::Micros(5));
    EXPECT_EQ(*guarded, 2);  // fired once, both increments ran
    sim.Run();
  }
  EXPECT_EQ(guarded.use_count(), 1);
}

TEST(SimCancelTest, CancelledEventsDoNotCountAsExecuted) {
  Simulator sim;
  EventHandle h = sim.Schedule(Duration::Micros(1), [] {});
  sim.Schedule(Duration::Micros(2), [] {});
  sim.Cancel(h);
  EXPECT_EQ(sim.Run(), 1);
  EXPECT_EQ(sim.events_executed(), 1);
}

// ---------------------------------------------------- periodic timers --

TEST(SimTimerTest, PeriodicFiresAtEveryMultipleUntilCancelled) {
  Simulator sim;
  std::vector<std::int64_t> fires;
  EventHandle h = sim.SchedulePeriodic(Duration::Micros(10), [&] {
    fires.push_back(sim.now().nanos());
  });
  sim.RunFor(Duration::Micros(45));
  EXPECT_EQ(fires, (std::vector<std::int64_t>{10000, 20000, 30000, 40000}));
  EXPECT_TRUE(sim.IsPending(h));
  EXPECT_TRUE(sim.Cancel(h));
  sim.Run();  // terminates: no live events remain
  EXPECT_EQ(fires.size(), 4u);
}

TEST(SimTimerTest, PeriodicTimerCanCancelItself) {
  Simulator sim;
  int fires = 0;
  EventHandle h;
  h = sim.SchedulePeriodic(Duration::Micros(1), [&] {
    if (++fires == 3) sim.Cancel(h);
  });
  sim.RunFor(Duration::Millis(1));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(sim.IsPending(h));
  EXPECT_TRUE(sim.empty());
}

TEST(SimTimerTest, TimerFireInterleavesFifoWithEqualTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  // Timer fires at t=10; an ordinary event also lands at t=10 but is
  // scheduled after the timer, so the timer (smaller seq) runs first.
  sim.SchedulePeriodic(Duration::Nanos(10), [&] { order.push_back(1); });
  sim.Schedule(Duration::Nanos(10), [&] { order.push_back(2); });
  sim.RunFor(Duration::Nanos(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimTimerTest, ManyTimersStayPeriodicUnderChurn) {
  Rng rng(42);
  Simulator sim;
  std::vector<std::int64_t> counts(8, 0);
  std::vector<EventHandle> timers;
  for (int t = 0; t < 8; ++t) {
    timers.push_back(sim.SchedulePeriodic(
        Duration::Nanos(100 * (t + 1)),
        [&counts, t] { ++counts[static_cast<std::size_t>(t)]; }));
  }
  // Concurrent one-shot noise.
  for (int i = 0; i < 500; ++i) {
    sim.Schedule(Duration::Nanos(static_cast<std::int64_t>(rng.NextBounded(4000))),
                 [] {});
  }
  sim.RunFor(Duration::Nanos(4000));
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(counts[static_cast<std::size_t>(t)], 4000 / (100 * (t + 1)))
        << "timer " << t;
  }
  for (auto& h : timers) EXPECT_TRUE(sim.Cancel(h));
}

// ------------------------------------------------------------- deaths --

TEST(SimDeathTest, SchedulingInThePastDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Simulator sim;
  sim.Schedule(Duration::Micros(10), [] {});
  sim.Run();  // now() == 10us
  EXPECT_DEATH(sim.ScheduleAt(TimePoint() + Duration::Micros(5), [] {}),
               "cannot schedule in the past");
}

TEST(SimDeathTest, NonPositivePeriodicPeriodDies) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Simulator sim;
  EXPECT_DEATH(sim.SchedulePeriodic(Duration::Zero(), [] {}),
               "period must be > 0");
}

}  // namespace
}  // namespace pw::sim
