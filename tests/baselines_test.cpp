#include <gtest/gtest.h>

#include <memory>

#include "baselines/jax_mc.h"
#include "baselines/microbench.h"
#include "baselines/pathways_driver.h"
#include "baselines/raylike.h"
#include "baselines/tf1.h"
#include "hw/cluster.h"
#include "sim/simulator.h"

namespace pw::baselines {
namespace {

MicrobenchSpec QuickSpec(CallMode mode) {
  MicrobenchSpec spec;
  spec.mode = mode;
  spec.chain_length = 16;  // shorter chains keep unit tests fast
  spec.unit_compute = Duration::Micros(2);
  spec.warmup = Duration::Millis(10);
  spec.measure = Duration::Millis(100);
  return spec;
}

// ------------------------------------------------------------------- JAX --

TEST(JaxMcTest, FusedAmortizesPythonOverhead) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, /*hosts=*/4);
  JaxMultiController jax(cluster.get());
  const auto op = jax.Measure(QuickSpec(CallMode::kOpByOp));

  sim::Simulator sim2;
  auto cluster2 = hw::Cluster::ConfigA(&sim2, 4);
  JaxMultiController jax2(cluster2.get());
  const auto fused = jax2.Measure(QuickSpec(CallMode::kFused));

  EXPECT_GT(op.computations_per_sec, 0);
  // Fusing 16 computations into one call must beat per-call dispatch.
  EXPECT_GT(fused.computations_per_sec, 4 * op.computations_per_sec);
}

TEST(JaxMcTest, OpByOpIsPythonBound) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 2);
  JaxMultiController jax(cluster.get());
  const auto r = jax.Measure(QuickSpec(CallMode::kOpByOp));
  // Python overhead is 800us (+5% jitter tail): rate just above ~1190/s.
  EXPECT_GT(r.computations_per_sec, 800);
  EXPECT_LT(r.computations_per_sec, 1300);
}

TEST(JaxMcTest, UnitKernelTimeGrowsWithScale) {
  sim::Simulator sim;
  auto small = hw::Cluster::ConfigA(&sim, 2);
  sim::Simulator sim2;
  auto large = hw::Cluster::ConfigA(&sim2, 256);
  JaxMultiController jax_small(small.get());
  JaxMultiController jax_large(large.get());
  const MicrobenchSpec spec = QuickSpec(CallMode::kFused);
  EXPECT_LT(jax_small.UnitKernelTime(spec).nanos(),
            jax_large.UnitKernelTime(spec).nanos());
}

// -------------------------------------------------------------------- TF1 --

TEST(Tf1Test, BarrierSerializesComputations) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 4);
  Tf1SingleController tf(cluster.get());
  const auto r = tf.Measure(QuickSpec(CallMode::kOpByOp));
  EXPECT_GT(r.computations_per_sec, 0);
  // Per computation: 16 coordinator messages + DCN + barrier RTT: slow
  // (well under the ~10k/s a pipelined dispatcher would reach).
  EXPECT_LT(r.computations_per_sec, 4000);
}

TEST(Tf1Test, ChainedSkipsPerCallClientWork) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 4);
  Tf1SingleController tf(cluster.get());
  const auto op = tf.Measure(QuickSpec(CallMode::kOpByOp));
  sim::Simulator sim2;
  auto cluster2 = hw::Cluster::ConfigA(&sim2, 4);
  Tf1SingleController tf2(cluster2.get());
  const auto chained = tf2.Measure(QuickSpec(CallMode::kChained));
  EXPECT_GT(chained.computations_per_sec, op.computations_per_sec);
}

TEST(Tf1Test, FusedBeatsChained) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 4);
  Tf1SingleController tf(cluster.get());
  const auto chained = tf.Measure(QuickSpec(CallMode::kChained));
  sim::Simulator sim2;
  auto cluster2 = hw::Cluster::ConfigA(&sim2, 4);
  Tf1SingleController tf2(cluster2.get());
  const auto fused = tf2.Measure(QuickSpec(CallMode::kFused));
  EXPECT_GT(fused.computations_per_sec, chained.computations_per_sec);
}

// -------------------------------------------------------------------- Ray --

TEST(RayTest, ModesOrderAsInPaper) {
  // Ray-F > Ray-C > Ray-O (Fig. 5 legend order).
  auto measure = [](CallMode mode) {
    sim::Simulator sim;
    auto cluster = hw::Cluster::GpuVm(&sim, /*hosts=*/8);
    RayLike ray(cluster.get());
    return ray.Measure(QuickSpec(mode)).computations_per_sec;
  };
  const double o = measure(CallMode::kOpByOp);
  const double c = measure(CallMode::kChained);
  const double f = measure(CallMode::kFused);
  EXPECT_GT(f, c);
  EXPECT_GT(c, o);
  EXPECT_GT(o, 0);
}

TEST(RayTest, DcnRingCollectivesAreSlow) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::GpuVm(&sim, 16);
  RayLike ray(cluster.get());
  // 2*(16-1) hops of 25us plus launch: ~760us for a scalar all-reduce.
  EXPECT_GT(ray.UnitCollectiveTime().ToMicros(), 700.0);
}

// --------------------------------------------------------------- Pathways --

TEST(PathwaysDriverTest, ModesOrderAsInPaper) {
  // PW-F > PW-C > PW-O (Fig. 5).
  auto measure = [](CallMode mode) {
    sim::Simulator sim;
    auto cluster = hw::Cluster::ConfigA(&sim, 4);
    PathwaysDriver pw(cluster.get());
    return pw.Measure(QuickSpec(mode)).computations_per_sec;
  };
  const double o = measure(CallMode::kOpByOp);
  const double c = measure(CallMode::kChained);
  const double f = measure(CallMode::kFused);
  EXPECT_GT(f, c);
  EXPECT_GT(c, o);
  EXPECT_GT(o, 0);
}

TEST(PathwaysDriverTest, FusedMatchesJaxAtScale) {
  // The paper's headline: PW-F matches JAX-F once enough work is fused.
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 8);
  JaxMultiController jax(cluster.get());
  MicrobenchSpec spec = QuickSpec(CallMode::kFused);
  spec.chain_length = 128;
  const double jax_rate = jax.Measure(spec).computations_per_sec;

  sim::Simulator sim2;
  auto cluster2 = hw::Cluster::ConfigA(&sim2, 8);
  PathwaysDriver pw(cluster2.get());
  const double pw_rate = pw.Measure(spec).computations_per_sec;

  EXPECT_GT(pw_rate, 0.85 * jax_rate);
  EXPECT_LT(pw_rate, 1.25 * jax_rate);
}

TEST(PathwaysDriverTest, ChainedBeatsJaxOpByOp) {
  // Paper: "PATHWAYS Chained outperforms JAX OpByOp up to 256 cores,
  // because PATHWAYS can execute back-to-back computations directly from
  // C++ while JAX OpByOp transitions to Python for every computation."
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigA(&sim, 8);  // 32 cores
  JaxMultiController jax(cluster.get());
  MicrobenchSpec spec = QuickSpec(CallMode::kOpByOp);
  const double jax_o = jax.Measure(spec).computations_per_sec;

  sim::Simulator sim2;
  auto cluster2 = hw::Cluster::ConfigA(&sim2, 8);
  PathwaysDriver pw(cluster2.get());
  MicrobenchSpec chain_spec = QuickSpec(CallMode::kChained);
  chain_spec.chain_length = 128;
  // A 128-node chained program takes tens of ms (32 dispatch messages per
  // gang); give the meter whole programs to observe.
  chain_spec.max_inflight_calls = 2;
  chain_spec.warmup = Duration::Millis(100);
  chain_spec.measure = Duration::Seconds(1);
  const double pw_c = pw.Measure(chain_spec).computations_per_sec;

  EXPECT_GT(pw_c, jax_o);
}

}  // namespace
}  // namespace pw::baselines
