// Partitioned (conservatively synchronized parallel) engine tests:
// window-execution primitives, cross-LP messaging, determinism across
// sim-thread counts, LP channels, and the per-LP arena.
#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/units.h"
#include "gtest/gtest.h"
#include "hw/partitioned_cluster.h"
#include "net/lp_channel.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace pw::sim {
namespace {

// ------------------------------------------------- window primitives --

// A log entry (time, tag) appended by events; the vehicle for comparing
// execution order across engines and thread counts.
using Log = std::vector<std::pair<std::int64_t, int>>;

// Schedules a seeded tree of events on `sim`: each event logs, then may
// schedule children at random small offsets. Exercises ring/wheel/heap.
void SeedWorkload(Simulator& sim, Log* log, std::uint64_t seed) {
  auto chain = std::make_shared<std::function<void(int, int)>>();
  *chain = [&sim, log, chain, seed](int id, int depth) {
    log->emplace_back(sim.now().nanos(), id);
    if (depth >= 6) return;
    Rng rng(seed ^ (static_cast<std::uint64_t>(id) * 1000003 + depth));
    const int kids = static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < kids; ++k) {
      const std::int64_t delay = static_cast<std::int64_t>(
          rng.NextBounded(3000));  // 0 (ring), wheel, and heap delays
      sim.Schedule(Duration::Nanos(delay),
                   [chain, id, k, depth] { (*chain)(id * 4 + k, depth + 1); });
    }
  };
  for (int i = 0; i < 16; ++i) {
    sim.Schedule(Duration::Nanos(static_cast<std::int64_t>(i) * 700),
                 [chain, i] { (*chain)(i, 0); });
  }
}

TEST(RunUntilBeforeTest, SlicedRunIsBitIdenticalToUnsliced) {
  Log a, b;
  Simulator ref;
  SeedWorkload(ref, &a, 42);
  ref.Run();

  Simulator sliced;
  SeedWorkload(sliced, &b, 42);
  // Arbitrary, misaligned window ends; the clock must never move between
  // events, so slicing cannot perturb wheel/ring/heap merge order.
  std::int64_t w = 37;
  while (sliced.HasQueued()) {
    sliced.RunUntilBefore(TimePoint::FromNanos(w));
    w += 211;
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(ref.now().nanos(), sliced.now().nanos());
  EXPECT_EQ(ref.events_executed(), sliced.events_executed());
}

TEST(RunUntilBeforeTest, StrictBoundLeavesEventAtWindowEnd) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Nanos(100), [&] { ++fired; });
  sim.RunUntilBefore(TimePoint::FromNanos(100));  // strictly-before: stays
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.HasQueued());
  EXPECT_EQ(sim.NextQueuedTimeNs(), 100);
  sim.RunUntilBefore(TimePoint::FromNanos(101));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.HasQueued());
  // Unlike RunUntil, the clock stays at the last executed event.
  EXPECT_EQ(sim.now().nanos(), 100);
}

TEST(RunUntilBeforeTest, PredicateCheckedBeforeFirstEventAndAfterEach) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Nanos(10), [&] { ++fired; });
  sim.Schedule(Duration::Nanos(20), [&] { ++fired; });
  EXPECT_TRUE(sim.RunUntilBeforePredicate(TimePoint::Max(),
                                          [] { return true; }));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.RunUntilBeforePredicate(TimePoint::Max(),
                                          [&] { return fired == 1; }));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.RunUntilBeforePredicate(TimePoint::FromNanos(15),
                                           [&] { return fired == 2; }));
  EXPECT_EQ(fired, 1);  // the t=20 event is outside the window
}

TEST(SimulatorTest, NextQueuedTimeInfWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.HasQueued());
  EXPECT_EQ(sim.NextQueuedTimeNs(), std::numeric_limits<std::int64_t>::max());
}

// --------------------------------------------- partitioned engine core --

TEST(PartitionedSimulatorTest, SingleLpRunMatchesSerialExactly) {
  Log a, b;
  Simulator ref;
  SeedWorkload(ref, &a, 7);
  const std::int64_t ref_events = ref.Run();

  PartitionedSimulator part({.num_lps = 1, .threads = 1});
  SeedWorkload(part.lp(0), &b, 7);
  const std::int64_t part_events = part.Run();

  EXPECT_EQ(a, b);
  EXPECT_EQ(ref_events, part_events);
  EXPECT_EQ(ref.now().nanos(), part.lp(0).now().nanos());
}

TEST(PartitionedSimulatorTest, IdleLpsDoNotConstrainTheActiveOne) {
  // All events on LP 2 of 4: the whole run must complete in one round
  // (idle peers have no lower bound to respect).
  PartitionedSimulator part(
      {.num_lps = 4, .threads = 1, .lookahead = Duration::Nanos(5)});
  Log log;
  SeedWorkload(part.lp(2), &log, 11);
  part.Run();
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(part.stats().rounds, 1);
}

TEST(PartitionedSimulatorTest, RunUntilPredicateParityWithSerial) {
  // The golden harness alternates RunUntilPredicate with fresh submissions;
  // the partitioned engine must stop at the exact same clocks.
  Simulator ref;
  Log ref_log;
  SeedWorkload(ref, &ref_log, 99);
  int ref_seen = 0;
  ref.RunUntilPredicate([&] { return ref_log.size() >= 10; });
  const std::int64_t ref_stop = ref.now().nanos();
  ref_seen = static_cast<int>(ref_log.size());
  ref.Run();

  PartitionedSimulator part(
      {.num_lps = 4, .threads = 2, .lookahead = Duration::Nanos(5)});
  Log part_log;
  SeedWorkload(part.lp(0), &part_log, 99);
  part.RunUntilPredicate([&] { return part_log.size() >= 10; });
  EXPECT_EQ(part.lp(0).now().nanos(), ref_stop);
  EXPECT_EQ(static_cast<int>(part_log.size()), ref_seen);
  part.Run();
  EXPECT_EQ(ref_log, part_log);
}

TEST(PartitionedSimulatorTest, RunUntilSnapsEveryClock) {
  PartitionedSimulator part(
      {.num_lps = 3, .threads = 1, .lookahead = Duration::Nanos(10)});
  int fired = 0;
  part.lp(1).Schedule(Duration::Nanos(50), [&] { ++fired; });
  part.lp(2).Schedule(Duration::Micros(5), [&] { ++fired; });
  part.RunUntil(TimePoint::FromNanos(1000));
  EXPECT_EQ(fired, 1);  // only the t=50 event is due
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(part.lp(i).now().nanos(), 1000) << "lp " << i;
  }
  part.Run();
  EXPECT_EQ(fired, 2);
}

TEST(PartitionedSimulatorTest, CrossLpSendsDeliverInDeterministicOrder) {
  // Two LPs flood a third with equal-timestamp messages; the receiver's
  // observed order must be (time, src, per-src seq) regardless of threads.
  auto run = [](int threads) {
    PartitionedSimulator part(
        {.num_lps = 3, .threads = threads, .lookahead = Duration::Nanos(100)});
    std::vector<std::pair<int, int>> received;  // (src, msg index)
    for (int src = 0; src < 2; ++src) {
      part.lp(src).Schedule(Duration::Nanos(10 + src), [&part, &received,
                                                        src] {
        for (int k = 0; k < 4; ++k) {
          part.SendAt(src, 2, TimePoint::FromNanos(500),
                      [&received, src, k] { received.emplace_back(src, k); });
        }
      });
    }
    part.Run();
    return received;
  };
  const auto r1 = run(1);
  const auto r2 = run(2);
  ASSERT_EQ(r1.size(), 8u);
  EXPECT_EQ(r1, r2);
  // src 0's batch sorts ahead of src 1's at the shared timestamp.
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(r1[static_cast<std::size_t>(k)], std::make_pair(0, k));
    EXPECT_EQ(r1[static_cast<std::size_t>(4 + k)], std::make_pair(1, k));
  }
}

TEST(PartitionedSimulatorDeathTest, SendBelowLookaheadDies) {
  PartitionedSimulator part(
      {.num_lps = 2, .threads = 1, .lookahead = Duration::Micros(1)});
  EXPECT_DEATH(part.SendAt(0, 1, TimePoint::FromNanos(10), [] {}),
               "lookahead");
}

// Ring workload: every LP runs a local event chain and periodically sends
// to its right neighbor; the neighbor logs the arrival. Used to prove
// 1-vs-N-thread bit-identity with real cross-LP traffic.
struct RingWorld {
  explicit RingWorld(int lps, int threads)
      : part({.num_lps = lps, .threads = threads,
              .lookahead = Duration::Nanos(200)}),
        logs(static_cast<std::size_t>(lps)) {
    for (int i = 0; i < lps; ++i) {
      Step(i, 0);
    }
  }

  void Step(int lp, int step) {
    if (step >= 40) return;
    Rng rng((static_cast<std::uint64_t>(lp) << 32) ^
            static_cast<std::uint64_t>(step));
    const std::int64_t work = 50 + static_cast<std::int64_t>(
                                       rng.NextBounded(150));
    part.lp(lp).Schedule(Duration::Nanos(work), [this, lp, step] {
      logs[static_cast<std::size_t>(lp)].emplace_back(
          part.lp(lp).now().nanos(), step);
      const int dst = (lp + 1) % part.num_lps();
      if (dst != lp && step % 3 == 0) {
        const TimePoint at =
            part.lp(lp).now() + part.lookahead() + Duration::Nanos(17);
        part.SendAt(lp, dst, at, [this, dst, lp, step] {
          logs[static_cast<std::size_t>(dst)].emplace_back(
              part.lp(dst).now().nanos(), 1000 + lp * 100 + step);
        });
      }
      Step(lp, step + 1);
    });
  }

  PartitionedSimulator part;
  std::vector<Log> logs;
};

TEST(PartitionedSimulatorTest, RingWorkloadBitIdenticalAcrossThreadCounts) {
  RingWorld one(6, 1);
  one.part.Run();
  for (const int threads : {2, 4}) {
    RingWorld many(6, threads);
    many.part.Run();
    EXPECT_EQ(one.logs, many.logs) << threads << " threads";
    EXPECT_EQ(one.part.TotalEventsExecuted(), many.part.TotalEventsExecuted());
    EXPECT_EQ(one.part.stats().messages_delivered,
              many.part.stats().messages_delivered);
  }
  EXPECT_GT(one.part.stats().messages_delivered, 0);
  EXPECT_GT(one.part.stats().rounds, 1);
}

TEST(PartitionedSimulatorTest, BlockedProbesAggregateAcrossLps) {
  PartitionedSimulator part({.num_lps = 2, .threads = 1});
  part.lp(1).RegisterBlockedProbe([] { return std::string("stuck dev"); });
  EXPECT_TRUE(part.Deadlocked());
  ASSERT_EQ(part.BlockedEntities().size(), 1u);
  EXPECT_EQ(part.BlockedEntities()[0], "stuck dev");
}

// ------------------------------------------------------- LP channels --

TEST(LpChannelTest, PerPairFifoUnderSerialization) {
  PartitionedSimulator part(
      {.num_lps = 2, .threads = 1, .lookahead = Duration::Micros(1)});
  net::LpChannelParams p;
  p.latency = Duration::Micros(1);
  p.bandwidth = 1e9;  // 1 B/ns: large messages serialize visibly
  net::LpChannelMap chan(&part, p);
  std::vector<int> got;
  part.lp(0).Schedule(Duration::Nanos(10), [&] {
    for (int k = 0; k < 5; ++k) {
      chan.Send(0, 1, /*bytes=*/4096, [&got, k] { got.push_back(k); });
    }
  });
  part.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(chan.messages_sent(), 5);
  EXPECT_EQ(chan.messages_delivered(), 5);
  EXPECT_EQ(chan.delivered_to(1), 5);
}

TEST(LpChannelTest, PartitionHoldsAndHealReplaysExactlyOnce) {
  PartitionedSimulator part(
      {.num_lps = 2, .threads = 1, .lookahead = Duration::Micros(1)});
  net::LpChannelParams p;
  p.latency = Duration::Micros(1);
  net::LpChannelMap chan(&part, p);
  // LP 1 cut over [5us, 50us); sends at 10us are held until the heal.
  chan.SchedulePartition(1, TimePoint::FromNanos(5000),
                         TimePoint::FromNanos(50000));
  std::vector<std::pair<std::int64_t, int>> got;
  part.lp(0).Schedule(Duration::Micros(10), [&] {
    for (int k = 0; k < 3; ++k) {
      const TimePoint est =
          chan.Send(0, 1, 256, [&got, &part, k] {
            got.emplace_back(part.lp(1).now().nanos(), k);
          });
      EXPECT_EQ(est, net::LpChannelMap::kHeldSentinel);
    }
  });
  part.RunUntil(TimePoint::FromNanos(20000));
  EXPECT_EQ(chan.messages_held(), 3u);
  EXPECT_EQ(chan.held_bytes(), 3 * 256);
  part.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(chan.messages_held(), 0u);
  EXPECT_EQ(chan.messages_delivered(), 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(got[static_cast<std::size_t>(k)].second, k);  // original order
    EXPECT_GE(got[static_cast<std::size_t>(k)].first, 50000);  // post-heal
  }
}

TEST(LpChannelTest, DegradeSlowsTransfersInsideWindowOnly) {
  auto deliver_time = [](bool degraded) {
    PartitionedSimulator part(
        {.num_lps = 2, .threads = 1, .lookahead = Duration::Micros(1)});
    net::LpChannelParams p;
    p.latency = Duration::Micros(1);
    p.bandwidth = 1e9;
    net::LpChannelMap chan(&part, p);
    if (degraded) {
      chan.ScheduleDegrade(0, 0.25, TimePoint::FromNanos(0),
                           TimePoint::FromNanos(100000));
    }
    std::int64_t delivered_at = 0;
    part.lp(0).Schedule(Duration::Micros(2), [&] {
      chan.Send(0, 1, 64 * 1024,
                [&] { delivered_at = part.lp(1).now().nanos(); });
    });
    part.Run();
    return delivered_at;
  };
  const std::int64_t nominal = deliver_time(false);
  const std::int64_t degraded = deliver_time(true);
  EXPECT_GT(nominal, 0);
  EXPECT_GT(degraded, nominal);
}

TEST(LpChannelDeathTest, LatencyBelowLookaheadDies) {
  PartitionedSimulator part(
      {.num_lps = 2, .threads = 1, .lookahead = Duration::Micros(10)});
  net::LpChannelParams p;
  p.latency = Duration::Micros(1);
  EXPECT_DEATH(net::LpChannelMap(&part, p), "lookahead");
}

// ------------------------------------------------- partitioned cluster --

// Drives a small training-like workload on a PartitionedCluster: every
// island does a local ICI transfer per step, then ships activations to the
// next island over the inter-LP channel; the log of deliveries must be
// byte-identical across sim-thread counts.
struct ClusterWorkloadResult {
  Log log;                    // (delivery time ns, dst island)
  Bytes ici_bytes = 0;        // summed across islands
  std::int64_t delivered = 0;
};

ClusterWorkloadResult RunClusterWorkload(int threads) {
  constexpr int kIslands = 4;
  constexpr int kSteps = 12;
  PartitionedSimulator part({.num_lps = kIslands, .threads = threads,
                             .lookahead = Duration::Micros(20)});
  hw::PartitionedCluster::Options opts;
  opts.islands = kIslands;
  opts.params.host_jitter_frac = 0;
  hw::PartitionedCluster pc(&part, opts);

  // LP-ownership discipline: logs[i] is appended only by events executing on
  // LP i — no shared mutable state between worker threads. The canonical
  // (time, island, seq) merge below is deterministic, so comparing merged
  // logs across thread counts is still a bit-identity check.
  std::array<Log, kIslands> logs;
  auto step = std::make_shared<std::function<void(int, int)>>();
  *step = [&, step](int island, int n) {
    if (n >= kSteps) return;
    hw::Island& isl = pc.island_cluster(island).island(0);
    isl.Transfer(hw::DeviceId(0), hw::DeviceId(1), KiB(256))
        .Then([&, step, island, n](sim::Unit) {
          int dst = (island + 1) % kIslands;
          pc.SendCrossIsland(island, dst, KiB(64), [&, step, dst, n] {
            logs[static_cast<std::size_t>(dst)].emplace_back(
                pc.engine().lp(dst).now().nanos(), dst);
            (*step)(dst, n + 1);
          });
        });
  };
  for (int i = 0; i < kIslands; ++i) {
    part.lp(i).ScheduleAt(TimePoint::FromNanos(0), [&, step, i] {
      (*step)(i, 0);
    });
  }
  part.Run();
  EXPECT_FALSE(part.Deadlocked());

  ClusterWorkloadResult result;
  for (const Log& log : logs) {
    result.log.insert(result.log.end(), log.begin(), log.end());
  }
  std::sort(result.log.begin(), result.log.end());

  for (int i = 0; i < kIslands; ++i) {
    result.ici_bytes += pc.island_cluster(i).island(0).ici_bytes_transferred();
  }
  result.delivered = pc.channels().messages_delivered();
  return result;
}

TEST(PartitionedClusterTest, CrossIslandWorkloadBitIdenticalAcrossThreads) {
  ClusterWorkloadResult serial = RunClusterWorkload(1);
  EXPECT_EQ(serial.delivered, 4 * 12);
  EXPECT_GT(serial.ici_bytes, 0);
  for (int threads : {2, 4}) {
    ClusterWorkloadResult parallel = RunClusterWorkload(threads);
    EXPECT_EQ(parallel.log, serial.log) << "threads=" << threads;
    EXPECT_EQ(parallel.ici_bytes, serial.ici_bytes);
    EXPECT_EQ(parallel.delivered, serial.delivered);
  }
}

TEST(PartitionedClusterDeathTest, FewerLpsThanIslandsDies) {
  PartitionedSimulator part(
      {.num_lps = 2, .threads = 1, .lookahead = Duration::Micros(20)});
  hw::PartitionedCluster::Options opts;
  opts.islands = 4;
  EXPECT_DEATH(hw::PartitionedCluster(&part, opts), "LP");
}

// ------------------------------------------------------------- arena --

TEST(ArenaTest, AllocationsAreAlignedAndDistinct) {
  common::Arena arena;
  std::vector<std::int64_t*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t* p = arena.New<std::int64_t>(i);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(std::int64_t), 0u);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[static_cast<std::size_t>(i)], i);
  }
  EXPECT_GE(arena.bytes_allocated(), 8000u);
}

TEST(ArenaTest, ResetReusesMemoryWithoutGrowth) {
  common::Arena arena;
  for (int i = 0; i < 4096; ++i) arena.New<double>(1.0);
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.num_chunks();
  for (int round = 0; round < 5; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    for (int i = 0; i < 4096; ++i) arena.New<double>(2.0);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
    EXPECT_EQ(arena.num_chunks(), chunks);
  }
}

TEST(ArenaTest, LargeAllocationGetsDedicatedChunk) {
  common::Arena arena;
  char* big = arena.NewArray<char>(3u << 20);  // beyond kMaxChunkBytes
  big[0] = 'x';
  big[(3u << 20) - 1] = 'y';
  EXPECT_GE(arena.bytes_reserved(), 3u << 20);
}

}  // namespace
}  // namespace pw::sim
