// Unit tests for the fault-injection subsystem: device availability state
// machine, link degradation/partition, plan generation, and the pathways
// reaction path (abort, remap, retry). The randomized invariant layer lives
// in faults_property_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"

namespace pw::faults {
namespace {

using pathways::Client;
using pathways::ExecutionResult;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::RetryPolicy;
using pathways::ValueRef;
using xlasim::CompiledFunction;

struct World {
  explicit World(int hosts = 2, int devices_per_host = 4, int islands = 1,
                 pathways::PathwaysOptions options = {}) {
    hw::SystemParams params = hw::SystemParams::TpuDefault();
    params.host_jitter_frac = 0;  // deterministic timing in unit tests
    cluster = std::make_unique<hw::Cluster>(&sim, params, islands, hosts,
                                            devices_per_host);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
  }

  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
};

// ------------------------------------------- Device availability machine --

TEST(DeviceFaultTest, FailDropsQueueAndFiresCompletions) {
  sim::Simulator sim;
  hw::Device dev(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(1),
                 Duration::Micros(1));
  std::vector<sim::SimFuture<sim::Unit>> done;
  for (int i = 0; i < 3; ++i) {
    hw::KernelDesc k;
    k.label = "k" + std::to_string(i);
    k.pre_time = Duration::Millis(1);
    done.push_back(dev.Enqueue(std::move(k)));
  }
  sim.RunFor(Duration::Micros(100));  // first kernel mid-flight
  EXPECT_TRUE(dev.executing());
  dev.Fail();
  EXPECT_TRUE(dev.failed());
  EXPECT_FALSE(dev.executing());
  EXPECT_EQ(dev.queue_depth(), 0u);
  sim.Run();
  // All completions fired (so host-side cleanup can unwind) but nothing ran
  // to completion on the core.
  for (const auto& f : done) EXPECT_TRUE(f.ready());
  EXPECT_EQ(dev.kernels_completed(), 0);
  EXPECT_EQ(dev.kernels_dropped(), 3);
  EXPECT_EQ(dev.failures(), 1);
}

TEST(DeviceFaultTest, EnqueueWhileFailedCompletesWithoutRunning) {
  sim::Simulator sim;
  hw::Device dev(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(1),
                 Duration::Micros(1));
  dev.Fail();
  hw::KernelDesc k;
  k.pre_time = Duration::Millis(5);
  auto f = dev.Enqueue(std::move(k));
  sim.Run();
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(dev.kernels_completed(), 0);
  EXPECT_EQ(dev.kernels_dropped(), 1);
  EXPECT_LT(sim.now().ToMillis(), 1.0);  // no 5ms of compute happened
}

TEST(DeviceFaultTest, RecoverRestoresNormalExecution) {
  sim::Simulator sim;
  hw::Device dev(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(1),
                 Duration::Micros(1));
  dev.Fail();
  dev.Recover();
  EXPECT_FALSE(dev.failed());
  hw::KernelDesc k;
  k.pre_time = Duration::Millis(1);
  auto f = dev.Enqueue(std::move(k));
  sim.Run();
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(dev.kernels_completed(), 1);
}

TEST(DeviceFaultTest, StaleTimingEventsDieAcrossFailRecover) {
  // A kernel is mid-flight when the device fails and recovers; the old
  // finish event must not complete anything on the recovered stream.
  sim::Simulator sim;
  hw::Device dev(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(1),
                 Duration::Micros(1));
  hw::KernelDesc k1;
  k1.pre_time = Duration::Millis(2);
  dev.Enqueue(std::move(k1));
  sim.RunFor(Duration::Millis(1));  // k1 finishes at ~2ms
  dev.Fail();
  dev.Recover();
  hw::KernelDesc k2;
  k2.pre_time = Duration::Millis(5);
  auto f2 = dev.Enqueue(std::move(k2));
  sim.Run();
  EXPECT_TRUE(f2.ready());
  // Only k2 completed; k1's stale finish event was epoch-killed.
  EXPECT_EQ(dev.kernels_completed(), 1);
  EXPECT_EQ(dev.kernels_dropped(), 1);
}

TEST(DeviceFaultTest, ComputeMultiplierScalesKernelTime) {
  auto run_one = [](double multiplier) {
    sim::Simulator sim;
    hw::Device dev(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(1),
                   Duration::Zero());
    dev.set_compute_multiplier(multiplier);
    hw::KernelDesc k;
    k.pre_time = Duration::Millis(1);
    k.post_time = Duration::Millis(1);
    dev.Enqueue(std::move(k));
    sim.Run();
    return sim.now();
  };
  const TimePoint nominal = run_one(1.0);
  const TimePoint slowed = run_one(2.5);
  EXPECT_EQ(nominal.ToMillis(), 2.0);
  EXPECT_EQ(slowed.ToMillis(), 5.0);
}

// -------------------------------------------------- Link / DCN degradation --

TEST(LinkFaultTest, BandwidthScaleSlowsNewTransfers) {
  sim::Simulator sim;
  net::Link link(&sim, "l", Duration::Zero(), /*bandwidth=*/1e9);
  TimePoint first = link.Transfer(MiB(1), [] {});
  link.set_bandwidth_scale(0.5);
  TimePoint second = link.Transfer(MiB(1), [] {});
  // Second transfer serializes at half rate: twice the wire time.
  const Duration wire1 = first - TimePoint();
  const Duration wire2 = second - first;
  EXPECT_EQ(wire2.nanos(), 2 * wire1.nanos());
  link.set_bandwidth_scale(1.0);
  TimePoint third = link.Transfer(MiB(1), [] {});
  EXPECT_EQ((third - second).nanos(), wire1.nanos());
}

TEST(DcnFaultTest, PartitionHoldsMessagesUntilHeal) {
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, net::DcnParams{});
  dcn.AddHost(net::HostId(0));
  dcn.AddHost(net::HostId(1));
  dcn.SetPartitioned(net::HostId(1), true);
  std::vector<int> order;
  dcn.Send(net::HostId(0), net::HostId(1), KiB(1), [&] { order.push_back(1); });
  dcn.Send(net::HostId(1), net::HostId(0), KiB(1), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_TRUE(order.empty());  // both ends of the partition held
  EXPECT_EQ(dcn.messages_held(), 2u);
  sim.Schedule(Duration::Millis(1),
               [&] { dcn.SetPartitioned(net::HostId(1), false); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));  // replayed in send order
  EXPECT_EQ(dcn.messages_held(), 0u);
  EXPECT_GT(sim.now().ToMillis(), 1.0);
}

TEST(DcnFaultTest, PartitionDoesNotHoldLoopbackMessages) {
  // A partition cuts the fabric; a host's messages to itself never touch
  // the fabric and must keep flowing (e.g. a scheduler dispatching to an
  // executor on its own host).
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, net::DcnParams{});
  dcn.AddHost(net::HostId(0));
  dcn.SetPartitioned(net::HostId(0), true);
  bool delivered = false;
  dcn.Send(net::HostId(0), net::HostId(0), KiB(1), [&] { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(dcn.messages_held(), 0u);
}

TEST(DcnFaultTest, NicScaleAppliesPerHost) {
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, net::DcnParams{});
  dcn.AddHost(net::HostId(0));
  dcn.AddHost(net::HostId(1));
  dcn.SetNicBandwidthScale(net::HostId(0), 0.25);
  EXPECT_EQ(dcn.nic_bandwidth_scale(net::HostId(0)), 0.25);
  EXPECT_EQ(dcn.nic_bandwidth_scale(net::HostId(1)), 1.0);
}

// ------------------------------------------------------------- FaultPlan --

TEST(FaultPlanTest, RandomPlansAreSeedDeterministic) {
  const ClusterShape shape{16, 4};
  FaultPlan::RandomSpec spec;
  spec.device_crashes = 3;
  spec.stragglers = 3;
  spec.link_degrades = 2;
  spec.partitions = 1;
  const FaultPlan a = FaultPlan::Random(7, shape, spec);
  const FaultPlan b = FaultPlan::Random(7, shape, spec);
  const FaultPlan c = FaultPlan::Random(8, shape, spec);
  ASSERT_EQ(a.size(), b.size());
  bool differs_from_c = a.size() != c.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].device, b.events()[i].device);
    EXPECT_EQ(a.events()[i].host, b.events()[i].host);
    EXPECT_EQ(a.events()[i].severity, b.events()[i].severity);
    if (!differs_from_c && (a.events()[i].at != c.events()[i].at ||
                            a.events()[i].severity != c.events()[i].severity)) {
      differs_from_c = true;
    }
  }
  EXPECT_TRUE(differs_from_c) << "different seeds produced identical plans";
}

TEST(FaultPlanTest, SortedOrdersByInjectionTime) {
  FaultPlan plan;
  plan.CrashDevice(hw::DeviceId(0), TimePoint() + Duration::Millis(5));
  plan.SlowDevice(hw::DeviceId(1), TimePoint() + Duration::Millis(1),
                  Duration::Millis(1), 2.0);
  auto sorted = plan.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kStraggler);
  EXPECT_EQ(sorted[1].kind, FaultKind::kDeviceCrash);
}

// ------------------------------------- Pathways reaction: abort and retry --

// A training step over `num_devices` devices with an AllReduce, run until
// success via RunWithRetry.
CompiledFunction StepFn(int num_devices) {
  return CompiledFunction::Synthetic("step", num_devices, Duration::Micros(200),
                                     net::CollectiveKind::kAllReduce, KiB(64));
}

TEST(FaultReactionTest, CrashAbortsInflightExecutionAndReleasesPeers) {
  World w;  // 8 devices, one island
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(8).value();  // whole island: no spares
  auto fn = CompiledFunction::Synthetic("big", 8, Duration::Millis(4),
                                        net::CollectiveKind::kAllReduce,
                                        KiB(64));
  auto result = client->RunFunction(fn, slice);
  // Crash one gang member while the others are heading to the rendezvous.
  FaultPlan plan;
  plan.CrashDevice(w.cluster->device(3).id(), TimePoint() + Duration::Millis(2));
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().failed);
  // The rendezvous was aborted: nothing is parked, the sim quiesced clean.
  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(w.sim.BlockedEntities().empty());
  EXPECT_EQ(injector.stats().device_failures, 1);
  EXPECT_EQ(injector.stats().executions_aborted, 1);
  EXPECT_EQ(w.runtime->executions_aborted(), 1);
  // Aborted execution's buffers were garbage-collected.
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 0);
}

TEST(FaultReactionTest, RetryAfterCrashSucceedsOnSpareDevices) {
  World w;  // 8 devices
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(4).value();  // island has 4 spares
  ProgramBuilder pb("train");
  pb.Call(StepFn(4), slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  const hw::DeviceId victim =
      w.runtime->resource_manager().Lookup(slice.devices[0].id);
  FaultPlan plan;
  plan.CrashDevice(victim, TimePoint() + Duration::Micros(300),
                   /*down_for=*/Duration::Millis(20));
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();

  auto result = client->RunWithRetry(&prog);
  w.sim.RunUntilPredicate([&result] { return result.ready(); });
  ASSERT_TRUE(result.ready());
  EXPECT_FALSE(result.value().failed);
  EXPECT_GT(result.value().attempts, 1);  // first attempt was aborted
  EXPECT_GT(client->retries(), 0);
  // The remap moved the victim's virtual device to a spare.
  EXPECT_NE(w.runtime->resource_manager().Lookup(slice.devices[0].id), victim);
  EXPECT_GT(w.runtime->resource_manager().vdevs_remapped(), 0);
  // Recovery latency was sampled by the injector's observer.
  EXPECT_EQ(injector.stats().recovery_latency_us.count(), 1);
  EXPECT_GT(injector.stats().recovery_latency_us.mean(), 0.0);
  w.sim.Run();
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(FaultReactionTest, PermanentCrashWithNoSparesExhaustsRetries) {
  World w(/*hosts=*/1, /*devices_per_host=*/2);
  Client* client = w.runtime->CreateClient();
  auto slice = client->AllocateSlice(2).value();  // whole island
  ProgramBuilder pb("train");
  pb.Call(StepFn(2), slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  FaultPlan plan;
  plan.CrashDevice(w.cluster->device(0).id(),
                   TimePoint() + Duration::Micros(100));  // permanent
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = Duration::Micros(100);
  auto result = client->RunWithRetry(&prog, {}, policy);
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().failed);
  EXPECT_EQ(result.value().attempts, 3);
  EXPECT_FALSE(w.sim.Deadlocked());
  // The virtual device had nowhere to go: counted as stranded.
  EXPECT_GT(w.runtime->resource_manager().vdevs_stranded(), 0);
}

TEST(FaultReactionTest, RecoveredDeviceRejoinsAllocationPool) {
  World w;
  FaultPlan plan;
  plan.CrashDevice(w.cluster->device(1).id(), TimePoint() + Duration::Micros(10),
                   Duration::Micros(50));
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();
  w.sim.Run();
  EXPECT_TRUE(injector.device_up(w.cluster->device(1).id()));
  EXPECT_TRUE(w.runtime->resource_manager().in_service(w.cluster->device(1).id()));
  EXPECT_EQ(w.runtime->resource_manager().num_available_devices(),
            w.cluster->num_devices());
  EXPECT_EQ(injector.stats().device_recoveries, 1);
  EXPECT_EQ(injector.stats().device_downtime_us.count(), 1);
}

TEST(FaultReactionTest, StragglerWindowSlowsOnlyTheWindow) {
  // One device 4x slower for a window; a step that straddles the window
  // takes longer, steps after the window return to baseline exactly.
  auto run_steps = [](bool with_straggler) {
    World w(/*hosts=*/1, /*devices_per_host=*/2);
    Client* client = w.runtime->CreateClient();
    auto slice = client->AllocateSlice(2).value();
    ProgramBuilder pb("train");
    pb.Call(StepFn(2), slice, {});
    PathwaysProgram prog = std::move(pb).Build();
    FaultInjector* injector = nullptr;
    FaultPlan plan;
    if (with_straggler) {
      plan.SlowDevice(w.cluster->device(0).id(), TimePoint(),
                      Duration::Millis(2), 4.0);
    }
    FaultInjector inj(w.cluster.get(), w.runtime.get(), plan);
    inj.Arm();
    injector = &inj;
    (void)injector;
    std::vector<double> step_ms;
    for (int i = 0; i < 6; ++i) {
      const TimePoint begin = w.sim.now();
      auto r = client->Run(&prog);
      w.sim.RunUntilPredicate([&r] { return r.ready(); });
      step_ms.push_back((w.sim.now() - begin).ToMillis());
    }
    w.sim.Run();
    return step_ms;
  };
  const auto base = run_steps(false);
  const auto faulted = run_steps(true);
  EXPECT_GT(faulted[0], base[0]);                  // inside the window
  EXPECT_EQ(faulted.back(), base.back());          // fully recovered
}

TEST(FaultReactionTest, AbortWithParkedReservationDoesNotWedgeDeviceStream) {
  // An output-shard reservation parked behind HBM back-pressure when its
  // execution aborts must still resolve (vacuously) once memory frees;
  // a dropped grant would stall the device executor's in-order enqueue
  // stream forever, freezing every later program on that device.
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  params.host_jitter_frac = 0;
  params.hbm_capacity = MiB(100);
  sim::Simulator sim;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, 1, 1, 2);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  Client* client = runtime.CreateClient();

  // Fill most of device 0 so the next output reservation parks.
  auto& store = runtime.object_store();
  pathways::ShardedBuffer hog = store.CreateBuffer(
      client->id(), pathways::ExecutionId(), {cluster->device(0).id()}, MiB(90));
  sim.Run();

  auto slice = client->AllocateSlice(2).value();
  auto fn = xlasim::CompiledFunction::Synthetic("big_out", 2,
                                                Duration::Micros(100),
                                                std::nullopt, 0, MiB(50));
  auto doomed = client->RunFunction(fn, slice);
  sim.RunFor(Duration::Millis(1));  // preps ran; dev0's reservation is parked
  EXPECT_FALSE(doomed.ready());

  cluster->device(1).Fail();  // doom the execution while the grant queues
  runtime.AbortExecutionsUsing(cluster->device(1).id());
  store.Release(hog.id);  // capacity frees; the stale grant must fire
  sim.Run();
  ASSERT_TRUE(doomed.ready());
  EXPECT_TRUE(doomed.value().failed);
  EXPECT_EQ(store.hbm_used(cluster->device(0).id()), 0);

  // The stream on device 0 must still be alive for new work.
  cluster->device(1).Recover();
  auto fresh_slice = client->AllocateSlice(1).value();
  auto small = xlasim::CompiledFunction::Synthetic("small", 1,
                                                   Duration::Micros(50));
  auto after = client->RunFunction(small, fresh_slice);
  sim.Run();
  EXPECT_TRUE(after.ready());
  EXPECT_FALSE(after.value().failed);
  EXPECT_FALSE(sim.Deadlocked());
}

TEST(FaultReactionTest, OverlappingWindowsMergePerTarget) {
  // Two overlapping straggler windows on one device and two overlapping
  // partitions on one host: the effect must persist until the union of the
  // windows closes, not until the first window's revert fires.
  World w;
  FaultPlan plan;
  plan.SlowDevice(w.cluster->device(0).id(), TimePoint() + Duration::Millis(1),
                  Duration::Millis(2), 2.0);   // [1ms, 3ms)
  plan.SlowDevice(w.cluster->device(0).id(), TimePoint() + Duration::Millis(2),
                  Duration::Millis(4), 3.0);   // [2ms, 6ms)
  const net::HostId host = w.cluster->host(1).id();
  plan.PartitionHost(host, TimePoint() + Duration::Millis(1),
                     Duration::Millis(2));     // [1ms, 3ms)
  plan.PartitionHost(host, TimePoint() + Duration::Millis(2),
                     Duration::Millis(4));     // [2ms, 6ms)
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();

  auto& dev = w.cluster->device(0);
  auto& dcn = w.cluster->dcn();
  w.sim.RunUntil(TimePoint() + Duration::Millis(2.5));
  EXPECT_EQ(dev.compute_multiplier(), 3.0);  // last applied severity wins
  EXPECT_TRUE(dcn.partitioned(host));
  w.sim.RunUntil(TimePoint() + Duration::Millis(4));  // first windows expired
  EXPECT_EQ(dev.compute_multiplier(), 3.0)
      << "first window's revert must not cut the second window short";
  EXPECT_TRUE(dcn.partitioned(host));
  w.sim.Run();  // past 6ms: union of windows closed
  EXPECT_EQ(dev.compute_multiplier(), 1.0);
  EXPECT_FALSE(dcn.partitioned(host));
}

// ------------------------------------------ Window-merge edge cases --------

TEST(WindowMergeEdgeTest, ZeroLengthCrashWindowIsPermanentDespiteLaterWindow) {
  // A zero-length crash window means "no recovery event" (permanent). A
  // later *recovering* window on the same device merges into the outage and
  // must not revive it: permanent is absorbing under the union-of-windows
  // rule.
  World w;
  const hw::DeviceId dev = w.cluster->device(2).id();
  FaultPlan plan;
  plan.CrashDevice(dev, TimePoint() + Duration::Millis(1),
                   /*down_for=*/Duration::Zero());  // permanent
  plan.CrashDevice(dev, TimePoint() + Duration::Millis(2),
                   /*down_for=*/Duration::Millis(1));  // [2ms, 3ms)
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();
  w.sim.Run();
  EXPECT_TRUE(w.cluster->device(dev).failed());
  EXPECT_EQ(injector.stats().device_failures, 1);  // merged, not re-counted
  EXPECT_EQ(injector.stats().device_recoveries, 0);
}

TEST(WindowMergeEdgeTest, ZeroLengthWindowsDieForWindowedFaultKinds) {
  // Stragglers, link degradation, and partitions have no "permanent"
  // reading: a zero-length window is a plan bug and must die loudly.
  FaultPlan plan;
  EXPECT_DEATH(plan.SlowDevice(hw::DeviceId(0), TimePoint(), Duration::Zero(),
                               2.0),
               "windows must end");
  EXPECT_DEATH(plan.DegradeHostLink(net::HostId(0), TimePoint(),
                                    Duration::Zero(), 0.5),
               "windows must end");
  EXPECT_DEATH(plan.PartitionHost(net::HostId(0), TimePoint(),
                                  Duration::Zero()),
               "partitions must heal");
}

TEST(WindowMergeEdgeTest, ExactlyAdjacentCrashWindowsAreTwoOutages) {
  // [1ms, 3ms) and [3ms, 5ms): the first recovery and the second crash fire
  // at the same tick. They must not merge into a never-recovered device —
  // the revert (armed first) recovers, the apply re-fails, and both outages
  // are booked.
  World w;
  const hw::DeviceId dev = w.cluster->device(1).id();
  FaultPlan plan;
  plan.CrashDevice(dev, TimePoint() + Duration::Millis(1), Duration::Millis(2));
  plan.CrashDevice(dev, TimePoint() + Duration::Millis(3), Duration::Millis(2));
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();
  w.sim.RunUntil(TimePoint() + Duration::Millis(4));
  EXPECT_TRUE(w.cluster->device(dev).failed());  // second window in force
  w.sim.Run();
  EXPECT_FALSE(w.cluster->device(dev).failed());
  EXPECT_EQ(injector.stats().device_failures, 2);
  EXPECT_EQ(injector.stats().device_recoveries, 2);
  EXPECT_EQ(injector.stats().device_downtime_us.count(), 2);
  // Each outage's downtime is its own 2ms window, not the 4ms union.
  EXPECT_NEAR(injector.stats().device_downtime_us.mean(), 2000.0, 1.0);
}

TEST(WindowMergeEdgeTest, RecoveryTickCoincidingWithNewWindowHandsOff) {
  // A straggler window ending at the exact tick the next one starts on the
  // same device: severity hands off (2x -> 3x) with no gap at 1x in
  // between, and the effect ends with the second window. Same shape for a
  // host-link degrade.
  World w;
  const hw::DeviceId dev = w.cluster->device(0).id();
  const net::HostId host = w.cluster->host(1).id();
  FaultPlan plan;
  plan.SlowDevice(dev, TimePoint() + Duration::Millis(1), Duration::Millis(2),
                  2.0);  // [1ms, 3ms)
  plan.SlowDevice(dev, TimePoint() + Duration::Millis(3), Duration::Millis(3),
                  3.0);  // [3ms, 6ms)
  plan.DegradeHostLink(host, TimePoint() + Duration::Millis(1),
                       Duration::Millis(2), 0.5);
  plan.DegradeHostLink(host, TimePoint() + Duration::Millis(3),
                       Duration::Millis(3), 0.25);
  FaultInjector injector(w.cluster.get(), w.runtime.get(), plan);
  injector.Arm();
  w.sim.RunUntil(TimePoint() + Duration::Millis(2));
  EXPECT_EQ(w.cluster->device(dev).compute_multiplier(), 2.0);
  EXPECT_EQ(w.cluster->dcn().nic_bandwidth_scale(host), 0.5);
  w.sim.RunUntil(TimePoint() + Duration::Millis(4));  // past the hand-off tick
  EXPECT_EQ(w.cluster->device(dev).compute_multiplier(), 3.0)
      << "first window's revert must not blank the adjacent second window";
  EXPECT_EQ(w.cluster->dcn().nic_bandwidth_scale(host), 0.25);
  w.sim.Run();
  EXPECT_EQ(w.cluster->device(dev).compute_multiplier(), 1.0);
  EXPECT_EQ(w.cluster->dcn().nic_bandwidth_scale(host), 1.0);
  EXPECT_EQ(injector.stats().straggler_windows, 2);
  EXPECT_EQ(injector.stats().link_degrades, 2);
}

TEST(FaultReactionTest, EmptyPlanInjectorIsInert) {
  auto run = [](bool with_injector) {
    World w;
    Client* client = w.runtime->CreateClient();
    auto slice = client->AllocateSlice(4).value();
    std::unique_ptr<FaultInjector> injector;
    if (with_injector) {
      injector = std::make_unique<FaultInjector>(w.cluster.get(),
                                                 w.runtime.get(), FaultPlan{});
      injector->Arm();
    }
    auto r = client->RunFunction(StepFn(4), slice);
    w.sim.Run();
    EXPECT_TRUE(r.ready());
    return std::make_pair(w.sim.now().nanos(), w.sim.events_executed());
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace pw::faults
