#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "hw/cluster.h"
#include "models/step_builder.h"
#include "models/transformer.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"

namespace pw::models {
namespace {

// ----------------------------------------------------- TransformerConfig --

TEST(TransformerConfigTest, Decoder3BMatchesPaperShape) {
  const auto c = TransformerConfig::Decoder3B();
  EXPECT_EQ(c.num_layers, 62);
  EXPECT_EQ(c.d_model, 2048);
  EXPECT_EQ(c.d_ff, 8192);
  // "results in 3 billion parameters in total" (§5.3).
  EXPECT_NEAR(static_cast<double>(c.TotalParams()), 3.2e9, 0.2e9);
}

TEST(TransformerConfigTest, LargeModelsHitTargets) {
  EXPECT_NEAR(static_cast<double>(TransformerConfig::Decoder64B().TotalParams()),
              64e9, 3e9);
  EXPECT_NEAR(static_cast<double>(TransformerConfig::Decoder136B().TotalParams()),
              136e9, 6e9);
}

TEST(TransformerConfigTest, T5FamilyOrdering) {
  const auto base = TransformerConfig::T5Base();
  const auto large = TransformerConfig::T5Large();
  const auto xxl = TransformerConfig::T5_11B();
  EXPECT_LT(base.TotalParams(), large.TotalParams());
  EXPECT_LT(large.TotalParams(), xxl.TotalParams());
  EXPECT_NEAR(static_cast<double>(xxl.TotalParams()), 11e9, 2e9);
}

TEST(TransformerConfigTest, FlopsFollowSixNTokens) {
  const auto c = TransformerConfig::Decoder3B();
  EXPECT_DOUBLE_EQ(c.FlopsPerStep(),
                   6.0 * static_cast<double>(c.TotalParams()) *
                       static_cast<double>(c.tokens_per_batch));
}

// ----------------------------------------------------------- StepBuilder --

TEST(StepBuilderTest, ComputeTimeScalesInverselyWithCores) {
  StepBuilder b(TransformerConfig::Decoder3B(), hw::SystemParams::TpuDefault());
  EXPECT_NEAR(b.ComputeTime(128).ToSeconds() / b.ComputeTime(512).ToSeconds(),
              4.0, 1e-6);
}

TEST(StepBuilderTest, StageBalancingRemovesEdgeLayers) {
  StepBuilder b(TransformerConfig::Decoder3B(), hw::SystemParams::TpuDefault());
  // 62 layers over 4 stages: paper took one layer out of first and last.
  const auto counts = b.StageLayerCounts(4);
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 62);
  EXPECT_LT(counts.front(), counts[1]);
  EXPECT_LT(counts.back(), counts[2]);
}

TEST(StepBuilderTest, StageCountsSumForAllS) {
  StepBuilder b(TransformerConfig::Decoder3B(), hw::SystemParams::TpuDefault());
  for (int s : {1, 2, 4, 8, 16}) {
    const auto counts = b.StageLayerCounts(s);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 62)
        << "stages=" << s;
  }
}

TEST(StepBuilderTest, SpmdFunctionCarriesCollective) {
  StepBuilder b(TransformerConfig::Decoder3B(), hw::SystemParams::TpuDefault());
  net::CollectiveModel coll{net::CollectiveParams{}};
  const auto f = b.SpmdStepFunction(128, coll);
  EXPECT_EQ(f.num_shards, 128);
  ASSERT_TRUE(f.collective.has_value());
  EXPECT_GT(f.collective_bytes_per_shard, 0);
  EXPECT_GT(f.pre_collective_time.nanos(), b.ComputeTime(128).nanos());
}

// --------------------------------------------------- End-to-end training --

struct TrainWorld {
  explicit TrainWorld(int islands, int hosts_per_island, int devs_per_host) {
    hw::SystemParams params;
    params.host_jitter_frac = 0;
    cluster = std::make_unique<hw::Cluster>(&sim, params, islands,
                                            hosts_per_island, devs_per_host);
    runtime = std::make_unique<pathways::PathwaysRuntime>(
        cluster.get(), pathways::PathwaysOptions{});
    client = runtime->CreateClient();
  }
  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<pathways::PathwaysRuntime> runtime;
  pathways::Client* client;
};

TransformerConfig TinyModel() {
  TransformerConfig c = TransformerConfig::Decoder3B();
  c.name = "tiny";
  c.num_layers = 8;
  c.tokens_per_batch = 1 << 14;
  return c;
}

TEST(TrainingTest, SpmdStepRunsAndMeasures) {
  TrainWorld w(1, 2, 4);
  StepBuilder b(TinyModel(), w.cluster->params());
  const auto fn = b.SpmdStepFunction(8, w.cluster->island(0).collectives());
  auto slice = w.client->AllocateSlice(8).value();
  pathways::ProgramBuilder pb("spmd");
  pb.Call(fn, slice, {});
  auto program = std::move(pb).Build();
  const auto m = MeasureTraining(w.client, &program,
                                 b.config().tokens_per_batch, /*steps=*/3);
  EXPECT_GT(m.tokens_per_sec, 0);
  // Step time must be at least the compute roofline.
  EXPECT_GE(m.step_time.nanos(), b.ComputeTime(8).nanos());
}

TEST(TrainingTest, GPipeProgramHasExpectedShape) {
  TrainWorld w(1, 4, 2);
  StepBuilder b(TinyModel(), w.cluster->params());
  std::vector<pathways::VirtualSlice> slices;
  for (int s = 0; s < 4; ++s) {
    slices.push_back(w.client->AllocateSlice(2).value());
  }
  const auto prog = b.BuildGPipeProgram(slices, /*micro_batches=*/8,
                                        w.cluster->island(0).collectives());
  // 4 stages x 8 micro-batches x (fwd + bwd) + 4 updates.
  EXPECT_EQ(prog.num_nodes(), 4 * 8 * 2 + 4);
  EXPECT_EQ(prog.results().size(), 4u);
}

TEST(TrainingTest, GPipePipelinesAcrossStages) {
  TrainWorld w(1, 4, 2);
  StepBuilder b(TinyModel(), w.cluster->params());
  std::vector<pathways::VirtualSlice> slices;
  for (int s = 0; s < 4; ++s) {
    slices.push_back(w.client->AllocateSlice(2).value());
  }
  auto prog = b.BuildGPipeProgram(slices, 8, w.cluster->island(0).collectives());
  const auto m = MeasureTraining(w.client, &prog, b.config().tokens_per_batch, 3);
  EXPECT_GT(m.tokens_per_sec, 0);
  // With M=8, S=4 the GPipe step is at most ~(M+S-1)/M x ideal plus
  // overheads; it must beat 4x-serial execution by a wide margin.
  const double serial_bound =
      b.ComputeTime(8).ToSeconds() * 4;  // all stages strictly serial
  EXPECT_LT(m.step_time.ToSeconds(), serial_bound);
  EXPECT_FALSE(w.sim.Deadlocked());
}

TEST(TrainingTest, MultiIslandStepOverlapsDcn) {
  TrainWorld w(/*islands=*/2, 2, 4);
  TransformerConfig tiny = TinyModel();
  StepBuilder b(tiny, w.cluster->params());
  std::vector<pathways::VirtualSlice> slices;
  slices.push_back(w.client->AllocateSlice(8, hw::IslandId(0)).value());
  slices.push_back(w.client->AllocateSlice(8, hw::IslandId(1)).value());
  auto prog = b.BuildMultiIslandStep(slices, /*chunks=*/4,
                                     w.cluster->island(0).collectives());
  // 2 islands x 4 chunks + 2 applies.
  EXPECT_EQ(prog.num_nodes(), 2 * 4 + 2);
  const auto m = MeasureTraining(w.client, &prog, tiny.tokens_per_batch, 3);
  EXPECT_GT(m.tokens_per_sec, 0);
  EXPECT_GT(w.cluster->dcn().bytes_sent(), 0);  // gradients crossed islands
}

}  // namespace
}  // namespace pw::models
