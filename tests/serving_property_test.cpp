// Randomized invariant layer for the serving regime (docs/SERVING.md).
//
// Seeded fuzz over scenario shapes — tenant count, arrival processes and
// rates, prompt/output length ranges, batch policy and budgets, HBM sized
// *below* the aggregate KV working set so spilling is live — checking on
// every scenario:
//
//   * liveness: the simulator quiesces with the batcher idle (no deadlock,
//     no wedged reservation queues), and every offered request either
//     finishes or was shed — nothing is lost or stuck;
//   * memory safety: pinned KV bytes never exceed device HBM (probed
//     periodically during the run, not just at the end), and at quiescence
//     the ObjectStore holds zero buffers and zero logical bytes;
//   * decode-step integrity: per request, the trace shows exactly one
//     prefill per attempt and `decode_tokens - 1` token events after the
//     last prefill — a decode step against an evicted-but-unrestored KV
//     shard is impossible by construction (iterations gate on grow grants,
//     reads go through the store's residency check) and would surface here
//     as a missing or duplicated step;
//   * determinism: a SweepRunner sweep over the same scenarios is
//     byte-identical between 1 worker thread and 4.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "serving/serving.h"
#include "sim/simulator.h"
#include "sweep/param_grid.h"
#include "sweep/result_table.h"
#include "sweep/sweep_runner.h"

namespace pw::serving {
namespace {

using pathways::PathwaysRuntime;

struct Scenario {
  Bytes hbm = 0;
  Bytes kv_token = 0;
  int devices = 2;
  BatcherConfig batcher;
  std::vector<TenantSpec> tenants;
};

// Derives a pressured scenario from one seed. HBM is sized at roughly half
// the aggregate projected KV working set of a full batch, so the spiller
// must field the overflow.
Scenario MakeScenario(std::uint64_t seed) {
  Rng rng(seed * 7919 + 1);
  Scenario s;
  s.kv_token = KiB(2) << rng.NextBounded(2);  // 2 or 4 KiB per token
  s.batcher.policy = BatchPolicy::kContinuous;
  s.batcher.max_batch = 2 + static_cast<int>(rng.NextBounded(4));  // 2..5
  s.batcher.token_budget = 64 + static_cast<int>(rng.NextBounded(128));
  s.batcher.queue_capacity = 16 + rng.NextBounded(32);

  const int tenants = 1 + static_cast<int>(rng.NextBounded(3));
  int max_kv_tokens = 1;
  for (int t = 0; t < tenants; ++t) {
    TenantSpec spec;
    spec.arrivals.process = rng.NextBounded(2) == 0
                                ? workload::ArrivalProcess::kPoisson
                                : workload::ArrivalProcess::kUniform;
    spec.arrivals.rate_per_sec = 4000 + 2000 * static_cast<double>(rng.NextBounded(8));
    spec.arrivals.horizon = Duration::Millis(2);
    spec.arrivals.seed = seed * 100 + static_cast<std::uint64_t>(t) + 1;
    spec.min_prefill_tokens = 4 + static_cast<int>(rng.NextBounded(8));
    spec.max_prefill_tokens =
        spec.min_prefill_tokens + 8 + static_cast<int>(rng.NextBounded(24));
    spec.min_decode_tokens = 2 + static_cast<int>(rng.NextBounded(4));
    spec.max_decode_tokens =
        spec.min_decode_tokens + 2 + static_cast<int>(rng.NextBounded(8));
    spec.token_seed = seed * 1000 + static_cast<std::uint64_t>(t) + 1;
    const int kv = spec.max_prefill_tokens + spec.max_decode_tokens - 1;
    if (kv > max_kv_tokens) max_kv_tokens = kv;
    s.tenants.push_back(spec);
  }

  // Full-batch projected working set per device, in KV tokens.
  const Bytes working_set =
      static_cast<Bytes>(s.batcher.max_batch) * max_kv_tokens * s.kv_token;
  s.batcher.kv_budget_per_device = working_set;
  // Staging the batcher needs beside KV on each device.
  const Bytes staging = s.batcher.activation_bytes_per_shard +
                        s.batcher.output_bytes_per_shard +
                        s.batcher.collective_bytes_per_shard;
  s.hbm = working_set / 2 + staging;  // 0.5x the KV working set
  return s;
}

struct RunResult {
  std::int64_t arrivals = 0;
  std::int64_t finished = 0;
  std::int64_t shed = 0;
  std::int64_t iterations = 0;
  std::int64_t spills = 0;
  std::int64_t fills = 0;
  std::int64_t dram_reads = 0;
  std::uint64_t checksum = 0;
  bool deadlocked = false;
  bool idle = false;
  std::int64_t live_buffers = 0;
  Bytes leaked_bytes = 0;
  Bytes probe_max_pinned = 0;
  Bytes probe_max_live_kv = 0;
  std::string trace_errors;
};

// Per-request trace audit: one prefill per attempt, and the finish arrives
// after exactly finish.detail - 1 token events since the last prefill.
std::string AuditTrace(const ServingTrace& trace) {
  struct PerReq {
    int prefills = 0;
    int tokens_since_prefill = 0;
    int requeues = 0;
    bool finished = false;
    bool shed = false;
  };
  std::map<std::int64_t, PerReq> reqs;
  std::ostringstream err;
  for (const auto& e : trace.events()) {
    if (e.request < 0) continue;
    PerReq& r = reqs[e.request];
    if (e.kind == "prefill") {
      ++r.prefills;
      r.tokens_since_prefill = 0;
    } else if (e.kind == "token") {
      ++r.tokens_since_prefill;
    } else if (e.kind == "requeue") {
      ++r.requeues;
    } else if (e.kind == "finish") {
      r.finished = true;
      if (r.tokens_since_prefill != e.detail - 1) {
        err << "req " << e.request << ": finish at " << e.detail
            << " tokens but " << r.tokens_since_prefill
            << " token events since last prefill\n";
      }
    } else if (e.kind == "shed") {
      r.shed = true;
    }
  }
  for (const auto& [id, r] : reqs) {
    if (r.shed) continue;
    if (!r.finished) err << "req " << id << ": neither finished nor shed\n";
    if (r.prefills != r.requeues + 1) {
      err << "req " << id << ": " << r.prefills << " prefills for "
          << r.requeues << " requeues\n";
    }
  }
  return err.str();
}

RunResult RunScenario(const Scenario& s) {
  sim::Simulator sim;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  params.host_jitter_frac = 0;
  params.hbm_capacity = s.hbm;
  hw::Cluster cluster(&sim, params, /*islands=*/1, /*hosts_per_island=*/1,
                      s.devices);
  PathwaysRuntime runtime(&cluster, pathways::PathwaysOptions{});
  pathways::Client* client = runtime.CreateClient();
  pathways::VirtualSlice slice = client->AllocateSlice(s.devices).value();

  ServingMetrics metrics;
  ServingTrace trace;
  Batcher batcher(client, slice, KvCacheConfig{s.kv_token}, s.batcher,
                  &metrics, &trace);

  std::vector<std::unique_ptr<ServingTenant>> tenants;
  for (std::size_t t = 0; t < s.tenants.size(); ++t) {
    tenants.push_back(std::make_unique<ServingTenant>(
        static_cast<int>(t), &batcher, &sim, s.tenants[t]));
    tenants.back()->Start();
  }

  // Periodic in-flight probe: scheduled KV (pinned bytes) must fit in HBM
  // at every instant, not just at quiescence.
  RunResult out;
  // Bounded probes: stop once arrivals are over and the batcher drained,
  // or the recurring event would keep the simulator alive forever.
  const Duration probe_period = Duration::Micros(50);
  std::function<void()> probe = [&]() {
    const Bytes pinned = batcher.kv().pinned_bytes_per_shard();
    if (pinned > out.probe_max_pinned) out.probe_max_pinned = pinned;
    const Bytes live = batcher.kv().live_bytes_per_shard();
    if (live > out.probe_max_live_kv) out.probe_max_live_kv = live;
    if (!batcher.idle() || sim.now() < TimePoint() + Duration::Millis(2)) {
      sim.Schedule(probe_period, probe);
    }
  };
  sim.Schedule(probe_period, probe);
  sim.Run();

  const pathways::ObjectStore& store = runtime.object_store();
  store.CheckNoReservationWedge();  // PW_CHECKs (aborts) on a wedge
  out.arrivals = metrics.arrivals();
  out.finished = batcher.finished();
  out.shed = batcher.shed();
  out.iterations = batcher.iterations();
  out.spills = store.spills_completed();
  out.fills = store.fills_completed();
  out.dram_reads = store.dram_reads();
  out.checksum = trace.Checksum();
  out.deadlocked = sim.Deadlocked();
  out.idle = batcher.idle();
  out.live_buffers = store.live_buffers();
  for (int d = 0; d < s.devices; ++d) {
    out.leaked_bytes += store.logical_live_bytes(hw::DeviceId(d));
  }
  out.trace_errors = AuditTrace(trace);
  return out;
}

constexpr std::uint64_t kSeeds = 10;

TEST(ServingPropertyTest, PressuredScenariosFinishOrShedEverything) {
  std::int64_t total_spills = 0;
  std::int64_t total_dram_activity = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Scenario s = MakeScenario(seed);
    const RunResult r = RunScenario(s);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.idle);
    EXPECT_GT(r.arrivals, 0);
    // Every admitted request eventually finished or was shed.
    EXPECT_EQ(r.finished + r.shed, r.arrivals);
    // Pinned KV stayed within physical HBM, and total live KV within the
    // admission budget, at every probe.
    EXPECT_LE(r.probe_max_pinned, s.hbm);
    EXPECT_LE(r.probe_max_live_kv, s.batcher.kv_budget_per_device);
    // Nothing leaked.
    EXPECT_EQ(r.live_buffers, 0);
    EXPECT_EQ(r.leaked_bytes, 0);
    // Per-request decode-step integrity (see AuditTrace).
    EXPECT_EQ(r.trace_errors, "");
    total_spills += r.spills;
    total_dram_activity += r.fills + r.dram_reads;
  }
  // HBM at ~0.5x the KV working set: the sweep as a whole must have
  // actually paged KV out and read/restored it back.
  EXPECT_GT(total_spills, 0);
  EXPECT_GT(total_dram_activity, 0);
}

TEST(ServingPropertyTest, SweepIsByteIdenticalAcrossThreadCounts) {
  sweep::ParamGrid grid;
  std::vector<std::int64_t> seeds;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    seeds.push_back(static_cast<std::int64_t>(seed));
  }
  grid.AxisInts("seed", seeds);

  const auto point_fn = [](const sweep::ParamPoint& p) {
    const RunResult r = RunScenario(
        MakeScenario(static_cast<std::uint64_t>(p.GetInt("seed"))));
    return sweep::Metrics{
        {"finished", static_cast<double>(r.finished)},
        {"shed", static_cast<double>(r.shed)},
        {"iterations", static_cast<double>(r.iterations)},
        {"spills", static_cast<double>(r.spills)},
        // Checksum folded to stay exactly representable in a double.
        {"trace_lo", static_cast<double>(r.checksum & 0xffffffffULL)},
        {"trace_hi", static_cast<double>(r.checksum >> 32)},
    };
  };

  sweep::SweepRunner parallel(sweep::SweepRunner::Options{.threads = 4});
  sweep::SweepRunner serial(sweep::SweepRunner::Options{.threads = 1});
  std::ostringstream csv_mt, csv_1t;
  parallel.Run(grid, point_fn).WriteCsv(csv_mt);
  serial.Run(grid, point_fn).WriteCsv(csv_1t);
  EXPECT_EQ(csv_mt.str(), csv_1t.str());
  EXPECT_NE(csv_mt.str().find("finished"), std::string::npos);
}

}  // namespace
}  // namespace pw::serving
