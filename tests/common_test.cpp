#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/units.h"

namespace pw {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad mesh shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad mesh shape");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad mesh shape");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << ResourceExhaustedError("HBM full");
  EXPECT_EQ(os.str(), "RESOURCE_EXHAUSTED: HBM full");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::unordered_set<int> codes;
  for (const Status& s :
       {CancelledError(""), InvalidArgumentError(""), DeadlineExceededError(""),
        NotFoundError(""), AlreadyExistsError(""), ResourceExhaustedError(""),
        FailedPreconditionError(""), AbortedError(""), OutOfRangeError(""),
        UnimplementedError(""), InternalError(""), UnavailableError("")}) {
    EXPECT_FALSE(s.ok());
    codes.insert(static_cast<int>(s.code()));
  }
  EXPECT_EQ(codes.size(), 12u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("no device");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Status UsesAssignOrReturn(int x, int* out) {
  PW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status s = UsesAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- StrongId --

struct DeviceTag {};
struct HostTag {};
using TestDeviceId = StrongId<DeviceTag>;
using TestHostId = StrongId<HostTag>;

TEST(StrongIdTest, DefaultInvalid) {
  TestDeviceId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), -1);
}

TEST(StrongIdTest, ComparisonAndHash) {
  TestDeviceId a(1), b(2), a2(1);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  std::unordered_set<TestDeviceId> set{a, b, a2};
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<TestDeviceId, TestHostId>);
}

TEST(StrongIdTest, GeneratorIsSequential) {
  IdGenerator<DeviceTag> gen;
  EXPECT_EQ(gen.Next().value(), 0);
  EXPECT_EQ(gen.Next().value(), 1);
  EXPECT_EQ(gen.issued(), 2);
}

// ------------------------------------------------------------------ Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(13);
  RunningStat st;
  for (int i = 0; i < 20000; ++i) st.Add(rng.NextNormal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

// ---------------------------------------------------------------- Units --

TEST(UnitsTest, DurationConversions) {
  EXPECT_EQ(Duration::Micros(1).nanos(), 1000);
  EXPECT_EQ(Duration::Millis(1).nanos(), 1000000);
  EXPECT_EQ(Duration::Seconds(1).nanos(), 1000000000);
  EXPECT_DOUBLE_EQ(Duration::Millis(2.5).ToMicros(), 2500.0);
}

TEST(UnitsTest, DurationArithmetic) {
  const Duration a = Duration::Micros(3);
  const Duration b = Duration::Micros(2);
  EXPECT_EQ((a + b).nanos(), 5000);
  EXPECT_EQ((a - b).nanos(), 1000);
  EXPECT_EQ((a * 2).nanos(), 6000);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
}

TEST(UnitsTest, TimePointArithmetic) {
  TimePoint t0;
  const TimePoint t1 = t0 + Duration::Millis(5);
  EXPECT_EQ((t1 - t0).ToMillis(), 5.0);
  EXPECT_LT(t0, t1);
}

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(1), 1024 * 1024);
  EXPECT_EQ(GiB(2), 2LL * 1024 * 1024 * 1024);
}

// ---------------------------------------------------------------- Stats --

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(x);
  EXPECT_EQ(st.count(), 8);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStatTest, EmptyIsSafe) {
  RunningStat st;
  EXPECT_EQ(st.count(), 0);
  EXPECT_DOUBLE_EQ(st.mean(), 0.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(PercentileSamplerTest, ExactPercentiles) {
  PercentileSampler ps;
  for (int i = 1; i <= 100; ++i) ps.Add(i);
  EXPECT_NEAR(ps.Median(), 50.5, 1e-9);
  EXPECT_NEAR(ps.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(ps.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(ps.Percentile(99), 99.01, 0.1);
}

TEST(PercentileSamplerTest, InterleavedAddAndQuery) {
  PercentileSampler ps;
  ps.Add(10);
  EXPECT_DOUBLE_EQ(ps.Median(), 10.0);
  ps.Add(20);
  EXPECT_DOUBLE_EQ(ps.Median(), 15.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0}) h.Add(x);
  EXPECT_EQ(h.total(), 7);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
}

TEST(HistogramTest, IntegerSamplesLandInTheirExactUnitBucket) {
  // Regression for the fraction-of-range index math: with lo=0, hi=22,
  // 22 unit buckets, (15/22)*22 rounds below 15 in double and dropped the
  // sample one bucket low. Every integer sample must land in its own
  // unit-width bucket — queue-depth histograms depend on it.
  for (int buckets : {5, 22, 23, 26, 43, 65, 101}) {
    Histogram h(0.0, static_cast<double>(buckets), buckets);
    for (int d = 0; d < buckets; ++d) h.Add(static_cast<double>(d));
    for (int d = 0; d < buckets; ++d) {
      EXPECT_EQ(h.bucket_count(d), 1) << "buckets=" << buckets << " d=" << d;
    }
    EXPECT_EQ(h.overflow(), 0);
    EXPECT_EQ(h.underflow(), 0);
  }
}

}  // namespace
}  // namespace pw
