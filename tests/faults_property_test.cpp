// Property/fuzz layer for the fault-injection subsystem: seeded random
// FaultPlans drive a retry-until-success training workload, and invariants
// are asserted over the resulting traces rather than example-specific
// values (Couto et al.: back failure-handling subsystems with automated
// property checks, not example tests alone).
//
// Invariants checked across seeds:
//   1. Liveness: the workload always completes — no deadlock, no stuck
//      retries — for any plan whose crashes all recover.
//   2. No event fires on a down device: no device trace span overlaps any
//      of that device's crash windows.
//   3. Recovery restores steady state: once every fault has reverted, step
//      latency settles (and, for crash-free plans, equals the fault-free
//      baseline exactly).
//   4. Determinism: identical seeds give identical traces — including when
//      points run concurrently on SweepRunner threads — and the trace is
//      reproducible run-to-run within a process.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "sim/partition.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sweep/param_grid.h"
#include "sweep/sweep_runner.h"

namespace pw::faults {
namespace {

using pathways::Client;
using pathways::ExecutionResult;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using xlasim::CompiledFunction;

constexpr int kSeeds = 24;

struct ScenarioResult {
  std::vector<double> step_ms;   // latency of each successful step
  std::vector<sim::TraceSpan> spans;
  std::int64_t events_executed = 0;
  std::int64_t final_now_ns = 0;
  std::int64_t aborted = 0;
  std::int64_t completed = 0;

  std::uint64_t Checksum() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::int64_t v) {
      const auto* p = reinterpret_cast<const unsigned char*>(&v);
      for (std::size_t i = 0; i < sizeof(v); ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
      }
    };
    for (const sim::TraceSpan& s : spans) {
      mix(static_cast<std::int64_t>(s.resource.size()));
      for (const char c : s.resource) mix(c);  // full bytes: "dev2" != "dev5"
      mix(static_cast<std::int64_t>(s.label.size()));
      for (const char c : s.label) mix(c);
      mix(s.client);
      mix(s.start.nanos());
      mix(s.end.nanos());
    }
    mix(events_executed);
    mix(final_now_ns);
    return h;
  }
};

FaultPlan PlanForSeed(std::uint64_t seed, const ClusterShape& shape,
                      bool include_crashes) {
  FaultPlan::RandomSpec spec;
  spec.device_crashes = include_crashes ? 2 : 0;
  spec.stragglers = 2;
  spec.link_degrades = 1;
  spec.partitions = 1;
  spec.horizon = Duration::Millis(6);
  spec.min_window = Duration::Micros(200);
  spec.max_window = Duration::Millis(2);
  spec.always_recover = true;  // liveness invariant needs eventual recovery
  return FaultPlan::Random(seed, shape, spec);
}

// Runs `steps` successful training steps (retrying failed ones without
// bound — recovery is guaranteed by always_recover) under the seeded plan.
// With num_lps > 0 the whole stack runs on LP 0 of a partitioned engine at
// `sim_threads` — the trace checksum must match the serial run exactly.
ScenarioResult RunScenario(std::uint64_t seed, bool include_crashes,
                           int steps = 10, int num_lps = 0,
                           int sim_threads = 1) {
  std::unique_ptr<sim::PartitionedSimulator> part;
  std::unique_ptr<sim::Simulator> serial;
  if (num_lps > 0) {
    part = std::make_unique<sim::PartitionedSimulator>(
        sim::PartitionedSimulator::Options{num_lps, sim_threads,
                                           Duration::Micros(20)});
  } else {
    serial = std::make_unique<sim::Simulator>();
  }
  sim::Simulator& sim = part ? part->lp(0) : *serial;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  // Zero host jitter: the steady-state property compares step latencies
  // bit-for-bit, and aborted attempts would otherwise shift the shared
  // jitter Rng stream for every step after them. (Determinism *with*
  // jitter is regression-gated by sim_determinism_test's goldens.)
  params.host_jitter_frac = 0;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/2,
                                               /*hosts_per_island=*/2,
                                               /*devices_per_host=*/2);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  Client* client = runtime.CreateClient();
  auto slice = client->AllocateSlice(4, hw::IslandId(0)).value();
  auto fn = CompiledFunction::Synthetic("step", 4, Duration::Micros(300),
                                        net::CollectiveKind::kAllReduce,
                                        KiB(32));
  ProgramBuilder pb("train");
  pb.Call(fn, slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  const ClusterShape shape{cluster->num_devices(), cluster->num_hosts()};
  FaultInjector injector(cluster.get(), &runtime,
                         PlanForSeed(seed, shape, include_crashes));
  injector.Arm();

  ScenarioResult out;
  pathways::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = Duration::Micros(250);
  for (int i = 0; i < steps; ++i) {
    // Retry-until-success: RunWithRetry handles transient aborts; if a
    // whole retry burst fails (device still down), submit a fresh one.
    while (true) {
      const TimePoint begin = sim.now();
      auto r = client->RunWithRetry(&prog, {}, policy);
      auto pred = [&r] { return r.ready(); };
      const bool done =
          part ? part->RunUntilPredicate(pred) : sim.RunUntilPredicate(pred);
      EXPECT_TRUE(done) << "seed " << seed << ": step " << i
                        << " never resolved (lost wakeup?)";
      if (!done) return out;  // liveness already failed; don't spin forever
      if (!r.value().failed) {
        out.step_ms.push_back((sim.now() - begin).ToMillis());
        break;
      }
    }
  }
  if (part) {
    part->Run();
  } else {
    sim.Run();
  }
  EXPECT_FALSE(sim.Deadlocked()) << "seed " << seed;
  out.spans = cluster->trace().spans();
  out.events_executed = sim.events_executed();
  out.final_now_ns = sim.now().nanos();
  out.aborted = runtime.executions_aborted();
  out.completed = runtime.executions_completed();

  // Invariant 2 (in-run check): every device ends healthy and no span
  // overlaps a crash window.
  for (const FaultEvent& e : injector.plan().events()) {
    if (e.kind != FaultKind::kDeviceCrash) continue;
    EXPECT_TRUE(injector.device_up(e.device)) << "seed " << seed;
    const std::string resource = "dev" + std::to_string(e.device.value());
    for (const sim::TraceSpan& s : out.spans) {
      if (s.resource != resource) continue;
      const bool overlaps =
          s.start < e.recovery_at() && s.end > e.at;
      EXPECT_FALSE(overlaps)
          << "seed " << seed << ": kernel '" << s.label << "' ran on "
          << resource << " during its down window [" << e.at << ", "
          << e.recovery_at() << "): span [" << s.start << ", " << s.end << ")";
    }
  }
  return out;
}

TEST(FaultPropertyTest, RandomPlansAlwaysCompleteWithoutDeadlock) {
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ScenarioResult r = RunScenario(seed, /*include_crashes=*/true);
    // Every step eventually succeeded: exactly 10 completions, and every
    // abort was accounted for by a resubmission rather than a hang.
    EXPECT_EQ(r.step_ms.size(), 10u);
    EXPECT_EQ(r.completed, 10);
    EXPECT_GE(r.aborted, 0);
  }
}

TEST(FaultPropertyTest, IdenticalSeedsGiveIdenticalTraces) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ScenarioResult a = RunScenario(seed, true);
    const ScenarioResult b = RunScenario(seed, true);
    EXPECT_EQ(a.Checksum(), b.Checksum());
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.final_now_ns, b.final_now_ns);
    EXPECT_EQ(a.aborted, b.aborted);
  }
}

TEST(FaultPropertyTest, TracesIdenticalOnPartitionedEngineAcrossSimThreads) {
  // The seeded fault scenarios again, hosted on LP 0 of the partitioned
  // engine: crash/straggle/degrade/partition replay must produce the exact
  // serial trace checksum at every sim-thread count.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ScenarioResult serial = RunScenario(seed, /*include_crashes=*/true);
    for (int threads : {1, 4}) {
      SCOPED_TRACE("sim_threads=" + std::to_string(threads));
      const ScenarioResult p = RunScenario(seed, /*include_crashes=*/true,
                                           /*steps=*/10, /*num_lps=*/4,
                                           threads);
      EXPECT_EQ(p.Checksum(), serial.Checksum());
      EXPECT_EQ(p.events_executed, serial.events_executed);
      EXPECT_EQ(p.final_now_ns, serial.final_now_ns);
      EXPECT_EQ(p.aborted, serial.aborted);
    }
  }
}

TEST(FaultPropertyTest, TracesIdenticalAcrossSweepThreadCounts) {
  // The same seeded fault scenarios, fanned out through SweepRunner with 1
  // and 4 threads: thread interleaving must not leak into any point.
  auto sweep = [](int threads) {
    sweep::ParamGrid grid;
    std::vector<std::int64_t> seeds;
    for (std::int64_t s = 0; s < 6; ++s) seeds.push_back(s);
    grid.AxisInts("seed", seeds);
    sweep::SweepRunner runner({.threads = threads});
    return runner.Run(grid, [](const sweep::ParamPoint& p) -> sweep::Metrics {
      ScenarioResult r = RunScenario(
          static_cast<std::uint64_t>(p.GetInt("seed")), true, /*steps=*/5);
      return {{"checksum", static_cast<double>(r.Checksum() >> 11)},
              {"events", static_cast<double>(r.events_executed)},
              {"aborted", static_cast<double>(r.aborted)}};
    });
  };
  const sweep::ResultTable t1 = sweep(1);
  const sweep::ResultTable t4 = sweep(4);
  ASSERT_EQ(t1.size(), t4.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    for (std::size_t m = 0; m < t1.rows()[i].metrics.size(); ++m) {
      EXPECT_EQ(t1.rows()[i].metrics[m].second, t4.rows()[i].metrics[m].second)
          << "row " << i << " metric " << t1.rows()[i].metrics[m].first;
    }
  }
}

TEST(FaultPropertyTest, RecoveryRestoresSteadyStateThroughput) {
  // Crash-free plans fully revert (stragglers and links return to nominal),
  // so once the last window closes, step latency must equal the fault-free
  // baseline bit-for-bit. The final steps run long after the 6ms+2ms
  // worst-case fault horizon.
  const ScenarioResult baseline = RunScenario(/*seed=*/0, false, 14);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ScenarioResult faulted = RunScenario(seed, false, 14);
    ASSERT_EQ(faulted.step_ms.size(), baseline.step_ms.size());
    EXPECT_EQ(faulted.step_ms.back(), baseline.step_ms.back())
        << "post-recovery step latency did not return to baseline";
    EXPECT_EQ(faulted.aborted, 0);  // nothing crashes in these plans
  }
  // With crashes, steady state means *stable*, not necessarily baseline
  // (virtual devices may have been remapped onto shared spares): the last
  // two steps must cost the same.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("crash seed=" + std::to_string(seed));
    const ScenarioResult faulted = RunScenario(seed, true, 14);
    const auto n = faulted.step_ms.size();
    EXPECT_EQ(faulted.step_ms[n - 1], faulted.step_ms[n - 2])
        << "step latency still drifting long after the last recovery";
  }
}

TEST(FaultPropertyTest, ZeroFaultSpecMatchesNoInjectorRun) {
  // A Random spec with all counts at zero must behave exactly like not
  // having a fault subsystem at all.
  auto bare = [] {
    sim::Simulator sim;
    auto cluster = std::make_unique<hw::Cluster>(
        &sim, hw::SystemParams::TpuDefault(), 2, 2, 2);
    PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
    Client* client = runtime.CreateClient();
    auto slice = client->AllocateSlice(4, hw::IslandId(0)).value();
    auto fn = CompiledFunction::Synthetic("step", 4, Duration::Micros(300),
                                          net::CollectiveKind::kAllReduce,
                                          KiB(32));
    auto r = client->RunFunction(fn, slice);
    sim.Run();
    EXPECT_TRUE(r.ready());
    return std::make_pair(sim.events_executed(), sim.now().nanos());
  };
  auto with_empty_injector = [] {
    sim::Simulator sim;
    auto cluster = std::make_unique<hw::Cluster>(
        &sim, hw::SystemParams::TpuDefault(), 2, 2, 2);
    PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
    FaultPlan::RandomSpec zero;
    zero.device_crashes = 0;
    zero.stragglers = 0;
    zero.link_degrades = 0;
    zero.partitions = 0;
    FaultInjector injector(
        cluster.get(), &runtime,
        FaultPlan::Random(3, ClusterShape{cluster->num_devices(),
                                          cluster->num_hosts()}, zero));
    injector.Arm();
    Client* client = runtime.CreateClient();
    auto slice = client->AllocateSlice(4, hw::IslandId(0)).value();
    auto fn = CompiledFunction::Synthetic("step", 4, Duration::Micros(300),
                                          net::CollectiveKind::kAllReduce,
                                          KiB(32));
    auto r = client->RunFunction(fn, slice);
    sim.Run();
    EXPECT_TRUE(r.ready());
    return std::make_pair(sim.events_executed(), sim.now().nanos());
  };
  EXPECT_EQ(bare(), with_empty_injector());
}

}  // namespace
}  // namespace pw::faults
