// Tests for the flow-level network model (net/topology.h, net/flow.h):
// explicit torus/Clos topologies, the max-min fair (water-filling) solver,
// the event-driven FlowNetwork, and the FlowCollectiveModel — including the
// uncontended-agreement checks against the analytic CollectiveModel and the
// contention effects (incast, oversubscription) the scalar fabric cannot
// express.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hw/cluster.h"
#include "net/collective_model.h"
#include "net/dcn.h"
#include "net/flow.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace pw::net {
namespace {

// ------------------------------------------------------------- Topology --

TEST(TorusTopologyTest, BalancedDims) {
  EXPECT_EQ(TorusTopology::BalancedDims(16, 2), (std::vector<int>{4, 4}));
  EXPECT_EQ(TorusTopology::BalancedDims(12, 2), (std::vector<int>{3, 4}));
  EXPECT_EQ(TorusTopology::BalancedDims(7, 2), (std::vector<int>{1, 7}));
  EXPECT_EQ(TorusTopology::BalancedDims(64, 3), (std::vector<int>{4, 4, 4}));
  EXPECT_EQ(TorusTopology::BalancedDims(24, 3), (std::vector<int>{2, 3, 4}));
}

TEST(TorusTopologyTest, DimensionOrderedMinimalRoutes) {
  Topology topo;
  TorusTopology torus(&topo, {4, 4}, 100e9);
  EXPECT_EQ(torus.num_nodes(), 16);
  EXPECT_EQ(topo.num_links(), 16u * 4);  // 2 dims x 2 dirs per node
  // Neighbors are one hop.
  EXPECT_EQ(torus.Distance(0, 1), 1);
  EXPECT_EQ(torus.Distance(0, 4), 1);
  // Wraparound: node 0 -> node 3 is one negative hop, not three positive.
  EXPECT_EQ(torus.Distance(0, 3), 1);
  // Opposite corner of a 4x4 torus: 2 + 2 wrap hops.
  EXPECT_EQ(torus.Distance(0, 10), 4);
  // Routes are loop-free link lists.
  const std::vector<LinkIndex> path = torus.Path(0, 10);
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(std::set<LinkIndex>(path.begin(), path.end()).size(), 4u);
  EXPECT_TRUE(torus.Path(5, 5).empty());
}

TEST(TorusTopologyTest, SnakeRingVisitsAllNodesViaNeighbors) {
  for (const std::vector<int>& dims :
       {std::vector<int>{4, 4}, {3, 5}, {1, 7}, {2, 3, 4}}) {
    Topology topo;
    TorusTopology torus(&topo, dims, 100e9);
    const std::vector<int>& order = torus.ring_order();
    ASSERT_EQ(static_cast<int>(order.size()), torus.num_nodes());
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), torus.num_nodes());
    // Consecutive snake entries are torus neighbors (single-hop routes), so
    // ring collectives embed on mostly disjoint links.
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      EXPECT_EQ(torus.Distance(order[i], order[i + 1]), 1)
          << "entries " << i << " and " << i + 1;
    }
  }
}

TEST(ClosTopologyTest, PathsAndOversubscription) {
  Topology topo;
  ClosTopology clos(&topo, {.hosts_per_leaf = 4,
                            .num_spines = 2,
                            .host_bandwidth = 10e9,
                            .spine_bandwidth = 0,
                            .oversubscription = 2.0});
  for (int h = 0; h < 8; ++h) clos.AddHost();
  EXPECT_EQ(clos.num_leaves(), 2);
  EXPECT_DOUBLE_EQ(clos.oversubscription(), 2.0);
  // R = hosts_per_leaf*nic / (spines*uplink) => uplink = 4*10/(2*2) = 10 GB/s.
  EXPECT_DOUBLE_EQ(clos.spine_bandwidth(), 10e9);
  // Same-leaf route: up + down only.
  EXPECT_EQ(clos.Path(0, 1).size(), 2u);
  // Cross-leaf route: up, leaf->spine, spine->leaf, down.
  const auto path = clos.Path(0, 5);
  EXPECT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), clos.host_up(0));
  EXPECT_EQ(path.back(), clos.host_down(5));
  // ECMP is deterministic: same pair, same path.
  EXPECT_EQ(clos.Path(0, 5), clos.Path(0, 5));
}

// ------------------------------------------------------- MaxMinFairRates --

TEST(MaxMinFairTest, SingleFlowGetsFullLink) {
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 8e9);
  const std::vector<LinkIndex> path{l};
  const auto rates = MaxMinFairRates(topo, {&path});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 8e9);
}

TEST(MaxMinFairTest, EqualSharesOnSharedBottleneck) {
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 9e9);
  const std::vector<LinkIndex> path{l};
  const auto rates = MaxMinFairRates(topo, {&path, &path, &path});
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 3e9);
}

TEST(MaxMinFairTest, WaterFillingRedistributesSlack) {
  // Classic three-flow example: A crosses l1 (10) only, B crosses l1+l2,
  // C crosses l2 (5) only. Bottleneck l2 first: B and C fixed at 2.5; A
  // then takes the rest of l1: 7.5.
  Topology topo;
  const LinkIndex l1 = topo.AddLink("l1", 10.0);
  const LinkIndex l2 = topo.AddLink("l2", 5.0);
  const std::vector<LinkIndex> pa{l1}, pb{l1, l2}, pc{l2};
  const auto rates = MaxMinFairRates(topo, {&pa, &pb, &pc});
  EXPECT_DOUBLE_EQ(rates[0], 7.5);
  EXPECT_DOUBLE_EQ(rates[1], 2.5);
  EXPECT_DOUBLE_EQ(rates[2], 2.5);
}

TEST(MaxMinFairTest, DegradedLinkScalesShares) {
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 10e9);
  topo.SetLinkScale(l, 0.5);
  const std::vector<LinkIndex> path{l};
  const auto rates = MaxMinFairRates(topo, {&path, &path});
  EXPECT_DOUBLE_EQ(rates[0], 2.5e9);
  EXPECT_DOUBLE_EQ(rates[1], 2.5e9);
}

// ----------------------------------------------------------- FlowNetwork --

TEST(FlowNetworkTest, UncontendedFlowMatchesLinkArithmetic) {
  sim::Simulator sim;
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 1e9);
  FlowNetwork net(&sim, &topo);
  double arrival_us = 0;
  net.StartFlow({l}, 10000, Duration::Micros(20),
                [&] { arrival_us = sim.now().ToMicros(); });
  sim.Run();
  // 10 KB at 1 GB/s = 10 us drain + 20 us latency, exactly like a Link.
  EXPECT_DOUBLE_EQ(arrival_us, 30.0);
  EXPECT_EQ(net.flows_completed(), 1);
}

TEST(FlowNetworkTest, TwoFlowsShareThenSpeedUp) {
  // Two equal flows on one link take 2x; after the first finishes, a third
  // joining flow gets the whole link. Checks the recompute-at-finish path.
  sim::Simulator sim;
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 1e9);
  FlowNetwork net(&sim, &topo);
  std::vector<double> arrivals;
  auto record = [&] { arrivals.push_back(sim.now().ToMicros()); };
  net.StartFlow({l}, 10000, Duration::Zero(), record);
  net.StartFlow({l}, 10000, Duration::Zero(), record);
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Both share 0.5 GB/s for the full 10 KB: 20 us each.
  EXPECT_NEAR(arrivals[0], 20.0, 0.01);
  EXPECT_NEAR(arrivals[1], 20.0, 0.01);
}

TEST(FlowNetworkTest, LateJoinerSlowsInFlight) {
  sim::Simulator sim;
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 1e9);
  FlowNetwork net(&sim, &topo);
  double first_us = 0, second_us = 0;
  net.StartFlow({l}, 20000, Duration::Zero(),
                [&] { first_us = sim.now().ToMicros(); });
  sim.Schedule(Duration::Micros(10), [&] {
    net.StartFlow({l}, 20000, Duration::Zero(),
                  [&] { second_us = sim.now().ToMicros(); });
  });
  sim.Run();
  // Flow 1 runs alone for 10 us (10 KB done), then shares: remaining 10 KB
  // at 0.5 GB/s = 20 us more -> 30 us. Flow 2: 10 KB shared (20 us) + last
  // 10 KB alone (10 us) -> 40 us.
  EXPECT_NEAR(first_us, 30.0, 0.01);
  EXPECT_NEAR(second_us, 40.0, 0.01);
}

TEST(FlowNetworkTest, CapacityChangeReshapesActiveFlows) {
  sim::Simulator sim;
  Topology topo;
  const LinkIndex l = topo.AddLink("l", 1e9);
  FlowNetwork net(&sim, &topo);
  double arrival_us = 0;
  net.StartFlow({l}, 20000, Duration::Zero(),
                [&] { arrival_us = sim.now().ToMicros(); });
  sim.Schedule(Duration::Micros(10), [&] {
    topo.SetLinkScale(l, 0.5);  // NIC degrade mid-flight
    net.OnCapacityChanged();
  });
  sim.Run();
  // 10 KB at full rate (10 us), remaining 10 KB at 0.5 GB/s (20 us).
  EXPECT_NEAR(arrival_us, 30.0, 0.01);
}

TEST(FlowNetworkTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulator sim;
    Topology topo;
    TorusTopology torus(&topo, {4, 4}, 1e9);
    FlowNetwork net(&sim, &topo);
    std::vector<std::int64_t> arrivals;
    for (int i = 0; i < 16; ++i) {
      net.StartFlow(torus.Path(i, (i * 7 + 3) % 16), 10000 + 137 * i,
                    Duration::Micros(1),
                    [&arrivals, &sim] { arrivals.push_back(sim.now().nanos()); });
    }
    sim.Run();
    return arrivals;
  };
  EXPECT_EQ(run(), run());  // bit-identical completion schedule
}

// ------------------------------------------------------------ DCN incast --

TEST(DcnFlowTest, UncontendedClosMatchesAbstractFabric) {
  // A single cross-leaf message on a non-blocking (R=1) Clos must arrive at
  // the same time the abstract per-NIC fabric predicts: NIC serialization
  // is the bottleneck on an idle network.
  DcnParams params;
  params.latency = Duration::Micros(20);
  params.nic_bandwidth = 10e9;
  params.per_message_header = 0;
  auto run = [&](bool clos) {
    DcnParams p = params;
    p.clos.enabled = clos;
    p.clos.hosts_per_leaf = 2;
    p.clos.num_spines = 2;
    p.clos.oversubscription = 1.0;
    sim::Simulator sim;
    DcnFabric dcn(&sim, p);
    for (int h = 0; h < 4; ++h) dcn.AddHost(HostId(h));
    std::int64_t arrival = 0;
    dcn.Send(HostId(0), HostId(3), 1 << 20, [&] { arrival = sim.now().nanos(); });
    sim.Run();
    return arrival;
  };
  const std::int64_t abstract_ns = run(false);
  const std::int64_t flow_ns = run(true);
  EXPECT_NEAR(static_cast<double>(flow_ns), static_cast<double>(abstract_ns),
              2.0);  // integer-ns ceiling is the only divergence allowed
}

TEST(DcnFlowTest, IncastContendsOnDestinationDownlink) {
  // 4 senders -> 1 receiver. The abstract fabric lets all four NICs
  // serialize in parallel (arrival ~= one message time); the flow fabric
  // shares the receiver's access link, taking ~4x. This is the first-class
  // incast effect the scalar model cannot express.
  auto run = [&](bool clos) {
    DcnParams p;
    p.latency = Duration::Micros(20);
    p.nic_bandwidth = 10e9;
    p.per_message_header = 0;
    p.clos.enabled = clos;
    p.clos.hosts_per_leaf = 8;
    p.clos.num_spines = 4;
    p.clos.oversubscription = 1.0;
    sim::Simulator sim;
    DcnFabric dcn(&sim, p);
    for (int h = 0; h < 5; ++h) dcn.AddHost(HostId(h));
    std::int64_t last = 0;
    int landed = 0;
    for (int s = 1; s <= 4; ++s) {
      dcn.Send(HostId(s), HostId(0), MiB(8), [&] {
        ++landed;
        last = sim.now().nanos();
      });
    }
    sim.Run();
    EXPECT_EQ(landed, 4);
    return last;
  };
  const double abstract_ms = static_cast<double>(run(false)) / 1e6;
  const double flow_ms = static_cast<double>(run(true)) / 1e6;
  EXPECT_NEAR(flow_ms, 4.0 * abstract_ms, 0.1 * abstract_ms);
}

TEST(DcnFlowTest, OversubscriptionThrottlesCrossLeafShuffle) {
  // Each of 4 hosts on leaf 0 streams to its counterpart on leaf 1. At
  // R=1 every flow runs at NIC rate; at R=4 the leaf uplinks throttle the
  // shuffle by ~4x.
  auto run = [&](double oversub) {
    DcnParams p;
    p.latency = Duration::Micros(20);
    p.nic_bandwidth = 10e9;
    p.per_message_header = 0;
    p.clos.enabled = true;
    p.clos.hosts_per_leaf = 4;
    p.clos.num_spines = 2;
    p.clos.oversubscription = oversub;
    sim::Simulator sim;
    DcnFabric dcn(&sim, p);
    for (int h = 0; h < 8; ++h) dcn.AddHost(HostId(h));
    std::int64_t last = 0;
    for (int s = 0; s < 4; ++s) {
      dcn.Send(HostId(s), HostId(4 + s), MiB(8), [&] { last = sim.now().nanos(); });
    }
    sim.Run();
    return static_cast<double>(last);
  };
  const double r1 = run(1.0);
  const double r4 = run(4.0);
  EXPECT_GT(r4, 3.0 * r1);
  EXPECT_LT(r4, 5.0 * r1);
}

TEST(DcnFlowTest, NicDegradeScalesOneEdgeOnly) {
  // Degrading host 1's NIC slows flows crossing it; host 2's traffic to a
  // different destination is untouched — the scalar model would have had no
  // edge to scale.
  DcnParams p;
  p.latency = Duration::Micros(20);
  p.nic_bandwidth = 10e9;
  p.per_message_header = 0;
  p.clos.enabled = true;
  p.clos.hosts_per_leaf = 4;
  p.clos.num_spines = 2;
  p.clos.oversubscription = 1.0;
  sim::Simulator sim;
  DcnFabric dcn(&sim, p);
  for (int h = 0; h < 4; ++h) dcn.AddHost(HostId(h));
  dcn.SetNicBandwidthScale(HostId(1), 0.25);
  std::int64_t degraded = 0, clean = 0;
  dcn.Send(HostId(1), HostId(3), MiB(8), [&] { degraded = sim.now().nanos(); });
  dcn.Send(HostId(2), HostId(0), MiB(8), [&] { clean = sim.now().nanos(); });
  sim.Run();
  EXPECT_NEAR(static_cast<double>(degraded), 4.0 * static_cast<double>(clean),
              0.05 * static_cast<double>(degraded));
}

// -------------------------------------------------- FlowCollectiveModel --

TEST(FlowCollectiveModelTest, UncontendedRingMatchesAnalyticLargePayload) {
  // On a full torus the snake ring is single-hop and link-disjoint, so for
  // bandwidth-dominated payloads the flow decomposition must agree with the
  // analytic 2(n-1)/n * B/bw formula within the latency-term slack.
  CollectiveParams params;
  params.hop_latency = Duration::Micros(1);
  params.link_bandwidth = 100e9;
  params.launch_overhead = Duration::Micros(2);
  Topology topo;
  TorusTopology torus(&topo, {4, 4}, params.link_bandwidth);
  FlowCollectiveModel flow_model(params, &topo, &torus);
  CollectiveModel analytic(params);
  for (Bytes b : {MiB(64), MiB(256), GiB(1)}) {
    const double flow_ms = flow_model.AllReduce(b, 16).ToMillis();
    const double analytic_ms = analytic.AllReduce(b, 16).ToMillis();
    EXPECT_NEAR(flow_ms, analytic_ms, 0.05 * analytic_ms)
        << "bytes=" << b;
  }
}

TEST(FlowCollectiveModelTest, SizeBasedRingVsTreeChoice) {
  CollectiveParams params;
  params.hop_latency = Duration::Micros(1);
  params.link_bandwidth = 100e9;
  params.launch_overhead = Duration::Zero();
  Topology topo;
  TorusTopology torus(&topo, {8, 8}, params.link_bandwidth);
  FlowCollectiveModel m(params, &topo, &torus);
  // Tiny payload: tree (2*log2(64)=12 rounds) beats ring (2*63 steps).
  EXPECT_LT(m.TreeTime(CollectiveKind::kAllReduce, 4, 64).nanos(),
            m.RingTime(CollectiveKind::kAllReduce, 4, 64).nanos());
  EXPECT_EQ(m.Time(CollectiveKind::kAllReduce, 4, 64).nanos(),
            m.TreeTime(CollectiveKind::kAllReduce, 4, 64).nanos());
  // Huge payload: bandwidth-optimal ring wins.
  EXPECT_LT(m.RingTime(CollectiveKind::kAllReduce, GiB(1), 64).nanos(),
            m.TreeTime(CollectiveKind::kAllReduce, GiB(1), 64).nanos());
  EXPECT_EQ(m.Time(CollectiveKind::kAllReduce, GiB(1), 64).nanos(),
            m.RingTime(CollectiveKind::kAllReduce, GiB(1), 64).nanos());
}

TEST(FlowCollectiveModelTest, DegradedIciLinkRepricesCollectives) {
  CollectiveParams params;
  params.link_bandwidth = 100e9;
  Topology topo;
  TorusTopology torus(&topo, {4, 4}, params.link_bandwidth);
  FlowCollectiveModel m(params, &topo, &torus);
  const Duration healthy = m.AllReduce(MiB(256), 16);
  const Duration healthy_ring = m.RingTime(CollectiveKind::kAllReduce, MiB(256), 16);
  // Degrade one ring edge to 10%: every ring step now waits on it, so the
  // ring schedule reprices ~10x ...
  topo.SetLinkScale(torus.LinkFrom(0, 1, true), 0.1);
  const Duration degraded_ring = m.RingTime(CollectiveKind::kAllReduce, MiB(256), 16);
  EXPECT_GT(degraded_ring.nanos(), 8 * healthy_ring.nanos());
  // ... and the end-to-end price rises, but less than the naive 10x: the
  // size-based choice falls back to the tree schedule, which mostly avoids
  // the bad edge. Exactly the adaptivity a scalar model cannot express.
  const Duration degraded = m.AllReduce(MiB(256), 16);
  EXPECT_GT(degraded.nanos(), 3 * healthy.nanos());
  EXPECT_LT(degraded.nanos(),
            m.RingTime(CollectiveKind::kAllReduce, MiB(256), 16).nanos());
  // Restoring the link restores the price (cache invalidates by generation).
  topo.SetLinkScale(torus.LinkFrom(0, 1, true), 1.0);
  EXPECT_EQ(m.AllReduce(MiB(256), 16).nanos(), healthy.nanos());
}

TEST(FlowCollectiveModelTest, SubsetGangsAndMonotonicity) {
  CollectiveParams params;
  Topology topo;
  TorusTopology torus(&topo, {4, 4}, params.link_bandwidth);
  FlowCollectiveModel m(params, &topo, &torus);
  // Gangs smaller than the torus still price (snake-prefix ring + closing
  // path), and time grows with payload.
  for (int n : {2, 3, 5, 7, 12, 16}) {
    Duration prev = Duration::Zero();
    for (Bytes b : {Bytes{4}, KiB(64), MiB(1), MiB(64)}) {
      const Duration t = m.AllReduce(b, n);
      EXPECT_GE(t.nanos(), prev.nanos()) << "n=" << n << " bytes=" << b;
      prev = t;
    }
  }
}

// ----------------------------------------------------- Island flow mode --

TEST(IslandFlowTest, FlowIciTransfersAndCollectivesWork) {
  sim::Simulator sim;
  hw::SystemParams params;
  params.ici_flow.enabled = true;
  auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/2);  // 16 devices
  auto flow_cluster = std::make_unique<hw::Cluster>(&sim, params, 1, 2, 8);
  hw::Island& island = flow_cluster->island(0);
  ASSERT_NE(island.ici_topology(), nullptr);
  ASSERT_NE(island.ici_torus(), nullptr);
  EXPECT_EQ(island.ici_torus()->num_nodes(), 16);
  // Point-to-point transfer over the torus completes.
  bool landed = false;
  island.Transfer(hw::DeviceId(0), hw::DeviceId(5), MiB(1)).Then([&](sim::Unit) {
    landed = true;
  });
  sim.Run();
  EXPECT_TRUE(landed);
  EXPECT_GT(island.ici_bytes_transferred(), 0);
  // The collective model is the flow-backed one and stays callable through
  // the CollectiveModel interface.
  const Duration t = island.collectives().Time(CollectiveKind::kAllReduce,
                                               MiB(64), 16);
  EXPECT_GT(t.nanos(), 0);
}

TEST(IslandFlowTest, DefaultModeHasNoFlowState) {
  sim::Simulator sim;
  auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/2);
  EXPECT_EQ(cluster->island(0).ici_topology(), nullptr);
  EXPECT_EQ(cluster->island(0).ici_flow_network(), nullptr);
}

}  // namespace
}  // namespace pw::net
