// Tests for the sweep subsystem: grid expansion order, point accessors,
// thread-pool runner determinism (N threads == 1 thread == grid order),
// simulator integration, and JSON/CSV emission.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sweep/param_grid.h"
#include "sweep/result_table.h"
#include "sweep/sweep_runner.h"

namespace pw::sweep {
namespace {

// ----------------------------------------------------------- ParamGrid --

TEST(ParamGridTest, CartesianExpansionIsRowMajor) {
  ParamGrid grid;
  grid.AxisInts("a", {1, 2}).AxisStrings("b", {"x", "y", "z"});
  EXPECT_EQ(grid.size(), 6u);
  const auto points = grid.Points();
  ASSERT_EQ(points.size(), 6u);
  // First axis varies slowest.
  EXPECT_EQ(points[0].Label(), "a=1,b=x");
  EXPECT_EQ(points[1].Label(), "a=1,b=y");
  EXPECT_EQ(points[2].Label(), "a=1,b=z");
  EXPECT_EQ(points[3].Label(), "a=2,b=x");
  EXPECT_EQ(points[5].Label(), "a=2,b=z");
  EXPECT_EQ(points[4].index(), 4u);
}

TEST(ParamGridTest, EmptyGridHasOneEmptyPoint) {
  ParamGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  const auto points = grid.Points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].entries().empty());
}

TEST(ParamGridTest, AccessorsAndTypePromotion) {
  ParamGrid grid;
  grid.AxisInts("n", {8}).AxisDoubles("frac", {0.5}).AxisStrings("mode", {"PW"});
  const auto p = grid.Points().at(0);
  EXPECT_TRUE(p.Has("n"));
  EXPECT_FALSE(p.Has("missing"));
  EXPECT_EQ(p.GetInt("n"), 8);
  EXPECT_DOUBLE_EQ(p.GetDouble("frac"), 0.5);
  EXPECT_DOUBLE_EQ(p.GetDouble("n"), 8.0);  // int promotes to double
  EXPECT_EQ(p.GetString("mode"), "PW");
}

TEST(ParamGridDeathTest, DuplicateAxisAndMissingNameDie) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  ParamGrid grid;
  grid.AxisInts("a", {1});
  EXPECT_DEATH(grid.AxisInts("a", {2}), "duplicate axis");
  const auto p = grid.Points().at(0);
  EXPECT_DEATH(p.Get("nope"), "no axis named");
  EXPECT_DEATH(p.GetString("a"), "not a string");
}

// --------------------------------------------------------- SweepRunner --

TEST(SweepRunnerTest, ResultsArriveInGridOrderRegardlessOfThreads) {
  ParamGrid grid;
  grid.AxisInts("i", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto fn = [](const ParamPoint& p) -> Metrics {
    return {{"twice", static_cast<double>(p.GetInt("i") * 2)}};
  };
  const ResultTable serial = SweepRunner({.threads = 1}).Run(grid, fn);
  const ResultTable pooled = SweepRunner({.threads = 8}).Run(grid, fn);
  ASSERT_EQ(serial.size(), 10u);
  ASSERT_EQ(pooled.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(std::get<std::int64_t>(serial.rows()[i].params[0].second),
              static_cast<std::int64_t>(i));
    EXPECT_EQ(serial.rows()[i].metrics[0].second, 2.0 * static_cast<double>(i));
    EXPECT_EQ(pooled.rows()[i].metrics[0].second, serial.rows()[i].metrics[0].second);
  }
}

TEST(SweepRunnerTest, SerializedOutputIsByteIdenticalAcrossThreadCounts) {
  ParamGrid grid;
  grid.AxisInts("n", {1, 2, 3, 4}).AxisStrings("kind", {"a", "b"});
  auto fn = [](const ParamPoint& p) -> Metrics {
    return {{"v", static_cast<double>(p.GetInt("n")) +
                      (p.GetString("kind") == "a" ? 0.25 : 0.75)}};
  };
  std::ostringstream csv1, csv4;
  SweepRunner({.threads = 1}).Run(grid, fn).WriteCsv(csv1);
  SweepRunner({.threads = 4}).Run(grid, fn).WriteCsv(csv4);
  EXPECT_EQ(csv1.str(), csv4.str());
  EXPECT_NE(csv1.str().find("n,kind,v"), std::string::npos);
}

TEST(SweepRunnerTest, EachPointRunsItsOwnDeterministicSimulator) {
  // The intended usage: every point builds a private single-threaded
  // Simulator; concurrency across points must not leak into results.
  ParamGrid grid;
  grid.AxisInts("events", {10, 100, 1000});
  auto fn = [](const ParamPoint& p) -> Metrics {
    sim::Simulator sim;
    const std::int64_t n = p.GetInt("events");
    for (std::int64_t i = 0; i < n; ++i) {
      sim.Schedule(Duration::Nanos(i % 97), [] {});
    }
    const std::int64_t ran = sim.Run();
    return {{"ran", static_cast<double>(ran)},
            {"final_ns", static_cast<double>(sim.now().nanos())}};
  };
  const ResultTable t1 = SweepRunner({.threads = 4}).Run(grid, fn);
  const ResultTable t2 = SweepRunner({.threads = 2}).Run(grid, fn);
  ASSERT_EQ(t1.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t1.rows()[i].metrics[0].second, t2.rows()[i].metrics[0].second);
    EXPECT_EQ(t1.rows()[i].metrics[1].second, t2.rows()[i].metrics[1].second);
  }
  EXPECT_EQ(t1.rows()[2].metrics[0].second, 1000.0);
}

TEST(SweepRunnerTest, EffectiveThreadsClampsToWork) {
  SweepRunner runner({.threads = 16});
  EXPECT_EQ(runner.EffectiveThreads(3), 3);
  EXPECT_EQ(runner.EffectiveThreads(100), 16);
  SweepRunner one({.threads = 1});
  EXPECT_EQ(one.EffectiveThreads(100), 1);
}

TEST(SweepRunnerTest, AllPointsVisitedExactlyOnceConcurrently) {
  ParamGrid grid;
  grid.AxisInts("i", []{
    std::vector<std::int64_t> v;
    for (int i = 0; i < 64; ++i) v.push_back(i);
    return v;
  }());
  std::atomic<int> calls{0};
  const ResultTable t = SweepRunner({.threads = 8}).Run(grid, [&](const ParamPoint&) -> Metrics {
    calls.fetch_add(1);
    return {{"one", 1.0}};
  });
  EXPECT_EQ(calls.load(), 64);
  EXPECT_EQ(t.size(), 64u);
}

// ------------------------------------------------------- serialization --

TEST(ResultTableTest, CsvUnionsColumnsInFirstSeenOrder) {
  ResultTable t;
  t.Add({{"hosts", std::int64_t{2}}}, {{"rate", 10.5}});
  t.Add({{"hosts", std::int64_t{4}}, {"mode", std::string("PW")}},
        {{"rate", 20.0}, {"util", 0.75}});
  std::ostringstream os;
  t.WriteCsv(os);
  EXPECT_EQ(os.str(),
            "hosts,mode,rate,util\n"
            "2,,10.5,\n"
            "4,PW,20,0.75\n");
}

TEST(ResultTableTest, BenchJsonHasSchemaFields) {
  ResultTable t;
  t.Add({{"workload", std::string("empty")}}, {{"events_per_sec", 1.25e6}});
  std::ostringstream os;
  WriteBenchJson(os, "simcore", {{"speedup_vs_legacy", 2.5}}, t);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"bench\": \"simcore\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"speedup_vs_legacy\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"empty\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\": 1250000"), std::string::npos);
}

TEST(ResultTableTest, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(ResultTableTest, EmptySeriesSerializesAsEmptyArray) {
  ResultTable t;
  std::ostringstream os;
  WriteBenchJson(os, "nothing", {}, t);
  EXPECT_NE(os.str().find("\"series\": []"), std::string::npos);
}

}  // namespace
}  // namespace pw::sweep
