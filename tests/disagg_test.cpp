// Disaggregated prefill/decode serving unit tests (docs/SERVING.md).
//
// Covers the disagg lifecycle (prefill island -> KV handoff over DCN ->
// decode island -> finish), router admission (decode-side impossibility,
// least-loaded prefill routing), KV handoff byte-exactness against
// ObjectStore statistics on both islands, decode-side enqueue ordering,
// the crash-mid-transfer path (all shards released on both islands,
// request re-prefills — run under ASan in CI), decode-island crashes
// returning requests for re-prefill, the in-flight KV floor throttle, and
// the TTFT regression: disaggregated TTFT must be stamped at first decode
// token emission, never at prefill completion.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "serving/serving.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace pw::serving {
namespace {

using pathways::PathwaysOptions;
using pathways::PathwaysRuntime;

struct DisaggWorld {
  // When `external_sim` is given the world runs on that engine (e.g. an LP
  // of a PartitionedSimulator) instead of its own; `own_sim` stays idle.
  explicit DisaggWorld(Bytes hbm = GiB(1), int devices_per_host = 2,
                       int islands = 2,
                       hw::SystemParams params = DefaultParams(),
                       sim::Simulator* external_sim = nullptr)
      : sim(external_sim != nullptr ? *external_sim : own_sim) {
    params.hbm_capacity = hbm;
    cluster = std::make_unique<hw::Cluster>(&sim, params, islands,
                                            /*hosts_per_island=*/1,
                                            devices_per_host);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(),
                                                PathwaysOptions{});
    client = runtime->CreateClient();
  }

  static hw::SystemParams DefaultParams() {
    hw::SystemParams params = hw::SystemParams::TpuDefault();
    params.host_jitter_frac = 0;  // deterministic timing in unit tests
    return params;
  }

  // One prefill batcher on island 0 and one decode batcher on island 1.
  DisaggRouter& MakeDisagg(int prefill_devices, int decode_devices,
                           KvCacheConfig kv, BatcherConfig cfg,
                           DisaggRouterConfig router_cfg = {}) {
    BatcherConfig prefill_cfg = cfg;
    prefill_cfg.role = BatcherRole::kPrefill;
    prefill_slice =
        client->AllocateSlice(prefill_devices, hw::IslandId(0)).value();
    prefill = std::make_unique<Batcher>(client, prefill_slice, kv, prefill_cfg,
                                        &metrics, &trace);
    BatcherConfig decode_cfg = cfg;
    decode_cfg.role = BatcherRole::kDecode;
    decode_slice =
        client->AllocateSlice(decode_devices, hw::IslandId(1)).value();
    decode = std::make_unique<Batcher>(client, decode_slice, kv, decode_cfg,
                                       &metrics, &trace);
    router = std::make_unique<DisaggRouter>(
        std::vector<Batcher*>{prefill.get()},
        std::vector<Batcher*>{decode.get()}, &metrics, &trace, router_cfg);
    return *router;
  }

  Request Req(std::int64_t id, int prefill_tokens, int decode_tokens) {
    Request r;
    r.id = id;
    r.prefill_tokens = prefill_tokens;
    r.decode_tokens = decode_tokens;
    r.arrival = sim.now();
    return r;
  }

  void ExpectNoLeaks(int num_devices) {
    EXPECT_EQ(prefill->kv().live_sequences(), 0);
    EXPECT_EQ(decode->kv().live_sequences(), 0);
    pathways::ObjectStore& store = runtime->object_store();
    EXPECT_EQ(store.live_buffers(), 0) << store.DumpShardStates();
    for (int d = 0; d < num_devices; ++d) {
      EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(d)), 0);
      EXPECT_EQ(store.hbm_used(hw::DeviceId(d)), 0);
    }
  }

  sim::Simulator own_sim;
  sim::Simulator& sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
  pathways::Client* client = nullptr;
  pathways::VirtualSlice prefill_slice;
  pathways::VirtualSlice decode_slice;
  ServingMetrics metrics;
  ServingTrace trace;
  std::unique_ptr<Batcher> prefill;
  std::unique_ptr<Batcher> decode;
  std::unique_ptr<DisaggRouter> router;
};

const ServingTrace::Event* Find(const ServingTrace& trace,
                                const std::string& kind, std::int64_t request) {
  for (const auto& e : trace.events()) {
    if (e.kind == kind && e.request == request) return &e;
  }
  return nullptr;
}

std::vector<std::string> KindsFor(const ServingTrace& trace,
                                  std::int64_t request) {
  std::vector<std::string> kinds;
  for (const auto& e : trace.events()) {
    if (e.request == request) kinds.push_back(e.kind);
  }
  return kinds;
}

// ------------------------------------------------------ request lifecycle --

TEST(DisaggLifecycleTest, SingleRequestPrefillsTransfersDecodesFinishes) {
  DisaggWorld w;
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{}, BatcherConfig{});

  ASSERT_TRUE(r.Offer(w.Req(1, /*prefill=*/8, /*decode=*/4)));
  w.sim.Run();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(r.idle());
  EXPECT_EQ(w.prefill->handoffs(), 1);
  EXPECT_EQ(r.transfers_completed(), 1);
  EXPECT_EQ(r.transfers_failed(), 0);
  EXPECT_EQ(w.decode->finished(), 1);
  EXPECT_EQ(w.metrics.arrivals(), 1);
  EXPECT_EQ(w.metrics.handoffs(), 1);
  EXPECT_EQ(w.metrics.prefills(), 1);  // first token emitted exactly once
  EXPECT_EQ(w.metrics.tokens(), 3);
  EXPECT_EQ(w.metrics.finished(), 1);

  // The full disagg dataflow in order: prefill island, handoff, DCN
  // transfer, decode island enqueue/admit, first token from DECODE.
  EXPECT_EQ(KindsFor(w.trace, 1),
            (std::vector<std::string>{"arrive", "admit", "prefill", "handoff",
                                      "kv_send", "kv_ready", "enqueue",
                                      "admit", "first_token", "token", "token",
                                      "token", "finish"}));

  // The KV crossed a real DCN: transfer completion is at least one fabric
  // latency after it started.
  const auto* send = Find(w.trace, "kv_send", 1);
  const auto* ready = Find(w.trace, "kv_ready", 1);
  ASSERT_NE(send, nullptr);
  ASSERT_NE(ready, nullptr);
  EXPECT_GE(ready->at_ns - send->at_ns,
            DisaggWorld::DefaultParams().dcn.latency.nanos());
  EXPECT_EQ(r.bytes_transferred(),
            2 * w.decode->kv().BytesForTokens(8));  // both dst shards

  w.ExpectNoLeaks(/*num_devices=*/4);
}

// ---------------------------------------------------------- router admission --

TEST(DisaggRouterTest, DecodeImpossibleRequestShedAtOffer) {
  DisaggWorld w;
  const Bytes tok = KiB(16);
  BatcherConfig cfg;
  cfg.kv_budget_per_device = 10 * tok;
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{tok}, cfg);

  // Projected KV 8 + 5 - 1 = 12 tokens > 10-token budget on the decode
  // island: shed at the router, before any prefill work.
  EXPECT_FALSE(r.Offer(w.Req(7, /*prefill=*/8, /*decode=*/5)));
  EXPECT_EQ(r.shed(), 1);
  EXPECT_EQ(w.metrics.arrivals(), 1);
  EXPECT_EQ(w.metrics.sheds(), 1);
  EXPECT_EQ(w.prefill->iterations(), 0);
  const auto* shed = Find(w.trace, "shed", 7);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->detail, 2);  // decode-side impossibility, not 0/1

  // A request within the decode budget passes through to the prefill
  // batcher and completes.
  ASSERT_TRUE(r.Offer(w.Req(8, 4, 4)));
  w.sim.Run();
  EXPECT_EQ(w.metrics.finished(), 1);
}

TEST(DisaggRouterTest, RoutesToLeastLoadedPrefillBatcher) {
  // Three islands: two prefill islands and one decode island.
  DisaggWorld w(GiB(1), /*devices_per_host=*/2, /*islands=*/3);
  BatcherConfig cfg;
  cfg.max_batch = 1;
  BatcherConfig prefill_cfg = cfg;
  prefill_cfg.role = BatcherRole::kPrefill;
  auto slice_a = w.client->AllocateSlice(2, hw::IslandId(0)).value();
  auto slice_b = w.client->AllocateSlice(2, hw::IslandId(1)).value();
  Batcher prefill_a(w.client, slice_a, KvCacheConfig{}, prefill_cfg,
                    &w.metrics, &w.trace);
  Batcher prefill_b(w.client, slice_b, KvCacheConfig{}, prefill_cfg,
                    &w.metrics, &w.trace);
  BatcherConfig decode_cfg;
  decode_cfg.role = BatcherRole::kDecode;
  auto slice_d = w.client->AllocateSlice(2, hw::IslandId(2)).value();
  Batcher decode(w.client, slice_d, KvCacheConfig{}, decode_cfg, &w.metrics,
                 &w.trace);
  DisaggRouter r({&prefill_a, &prefill_b}, {&decode}, &w.metrics, &w.trace);

  // First two requests land on batcher A (ties break to the lowest index;
  // a running request does not count as queue depth). The third sees A's
  // queue at 1 vs B's 0 and goes to B.
  ASSERT_TRUE(r.Offer(w.Req(1, 8, 2)));  // A: running
  ASSERT_TRUE(r.Offer(w.Req(2, 8, 2)));  // A: queued (max_batch = 1)
  ASSERT_TRUE(r.Offer(w.Req(3, 8, 2)));  // B
  EXPECT_EQ(prefill_a.running() + static_cast<int>(prefill_a.queue_depth()), 2);
  EXPECT_EQ(prefill_b.running() + static_cast<int>(prefill_b.queue_depth()), 1);

  w.sim.Run();
  EXPECT_EQ(w.metrics.finished(), 3);
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 0);
}

// ------------------------------------------- KV handoff, byte-for-byte --

TEST(DisaggKvTest, HandoffBytesMatchObjectStoreStatsOnBothIslands) {
  DisaggWorld w;
  const Bytes tok = KiB(16);
  DisaggRouter& r =
      w.MakeDisagg(2, 2, KvCacheConfig{tok}, BatcherConfig{});
  pathways::ObjectStore& store = w.runtime->object_store();

  ASSERT_TRUE(r.Offer(w.Req(1, /*prefill=*/8, /*decode=*/64)));

  // While the KV is still on the prefill island (post-prefill, transfer in
  // flight), the bytes live on island-0 devices.
  ASSERT_TRUE(w.sim.RunUntilPredicate([&] { return r.transfers_started() == 1; }));
  EXPECT_EQ(w.prefill->kv().live_sequences(), 1);
  EXPECT_EQ(w.prefill->kv().tokens_of(1), 8);
  EXPECT_EQ(w.prefill->kv().live_bytes_per_shard(), 8 * tok);
  const auto& src_h = w.prefill->kv().handle(1);
  for (int s = 0; s < src_h.num_shards(); ++s) {
    const auto& shard = src_h.shards[static_cast<std::size_t>(s)];
    EXPECT_EQ(shard.bytes, 8 * tok);
    EXPECT_EQ(store.shard_bytes(src_h.id, s), 8 * tok);
    EXPECT_EQ(w.cluster->device(shard.device).island(), hw::IslandId(0));
  }

  // The moment the transfer completes: the decode island holds exactly the
  // prompt's bytes per shard, and the prefill island's copy is fully
  // released (no double-charged KV anywhere).
  ASSERT_TRUE(
      w.sim.RunUntilPredicate([&] { return r.transfers_completed() == 1; }));
  EXPECT_EQ(w.prefill->kv().live_sequences(), 0);
  EXPECT_EQ(w.prefill->kv().live_bytes_per_shard(), 0);
  EXPECT_EQ(w.decode->kv().live_sequences(), 1);
  EXPECT_EQ(w.decode->kv().tokens_of(1), 8);
  const auto& dst_h = w.decode->kv().handle(1);
  ASSERT_EQ(dst_h.num_shards(), 2);
  Bytes dst_total = 0;
  for (int s = 0; s < dst_h.num_shards(); ++s) {
    EXPECT_EQ(store.shard_bytes(dst_h.id, s), 8 * tok);
    const auto& shard = dst_h.shards[static_cast<std::size_t>(s)];
    EXPECT_EQ(w.cluster->device(shard.device).island(), hw::IslandId(1));
    EXPECT_EQ(store.logical_live_bytes(shard.device), 8 * tok);
    dst_total += shard.bytes;
  }
  // Every byte that landed was counted through the router, and it all rode
  // the DCN fabric.
  EXPECT_EQ(r.bytes_transferred(), dst_total);
  EXPECT_GE(w.cluster->dcn().bytes_sent(), dst_total);
  // Prefill island devices are clean (devices 0..1 are island 0).
  EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(0)), 0);
  EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(1)), 0);

  w.sim.Run();
  EXPECT_EQ(w.metrics.finished(), 1);
  w.ExpectNoLeaks(4);
}

// ------------------------------------------------- decode enqueue ordering --

TEST(DisaggOrderingTest, EnqueueFollowsKvReadyOrderAcrossIterations) {
  DisaggWorld w;
  BatcherConfig cfg;
  cfg.token_budget = 32;  // request 1's prompt fills iteration 1 alone
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{}, cfg);

  ASSERT_TRUE(r.Offer(w.Req(1, /*prefill=*/32, /*decode=*/4)));
  ASSERT_TRUE(r.Offer(w.Req(2, /*prefill=*/4, /*decode=*/4)));
  ASSERT_TRUE(r.Offer(w.Req(3, /*prefill=*/4, /*decode=*/4)));
  w.sim.Run();

  EXPECT_EQ(w.metrics.finished(), 3);
  EXPECT_EQ(r.transfers_completed(), 3);
  // Handoffs complete in prefill-iteration order (1 alone, then 2 and 3);
  // transfers are FIFO over one NIC, so kv_ready, decode enqueue, and the
  // first decode tokens all preserve that order.
  for (const char* kind : {"handoff", "kv_ready", "enqueue", "first_token"}) {
    std::vector<std::int64_t> order;
    for (const auto& e : w.trace.events()) {
      if (e.kind == kind) order.push_back(e.request);
    }
    EXPECT_EQ(order, (std::vector<std::int64_t>{1, 2, 3})) << kind;
  }
  w.ExpectNoLeaks(4);
}

// ---------------------------------------------------- fault composition --

// Crash a prefill-island device while the KV is crossing the DCN: the
// completion check sees the moved failure epoch, releases the copies on
// BOTH islands (nothing orphaned), and the request re-prefills against the
// remapped slice. ASan (CI sanitize job) verifies no leaked store refs.
TEST(DisaggCrashTest, CrashMidTransferReleasesBothIslandsAndReprefills) {
  DisaggWorld w(GiB(1), /*devices_per_host=*/4);
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{}, BatcherConfig{});
  // Slow the prefill host's NIC to 2% so the transfer is unambiguously in
  // flight when the crash lands.
  w.cluster->dcn().SetNicBandwidthScale(hw::HostId(0), 0.02);

  ASSERT_TRUE(r.Offer(w.Req(1, /*prefill=*/64, /*decode=*/4)));
  faults::FaultPlan plan;
  plan.CrashDevice(hw::DeviceId(0), TimePoint() + Duration::Millis(2),
                   /*down_for=*/Duration::Millis(1));
  faults::FaultInjector injector(w.cluster.get(), w.runtime.get(),
                                 std::move(plan));
  injector.Arm();

  // The failed transfer must release the decode island's partial buffer in
  // the same event that detects the crash.
  ASSERT_TRUE(
      w.sim.RunUntilPredicate([&] { return r.transfers_failed() == 1; }));
  EXPECT_FALSE(w.decode->kv().Contains(1));
  EXPECT_EQ(w.decode->kv().live_bytes_per_shard(), 0);
  const auto* fail = Find(w.trace, "kv_fail", 1);
  ASSERT_NE(fail, nullptr);

  w.sim.Run();
  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(r.idle());
  EXPECT_EQ(w.metrics.finished(), 1);
  EXPECT_EQ(r.reprefills(), 1);
  EXPECT_GE(r.transfers_completed(), 1);
  const auto* requeue = Find(w.trace, "requeue", 1);
  ASSERT_NE(requeue, nullptr);
  EXPECT_GE(requeue->detail, 2);  // attempts after the re-prefill
  EXPECT_GE(w.metrics.handoffs(), 2);  // prefilled twice
  EXPECT_EQ(w.metrics.prefills(), 1);  // but exactly one first token
  w.ExpectNoLeaks(8);
}

// Crash a decode-island device mid-decode: the decode batcher releases all
// resident KV and hands every request back through the router for a fresh
// prefill; everything still finishes.
TEST(DisaggCrashTest, DecodeIslandCrashReturnsRequestsForReprefill) {
  DisaggWorld w(GiB(1), /*devices_per_host=*/4);
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{}, BatcherConfig{});

  ASSERT_TRUE(r.Offer(w.Req(1, /*prefill=*/8, /*decode=*/48)));
  ASSERT_TRUE(r.Offer(w.Req(2, /*prefill=*/8, /*decode=*/48)));
  faults::FaultPlan plan;
  // Devices 4..7 are island 1; the decode slice holds 4 and 5.
  plan.CrashDevice(hw::DeviceId(4), TimePoint() + Duration::Millis(1),
                   /*down_for=*/Duration::Millis(1));
  faults::FaultInjector injector(w.cluster.get(), w.runtime.get(),
                                 std::move(plan));
  injector.Arm();
  w.sim.Run();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(r.idle());
  EXPECT_EQ(w.metrics.finished(), 2);
  EXPECT_GE(w.decode->aborted_iterations(), 1);
  EXPECT_GE(r.reprefills(), 1);
  EXPECT_GE(w.metrics.handoffs(), 3);  // at least one request went around twice
  EXPECT_GE(w.runtime->resource_manager().vdevs_remapped(), 1);
  w.ExpectNoLeaks(8);
}

// -------------------------------------------------- in-flight KV throttle --

TEST(DisaggThrottleTest, InflightFloorBoundsConcurrentTransfers) {
  DisaggWorld w;
  const Bytes tok = KiB(16);
  BatcherConfig cfg;
  cfg.token_budget = 512;
  DisaggRouterConfig router_cfg;
  router_cfg.max_inflight_per_shard = 2 * 8 * tok;  // two 8-token prompts
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{tok}, cfg, router_cfg);
  // Slow the NIC so handoffs outpace transfers and the throttle must bite.
  w.cluster->dcn().SetNicBandwidthScale(hw::HostId(0), 0.05);

  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(r.Offer(w.Req(i, /*prefill=*/8, /*decode=*/2)));
  }
  w.sim.Run();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_EQ(w.metrics.finished(), 5);
  EXPECT_EQ(r.transfers_completed(), 5);
  // Never more than two prompts' unready KV per decode shard in flight.
  EXPECT_LE(r.peak_inflight_per_shard(), router_cfg.max_inflight_per_shard);
  w.ExpectNoLeaks(4);
}

// ------------------------------------------------------- TTFT regression --

// Disaggregated TTFT must cover prefill + KV transfer + decode queueing —
// i.e. be stamped at the first *decode* token, not at prefill completion.
// A 5ms DCN latency makes any conflation of the two unmissable.
TEST(DisaggTtftTest, TtftStampedAtFirstDecodeTokenNotPrefillCompletion) {
  hw::SystemParams params = DisaggWorld::DefaultParams();
  params.dcn.latency = Duration::Millis(5);
  DisaggWorld w(GiB(1), /*devices_per_host=*/2, /*islands=*/2, params);
  DisaggRouter& r = w.MakeDisagg(2, 2, KvCacheConfig{}, BatcherConfig{});

  ASSERT_TRUE(r.Offer(w.Req(1, /*prefill=*/8, /*decode=*/4)));
  w.sim.Run();

  ASSERT_EQ(w.metrics.finished(), 1);
  ASSERT_EQ(w.metrics.handoffs(), 1);
  ASSERT_EQ(w.metrics.prefills(), 1);

  const auto* prefill_done = Find(w.trace, "prefill", 1);
  const auto* first_token = Find(w.trace, "first_token", 1);
  ASSERT_NE(prefill_done, nullptr);
  ASSERT_NE(first_token, nullptr);

  // TTFT equals the first decode token's timestamp (arrival was t=0)...
  EXPECT_NEAR(w.metrics.TtftUs(50),
              static_cast<double>(first_token->at_ns) / 1e3, 1.0);
  // ...which is at least one 5ms DCN hop after prefill completion, so the
  // two metrics cannot be conflated.
  EXPECT_GE(w.metrics.TtftUs(50), w.metrics.PrefillDoneUs(50) + 5000.0);
  EXPECT_NEAR(w.metrics.PrefillDoneUs(50),
              static_cast<double>(prefill_done->at_ns) / 1e3, 1.0);
}

// ------------------------------------------------------------ golden trace --

// Fixed two-island, two-tenant disagg scenario. Any change to batching,
// handoff, transfer, or network semantics moves these constants; update
// them only with an explanation of what legitimately changed. The same
// scenario (and the same constants) must also hold on the partitioned
// engine — the serial/parallel equivalence gate for the disagg stack.
void RunTwoIslandGoldenScenario(DisaggWorld& w,
                                const std::function<void()>& drain,
                                const std::string& label) {
  SCOPED_TRACE(label);
  KvCacheConfig kv;
  kv.bytes_per_token_per_shard = KiB(4);
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.token_budget = 128;
  cfg.kv_budget_per_device = KiB(512);
  DisaggRouter& r = w.MakeDisagg(2, 2, kv, cfg);

  TenantSpec t0;
  t0.arrivals.process = workload::ArrivalProcess::kPoisson;
  t0.arrivals.rate_per_sec = 15000;
  t0.arrivals.horizon = Duration::Millis(2);
  t0.arrivals.seed = 11;
  t0.min_prefill_tokens = 8;
  t0.max_prefill_tokens = 32;
  t0.min_decode_tokens = 4;
  t0.max_decode_tokens = 8;
  t0.token_seed = 3;

  TenantSpec t1;
  t1.arrivals.process = workload::ArrivalProcess::kUniform;
  t1.arrivals.rate_per_sec = 10000;
  t1.arrivals.horizon = Duration::Millis(2);
  t1.arrivals.seed = 22;
  t1.min_prefill_tokens = 16;
  t1.max_prefill_tokens = 48;
  t1.min_decode_tokens = 2;
  t1.max_decode_tokens = 6;
  t1.token_seed = 5;

  ServingTenant tenant0(
      0, [&r](Request req) { return r.Offer(std::move(req)); }, &w.sim, t0);
  ServingTenant tenant1(
      1, [&r](Request req) { return r.Offer(std::move(req)); }, &w.sim, t1);
  tenant0.Start();
  tenant1.Start();
  drain();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(r.idle());
  EXPECT_EQ(w.metrics.arrivals(),
            tenant0.arrivals_generated() + tenant1.arrivals_generated());
  EXPECT_EQ(w.metrics.finished() + w.metrics.sheds(), w.metrics.arrivals());
  w.ExpectNoLeaks(4);

  // Golden constants — printed on mismatch for easy (deliberate) updates.
  const std::uint64_t kGoldenChecksum = 0xf7f81e13dc4c5f33ULL;
  const std::int64_t kGoldenFinished = 44;
  const std::int64_t kGoldenTransfers = 44;
  std::ostringstream actual;
  actual << "checksum 0x" << std::hex << w.trace.Checksum() << std::dec
         << " finished " << w.metrics.finished() << " transfers "
         << r.transfers_completed() << " arrivals " << w.metrics.arrivals()
         << " prefill_iters " << w.prefill->iterations() << " decode_iters "
         << w.decode->iterations();
  EXPECT_EQ(w.trace.Checksum(), kGoldenChecksum) << actual.str();
  EXPECT_EQ(w.metrics.finished(), kGoldenFinished) << actual.str();
  EXPECT_EQ(r.transfers_completed(), kGoldenTransfers) << actual.str();
}

TEST(DisaggGoldenTest, TwoIslandScenarioTraceChecksum) {
  DisaggWorld w(/*hbm=*/MiB(1), /*devices_per_host=*/2);
  RunTwoIslandGoldenScenario(w, [&] { w.sim.Run(); }, "serial");
}

// Same scenario hosted on LP 0 of the partitioned engine, at several
// sim-thread counts. With all events on one LP the conservative windows are
// unbounded, so the run reproduces the serial schedule byte-for-byte.
TEST(DisaggGoldenTest, TwoIslandScenarioPartitionedEngineMatchesGolden) {
  for (int threads : {1, 4}) {
    sim::PartitionedSimulator part(sim::PartitionedSimulator::Options{
        /*num_lps=*/4, threads, Duration::Micros(20)});
    DisaggWorld w(/*hbm=*/MiB(1), /*devices_per_host=*/2, /*islands=*/2,
                  DisaggWorld::DefaultParams(), &part.lp(0));
    RunTwoIslandGoldenScenario(
        w, [&] { part.Run(); },
        "partitioned sim_threads=" + std::to_string(threads));
    EXPECT_FALSE(part.Deadlocked());
  }
}

}  // namespace
}  // namespace pw::serving
