#include <gtest/gtest.h>

#include "net/collective_model.h"
#include "net/dcn.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace pw::net {
namespace {

// ------------------------------------------------------------------ Link --

TEST(LinkTest, LatencyPlusSerialization) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(10), /*bw=*/1e9);  // 1 GB/s
  double delivered_us = 0;
  link.Transfer(/*bytes=*/1000, [&] { delivered_us = sim.now().ToMicros(); });
  sim.Run();
  // 1000 B at 1 GB/s = 1 us serialization + 10 us latency.
  EXPECT_DOUBLE_EQ(delivered_us, 11.0);
}

TEST(LinkTest, BackToBackTransfersSerialize) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(5), 1e9);
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.Transfer(2000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  }
  sim.Run();
  // Serializations occupy [0,2],[2,4],[4,6]; arrivals at +5 latency each.
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0], 7.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 9.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 11.0);
}

TEST(LinkTest, IdleLinkDoesNotAccumulateBacklog) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(1), 1e9);
  link.Transfer(1000, [] {});
  sim.Run();  // first transfer delivered at t=2
  double arrival = 0;
  sim.Schedule(Duration::Micros(100), [&] {  // fires at t=102
    link.Transfer(1000, [&] { arrival = sim.now().ToMicros(); });
  });
  sim.Run();
  // Starts fresh at t=102 (1us serialization + 1us latency), not queued
  // behind the long-finished first transfer.
  EXPECT_DOUBLE_EQ(arrival, 104.0);
}

TEST(LinkTest, StatsAccumulate) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(1), 1e9);
  link.Transfer(100, [] {});
  link.Transfer(200, [] {});
  sim.Run();
  EXPECT_EQ(link.bytes_sent(), 300);
  EXPECT_EQ(link.transfers(), 2);
}

// ------------------------------------------------------ CollectiveModel --

TEST(CollectiveModelTest, SingleParticipantIsLaunchOnly) {
  CollectiveModel m;
  EXPECT_EQ(m.AllReduce(MiB(64), 1), m.params().launch_overhead);
}

TEST(CollectiveModelTest, LargePayloadIsBandwidthBound) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.link_bandwidth = 100e9;
  p.launch_overhead = Duration::Zero();
  CollectiveModel m(p);
  // 1 GiB all-reduce over 4: 2*(3/4)*1GiB / 100GB/s = 16.1 ms.
  const Duration t = m.AllReduce(GiB(1), 4);
  EXPECT_NEAR(t.ToMillis(), 16.1, 0.2);
}

TEST(CollectiveModelTest, TinyPayloadIsLatencyBoundTree) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = LatencyTopology::kTree;
  CollectiveModel m(p);
  // Scalar all-reduce over 1024 with a tree: 2*ceil(log2 1024) = 20 hops.
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 1024).ToMicros(), 20.0);
}

TEST(CollectiveModelTest, Torus2DLatencyScalesWithSqrtN) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = LatencyTopology::kTorus2D;
  CollectiveModel m(p);
  // 2D torus over 64: 2*(sqrt(64)-1) = 14 base hops, x2 for all-reduce.
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 64).ToMicros(), 28.0);
  // 2048 participants: 2*(ceil(sqrt(2048))-1) = 90 base hops, x2 = 180.
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 2048).ToMicros(), 180.0);
}

TEST(CollectiveModelTest, RingLatency) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = LatencyTopology::kRing;
  CollectiveModel m(p);
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 8).ToMicros(), 14.0);  // 2*(8-1)
}

TEST(CollectiveModelTest, AllGatherCheaperThanAllReduce) {
  CollectiveModel m;
  EXPECT_LT(m.AllGather(MiB(256), 16).nanos(), m.AllReduce(MiB(256), 16).nanos());
}

// Property sweep: time is monotone in payload size and never below launch.
class CollectiveMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CollectiveMonotonicity, TimeMonotoneInBytes) {
  const auto [n, kind_idx] = GetParam();
  CollectiveModel m;
  const auto kind = static_cast<CollectiveKind>(kind_idx);
  Duration prev = Duration::Zero();
  for (Bytes b : {Bytes{4}, KiB(1), MiB(1), MiB(64), GiB(1)}) {
    const Duration t = m.Time(kind, b, n);
    EXPECT_GE(t.nanos(), prev.nanos()) << "n=" << n << " bytes=" << b;
    EXPECT_GE(t.nanos(), m.params().launch_overhead.nanos());
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveMonotonicity,
    ::testing::Combine(::testing::Values(1, 2, 8, 64, 512, 2048),
                       ::testing::Values(0, 1, 2, 3)));

// ------------------------------------------------------------------- DCN --

TEST(DcnTest, CrossHostLatency) {
  sim::Simulator sim;
  DcnParams params;
  params.latency = Duration::Micros(20);
  params.nic_bandwidth = 10e9;
  params.per_message_header = 0;
  DcnFabric dcn(&sim, params);
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  double arrival = 0;
  dcn.Send(HostId(0), HostId(1), 10000, [&] { arrival = sim.now().ToMicros(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(arrival, 21.0);  // 1us serialization + 20us latency
}

TEST(DcnTest, LoopbackIsCheap) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  double arrival = 0;
  dcn.Send(HostId(0), HostId(0), 1 << 20, [&] { arrival = sim.now().ToMicros(); });
  sim.Run();
  EXPECT_LT(arrival, 5.0);
}

TEST(DcnTest, NicEgressSerializesPerHost) {
  sim::Simulator sim;
  DcnParams params;
  params.latency = Duration::Micros(10);
  params.nic_bandwidth = 1e9;
  params.per_message_header = 0;
  DcnFabric dcn(&sim, params);
  for (int h = 0; h < 3; ++h) dcn.AddHost(HostId(h));
  std::vector<double> arrivals;
  // Two messages from host 0 contend on its NIC; one from host 1 does not.
  dcn.Send(HostId(0), HostId(2), 10000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  dcn.Send(HostId(0), HostId(2), 10000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  dcn.Send(HostId(1), HostId(2), 10000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0], 20.0);  // host0 msg1: 10us ser + 10us lat
  EXPECT_DOUBLE_EQ(arrivals[1], 20.0);  // host1 msg: parallel NIC
  EXPECT_DOUBLE_EQ(arrivals[2], 30.0);  // host0 msg2 queued behind msg1
}

TEST(DcnTest, MessageAndByteStats) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  dcn.Send(HostId(0), HostId(1), 100, [] {});
  dcn.Send(HostId(1), HostId(0), 200, [] {});
  sim.Run();
  EXPECT_EQ(dcn.messages_sent(), 2);
  EXPECT_EQ(dcn.bytes_sent(), 300);
}

TEST(DcnBatcherTest, CoalescesWithinWindow) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  DcnBatcher batcher(&sim, &dcn, HostId(0), Duration::Micros(5));
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    batcher.Send(HostId(1), 64, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(batcher.flushes(), 1);      // one physical message
  EXPECT_EQ(dcn.messages_sent(), 1);
}

TEST(DcnBatcherTest, SeparateWindowsSeparateFlushes) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  DcnBatcher batcher(&sim, &dcn, HostId(0), Duration::Micros(5));
  int delivered = 0;
  batcher.Send(HostId(1), 64, [&] { ++delivered; });
  sim.Schedule(Duration::Micros(100), [&] {
    batcher.Send(HostId(1), 64, [&] { ++delivered; });
  });
  sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(batcher.flushes(), 2);
}

TEST(DcnFabricTest, HeldTrafficCountsAtSubmissionNotAtHeal) {
  // Partition-held messages are *offered* load: they must appear in
  // messages_sent()/bytes_sent() the moment Send() accepts them, or fault
  // telemetry sampled inside the outage window under-reports throughput and
  // the heal-time replay shows up as a phantom burst. held_bytes() exposes
  // the in-limbo amount separately.
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  dcn.SetPartitioned(HostId(1), true);
  int delivered = 0;
  dcn.Send(HostId(0), HostId(1), 1000, [&] { ++delivered; });
  dcn.Send(HostId(0), HostId(1), 500, [&] { ++delivered; });
  EXPECT_EQ(dcn.messages_sent(), 2);  // counted at submission
  EXPECT_EQ(dcn.bytes_sent(), 1500);
  EXPECT_EQ(dcn.messages_held(), 2u);
  EXPECT_EQ(dcn.held_bytes(), 1500);
  sim.Run();
  EXPECT_EQ(delivered, 0);  // still partitioned
  dcn.SetPartitioned(HostId(1), false);
  sim.Run();
  EXPECT_EQ(delivered, 2);
  // The heal-time replay must not double-count.
  EXPECT_EQ(dcn.messages_sent(), 2);
  EXPECT_EQ(dcn.bytes_sent(), 1500);
  EXPECT_EQ(dcn.messages_held(), 0u);
  EXPECT_EQ(dcn.held_bytes(), 0);
}

TEST(DcnFabricTest, ReplayThroughSecondPartitionStaysCountedOnce) {
  // A message healed out of one hold queue but re-held on the other
  // endpoint's queue is still the same offered message: counters must not
  // move on either transition.
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  for (int h = 0; h < 2; ++h) dcn.AddHost(HostId(h));
  dcn.SetPartitioned(HostId(0), true);
  dcn.SetPartitioned(HostId(1), true);
  int delivered = 0;
  dcn.Send(HostId(0), HostId(1), 256, [&] { ++delivered; });
  EXPECT_EQ(dcn.messages_sent(), 1);
  EXPECT_EQ(dcn.held_bytes(), 256);
  dcn.SetPartitioned(HostId(0), false);  // moves to host 1's hold queue
  EXPECT_EQ(dcn.messages_sent(), 1);
  EXPECT_EQ(dcn.messages_held(), 1u);
  EXPECT_EQ(dcn.held_bytes(), 256);
  dcn.SetPartitioned(HostId(1), false);
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(dcn.messages_sent(), 1);
  EXPECT_EQ(dcn.bytes_sent(), 256);
}

TEST(DcnBatcherTest, DistinctDestinationsDoNotCoalesce) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  for (int h = 0; h < 3; ++h) dcn.AddHost(HostId(h));
  DcnBatcher batcher(&sim, &dcn, HostId(0), Duration::Micros(5));
  int delivered = 0;
  batcher.Send(HostId(1), 64, [&] { ++delivered; });
  batcher.Send(HostId(2), 64, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(batcher.flushes(), 2);
}

}  // namespace
}  // namespace pw::net
