#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/collective_model.h"
#include "net/dcn.h"
#include "net/link.h"
#include "net/lp_channel.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace pw::net {
namespace {

// ------------------------------------------------------------------ Link --

TEST(LinkTest, LatencyPlusSerialization) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(10), /*bw=*/1e9);  // 1 GB/s
  double delivered_us = 0;
  link.Transfer(/*bytes=*/1000, [&] { delivered_us = sim.now().ToMicros(); });
  sim.Run();
  // 1000 B at 1 GB/s = 1 us serialization + 10 us latency.
  EXPECT_DOUBLE_EQ(delivered_us, 11.0);
}

TEST(LinkTest, BackToBackTransfersSerialize) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(5), 1e9);
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    link.Transfer(2000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  }
  sim.Run();
  // Serializations occupy [0,2],[2,4],[4,6]; arrivals at +5 latency each.
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0], 7.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 9.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 11.0);
}

TEST(LinkTest, IdleLinkDoesNotAccumulateBacklog) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(1), 1e9);
  link.Transfer(1000, [] {});
  sim.Run();  // first transfer delivered at t=2
  double arrival = 0;
  sim.Schedule(Duration::Micros(100), [&] {  // fires at t=102
    link.Transfer(1000, [&] { arrival = sim.now().ToMicros(); });
  });
  sim.Run();
  // Starts fresh at t=102 (1us serialization + 1us latency), not queued
  // behind the long-finished first transfer.
  EXPECT_DOUBLE_EQ(arrival, 104.0);
}

TEST(LinkTest, StatsAccumulate) {
  sim::Simulator sim;
  Link link(&sim, "l", Duration::Micros(1), 1e9);
  link.Transfer(100, [] {});
  link.Transfer(200, [] {});
  sim.Run();
  EXPECT_EQ(link.bytes_sent(), 300);
  EXPECT_EQ(link.transfers(), 2);
}

// ------------------------------------------------------ CollectiveModel --

TEST(CollectiveModelTest, SingleParticipantIsLaunchOnly) {
  CollectiveModel m;
  EXPECT_EQ(m.AllReduce(MiB(64), 1), m.params().launch_overhead);
}

TEST(CollectiveModelTest, LargePayloadIsBandwidthBound) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.link_bandwidth = 100e9;
  p.launch_overhead = Duration::Zero();
  CollectiveModel m(p);
  // 1 GiB all-reduce over 4: 2*(3/4)*1GiB / 100GB/s = 16.1 ms.
  const Duration t = m.AllReduce(GiB(1), 4);
  EXPECT_NEAR(t.ToMillis(), 16.1, 0.2);
}

TEST(CollectiveModelTest, TinyPayloadIsLatencyBoundTree) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = LatencyTopology::kTree;
  CollectiveModel m(p);
  // Scalar all-reduce over 1024 with a tree: 2*ceil(log2 1024) = 20 hops.
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 1024).ToMicros(), 20.0);
}

TEST(CollectiveModelTest, Torus2DLatencyScalesWithSqrtN) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = LatencyTopology::kTorus2D;
  CollectiveModel m(p);
  // 2D torus over 64: 2*(sqrt(64)-1) = 14 base hops, x2 for all-reduce.
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 64).ToMicros(), 28.0);
  // 2048 participants: 2*(ceil(sqrt(2048))-1) = 90 base hops, x2 = 180.
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 2048).ToMicros(), 180.0);
}

TEST(CollectiveModelTest, RingLatency) {
  CollectiveParams p;
  p.hop_latency = Duration::Micros(1);
  p.launch_overhead = Duration::Zero();
  p.topology = LatencyTopology::kRing;
  CollectiveModel m(p);
  EXPECT_DOUBLE_EQ(m.AllReduce(4, 8).ToMicros(), 14.0);  // 2*(8-1)
}

TEST(CollectiveModelTest, AllGatherCheaperThanAllReduce) {
  CollectiveModel m;
  EXPECT_LT(m.AllGather(MiB(256), 16).nanos(), m.AllReduce(MiB(256), 16).nanos());
}

// Property sweep: time is monotone in payload size and never below launch.
class CollectiveMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CollectiveMonotonicity, TimeMonotoneInBytes) {
  const auto [n, kind_idx] = GetParam();
  CollectiveModel m;
  const auto kind = static_cast<CollectiveKind>(kind_idx);
  Duration prev = Duration::Zero();
  for (Bytes b : {Bytes{4}, KiB(1), MiB(1), MiB(64), GiB(1)}) {
    const Duration t = m.Time(kind, b, n);
    EXPECT_GE(t.nanos(), prev.nanos()) << "n=" << n << " bytes=" << b;
    EXPECT_GE(t.nanos(), m.params().launch_overhead.nanos());
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveMonotonicity,
    ::testing::Combine(::testing::Values(1, 2, 8, 64, 512, 2048),
                       ::testing::Values(0, 1, 2, 3)));

// ------------------------------------------------------------------- DCN --

TEST(DcnTest, CrossHostLatency) {
  sim::Simulator sim;
  DcnParams params;
  params.latency = Duration::Micros(20);
  params.nic_bandwidth = 10e9;
  params.per_message_header = 0;
  DcnFabric dcn(&sim, params);
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  double arrival = 0;
  dcn.Send(HostId(0), HostId(1), 10000, [&] { arrival = sim.now().ToMicros(); });
  sim.Run();
  EXPECT_DOUBLE_EQ(arrival, 21.0);  // 1us serialization + 20us latency
}

TEST(DcnTest, LoopbackIsCheap) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  double arrival = 0;
  dcn.Send(HostId(0), HostId(0), 1 << 20, [&] { arrival = sim.now().ToMicros(); });
  sim.Run();
  EXPECT_LT(arrival, 5.0);
}

TEST(DcnTest, NicEgressSerializesPerHost) {
  sim::Simulator sim;
  DcnParams params;
  params.latency = Duration::Micros(10);
  params.nic_bandwidth = 1e9;
  params.per_message_header = 0;
  DcnFabric dcn(&sim, params);
  for (int h = 0; h < 3; ++h) dcn.AddHost(HostId(h));
  std::vector<double> arrivals;
  // Two messages from host 0 contend on its NIC; one from host 1 does not.
  dcn.Send(HostId(0), HostId(2), 10000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  dcn.Send(HostId(0), HostId(2), 10000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  dcn.Send(HostId(1), HostId(2), 10000, [&] { arrivals.push_back(sim.now().ToMicros()); });
  sim.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_DOUBLE_EQ(arrivals[0], 20.0);  // host0 msg1: 10us ser + 10us lat
  EXPECT_DOUBLE_EQ(arrivals[1], 20.0);  // host1 msg: parallel NIC
  EXPECT_DOUBLE_EQ(arrivals[2], 30.0);  // host0 msg2 queued behind msg1
}

TEST(DcnTest, MessageAndByteStats) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  dcn.Send(HostId(0), HostId(1), 100, [] {});
  dcn.Send(HostId(1), HostId(0), 200, [] {});
  sim.Run();
  EXPECT_EQ(dcn.messages_sent(), 2);
  EXPECT_EQ(dcn.bytes_sent(), 300);
}

TEST(DcnBatcherTest, CoalescesWithinWindow) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  DcnBatcher batcher(&sim, &dcn, HostId(0), Duration::Micros(5));
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    batcher.Send(HostId(1), 64, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(batcher.flushes(), 1);      // one physical message
  EXPECT_EQ(dcn.messages_sent(), 1);
}

TEST(DcnBatcherTest, SeparateWindowsSeparateFlushes) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  DcnBatcher batcher(&sim, &dcn, HostId(0), Duration::Micros(5));
  int delivered = 0;
  batcher.Send(HostId(1), 64, [&] { ++delivered; });
  sim.Schedule(Duration::Micros(100), [&] {
    batcher.Send(HostId(1), 64, [&] { ++delivered; });
  });
  sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(batcher.flushes(), 2);
}

TEST(DcnFabricTest, HeldTrafficCountsAtSubmissionNotAtHeal) {
  // Partition-held messages are *offered* load: they must appear in
  // messages_sent()/bytes_sent() the moment Send() accepts them, or fault
  // telemetry sampled inside the outage window under-reports throughput and
  // the heal-time replay shows up as a phantom burst. held_bytes() exposes
  // the in-limbo amount separately.
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  dcn.SetPartitioned(HostId(1), true);
  int delivered = 0;
  dcn.Send(HostId(0), HostId(1), 1000, [&] { ++delivered; });
  dcn.Send(HostId(0), HostId(1), 500, [&] { ++delivered; });
  EXPECT_EQ(dcn.messages_sent(), 2);  // counted at submission
  EXPECT_EQ(dcn.bytes_sent(), 1500);
  EXPECT_EQ(dcn.messages_held(), 2u);
  EXPECT_EQ(dcn.held_bytes(), 1500);
  sim.Run();
  EXPECT_EQ(delivered, 0);  // still partitioned
  dcn.SetPartitioned(HostId(1), false);
  sim.Run();
  EXPECT_EQ(delivered, 2);
  // The heal-time replay must not double-count.
  EXPECT_EQ(dcn.messages_sent(), 2);
  EXPECT_EQ(dcn.bytes_sent(), 1500);
  EXPECT_EQ(dcn.messages_held(), 0u);
  EXPECT_EQ(dcn.held_bytes(), 0);
}

TEST(DcnFabricTest, ReplayThroughSecondPartitionStaysCountedOnce) {
  // A message healed out of one hold queue but re-held on the other
  // endpoint's queue is still the same offered message: counters must not
  // move on either transition.
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  for (int h = 0; h < 2; ++h) dcn.AddHost(HostId(h));
  dcn.SetPartitioned(HostId(0), true);
  dcn.SetPartitioned(HostId(1), true);
  int delivered = 0;
  dcn.Send(HostId(0), HostId(1), 256, [&] { ++delivered; });
  EXPECT_EQ(dcn.messages_sent(), 1);
  EXPECT_EQ(dcn.held_bytes(), 256);
  dcn.SetPartitioned(HostId(0), false);  // moves to host 1's hold queue
  EXPECT_EQ(dcn.messages_sent(), 1);
  EXPECT_EQ(dcn.messages_held(), 1u);
  EXPECT_EQ(dcn.held_bytes(), 256);
  dcn.SetPartitioned(HostId(1), false);
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(dcn.messages_sent(), 1);
  EXPECT_EQ(dcn.bytes_sent(), 256);
}

TEST(DcnFabricTest, DualPartitionReplayPreservesSendOrder) {
  // Regression for the dual-partition FIFO bug: message A (src1 -> dst, both
  // endpoints down) waits on src1's queue; message B (src2 -> dst, only dst
  // down) waits on dst's queue. Healing src1 re-routes A, which is re-held
  // on dst's queue — and must sort *ahead* of the later-submitted B, not be
  // appended behind it. Pre-fix, A was pushed to the back and delivered
  // after B, violating the documented "replayed in original send order"
  // contract.
  sim::Simulator sim;
  DcnParams params;
  params.per_message_header = 0;
  DcnFabric dcn(&sim, params);
  for (int h = 0; h < 3; ++h) dcn.AddHost(HostId(h));
  const HostId src1(0), src2(1), dst(2);

  dcn.SetPartitioned(src1, true);
  dcn.SetPartitioned(dst, true);
  std::vector<char> deliveries;
  // t0: A, blocked on both endpoints (held on src1's queue).
  dcn.Send(src1, dst, 1000, [&] { deliveries.push_back('A'); });
  // t1: B, blocked on dst only. Equal size, so NIC timing can't mask an
  // ordering violation.
  sim.RunFor(Duration::Micros(10));
  dcn.Send(src2, dst, 1000, [&] { deliveries.push_back('B'); });

  // Heal src1 first: A moves to dst's hold queue, where B already waits.
  dcn.SetPartitioned(src1, false);
  EXPECT_EQ(dcn.messages_held(), 2u);
  dcn.SetPartitioned(dst, false);
  sim.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 'A') << "older message must replay first";
  EXPECT_EQ(deliveries[1], 'B');
}

TEST(DcnFabricTest, HeldSendReturnsSentinel) {
  // Send()'s TimePoint is meaningless for a partition-held message — there
  // is no delivery estimate until the heal — so the held path returns
  // kHeldSentinel, which no caller can accidentally schedule on (ScheduleAt
  // would die on the far-future check). The audit of in-tree callers found
  // all of them callback-driven; this pins the contract for future ones.
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  dcn.AddHost(HostId(0));
  dcn.AddHost(HostId(1));
  const TimePoint unheld = dcn.Send(HostId(0), HostId(1), 100, [] {});
  EXPECT_LT(unheld, DcnFabric::kHeldSentinel);
  dcn.SetPartitioned(HostId(1), true);
  const TimePoint held = dcn.Send(HostId(0), HostId(1), 100, [] {});
  EXPECT_EQ(held, DcnFabric::kHeldSentinel);
  EXPECT_EQ(held, TimePoint::Max());
  dcn.SetPartitioned(HostId(1), false);
  sim.Run();
}

// ------------------------------------------------- Partition/degrade fuzz --

// Property: under any schedule of partitions and NIC degrades, every
// (src, dst) pair's messages deliver exactly once, in submission order.
// Runs against both the abstract per-NIC fabric and the flow-level Clos;
// messages share one size so fair-share completion ties cannot mask an
// ordering violation (a flow fabric may legitimately reorder different-size
// messages of one pair — smaller flows drain first — but never equal ones).
void RunPartitionDegradeFuzz(std::uint64_t seed, bool clos_mode) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed << " clos=" << clos_mode);
  sim::Simulator sim;
  DcnParams params;
  params.nic_bandwidth = 1e9;
  if (clos_mode) {
    params.clos.enabled = true;
    params.clos.hosts_per_leaf = 2;  // 4 hosts => 2 leaves, cross-leaf paths
    params.clos.num_spines = 2;
    params.clos.oversubscription = 2.0;
  }
  DcnFabric dcn(&sim, params);
  constexpr int kHosts = 4;
  for (int h = 0; h < kHosts; ++h) dcn.AddHost(HostId(h));

  Rng rng(seed);
  std::map<std::pair<int, int>, int> submitted;  // per-pair next sequence
  std::map<std::pair<int, int>, std::vector<int>> delivered;
  int total_sent = 0;
  constexpr std::int64_t kHorizonNs = 5'000'000;
  for (int op = 0; op < 120; ++op) {
    const auto at = TimePoint::FromNanos(
        static_cast<std::int64_t>(rng.NextBounded(kHorizonNs)));
    const int kind = static_cast<int>(rng.NextBounded(4));
    const int a = static_cast<int>(rng.NextBounded(kHosts));
    const int b = static_cast<int>(rng.NextBounded(kHosts));
    if (kind <= 1) {
      sim.ScheduleAt(at, [&, a, b] {
        const int seq = submitted[{a, b}]++;
        ++total_sent;
        dcn.Send(HostId(a), HostId(b), 1000,
                 [&, a, b, seq] { delivered[{a, b}].push_back(seq); });
      });
    } else if (kind == 2) {
      const bool on = rng.NextBounded(2) == 0;
      sim.ScheduleAt(at, [&, a, on] { dcn.SetPartitioned(HostId(a), on); });
    } else {
      const double scale = 0.25 + 0.25 * static_cast<double>(rng.NextBounded(4));
      sim.ScheduleAt(at, [&, a, scale] {
        dcn.SetNicBandwidthScale(HostId(a), scale);
      });
    }
  }
  // Heal everything after the horizon so every held message gets delivered.
  sim.ScheduleAt(TimePoint::FromNanos(kHorizonNs + 1), [&] {
    for (int h = 0; h < kHosts; ++h) {
      dcn.SetPartitioned(HostId(h), false);
      dcn.SetNicBandwidthScale(HostId(h), 1.0);
    }
  });
  sim.Run();

  EXPECT_EQ(dcn.messages_held(), 0u);
  int total_delivered = 0;
  for (const auto& [pair, seqs] : delivered) {
    total_delivered += static_cast<int>(seqs.size());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], static_cast<int>(i))
          << "pair (" << pair.first << "," << pair.second
          << ") delivered out of submission order";
    }
    auto it = submitted.find(pair);
    ASSERT_NE(it, submitted.end());
    EXPECT_EQ(static_cast<int>(seqs.size()), it->second)
        << "lost or duplicated messages for pair (" << pair.first << ","
        << pair.second << ")";
  }
  EXPECT_EQ(total_delivered, total_sent);
}

TEST(DcnFabricFuzzTest, OrderedExactlyOnceUnderPartitionsAbstract) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunPartitionDegradeFuzz(seed, /*clos_mode=*/false);
  }
}

TEST(DcnFabricFuzzTest, OrderedExactlyOnceUnderPartitionsClos) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RunPartitionDegradeFuzz(seed, /*clos_mode=*/true);
  }
}

// ------------------------------------- inter-LP channel fuzz (partitioned) --

// The same ordered/exactly-once property as RunPartitionDegradeFuzz, but on
// the partitioned engine's inter-LP channels, and with a second obligation:
// the full per-destination delivery trace must be byte-identical no matter
// how many sim threads execute the LPs. All mutable fuzz state is split by
// LP ownership — submitted[a][b] is written only by LP a's events,
// delivered/trace[b] only by LP b's — so the harness itself follows the
// discipline it is testing.
struct LpChannelFuzzResult {
  // delivered[a][b]: per-pair submission seqs in arrival order.
  std::array<std::array<std::vector<int>, 4>, 4> delivered;
  // trace[b]: (arrival ns, src, seq) in arrival order at LP b.
  std::array<std::vector<std::tuple<std::int64_t, int, int>>, 4> trace;
  std::array<std::array<int, 4>, 4> submitted{};
  std::int64_t messages_delivered = 0;
};

LpChannelFuzzResult RunLpChannelFuzz(std::uint64_t seed, int threads) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                    << " threads=" << threads);
  constexpr int kLps = 4;
  sim::PartitionedSimulator part(
      {.num_lps = kLps, .threads = threads, .lookahead = Duration::Micros(20)});
  LpChannelParams p;
  p.bandwidth = 1e9;  // slow enough that egress queues actually form
  LpChannelMap chan(&part, p);

  LpChannelFuzzResult r;
  Rng rng(seed);
  constexpr std::int64_t kHorizonNs = 5'000'000;
  for (int op = 0; op < 120; ++op) {
    const auto at = TimePoint::FromNanos(
        static_cast<std::int64_t>(rng.NextBounded(kHorizonNs)));
    const int kind = static_cast<int>(rng.NextBounded(4));
    const int a = static_cast<int>(rng.NextBounded(kLps));
    const int b = static_cast<int>(rng.NextBounded(kLps));
    if (kind <= 1) {
      if (a == b) continue;  // channels carry cross-LP traffic only
      part.lp(a).ScheduleAt(at, [&r, &chan, &part, a, b] {
        const int seq = r.submitted[a][b]++;
        chan.Send(a, b, 1000, [&r, &part, a, b, seq] {
          r.delivered[a][b].push_back(seq);
          r.trace[b].emplace_back(part.lp(b).now().nanos(), a, seq);
        });
      });
    } else if (kind == 2) {
      const auto heal = TimePoint::FromNanos(
          at.nanos() + 1 +
          static_cast<std::int64_t>(rng.NextBounded(kHorizonNs / 2)));
      chan.SchedulePartition(a, at, heal);
    } else {
      const double scale = 0.25 + 0.25 * static_cast<double>(rng.NextBounded(4));
      const auto restore = TimePoint::FromNanos(
          at.nanos() + 1 +
          static_cast<std::int64_t>(rng.NextBounded(kHorizonNs / 2)));
      chan.ScheduleDegrade(a, scale, at, restore);
    }
  }
  part.Run();
  EXPECT_FALSE(part.Deadlocked());

  // Exactly once, in order, nothing parked: every partition has a heal.
  EXPECT_EQ(chan.messages_held(), 0u);
  std::int64_t total_sent = 0;
  std::int64_t total_delivered = 0;
  for (int a = 0; a < kLps; ++a) {
    for (int b = 0; b < kLps; ++b) {
      total_sent += r.submitted[a][b];
      const std::vector<int>& seqs = r.delivered[a][b];
      total_delivered += static_cast<int>(seqs.size());
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_EQ(seqs[i], static_cast<int>(i))
            << "pair (" << a << "," << b << ") out of submission order";
      }
      EXPECT_EQ(static_cast<int>(seqs.size()), r.submitted[a][b])
          << "lost or duplicated messages for pair (" << a << "," << b << ")";
    }
  }
  EXPECT_EQ(total_delivered, total_sent);
  r.messages_delivered = chan.messages_delivered();
  EXPECT_EQ(r.messages_delivered, total_delivered);
  return r;
}

TEST(LpChannelFuzzTest, OrderedExactlyOnceAndThreadCountInvariant) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    LpChannelFuzzResult serial = RunLpChannelFuzz(seed, /*threads=*/1);
    for (int threads : {2, 4}) {
      LpChannelFuzzResult parallel = RunLpChannelFuzz(seed, threads);
      EXPECT_EQ(parallel.delivered, serial.delivered)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(parallel.trace, serial.trace)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_EQ(parallel.messages_delivered, serial.messages_delivered);
    }
  }
}

TEST(DcnBatcherTest, DistinctDestinationsDoNotCoalesce) {
  sim::Simulator sim;
  DcnFabric dcn(&sim, DcnParams{});
  for (int h = 0; h < 3; ++h) dcn.AddHost(HostId(h));
  DcnBatcher batcher(&sim, &dcn, HostId(0), Duration::Micros(5));
  int delivered = 0;
  batcher.Send(HostId(1), 64, [&] { ++delivered; });
  batcher.Send(HostId(2), 64, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(batcher.flushes(), 2);
}

}  // namespace
}  // namespace pw::net
