// Deadlock-probe coverage: the failure mode the paper's gang scheduler
// exists to prevent (§2, §4.4).
//
// Two clients run interleaved collective programs on the same devices.
// Routed through the centralized gang scheduler, every device observes the
// same relative order of gangs and both programs complete. With a forced
// non-gang ordering — the two devices enqueue the programs' collectives in
// opposite orders, which uncoordinated clients can produce — both devices
// park at rendezvous that can never complete: the simulator goes quiescent
// with blocked entities and Deadlocked() reports it, with human-readable
// BlockedEntities() descriptions.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "hw/collective_group.h"
#include "hw/device.h"
#include "net/collective_model.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"
#include "xlasim/compiled_function.h"

namespace pw {
namespace {

using pathways::Client;
using pathways::ExecutionResult;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;

// ---- forced non-gang ordering: devices disagree on collective order ----

TEST(DeadlockProbeTest, OppositeCollectiveOrdersDeadlockAndAreReported) {
  sim::Simulator sim;
  net::CollectiveModel model;
  hw::Device d0(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(16), Duration::Zero());
  hw::Device d1(&sim, hw::DeviceId(1), hw::IslandId(0), GiB(16), Duration::Zero());
  auto groupA = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "clientA/allreduce");
  auto groupB = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "clientB/allreduce");
  auto mk = [](std::shared_ptr<hw::CollectiveGroup> g, std::int64_t client) {
    hw::KernelDesc k;
    k.label = "interleaved";
    k.client = client;
    k.pre_time = Duration::Micros(1);
    k.collective = std::move(g);
    k.collective_bytes = KiB(4);
    return k;
  };
  // dev0 runs A then B; dev1 runs B then A. TPU streams are in-order and
  // non-preemptible, so each device parks at its first collective.
  d0.Enqueue(mk(groupA, 0));
  d0.Enqueue(mk(groupB, 1));
  d1.Enqueue(mk(groupB, 1));
  d1.Enqueue(mk(groupA, 0));
  sim.Run();

  EXPECT_TRUE(sim.Deadlocked());
  EXPECT_FALSE(groupA->complete());
  EXPECT_FALSE(groupB->complete());
  EXPECT_TRUE(groupA->stalled());
  EXPECT_TRUE(groupB->stalled());

  const std::vector<std::string> blocked = sim.BlockedEntities();
  ASSERT_EQ(blocked.size(), 2u);
  // Each description names the device, the collective it is parked at, and
  // the arrival count — the operator-facing evidence trail.
  EXPECT_NE(blocked[0].find("dev0"), std::string::npos);
  EXPECT_NE(blocked[0].find("clientA/allreduce"), std::string::npos);
  EXPECT_NE(blocked[0].find("1/2 arrived"), std::string::npos);
  EXPECT_NE(blocked[1].find("dev1"), std::string::npos);
  EXPECT_NE(blocked[1].find("clientB/allreduce"), std::string::npos);
  EXPECT_NE(blocked[1].find("1/2 arrived"), std::string::npos);
}

TEST(DeadlockProbeTest, ConsistentOrderOnSameDevicesCompletes) {
  // Control for the test above: the *same* four kernels, but both devices
  // agree on the order — no deadlock, everything completes.
  sim::Simulator sim;
  net::CollectiveModel model;
  hw::Device d0(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(16), Duration::Zero());
  hw::Device d1(&sim, hw::DeviceId(1), hw::IslandId(0), GiB(16), Duration::Zero());
  auto groupA = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "clientA/allreduce");
  auto groupB = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "clientB/allreduce");
  auto mk = [](std::shared_ptr<hw::CollectiveGroup> g) {
    hw::KernelDesc k;
    k.pre_time = Duration::Micros(1);
    k.collective = std::move(g);
    k.collective_bytes = KiB(4);
    return k;
  };
  d0.Enqueue(mk(groupA));
  d0.Enqueue(mk(groupB));
  d1.Enqueue(mk(groupA));
  d1.Enqueue(mk(groupB));
  sim.Run();

  EXPECT_FALSE(sim.Deadlocked());
  EXPECT_TRUE(sim.BlockedEntities().empty());
  EXPECT_TRUE(groupA->complete());
  EXPECT_TRUE(groupB->complete());
  EXPECT_EQ(d0.kernels_completed(), 2);
  EXPECT_EQ(d1.kernels_completed(), 2);
}

// ---- gang scheduling: the same interleaving hazard, prevented ----

TEST(DeadlockProbeTest, GangSchedulerPreventsDeadlockForInterleavedClients) {
  // Two clients hammer the same 2-device slice with collective programs,
  // many in flight each, submissions interleaved. The island's gang
  // scheduler serializes gang emission, so every device sees the same gang
  // order and all 2x50 programs complete.
  sim::Simulator sim;
  hw::SystemParams params;
  params.host_jitter_frac = 0;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, 1, 1, 2);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  Client* c1 = runtime.CreateClient();
  Client* c2 = runtime.CreateClient();
  auto fn = xlasim::CompiledFunction::Synthetic(
      "ar", 2, Duration::Micros(10), net::CollectiveKind::kAllReduce, KiB(1));
  ProgramBuilder pb1("p1"), pb2("p2");
  pb1.Call(fn, c1->AllocateSlice(2).value(), {});
  pb2.Call(fn, c2->AllocateSlice(2).value(), {});
  PathwaysProgram prog1 = std::move(pb1).Build();
  PathwaysProgram prog2 = std::move(pb2).Build();

  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    c1->Run(&prog1).Then([&completed](const ExecutionResult&) { ++completed; });
    c2->Run(&prog2).Then([&completed](const ExecutionResult&) { ++completed; });
  }
  sim.Run();

  EXPECT_EQ(completed, 100);
  EXPECT_FALSE(sim.Deadlocked());
  EXPECT_TRUE(sim.BlockedEntities().empty());
  // Both devices executed every gang (one kernel per program per device).
  EXPECT_EQ(cluster->device(0).kernels_completed(), 100);
  EXPECT_EQ(cluster->device(1).kernels_completed(), 100);
}

TEST(DeadlockProbeTest, DeadlockClearsWhenQueueRefills) {
  // Deadlocked() is a statement about quiescence: a parked device with
  // events still pending is not (yet) a deadlock.
  sim::Simulator sim;
  net::CollectiveModel model;
  hw::Device d0(&sim, hw::DeviceId(0), hw::IslandId(0), GiB(16), Duration::Zero());
  auto group = std::make_shared<hw::CollectiveGroup>(
      &sim, &model, net::CollectiveKind::kAllReduce, 2, "pending/allreduce");
  hw::KernelDesc k;
  k.pre_time = Duration::Micros(1);
  k.collective = group;
  k.collective_bytes = KiB(1);
  d0.Enqueue(std::move(k));
  sim.Run();
  ASSERT_TRUE(sim.Deadlocked());  // one participant parked, queue empty

  // The missing participant arrives (e.g. a late client): queue refills,
  // the rendezvous completes, and the deadlock verdict flips back.
  group->Arrive(KiB(1));
  EXPECT_FALSE(sim.Deadlocked());  // events pending again
  sim.Run();
  EXPECT_FALSE(sim.Deadlocked());
  EXPECT_TRUE(sim.BlockedEntities().empty());
  EXPECT_EQ(d0.kernels_completed(), 1);
}

}  // namespace
}  // namespace pw
