// Determinism golden test (the regression gate for event-engine changes).
//
// Runs a fixed two-island training scenario — two clients, a chunked
// multi-island data-parallel step program interleaved with a small
// collective probe program — and asserts three things:
//
//   1. Two in-process runs produce bit-identical sim::Trace output
//      (span-for-span equality, not just a digest).
//   2. The FNV-1a checksum over the full trace, the executed-event count,
//      and the final clock match the recorded golden values below. The
//      goldens were captured from the original binary-heap-of-std::function
//      engine *before* the pooled-event engine swap, so any event
//      reordering introduced by engine work changes the checksum and fails
//      here.
//   3. The per-run event count and final clock are individually stable
//      (they are part of the checksum but asserted separately so a failure
//      pinpoints what moved).
//
// The build compiles with -ffp-contract=off precisely so these goldens are
// reproducible across compiler versions; see the top-level CMakeLists.
// One residual portability dependency remains: the scenario's jitter path
// calls std::log/std::cos/std::sqrt, so a libm (glibc) release that
// changes those functions' rounding by an ulp can legitimately move the
// goldens while run-twice equality (the first test) still holds. If the
// golden test alone fails on a new platform with the first test green,
// re-record the three constants from the failure message's printed values.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"
#include "sim/partition.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "xlasim/compiled_function.h"

namespace pw {
namespace {

using pathways::Client;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvBytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void FnvI64(std::uint64_t* h, std::int64_t v) { FnvBytes(h, &v, sizeof(v)); }

void FnvStr(std::uint64_t* h, const std::string& s) {
  FnvI64(h, static_cast<std::int64_t>(s.size()));
  FnvBytes(h, s.data(), s.size());
}

struct ScenarioOutcome {
  std::vector<sim::TraceSpan> spans;
  std::int64_t events_executed = 0;
  std::int64_t final_now_ns = 0;

  std::uint64_t Checksum() const {
    std::uint64_t h = kFnvOffset;
    FnvI64(&h, static_cast<std::int64_t>(spans.size()));
    for (const sim::TraceSpan& s : spans) {
      FnvStr(&h, s.resource);
      FnvI64(&h, s.client);
      FnvStr(&h, s.label);
      FnvI64(&h, s.start.nanos());
      FnvI64(&h, s.end.nanos());
    }
    FnvI64(&h, events_executed);
    FnvI64(&h, final_now_ns);
    return h;
  }
};

// The fixed scenario: 2 islands x 2 hosts x 4 devices, default (jittered)
// TPU parameters so the deterministic Rng path is exercised too. Client A
// trains a chunked two-island data-parallel step; client B interleaves a
// small AllReduce probe each step.
//
// `plan`, when present, is armed through a faults::FaultInjector before the
// run (an *empty* plan must leave the outcome bit-identical to no injector
// at all — that contract is regression-gated below). With a plan the
// trainer submits through RunWithRetry so aborted steps are resubmitted.
// When `engine.num_lps` > 0 the scenario runs on the partitioned engine
// (sim/partition.h) with the full Pathways stack hosted on LP 0, the
// control LP, and `engine.sim_threads` worker threads. The acceptance bar
// for the parallel-engine work: every golden below must be byte-identical
// between the serial engine and the partitioned engine at every tested
// sim-thread count.
struct EngineSpec {
  int num_lps = 0;  // 0 => plain serial Simulator
  int sim_threads = 1;
};

ScenarioOutcome RunScenario(
    const std::optional<faults::FaultPlan>& plan = std::nullopt,
    const EngineSpec& engine = {}) {
  std::unique_ptr<sim::PartitionedSimulator> part;
  std::unique_ptr<sim::Simulator> serial;
  if (engine.num_lps > 0) {
    // Lookahead mirrors DcnFabric's minimum cross-island latency (asserted
    // below once the cluster exists); irrelevant to the result here since
    // the control LP hosts every event, but it is what a real multi-LP run
    // would derive.
    part = std::make_unique<sim::PartitionedSimulator>(
        sim::PartitionedSimulator::Options{engine.num_lps, engine.sim_threads,
                                           Duration::Micros(20)});
  } else {
    serial = std::make_unique<sim::Simulator>();
  }
  sim::Simulator& sim = part ? part->lp(0) : *serial;
  auto cluster = std::make_unique<hw::Cluster>(
      &sim, hw::SystemParams::TpuDefault(), /*islands=*/2,
      /*hosts_per_island=*/2, /*devices_per_host=*/4);
  if (part) {
    EXPECT_EQ(part->lookahead().nanos(),
              cluster->dcn().MinCrossIslandLatency().nanos());
  }
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  std::unique_ptr<faults::FaultInjector> injector;
  if (plan.has_value()) {
    injector = std::make_unique<faults::FaultInjector>(cluster.get(), &runtime,
                                                       *plan);
    injector->Arm();
  }
  Client* trainer = runtime.CreateClient();
  Client* prober = runtime.CreateClient(/*weight=*/2.0);

  models::TransformerConfig config = models::TransformerConfig::Decoder3B();
  config.tokens_per_batch /= 8;
  models::StepBuilder builder(config, cluster->params());

  std::vector<pathways::VirtualSlice> slices;
  slices.push_back(trainer->AllocateSlice(6, hw::IslandId(0)).value());
  slices.push_back(trainer->AllocateSlice(6, hw::IslandId(1)).value());
  PathwaysProgram step = builder.BuildMultiIslandStep(
      slices, /*chunks=*/2, cluster->island(0).collectives());

  auto probe_slice = prober->AllocateSlice(2, hw::IslandId(1)).value();
  auto probe_fn = xlasim::CompiledFunction::Synthetic(
      "probe", 2, Duration::Micros(50), net::CollectiveKind::kAllReduce,
      KiB(64));

  const bool faulted = plan.has_value() && !plan->empty();
  for (int i = 0; i < 3; ++i) {
    auto done = faulted ? trainer->RunWithRetry(&step) : trainer->Run(&step);
    prober->RunFunction(probe_fn, probe_slice);
    const auto pred = [&done] { return done.ready(); };
    if (part) {
      part->RunUntilPredicate(pred);
    } else {
      sim.RunUntilPredicate(pred);
    }
  }
  if (part) {
    part->Run();
  } else {
    sim.Run();
  }

  ScenarioOutcome out;
  out.spans = cluster->trace().spans();
  out.events_executed = sim.events_executed();
  out.final_now_ns = sim.now().nanos();
  return out;
}

bool SpansIdentical(const std::vector<sim::TraceSpan>& a,
                    const std::vector<sim::TraceSpan>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].resource != b[i].resource || a[i].client != b[i].client ||
        a[i].label != b[i].label || a[i].start != b[i].start ||
        a[i].end != b[i].end) {
      return false;
    }
  }
  return true;
}

// Golden values captured from the pre-overhaul engine (binary heap of
// std::function events, commit 2e93231). The pooled-event engine must
// reproduce them exactly: same events, same order, same clock.
constexpr std::uint64_t kGoldenChecksum = 0xdb121a57a05bb32cULL;
constexpr std::int64_t kGoldenEventsExecuted = 2622;
constexpr std::int64_t kGoldenFinalNowNs = 13758651738;

TEST(SimDeterminismGolden, TwoRunsProduceBitIdenticalTraces) {
  const ScenarioOutcome first = RunScenario();
  const ScenarioOutcome second = RunScenario();
  EXPECT_TRUE(SpansIdentical(first.spans, second.spans))
      << "same scenario, same process, different traces";
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.final_now_ns, second.final_now_ns);
  EXPECT_EQ(first.Checksum(), second.Checksum());
}

TEST(SimDeterminismGolden, MatchesRecordedEventTraceChecksum) {
  const ScenarioOutcome out = RunScenario();
  ASSERT_FALSE(out.spans.empty());
  EXPECT_EQ(out.events_executed, kGoldenEventsExecuted)
      << "event count moved: the engine ran a different number of events";
  EXPECT_EQ(out.final_now_ns, kGoldenFinalNowNs)
      << "final simulated clock moved";
  EXPECT_EQ(out.Checksum(), kGoldenChecksum)
      << "event-trace checksum mismatch: the engine changed event ordering. "
      << "actual checksum=0x" << std::hex << out.Checksum()
      << " events=" << std::dec << out.events_executed
      << " now_ns=" << out.final_now_ns;
}

// The fault subsystem's determinism-neutrality contract: arming an
// injector with an EMPTY FaultPlan must reproduce the pre-fault-subsystem
// goldens bit-for-bit — registering observers, the execution registry, and
// every `if (faulted)` branch on the hot paths cost zero events and zero
// reordering.
TEST(SimDeterminismGolden, FaultFreePlanPreservesGolden) {
  const ScenarioOutcome out = RunScenario(faults::FaultPlan{});
  EXPECT_EQ(out.events_executed, kGoldenEventsExecuted)
      << "an empty fault plan changed the event count";
  EXPECT_EQ(out.final_now_ns, kGoldenFinalNowNs);
  EXPECT_EQ(out.Checksum(), kGoldenChecksum)
      << "an empty fault plan perturbed the event trace. actual checksum=0x"
      << std::hex << out.Checksum();
}

// ----------------------------------------------------------------------- //
// Fault-scenario golden: the same two-island training scenario under a
// fixed fault plan — one gang member crashes mid-run and recovers, another
// device straggles at 2.5x, one host NIC is halved, one host is briefly
// partitioned. Gates the whole failover path (abort, rendezvous release,
// remap, retry-with-backoff, replay-after-heal) the same way the core
// engine is gated: any change to failover event ordering moves this
// checksum. Re-record (values printed on failure) only for intentional
// semantic changes.

faults::FaultPlan FixedFaultPlan() {
  faults::FaultPlan plan;
  plan.CrashDevice(hw::DeviceId(2), TimePoint() + Duration::Millis(2),
                   /*down_for=*/Duration::Millis(6));
  plan.SlowDevice(hw::DeviceId(9), TimePoint() + Duration::Millis(1),
                  /*window=*/Duration::Millis(4), /*multiplier=*/2.5);
  plan.DegradeHostLink(net::HostId(1), TimePoint() + Duration::Millis(1.5),
                       /*window=*/Duration::Millis(5), /*bandwidth_scale=*/0.5);
  plan.PartitionHost(net::HostId(3), TimePoint() + Duration::Millis(2.5),
                     /*window=*/Duration::Millis(1));
  return plan;
}

constexpr std::uint64_t kFaultGoldenChecksum = 0x315ea444bc89b2c0ULL;
constexpr std::int64_t kFaultGoldenEventsExecuted = 3296;
constexpr std::int64_t kFaultGoldenFinalNowNs = 18090361921;

TEST(SimDeterminismGolden, FaultScenarioTwoRunsBitIdentical) {
  const ScenarioOutcome first = RunScenario(FixedFaultPlan());
  const ScenarioOutcome second = RunScenario(FixedFaultPlan());
  EXPECT_TRUE(SpansIdentical(first.spans, second.spans))
      << "same fault plan, same process, different traces";
  EXPECT_EQ(first.events_executed, second.events_executed);
  EXPECT_EQ(first.final_now_ns, second.final_now_ns);
  EXPECT_EQ(first.Checksum(), second.Checksum());
}

TEST(SimDeterminismGolden, FaultScenarioMatchesRecordedChecksum) {
  const ScenarioOutcome out = RunScenario(FixedFaultPlan());
  ASSERT_FALSE(out.spans.empty());
  EXPECT_EQ(out.events_executed, kFaultGoldenEventsExecuted)
      << "fault-scenario event count moved";
  EXPECT_EQ(out.final_now_ns, kFaultGoldenFinalNowNs)
      << "fault-scenario final clock moved";
  EXPECT_EQ(out.Checksum(), kFaultGoldenChecksum)
      << "fault-scenario event-trace checksum mismatch: failover semantics "
      << "changed. actual checksum=0x" << std::hex << out.Checksum()
      << " events=" << std::dec << out.events_executed
      << " now_ns=" << out.final_now_ns;
}

// ----------------------------------------------------------------------- //
// Partitioned-engine goldens: the same scenarios, run on the conservative
// parallel engine (sim/partition.h) with the Pathways stack on the control
// LP, must reproduce every golden byte-for-byte at every sim-thread count.
// This is the deterministic-merge acceptance gate for the parallel engine:
// windowed execution, the LBTS protocol, and worker-pool scheduling must be
// invisible to the event order, the event count, and the final clock.

TEST(SimDeterminismGolden, PartitionedEnginePreservesGolden) {
  for (const int threads : {1, 4}) {
    const ScenarioOutcome out =
        RunScenario(std::nullopt, EngineSpec{/*num_lps=*/4, threads});
    EXPECT_EQ(out.events_executed, kGoldenEventsExecuted)
        << "sim_threads=" << threads;
    EXPECT_EQ(out.final_now_ns, kGoldenFinalNowNs)
        << "sim_threads=" << threads;
    EXPECT_EQ(out.Checksum(), kGoldenChecksum)
        << "partitioned engine diverged from the serial golden at "
        << threads << " sim-threads. actual checksum=0x" << std::hex
        << out.Checksum();
  }
}

TEST(SimDeterminismGolden, PartitionedEnginePreservesFaultGolden) {
  for (const int threads : {1, 4}) {
    const ScenarioOutcome out =
        RunScenario(FixedFaultPlan(), EngineSpec{/*num_lps=*/4, threads});
    EXPECT_EQ(out.events_executed, kFaultGoldenEventsExecuted)
        << "sim_threads=" << threads;
    EXPECT_EQ(out.final_now_ns, kFaultGoldenFinalNowNs)
        << "sim_threads=" << threads;
    EXPECT_EQ(out.Checksum(), kFaultGoldenChecksum)
        << "partitioned engine diverged from the fault-scenario golden at "
        << threads << " sim-threads. actual checksum=0x" << std::hex
        << out.Checksum();
  }
}

}  // namespace
}  // namespace pw
