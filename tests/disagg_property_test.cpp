// Randomized invariant layer for disaggregated prefill/decode serving
// (docs/SERVING.md). Seeded fuzz over two-island scenario shapes — tenant
// mixes, batch budgets, decode-island HBM sized *below* the KV working set
// so spilling is live, plus DCN partitions and NIC degradation landing
// while KV transfers are in flight — checking on every scenario:
//
//   * residency: no sequence ever decodes a token before its KV for the
//     *current attempt* is resident on the decode island (trace audit:
//     first_token/token events are only legal between a kv_ready and the
//     next requeue);
//   * memory: live KV per decode shard never exceeds the admission budget,
//     pinned KV never exceeds HBM (probed during the run), and the
//     router's unready in-flight KV stays under the decode island's fresh
//     floor at its recorded peak;
//   * conservation: every arrival finishes or is shed — a DCN partition
//     mid-transfer delays delivery (held bytes replay at heal) but never
//     wedges the router, the batchers, or the reservation queues;
//   * determinism: a SweepRunner sweep over the same scenarios is
//     byte-identical between 1 worker thread and 4.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "serving/serving.h"
#include "sim/simulator.h"
#include "sweep/param_grid.h"
#include "sweep/result_table.h"
#include "sweep/sweep_runner.h"

namespace pw::serving {
namespace {

using pathways::PathwaysRuntime;

struct Scenario {
  Bytes hbm = 0;
  Bytes kv_token = 0;
  BatcherConfig batcher;
  std::vector<TenantSpec> tenants;
  faults::FaultPlan faults;
  bool expect_partition = false;
};

// Derives a pressured two-island scenario from one seed: decode-island HBM
// at ~0.5x the projected KV working set (the spiller must field the
// overflow), and a fault schedule that partitions or degrades the prefill
// host's NIC inside the arrival window so transfers are hit mid-flight.
Scenario MakeScenario(std::uint64_t seed) {
  Rng rng(seed * 6271 + 3);
  Scenario s;
  s.kv_token = KiB(2) << rng.NextBounded(2);  // 2 or 4 KiB per token
  s.batcher.policy = BatchPolicy::kContinuous;
  s.batcher.max_batch = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
  s.batcher.token_budget = 64 + static_cast<int>(rng.NextBounded(96));
  s.batcher.queue_capacity = 16 + rng.NextBounded(32);

  const int tenants = 1 + static_cast<int>(rng.NextBounded(2));
  int max_kv_tokens = 1;
  for (int t = 0; t < tenants; ++t) {
    TenantSpec spec;
    spec.arrivals.process = rng.NextBounded(2) == 0
                                ? workload::ArrivalProcess::kPoisson
                                : workload::ArrivalProcess::kUniform;
    spec.arrivals.rate_per_sec =
        3000 + 1500 * static_cast<double>(rng.NextBounded(6));
    spec.arrivals.horizon = Duration::Millis(2);
    spec.arrivals.seed = seed * 100 + static_cast<std::uint64_t>(t) + 1;
    spec.min_prefill_tokens = 4 + static_cast<int>(rng.NextBounded(8));
    spec.max_prefill_tokens =
        spec.min_prefill_tokens + 8 + static_cast<int>(rng.NextBounded(16));
    spec.min_decode_tokens = 2 + static_cast<int>(rng.NextBounded(4));
    spec.max_decode_tokens =
        spec.min_decode_tokens + 2 + static_cast<int>(rng.NextBounded(8));
    spec.token_seed = seed * 1000 + static_cast<std::uint64_t>(t) + 1;
    const int kv = spec.max_prefill_tokens + spec.max_decode_tokens - 1;
    if (kv > max_kv_tokens) max_kv_tokens = kv;
    s.tenants.push_back(spec);
  }

  const Bytes working_set =
      static_cast<Bytes>(s.batcher.max_batch) * max_kv_tokens * s.kv_token;
  s.batcher.kv_budget_per_device = working_set;
  const Bytes staging = s.batcher.activation_bytes_per_shard +
                        s.batcher.output_bytes_per_shard +
                        s.batcher.collective_bytes_per_shard;
  s.hbm = working_set / 2 + staging;  // 0.5x the KV working set

  // Faults inside the 2ms arrival window. Host 0 is the prefill island's,
  // host 1 the decode island's; partitioning either holds every in-flight
  // KV piece on the fabric until heal.
  const TimePoint t0;
  switch (rng.NextBounded(4)) {
    case 0:  // partition the prefill host mid-window
      s.faults.PartitionHost(net::HostId(0),
                             t0 + Duration::Micros(300 + rng.NextBounded(400)),
                             Duration::Micros(200 + rng.NextBounded(600)));
      s.expect_partition = true;
      break;
    case 1:  // partition the decode host
      s.faults.PartitionHost(net::HostId(1),
                             t0 + Duration::Micros(300 + rng.NextBounded(400)),
                             Duration::Micros(200 + rng.NextBounded(600)));
      s.expect_partition = true;
      break;
    case 2:  // degrade the prefill NIC to 5..50%
      s.faults.DegradeHostLink(
          net::HostId(0), t0 + Duration::Micros(200 + rng.NextBounded(300)),
          Duration::Millis(1),
          0.05 + 0.45 * static_cast<double>(rng.NextBounded(10)) / 10.0);
      break;
    default:  // both: degrade decode NIC, then partition prefill host
      s.faults.DegradeHostLink(net::HostId(1), t0 + Duration::Micros(200),
                               Duration::Millis(1), 0.1);
      s.faults.PartitionHost(net::HostId(0),
                             t0 + Duration::Micros(500 + rng.NextBounded(300)),
                             Duration::Micros(200 + rng.NextBounded(400)));
      s.expect_partition = true;
      break;
  }
  return s;
}

struct RunResult {
  std::int64_t arrivals = 0;
  std::int64_t finished = 0;
  std::int64_t shed = 0;
  std::int64_t transfers = 0;
  std::int64_t transfer_fails = 0;
  std::int64_t reprefills = 0;
  std::int64_t spills = 0;
  std::uint64_t checksum = 0;
  bool deadlocked = false;
  bool idle = false;
  Bytes held_at_end = 0;
  std::int64_t live_buffers = 0;
  Bytes leaked_bytes = 0;
  Bytes probe_max_decode_live = 0;
  Bytes probe_max_pinned = 0;
  Bytes peak_inflight = 0;
  Bytes inflight_cap = 0;
  std::string trace_errors;
};

// Residency audit: a request's decode tokens are only legal while its KV
// is resident on the decode island — i.e. after a kv_ready with no
// intervening requeue/kv_fail. Also checks per-attempt event shape.
std::string AuditTrace(const ServingTrace& trace) {
  struct PerReq {
    bool resident = false;
    bool enqueued = false;
    int tokens_since_first = 0;
    bool saw_first_token = false;
    bool finished = false;
    bool shed = false;
  };
  std::map<std::int64_t, PerReq> reqs;
  std::ostringstream err;
  for (const auto& e : trace.events()) {
    if (e.request < 0) continue;
    PerReq& r = reqs[e.request];
    if (e.kind == "kv_ready") {
      r.resident = true;
    } else if (e.kind == "enqueue") {
      if (!r.resident) {
        err << "req " << e.request << ": enqueued before kv_ready\n";
      }
      r.enqueued = true;
    } else if (e.kind == "requeue" || e.kind == "kv_fail") {
      r.resident = false;
      r.enqueued = false;
      r.saw_first_token = false;
    } else if (e.kind == "first_token") {
      if (!r.resident || !r.enqueued) {
        err << "req " << e.request << ": first_token without resident KV\n";
      }
      r.saw_first_token = true;
      r.tokens_since_first = 0;
    } else if (e.kind == "token") {
      if (!r.resident) {
        err << "req " << e.request << ": token without resident KV\n";
      }
      ++r.tokens_since_first;
    } else if (e.kind == "finish") {
      r.finished = true;
      if (!r.saw_first_token) {
        err << "req " << e.request << ": finished without a first token\n";
      }
      if (r.tokens_since_first != e.detail - 1) {
        err << "req " << e.request << ": finish at " << e.detail
            << " tokens but " << r.tokens_since_first
            << " token events since first_token\n";
      }
    } else if (e.kind == "shed") {
      r.shed = true;
    }
  }
  for (const auto& [id, r] : reqs) {
    if (r.shed) continue;
    if (!r.finished) err << "req " << id << ": neither finished nor shed\n";
  }
  return err.str();
}

RunResult RunScenario(const Scenario& s) {
  sim::Simulator sim;
  hw::SystemParams params = hw::SystemParams::TpuDefault();
  params.host_jitter_frac = 0;
  params.hbm_capacity = s.hbm;
  hw::Cluster cluster(&sim, params, /*islands=*/2, /*hosts_per_island=*/1,
                      /*devices_per_host=*/2);
  PathwaysRuntime runtime(&cluster, pathways::PathwaysOptions{});
  pathways::Client* client = runtime.CreateClient();

  ServingMetrics metrics;
  ServingTrace trace;
  BatcherConfig prefill_cfg = s.batcher;
  prefill_cfg.role = BatcherRole::kPrefill;
  Batcher prefill(client, client->AllocateSlice(2, hw::IslandId(0)).value(),
                  KvCacheConfig{s.kv_token}, prefill_cfg, &metrics, &trace);
  BatcherConfig decode_cfg = s.batcher;
  decode_cfg.role = BatcherRole::kDecode;
  Batcher decode(client, client->AllocateSlice(2, hw::IslandId(1)).value(),
                 KvCacheConfig{s.kv_token}, decode_cfg, &metrics, &trace);
  DisaggRouter router({&prefill}, {&decode}, &metrics, &trace);

  std::vector<std::unique_ptr<ServingTenant>> tenants;
  for (std::size_t t = 0; t < s.tenants.size(); ++t) {
    tenants.push_back(std::make_unique<ServingTenant>(
        static_cast<int>(t),
        [&router](Request req) { return router.Offer(std::move(req)); }, &sim,
        s.tenants[t]));
    tenants.back()->Start();
  }

  faults::FaultPlan plan = s.faults;
  faults::FaultInjector injector(&cluster, &runtime, std::move(plan));
  injector.Arm();

  RunResult out;
  const Duration probe_period = Duration::Micros(50);
  std::function<void()> probe = [&]() {
    const Bytes live = decode.kv().live_bytes_per_shard();
    if (live > out.probe_max_decode_live) out.probe_max_decode_live = live;
    const Bytes pinned = prefill.kv().pinned_bytes_per_shard() +
                         decode.kv().pinned_bytes_per_shard();
    if (pinned > out.probe_max_pinned) out.probe_max_pinned = pinned;
    if (!router.idle() || sim.now() < TimePoint() + Duration::Millis(2)) {
      sim.Schedule(probe_period, probe);
    }
  };
  sim.Schedule(probe_period, probe);
  sim.Run();

  const pathways::ObjectStore& store = runtime.object_store();
  store.CheckNoReservationWedge();  // PW_CHECKs (aborts) on a wedge
  out.arrivals = metrics.arrivals();
  out.finished = metrics.finished();
  out.shed = metrics.sheds();
  out.transfers = router.transfers_completed();
  out.transfer_fails = router.transfers_failed();
  out.reprefills = router.reprefills();
  out.spills = store.spills_completed();
  out.checksum = trace.Checksum();
  out.deadlocked = sim.Deadlocked();
  out.idle = router.idle();
  out.held_at_end = cluster.dcn().held_bytes();
  out.live_buffers = store.live_buffers();
  for (int d = 0; d < 4; ++d) {
    out.leaked_bytes += store.logical_live_bytes(hw::DeviceId(d));
  }
  out.peak_inflight = router.peak_inflight_per_shard();
  out.inflight_cap = decode.hbm_floor() - decode.StagingPerShard();
  out.trace_errors = AuditTrace(trace);
  return out;
}

constexpr std::uint64_t kSeeds = 10;

TEST(DisaggPropertyTest, PartitionedTransfersNeverWedgeAndNothingLeaks) {
  std::int64_t total_transfers = 0;
  std::int64_t total_spills = 0;
  std::int64_t partitioned_runs = 0;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Scenario s = MakeScenario(seed);
    const RunResult r = RunScenario(s);
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Liveness: partitions hold KV bytes on the fabric and replay them at
    // heal; the run must still quiesce with the router idle and the
    // fabric drained.
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(r.idle);
    EXPECT_EQ(r.held_at_end, 0);
    // Conservation: every arrival finished or was shed.
    EXPECT_GT(r.arrivals, 0);
    EXPECT_EQ(r.finished + r.shed, r.arrivals);
    // Memory: live decode-island KV within the admission budget at every
    // probe; the router's unready in-flight KV under the fresh floor.
    EXPECT_LE(r.probe_max_decode_live, s.batcher.kv_budget_per_device);
    EXPECT_LE(r.peak_inflight, r.inflight_cap);
    // Nothing orphaned on either island.
    EXPECT_EQ(r.live_buffers, 0);
    EXPECT_EQ(r.leaked_bytes, 0);
    // Residency: no decode before the KV landed (see AuditTrace).
    EXPECT_EQ(r.trace_errors, "");
    total_transfers += r.transfers;
    total_spills += r.spills;
    if (s.expect_partition) ++partitioned_runs;
  }
  // The sweep exercised what it claims to: cross-island transfers under
  // partitions, with the decode island actually paging KV.
  EXPECT_GT(total_transfers, 0);
  EXPECT_GT(total_spills, 0);
  EXPECT_GE(partitioned_runs, 3);
}

TEST(DisaggPropertyTest, SweepIsByteIdenticalAcrossThreadCounts) {
  sweep::ParamGrid grid;
  std::vector<std::int64_t> seeds;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    seeds.push_back(static_cast<std::int64_t>(seed));
  }
  grid.AxisInts("seed", seeds);

  const auto point_fn = [](const sweep::ParamPoint& p) {
    const RunResult r = RunScenario(
        MakeScenario(static_cast<std::uint64_t>(p.GetInt("seed"))));
    return sweep::Metrics{
        {"finished", static_cast<double>(r.finished)},
        {"shed", static_cast<double>(r.shed)},
        {"transfers", static_cast<double>(r.transfers)},
        {"reprefills", static_cast<double>(r.reprefills)},
        // Checksum folded to stay exactly representable in a double.
        {"trace_lo", static_cast<double>(r.checksum & 0xffffffffULL)},
        {"trace_hi", static_cast<double>(r.checksum >> 32)},
    };
  };

  sweep::SweepRunner parallel(sweep::SweepRunner::Options{.threads = 4});
  sweep::SweepRunner serial(sweep::SweepRunner::Options{.threads = 1});
  std::ostringstream csv_mt, csv_1t;
  parallel.Run(grid, point_fn).WriteCsv(csv_mt);
  serial.Run(grid, point_fn).WriteCsv(csv_1t);
  EXPECT_EQ(csv_mt.str(), csv_1t.str());
  EXPECT_NE(csv_mt.str().find("transfers"), std::string::npos);
}

}  // namespace
}  // namespace pw::serving
