#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "hw/cluster.h"
#include "plaque/program.h"
#include "plaque/runtime.h"
#include "sim/simulator.h"

namespace pw::plaque {
namespace {

// Builds a tiny cluster with `hosts` hosts for placement targets.
std::unique_ptr<hw::Cluster> MakeHosts(sim::Simulator* sim, int hosts) {
  return std::make_unique<hw::Cluster>(sim, hw::SystemParams::TpuDefault(),
                                       /*islands=*/1, hosts,
                                       /*devices_per_host=*/1);
}

// ------------------------------------------------------- ProgressTracker --

TEST(ProgressTrackerTest, CompleteWhenClosesAndCountsMatch) {
  ProgressTracker t(/*num_src_shards=*/2);
  EXPECT_FALSE(t.complete());
  t.TupleArrived();
  t.CloseArrived(/*promised=*/1);
  EXPECT_FALSE(t.complete());  // second close outstanding
  t.CloseArrived(/*promised=*/0);
  EXPECT_TRUE(t.complete());
}

TEST(ProgressTrackerTest, CloseBeforeTupleDelaysCompletion) {
  ProgressTracker t(1);
  t.CloseArrived(/*promised=*/2);
  EXPECT_FALSE(t.complete());
  t.TupleArrived();
  EXPECT_FALSE(t.complete());
  t.TupleArrived();
  EXPECT_TRUE(t.complete());
}

TEST(ProgressTrackerTest, ZeroTupleEdgeCompletesOnClosesAlone) {
  ProgressTracker t(3);
  t.CloseArrived(0);
  t.CloseArrived(0);
  t.CloseArrived(0);
  EXPECT_TRUE(t.complete());
}

// -------------------------------------------------------- DataflowProgram --

TEST(ProgramTest, CompactRepresentationIndependentOfShardCount) {
  // Paper §4.3: Arg -> Compute(A) -> Compute(B) -> Result must be 4 nodes
  // whether N = 1 or N = 2048.
  for (const int shards : {1, 16, 2048}) {
    DataflowProgram p("chain");
    const NodeId arg = p.AddNode(NodeKind::kArg, "arg", shards);
    const NodeId a = p.AddNode(NodeKind::kCompute, "A", shards);
    const NodeId b = p.AddNode(NodeKind::kCompute, "B", shards);
    const NodeId result = p.AddNode(NodeKind::kResult, "result", shards);
    p.AddEdge(arg, a);
    p.AddEdge(a, b);
    p.AddEdge(b, result);
    EXPECT_EQ(p.num_nodes(), 4);
    EXPECT_EQ(p.num_edges(), 3);
  }
}

TEST(ProgramTest, EdgeQueriesWork) {
  DataflowProgram p("g");
  const NodeId a = p.AddNode(NodeKind::kArg, "a", 2);
  const NodeId b = p.AddNode(NodeKind::kCompute, "b", 2);
  const NodeId c = p.AddNode(NodeKind::kCompute, "c", 2);
  const EdgeId ab = p.AddEdge(a, b);
  const EdgeId ac = p.AddEdge(a, c);
  const EdgeId bc = p.AddEdge(b, c);
  EXPECT_EQ(p.out_edges(a), (std::vector<EdgeId>{ab, ac}));
  EXPECT_EQ(p.in_edges(c), (std::vector<EdgeId>{ac, bc}));
}

// ---------------------------------------------------------------- Runtime --

struct ChainFixture {
  explicit ChainFixture(int shards, int hosts)
      : cluster(MakeHosts(&sim, hosts)),
        runtime(&sim, RuntimeOptions{}),
        program("chain") {
    arg = program.AddNode(NodeKind::kArg, "arg", shards);
    a = program.AddNode(NodeKind::kCompute, "A", shards);
    result = program.AddNode(NodeKind::kResult, "result", shards);
    e_arg_a = program.AddEdge(arg, a);
    e_a_result = program.AddEdge(a, result);
  }

  PlaqueRuntime::Placement RoundRobinPlacement() {
    return [this](NodeId, int shard) {
      return &cluster->host(shard % cluster->num_hosts());
    };
  }

  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  PlaqueRuntime runtime;
  DataflowProgram program;
  NodeId arg, a, result;
  EdgeId e_arg_a, e_a_result;
};

TEST(RuntimeTest, DataParallelChainDeliversOneTuplePerShardPair) {
  // Paper §4.3: "when performing data-parallel execution N data tuples would
  // flow, one between each adjacent pair of IR nodes".
  constexpr int kShards = 8;
  ChainFixture f(kShards, /*hosts=*/4);
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[f.arg.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(f.e_arg_a, shard, shard, /*bytes=*/64);
  };
  handlers[f.a.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple> in) {
    EXPECT_EQ(in.size(), 1u);
    inst.Send(f.e_a_result, shard, shard, 64);
  };
  auto inst = f.runtime.Instantiate(&f.program, f.RoundRobinPlacement(),
                                    std::move(handlers));
  std::set<int> result_shards;
  inst->OnResult([&](int shard, std::vector<Tuple> in) {
    EXPECT_EQ(in.size(), 1u);
    result_shards.insert(shard);
  });
  for (int s = 0; s < kShards; ++s) inst->InjectArg(f.arg, s, 8);
  f.sim.Run();
  EXPECT_TRUE(inst->AllResultsComplete());
  EXPECT_EQ(result_shards.size(), kShards);
  EXPECT_EQ(inst->tuples_routed(), 2 * kShards);
}

TEST(RuntimeTest, SparseExchangeTerminates) {
  // Shard s of A sends only to shard 0 (high fan-in); every other result
  // shard must still fire, via zero-count punctuation.
  constexpr int kShards = 8;
  ChainFixture f(kShards, 4);
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[f.arg.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(f.e_arg_a, shard, shard, 64);
  };
  handlers[f.a.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(f.e_a_result, shard, /*dst_shard=*/0, 64);
  };
  auto inst = f.runtime.Instantiate(&f.program, f.RoundRobinPlacement(),
                                    std::move(handlers));
  std::map<int, std::size_t> tuples_per_result_shard;
  inst->OnResult([&](int shard, std::vector<Tuple> in) {
    tuples_per_result_shard[shard] = in.size();
  });
  for (int s = 0; s < kShards; ++s) inst->InjectArg(f.arg, s, 8);
  f.sim.Run();
  EXPECT_TRUE(inst->AllResultsComplete());
  EXPECT_EQ(tuples_per_result_shard[0], static_cast<std::size_t>(kShards));
  for (int s = 1; s < kShards; ++s) {
    EXPECT_EQ(tuples_per_result_shard[s], 0u) << "shard " << s;
  }
}

TEST(RuntimeTest, FanInNodeWaitsForAllEdges) {
  sim::Simulator sim;
  auto cluster = MakeHosts(&sim, 2);
  PlaqueRuntime runtime(&sim, RuntimeOptions{});
  DataflowProgram p("fanin");
  const NodeId argx = p.AddNode(NodeKind::kArg, "x", 1);
  const NodeId argy = p.AddNode(NodeKind::kArg, "y", 1);
  const NodeId join = p.AddNode(NodeKind::kCompute, "join", 1);
  const NodeId res = p.AddNode(NodeKind::kResult, "res", 1);
  const EdgeId ex = p.AddEdge(argx, join);
  const EdgeId ey = p.AddEdge(argy, join);
  const EdgeId er = p.AddEdge(join, res);
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[argx.value()] = [&](ProgramInstance& inst, int, std::vector<Tuple>) {
    inst.Send(ex, 0, 0, 8);
  };
  handlers[argy.value()] = [&](ProgramInstance& inst, int, std::vector<Tuple>) {
    inst.Send(ey, 0, 0, 8);
  };
  int join_inputs = 0;
  handlers[join.value()] = [&](ProgramInstance& inst, int, std::vector<Tuple> in) {
    join_inputs = static_cast<int>(in.size());
    inst.Send(er, 0, 0, 8);
  };
  auto inst = runtime.Instantiate(
      &p, [&](NodeId, int) { return &cluster->host(0); }, std::move(handlers));
  bool done = false;
  inst->OnResult([&](int, std::vector<Tuple>) { done = true; });
  inst->InjectArg(argx, 0, 8);
  sim.RunFor(Duration::Micros(200));
  EXPECT_FALSE(done);  // y edge incomplete: join must not fire
  inst->InjectArg(argy, 0, 8);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(join_inputs, 2);
}

TEST(RuntimeTest, CrossHostTuplesAreBatched) {
  // All of A's shards live on host0; all result shards on host1. The 16
  // tuples + punctuation should coalesce into far fewer DCN messages.
  constexpr int kShards = 16;
  sim::Simulator sim;
  auto cluster = MakeHosts(&sim, 2);
  PlaqueRuntime runtime(&sim, RuntimeOptions{});
  DataflowProgram p("xfer");
  const NodeId arg = p.AddNode(NodeKind::kArg, "arg", kShards);
  const NodeId res = p.AddNode(NodeKind::kResult, "res", kShards);
  const EdgeId e = p.AddEdge(arg, res);
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[arg.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(e, shard, shard, 64);
  };
  auto inst = runtime.Instantiate(
      &p,
      [&](NodeId n, int) {
        return n == arg ? &cluster->host(0) : &cluster->host(1);
      },
      std::move(handlers));
  inst->OnResult([](int, std::vector<Tuple>) {});
  for (int s = 0; s < kShards; ++s) inst->InjectArg(arg, s, 8);
  sim.Run();
  EXPECT_TRUE(inst->AllResultsComplete());
  // 16 tuples + 16*punctuation = 32 logical messages; batching must compress
  // them at least 4x (handler activations trickle in 5us apart on the shared
  // host CPU, so several batch windows elapse).
  EXPECT_LE(cluster->dcn().messages_sent(), 8);
}

TEST(RuntimeTest, AsyncHandlerWithExplicitClose) {
  sim::Simulator sim;
  auto cluster = MakeHosts(&sim, 1);
  PlaqueRuntime runtime(&sim, RuntimeOptions{});
  DataflowProgram p("async");
  const NodeId arg = p.AddNode(NodeKind::kArg, "arg", 1);
  const NodeId a = p.AddNode(NodeKind::kCompute, "A", 1, /*auto_close=*/false);
  const NodeId res = p.AddNode(NodeKind::kResult, "res", 1);
  const EdgeId ea = p.AddEdge(arg, a);
  const EdgeId er = p.AddEdge(a, res);
  (void)ea;
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[arg.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(ea, shard, shard, 8);
  };
  handlers[a.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    // Emits 100us later (e.g. after an accelerator kernel), then closes.
    sim.Schedule(Duration::Micros(100), [&inst, shard, er2 = er, a2 = a] {
      inst.Send(er2, shard, shard, 8);
      inst.CloseShard(a2, shard);
    });
  };
  auto inst = runtime.Instantiate(
      &p, [&](NodeId, int) { return &cluster->host(0); }, std::move(handlers));
  bool done = false;
  inst->OnResult([&](int, std::vector<Tuple>) { done = true; });
  inst->InjectArg(arg, 0, 8);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_GE(sim.now().ToMicros(), 100.0);
}

TEST(RuntimeTest, PayloadsTravelIntact) {
  sim::Simulator sim;
  auto cluster = MakeHosts(&sim, 2);
  PlaqueRuntime runtime(&sim, RuntimeOptions{});
  DataflowProgram p("payload");
  const NodeId arg = p.AddNode(NodeKind::kArg, "arg", 1);
  const NodeId res = p.AddNode(NodeKind::kResult, "res", 1);
  const EdgeId e = p.AddEdge(arg, res);
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[arg.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(e, shard, shard, 8, std::string("buffer-handle-42"));
  };
  auto inst = runtime.Instantiate(
      &p,
      [&](NodeId n, int) {
        return n == arg ? &cluster->host(0) : &cluster->host(1);
      },
      std::move(handlers));
  std::string got;
  inst->OnResult([&](int, std::vector<Tuple> in) {
    ASSERT_EQ(in.size(), 1u);
    got = std::any_cast<std::string>(in[0].payload);
  });
  inst->InjectArg(arg, 0, 8);
  sim.Run();
  EXPECT_EQ(got, "buffer-handle-42");
}

// Property test: random sparse routing always terminates with every tuple
// accounted for, across shard counts and seeds.
class SparseRoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseRoutingProperty, EveryShardFiresAndTuplesBalance) {
  const auto [shards, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  ChainFixture f(shards, /*hosts=*/3);
  std::int64_t sent = 0;
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers;
  handlers[f.arg.value()] = [&](ProgramInstance& inst, int shard, std::vector<Tuple>) {
    inst.Send(f.e_arg_a, shard, shard, 16);
  };
  handlers[f.a.value()] = [&, shards_ = shards](ProgramInstance& inst, int shard,
                                                std::vector<Tuple>) {
    // Each shard sends to a random subset (possibly empty) of destinations.
    for (int d = 0; d < shards_; ++d) {
      if (rng.NextDouble() < 0.4) {
        inst.Send(f.e_a_result, shard, d, 16);
        ++sent;
      }
    }
  };
  auto inst = f.runtime.Instantiate(&f.program, f.RoundRobinPlacement(),
                                    std::move(handlers));
  std::int64_t received = 0;
  int fired = 0;
  inst->OnResult([&](int, std::vector<Tuple> in) {
    received += static_cast<std::int64_t>(in.size());
    ++fired;
  });
  for (int s = 0; s < shards; ++s) inst->InjectArg(f.arg, s, 8);
  f.sim.Run();
  EXPECT_TRUE(inst->AllResultsComplete());
  EXPECT_EQ(fired, shards);
  EXPECT_EQ(received, sent);
  EXPECT_FALSE(f.sim.Deadlocked());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseRoutingProperty,
    ::testing::Combine(::testing::Values(1, 2, 5, 8, 16),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace pw::plaque
