// Scenario layer: clang-style diagnostics (file:line:col + did-you-mean),
// canonical serialization round-trips, family validation, thread-count
// determinism of RunScenario, and the path-addressed result store's glob
// queries (docs/SCENARIOS.md).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/diagnostics.h"
#include "scenario/result_store.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sweep/result_table.h"

namespace pw::scenario {
namespace {

// --- diagnostics -----------------------------------------------------------

TEST(Diagnostics, EditDistanceCountsTransposes) {
  EXPECT_EQ(EditDistance("quick", "quick"), 0u);
  EXPECT_EQ(EditDistance("quick", "quik"), 1u);    // delete
  EXPECT_EQ(EditDistance("quick", "qiuck"), 1u);   // transpose
  EXPECT_EQ(EditDistance("quick", "brick"), 2u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
}

TEST(Diagnostics, DidYouMeanBoundsTheSuggestion) {
  const std::vector<std::string> keys = {"name", "family", "sweep"};
  EXPECT_EQ(DidYouMean("famly", keys), "family");
  EXPECT_EQ(DidYouMean("zzzzzz", keys), "");  // nothing plausible
  EXPECT_EQ(DidYouMeanSuffix("famly", keys), "; did you mean 'family'?");
  EXPECT_EQ(DidYouMeanSuffix("zzzzzz", keys), "");
}

TEST(Diagnostics, HeaderCarriesFileLineCol) {
  DiagnosticEngine diags("test.json", "{\n  \"bad\": 1\n}\n");
  diags.Error({2, 3}, "unknown key 'bad'");
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].Header(),
            "test.json:2:3: error: unknown key 'bad'");
  // Render excerpts the offending line with a caret under column 3.
  const std::string render = diags.Render();
  EXPECT_NE(render.find("  \"bad\": 1"), std::string::npos);
  EXPECT_NE(render.find("^"), std::string::npos);
  EXPECT_FALSE(diags.ok());
}

// Parses `text` expecting failure; returns the rendered diagnostics.
std::string ParseExpectingErrors(const std::string& text, Scenario* out,
                                 DiagnosticEngine* diags) {
  *diags = DiagnosticEngine("test.json", text);
  EXPECT_FALSE(ParseScenario(text, out, diags));
  EXPECT_FALSE(diags->ok());
  return diags->Render();
}

TEST(ScenarioParse, SyntaxErrorPointsAtTheOffendingToken) {
  Scenario s;
  DiagnosticEngine diags;
  ParseExpectingErrors("{\n  \"name\": ,\n}\n", &s, &diags);
  ASSERT_GE(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 2);
  EXPECT_GT(diags.diagnostics()[0].loc.col, 0);
}

TEST(ScenarioParse, UnknownTopLevelKeySuggestsTheRightOne) {
  Scenario s;
  DiagnosticEngine diags;
  const std::string render = ParseExpectingErrors(
      "{\n"
      "  \"name\": \"t\",\n"
      "  \"famly\": \"faults\",\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"island_devices\","
      " \"values\": [4] } ] }\n"
      "}\n",
      &s, &diags);
  EXPECT_NE(render.find("unknown key 'famly'; did you mean 'family'?"),
            std::string::npos);
  bool found = false;
  for (const auto& d : diags.diagnostics()) {
    if (d.message.find("'famly'") != std::string::npos) {
      EXPECT_EQ(d.loc.line, 3);
      EXPECT_GT(d.loc.col, 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScenarioParse, MissingRequiredSectionsAreErrors) {
  Scenario s;
  DiagnosticEngine diags;
  std::string render = ParseExpectingErrors(
      "{ \"name\": \"t\", \"family\": \"faults\" }\n", &s, &diags);
  EXPECT_NE(render.find("scenario requires a 'sweep' section"),
            std::string::npos);

  render = ParseExpectingErrors(
      "{ \"family\": \"faults\",\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"a\", \"values\": [1] } ] } }\n",
      &s, &diags);
  EXPECT_NE(render.find("scenario requires a non-empty 'name'"),
            std::string::npos);
}

TEST(ScenarioParse, MistypedFieldReportsWantedAndActualType) {
  Scenario s;
  DiagnosticEngine diags;
  const std::string render = ParseExpectingErrors(
      "{\n"
      "  \"name\": \"t\",\n"
      "  \"family\": \"faults\",\n"
      "  \"faults\": { \"horizon_ms\": \"fast\" },\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"island_devices\","
      " \"values\": [4] },\n"
      "               { \"name\": \"faults_per_sec\", \"values\": [25] } ] }\n"
      "}\n",
      &s, &diags);
  EXPECT_NE(render.find("key 'horizon_ms' expects number"),
            std::string::npos);
  EXPECT_NE(render.find("test.json:4:"), std::string::npos);
}

TEST(ScenarioParse, UnknownFamilyAxisSuggestsDeclaredAxis) {
  Scenario s;
  DiagnosticEngine diags("test.json", "");
  const std::string text =
      "{\n"
      "  \"name\": \"t\",\n"
      "  \"family\": \"multitenant\",\n"
      "  \"sweep\": { \"axes\": [\n"
      "    { \"name\": \"clientz\", \"values\": [2] },\n"
      "    { \"name\": \"rate_scale\", \"values\": [0.5] },\n"
      "    { \"name\": \"policy\", \"values\": [\"drop-tail\"] }\n"
      "  ] }\n"
      "}\n";
  diags = DiagnosticEngine("test.json", text);
  ASSERT_TRUE(ParseScenario(text, &s, &diags)) << diags.Render();
  EXPECT_FALSE(ValidateForFamily(&s, &diags));
  const std::string render = diags.Render();
  EXPECT_NE(render.find("no axis 'clientz'"), std::string::npos);
  EXPECT_NE(render.find("did you mean 'clients'?"), std::string::npos);
  EXPECT_NE(render.find("test.json:5:"), std::string::npos);
}

TEST(ScenarioParse, MissingFamilyAxisIsAnError) {
  Scenario s;
  DiagnosticEngine diags;
  const std::string text =
      "{ \"name\": \"t\", \"family\": \"multitenant\",\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"clients\","
      " \"values\": [2] } ] } }\n";
  diags = DiagnosticEngine("test.json", text);
  ASSERT_TRUE(ParseScenario(text, &s, &diags)) << diags.Render();
  EXPECT_FALSE(ValidateForFamily(&s, &diags));
  EXPECT_NE(diags.Render().find("rate_scale"), std::string::npos);
}

TEST(ScenarioParse, WholeNumberValuesPromoteOnDoubleAxes) {
  Scenario s;
  DiagnosticEngine diags;
  const std::string text =
      "{ \"name\": \"t\", \"family\": \"multitenant\",\n"
      "  \"sweep\": { \"axes\": [\n"
      "    { \"name\": \"clients\", \"values\": [2] },\n"
      "    { \"name\": \"rate_scale\", \"values\": [1, 4] },\n"
      "    { \"name\": \"policy\", \"values\": [\"drop-tail\"] } ] } }\n";
  diags = DiagnosticEngine("test.json", text);
  ASSERT_TRUE(ParseScenario(text, &s, &diags)) << diags.Render();
  ASSERT_TRUE(ValidateForFamily(&s, &diags)) << diags.Render();
  const auto points = s.Grid(false).Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].GetDouble("rate_scale"), 1.0);
  EXPECT_DOUBLE_EQ(points[1].GetDouble("rate_scale"), 4.0);
}

// --- declarative fault plans ----------------------------------------------

TEST(ScenarioFaultPlan, ParsesEventsAndRelaxesTheRateAxis) {
  const std::string text =
      "{ \"name\": \"t\", \"family\": \"faults\",\n"
      "  \"faults\": { \"fault_plan\": [\n"
      "    { \"kind\": \"device_crash\", \"at_ms\": 5, \"window_ms\": 2,"
      " \"device\": 1 },\n"
      "    { \"kind\": \"link_degrade\", \"at_ms\": 8, \"window_ms\": 3,"
      " \"host\": 0, \"severity\": 0.5 } ] },\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"island_devices\","
      " \"values\": [4] } ] } }\n";
  Scenario s;
  DiagnosticEngine diags("test.json", text);
  ASSERT_TRUE(ParseScenario(text, &s, &diags)) << diags.Render();
  ASSERT_EQ(s.faults.full.fault_plan.size(), 2u);
  EXPECT_EQ(s.faults.full.fault_plan[0].kind, "device_crash");
  EXPECT_EQ(s.faults.full.fault_plan[0].device, 1);
  EXPECT_DOUBLE_EQ(s.faults.full.fault_plan[0].at_ms, 5.0);
  EXPECT_EQ(s.faults.full.fault_plan[1].kind, "link_degrade");
  EXPECT_DOUBLE_EQ(s.faults.full.fault_plan[1].severity, 0.5);

  // An explicit plan supersedes the axis-derived one, so faults_per_sec is
  // no longer a required axis (and no deprecation note is emitted).
  ASSERT_TRUE(ValidateForFamily(&s, &diags)) << diags.Render();
  EXPECT_TRUE(diags.diagnostics().empty()) << diags.Render();

  // The plan participates in the canonical fixed point.
  const std::string canon = s.Serialize();
  EXPECT_NE(canon.find("\"fault_plan\""), std::string::npos);
  Scenario s2;
  DiagnosticEngine d2("test.json (canonical)", canon);
  ASSERT_TRUE(ParseScenario(canon, &s2, &d2)) << d2.Render();
  EXPECT_EQ(s2.Serialize(), canon);
  EXPECT_TRUE(s2.faults.full.fault_plan == s.faults.full.fault_plan);
}

TEST(ScenarioFaultPlan, RejectsUnknownKindsAndMisappliedFields) {
  Scenario s;
  DiagnosticEngine diags;
  std::string render = ParseExpectingErrors(
      "{ \"name\": \"t\", \"family\": \"faults\",\n"
      "  \"faults\": { \"fault_plan\": [\n"
      "    { \"kind\": \"device_crsh\", \"at_ms\": 1, \"window_ms\": 1,"
      " \"device\": 0 } ] },\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"island_devices\","
      " \"values\": [4] } ] } }\n",
      &s, &diags);
  EXPECT_NE(render.find("unknown fault kind 'device_crsh'"),
            std::string::npos);
  EXPECT_NE(render.find("did you mean 'device_crash'?"), std::string::npos);

  render = ParseExpectingErrors(
      "{ \"name\": \"t\", \"family\": \"faults\",\n"
      "  \"faults\": { \"fault_plan\": [\n"
      "    { \"kind\": \"partition\", \"at_ms\": 1, \"window_ms\": 1,"
      " \"host\": 0, \"severity\": 0.5 },\n"
      "    { \"kind\": \"device_crash\", \"at_ms\": 1, \"window_ms\": 1,"
      " \"host\": 0 },\n"
      "    { \"kind\": \"straggler\", \"at_ms\": 1, \"window_ms\": 1,"
      " \"device\": 0, \"severity\": 0.5 } ] },\n"
      "  \"sweep\": { \"axes\": [ { \"name\": \"island_devices\","
      " \"values\": [4] } ] } }\n",
      &s, &diags);
  EXPECT_NE(render.find("'severity' does not apply to kind 'partition'"),
            std::string::npos);
  EXPECT_NE(render.find("'host' does not apply to kind 'device_crash'"),
            std::string::npos);
  EXPECT_NE(render.find("must be >= 1"), std::string::npos);
}

TEST(ScenarioFaultPlan, AxisDerivedPlansStillValidateWithDeprecationNote) {
  const std::string text =
      "{ \"name\": \"t\", \"family\": \"faults\",\n"
      "  \"sweep\": { \"axes\": [\n"
      "    { \"name\": \"island_devices\", \"values\": [4] },\n"
      "    { \"name\": \"faults_per_sec\", \"values\": [25] } ] } }\n";
  Scenario s;
  DiagnosticEngine diags("test.json", text);
  ASSERT_TRUE(ParseScenario(text, &s, &diags)) << diags.Render();
  ASSERT_TRUE(ValidateForFamily(&s, &diags)) << diags.Render();
  bool noted = false;
  for (const auto& d : diags.diagnostics()) {
    noted |= d.severity == Diagnostic::Severity::kNote &&
             d.message.find("fault_plan") != std::string::npos;
  }
  EXPECT_TRUE(noted) << diags.Render();
}

// --- canonical serialization ----------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ScenarioSerialize, ShippedScenariosRoundTripByteIdentically) {
  const char* names[] = {"multitenant",    "faults",       "faults_plan",
                         "oversub",        "serving",      "serving_disagg",
                         "serving_flow",   "network",      "fig12_twoisland",
                         "parallel"};
  for (const char* name : names) {
    SCOPED_TRACE(name);
    const std::string path = DefaultScenarioPath(name);
    Scenario s1;
    DiagnosticEngine d1;
    ASSERT_TRUE(LoadScenarioFile(path, &s1, &d1)) << d1.Render();

    // Serialize is the canonical fixed point: parsing the serialized form
    // and serializing again must be byte-identical.
    const std::string canon = s1.Serialize();
    Scenario s2;
    DiagnosticEngine d2(path + " (canonical)", canon);
    ASSERT_TRUE(ParseScenario(canon, &s2, &d2)) << d2.Render();
    EXPECT_EQ(s2.Serialize(), canon);

    // And the canonical form validates for the same family with the same
    // grid as the hand-written file.
    DiagnosticEngine d3;
    ASSERT_TRUE(ValidateForFamily(&s1, &d3)) << d3.Render();
    ASSERT_TRUE(ValidateForFamily(&s2, &d3)) << d3.Render();
    EXPECT_EQ(s2.family, s1.family);
    for (const bool quick : {false, true}) {
      const auto p1 = s1.Grid(quick).Points();
      const auto p2 = s2.Grid(quick).Points();
      ASSERT_EQ(p1.size(), p2.size());
      for (std::size_t i = 0; i < p1.size(); ++i) {
        EXPECT_EQ(p1[i].Label(), p2[i].Label());
      }
    }
  }
}

// --- runner determinism ----------------------------------------------------

TEST(ScenarioRunner, ByteIdenticalAcrossThreadCounts) {
  const std::string text =
      "{ \"name\": \"t\", \"family\": \"multitenant\",\n"
      "  \"multitenant\": { \"warmup_ms\": 5, \"horizon_ms\": 30 },\n"
      "  \"sweep\": { \"axes\": [\n"
      "    { \"name\": \"clients\", \"values\": [2] },\n"
      "    { \"name\": \"rate_scale\", \"values\": [0.5, 4.0] },\n"
      "    { \"name\": \"policy\", \"values\": [\"drop-tail\"] } ] } }\n";
  Scenario s;
  DiagnosticEngine diags("inline", text);
  ASSERT_TRUE(ParseScenario(text, &s, &diags)) << diags.Render();
  ASSERT_TRUE(ValidateForFamily(&s, &diags)) << diags.Render();

  std::string csv[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    RunOptions opts;
    opts.threads = threads[i];
    opts.check_determinism = false;  // this test is the comparison
    opts.write_json = false;
    RunResult result;
    std::string error;
    ASSERT_TRUE(RunScenario(s, opts, &result, &error)) << error;
    ASSERT_EQ(result.table.rows().size(), 2u);
    std::ostringstream os;
    result.table.WriteCsv(os);
    csv[i] = os.str();
  }
  EXPECT_EQ(csv[0], csv[1]);
}

TEST(ScenarioRunner, UnknownFamilyFailsWithError) {
  Scenario s;
  s.name = "t";
  s.family = "nope";
  RunResult result;
  std::string error;
  EXPECT_FALSE(RunScenario(s, RunOptions{}, &result, &error));
  EXPECT_NE(error.find("nope"), std::string::npos);
}

// --- result store ----------------------------------------------------------

TEST(ResultStore, GlobMatchIsSlashAware) {
  // `*` and `?` stay within one segment.
  EXPECT_TRUE(ResultStore::GlobMatch("a/*/c", "a/b/c"));
  EXPECT_FALSE(ResultStore::GlobMatch("a/*/c", "a/b/x/c"));
  EXPECT_TRUE(ResultStore::GlobMatch("a/b?/c", "a/bb/c"));
  EXPECT_FALSE(ResultStore::GlobMatch("a?b", "a/b"));
  // Greedy `*` backtracks within the segment.
  EXPECT_TRUE(ResultStore::GlobMatch("*_us", "ttft_p99_us"));
  EXPECT_TRUE(ResultStore::GlobMatch("*p99*", "ttft_p99_us"));
  EXPECT_FALSE(ResultStore::GlobMatch("p99_*", "ttft_p99_us"));
  // `**` spans any number of whole segments, including zero.
  EXPECT_TRUE(ResultStore::GlobMatch("a/**/d", "a/b/c/d"));
  EXPECT_TRUE(ResultStore::GlobMatch("a/**/d", "a/d"));
  EXPECT_TRUE(ResultStore::GlobMatch("**", "a/b/c"));
  EXPECT_TRUE(
      ResultStore::GlobMatch("serving/**/ttft_p99_*",
                             "serving/rate_per_s=1500/policy_continuous=1/"
                             "kv_scale=0.5/ttft_p99_us"));
  EXPECT_FALSE(ResultStore::GlobMatch("serving/**/p50_*",
                                      "serving/summary/deadlocks"));
}

TEST(ResultStore, LoadsBenchJsonIntoAddressedEntries) {
  const std::string dir = ::testing::TempDir();
  sweep::ResultTable table;
  table.Add({{"rate", sweep::ParamValue{std::int64_t{1500}}},
             {"kv_scale", sweep::ParamValue{0.5}}},
            {{"p99_us", 243.0}, {"goodput", 439.0}});
  table.Add({{"rate", sweep::ParamValue{std::int64_t{24000}}},
             {"kv_scale", sweep::ParamValue{0.5}}},
            {{"p99_us", 21631.0}, {"goodput", 1448.0}});
  const std::string path = sweep::WriteBenchJsonFile(
      "store_test", {{"deadlocks", 0.0}, {"speedup", 1.74}}, table, dir);
  ASSERT_FALSE(path.empty());

  ResultStore store;
  std::string error;
  ASSERT_TRUE(store.LoadBenchFile(path, &error)) << error;

  const auto summary = store.Select("store_test/summary/*");
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].path, "store_test/summary/deadlocks");
  EXPECT_DOUBLE_EQ(summary[0].value, 0.0);
  EXPECT_EQ(summary[1].path, "store_test/summary/speedup");
  EXPECT_DOUBLE_EQ(summary[1].value, 1.74);

  const auto p99 = store.Select("store_test/**/p99_us");
  ASSERT_EQ(p99.size(), 2u);
  EXPECT_EQ(p99[0].path, "store_test/rate=1500/kv_scale=0.5/p99_us");
  EXPECT_DOUBLE_EQ(p99[0].value, 243.0);
  EXPECT_EQ(p99[1].path, "store_test/rate=24000/kv_scale=0.5/p99_us");

  EXPECT_TRUE(store.Select("other_bench/**").empty());

  // LoadDir picks the file up again (entries append).
  ResultStore store2;
  const int n = store2.LoadDir(dir, &error);
  ASSERT_GE(n, 1) << error;
  EXPECT_FALSE(store2.Select("store_test/summary/speedup").empty());
  std::remove(path.c_str());
}

TEST(ResultStore, ParsesAggregationSelectors) {
  auto agg = ResultStore::ParseAggregation("p99 over serving/**/ttft_*");
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->kind, Aggregation::Kind::kPercentile);
  EXPECT_DOUBLE_EQ(agg->percentile, 99.0);
  EXPECT_EQ(agg->glob, "serving/**/ttft_*");

  agg = ResultStore::ParseAggregation("mean over a/*/b");
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->kind, Aggregation::Kind::kMean);

  // Plain globs and malformed forms fall through to a normal Select.
  EXPECT_FALSE(ResultStore::ParseAggregation("serving/**/ttft_*").has_value());
  EXPECT_FALSE(ResultStore::ParseAggregation("median over x").has_value());
  EXPECT_FALSE(ResultStore::ParseAggregation("p101 over x").has_value());
  EXPECT_FALSE(ResultStore::ParseAggregation("p99 over ").has_value());
  EXPECT_FALSE(ResultStore::ParseAggregation("p99 x").has_value());
}

TEST(ResultStore, AggregatesOverMatchingValues) {
  const std::string dir = ::testing::TempDir();
  sweep::ResultTable table;
  for (int i = 1; i <= 4; ++i) {
    table.Add({{"n", sweep::ParamValue{std::int64_t{i}}}},
              {{"lat_us", 100.0 * i}});
  }
  const std::string path =
      sweep::WriteBenchJsonFile("agg_test", {}, table, dir);
  ASSERT_FALSE(path.empty());

  ResultStore store;
  std::string error;
  ASSERT_TRUE(store.LoadBenchFile(path, &error)) << error;

  auto value = [&](const std::string& select) {
    const auto agg = ResultStore::ParseAggregation(select);
    EXPECT_TRUE(agg.has_value()) << select;
    const auto v = store.Aggregate(*agg);
    EXPECT_TRUE(v.has_value()) << select;
    return v.value_or(-1);
  };
  EXPECT_DOUBLE_EQ(value("min over agg_test/**/lat_us"), 100.0);
  EXPECT_DOUBLE_EQ(value("max over agg_test/**/lat_us"), 400.0);
  EXPECT_DOUBLE_EQ(value("mean over agg_test/**/lat_us"), 250.0);
  EXPECT_DOUBLE_EQ(value("sum over agg_test/**/lat_us"), 1000.0);
  EXPECT_DOUBLE_EQ(value("count over agg_test/**/lat_us"), 4.0);
  EXPECT_DOUBLE_EQ(value("p0 over agg_test/**/lat_us"), 100.0);
  EXPECT_DOUBLE_EQ(value("p50 over agg_test/**/lat_us"), 250.0);
  EXPECT_DOUBLE_EQ(value("p100 over agg_test/**/lat_us"), 400.0);

  // Empty matches: count is 0, everything else has no value.
  const auto none = ResultStore::ParseAggregation("mean over missing/**");
  EXPECT_FALSE(store.Aggregate(*none).has_value());
  const auto zero = ResultStore::ParseAggregation("count over missing/**");
  EXPECT_DOUBLE_EQ(store.Aggregate(*zero).value_or(-1), 0.0);
  std::remove(path.c_str());
}

TEST(ResultStore, RejectsNonBenchJson) {
  const std::string path = ::testing::TempDir() + "/BENCH_bad.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{ \"not_a_bench\": true }\n";
  }
  ResultStore store;
  std::string error;
  EXPECT_FALSE(store.LoadBenchFile(path, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pw::scenario
