// Serving-regime unit tests (docs/SERVING.md).
//
// Covers the request lifecycle (prefill -> decode -> finish), KV-cache
// growth/pin/evict accounting byte-for-byte against ObjectStore stats,
// iteration-boundary admission for the continuous batcher (and the static
// baseline's drain-before-refill), token/KV budgets, the fault-composition
// path (device crash mid-decode: KV released, requests re-prefill via the
// resource manager's remap), and a golden event-trace checksum for a fixed
// two-tenant serving scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "serving/serving.h"
#include "sim/partition.h"
#include "sim/simulator.h"

namespace pw::serving {
namespace {

using pathways::PathwaysOptions;
using pathways::PathwaysRuntime;

struct World {
  // When `external_sim` is given the world runs on that engine (e.g. an LP
  // of a PartitionedSimulator) instead of its own; `own_sim` stays idle.
  explicit World(Bytes hbm = GiB(1), int devices_per_host = 2,
                 Bytes dram = GiB(64), PathwaysOptions options = {},
                 sim::Simulator* external_sim = nullptr)
      : sim(external_sim != nullptr ? *external_sim : own_sim) {
    hw::SystemParams params = hw::SystemParams::TpuDefault();
    params.host_jitter_frac = 0;  // deterministic timing in unit tests
    params.hbm_capacity = hbm;
    params.host_dram_capacity = dram;
    cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                            /*hosts_per_island=*/1,
                                            devices_per_host);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
    client = runtime->CreateClient();
  }

  Batcher& MakeBatcher(int slice_devices, KvCacheConfig kv, BatcherConfig cfg) {
    slice = client->AllocateSlice(slice_devices).value();
    batcher = std::make_unique<Batcher>(client, slice, kv, cfg, &metrics,
                                        &trace);
    return *batcher;
  }

  Request Req(std::int64_t id, int prefill, int decode) {
    Request r;
    r.id = id;
    r.prefill_tokens = prefill;
    r.decode_tokens = decode;
    r.arrival = sim.now();
    return r;
  }

  sim::Simulator own_sim;
  sim::Simulator& sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
  pathways::Client* client = nullptr;
  pathways::VirtualSlice slice;
  ServingMetrics metrics;
  ServingTrace trace;
  std::unique_ptr<Batcher> batcher;
};

// First trace event of `kind` for `request`, or nullptr.
const ServingTrace::Event* Find(const ServingTrace& trace,
                                const std::string& kind, std::int64_t request) {
  for (const auto& e : trace.events()) {
    if (e.kind == kind && e.request == request) return &e;
  }
  return nullptr;
}

std::vector<std::string> KindsFor(const ServingTrace& trace,
                                  std::int64_t request) {
  std::vector<std::string> kinds;
  for (const auto& e : trace.events()) {
    if (e.request == request) kinds.push_back(e.kind);
  }
  return kinds;
}

// ------------------------------------------------------ request lifecycle --

TEST(ServingLifecycleTest, SingleRequestPrefillsDecodesFinishes) {
  World w;
  BatcherConfig cfg;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);

  ASSERT_TRUE(b.Offer(w.Req(1, /*prefill=*/8, /*decode=*/4)));
  w.sim.Run();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(b.idle());
  // One prefill iteration plus one per remaining decode token.
  EXPECT_EQ(b.iterations(), 4);
  EXPECT_EQ(b.finished(), 1);
  EXPECT_EQ(b.shed(), 0);
  EXPECT_EQ(w.metrics.arrivals(), 1);
  EXPECT_EQ(w.metrics.prefills(), 1);
  EXPECT_EQ(w.metrics.tokens(), 3);  // tokens after the first
  EXPECT_EQ(w.metrics.finished(), 1);
  EXPECT_GT(w.metrics.TtftUs(50), 0.0);
  EXPECT_GT(w.metrics.TokenLatencyUs(50), 0.0);

  // Semantic event order for the request.
  EXPECT_EQ(KindsFor(w.trace, 1),
            (std::vector<std::string>{"arrive", "admit", "prefill", "token",
                                      "token", "token", "finish"}));

  // Every byte returned: no KV sequences, no live store buffers (iteration
  // outputs released), zero logical bytes on every device.
  EXPECT_EQ(b.kv().live_sequences(), 0);
  EXPECT_EQ(b.kv().live_bytes_per_shard(), 0);
  pathways::ObjectStore& store = w.runtime->object_store();
  EXPECT_EQ(store.live_buffers(), 0);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(d)), 0);
    EXPECT_EQ(store.hbm_used(hw::DeviceId(d)), 0);
  }
  // One KV grow per decode step per shard (3 steps x 2 shards).
  EXPECT_EQ(store.grows_completed(), 6);
  EXPECT_EQ(store.grown_bytes_total(),
            6 * KvCacheConfig{}.bytes_per_token_per_shard);
}

// --------------------------------------------- KV accounting, byte-for-byte --

// Direct KvCache drive (no batcher): growth lands in the store exactly as
// the mirror claims, at creation, after appends, and after release.
TEST(KvAccountingTest, GrowthMatchesObjectStoreByteForByte) {
  World w(/*hbm=*/GiB(1), /*devices_per_host=*/2);
  w.slice = w.client->AllocateSlice(2).value();
  const Bytes tok = KiB(16);
  KvCache kv(w.runtime.get(), w.client->id(), KvCacheConfig{tok});
  pathways::ObjectStore& store = w.runtime->object_store();

  kv.CreateSequence(1, w.slice, /*prompt_tokens=*/3);
  w.sim.Run();
  const pathways::ShardedBuffer& h = kv.handle(1);
  ASSERT_EQ(h.num_shards(), 2);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(store.shard_bytes(h.id, s), 3 * tok);
    EXPECT_EQ(store.shard_bytes(h.id, s), h.shards[s].bytes);
  }
  EXPECT_EQ(kv.bytes_of(1), 2 * 3 * tok);
  EXPECT_EQ(kv.live_bytes_per_shard(), 3 * tok);

  kv.MarkReady(1);
  kv.Append(1, 2);
  kv.Append(1, 2);
  w.sim.Run();
  EXPECT_EQ(kv.tokens_of(1), 7);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(store.shard_bytes(h.id, s), 7 * tok);
    EXPECT_EQ(store.shard_bytes(h.id, s), h.shards[s].bytes);
    EXPECT_EQ(store.logical_live_bytes(
                  h.shards[static_cast<std::size_t>(s)].device),
              7 * tok);
  }
  EXPECT_EQ(store.grows_completed(), 4);  // two Appends x two shards
  EXPECT_EQ(store.grown_bytes_total(), 4 * 2 * tok);
  EXPECT_EQ(kv.appends(), 2);

  kv.Release(1);
  w.sim.Run();
  EXPECT_EQ(kv.live_sequences(), 0);
  EXPECT_EQ(kv.live_bytes_per_shard(), 0);
  EXPECT_EQ(store.live_buffers(), 0);
  for (int d = 0; d < 2; ++d) {
    EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(d)), 0);
    EXPECT_EQ(store.hbm_used(hw::DeviceId(d)), 0);
  }
}

// A pinned sequence is never a spill victim; unpinning it unblocks the
// waiter through eviction, with spill bytes accounted exactly.
TEST(KvAccountingTest, PinBlocksEvictionUnpinReleasesIt) {
  World w(/*hbm=*/KiB(64), /*devices_per_host=*/1);
  w.slice = w.client->AllocateSlice(1).value();
  const Bytes tok = KiB(16);
  KvCache kv(w.runtime.get(), w.client->id(), KvCacheConfig{tok});
  pathways::ObjectStore& store = w.runtime->object_store();

  kv.CreateSequence(1, w.slice, 3);  // 48 KiB of 64 KiB
  w.sim.Run();
  kv.MarkReady(1);
  kv.Pin(1);

  auto granted = kv.CreateSequence(2, w.slice, 2);  // 32 KiB: must evict S1
  w.sim.Run();
  EXPECT_FALSE(granted.ready());  // S1 pinned: nothing to evict, S2 waits
  EXPECT_EQ(store.spills_completed(), 0);

  kv.Unpin(1);
  w.sim.Run();
  EXPECT_TRUE(granted.ready());
  EXPECT_TRUE(kv.AnyShardInDram(1));
  EXPECT_FALSE(kv.AnyShardInDram(2));
  EXPECT_EQ(store.spills_completed(), 1);
  EXPECT_EQ(store.spilled_bytes_total(), 3 * tok);
  EXPECT_EQ(store.hbm_used(hw::DeviceId(0)), 2 * tok);
  // Logical bytes count HBM-resident + spilled.
  EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(0)), 5 * tok);

  kv.Release(1);
  kv.Release(2);
  w.sim.Run();
  EXPECT_EQ(store.live_buffers(), 0);
  EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(0)), 0);
}

// Appending to a spilled sequence with host-DRAM headroom grows it in
// place in DRAM (no HBM traffic); the restore happens on next use.
TEST(KvAccountingTest, AppendToSpilledSequenceGrowsInDram) {
  World w(/*hbm=*/KiB(64), /*devices_per_host=*/1, /*dram=*/KiB(128));
  w.slice = w.client->AllocateSlice(1).value();
  const Bytes tok = KiB(16);
  KvCache kv(w.runtime.get(), w.client->id(), KvCacheConfig{tok});
  pathways::ObjectStore& store = w.runtime->object_store();

  kv.CreateSequence(1, w.slice, 3);
  w.sim.Run();
  kv.MarkReady(1);
  kv.CreateSequence(2, w.slice, 2);  // evicts S1 (48 KiB) to DRAM
  w.sim.Run();
  ASSERT_TRUE(kv.AnyShardInDram(1));

  kv.Append(1, 1);
  w.sim.Run();
  EXPECT_TRUE(kv.AnyShardInDram(1));  // grew where it lay
  EXPECT_EQ(store.shard_bytes(kv.handle(1).id, 0), 4 * tok);
  EXPECT_EQ(store.grows_completed(), 1);
  EXPECT_EQ(store.grown_bytes_total(), tok);
  EXPECT_EQ(store.hbm_used(hw::DeviceId(0)), 2 * tok);  // only S2
  EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(0)), 6 * tok);

  kv.Release(1);
  kv.Release(2);
  w.sim.Run();
  EXPECT_EQ(store.live_buffers(), 0);
}

// Appending to a spilled sequence when DRAM is exhausted forces a restore
// at the grown size: one HBM reservation for old+delta, DRAM freed at the
// grant, residency back to HBM.
TEST(KvAccountingTest, AppendWithDramExhaustedForcesRestore) {
  World w(/*hbm=*/KiB(64), /*devices_per_host=*/1, /*dram=*/KiB(48));
  w.slice = w.client->AllocateSlice(1).value();
  const Bytes tok = KiB(16);
  KvCache kv(w.runtime.get(), w.client->id(), KvCacheConfig{tok});
  pathways::ObjectStore& store = w.runtime->object_store();

  kv.CreateSequence(1, w.slice, 3);
  w.sim.Run();
  kv.MarkReady(1);
  kv.CreateSequence(2, w.slice, 2);  // evicts S1: DRAM now 48/48 KiB
  w.sim.Run();
  ASSERT_TRUE(kv.AnyShardInDram(1));
  kv.Release(2);  // HBM fully free again
  w.sim.Run();

  kv.Append(1, 1);  // DRAM append impossible -> restore at 64 KiB
  w.sim.Run();
  EXPECT_FALSE(kv.AnyShardInDram(1));
  EXPECT_EQ(store.shard_bytes(kv.handle(1).id, 0), 4 * tok);
  EXPECT_EQ(store.fills_completed(), 1);
  EXPECT_EQ(store.grows_completed(), 1);
  EXPECT_EQ(store.hbm_used(hw::DeviceId(0)), 4 * tok);
  EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(0)), 4 * tok);

  kv.Release(1);
  w.sim.Run();
  EXPECT_EQ(store.live_buffers(), 0);
  EXPECT_EQ(store.hbm_used(hw::DeviceId(0)), 0);
}

// ------------------------------------------------- admission at boundaries --

TEST(BatcherAdmissionTest, ContinuousAdmitsOnlyAtIterationBoundaries) {
  World w;
  BatcherConfig cfg;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);

  ASSERT_TRUE(b.Offer(w.Req(1, 8, /*decode=*/6)));
  w.sim.Schedule(Duration::Micros(1), [&] { b.Offer(w.Req(2, 8, 2)); });

  // B arrives mid-iteration: it must queue, not join the running batch.
  ASSERT_TRUE(w.sim.RunUntilPredicate([&] { return w.metrics.arrivals() == 2; }));
  EXPECT_EQ(b.running(), 1);
  EXPECT_EQ(b.queue_depth(), 1u);

  // B joins at the next boundary — after A's first iteration completed.
  ASSERT_TRUE(w.sim.RunUntilPredicate([&] { return b.running() == 2; }));
  EXPECT_EQ(b.iterations(), 2);
  const auto* prefill_a = Find(w.trace, "prefill", 1);
  const auto* admit_b = Find(w.trace, "admit", 2);
  ASSERT_NE(prefill_a, nullptr);
  ASSERT_NE(admit_b, nullptr);
  EXPECT_GE(admit_b->at_ns, prefill_a->at_ns);

  w.sim.Run();
  EXPECT_EQ(b.finished(), 2);
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 0);
}

// Both straggler tests use the same shape: a warm-up request (the very
// first Offer starts its iteration alone, synchronously), then a straggler
// + a short request forming one batch of two (max_batch = 2), then a late
// request 3 that can only run once a slot frees.
void OfferStragglerScenario(World& w, Batcher& b) {
  ASSERT_TRUE(b.Offer(w.Req(0, 4, /*decode=*/1)));   // warm-up, runs alone
  ASSERT_TRUE(b.Offer(w.Req(1, 8, /*decode=*/10)));  // straggler
  ASSERT_TRUE(b.Offer(w.Req(2, 8, /*decode=*/2)));
  ASSERT_TRUE(b.Offer(w.Req(3, 8, /*decode=*/2)));
}

TEST(BatcherAdmissionTest, StaticBaselineDrainsBeforeRefill) {
  World w;
  BatcherConfig cfg;
  cfg.policy = BatchPolicy::kStatic;
  cfg.max_batch = 2;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);
  OfferStragglerScenario(w, b);
  w.sim.Run();

  EXPECT_EQ(b.finished(), 4);
  // Static batching: request 3 waits for the whole batch {1, 2} — including
  // the straggler — even though request 2 finished long before.
  const auto* finish_1 = Find(w.trace, "finish", 1);
  const auto* finish_2 = Find(w.trace, "finish", 2);
  const auto* admit_3 = Find(w.trace, "admit", 3);
  ASSERT_NE(finish_1, nullptr);
  ASSERT_NE(finish_2, nullptr);
  ASSERT_NE(admit_3, nullptr);
  EXPECT_LT(finish_2->at_ns, finish_1->at_ns);
  EXPECT_GE(admit_3->at_ns, finish_1->at_ns);
}

TEST(BatcherAdmissionTest, ContinuousBackfillsTheStragglersSlot) {
  World w;
  BatcherConfig cfg;  // continuous
  cfg.max_batch = 2;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);
  OfferStragglerScenario(w, b);
  w.sim.Run();

  EXPECT_EQ(b.finished(), 4);
  // Continuous batching backfills request 2's slot with request 3 while the
  // straggler still runs.
  const auto* finish_1 = Find(w.trace, "finish", 1);
  const auto* finish_2 = Find(w.trace, "finish", 2);
  const auto* admit_3 = Find(w.trace, "admit", 3);
  ASSERT_NE(finish_1, nullptr);
  ASSERT_NE(finish_2, nullptr);
  ASSERT_NE(admit_3, nullptr);
  EXPECT_GE(admit_3->at_ns, finish_2->at_ns);
  EXPECT_LT(admit_3->at_ns, finish_1->at_ns);
}

TEST(BatcherAdmissionTest, TokenBudgetDefersPromptToNextBoundary) {
  World w;
  BatcherConfig cfg;
  cfg.token_budget = 8;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);

  ASSERT_TRUE(b.Offer(w.Req(1, /*prefill=*/6, /*decode=*/4)));
  ASSERT_TRUE(b.Offer(w.Req(2, /*prefill=*/6, /*decode=*/2)));
  w.sim.Run();

  EXPECT_EQ(b.finished(), 2);
  // Iteration 1 holds only request 1 (6 + 6 > 8); request 2's prompt fits
  // beside the now-decoding request 1 (1 + 6 <= 8) at the next boundary.
  const auto* prefill_1 = Find(w.trace, "prefill", 1);
  const auto* admit_2 = Find(w.trace, "admit", 2);
  ASSERT_NE(prefill_1, nullptr);
  ASSERT_NE(admit_2, nullptr);
  EXPECT_GE(admit_2->at_ns, prefill_1->at_ns);
}

TEST(BatcherAdmissionTest, OversizedPromptAdmittedSoloNotWedged) {
  World w;
  BatcherConfig cfg;
  cfg.token_budget = 8;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);

  // Prompt larger than the whole per-iteration budget: admitted alone
  // rather than wedging the queue head forever.
  ASSERT_TRUE(b.Offer(w.Req(1, /*prefill=*/32, /*decode=*/2)));
  w.sim.Run();
  EXPECT_EQ(b.finished(), 1);
  EXPECT_TRUE(b.idle());
}

TEST(BatcherAdmissionTest, KvBudgetShedsOversizedAndSerializesTheRest) {
  World w;
  const Bytes tok = KiB(16);
  BatcherConfig cfg;
  cfg.kv_budget_per_device = 10 * tok;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{tok}, cfg);

  // Projected KV = prefill + decode - 1 tokens. 8 + 5 - 1 = 12 > 10: shed.
  EXPECT_FALSE(b.Offer(w.Req(7, /*prefill=*/8, /*decode=*/5)));
  EXPECT_EQ(b.shed(), 1);
  const auto* shed = Find(w.trace, "shed", 7);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->detail, 1);  // shed for size, not queue overflow

  // Two 6-token-KV requests (3 + 4 - 1): 12 > 10, so the second waits for
  // the first to finish and release its KV.
  ASSERT_TRUE(b.Offer(w.Req(1, 3, 4)));
  ASSERT_TRUE(b.Offer(w.Req(2, 3, 4)));
  w.sim.Run();
  EXPECT_EQ(b.finished(), 2);
  const auto* finish_1 = Find(w.trace, "finish", 1);
  const auto* admit_2 = Find(w.trace, "admit", 2);
  ASSERT_NE(finish_1, nullptr);
  ASSERT_NE(admit_2, nullptr);
  EXPECT_GE(admit_2->at_ns, finish_1->at_ns);
  EXPECT_EQ(w.metrics.sheds(), 1);
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 0);
}

TEST(BatcherAdmissionTest, QueueOverflowSheds) {
  World w;
  BatcherConfig cfg;
  cfg.max_batch = 1;
  cfg.queue_capacity = 2;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);

  ASSERT_TRUE(b.Offer(w.Req(1, 4, 8)));  // runs
  ASSERT_TRUE(b.Offer(w.Req(2, 4, 2)));  // queued
  ASSERT_TRUE(b.Offer(w.Req(3, 4, 2)));  // queued (capacity)
  EXPECT_FALSE(b.Offer(w.Req(4, 4, 2)));  // shed
  w.sim.Run();
  EXPECT_EQ(b.finished(), 3);
  EXPECT_EQ(b.shed(), 1);
  const auto* shed = Find(w.trace, "shed", 4);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->detail, 0);  // overflow, not size
}

// ---------------------------------------------------- fault composition --

// Crash a slice device mid-decode: the running batch aborts, every
// sequence's KV is released (no leaked store refs), the requests re-enter
// the queue, and the retry re-prefills against the resource manager's
// remapped device (PR-3 path) and completes.
TEST(ServingFaultTest, CrashMidDecodeReleasesKvAndCompletesViaRemap) {
  World w(/*hbm=*/GiB(1), /*devices_per_host=*/4);
  BatcherConfig cfg;
  Batcher& b = w.MakeBatcher(2, KvCacheConfig{}, cfg);

  ASSERT_TRUE(b.Offer(w.Req(1, /*prefill=*/8, /*decode=*/40)));

  faults::FaultPlan plan;
  plan.CrashDevice(hw::DeviceId(0), TimePoint() + Duration::Micros(700),
                   /*down_for=*/Duration::Millis(3));
  faults::FaultInjector injector(w.cluster.get(), w.runtime.get(),
                                 std::move(plan));
  injector.Arm();
  w.sim.Run();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_GE(b.aborted_iterations(), 1);
  EXPECT_EQ(b.finished(), 1);
  EXPECT_TRUE(b.idle());

  // The request went back to the queue and re-prefilled from scratch.
  const auto* requeue = Find(w.trace, "requeue", 1);
  ASSERT_NE(requeue, nullptr);
  EXPECT_GE(requeue->detail, 2);  // attempts
  EXPECT_GE(w.metrics.prefills(), 2);

  // Remap actually happened (spare device in the island took over) and the
  // finish came after it.
  EXPECT_GE(w.runtime->resource_manager().vdevs_remapped(), 1);

  // No leaked KV: sequences, store refs, and device bytes all zero.
  EXPECT_EQ(b.kv().live_sequences(), 0);
  pathways::ObjectStore& store = w.runtime->object_store();
  EXPECT_EQ(store.live_buffers(), 0);
  for (int d = 0; d < 4; ++d) {
    EXPECT_EQ(store.logical_live_bytes(hw::DeviceId(d)), 0);
    EXPECT_EQ(store.hbm_used(hw::DeviceId(d)), 0);
  }
}

// ------------------------------------------------------------ golden trace --

// Fixed two-tenant scenario under KV pressure (HBM sized so paused KV
// spills). Any change to batching, KV growth, spill/restore, or arrival
// semantics moves these constants; update them only with an explanation of
// what legitimately changed. The same scenario (and the same constants) must
// also hold when the world runs on the partitioned engine — that is the
// serial/parallel equivalence gate for the serving stack.
void RunTwoTenantGoldenScenario(World& w, const std::function<void()>& drain,
                                const std::string& label) {
  SCOPED_TRACE(label);
  KvCacheConfig kv;
  kv.bytes_per_token_per_shard = KiB(4);
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.token_budget = 128;
  cfg.kv_budget_per_device = KiB(512);
  Batcher& b = w.MakeBatcher(2, kv, cfg);

  TenantSpec t0;
  t0.arrivals.process = workload::ArrivalProcess::kPoisson;
  t0.arrivals.rate_per_sec = 20000;
  t0.arrivals.horizon = Duration::Millis(2);
  t0.arrivals.seed = 11;
  t0.min_prefill_tokens = 8;
  t0.max_prefill_tokens = 32;
  t0.min_decode_tokens = 4;
  t0.max_decode_tokens = 8;
  t0.token_seed = 3;

  TenantSpec t1;
  t1.arrivals.process = workload::ArrivalProcess::kUniform;
  t1.arrivals.rate_per_sec = 15000;
  t1.arrivals.horizon = Duration::Millis(2);
  t1.arrivals.seed = 22;
  t1.min_prefill_tokens = 16;
  t1.max_prefill_tokens = 48;
  t1.min_decode_tokens = 2;
  t1.max_decode_tokens = 6;
  t1.token_seed = 5;

  ServingTenant tenant0(0, &b, &w.sim, t0);
  ServingTenant tenant1(1, &b, &w.sim, t1);
  tenant0.Start();
  tenant1.Start();
  drain();

  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(b.idle());
  EXPECT_EQ(w.metrics.arrivals(), tenant0.arrivals_generated() +
                                      tenant1.arrivals_generated());
  EXPECT_EQ(b.finished() + b.shed(), w.metrics.arrivals());
  EXPECT_EQ(b.kv().live_sequences(), 0);
  EXPECT_EQ(w.runtime->object_store().live_buffers(), 0)
      << w.runtime->object_store().DumpShardStates();

  // Golden constants — printed on mismatch for easy (deliberate) updates.
  const std::uint64_t kGoldenChecksum = 0xc637d5902da7eb4fULL;
  const std::int64_t kGoldenFinished = 66;
  const std::int64_t kGoldenIterations = 100;
  std::ostringstream actual;
  actual << "checksum 0x" << std::hex << w.trace.Checksum() << std::dec
         << " finished " << b.finished() << " iterations " << b.iterations()
         << " arrivals " << w.metrics.arrivals() << " spills "
         << w.runtime->object_store().spills_completed();
  EXPECT_EQ(w.trace.Checksum(), kGoldenChecksum) << actual.str();
  EXPECT_EQ(b.finished(), kGoldenFinished) << actual.str();
  EXPECT_EQ(b.iterations(), kGoldenIterations) << actual.str();
  // The scenario is only interesting if memory pressure was real.
  EXPECT_GT(w.runtime->object_store().spills_completed(), 0) << actual.str();
}

TEST(ServingGoldenTest, TwoTenantScenarioTraceChecksum) {
  World w(/*hbm=*/KiB(640), /*devices_per_host=*/2);
  RunTwoTenantGoldenScenario(w, [&] { w.sim.Run(); }, "serial");
}

// Same scenario hosted on LP 0 of the partitioned engine, at several
// sim-thread counts. The trace checksum must be byte-identical to the
// serial engine's: with all events on one LP, the conservative windows are
// unbounded and the partitioned run degenerates to the serial schedule.
TEST(ServingGoldenTest, TwoTenantScenarioPartitionedEngineMatchesGolden) {
  for (int threads : {1, 4}) {
    sim::PartitionedSimulator part(sim::PartitionedSimulator::Options{
        /*num_lps=*/4, threads, Duration::Micros(20)});
    World w(/*hbm=*/KiB(640), /*devices_per_host=*/2, GiB(64), {},
            &part.lp(0));
    RunTwoTenantGoldenScenario(
        w, [&] { part.Run(); },
        "partitioned sim_threads=" + std::to_string(threads));
    EXPECT_FALSE(part.Deadlocked());
  }
}

}  // namespace
}  // namespace pw::serving
