#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/future.h"
#include "sim/serial_resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "sim/throughput.h"
#include "sim/trace.h"

namespace pw::sim {
namespace {

// ------------------------------------------------------------ Simulator --

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Duration::Micros(30), [&] { order.push_back(3); });
  sim.Schedule(Duration::Micros(10), [&] { order.push_back(1); });
  sim.Schedule(Duration::Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint() + Duration::Micros(30));
}

TEST(SimulatorTest, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Duration::Micros(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NestedSchedulingFromCallbacks) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Duration::Micros(1), [&] {
    sim.Schedule(Duration::Micros(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ToMicros(), 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(Duration::Micros(10), [&] { ++ran; });
  sim.Schedule(Duration::Micros(30), [&] { ++ran; });
  sim.RunUntil(TimePoint() + Duration::Micros(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now().ToMicros(), 20.0);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator sim;
  sim.Schedule(Duration::Micros(5), [] {});
  sim.RunFor(Duration::Micros(3));
  EXPECT_EQ(sim.now().ToMicros(), 3.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Duration::Micros(i + 1), [&] { ++count; });
  }
  const bool hit = sim.RunUntilPredicate([&] { return count == 4; });
  EXPECT_TRUE(hit);
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, RunUntilPredicateFalseWhenQueueDrains) {
  Simulator sim;
  sim.Schedule(Duration::Micros(1), [] {});
  EXPECT_FALSE(sim.RunUntilPredicate([] { return false; }));
}

TEST(SimulatorTest, BlockedProbesReportDeadlock) {
  Simulator sim;
  bool blocked = true;
  sim.RegisterBlockedProbe([&]() -> std::string {
    return blocked ? "devA waiting at collective" : "";
  });
  sim.Run();
  EXPECT_TRUE(sim.Deadlocked());
  ASSERT_EQ(sim.BlockedEntities().size(), 1u);
  blocked = false;
  EXPECT_FALSE(sim.Deadlocked());
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.Schedule(Duration::Nanos(100 * (i % 7)), [&order, i] { order.push_back(i); });
    }
    sim.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

// -------------------------------------------------------------- Futures --

TEST(FutureTest, ThenRunsAfterSet) {
  Simulator sim;
  SimPromise<int> p(&sim);
  int got = 0;
  p.future().Then([&](const int& v) { got = v; });
  p.Set(42);
  EXPECT_EQ(got, 0);  // callbacks are events, not inline calls
  sim.Run();
  EXPECT_EQ(got, 42);
}

TEST(FutureTest, ThenOnAlreadyReadyFuture) {
  Simulator sim;
  auto fut = ReadyFuture(&sim, std::string("hello"));
  std::string got;
  fut.Then([&](const std::string& v) { got = v; });
  sim.Run();
  EXPECT_EQ(got, "hello");
}

TEST(FutureTest, MultipleCallbacksAllFire) {
  Simulator sim;
  SimPromise<int> p(&sim);
  int sum = 0;
  for (int i = 0; i < 5; ++i) p.future().Then([&](const int& v) { sum += v; });
  p.Set(10);
  sim.Run();
  EXPECT_EQ(sum, 50);
}

TEST(FutureTest, ReadyAndValueObservable) {
  Simulator sim;
  SimPromise<int> p(&sim);
  auto f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.Set(5);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.value(), 5);
}

TEST(FutureTest, WhenAllEmptyCompletesImmediately) {
  Simulator sim;
  auto all = WhenAll(&sim, {});
  sim.Run();
  EXPECT_TRUE(all.ready());
}

TEST(FutureTest, WhenAllWaitsForEveryInput) {
  Simulator sim;
  SimPromise<Unit> a(&sim), b(&sim), c(&sim);
  auto all = WhenAll(&sim, {a.future(), b.future(), c.future()});
  a.Set(Unit{});
  b.Set(Unit{});
  sim.Run();
  EXPECT_FALSE(all.ready());
  c.Set(Unit{});
  sim.Run();
  EXPECT_TRUE(all.ready());
}

TEST(CountdownLatchTest, FiresAtZero) {
  Simulator sim;
  CountdownLatch latch(&sim, 3);
  latch.CountDown();
  latch.CountDown();
  sim.Run();
  EXPECT_FALSE(latch.done().ready());
  latch.CountDown();
  sim.Run();
  EXPECT_TRUE(latch.done().ready());
}

TEST(CountdownLatchTest, ZeroCountIsImmediatelyDone) {
  Simulator sim;
  CountdownLatch latch(&sim, 0);
  EXPECT_TRUE(latch.done().ready());
}

// ----------------------------------------------------------- Coroutines --

Task ProducerConsumer(Simulator* sim, SimFuture<int> in, int* out) {
  const int v = co_await in;
  co_await SleepFor(sim, Duration::Micros(10));
  *out = v * 2;
}

TEST(TaskTest, AwaitsFutureAndSleeps) {
  Simulator sim;
  SimPromise<int> p(&sim);
  int out = 0;
  ProducerConsumer(&sim, p.future(), &out);
  sim.Schedule(Duration::Micros(5), [&] { p.Set(21); });
  sim.Run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(sim.now().ToMicros(), 15.0);
}

Task ChainStep(Simulator* sim, SimFuture<int> in, SimPromise<int> out) {
  const int v = co_await in;
  co_await SleepFor(sim, Duration::Micros(1));
  out.Set(v + 1);
}

TEST(TaskTest, ChainsOfCoroutines) {
  Simulator sim;
  SimPromise<int> head(&sim);
  SimFuture<int> cur = head.future();
  for (int i = 0; i < 10; ++i) {
    SimPromise<int> next(&sim);
    ChainStep(&sim, cur, next);
    cur = next.future();
  }
  head.Set(0);
  sim.Run();
  ASSERT_TRUE(cur.ready());
  EXPECT_EQ(cur.value(), 10);
  EXPECT_GE(sim.now().ToMicros(), 10.0);
}

Task AwaitReadyFuture(Simulator* sim, int* out) {
  *out = co_await ReadyFuture(sim, 7);
}

TEST(TaskTest, ReadyFutureDoesNotSuspend) {
  Simulator sim;
  int out = 0;
  AwaitReadyFuture(&sim, &out);
  // await_ready() was true: no suspension, value available synchronously.
  EXPECT_EQ(out, 7);
}

// ------------------------------------------------------- SerialResource --

TEST(SerialResourceTest, SerializesWork) {
  Simulator sim;
  SerialResource cpu(&sim, "cpu0");
  std::vector<double> completion_us;
  for (int i = 0; i < 3; ++i) {
    cpu.Submit(Duration::Micros(10),
               [&] { completion_us.push_back(sim.now().ToMicros()); });
  }
  sim.Run();
  EXPECT_EQ(completion_us, (std::vector<double>{10, 20, 30}));
  EXPECT_EQ(cpu.jobs_processed(), 3);
  EXPECT_EQ(cpu.total_busy().ToMicros(), 30.0);
}

TEST(SerialResourceTest, IdleGapsDoNotAccumulate) {
  Simulator sim;
  SerialResource cpu(&sim, "cpu0");
  double done2 = 0;
  cpu.Submit(Duration::Micros(5));
  sim.Schedule(Duration::Micros(100), [&] {
    cpu.Submit(Duration::Micros(5), [&] { done2 = sim.now().ToMicros(); });
  });
  sim.Run();
  EXPECT_EQ(done2, 105.0);  // starts fresh at t=100, not queued behind t=5
}

TEST(SerialResourceTest, SubmitAsyncCompletesAsFuture) {
  Simulator sim;
  SerialResource cpu(&sim, "cpu0");
  auto f = cpu.SubmitAsync(Duration::Micros(7));
  sim.Run();
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(sim.now().ToMicros(), 7.0);
}

// ------------------------------------------------------------ Throughput --

TEST(ThroughputMeterTest, SteadyStateRate) {
  Simulator sim;
  ThroughputMeter meter(&sim);
  // Warm-up: 100us, then count 1000 completions over 1ms.
  sim.Schedule(Duration::Micros(100), [&] { meter.StartWindow(); });
  for (int i = 1; i <= 1000; ++i) {
    sim.Schedule(Duration::Micros(100) + Duration::Nanos(1000 * i),
                 [&] { meter.Count(); });
  }
  sim.Run();
  EXPECT_NEAR(meter.RatePerSecond(), 1e6, 1.0);
}

// ----------------------------------------------------------------- Trace --

TEST(TraceTest, UtilizationSingleResource) {
  TraceRecorder tr;
  const TimePoint t0;
  tr.Record("dev0", 0, "step", t0, t0 + Duration::Micros(50));
  tr.Record("dev0", 0, "step", t0 + Duration::Micros(75), t0 + Duration::Micros(100));
  EXPECT_DOUBLE_EQ(tr.Utilization("dev0", t0, t0 + Duration::Micros(100)), 0.75);
}

TEST(TraceTest, BusyPerClientShares) {
  TraceRecorder tr;
  const TimePoint t0;
  tr.Record("dev0", 1, "a", t0, t0 + Duration::Micros(10));
  tr.Record("dev0", 2, "b", t0 + Duration::Micros(10), t0 + Duration::Micros(30));
  tr.Record("dev1", 2, "b", t0, t0 + Duration::Micros(20));
  auto busy = tr.BusyPerClient(t0, t0 + Duration::Micros(30));
  EXPECT_EQ(busy[1].ToMicros(), 10.0);
  EXPECT_EQ(busy[2].ToMicros(), 40.0);
}

TEST(TraceTest, ClipsSpansToWindow) {
  TraceRecorder tr;
  const TimePoint t0;
  tr.Record("dev0", 0, "x", t0, t0 + Duration::Micros(100));
  EXPECT_DOUBLE_EQ(
      tr.Utilization("dev0", t0 + Duration::Micros(40), t0 + Duration::Micros(60)),
      1.0);
}

TEST(TraceTest, AsciiRenderShowsClients) {
  TraceRecorder tr;
  const TimePoint t0;
  tr.Record("dev0", 1, "a", t0, t0 + Duration::Micros(50));
  tr.Record("dev0", 2, "b", t0 + Duration::Micros(50), t0 + Duration::Micros(100));
  const std::string art = tr.RenderAscii(t0, t0 + Duration::Micros(100), 10);
  EXPECT_NE(art.find("1111122222"), std::string::npos);
  EXPECT_NE(art.find("dev0"), std::string::npos);
}

TEST(TraceTest, MeanUtilizationAcrossResources) {
  TraceRecorder tr;
  const TimePoint t0;
  tr.Record("dev0", 0, "x", t0, t0 + Duration::Micros(100));
  tr.Record("dev1", 0, "x", t0, t0 + Duration::Micros(50));
  EXPECT_DOUBLE_EQ(tr.MeanUtilization(t0, t0 + Duration::Micros(100)), 0.75);
}

}  // namespace
}  // namespace pw::sim
