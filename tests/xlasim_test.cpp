#include <gtest/gtest.h>

#include "xlasim/compiled_function.h"
#include "xlasim/cost_model.h"
#include "xlasim/hlo.h"
#include "xlasim/shape.h"

namespace pw::xlasim {
namespace {

// ----------------------------------------------------------------- Shape --

TEST(ShapeTest, ElementsAndBytes) {
  Shape s(DType::kF32, {4, 8});
  EXPECT_EQ(s.num_elements(), 32);
  EXPECT_EQ(s.byte_size(), 128);
  EXPECT_EQ(s.ToString(), "f32[4,8]");
}

TEST(ShapeTest, ScalarHasOneElement) {
  Shape s = Shape::Scalar(DType::kBF16);
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.byte_size(), 2);
}

TEST(ShapeTest, ShardDimDividesEvenly) {
  Shape s(DType::kF32, {128, 64});
  Shape shard = s.ShardDim(0, 8);
  EXPECT_EQ(shard.dims(), (std::vector<std::int64_t>{16, 64}));
  EXPECT_EQ(shard.byte_size(), s.byte_size() / 8);
}

TEST(ShapeTest, DTypeSizes) {
  EXPECT_EQ(DTypeSize(DType::kF32), 4);
  EXPECT_EQ(DTypeSize(DType::kBF16), 2);
  EXPECT_EQ(DTypeSize(DType::kS32), 4);
  EXPECT_EQ(DTypeSize(DType::kPred), 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape(DType::kF32, {2, 3}), Shape(DType::kF32, {2, 3}));
  EXPECT_NE(Shape(DType::kF32, {2, 3}), Shape(DType::kBF16, {2, 3}));
  EXPECT_NE(Shape(DType::kF32, {2, 3}), Shape(DType::kF32, {3, 2}));
}

// ------------------------------------------------------------------- HLO --

TEST(HloBuilderTest, BuildsElementwiseChain) {
  HloBuilder b("f");
  const int x = b.Parameter(Shape(DType::kF32, {16}));
  const int y = b.Add(x, x);
  const int z = b.Multiply(y, y);
  HloModule m = std::move(b).Build();
  EXPECT_EQ(m.num_instructions(), 3);
  EXPECT_EQ(m.root(), z);
  EXPECT_EQ(m.root_shape(), Shape(DType::kF32, {16}));
  EXPECT_EQ(m.parameters(), (std::vector<int>{x}));
}

TEST(HloBuilderTest, MatMulShapeInference) {
  HloBuilder b("mm");
  const int a = b.Parameter(Shape(DType::kBF16, {32, 64}));
  const int w = b.Parameter(Shape(DType::kBF16, {64, 128}));
  const int y = b.MatMul(a, w);
  EXPECT_EQ(b.shape_of(y), Shape(DType::kBF16, {32, 128}));
}

TEST(HloBuilderTest, AllGatherGrowsGatherDim) {
  HloBuilder b("ag");
  const int x = b.Parameter(Shape(DType::kF32, {16, 8}));
  const int y = b.AllGather(x, /*gather_dim=*/1, /*num_shards=*/4);
  EXPECT_EQ(b.shape_of(y), Shape(DType::kF32, {16, 32}));
}

TEST(HloBuilderTest, ReduceScatterShrinksDim) {
  HloBuilder b("rs");
  const int x = b.Parameter(Shape(DType::kF32, {16, 8}));
  const int y = b.ReduceScatter(x, /*scatter_dim=*/0, /*num_shards=*/4);
  EXPECT_EQ(b.shape_of(y), Shape(DType::kF32, {4, 8}));
}

TEST(HloBuilderTest, EmbeddingLookupShape) {
  HloBuilder b("emb");
  const int ids = b.Parameter(Shape(DType::kS32, {256}));
  const int table = b.Parameter(Shape(DType::kBF16, {32000, 1024}));
  const int y = b.EmbeddingLookup(ids, table);
  EXPECT_EQ(b.shape_of(y), Shape(DType::kBF16, {256, 1024}));
}

TEST(HloBuilderTest, OpcodeNames) {
  EXPECT_EQ(HloOpcodeName(HloOpcode::kMatMul), "matmul");
  EXPECT_EQ(HloOpcodeName(HloOpcode::kAllReduce), "all-reduce");
}

// ------------------------------------------------------------- CostModel --

TEST(CostModelTest, MatMulFlopsDominateLargeShapes) {
  CostParams p;
  p.peak_flops = 100e12;
  p.mfu = 0.5;
  p.per_op_overhead = Duration::Zero();
  CostModel cm(p);
  // 4096^3 matmul: 2*4096^3 = 1.37e11 flops at 50e12 -> 2.75ms.
  const Duration t = cm.MatMulTime(4096, 4096, 4096);
  EXPECT_NEAR(t.ToMillis(), 2.75, 0.05);
}

TEST(CostModelTest, ElementwiseIsMemoryBound) {
  CostParams p;
  p.hbm_bandwidth = 1e12;
  p.per_op_overhead = Duration::Zero();
  CostModel cm(p);
  HloBuilder b("ew");
  const int x = b.Parameter(Shape(DType::kF32, {1 << 20}));
  b.Add(x, x);
  HloModule m = std::move(b).Build();
  // Bytes = 2 inputs + 1 output = 12 MiB at 1 TB/s ~ 12.58 us.
  const Duration t = cm.ModuleComputeTime(m);
  EXPECT_NEAR(t.ToMicros(), 12.58, 0.2);
}

TEST(CostModelTest, CollectivesAreFreeOnCore) {
  CostModel cm;
  HloBuilder b("ar");
  const int x = b.Parameter(Shape(DType::kF32, {1024}));
  const int ar = b.AllReduce(x);
  (void)ar;
  HloModule m = std::move(b).Build();
  const OpCost c = cm.InstructionCost(m, m.root());
  EXPECT_EQ(c.flops, 0);
  EXPECT_EQ(c.bytes, 0);
}

TEST(CostModelTest, PerOpOverheadScalesWithOpCount) {
  CostParams p;
  p.per_op_overhead = Duration::Micros(1);
  CostModel cm(p);
  OpCost zero;
  EXPECT_DOUBLE_EQ(cm.Time(zero, 5).ToMicros(), 5.0);
}

// Property sweep: per-shard compute time decreases (weakly) with shards.
class ShardingSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardingSweep, PerShardTimeShrinksWithShards) {
  const int shards = GetParam();
  Compiler compiler;
  HloBuilder b("big");
  const int a = b.Parameter(Shape(DType::kBF16, {4096, 4096}));
  const int w = b.Parameter(Shape(DType::kBF16, {4096, 4096}));
  b.MatMul(a, w);
  HloModule m = std::move(b).Build();

  const CompiledFunction whole = compiler.Compile(m, ShardingSpec{1, 0});
  const CompiledFunction sharded = compiler.Compile(m, ShardingSpec{shards, 0});
  EXPECT_LE(sharded.total_compute_time().nanos(),
            whole.total_compute_time().nanos());
  // Roofline scales linearly up to the per-op overhead floor.
  EXPECT_NEAR(static_cast<double>(sharded.total_compute_time().nanos() -
                                  compiler.cost_model().params().per_op_overhead.nanos()),
              static_cast<double>(whole.total_compute_time().nanos() -
                                  compiler.cost_model().params().per_op_overhead.nanos()) /
                  shards,
              1e6);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardingSweep, ::testing::Values(1, 2, 4, 8, 16));

// ------------------------------------------------------ CompiledFunction --

TEST(CompiledFunctionTest, SyntheticWithoutCollective) {
  auto f = CompiledFunction::Synthetic("tiny", 4, Duration::Millis(1));
  EXPECT_EQ(f.num_shards, 4);
  EXPECT_FALSE(f.collective.has_value());
  EXPECT_DOUBLE_EQ(f.total_compute_time().ToMillis(), 1.0);
}

TEST(CompiledFunctionTest, SyntheticWithCollectiveSplitsCompute) {
  auto f = CompiledFunction::Synthetic("ar", 8, Duration::Micros(10),
                                       net::CollectiveKind::kAllReduce, 4);
  ASSERT_TRUE(f.collective.has_value());
  EXPECT_EQ(*f.collective, net::CollectiveKind::kAllReduce);
  EXPECT_EQ(f.collective_bytes_per_shard, 4);
  EXPECT_DOUBLE_EQ((f.pre_collective_time + f.post_collective_time).ToMicros(), 10.0);
}

TEST(CompilerTest, CompilesAllReduceProgram) {
  Compiler compiler;
  HloBuilder b("grad_sync");
  const int g = b.Parameter(Shape(DType::kF32, {1 << 20}));  // 4 MiB grads
  const int ar = b.AllReduce(g);
  const int out = b.Add(ar, ar);
  (void)out;
  HloModule m = std::move(b).Build();
  const CompiledFunction f = compiler.Compile(m, ShardingSpec{4, 0});
  ASSERT_TRUE(f.collective.has_value());
  EXPECT_EQ(f.collective_bytes_per_shard, (1 << 22) / 4);
  EXPECT_GT(f.post_collective_time.nanos(), 0);  // the add happens after
  EXPECT_EQ(f.input_bytes_per_shard, (1 << 22) / 4);
}

TEST(CompilerTest, StaticBufferAssignmentCoversInputsAndOutputs) {
  Compiler compiler;
  HloBuilder b("mm");
  const int a = b.Parameter(Shape(DType::kBF16, {64, 64}));
  const int w = b.Parameter(Shape(DType::kBF16, {64, 64}));
  b.MatMul(a, w);
  HloModule m = std::move(b).Build();
  const CompiledFunction f = compiler.Compile(m, ShardingSpec{1, 0});
  EXPECT_EQ(f.input_bytes_per_shard, 2 * 64 * 64 * 2);
  EXPECT_EQ(f.output_bytes_per_shard, 64 * 64 * 2);
  EXPECT_GT(f.hbm_bytes_per_shard(), f.input_bytes_per_shard);
}

}  // namespace
}  // namespace pw::xlasim
