// Memory-oversubscription coverage (docs/MEMORY.md).
//
// Two deadlock classes the pre-fix build wedges on, each with its fix:
//
//  * Cross-device buffer-lifetime cycle: two 2-device chain programs visit
//    the devices in opposite order, HBM sized so neither program's buffers
//    fit beside the other's. Each program's first node fills one device and
//    its second node parks behind the other's output — which only frees
//    when ITS consumer runs. Broken by the spiller: the blocking outputs
//    are idle (content-ready, unpinned), migrate to host DRAM, and are
//    read through from there when their consumers finally run.
//
//  * Reservation-order inversion: client staging races the gang pipeline
//    into two devices' queues in opposite orders (the staging request
//    lands on device B before the gang's but on device A after it) and
//    the two circular-wait. Broken by scheduler-consistent tickets: gangs
//    draw a global ticket at dispatch, staged buffers at creation, and
//    waiters are served strictly in ticket order.
//
// Both fixes are individually disabled via PathwaysOptions test hooks to
// prove the pre-fix wedge (silent event-queue drain) is real and is now
// *reported* — blocked probes name the stalled executions, the wait-for
// graph renders the cycle, and CheckNoReservationWedge PW_CHECKs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "pathways/pathways.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "xlasim/compiled_function.h"

namespace pw {
namespace {

using pathways::BufferLocation;
using pathways::Client;
using pathways::ClientId;
using pathways::ExecutionId;
using pathways::ExecutionResult;
using pathways::PathwaysOptions;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::ShardedBuffer;
using pathways::ShardResidency;
using pathways::ValueRef;
using xlasim::CompiledFunction;

// Function with an explicit memory footprint (Synthetic ties input ==
// output, which is too coarse here).
CompiledFunction Fn(const std::string& name, int shards, Bytes input,
                    Bytes output, Duration compute = Duration::Micros(100)) {
  CompiledFunction f;
  f.name = name;
  f.num_shards = shards;
  f.pre_collective_time = compute;
  f.input_bytes_per_shard = input;
  f.output_bytes_per_shard = output;
  return f;
}

// ------------------------------------------- cross-device lifetime cycle --

struct OppositeOrderWorld {
  // 1 island, 1 host, 2 devices; HBM fits exactly one 8 MiB output. Two
  // *clients* so the programs stream descriptors concurrently — a single
  // client serializes its submissions enough that the programs run
  // back-to-back and never contend.
  explicit OppositeOrderWorld(PathwaysOptions options) {
    hw::SystemParams params;
    params.hbm_capacity = MiB(8);
    cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                            /*hosts_per_island=*/1,
                                            /*devices_per_host=*/2);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
    client_p = runtime->CreateClient();
    client_q = runtime->CreateClient();
    pathways::VirtualSlice p_first = client_p->AllocateSlice(1).value();
    pathways::VirtualSlice p_second = client_p->AllocateSlice(1).value();
    pathways::VirtualSlice q_first = client_q->AllocateSlice(1).value();
    pathways::VirtualSlice q_second = client_q->AllocateSlice(1).value();
    // Least-loaded allocation hands out dev0, dev1, dev0, dev1 — so P's
    // chain visits dev0 then dev1 while Q's visits dev1 then dev0 (Q calls
    // its slices in reverse). Outputs are 8 MiB (a full device); staging
    // is zero, so the only capacity the programs fight over is the outputs
    // themselves — which cannot free until their consumers run.
    const CompiledFunction fn = Fn("stage", 1, /*input=*/0, /*output=*/MiB(8));
    ProgramBuilder pb("P");
    ValueRef p0 = pb.Call(fn, p_first, {});
    pb.Result(pb.Call(fn, p_second, {p0}));
    prog_p = std::make_unique<PathwaysProgram>(std::move(pb).Build());
    ProgramBuilder qb("Q");
    ValueRef q0 = qb.Call(fn, q_second, {});
    qb.Result(qb.Call(fn, q_first, {q0}));
    prog_q = std::make_unique<PathwaysProgram>(std::move(qb).Build());
  }

  void SubmitBoth() {
    client_p->Submit(prog_p.get(),
                     [this](const ExecutionResult& r) { done += !r.failed; });
    client_q->Submit(prog_q.get(),
                     [this](const ExecutionResult& r) { done += !r.failed; });
  }

  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
  Client* client_p = nullptr;
  Client* client_q = nullptr;
  std::unique_ptr<PathwaysProgram> prog_p, prog_q;
  int done = 0;
};

TEST(OversubscriptionTest, CrossDeviceOppositeOrderCompletesViaSpilling) {
  OppositeOrderWorld w(PathwaysOptions{});  // both fixes on (defaults)
  w.SubmitBoth();
  w.sim.Run();
  EXPECT_EQ(w.done, 2);
  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_TRUE(w.sim.BlockedEntities().empty());
  w.runtime->object_store().CheckNoReservationWedge();  // must not die
  EXPECT_EQ(w.runtime->executions_completed(), 2);
  // The blocking outputs took the spill path (and were read through).
  EXPECT_GE(w.runtime->object_store().spills_completed(), 1);
  // Everything released: both devices and both DRAM pools fully free.
  EXPECT_EQ(w.runtime->object_store().hbm_used(w.cluster->device(0).id()), 0);
  EXPECT_EQ(w.runtime->object_store().hbm_used(w.cluster->device(1).id()), 0);
  EXPECT_EQ(w.cluster->host(0).dram().used(), 0);
}

TEST(OversubscriptionTest, PreFixConfigurationWedgesWithNamedExecutions) {
  // Pre-fix behavior, resurrected via the test hooks (the pre-fix build had
  // neither reservation ordering nor a spill path): each program holds one
  // device and queues behind the other's output on the second. Nothing ever
  // frees; the run must be *reported* as a deadlock with the stalled
  // executions named, not drain silently.
  PathwaysOptions options;
  options.enforce_reservation_ordering = false;
  options.enable_spill = false;
  OppositeOrderWorld w(options);
  w.SubmitBoth();
  w.sim.Run();
  EXPECT_EQ(w.done, 0);
  ASSERT_TRUE(w.sim.Deadlocked());
  // Both devices report a stalled reservation, with waiter and holders
  // named — the PR-3 BlockedEntities evidence trail, extended to memory.
  const std::vector<std::string> blocked = w.sim.BlockedEntities();
  int hbm_reports = 0;
  for (const std::string& b : blocked) {
    if (b.find("HBM") == std::string::npos) continue;
    ++hbm_reports;
    EXPECT_NE(b.find("exec"), std::string::npos) << b;
    EXPECT_NE(b.find("stalled reservation"), std::string::npos) << b;
  }
  EXPECT_EQ(hbm_reports, 2);
  // The wait-for graph pins the cycle: exec 0 -> exec 1 -> exec 0.
  const std::string cycle =
      w.runtime->object_store().DescribeReservationCycle();
  EXPECT_NE(cycle.find("exec 0"), std::string::npos) << cycle;
  EXPECT_NE(cycle.find("exec 1"), std::string::npos) << cycle;
  // Unwind the wedge through the fault path (also what an operator would
  // do): aborting the executions force-fires every parked promise, so the
  // dataflow reference cycles drain instead of leaking.
  w.runtime->AbortExecutionsUsing(w.cluster->device(0).id());
  w.runtime->AbortExecutionsUsing(w.cluster->device(1).id());
  w.sim.Run();
  EXPECT_EQ(w.runtime->live_executions(), 0);
}

TEST(OversubscriptionDeathTest, WedgeCheckDiesNamingTheCycle) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        PathwaysOptions options;
        options.enforce_reservation_ordering = false;
        options.enable_spill = false;
        OppositeOrderWorld w(options);
        w.SubmitBoth();
        w.sim.Run();
        w.runtime->object_store().CheckNoReservationWedge();
      },
      "HBM reservation wedge.*exec");
}

// ------------------------------------------- reservation-order inversion --

// Staging vs gang race on two devices: the gang's reservation lands on
// device A before the staging request but on device B after it. Served in
// arrival order the two circular-wait (gang holds A waiting B, staging
// holds B waiting A); served in ticket order the gang — dispatched first,
// so globally older — wins device B too, completes, and unblocks staging.
// Spill is disabled in BOTH arms: this wedge class is what the ordering
// fix alone must solve.
struct InversionOutcome {
  int program_done = 0;
  bool staging_ready = false;
  bool deadlocked = false;
  std::string cycle;
};

InversionOutcome RunStagingInversion(bool enforce_ordering) {
  PathwaysOptions options;
  options.enforce_reservation_ordering = enforce_ordering;
  options.enable_spill = false;
  sim::Simulator sim;
  hw::SystemParams params;
  params.hbm_capacity = MiB(8);
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, 1, 1, 2);
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  auto slice = client->AllocateSlice(2).value();
  pathways::ObjectStore& store = runtime.object_store();
  const hw::DeviceId dev_a = cluster->device(0).id();
  const hw::DeviceId dev_b = cluster->device(1).id();

  // Transient occupancy on B so the staging request has to queue there.
  ShardedBuffer transient =
      store.CreateBuffer(ClientId(99), ExecutionId(), {dev_b}, MiB(4));

  // One 2-shard gang (8 MiB output per shard, zero staging) over {A, B}.
  ProgramBuilder pb("gang");
  pb.Result(pb.Call(Fn("gang", 2, 0, MiB(8)), slice, {}));
  PathwaysProgram prog = std::move(pb).Build();
  InversionOutcome out;
  client->Submit(&prog,
                 [&out](const ExecutionResult& r) { out.program_done += !r.failed; });

  // Let the gang's A-shard reservation land (granted; A is now full) but
  // stop before its B-shard request arrives...
  const bool a_granted = sim.RunUntilPredicate([&] {
    return cluster->device(0).hbm().used() == MiB(8) &&
           cluster->device(1).hbm().waiters() == 0;
  });
  EXPECT_TRUE(a_granted);
  // ...and stage an 8 MiB buffer across both devices in that window: its
  // request queues on B *ahead* of the gang's, on A *behind* it — the
  // inconsistent per-device order that FIFO service turns into a cycle.
  ShardedBuffer staged = client->TransferToDevice(slice, MiB(8));
  const bool both_queued = sim.RunUntilPredicate(
      [&] { return cluster->device(1).hbm().waiters() == 2; });
  EXPECT_TRUE(both_queued);
  store.Release(transient.id);  // B's capacity frees: who gets it?
  sim.Run();

  out.staging_ready = staged.ready.ready();
  out.deadlocked = sim.Deadlocked();
  out.cycle = store.DescribeReservationCycle();
  // Unwind (wedged arm: the abort force-fires parked promises so the
  // dataflow reference cycles drain instead of leaking).
  runtime.AbortExecutionsUsing(dev_a);
  runtime.AbortExecutionsUsing(dev_b);
  client->ReleaseBuffer(staged);
  sim.Run();
  return out;
}

TEST(ReservationOrderingTest, TicketOrderResolvesStagingInversion) {
  const InversionOutcome out = RunStagingInversion(/*enforce_ordering=*/true);
  EXPECT_EQ(out.program_done, 1);
  EXPECT_TRUE(out.staging_ready);
  EXPECT_FALSE(out.deadlocked);
  EXPECT_EQ(out.cycle, "");
}

TEST(ReservationOrderingTest, ArrivalOrderWedgesOnStagingInversion) {
  // The pre-fix regression arm: identical scenario, ordering disabled.
  const InversionOutcome out = RunStagingInversion(/*enforce_ordering=*/false);
  EXPECT_EQ(out.program_done, 0);
  EXPECT_FALSE(out.staging_ready);
  EXPECT_TRUE(out.deadlocked);
  // The cycle names the gang's execution and the staged buffer.
  EXPECT_NE(out.cycle.find("exec 0"), std::string::npos) << out.cycle;
  EXPECT_NE(out.cycle.find("buffer"), std::string::npos) << out.cycle;
}

// --------------------------------------------------------------- spilling --

struct SpillWorld {
  explicit SpillWorld(Bytes hbm = MiB(20), PathwaysOptions options = {}) {
    hw::SystemParams params;
    params.hbm_capacity = hbm;
    cluster = std::make_unique<hw::Cluster>(&sim, params, 1, 1, 1);
    runtime = std::make_unique<PathwaysRuntime>(cluster.get(), options);
    client = runtime->CreateClient();
    slice = client->AllocateSlice(1).value();
  }

  hw::DeviceId dev() { return cluster->device(0).id(); }
  memory::DramAllocator& dram() { return cluster->host(0).dram(); }
  pathways::ObjectStore& store() { return runtime->object_store(); }

  PathwaysProgram MakeBig() {
    ProgramBuilder pb("big");
    pb.Result(pb.Call(Fn("big", 1, 0, MiB(16)), slice, {}));
    return std::move(pb).Build();
  }
  PathwaysProgram MakeUse() {
    ProgramBuilder pb("use");
    ValueRef arg = pb.Argument();
    pb.Result(pb.Call(Fn("use", 1, MiB(6), MiB(6)), slice, {arg}));
    return std::move(pb).Build();
  }

  sim::Simulator sim;
  std::unique_ptr<hw::Cluster> cluster;
  std::unique_ptr<PathwaysRuntime> runtime;
  Client* client = nullptr;
  pathways::VirtualSlice slice;
};

TEST(SpillTest, ColdStagedBufferSpillsUnderPressureAndPagesBackOnUse) {
  SpillWorld w;  // 20 MiB HBM
  // Stage 6 MiB of "weights"; once landed they are cold (no reader active).
  ShardedBuffer weights = w.client->TransferToDevice(w.slice, MiB(6));
  w.sim.Run();
  ASSERT_TRUE(weights.ready.ready());
  EXPECT_EQ(w.store().hbm_used(w.dev()), MiB(6));

  // A 16 MiB allocation cannot fit beside them: back-pressure stalls it,
  // the spiller migrates the cold weights to host DRAM, and the program
  // completes — §4.6 made survivable instead of merely non-deadlocking.
  PathwaysProgram big = w.MakeBig();
  int done = 0;
  w.client->Submit(&big, [&done](const ExecutionResult& r) { done += !r.failed; });
  w.sim.Run();
  EXPECT_EQ(done, 1);
  EXPECT_FALSE(w.sim.Deadlocked());
  EXPECT_GE(w.store().spills_completed(), 1);
  EXPECT_EQ(w.store().shard_location(weights.id, 0), BufferLocation::kHostDram);
  EXPECT_EQ(w.dram().used(), MiB(6));
  EXPECT_EQ(w.store().hbm_used(w.dev()), 0);  // big's output released

  // Binding the spilled weights as a program argument pages them back in
  // (the read-through to their own device doubles as a restore) before the
  // kernel consumes them.
  PathwaysProgram use = w.MakeUse();
  auto result = w.client->Run(&use, {weights});
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_FALSE(result.value().failed);
  EXPECT_EQ(w.store().fills_completed(), 1);
  EXPECT_EQ(w.store().shard_location(weights.id, 0), BufferLocation::kHbm);
  EXPECT_EQ(w.dram().used(), 0);

  for (const auto& out : result.value().outputs) w.store().Release(out.id);
  w.client->ReleaseBuffer(weights);
  EXPECT_EQ(w.store().hbm_used(w.dev()), 0);
  EXPECT_EQ(w.dram().used(), 0);
}

TEST(SpillTest, SpillDisabledFallsBackToPlainBackPressure) {
  PathwaysOptions options;
  options.enable_spill = false;
  SpillWorld w(MiB(20), options);
  ShardedBuffer weights = w.client->TransferToDevice(w.slice, MiB(6));
  w.sim.Run();
  PathwaysProgram big = w.MakeBig();
  int done = 0;
  w.client->Submit(&big, [&done](const ExecutionResult& r) { done += !r.failed; });
  w.sim.Run();
  // The 16 MiB reservation can only proceed once the weights are released.
  EXPECT_EQ(done, 0);
  EXPECT_TRUE(w.sim.Deadlocked());  // quiescent with a stalled reservation
  w.client->ReleaseBuffer(weights);
  w.sim.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(w.store().spills_completed(), 0);
  EXPECT_EQ(w.dram().used(), 0);
}

TEST(SpillTest, VictimSelectionIsLruByLastUse) {
  SpillWorld w(MiB(22));  // 16 MiB + both 4 MiB buffers don't fit; one must go
  ShardedBuffer older = w.client->TransferToDevice(w.slice, MiB(4));
  w.sim.Run();  // `older` lands first...
  ShardedBuffer newer = w.client->TransferToDevice(w.slice, MiB(4));
  w.sim.Run();  // ...and `newer` strictly later.
  // 16 MiB needs one eviction (8 free): the LRU victim must be `older`.
  PathwaysProgram big = w.MakeBig();
  int done = 0;
  w.client->Submit(&big, [&done](const ExecutionResult& r) { done += !r.failed; });
  w.sim.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(w.store().spills_completed(), 1);
  EXPECT_EQ(w.store().shard_location(older.id, 0), BufferLocation::kHostDram);
  EXPECT_EQ(w.store().shard_location(newer.id, 0), BufferLocation::kHbm);
  w.client->ReleaseBuffer(older);
  w.client->ReleaseBuffer(newer);
  EXPECT_EQ(w.dram().used(), 0);
  EXPECT_EQ(w.store().hbm_used(w.dev()), 0);
}

// ------------------------------------------------- spill-under-fault paths --

TEST(SpillFaultTest, DeviceCrashWhileShardsSpilledAbortsCleanlyFreesDram) {
  SpillWorld w;
  ShardedBuffer weights = w.client->TransferToDevice(w.slice, MiB(6));
  w.sim.Run();
  PathwaysProgram big = w.MakeBig();
  w.client->Submit(&big, nullptr);
  w.sim.Run();
  ASSERT_EQ(w.store().shard_location(weights.id, 0), BufferLocation::kHostDram);

  // Crash the device while the weights sit in DRAM and a consumer program
  // is submitted against them: the execution aborts cleanly; the spilled
  // (client-owned) weights survive in DRAM until released.
  PathwaysProgram use = w.MakeUse();
  auto result = w.client->Run(&use, {weights});
  w.cluster->device(0).Fail();
  w.runtime->AbortExecutionsUsing(w.dev());
  w.sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_TRUE(result.value().failed);
  EXPECT_EQ(w.runtime->executions_aborted(), 1);
  EXPECT_EQ(w.dram().used(), MiB(6));  // spilled data intact post-abort
  w.client->ReleaseBuffer(weights);
  w.sim.Run();
  EXPECT_EQ(w.dram().used(), 0);
  EXPECT_EQ(w.store().hbm_used(w.dev()), 0);
  EXPECT_EQ(w.store().live_buffers(), 0);
}

TEST(SpillFaultTest, ReleaseDuringSpillOutReturnsBothSides) {
  SpillWorld w;
  ShardedBuffer weights = w.client->TransferToDevice(w.slice, MiB(6));
  w.sim.Run();
  PathwaysProgram big = w.MakeBig();
  int done = 0;
  w.client->Submit(&big, [&done](const ExecutionResult& r) { done += !r.failed; });
  ASSERT_TRUE(w.sim.RunUntilPredicate([&] {
    return w.store().shard_residency(weights.id, 0) ==
           ShardResidency::kSpillingOut;
  }));
  w.client->ReleaseBuffer(weights);  // dies mid-migration
  w.sim.Run();
  EXPECT_EQ(done, 1);  // the stalled program still gets the freed capacity
  EXPECT_EQ(w.dram().used(), 0);
  EXPECT_EQ(w.store().hbm_used(w.dev()), 0);
  EXPECT_EQ(w.store().live_buffers(), 0);
}

// ------------------------------------------------------------ determinism --

struct SpillScenarioOutcome {
  std::int64_t events = 0;
  std::int64_t final_now_ns = 0;
  std::int64_t spills = 0;
  std::int64_t fills = 0;
  std::uint64_t trace_hash = 0;
};

SpillScenarioOutcome RunSpillScenario() {
  SpillWorld w;
  ShardedBuffer weights = w.client->TransferToDevice(w.slice, MiB(6));
  w.sim.Run();
  PathwaysProgram big = w.MakeBig();
  w.client->Submit(&big, nullptr);
  w.sim.Run();
  PathwaysProgram use = w.MakeUse();
  auto result = w.client->Run(&use, {weights});
  w.sim.Run();
  SpillScenarioOutcome out;
  out.events = w.sim.events_executed();
  out.final_now_ns = w.sim.now().nanos();
  out.spills = w.store().spills_completed();
  out.fills = w.store().fills_completed();
  // FNV-1a over the device-kernel trace: spill/fill timing shifts kernel
  // start times, so any nondeterminism in the spill path lands here.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::int64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 0x100000001b3ULL;
    }
  };
  for (const sim::TraceSpan& s : w.cluster->trace().spans()) {
    mix(static_cast<std::int64_t>(s.label.size()));
    mix(s.start.nanos());
    mix(s.end.nanos());
  }
  out.trace_hash = h;
  return out;
}

// Golden values for the spill/fill scenario (captured from this build; the
// run-twice test distinguishes "new platform moved libm by an ulp" from
// real nondeterminism, same protocol as tests/sim_determinism_test.cpp).
constexpr std::int64_t kSpillGoldenEvents = 54;
constexpr std::int64_t kSpillGoldenFinalNowNs = 1593576;
constexpr std::uint64_t kSpillGoldenTraceHash = 0xfc4068884b5a9016ULL;

TEST(SpillDeterminismTest, TwoRunsAreBitIdentical) {
  const SpillScenarioOutcome a = RunSpillScenario();
  const SpillScenarioOutcome b = RunSpillScenario();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_now_ns, b.final_now_ns);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_GE(a.spills, 1);
  EXPECT_EQ(a.fills, 1);
}

TEST(SpillDeterminismTest, MatchesRecordedGolden) {
  const SpillScenarioOutcome out = RunSpillScenario();
  EXPECT_EQ(out.events, kSpillGoldenEvents)
      << "events=" << out.events << " now=" << out.final_now_ns << " hash=0x"
      << std::hex << out.trace_hash;
  EXPECT_EQ(out.final_now_ns, kSpillGoldenFinalNowNs);
  EXPECT_EQ(out.trace_hash, kSpillGoldenTraceHash)
      << "actual hash=0x" << std::hex << out.trace_hash;
}

}  // namespace
}  // namespace pw
