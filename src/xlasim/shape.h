// Tensor dtypes and static shapes.
//
// Pathways relies on "compiled functions" whose input/output types and
// shapes are known before the data is computed (paper §3, Appendix B); this
// is the static-shape vocabulary those contracts are written in.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace pw::xlasim {

enum class DType { kF32, kBF16, kS32, kPred };

constexpr Bytes DTypeSize(DType t) {
  switch (t) {
    case DType::kF32: return 4;
    case DType::kBF16: return 2;
    case DType::kS32: return 4;
    case DType::kPred: return 1;
  }
  return 0;
}

std::string DTypeName(DType t);

class Shape {
 public:
  Shape() = default;  // scalar-less invalid shape; rank 0 == scalar
  Shape(DType dtype, std::vector<std::int64_t> dims)
      : dtype_(dtype), dims_(std::move(dims)) {
    for (const auto d : dims_) PW_CHECK_GE(d, 0) << "negative dimension";
  }
  Shape(DType dtype, std::initializer_list<std::int64_t> dims)
      : Shape(dtype, std::vector<std::int64_t>(dims)) {}

  static Shape Scalar(DType dtype) { return Shape(dtype, std::vector<std::int64_t>{}); }

  DType dtype() const { return dtype_; }
  int rank() const { return static_cast<int>(dims_.size()); }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t dim(int i) const { return dims_.at(static_cast<std::size_t>(i)); }

  std::int64_t num_elements() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           std::multiplies<>());
  }
  Bytes byte_size() const { return num_elements() * DTypeSize(dtype_); }

  // Shape with dimension `dim` divided by `shards` (must divide evenly) —
  // the per-shard shape under SPMD partitioning of that dimension.
  Shape ShardDim(int dim, int shards) const;

  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.dtype_ == b.dtype_ && a.dims_ == b.dims_;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  DType dtype_ = DType::kF32;
  std::vector<std::int64_t> dims_;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

}  // namespace pw::xlasim
