#include "xlasim/compiled_function.h"

namespace pw::xlasim {

CompiledFunction CompiledFunction::Synthetic(
    std::string name, int num_shards, Duration compute_time,
    std::optional<net::CollectiveKind> collective,
    Bytes collective_bytes_per_shard, Bytes io_bytes_per_shard) {
  PW_CHECK_GE(num_shards, 1);
  CompiledFunction f;
  f.name = std::move(name);
  f.num_shards = num_shards;
  if (collective.has_value()) {
    // Split compute evenly around the collective.
    f.pre_collective_time = compute_time / 2;
    f.post_collective_time = compute_time - f.pre_collective_time;
    f.collective = collective;
    f.collective_bytes_per_shard = collective_bytes_per_shard;
  } else {
    f.pre_collective_time = compute_time;
  }
  f.input_bytes_per_shard = io_bytes_per_shard;
  f.output_bytes_per_shard = io_bytes_per_shard;
  return f;
}

CompiledFunction Compiler::Compile(const HloModule& module,
                                   const ShardingSpec& sharding) const {
  PW_CHECK_GE(sharding.num_shards, 1);
  CompiledFunction f;
  f.name = module.name();
  f.num_shards = sharding.num_shards;

  // Walk instructions in order: compute before the first collective
  // accumulates into pre_collective_time, after it into post.
  OpCost pre, post;
  int pre_ops = 0, post_ops = 0;
  bool seen_collective = false;
  for (int i = 0; i < module.num_instructions(); ++i) {
    const HloInstruction& instr = module.instruction(i);
    switch (instr.opcode) {
      case HloOpcode::kAllReduce:
      case HloOpcode::kAllGather:
      case HloOpcode::kReduceScatter: {
        PW_CHECK(!seen_collective)
            << module.name() << ": multiple collectives in one compiled "
            << "function are not supported; split the program";
        seen_collective = true;
        f.collective = instr.opcode == HloOpcode::kAllReduce
                           ? net::CollectiveKind::kAllReduce
                       : instr.opcode == HloOpcode::kAllGather
                           ? net::CollectiveKind::kAllGather
                           : net::CollectiveKind::kReduceScatter;
        // Payload per shard is the operand's per-shard size.
        const Shape& payload = module.instruction(instr.operands[0]).shape;
        f.collective_bytes_per_shard =
            payload.byte_size() / sharding.num_shards;
        break;
      }
      default: {
        OpCost c = cost_model_.InstructionCost(module, i);
        // SPMD: each shard handles 1/num_shards of the elements.
        c.flops /= sharding.num_shards;
        c.bytes /= sharding.num_shards;
        if (c.flops == 0 && c.bytes == 0) break;
        if (seen_collective) {
          post.flops += c.flops;
          post.bytes += c.bytes;
          ++post_ops;
        } else {
          pre.flops += c.flops;
          pre.bytes += c.bytes;
          ++pre_ops;
        }
        break;
      }
    }
  }
  f.pre_collective_time = cost_model_.Time(pre, pre_ops);
  f.post_collective_time =
      post_ops > 0 ? cost_model_.Time(post, post_ops) : Duration::Zero();

  // Static buffer assignment: parameters in, root out, both sharded.
  Bytes in = 0;
  for (const int p : module.parameters()) {
    in += module.instruction(p).shape.byte_size();
  }
  f.input_bytes_per_shard = in / sharding.num_shards;
  f.output_bytes_per_shard = module.root_shape().byte_size() / sharding.num_shards;
  // Scratch: a conservative one-x of the live output (rematerialization
  // keeps intermediates bounded on TPU; Appendix A.5).
  f.scratch_bytes_per_shard = f.output_bytes_per_shard;
  return f;
}

}  // namespace pw::xlasim
