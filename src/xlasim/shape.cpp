#include "xlasim/shape.h"

#include <sstream>

namespace pw::xlasim {

std::string DTypeName(DType t) {
  switch (t) {
    case DType::kF32: return "f32";
    case DType::kBF16: return "bf16";
    case DType::kS32: return "s32";
    case DType::kPred: return "pred";
  }
  return "?";
}

Shape Shape::ShardDim(int dim, int shards) const {
  PW_CHECK_GE(dim, 0);
  PW_CHECK_LT(dim, rank());
  PW_CHECK_GT(shards, 0);
  PW_CHECK_EQ(dims_[static_cast<std::size_t>(dim)] % shards, 0)
      << "dimension " << dim << " of " << ToString() << " not divisible by "
      << shards;
  std::vector<std::int64_t> d = dims_;
  d[static_cast<std::size_t>(dim)] /= shards;
  return Shape(dtype_, std::move(d));
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << DTypeName(dtype_) << "[";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ",";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.ToString();
}

}  // namespace pw::xlasim
