// A miniature HLO: enough of an op graph to express the computations the
// paper's evaluation runs (dense matmuls, elementwise chains, collectives)
// and to give the compiler something real to cost-model and shard.
//
// Instructions are owned by their HloModule and referenced by index; the
// builder validates operand shapes at construction, mirroring XLA's shape
// inference.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "net/collective_model.h"
#include "xlasim/shape.h"

namespace pw::xlasim {

enum class HloOpcode {
  kParameter,
  kConstant,
  kAdd,
  kMultiply,
  kMatMul,       // [m,k] x [k,n] -> [m,n]
  kSoftmax,      // rowwise
  kReduce,       // full reduction to scalar
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kEmbeddingLookup,  // [tokens] x table[vocab, d] -> [tokens, d]
};

std::string HloOpcodeName(HloOpcode op);

struct HloInstruction {
  HloOpcode opcode;
  Shape shape;                      // result shape
  std::vector<int> operands;        // indices into the module
  std::string name;
  // For collectives: the payload is the operand's shape; participants are
  // supplied at compile time by the sharding environment.
};

class HloModule {
 public:
  explicit HloModule(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int num_instructions() const { return static_cast<int>(instructions_.size()); }
  const HloInstruction& instruction(int i) const {
    return instructions_.at(static_cast<std::size_t>(i));
  }
  const std::vector<HloInstruction>& instructions() const { return instructions_; }

  // The root is the last added instruction.
  int root() const {
    PW_CHECK_GT(num_instructions(), 0);
    return num_instructions() - 1;
  }
  const Shape& root_shape() const { return instruction(root()).shape; }

  std::vector<int> parameters() const;

 private:
  friend class HloBuilder;
  std::string name_;
  std::vector<HloInstruction> instructions_;
};

// Builder with shape inference. Returns instruction indices.
class HloBuilder {
 public:
  explicit HloBuilder(std::string name) : module_(std::move(name)) {}

  int Parameter(Shape shape, std::string name = "param");
  int Constant(Shape shape, std::string name = "const");
  int Add(int lhs, int rhs);
  int Multiply(int lhs, int rhs);
  int MatMul(int lhs, int rhs);
  int Softmax(int input);
  int Reduce(int input);
  int AllReduce(int input);
  int AllGather(int input, int gather_dim, int num_shards);
  int ReduceScatter(int input, int scatter_dim, int num_shards);
  int EmbeddingLookup(int ids, int table);

  const Shape& shape_of(int idx) const {
    return module_.instruction(idx).shape;
  }

  // Finalizes and returns the module; the builder must not be reused.
  HloModule Build() && { return std::move(module_); }

 private:
  int Emit(HloInstruction instr);
  HloModule module_;
};

}  // namespace pw::xlasim
