// Analytic device-time cost model for compiled functions.
//
// Substitutes for XLA's performance model: per-instruction FLOP and
// byte-traffic counts are rolled up into a roofline estimate
//   time = max(flops / (peak_flops * mfu), bytes / hbm_bw) + per_op_overhead
// where `mfu` (model flops utilization) captures everything a real compiler
// and kernel library would decide. Collectives are *not* charged here —
// they become rendezvous operations on the device (hw::CollectiveGroup)
// priced by the island's CollectiveModel (analytic by default, link-level
// torus flows in flow-level ICI mode — docs/NETWORK.md), so their cost
// depends on runtime arrival times, exactly as on real hardware.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "xlasim/hlo.h"

namespace pw::xlasim {

struct CostParams {
  double peak_flops = 61.5e12;   // per-core peak
  double mfu = 0.45;             // achieved fraction of peak on dense math
  double hbm_bandwidth = 700e9;  // bytes/sec
  Duration per_op_overhead = Duration::Nanos(300);  // fused-op issue cost
};

struct OpCost {
  double flops = 0;
  double bytes = 0;  // HBM traffic (reads + writes)
};

class CostModel {
 public:
  explicit CostModel(CostParams params) : params_(params) {}
  CostModel() : CostModel(CostParams{}) {}

  const CostParams& params() const { return params_; }

  // FLOPs and HBM bytes for one instruction at the given (per-shard) shapes.
  OpCost InstructionCost(const HloModule& module, int index) const;

  // Roofline time for an already-aggregated cost.
  Duration Time(const OpCost& cost, int num_ops) const;

  // Device time for a whole module's non-collective work (per shard).
  Duration ModuleComputeTime(const HloModule& module) const;

  // Convenience for dense layers: time of an [m,k]x[k,n] matmul.
  Duration MatMulTime(std::int64_t m, std::int64_t k, std::int64_t n,
                      Bytes dtype_size = 2) const;

 private:
  CostParams params_;
};

}  // namespace pw::xlasim
