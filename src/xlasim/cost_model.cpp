#include "xlasim/cost_model.h"

#include <algorithm>

#include "common/logging.h"

namespace pw::xlasim {

OpCost CostModel::InstructionCost(const HloModule& module, int index) const {
  const HloInstruction& instr = module.instruction(index);
  OpCost cost;
  const auto out_bytes = static_cast<double>(instr.shape.byte_size());
  double in_bytes = 0;
  for (const int op : instr.operands) {
    in_bytes += static_cast<double>(module.instruction(op).shape.byte_size());
  }
  switch (instr.opcode) {
    case HloOpcode::kParameter:
    case HloOpcode::kConstant:
      return cost;  // no runtime work
    case HloOpcode::kAdd:
    case HloOpcode::kMultiply:
      cost.flops = static_cast<double>(instr.shape.num_elements());
      cost.bytes = in_bytes + out_bytes;
      return cost;
    case HloOpcode::kSoftmax:
      // exp + sum + div ~ 5 flops/element, two passes over the data.
      cost.flops = 5.0 * static_cast<double>(instr.shape.num_elements());
      cost.bytes = 2.0 * in_bytes + out_bytes;
      return cost;
    case HloOpcode::kReduce:
      cost.flops = static_cast<double>(
          module.instruction(instr.operands[0]).shape.num_elements());
      cost.bytes = in_bytes;
      return cost;
    case HloOpcode::kMatMul: {
      const Shape& a = module.instruction(instr.operands[0]).shape;
      const Shape& b = module.instruction(instr.operands[1]).shape;
      cost.flops = 2.0 * static_cast<double>(a.dim(0)) *
                   static_cast<double>(a.dim(1)) * static_cast<double>(b.dim(1));
      cost.bytes = in_bytes + out_bytes;
      return cost;
    }
    case HloOpcode::kEmbeddingLookup: {
      // Gather: reads one table row per id.
      cost.flops = 0;
      cost.bytes = out_bytes * 2.0;
      return cost;
    }
    case HloOpcode::kAllReduce:
    case HloOpcode::kAllGather:
    case HloOpcode::kReduceScatter:
      // Charged at the rendezvous, not on the core.
      return cost;
  }
  return cost;
}

Duration CostModel::Time(const OpCost& cost, int num_ops) const {
  PW_CHECK_GT(params_.peak_flops, 0.0);
  PW_CHECK_GT(params_.hbm_bandwidth, 0.0);
  const double compute_s = cost.flops / (params_.peak_flops * params_.mfu);
  const double memory_s = cost.bytes / params_.hbm_bandwidth;
  return Duration::Seconds(std::max(compute_s, memory_s)) +
         params_.per_op_overhead * num_ops;
}

Duration CostModel::ModuleComputeTime(const HloModule& module) const {
  OpCost total;
  int ops = 0;
  for (int i = 0; i < module.num_instructions(); ++i) {
    const OpCost c = InstructionCost(module, i);
    if (c.flops == 0 && c.bytes == 0) continue;
    total.flops += c.flops;
    total.bytes += c.bytes;
    ++ops;
  }
  return Time(total, ops);
}

Duration CostModel::MatMulTime(std::int64_t m, std::int64_t k, std::int64_t n,
                               Bytes dtype_size) const {
  OpCost cost;
  cost.flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
               static_cast<double>(n);
  cost.bytes = static_cast<double>(dtype_size) *
               (static_cast<double>(m * k) + static_cast<double>(k * n) +
                static_cast<double>(m * n));
  return Time(cost, 1);
}

}  // namespace pw::xlasim
