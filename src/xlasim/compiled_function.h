// CompiledFunction: the contract between the compiler and the runtime.
//
// A compiled function is a (potentially SPMD-sharded) computation with
// *statically known* resource requirements (paper §3): per-shard device
// time, the collective it performs (if any) and the payload per shard, and
// per-shard input/output/scratch buffer sizes. This is all the Pathways
// runtime needs for parallel asynchronous dispatch — successor buffers can
// be allocated before predecessors execute.
//
// Two construction paths:
//   * Compiler::Compile lowers an HloModule under a ShardingSpec, using the
//     CostModel for device time (the "real" path used by the model layer);
//   * CompiledFunction::Synthetic builds one from explicit timings (used by
//     micro-benchmarks that sweep computation duration, as the paper does).
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/units.h"
#include "net/collective_model.h"
#include "xlasim/cost_model.h"
#include "xlasim/hlo.h"

namespace pw::xlasim {

// SPMD partitioning environment: how many shards, and which logical
// dimension of the inputs/outputs is split (batch sharding by default).
struct ShardingSpec {
  int num_shards = 1;
  int sharded_dim = 0;
};

struct CompiledFunction {
  std::string name;
  int num_shards = 1;

  // Per-shard device occupancy, split around the collective (if any).
  Duration pre_collective_time = Duration::Zero();
  Duration post_collective_time = Duration::Zero();

  std::optional<net::CollectiveKind> collective;
  Bytes collective_bytes_per_shard = 0;

  // Per-shard static buffer assignment.
  Bytes input_bytes_per_shard = 0;
  Bytes output_bytes_per_shard = 0;
  Bytes scratch_bytes_per_shard = 0;

  Duration total_compute_time() const {
    return pre_collective_time + post_collective_time;
  }
  Bytes hbm_bytes_per_shard() const {
    return input_bytes_per_shard + output_bytes_per_shard + scratch_bytes_per_shard;
  }

  // Builds a function with explicit per-shard timing; `collective_bytes`
  // of 0 with a collective kind set still performs the (latency-bound)
  // rendezvous — this is the paper's "scalar AllReduce" micro-benchmark.
  static CompiledFunction Synthetic(
      std::string name, int num_shards, Duration compute_time,
      std::optional<net::CollectiveKind> collective = std::nullopt,
      Bytes collective_bytes_per_shard = 0, Bytes io_bytes_per_shard = 8);
};

class Compiler {
 public:
  explicit Compiler(CostModel cost_model) : cost_model_(std::move(cost_model)) {}
  Compiler() = default;

  const CostModel& cost_model() const { return cost_model_; }

  // Lowers `module` for SPMD execution over `sharding.num_shards` shards.
  // Compute time is the per-shard roofline estimate; at most one collective
  // is supported per function (XLA would fuse more — our model layer splits
  // larger programs into one-collective functions).
  CompiledFunction Compile(const HloModule& module,
                           const ShardingSpec& sharding) const;

 private:
  CostModel cost_model_;
};

}  // namespace pw::xlasim
