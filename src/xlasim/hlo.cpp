#include "xlasim/hlo.h"

namespace pw::xlasim {

std::string HloOpcodeName(HloOpcode op) {
  switch (op) {
    case HloOpcode::kParameter: return "parameter";
    case HloOpcode::kConstant: return "constant";
    case HloOpcode::kAdd: return "add";
    case HloOpcode::kMultiply: return "multiply";
    case HloOpcode::kMatMul: return "matmul";
    case HloOpcode::kSoftmax: return "softmax";
    case HloOpcode::kReduce: return "reduce";
    case HloOpcode::kAllReduce: return "all-reduce";
    case HloOpcode::kAllGather: return "all-gather";
    case HloOpcode::kReduceScatter: return "reduce-scatter";
    case HloOpcode::kEmbeddingLookup: return "embedding-lookup";
  }
  return "?";
}

std::vector<int> HloModule::parameters() const {
  std::vector<int> out;
  for (int i = 0; i < num_instructions(); ++i) {
    if (instructions_[static_cast<std::size_t>(i)].opcode == HloOpcode::kParameter) {
      out.push_back(i);
    }
  }
  return out;
}

int HloBuilder::Emit(HloInstruction instr) {
  for (const int op : instr.operands) {
    PW_CHECK_GE(op, 0);
    PW_CHECK_LT(op, module_.num_instructions()) << "operand index out of range";
  }
  module_.instructions_.push_back(std::move(instr));
  return module_.num_instructions() - 1;
}

int HloBuilder::Parameter(Shape shape, std::string name) {
  return Emit({HloOpcode::kParameter, std::move(shape), {}, std::move(name)});
}

int HloBuilder::Constant(Shape shape, std::string name) {
  return Emit({HloOpcode::kConstant, std::move(shape), {}, std::move(name)});
}

int HloBuilder::Add(int lhs, int rhs) {
  PW_CHECK(shape_of(lhs) == shape_of(rhs))
      << "add operand shapes differ: " << shape_of(lhs) << " vs " << shape_of(rhs);
  return Emit({HloOpcode::kAdd, shape_of(lhs), {lhs, rhs}, "add"});
}

int HloBuilder::Multiply(int lhs, int rhs) {
  PW_CHECK(shape_of(lhs) == shape_of(rhs))
      << "multiply operand shapes differ";
  return Emit({HloOpcode::kMultiply, shape_of(lhs), {lhs, rhs}, "multiply"});
}

int HloBuilder::MatMul(int lhs, int rhs) {
  const Shape& a = shape_of(lhs);
  const Shape& b = shape_of(rhs);
  PW_CHECK_EQ(a.rank(), 2);
  PW_CHECK_EQ(b.rank(), 2);
  PW_CHECK_EQ(a.dim(1), b.dim(0)) << "matmul contraction mismatch: " << a << " x " << b;
  return Emit({HloOpcode::kMatMul, Shape(a.dtype(), {a.dim(0), b.dim(1)}),
               {lhs, rhs}, "matmul"});
}

int HloBuilder::Softmax(int input) {
  return Emit({HloOpcode::kSoftmax, shape_of(input), {input}, "softmax"});
}

int HloBuilder::Reduce(int input) {
  return Emit({HloOpcode::kReduce, Shape::Scalar(shape_of(input).dtype()),
               {input}, "reduce"});
}

int HloBuilder::AllReduce(int input) {
  return Emit({HloOpcode::kAllReduce, shape_of(input), {input}, "all-reduce"});
}

int HloBuilder::AllGather(int input, int gather_dim, int num_shards) {
  const Shape& in = shape_of(input);
  PW_CHECK_GE(gather_dim, 0);
  PW_CHECK_LT(gather_dim, in.rank());
  std::vector<std::int64_t> dims = in.dims();
  dims[static_cast<std::size_t>(gather_dim)] *= num_shards;
  return Emit({HloOpcode::kAllGather, Shape(in.dtype(), std::move(dims)),
               {input}, "all-gather"});
}

int HloBuilder::ReduceScatter(int input, int scatter_dim, int num_shards) {
  return Emit({HloOpcode::kReduceScatter,
               shape_of(input).ShardDim(scatter_dim, num_shards), {input},
               "reduce-scatter"});
}

int HloBuilder::EmbeddingLookup(int ids, int table) {
  const Shape& i = shape_of(ids);
  const Shape& t = shape_of(table);
  PW_CHECK_EQ(i.rank(), 1);
  PW_CHECK_EQ(t.rank(), 2);
  return Emit({HloOpcode::kEmbeddingLookup,
               Shape(t.dtype(), {i.dim(0), t.dim(1)}), {ids, table},
               "embedding-lookup"});
}

}  // namespace pw::xlasim
