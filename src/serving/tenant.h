// ServingTenant: one tenant's open-loop request stream.
//
// Reuses the PR-4 OpenLoopGenerator (sink mode) for the arrival process —
// Poisson/uniform/burst, per-tenant seed — and draws each request's prompt
// and output lengths from its own seeded Rng, so a tenant's stream is
// bit-reproducible from (spec, seeds) alone and independent of every other
// tenant and of how the batcher keeps up. Requests are offered to a
// Batcher (colocated) or any other offer sink — e.g. a DisaggRouter.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "common/rng.h"
#include "serving/batcher.h"
#include "workload/traffic.h"

namespace pw::serving {

struct TenantSpec {
  workload::OpenLoopSpec arrivals;  // process, rate, horizon, arrival seed
  int min_prefill_tokens = 16;
  int max_prefill_tokens = 128;
  int min_decode_tokens = 4;
  int max_decode_tokens = 32;
  std::uint64_t token_seed = 7;  // independent of the arrival seed
};

class ServingTenant {
 public:
  // Accepts or sheds one generated request (Batcher::Offer-compatible).
  using OfferSink = std::function<bool(Request)>;

  ServingTenant(int tenant_id, OfferSink sink, sim::Simulator* sim,
                TenantSpec spec);
  ServingTenant(int tenant_id, Batcher* batcher, sim::Simulator* sim,
                TenantSpec spec);

  ServingTenant(const ServingTenant&) = delete;
  ServingTenant& operator=(const ServingTenant&) = delete;

  // Schedules the first arrival; call once, then run the simulator.
  void Start() { generator_.Start(); }

  std::int64_t arrivals_generated() const {
    return generator_.arrivals_generated();
  }
  int tenant_id() const { return tenant_id_; }

 private:
  void OnArrival();

  int tenant_id_;
  OfferSink sink_;
  sim::Simulator* sim_;
  TenantSpec spec_;
  Rng token_rng_;
  std::int64_t next_request_ = 0;
  workload::OpenLoopGenerator generator_;  // sink mode; declared last so the
                                           // sink's captures are initialized
};

}  // namespace pw::serving
