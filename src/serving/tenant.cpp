#include "serving/tenant.h"

#include "common/logging.h"

namespace pw::serving {

ServingTenant::ServingTenant(int tenant_id, OfferSink sink,
                             sim::Simulator* sim, TenantSpec spec)
    : tenant_id_(tenant_id),
      sink_(std::move(sink)),
      sim_(sim),
      spec_(spec),
      token_rng_(spec.token_seed),
      generator_(sim, spec.arrivals, [this] { OnArrival(); }) {
  PW_CHECK(sink_ != nullptr);
  PW_CHECK_GE(spec_.min_prefill_tokens, 1);
  PW_CHECK_GE(spec_.max_prefill_tokens, spec_.min_prefill_tokens);
  PW_CHECK_GE(spec_.min_decode_tokens, 1);
  PW_CHECK_GE(spec_.max_decode_tokens, spec_.min_decode_tokens);
}

ServingTenant::ServingTenant(int tenant_id, Batcher* batcher,
                             sim::Simulator* sim, TenantSpec spec)
    : ServingTenant(
          tenant_id,
          [batcher](Request req) { return batcher->Offer(std::move(req)); },
          sim, spec) {
  PW_CHECK(batcher != nullptr);
}

void ServingTenant::OnArrival() {
  Request req;
  // Ids unique across tenants and monotone within one, so running-batch
  // iteration order (keyed by id) is deterministic and admission-ordered.
  req.id = static_cast<std::int64_t>(tenant_id_) * 1'000'000 + next_request_++;
  req.tenant = tenant_id_;
  req.prefill_tokens =
      spec_.min_prefill_tokens +
      static_cast<int>(token_rng_.NextBounded(static_cast<std::uint64_t>(
          spec_.max_prefill_tokens - spec_.min_prefill_tokens + 1)));
  req.decode_tokens =
      spec_.min_decode_tokens +
      static_cast<int>(token_rng_.NextBounded(static_cast<std::uint64_t>(
          spec_.max_decode_tokens - spec_.min_decode_tokens + 1)));
  req.arrival = sim_->now();
  sink_(std::move(req));
}

}  // namespace pw::serving
