// Serving-side measurement: latency distributions and the event trace.
//
// ServingMetrics collects the three serving numbers the paper's regime
// cares about — TTFT (arrival to first output token, queueing included),
// per-token decode latency, and goodput — plus shed/abort counters. One
// instance per batcher; Merge() folds scenario shards into a fleet view.
//
// ServingTrace is the serving analogue of sim::Trace for golden tests: an
// append-only log of semantic events (arrive/admit/shed/prefill/token/
// finish/abort/requeue) with an FNV-1a checksum, so any change to batching
// or KV-cache semantics moves a pinned constant in tests/serving_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace pw::serving {

class ServingTrace {
 public:
  struct Event {
    std::int64_t at_ns = 0;
    std::string kind;
    std::int64_t request = -1;
    std::int64_t detail = 0;
  };

  void Record(std::int64_t at_ns, std::string kind, std::int64_t request,
              std::int64_t detail = 0) {
    events_.push_back(Event{at_ns, std::move(kind), request, detail});
  }

  const std::vector<Event>& events() const { return events_; }
  std::uint64_t Checksum() const;
  std::string ToString() const;

 private:
  std::vector<Event> events_;
};

class ServingMetrics {
 public:
  void OnArrival() { ++arrivals_; }
  void OnShed() { ++sheds_; }
  void OnFirstToken(Duration ttft) {
    ++prefills_;
    ttft_us_.Add(ttft.ToSeconds() * 1e6);
  }
  // Disaggregated only: arrival → prefill completion on the prefill island.
  // Deliberately a *separate* sampler from TTFT — the first output token is
  // emitted by the decode island after the KV crossed the DCN, so stamping
  // TTFT at prefill completion would hide the whole transfer + decode-queue
  // delay (regression-tested in tests/disagg_test.cpp).
  void OnPrefillDone(Duration latency) {
    ++handoffs_;
    prefill_done_us_.Add(latency.ToSeconds() * 1e6);
  }
  void OnToken(Duration since_last) {
    ++tokens_;
    token_latency_us_.Add(since_last.ToSeconds() * 1e6);
  }
  void OnFinish(Duration e2e) {
    ++finished_;
    e2e_us_.Add(e2e.ToSeconds() * 1e6);
  }
  void OnAbortedIteration() { ++aborted_iterations_; }

  std::int64_t arrivals() const { return arrivals_; }
  std::int64_t sheds() const { return sheds_; }
  std::int64_t prefills() const { return prefills_; }
  std::int64_t tokens() const { return tokens_; }
  std::int64_t finished() const { return finished_; }  // goodput
  std::int64_t handoffs() const { return handoffs_; }
  std::int64_t aborted_iterations() const { return aborted_iterations_; }

  // Percentiles in microseconds, p in [0,100]; 0 when empty.
  double TtftUs(double p) { return ttft_us_.Percentile(p); }
  double TokenLatencyUs(double p) { return token_latency_us_.Percentile(p); }
  double E2eUs(double p) { return e2e_us_.Percentile(p); }
  double PrefillDoneUs(double p) { return prefill_done_us_.Percentile(p); }

  void Merge(const ServingMetrics& other) {
    arrivals_ += other.arrivals_;
    sheds_ += other.sheds_;
    prefills_ += other.prefills_;
    tokens_ += other.tokens_;
    finished_ += other.finished_;
    handoffs_ += other.handoffs_;
    aborted_iterations_ += other.aborted_iterations_;
    ttft_us_.Merge(other.ttft_us_);
    token_latency_us_.Merge(other.token_latency_us_);
    e2e_us_.Merge(other.e2e_us_);
    prefill_done_us_.Merge(other.prefill_done_us_);
  }

 private:
  PercentileSampler ttft_us_;
  PercentileSampler token_latency_us_;
  PercentileSampler e2e_us_;
  PercentileSampler prefill_done_us_;
  std::int64_t arrivals_ = 0;
  std::int64_t sheds_ = 0;
  std::int64_t prefills_ = 0;
  std::int64_t tokens_ = 0;
  std::int64_t finished_ = 0;
  std::int64_t handoffs_ = 0;
  std::int64_t aborted_iterations_ = 0;
};

}  // namespace pw::serving
