// Serving request model (docs/SERVING.md).
//
// One request is one LLM inference: a prompt of `prefill_tokens` processed
// in a single prefill pass, then `decode_tokens` output tokens emitted one
// per decode iteration (the prefill pass itself yields the first output
// token, which is what TTFT measures). The batcher owns the progress
// fields; tenants fill in only identity, token counts, and arrival time.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace pw::serving {

enum class RequestState {
  kQueued,      // waiting for admission into the running batch
  kPrefill,     // admitted; its prefill iteration is in flight
  kTransferKv,  // disaggregated only: prefill done, KV in flight over DCN
  kDecoding,    // emitting one token per decode iteration
  kFinished,    // all output tokens emitted
  kShed,        // dropped at offer time (queue overflow or oversized KV)
};

const char* ToString(RequestState state);

struct Request {
  std::int64_t id = -1;
  int tenant = 0;
  int prefill_tokens = 1;  // prompt length (>= 1)
  int decode_tokens = 1;   // output length (>= 1; first token from prefill)
  TimePoint arrival;

  // --- Progress, owned by the batcher ---
  RequestState state = RequestState::kQueued;
  int tokens_decoded = 0;
  // 1 + the number of crash-induced re-prefills this request survived.
  int attempts = 1;
  // When the (latest) prefill pass completed. Colocated, the first output
  // token is emitted here too; disaggregated, TTFT is stamped strictly
  // later, at the first *decode* token on the decode island.
  TimePoint prefill_done_at;
  TimePoint first_token_at;
  TimePoint last_token_at;
  TimePoint finished_at;

  // KV tokens held at completion: the prompt plus one appended KV entry per
  // decode step after the first token.
  int max_kv_tokens() const { return prefill_tokens + decode_tokens - 1; }
};

}  // namespace pw::serving
