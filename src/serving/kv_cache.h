// Per-sequence KV-cache registry: a first-class ObjectStore citizen.
//
// Each live sequence owns one logical buffer with one shard per slice
// device (the attention KV for that shard's heads). The cache is a thin
// deterministic ledger over the store:
//
//   * CreateSequence sizes the buffer for the prompt and reserves HBM
//     through the store's eager path — back-pressure and reservation
//     ordering apply exactly as for any staged buffer;
//   * Append grows every shard by whole tokens via ObjectStore::GrowShard,
//     one append per decode step; the next iteration gates on the grants;
//   * Pin/Unpin exclude a sequence from the spill victim set explicitly
//     (a preemption-policy lever; unit-tested). The serving batcher does
//     NOT hold pins across iterations: argument reads pin each shard only
//     for the duration of the transfer, and GrowShard self-pins during a
//     grow — so a paused or cold sequence is exactly the byte-set the
//     PR-5 Spiller pages to host DRAM under pressure (read through /
//     restored by the next decode's argument transfer).
//
// The registry mirrors shard bytes into each sequence's ShardedBuffer
// handle at Append time; iterations only read the handle after the grows
// they gated on were granted, so the mirror never runs ahead of memory the
// store actually holds at the moment it is consumed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"
#include "pathways/object_store.h"
#include "pathways/virtual_device.h"
#include "sim/future.h"

namespace pw::pathways {
class PathwaysRuntime;
}

namespace pw::serving {

struct KvCacheConfig {
  // KV bytes appended per token on each device shard.
  Bytes bytes_per_token_per_shard = KiB(16);
};

class KvCache {
 public:
  KvCache(pathways::PathwaysRuntime* runtime, pathways::ClientId owner,
          KvCacheConfig config);

  KvCache(const KvCache&) = delete;
  KvCache& operator=(const KvCache&) = delete;

  // Allocates the sequence's KV buffer for `prompt_tokens`, one shard per
  // slice device (resolved against the resource manager's *current*
  // virtual→physical mapping, so post-crash re-prefills land on remapped
  // devices). Completes when every shard's HBM reservation is granted.
  sim::SimFuture<sim::Unit> CreateSequence(std::int64_t seq,
                                           const pathways::VirtualSlice& slice,
                                           int prompt_tokens);
  // Prefill finished: shard contents exist (spillable once unpinned).
  void MarkReady(std::int64_t seq);
  // Appends `tokens` decode steps to every shard; completes when all grows
  // are granted. The handle mirror is advanced immediately (see above).
  sim::SimFuture<sim::Unit> Append(std::int64_t seq, int tokens = 1);
  void Pin(std::int64_t seq);
  void Unpin(std::int64_t seq);  // no-op if not pinned (abort unwinding)
  void Release(std::int64_t seq);

  bool Contains(std::int64_t seq) const { return seqs_.contains(seq); }
  const pathways::ShardedBuffer& handle(std::int64_t seq) const;
  int tokens_of(std::int64_t seq) const;
  Bytes bytes_of(std::int64_t seq) const;  // all shards, mirror view
  bool AnyShardInDram(std::int64_t seq) const;
  bool pinned(std::int64_t seq) const;

  Bytes BytesForTokens(int tokens) const {
    return static_cast<Bytes>(tokens) * config_.bytes_per_token_per_shard;
  }

  int live_sequences() const { return static_cast<int>(seqs_.size()); }
  // Mirror-view per-shard bytes over all live sequences (each sequence
  // holds this much on *every* slice device).
  Bytes live_bytes_per_shard() const { return live_bytes_per_shard_; }
  Bytes pinned_bytes_per_shard() const;
  std::int64_t appends() const { return appends_; }

  const KvCacheConfig& config() const { return config_; }

 private:
  struct Seq {
    pathways::ShardedBuffer handle;
    int tokens = 0;
    bool pinned = false;
    bool ready = false;
  };

  pathways::PathwaysRuntime* runtime_;
  pathways::ClientId owner_;
  KvCacheConfig config_;
  std::map<std::int64_t, Seq> seqs_;
  Bytes live_bytes_per_shard_ = 0;
  std::int64_t appends_ = 0;
};

}  // namespace pw::serving
