#include "serving/kv_cache.h"

#include <utility>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::serving {

KvCache::KvCache(pathways::PathwaysRuntime* runtime, pathways::ClientId owner,
                 KvCacheConfig config)
    : runtime_(runtime), owner_(owner), config_(config) {
  PW_CHECK(runtime_ != nullptr);
  PW_CHECK_GT(config_.bytes_per_token_per_shard, 0);
}

sim::SimFuture<sim::Unit> KvCache::CreateSequence(
    std::int64_t seq, const pathways::VirtualSlice& slice, int prompt_tokens) {
  PW_CHECK(!seqs_.contains(seq)) << "KV sequence " << seq << " created twice";
  PW_CHECK_GT(prompt_tokens, 0);
  std::vector<hw::DeviceId> devices;
  devices.reserve(slice.devices.size());
  for (const pathways::VirtualDevice& vdev : slice.devices) {
    devices.push_back(runtime_->resource_manager().Lookup(vdev.id));
  }
  Seq s;
  s.tokens = prompt_tokens;
  s.handle = runtime_->object_store().CreateBuffer(
      owner_, pathways::ExecutionId(), devices, BytesForTokens(prompt_tokens));
  live_bytes_per_shard_ += BytesForTokens(prompt_tokens);
  auto ready = s.handle.ready;
  seqs_.emplace(seq, std::move(s));
  return ready;
}

void KvCache::MarkReady(std::int64_t seq) {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  if (it->second.ready) return;
  it->second.ready = true;
  pathways::ObjectStore& store = runtime_->object_store();
  for (int i = 0; i < it->second.handle.num_shards(); ++i) {
    store.MarkShardContentReady(it->second.handle.id, i);
  }
}

sim::SimFuture<sim::Unit> KvCache::Append(std::int64_t seq, int tokens) {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  PW_CHECK_GT(tokens, 0);
  Seq& s = it->second;
  const Bytes delta = BytesForTokens(tokens);
  pathways::ObjectStore& store = runtime_->object_store();
  std::vector<sim::SimFuture<sim::Unit>> grants;
  grants.reserve(s.handle.shards.size());
  for (std::size_t i = 0; i < s.handle.shards.size(); ++i) {
    grants.push_back(store.GrowShard(s.handle.id, static_cast<int>(i), delta));
    s.handle.shards[i].bytes += delta;  // mirror; consumed only post-grant
  }
  s.tokens += tokens;
  live_bytes_per_shard_ += delta;
  ++appends_;
  return sim::WhenAll(&runtime_->simulator(), grants);
}

void KvCache::Pin(std::int64_t seq) {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  Seq& s = it->second;
  PW_CHECK(!s.pinned) << "KV sequence " << seq << " pinned twice";
  s.pinned = true;
  pathways::ObjectStore& store = runtime_->object_store();
  for (int i = 0; i < s.handle.num_shards(); ++i) {
    store.PinShard(s.handle.id, i);
  }
}

void KvCache::Unpin(std::int64_t seq) {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  Seq& s = it->second;
  if (!s.pinned) return;
  s.pinned = false;
  pathways::ObjectStore& store = runtime_->object_store();
  for (int i = 0; i < s.handle.num_shards(); ++i) {
    store.UnpinShard(s.handle.id, i);
  }
}

void KvCache::Release(std::int64_t seq) {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  Unpin(seq);
  live_bytes_per_shard_ -= BytesForTokens(it->second.tokens);
  runtime_->object_store().Release(it->second.handle.id);
  seqs_.erase(it);
}

const pathways::ShardedBuffer& KvCache::handle(std::int64_t seq) const {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  return it->second.handle;
}

int KvCache::tokens_of(std::int64_t seq) const {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  return it->second.tokens;
}

Bytes KvCache::bytes_of(std::int64_t seq) const {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  return it->second.handle.total_bytes();
}

bool KvCache::AnyShardInDram(std::int64_t seq) const {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  const pathways::ObjectStore& store = runtime_->object_store();
  for (int i = 0; i < it->second.handle.num_shards(); ++i) {
    if (store.ShardInDram(it->second.handle.id, i)) return true;
  }
  return false;
}

bool KvCache::pinned(std::int64_t seq) const {
  auto it = seqs_.find(seq);
  PW_CHECK(it != seqs_.end());
  return it->second.pinned;
}

Bytes KvCache::pinned_bytes_per_shard() const {
  Bytes total = 0;
  for (const auto& [id, s] : seqs_) {
    if (s.pinned) total += BytesForTokens(s.tokens);
  }
  return total;
}

}  // namespace pw::serving
