// Model-derived iteration costs for the serving regime (docs/SERVING.md).
//
// PR 6 shipped the batcher with analytic per-token constants; this derives
// the same BatcherConfig cost fields from a `src/models/` decoder-only
// transformer and the simulated hardware instead, so serving latencies and
// KV byte counts follow the model that is nominally being served:
//
//   * prefill is compute-bound: forward FLOPs per prompt token (2 per
//     parameter), split across the slice's tensor-parallel shards at the
//     model's calibrated MFU;
//   * decode is memory-bound: each iteration streams the full weight shard
//     from HBM exactly once regardless of batch size — that read is the
//     iteration floor — while each decoding sequence adds its own token's
//     FLOPs on top;
//   * the KV cache grows by the model's bf16 K+V rows per token, split
//     across shards, which is what the cross-island handoff actually moves
//     over the DCN in the disaggregated mode (serving/disagg.h).
//
// KV *paging* costs (spill, read-through, restore) are deliberately not
// modeled here: KV buffers ride the iteration's argument dataflow, so the
// memory hierarchy already charges them (docs/MEMORY.md).
#pragma once

#include "common/units.h"
#include "hw/system_params.h"
#include "models/transformer.h"
#include "serving/batcher.h"
#include "serving/kv_cache.h"

namespace pw::serving {

struct ModelServingCosts {
  Duration iteration_base;
  Duration prefill_per_token;
  Duration decode_per_token;
  Bytes kv_bytes_per_token_per_shard = 0;

  // `num_shards` is the tensor-parallel width (the batcher slice's device
  // count); weights, per-token FLOPs, and KV rows all split across it.
  static ModelServingCosts Derive(const models::TransformerConfig& model,
                                  const hw::SystemParams& params,
                                  int num_shards);

  // Overwrites the analytic cost fields; policy/budget knobs are untouched.
  void Apply(BatcherConfig* config) const;
  KvCacheConfig KvConfig() const { return {kv_bytes_per_token_per_shard}; }
};

}  // namespace pw::serving
