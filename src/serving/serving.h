// Umbrella header for the serving regime (docs/SERVING.md): request model,
// per-sequence KV cache over the ObjectStore, iteration-level batching
// (continuous + static baseline), tenant traffic, and serving metrics.
#pragma once

#include "serving/batcher.h"    // IWYU pragma: export
#include "serving/kv_cache.h"   // IWYU pragma: export
#include "serving/metrics.h"    // IWYU pragma: export
#include "serving/request.h"    // IWYU pragma: export
#include "serving/tenant.h"     // IWYU pragma: export
