// Umbrella header for the serving regime (docs/SERVING.md): request model,
// per-sequence KV cache over the ObjectStore, iteration-level batching
// (continuous + static baseline), disaggregated prefill/decode islands with
// KV handoff over DCN, model-derived iteration costs, tenant traffic, and
// serving metrics.
#pragma once

#include "serving/batcher.h"      // IWYU pragma: export
#include "serving/disagg.h"       // IWYU pragma: export
#include "serving/kv_cache.h"     // IWYU pragma: export
#include "serving/metrics.h"      // IWYU pragma: export
#include "serving/model_costs.h"  // IWYU pragma: export
#include "serving/request.h"      // IWYU pragma: export
#include "serving/tenant.h"       // IWYU pragma: export
