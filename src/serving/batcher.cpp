#include "serving/batcher.h"

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::serving {

const char* ToString(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kContinuous: return "continuous";
    case BatchPolicy::kStatic: return "static";
  }
  return "unknown";
}

const char* ToString(BatcherRole role) {
  switch (role) {
    case BatcherRole::kColocated: return "colocated";
    case BatcherRole::kPrefill: return "prefill";
    case BatcherRole::kDecode: return "decode";
  }
  return "unknown";
}

const char* ToString(RequestState state) {
  switch (state) {
    case RequestState::kQueued: return "queued";
    case RequestState::kPrefill: return "prefill";
    case RequestState::kTransferKv: return "transfer_kv";
    case RequestState::kDecoding: return "decoding";
    case RequestState::kFinished: return "finished";
    case RequestState::kShed: return "shed";
  }
  return "unknown";
}

Batcher::Batcher(pathways::Client* client, pathways::VirtualSlice slice,
                 KvCacheConfig kv_config, BatcherConfig config,
                 ServingMetrics* metrics, ServingTrace* trace)
    : client_(client),
      slice_(std::move(slice)),
      config_(config),
      kv_(&client->runtime(), client->id(), kv_config),
      metrics_(metrics),
      trace_(trace),
      sim_(&client->runtime().simulator()) {
  PW_CHECK(metrics_ != nullptr);
  PW_CHECK_GT(config_.max_batch, 0);
  PW_CHECK_GT(config_.token_budget, 0);
  PW_CHECK_GE(config_.kv_budget_per_device, 0);
  // Disaggregated islands only make sense with iteration-boundary
  // admission; the static drain-then-refill baseline stays colocated.
  if (config_.role != BatcherRole::kColocated) {
    PW_CHECK(config_.policy == BatchPolicy::kContinuous)
        << "disaggregated batchers require kContinuous";
  }
  // Physical floor for the fresh-prompt admission bound (see header):
  // freshly admitted KV is not yet content-ready, hence not spillable, and
  // must fit in HBM beside the iteration's own staging.
  hbm_floor_ = -1;
  for (const pathways::VirtualDevice& vdev : slice_.devices) {
    const hw::DeviceId dev = client_->runtime().resource_manager().Lookup(vdev.id);
    const Bytes cap = client_->runtime().cluster().device(dev).hbm().capacity();
    if (hbm_floor_ < 0 || cap < hbm_floor_) hbm_floor_ = cap;
  }
  PW_CHECK_GT(hbm_floor_, StagingPerShard())
      << "HBM cannot even hold the iteration staging";
}

Bytes Batcher::StagingPerShard() const {
  return config_.activation_bytes_per_shard + config_.output_bytes_per_shard;
}

void Batcher::Trace(const char* kind, std::int64_t request,
                    std::int64_t detail) {
  if (trace_ == nullptr) return;
  trace_->Record(sim_->now().nanos(), kind, request, detail);
}

bool Batcher::Offer(Request req) {
  PW_CHECK(config_.role != BatcherRole::kDecode)
      << "decode islands admit via EnqueueResident only";
  metrics_->OnArrival();
  Trace("arrive", req.id, req.prefill_tokens);
  // A request whose projected full KV alone exceeds the budget — or whose
  // prompt KV cannot sit in HBM beside the iteration staging — could never
  // be admitted; shedding it now keeps the queue head live.
  const bool oversized =
      (config_.kv_budget_per_device > 0 &&
       ProjectedPerShard(req) > config_.kv_budget_per_device) ||
      kv_.BytesForTokens(req.prefill_tokens) + StagingPerShard() > hbm_floor_;
  if (oversized || queue_.size() >= config_.queue_capacity) {
    req.state = RequestState::kShed;
    ++shed_;
    metrics_->OnShed();
    Trace("shed", req.id, oversized ? 1 : 0);
    return false;
  }
  req.state = RequestState::kQueued;
  queue_.push_back(std::move(req));
  MaybeStartIteration();
  return true;
}

void Batcher::EnqueueResident(Request req) {
  PW_CHECK(config_.role == BatcherRole::kDecode);
  PW_CHECK(kv_.Contains(req.id)) << "KV must be resident before enqueue";
  // Charge the projected *full* KV from enqueue (not admission): queued
  // sequences are resident here and will grow to max_kv_tokens, so the
  // router's budget throttle sees every byte this island is committed to.
  batch_projected_per_shard_ += ProjectedPerShard(req);
  req.state = RequestState::kQueued;
  Trace("enqueue", req.id, req.attempts);
  queue_.push_back(std::move(req));
  MaybeStartIteration();
}

void Batcher::Requeue(Request req) {
  PW_CHECK(config_.role != BatcherRole::kDecode);
  req.state = RequestState::kQueued;
  req.tokens_decoded = 0;
  queue_.push_front(std::move(req));
  MaybeStartIteration();
}

void Batcher::ReleaseHandoff(std::int64_t seq) {
  PW_CHECK(config_.role == BatcherRole::kPrefill);
  if (!kv_.Contains(seq)) return;  // crash already released it (HandleAbort)
  batch_projected_per_shard_ -= kv_.BytesForTokens(kv_.tokens_of(seq));
  kv_.Release(seq);
  // The freed projection may unblock queued admissions the fresh-prompt
  // floor was holding back while this KV awaited its transfer.
  MaybeStartIteration();
}

void Batcher::MaybeStartIteration() {
  if (iteration_inflight_) return;
  if (running_.empty() && queue_.empty()) return;
  StartIteration();
}

void Batcher::AdmitFromQueue() {
  if (config_.role == BatcherRole::kDecode) {
    // Decode island: every queued request's KV is already resident and
    // content-ready here (router-gated), so admission costs one token per
    // sequence and the KV budget was enforced by the router before the
    // bytes ever crossed the DCN.
    int budget_used = static_cast<int>(running_.size());
    while (!queue_.empty() &&
           static_cast<int>(running_.size()) < config_.max_batch &&
           budget_used + 1 <= config_.token_budget) {
      Request req = std::move(queue_.front());
      queue_.pop_front();
      PW_CHECK(kv_.Contains(req.id));
      req.state = RequestState::kDecoding;  // projection charged at enqueue
      Trace("admit", req.id, req.prefill_tokens);
      const std::int64_t id = req.id;
      running_.emplace(id, std::move(req));
      ++budget_used;
    }
    return;
  }
  // Continuous batching admits at every iteration boundary; the static
  // baseline only refills once the previous batch fully drained.
  if (config_.policy == BatchPolicy::kStatic && !running_.empty()) return;
  int budget_used = 0;
  for (const auto& [id, r] : running_) {
    if (r.state == RequestState::kDecoding) ++budget_used;
  }
  int admitted = 0;
  Bytes fresh_kv = 0;  // prompt KV admitted at THIS boundary, per shard
  while (!queue_.empty() &&
         static_cast<int>(running_.size()) < config_.max_batch) {
    Request& head = queue_.front();
    const bool fits_tokens =
        budget_used + head.prefill_tokens <= config_.token_budget;
    // A prompt alone bigger than the whole budget would never fit; let it
    // through (once, first) rather than wedge the queue head forever.
    const bool never_fits = head.prefill_tokens > config_.token_budget;
    if (!fits_tokens && !(never_fits && admitted == 0)) break;
    if (config_.kv_budget_per_device > 0 &&
        batch_projected_per_shard_ + ProjectedPerShard(head) >
            config_.kv_budget_per_device) {
      break;  // blocks until running sequences finish and release KV
    }
    // Fresh prompt KV is written by the upcoming prefill pass, so it is
    // not content-ready and cannot spill: it must fit in physical HBM
    // beside the iteration's staging. Without this bound an all-prefill
    // batch can pack HBM with unspillable KV and wedge its own staging
    // reservation. Previously-admitted sequences are content-ready (hence
    // evictable) by the next boundary and don't count against the floor.
    const Bytes head_kv = kv_.BytesForTokens(head.prefill_tokens);
    if (fresh_kv + head_kv + StagingPerShard() > hbm_floor_) break;
    fresh_kv += head_kv;
    Request req = std::move(head);
    queue_.pop_front();
    req.state = RequestState::kPrefill;
    budget_used += req.prefill_tokens;
    batch_projected_per_shard_ += ProjectedPerShard(req);
    kv_.CreateSequence(req.id, slice_, req.prefill_tokens);
    Trace("admit", req.id, req.prefill_tokens);
    const std::int64_t id = req.id;
    running_.emplace(id, std::move(req));
    ++admitted;
  }
}

void Batcher::StartIteration() {
  iteration_inflight_ = true;
  AdmitFromQueue();
  if (running_.empty()) {
    // Everything waiting is blocked on the KV budget with nothing running —
    // impossible by construction (oversized requests shed at offer time),
    // but stay safe rather than dispatch an empty gang.
    iteration_inflight_ = false;
    return;
  }
  ++iterations_;

  int decoding = 0;
  std::int64_t prefill_toks = 0;
  for (const auto& [id, r] : running_) {
    if (r.state == RequestState::kDecoding) {
      ++decoding;
    } else {
      prefill_toks += r.prefill_tokens;
    }
  }

  xlasim::CompiledFunction fn;
  fn.name = "serve_iter";
  fn.num_shards = slice_.num_devices();
  fn.pre_collective_time = config_.iteration_base +
                           config_.prefill_per_token * prefill_toks +
                           config_.decode_per_token * decoding;
  if (config_.collective) {
    fn.collective = net::CollectiveKind::kAllReduce;
    fn.collective_bytes_per_shard = config_.collective_bytes_per_shard;
  }
  fn.input_bytes_per_shard = config_.activation_bytes_per_shard;
  fn.output_bytes_per_shard = config_.output_bytes_per_shard;

  // One gang node; every running sequence's KV buffer is an argument, so a
  // paged-out shard pays its host-DRAM read-through (and opportunistic
  // restore) on the wire like any other operand, while resident same-device
  // shards hand off in place for free. The execution pins each shard only
  // while it reads it — the batcher holds no pins of its own, keeping the
  // batch's cold KV spillable mid-iteration (see header).
  pathways::ProgramBuilder pb("serve_iter");
  std::vector<pathways::ValueRef> ins;
  std::vector<pathways::ShardedBuffer> args;
  ins.reserve(running_.size());
  args.reserve(running_.size());
  for (const auto& [id, r] : running_) {
    ins.push_back(pb.Argument());
    args.push_back(kv_.handle(id));
  }
  pb.Result(pb.Call(fn, slice_, ins));
  current_program_ =
      std::make_unique<pathways::PathwaysProgram>(std::move(pb).Build());
  client_->Run(current_program_.get(), std::move(args))
      .Then([this](const pathways::ExecutionResult& r) { OnIterationDone(r); });
}

void Batcher::OnIterationDone(const pathways::ExecutionResult& result) {
  for (const auto& out : result.outputs) {
    client_->runtime().object_store().Release(out.id);
  }
  if (result.failed) {
    HandleAbort();
    return;
  }
  consecutive_aborts_ = 0;
  const TimePoint now = sim_->now();
  int finished_this_iteration = 0;
  std::vector<Request> handed_off;
  std::vector<std::int64_t> to_grow;
  for (auto it = running_.begin(); it != running_.end();) {
    Request& req = it->second;
    if (req.state == RequestState::kPrefill) {
      // The prefill pass wrote the prompt's KV. Colocated it also emitted
      // the first output token; on a prefill island it emits none — the
      // sequence leaves the batch for the router's cross-island transfer,
      // with its KV (and projection charge) staying on this island until
      // the router calls ReleaseHandoff.
      kv_.MarkReady(req.id);
      req.prefill_done_at = now;
      if (config_.role == BatcherRole::kPrefill) {
        req.state = RequestState::kTransferKv;
        metrics_->OnPrefillDone(now - req.arrival);
        Trace("prefill", req.id, req.prefill_tokens);
        ++handoffs_;
        handed_off.push_back(std::move(req));
        it = running_.erase(it);
        continue;
      }
      req.state = RequestState::kDecoding;
      req.tokens_decoded = 1;
      req.first_token_at = now;
      req.last_token_at = now;
      metrics_->OnFirstToken(now - req.arrival);
      Trace("prefill", req.id, req.prefill_tokens);
    } else if (config_.role == BatcherRole::kDecode &&
               req.tokens_decoded == 0) {
      // First decode step after the KV handoff: the prefill island emitted
      // no token, so THIS is the request's first output token — TTFT spans
      // arrival → here, with the DCN transfer and decode queueing included
      // (regression-tested against conflation with prefill completion).
      req.tokens_decoded = 1;
      req.first_token_at = now;
      req.last_token_at = now;
      metrics_->OnFirstToken(now - req.arrival);
      Trace("first_token", req.id, req.attempts);
    } else {
      ++req.tokens_decoded;
      metrics_->OnToken(now - req.last_token_at);
      req.last_token_at = now;
      Trace("token", req.id, req.tokens_decoded);
    }
    if (req.tokens_decoded >= req.decode_tokens) {
      req.state = RequestState::kFinished;
      req.finished_at = now;
      metrics_->OnFinish(now - req.arrival);
      Trace("finish", req.id, req.tokens_decoded);
      batch_projected_per_shard_ -= ProjectedPerShard(req);
      kv_.Release(req.id);
      ++finished_;
      ++finished_this_iteration;
      it = running_.erase(it);
    } else {
      to_grow.push_back(req.id);
      ++it;
    }
  }
  // Hand finished prefills to the router after the batch walk (the callback
  // may synchronously start decode-island work; it never re-enters this
  // batcher's running_ set).
  for (Request& req : handed_off) {
    PW_CHECK(handoff_ != nullptr) << "kPrefill batcher needs set_handoff";
    handoff_(std::move(req));
  }
  // Finished sequences released KV and projection charge: tell the router
  // so transfers throttled on this island's budget can proceed.
  if (finished_this_iteration > 0 && on_capacity_) on_capacity_();
  // One KV token appended per surviving sequence; the next iteration gates
  // on the grants. Appends are chained sequentially: GrowShard self-pins
  // its sequence while the reservation waits, so with one grow in flight
  // at a time every *other* sequence stays an eligible spill victim and
  // the boundary cannot wedge even with HBM packed full of KV.
  auto ids = std::make_shared<std::vector<std::int64_t>>(std::move(to_grow));
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  // The function holds only a weak self-reference (no shared_ptr cycle);
  // each pending Then callback keeps the chain alive until it fires.
  std::weak_ptr<std::function<void(std::size_t)>> weak_step = step;
  *step = [this, ids, weak_step](std::size_t i) {
    if (i == ids->size()) {
      iteration_inflight_ = false;
      MaybeStartIteration();
      return;
    }
    kv_.Append((*ids)[i], 1)
        .Then([strong = weak_step.lock(), i](const sim::Unit&) {
          (*strong)(i + 1);
        });
  };
  (*step)(0);
}

void Batcher::HandleAbort() {
  ++aborted_iterations_;
  ++consecutive_aborts_;
  metrics_->OnAbortedIteration();
  Trace("abort", -1, static_cast<std::int64_t>(running_.size()));
  if (config_.role == BatcherRole::kDecode) {
    // Decode-island crash: the KV of every sequence here — running AND
    // queued, all resident on this slice — is gone. Hand the requests back
    // to the router (ascending id order) for a fresh prefill on the
    // prefill island; nothing re-enters this queue directly.
    PW_CHECK(abort_return_ != nullptr) << "kDecode batcher needs set_abort_return";
    std::vector<Request> back;
    back.reserve(running_.size() + queue_.size());
    for (auto& [id, req] : running_) back.push_back(std::move(req));
    running_.clear();
    for (Request& req : queue_) back.push_back(std::move(req));
    queue_.clear();
    // Both running and queued requests were charged at enqueue.
    for (const Request& req : back) {
      batch_projected_per_shard_ -= ProjectedPerShard(req);
    }
    for (Request& req : back) {
      if (kv_.Contains(req.id)) kv_.Release(req.id);
      req.state = RequestState::kQueued;
      req.tokens_decoded = 0;
      ++req.attempts;
      Trace("requeue", req.id, req.attempts);
      abort_return_(std::move(req));
    }
    sim_->Schedule(config_.retry.BackoffFor(consecutive_aborts_), [this] {
      iteration_inflight_ = false;
      MaybeStartIteration();
    });
    return;
  }
  // Every running sequence's KV spans the crashed device: release it all
  // and requeue at the head (reverse order preserves id order up front) for
  // a fresh prefill against the post-remap mapping. On a prefill island,
  // sequences already handed off stay charged — the router's completion
  // check detects the crash epoch and releases both islands' copies.
  for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
    Request& req = it->second;
    batch_projected_per_shard_ -= ProjectedPerShard(req);
    if (kv_.Contains(req.id)) kv_.Release(req.id);
    req.state = RequestState::kQueued;
    req.tokens_decoded = 0;
    ++req.attempts;
    Trace("requeue", req.id, req.attempts);
    queue_.push_front(std::move(req));
  }
  running_.clear();
  // Hold the dispatch loop through a capped exponential backoff so repeated
  // aborts inside one crash window don't spin.
  sim_->Schedule(config_.retry.BackoffFor(consecutive_aborts_), [this] {
    iteration_inflight_ = false;
    MaybeStartIteration();
  });
}

}  // namespace pw::serving
