#include "serving/disagg.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "hw/cluster.h"
#include "pathways/runtime.h"

namespace pw::serving {

struct DisaggRouter::Transfer {
  Request req;
  int prefill_index = 0;
  int decode_index = 0;
  Batcher* src = nullptr;
  Batcher* dst = nullptr;
  // Failure epochs (sum of Device::failures() over the handle's physical
  // shards) at handoff (src) / transfer start (dst); any crash on either
  // slice while the KV is in flight moves one of them.
  std::int64_t src_epoch = 0;
  std::int64_t dst_epoch = 0;
  Bytes inflight_charge = 0;   // prompt KV per dst shard (unready bytes)
  Bytes committed_charge = 0;  // projected full KV per dst shard
  int pieces_outstanding = 0;
};

DisaggRouter::DisaggRouter(std::vector<Batcher*> prefill,
                           std::vector<Batcher*> decode,
                           ServingMetrics* metrics, ServingTrace* trace,
                           DisaggRouterConfig config)
    : prefill_(std::move(prefill)),
      decode_(std::move(decode)),
      metrics_(metrics),
      trace_(trace),
      config_(config) {
  PW_CHECK(!prefill_.empty());
  PW_CHECK(!decode_.empty());
  PW_CHECK(metrics_ != nullptr);
  pathways::PathwaysRuntime& runtime = prefill_.front()->client()->runtime();
  sim_ = &runtime.simulator();
  cluster_ = &runtime.cluster();
  inflight_per_shard_.assign(decode_.size(), 0);
  committed_per_shard_.assign(decode_.size(), 0);
  for (std::size_t i = 0; i < prefill_.size(); ++i) {
    Batcher* b = prefill_[i];
    PW_CHECK(b->config().role == BatcherRole::kPrefill);
    b->set_handoff([this, i](Request req) {
      OnPrefillDone(static_cast<int>(i), std::move(req));
    });
  }
  for (Batcher* b : decode_) {
    PW_CHECK(b->config().role == BatcherRole::kDecode);
    b->set_abort_return([this](Request req) { OnDecodeAbort(std::move(req)); });
    b->set_on_capacity([this] { StartNextTransfers(); });
  }
}

void DisaggRouter::Trace(const char* kind, std::int64_t request,
                         std::int64_t detail) {
  if (trace_ == nullptr) return;
  trace_->Record(sim_->now().nanos(), kind, request, detail);
}

Bytes DisaggRouter::DecodeFloor(const Batcher& dst) const {
  if (config_.max_inflight_per_shard > 0) return config_.max_inflight_per_shard;
  return dst.hbm_floor() - dst.StagingPerShard();
}

std::int64_t DisaggRouter::FailureEpoch(const Batcher& batcher,
                                        std::int64_t seq) const {
  std::int64_t epoch = 0;
  for (const auto& shard : batcher.kv().handle(seq).shards) {
    epoch += cluster_->device(shard.device).failures();
  }
  return epoch;
}

bool DisaggRouter::AnyDeviceFailed(const Batcher& batcher,
                                   std::int64_t seq) const {
  for (const auto& shard : batcher.kv().handle(seq).shards) {
    if (cluster_->device(shard.device).failed()) return true;
  }
  return false;
}

bool DisaggRouter::Offer(Request req) {
  // A request that could never satisfy the decode-side bounds on ANY decode
  // island — projected full KV over the KV budget, or prompt KV alone over
  // the in-flight floor — would prefill and then wedge the handoff FIFO
  // forever; shed it before it costs prefill work.
  bool decode_possible = false;
  for (const Batcher* dst : decode_) {
    const Bytes projected = dst->kv().BytesForTokens(req.max_kv_tokens());
    const Bytes prompt = dst->kv().BytesForTokens(req.prefill_tokens);
    const Bytes budget = dst->config().kv_budget_per_device;
    if ((budget == 0 || projected <= budget) && prompt <= DecodeFloor(*dst)) {
      decode_possible = true;
      break;
    }
  }
  if (!decode_possible) {
    metrics_->OnArrival();
    metrics_->OnShed();
    ++shed_;
    Trace("arrive", req.id, req.prefill_tokens);
    Trace("shed", req.id, 2);
    return false;
  }
  // Route to the shortest prefill queue; ties to the lowest index keep the
  // choice deterministic.
  std::size_t best = 0;
  for (std::size_t i = 1; i < prefill_.size(); ++i) {
    if (prefill_[i]->queue_depth() < prefill_[best]->queue_depth()) best = i;
  }
  return prefill_[best]->Offer(std::move(req));
}

void DisaggRouter::OnPrefillDone(int prefill_index, Request req) {
  PendingHandoff pending;
  pending.prefill_index = prefill_index;
  pending.src_epoch = FailureEpoch(*prefill_[prefill_index], req.id);
  Trace("handoff", req.id, req.prefill_tokens);
  pending.req = std::move(req);
  pending_.push_back(std::move(pending));
  StartNextTransfers();
}

void DisaggRouter::OnDecodeAbort(Request req) {
  // The decode batcher already released the request's KV, bumped attempts,
  // and traced the requeue; it only needs a fresh prefill now.
  ReturnForPrefill(std::move(req));
  StartNextTransfers();
}

void DisaggRouter::ReturnForPrefill(Request req) {
  ++reprefills_;
  std::size_t best = 0;
  for (std::size_t i = 1; i < prefill_.size(); ++i) {
    if (prefill_[i]->queue_depth() < prefill_[best]->queue_depth()) best = i;
  }
  prefill_[best]->Requeue(std::move(req));
}

void DisaggRouter::StartNextTransfers() {
  // FIFO over finished prefills: the head transfer starts as soon as the
  // best decode island can take its bytes; a blocked head blocks the line
  // (deterministic, and the retry points — transfer completion, decode
  // finish, decode abort — all re-enter here).
  while (!pending_.empty()) {
    const Request& req = pending_.front().req;
    int best = -1;
    Bytes best_committed = 0;
    for (std::size_t d = 0; d < decode_.size(); ++d) {
      const Batcher* dst = decode_[d];
      const Bytes projected = dst->kv().BytesForTokens(req.max_kv_tokens());
      const Bytes prompt = dst->kv().BytesForTokens(req.prefill_tokens);
      const Bytes budget = dst->config().kv_budget_per_device;
      if (budget > 0 && projected > budget) continue;   // never fits here
      if (prompt > DecodeFloor(*dst)) continue;         // never fits here
      const Bytes committed =
          committed_per_shard_[d] + dst->projected_per_shard();
      if (best < 0 || committed < best_committed) {
        best = static_cast<int>(d);
        best_committed = committed;
      }
    }
    PW_CHECK_GE(best, 0) << "offer-time shed should have caught req " << req.id;
    Batcher* dst = decode_[static_cast<std::size_t>(best)];
    const Bytes prompt = dst->kv().BytesForTokens(req.prefill_tokens);
    const Bytes projected = dst->kv().BytesForTokens(req.max_kv_tokens());
    const Bytes budget = dst->config().kv_budget_per_device;
    // Throttle 1: in-flight KV is not content-ready on the decode island,
    // hence unspillable — it must fit in physical HBM beside the decode
    // iteration's staging (the cross-island fresh-prompt floor).
    if (inflight_per_shard_[static_cast<std::size_t>(best)] > 0 &&
        inflight_per_shard_[static_cast<std::size_t>(best)] + prompt >
            DecodeFloor(*dst)) {
      return;
    }
    // Throttle 2: everything committed to the island — in flight, queued,
    // running, all at projected full length — stays within the KV budget,
    // so decode-side live KV can never exceed it.
    if (budget > 0 && best_committed > 0 && best_committed + projected > budget) {
      return;
    }
    PendingHandoff pending = std::move(pending_.front());
    pending_.pop_front();

    auto t = std::make_shared<Transfer>();
    t->req = std::move(pending.req);
    t->prefill_index = pending.prefill_index;
    t->decode_index = best;
    t->src = prefill_[static_cast<std::size_t>(pending.prefill_index)];
    t->dst = dst;
    t->src_epoch = pending.src_epoch;
    t->inflight_charge = prompt;
    t->committed_charge = projected;
    inflight_per_shard_[static_cast<std::size_t>(best)] += prompt;
    committed_per_shard_[static_cast<std::size_t>(best)] += projected;
    peak_inflight_per_shard_ =
        std::max(peak_inflight_per_shard_,
                 inflight_per_shard_[static_cast<std::size_t>(best)]);
    ++inflight_;
    ++transfers_started_;

    // Reserve the decode-side buffer through the store's ticket-ordered
    // eager path; cold resident KV spills to make room if needed. Streaming
    // starts only once every dst shard's reservation is granted.
    sim::SimFuture<sim::Unit> ready = dst->kv().CreateSequence(
        t->req.id, dst->slice(), t->req.prefill_tokens);
    t->dst_epoch = FailureEpoch(*dst, t->req.id);
    Trace("kv_send", t->req.id,
          prompt * static_cast<Bytes>(
                       dst->kv().handle(t->req.id).num_shards()));
    ready.Then([this, t](const sim::Unit&) { StreamPieces(t); });
  }
}

void DisaggRouter::StreamPieces(const std::shared_ptr<Transfer>& t) {
  // Reshard P prefill-island shards into D decode-island shards: every
  // (src, dst) pair carries its piece of the prompt's KV, each piece riding
  // src PCIe (or the DRAM read-through if the shard was spilled) → DCN →
  // dst PCIe. Byte totals are defined by the destination layout so the
  // bytes landing per dst shard equal the created buffer exactly.
  const auto& src_h = t->src->kv().handle(t->req.id);
  const auto& dst_h = t->dst->kv().handle(t->req.id);
  const int num_src = src_h.num_shards();
  const int num_dst = dst_h.num_shards();
  const Bytes total = t->inflight_charge * static_cast<Bytes>(num_dst);
  const int pieces = num_src * num_dst;
  t->pieces_outstanding = pieces;
  const Bytes base = total / pieces;
  const Bytes remainder = total % pieces;
  for (int k = 0; k < pieces; ++k) {
    const Bytes piece = base + (k < remainder ? 1 : 0);
    SendPiece(t, k / num_dst, k % num_dst, piece);
  }
}

void DisaggRouter::SendPiece(const std::shared_ptr<Transfer>& t, int src_shard,
                             int dst_shard, Bytes bytes) {
  pathways::ObjectStore& store =
      t->src->client()->runtime().object_store();
  const auto& src_h = t->src->kv().handle(t->req.id);
  const auto& dst_h = t->dst->kv().handle(t->req.id);
  const pathways::LogicalBufferId src_buf = src_h.id;
  const hw::DeviceId src_dev = src_h.shards[static_cast<std::size_t>(src_shard)].device;
  const hw::DeviceId dst_dev = dst_h.shards[static_cast<std::size_t>(dst_shard)].device;
  hw::Host& src_host = cluster_->host_of(src_dev);
  hw::Host& dst_host = cluster_->host_of(dst_dev);
  auto land = [this, t, bytes] {
    bytes_transferred_ += bytes;
    if (--t->pieces_outstanding == 0) FinishTransfer(t);
  };
  // Pin the source shard while it is being read (mirrors the execution
  // engine's argument-transfer path, execution.cpp): a spilled source is
  // read through from host DRAM without re-acquiring HBM, anything else
  // leaves the device over PCIe first. UnpinShard is refcounted and a
  // no-op on released buffers, so failure cleanup cannot race the unpins.
  store.PinShard(src_buf, src_shard);
  if (store.ShardInDram(src_buf, src_shard)) {
    store.NoteDramRead(bytes);
    pathways::ObjectStore* store_ptr = &store;
    src_host.SendDcn(dst_host.id(), bytes,
                     [store_ptr, src_buf, src_shard, &dst_host, dst_dev, bytes,
                      land] {
                       store_ptr->UnpinShard(src_buf, src_shard);
                       dst_host.pcie(dst_dev).Transfer(bytes, land);
                     });
    return;
  }
  pathways::ObjectStore* store_ptr = &store;
  src_host.pcie(src_dev).Transfer(
      bytes, [store_ptr, src_buf, src_shard, &src_host, &dst_host, dst_dev,
              bytes, land] {
        store_ptr->UnpinShard(src_buf, src_shard);
        src_host.SendDcn(dst_host.id(), bytes, [&dst_host, dst_dev, bytes,
                                                land] {
          dst_host.pcie(dst_dev).Transfer(bytes, land);
        });
      });
}

void DisaggRouter::FinishTransfer(const std::shared_ptr<Transfer>& t) {
  const std::size_t d = static_cast<std::size_t>(t->decode_index);
  --inflight_;
  inflight_per_shard_[d] -= t->inflight_charge;
  // Crash detection across the whole handoff window: any failure on either
  // slice since the snapshots means some piece was computed from — or
  // landed on — a device that lost its HBM. The data cannot be trusted;
  // release both islands' copies (no orphaned shards) and re-prefill from
  // the request, exactly the PR-3 failover shape.
  const bool failed =
      FailureEpoch(*t->src, t->req.id) != t->src_epoch ||
      FailureEpoch(*t->dst, t->req.id) != t->dst_epoch ||
      AnyDeviceFailed(*t->src, t->req.id) || AnyDeviceFailed(*t->dst, t->req.id);
  if (!failed) {
    ++transfers_completed_;
    committed_per_shard_[d] -= t->committed_charge;
    t->dst->kv().MarkReady(t->req.id);
    Trace("kv_ready", t->req.id, t->req.prefill_tokens);
    t->src->ReleaseHandoff(t->req.id);
    t->req.state = RequestState::kQueued;
    // The committed charge re-appears inside the decode batcher's
    // projection the moment EnqueueResident charges it (same event).
    t->dst->EnqueueResident(std::move(t->req));
  } else {
    ++transfers_failed_;
    committed_per_shard_[d] -= t->committed_charge;
    Trace("kv_fail", t->req.id, t->req.attempts);
    if (t->dst->kv().Contains(t->req.id)) t->dst->kv().Release(t->req.id);
    t->src->ReleaseHandoff(t->req.id);
    t->req.tokens_decoded = 0;
    ++t->req.attempts;
    Trace("requeue", t->req.id, t->req.attempts);
    ReturnForPrefill(std::move(t->req));
  }
  StartNextTransfers();
}

bool DisaggRouter::idle() const {
  if (!pending_.empty() || inflight_ != 0) return false;
  for (const Batcher* b : prefill_) {
    if (!b->idle()) return false;
  }
  for (const Batcher* b : decode_) {
    if (!b->idle()) return false;
  }
  return true;
}

}  // namespace pw::serving
