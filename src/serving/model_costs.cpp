#include "serving/model_costs.h"

#include <algorithm>

#include "common/logging.h"

namespace pw::serving {

ModelServingCosts ModelServingCosts::Derive(
    const models::TransformerConfig& model, const hw::SystemParams& params,
    int num_shards) {
  PW_CHECK_GT(num_shards, 0);
  PW_CHECK(!model.encoder_decoder)
      << "serving costs model decoder-only transformers";
  ModelServingCosts costs;
  const double shard_flops = params.device_flops * model.effective_mfu;
  // Compute time to push one token through the forward pass, all shards
  // working in parallel on their slice of every layer.
  const double token_compute_s =
      model.InferenceFlopsPerToken() / (shard_flops * num_shards);
  costs.prefill_per_token = Duration::Seconds(token_compute_s);
  // A decode iteration reads the weight shard from HBM once however many
  // sequences are batched — the classic batching economics: the read
  // amortizes across the batch, so the iteration floor is memory-bound.
  const double weight_read_s =
      (static_cast<double>(model.WeightBytes()) / num_shards) /
      params.hbm_bandwidth;
  costs.iteration_base =
      Duration::Seconds(weight_read_s) + params.kernel_launch_overhead;
  // Each decoding sequence contributes its own token's FLOPs; its KV-cache
  // reads are charged by the memory hierarchy via the argument dataflow.
  costs.decode_per_token = Duration::Seconds(token_compute_s);
  costs.kv_bytes_per_token_per_shard =
      std::max<Bytes>(1, model.KvBytesPerToken() / num_shards);
  return costs;
}

void ModelServingCosts::Apply(BatcherConfig* config) const {
  config->iteration_base = iteration_base;
  config->prefill_per_token = prefill_per_token;
  config->decode_per_token = decode_per_token;
}

}  // namespace pw::serving
