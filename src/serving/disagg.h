// Disaggregated prefill/decode serving over the DCN (docs/SERVING.md).
//
// DistServe-style split: prefill gangs run on one island's slice, decode
// gangs on another's, and a finished prompt's KV cache streams between them
// over the existing sharded-buffer dataflow — host PCIe hops plus
// `DcnFabric` host-to-host messages — so PR-3 NIC degradation and
// partitions bite on real KV bytes, and PR-5 spilling applies on both ends.
// With the flow-level Clos DCN enabled (DcnClosParams::enabled,
// docs/NETWORK.md) the KV streams additionally contend on real paths:
// many prefill shards landing on one decode host incast on that host's
// downlink, and cross-leaf transfers share oversubscribed uplinks — the
// router needs no changes, since completion is callback-driven and the
// fabric keeps per-(src,dst) FIFO across partitions either way.
//
// The router owns the request lifecycle around the two Batcher roles:
//
//   Offer ──► prefill Batcher (kPrefill; fresh-prompt floor + KV budget)
//     │  prefill done: KV content-ready on the prefill island, NO token yet
//     ▼
//   handoff FIFO ──(throttled)──► KV transfer, P src shards × D dst shards:
//     per piece  Pin(src) → [DRAM read-through | PCIe] → DCN → PCIe → land
//     │  all pieces landed + no crash epoch moved on either slice
//     ▼
//   decode KvCache::MarkReady ──► decode Batcher::EnqueueResident (kDecode)
//     first decode iteration emits the request's FIRST token (TTFT stamps
//     here — arrival → first decode emission, transfer included)
//
// Failure composition (PR 3):
//   * crash on either slice mid-transfer — detected by comparing the
//     devices' failure epochs across the transfer; both islands' copies are
//     released (no orphaned shards) and the request re-enters the prefill
//     queue head for a fresh prefill against the post-remap mapping;
//   * decode-island crash after enqueue — the decode batcher hands every
//     resident request back (set_abort_return) and the router re-prefills;
//   * DCN partition mid-transfer — the fabric holds and replays the pieces
//     at heal, so the transfer completes late rather than wedging; the
//     router keeps no timer that could double-send.
//
// Deadlock freedom under memory pressure: in-flight KV on the decode island
// is not yet content-ready, hence unspillable — the cross-island analogue
// of the fresh-prompt floor. The router bounds (a) unready in-flight KV per
// decode shard to the decode island's HBM floor minus iteration staging,
// and (b) committed projected KV (queued + running + in flight, at full
// generation length) to the decode batcher's KV budget. Everything already
// enqueued is content-ready and therefore a valid spill victim, so decode
// staging/grow reservations always make progress (docs/MEMORY.md), and a
// request that could never satisfy (a) or (b) alone is shed at offer time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "serving/batcher.h"
#include "serving/request.h"

namespace pw::hw {
class Cluster;
}

namespace pw::serving {

struct DisaggRouterConfig {
  // Cap on unready (in-flight) KV bytes per decode shard. 0 derives the
  // decode island's HBM floor minus iteration staging — the tightest bound
  // that can never wedge a staging reservation.
  Bytes max_inflight_per_shard = 0;
};

// Routes requests across one-or-more prefill batchers (kPrefill) and decode
// batchers (kDecode), and owns every cross-island KV transfer in between.
// Single-threaded inside the simulation like everything else; all state
// transitions happen in event callbacks, keeping runs deterministic.
class DisaggRouter {
 public:
  DisaggRouter(std::vector<Batcher*> prefill, std::vector<Batcher*> decode,
               ServingMetrics* metrics, ServingTrace* trace = nullptr,
               DisaggRouterConfig config = {});

  DisaggRouter(const DisaggRouter&) = delete;
  DisaggRouter& operator=(const DisaggRouter&) = delete;

  // One request arriving now; false iff shed (decode-side impossibility
  // here, prefill-side floors/overflow inside the chosen batcher).
  bool Offer(Request req);

  // --- Introspection ---
  std::int64_t transfers_started() const { return transfers_started_; }
  std::int64_t transfers_completed() const { return transfers_completed_; }
  std::int64_t transfers_failed() const { return transfers_failed_; }
  std::int64_t reprefills() const { return reprefills_; }
  std::int64_t shed() const { return shed_; }
  Bytes bytes_transferred() const { return bytes_transferred_; }
  // Largest unready in-flight KV per decode shard ever observed (property
  // tests check it against the floor bound).
  Bytes peak_inflight_per_shard() const { return peak_inflight_per_shard_; }
  std::size_t pending_handoffs() const { return pending_.size(); }
  std::size_t inflight_transfers() const { return inflight_; }
  bool idle() const;

 private:
  struct Transfer;

  void OnPrefillDone(int prefill_index, Request req);
  void OnDecodeAbort(Request req);
  void StartNextTransfers();
  void StartTransfer();
  void StreamPieces(const std::shared_ptr<Transfer>& t);
  void SendPiece(const std::shared_ptr<Transfer>& t, int src_shard,
                 int dst_shard, Bytes bytes);
  void FinishTransfer(const std::shared_ptr<Transfer>& t);
  void ReturnForPrefill(Request req);
  // Sum of `failures()` epochs over a KV handle's (physical) shard devices;
  // any crash on either slice during the transfer moves it.
  std::int64_t FailureEpoch(const Batcher& batcher, std::int64_t seq) const;
  bool AnyDeviceFailed(const Batcher& batcher, std::int64_t seq) const;
  Bytes DecodeFloor(const Batcher& dst) const;
  void Trace(const char* kind, std::int64_t request, std::int64_t detail = 0);

  struct PendingHandoff {
    int prefill_index = 0;
    std::int64_t src_epoch = 0;  // prefill-slice failure epoch at handoff
    Request req;
  };

  std::vector<Batcher*> prefill_;
  std::vector<Batcher*> decode_;
  ServingMetrics* metrics_;
  ServingTrace* trace_;
  sim::Simulator* sim_;
  hw::Cluster* cluster_;
  DisaggRouterConfig config_;

  std::deque<PendingHandoff> pending_;
  std::size_t inflight_ = 0;
  // Per decode batcher: unready in-flight KV per shard, and committed
  // projected KV per shard (in flight + enqueued + running, full length).
  std::vector<Bytes> inflight_per_shard_;
  std::vector<Bytes> committed_per_shard_;

  std::int64_t transfers_started_ = 0;
  std::int64_t transfers_completed_ = 0;
  std::int64_t transfers_failed_ = 0;
  std::int64_t reprefills_ = 0;
  std::int64_t shed_ = 0;
  Bytes bytes_transferred_ = 0;
  Bytes peak_inflight_per_shard_ = 0;
};

}  // namespace pw::serving
