#include "serving/metrics.h"

#include <sstream>

namespace pw::serving {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvBytes(std::uint64_t* h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void FnvI64(std::uint64_t* h, std::int64_t v) { FnvBytes(h, &v, sizeof(v)); }
}  // namespace

std::uint64_t ServingTrace::Checksum() const {
  std::uint64_t h = kFnvOffset;
  FnvI64(&h, static_cast<std::int64_t>(events_.size()));
  for (const Event& e : events_) {
    FnvI64(&h, e.at_ns);
    FnvI64(&h, static_cast<std::int64_t>(e.kind.size()));
    FnvBytes(&h, e.kind.data(), e.kind.size());
    FnvI64(&h, e.request);
    FnvI64(&h, e.detail);
  }
  return h;
}

std::string ServingTrace::ToString() const {
  std::ostringstream os;
  for (const Event& e : events_) {
    os << e.at_ns << "ns " << e.kind << " req=" << e.request
       << " detail=" << e.detail << "\n";
  }
  return os.str();
}

}  // namespace pw::serving
