// Iteration-level batching scheduler (docs/SERVING.md).
//
// The batcher turns a stream of requests into a sequence of *iteration
// programs*: each iteration is one gang-scheduled PathwaysProgram on the
// batcher's slice whose arguments are the running sequences' KV-cache
// buffers, so KV paging costs (spill, read-through, restore) ride the
// normal argument-transfer dataflow and compose with faults, admission and
// oversubscription. Two policies:
//
//   * kContinuous — new prefills are admitted into the running batch at
//     every iteration boundary, subject to a per-iteration token budget
//     (each decoding sequence costs one token, an admitted prompt costs
//     its prefill tokens) and a projected-KV budget per device. Finished
//     sequences leave the batch the moment they emit their last token.
//   * kStatic — the classic baseline kept for comparison: a batch is
//     filled only when the previous batch has *fully* drained, so long
//     generations straggle the whole batch.
//
// Deadlock freedom under KV pressure (kv_budget_per_device above free
// HBM, spilling active): the batcher never holds pins across an
// iteration. Argument reads pin each KV shard only for the duration of
// the transfer and read spilled shards straight from host DRAM without
// re-acquiring HBM (the PR-5 read-through path), so mid-iteration
// reservations — staging, outputs — always find the batch's cold KV
// spillable. The boundary appends are chained *sequentially*: each
// GrowShard self-pins only its own sequence while its reservation waits,
// leaving every other sequence a valid spill victim, so the boundary
// makes progress even with HBM packed wall-to-wall with KV. The one kind
// of KV that can NOT spill is a freshly admitted prompt's (its contents
// don't exist until the prefill pass writes them), so admission bounds
// the fresh KV per boundary to physical HBM minus the iteration staging.
// Admission additionally caps the *projected full* KV of the running
// batch (prompt + all future decode appends) at kv_budget_per_device to
// bound paging traffic; a request whose lone projected KV exceeds the
// budget — or whose prompt KV cannot fit beside the staging at all — can
// never run and is shed at offer time.
//
// After an execution abort (device crash mid-iteration) every running
// sequence's KV is released — its shards span the crashed device — and the
// requests re-enter the queue head for a fresh prefill; the next iteration
// re-lowers against the resource manager's post-remap mapping (PR-3 path).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/units.h"
#include "pathways/client.h"
#include "serving/kv_cache.h"
#include "serving/metrics.h"
#include "serving/request.h"

namespace pw::serving {

enum class BatchPolicy { kContinuous, kStatic };

const char* ToString(BatchPolicy policy);

// Which half of the serving pipeline this batcher runs (docs/SERVING.md).
//
//   * kColocated — PR-6 behavior: prefill and decode share the slice; the
//     prefill pass emits the first token.
//   * kPrefill — disaggregated prefill island: the prefill pass writes the
//     KV and emits NO token; the finished request is handed to the
//     DisaggRouter (set_handoff) for the cross-island KV transfer, and its
//     KV + projection accounting stay charged to this island until the
//     router calls ReleaseHandoff.
//   * kDecode — disaggregated decode island: requests enter via
//     EnqueueResident only after their KV landed (router-gated), so the
//     queue never holds a sequence whose KV is not resident here. The
//     first decode step emits the request's first output token — that is
//     where TTFT is stamped.
enum class BatcherRole { kColocated, kPrefill, kDecode };

const char* ToString(BatcherRole role);

struct BatcherConfig {
  BatchPolicy policy = BatchPolicy::kContinuous;
  BatcherRole role = BatcherRole::kColocated;
  int max_batch = 8;        // sequences running concurrently
  int token_budget = 512;   // per-iteration: decoders (1 each) + prompts
  // Cap on the running batch's projected full KV per device shard;
  // 0 = uncapped. Must leave HBM headroom for activations + outputs.
  Bytes kv_budget_per_device = 0;
  std::size_t queue_capacity = 64;  // waiting requests; overflow sheds

  // Iteration kernel cost model.
  Duration iteration_base = Duration::Micros(40);
  Duration prefill_per_token = Duration::Nanos(300);
  Duration decode_per_token = Duration::Micros(1);  // per decoding sequence
  Bytes activation_bytes_per_shard = KiB(256);
  Bytes output_bytes_per_shard = KiB(32);
  // Per-iteration tensor-parallel AllReduce (exercises gang semantics).
  bool collective = true;
  Bytes collective_bytes_per_shard = KiB(16);

  // Backoff between consecutive aborted iterations (waits out a crash
  // window the resource manager could not remap around).
  pathways::RetryPolicy retry;
};

class Batcher {
 public:
  Batcher(pathways::Client* client, pathways::VirtualSlice slice,
          KvCacheConfig kv_config, BatcherConfig config,
          ServingMetrics* metrics, ServingTrace* trace = nullptr);

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // One request arriving now. Returns false iff it was shed on the spot
  // (queue overflow, or its projected KV alone exceeds the budget). Not
  // valid on a kDecode batcher — decode entry is EnqueueResident.
  bool Offer(Request req);

  // --- Disaggregation surface (used by DisaggRouter, serving/disagg.h) ---
  // kPrefill: receives each request the moment its prefill pass completed;
  // the request's KV stays live (and charged) here until ReleaseHandoff.
  void set_handoff(std::function<void(Request)> fn) { handoff_ = std::move(fn); }
  // kDecode: receives every running/queued request after an execution
  // abort — their KV on this island is gone; the router re-prefills them.
  void set_abort_return(std::function<void(Request)> fn) {
    abort_return_ = std::move(fn);
  }
  // kDecode: fires whenever finished sequences release KV budget, so the
  // router can unthrottle pending cross-island transfers.
  void set_on_capacity(std::function<void()> fn) {
    on_capacity_ = std::move(fn);
  }
  // kDecode: admit a request whose KV the router already created AND marked
  // content-ready in this batcher's kv(). Never sheds: the router bounds
  // what it transfers by this island's KV budget, and resident KV must not
  // be dropped silently.
  void EnqueueResident(Request req);
  // kColocated/kPrefill: put a router-returned request back at the queue
  // head for a fresh prefill (crash-mid-transfer / decode-island abort).
  void Requeue(Request req);
  // kPrefill: the router took ownership of the handed-off sequence's bytes
  // (KV landed on the decode island, or the transfer failed) — release the
  // prefill-island copy and its projection charge.
  void ReleaseHandoff(std::int64_t seq);

  // --- Introspection ---
  std::int64_t iterations() const { return iterations_; }
  std::int64_t finished() const { return finished_; }
  std::int64_t shed() const { return shed_; }
  std::int64_t handoffs() const { return handoffs_; }
  std::int64_t aborted_iterations() const { return aborted_iterations_; }
  int running() const { return static_cast<int>(running_.size()); }
  std::size_t queue_depth() const { return queue_.size(); }
  bool idle() const {
    return !iteration_inflight_ && running_.empty() && queue_.empty();
  }
  KvCache& kv() { return kv_; }
  const KvCache& kv() const { return kv_; }
  const BatcherConfig& config() const { return config_; }
  const pathways::VirtualSlice& slice() const { return slice_; }
  pathways::Client* client() const { return client_; }
  // Projected full KV per shard of everything charged to this island:
  // running batch (+ not-yet-released handoffs on kPrefill; + resident
  // queue on kDecode).
  Bytes projected_per_shard() const { return batch_projected_per_shard_; }
  // Smallest device HBM across the slice: the physical bound on KV that is
  // not yet content-ready (fresh prompts here; in-flight transfers on a
  // decode island — the router throttles against this).
  Bytes hbm_floor() const { return hbm_floor_; }
  // HBM the iteration itself reserves per device (activation staging +
  // output); unspillable KV must fit beside it.
  Bytes StagingPerShard() const;

 private:
  void MaybeStartIteration();
  void StartIteration();
  void AdmitFromQueue();
  void OnIterationDone(const pathways::ExecutionResult& result);
  void HandleAbort();
  // Per-shard KV this request charges against kv_budget_per_device while it
  // is admitted: its projected *full* KV, except on a prefill island where
  // the KV never grows past the prompt.
  Bytes ProjectedPerShard(const Request& req) const {
    return kv_.BytesForTokens(config_.role == BatcherRole::kPrefill
                                  ? req.prefill_tokens
                                  : req.max_kv_tokens());
  }
  void Trace(const char* kind, std::int64_t request, std::int64_t detail = 0);

  pathways::Client* client_;
  pathways::VirtualSlice slice_;
  BatcherConfig config_;
  KvCache kv_;
  ServingMetrics* metrics_;
  ServingTrace* trace_;
  sim::Simulator* sim_;

  // Smallest HBM capacity across the slice's devices: the bound on fresh
  // (not-yet-content-ready, hence unspillable) prompt KV per boundary.
  Bytes hbm_floor_ = 0;

  std::deque<Request> queue_;
  // Running batch keyed by request id (deterministic iteration order);
  // admission order and id order coincide per tenant.
  std::map<std::int64_t, Request> running_;
  Bytes batch_projected_per_shard_ = 0;
  // Program of the in-flight iteration (must outlive its execution).
  std::unique_ptr<pathways::PathwaysProgram> current_program_;
  bool iteration_inflight_ = false;
  int consecutive_aborts_ = 0;
  std::int64_t iterations_ = 0;
  std::int64_t finished_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t handoffs_ = 0;
  std::int64_t aborted_iterations_ = 0;
  std::function<void(Request)> handoff_;
  std::function<void(Request)> abort_return_;
  std::function<void()> on_capacity_;
};

}  // namespace pw::serving
