// Iteration-level batching scheduler (docs/SERVING.md).
//
// The batcher turns a stream of requests into a sequence of *iteration
// programs*: each iteration is one gang-scheduled PathwaysProgram on the
// batcher's slice whose arguments are the running sequences' KV-cache
// buffers, so KV paging costs (spill, read-through, restore) ride the
// normal argument-transfer dataflow and compose with faults, admission and
// oversubscription. Two policies:
//
//   * kContinuous — new prefills are admitted into the running batch at
//     every iteration boundary, subject to a per-iteration token budget
//     (each decoding sequence costs one token, an admitted prompt costs
//     its prefill tokens) and a projected-KV budget per device. Finished
//     sequences leave the batch the moment they emit their last token.
//   * kStatic — the classic baseline kept for comparison: a batch is
//     filled only when the previous batch has *fully* drained, so long
//     generations straggle the whole batch.
//
// Deadlock freedom under KV pressure (kv_budget_per_device above free
// HBM, spilling active): the batcher never holds pins across an
// iteration. Argument reads pin each KV shard only for the duration of
// the transfer and read spilled shards straight from host DRAM without
// re-acquiring HBM (the PR-5 read-through path), so mid-iteration
// reservations — staging, outputs — always find the batch's cold KV
// spillable. The boundary appends are chained *sequentially*: each
// GrowShard self-pins only its own sequence while its reservation waits,
// leaving every other sequence a valid spill victim, so the boundary
// makes progress even with HBM packed wall-to-wall with KV. The one kind
// of KV that can NOT spill is a freshly admitted prompt's (its contents
// don't exist until the prefill pass writes them), so admission bounds
// the fresh KV per boundary to physical HBM minus the iteration staging.
// Admission additionally caps the *projected full* KV of the running
// batch (prompt + all future decode appends) at kv_budget_per_device to
// bound paging traffic; a request whose lone projected KV exceeds the
// budget — or whose prompt KV cannot fit beside the staging at all — can
// never run and is shed at offer time.
//
// After an execution abort (device crash mid-iteration) every running
// sequence's KV is released — its shards span the crashed device — and the
// requests re-enter the queue head for a fresh prefill; the next iteration
// re-lowers against the resource manager's post-remap mapping (PR-3 path).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "common/units.h"
#include "pathways/client.h"
#include "serving/kv_cache.h"
#include "serving/metrics.h"
#include "serving/request.h"

namespace pw::serving {

enum class BatchPolicy { kContinuous, kStatic };

const char* ToString(BatchPolicy policy);

struct BatcherConfig {
  BatchPolicy policy = BatchPolicy::kContinuous;
  int max_batch = 8;        // sequences running concurrently
  int token_budget = 512;   // per-iteration: decoders (1 each) + prompts
  // Cap on the running batch's projected full KV per device shard;
  // 0 = uncapped. Must leave HBM headroom for activations + outputs.
  Bytes kv_budget_per_device = 0;
  std::size_t queue_capacity = 64;  // waiting requests; overflow sheds

  // Iteration kernel cost model.
  Duration iteration_base = Duration::Micros(40);
  Duration prefill_per_token = Duration::Nanos(300);
  Duration decode_per_token = Duration::Micros(1);  // per decoding sequence
  Bytes activation_bytes_per_shard = KiB(256);
  Bytes output_bytes_per_shard = KiB(32);
  // Per-iteration tensor-parallel AllReduce (exercises gang semantics).
  bool collective = true;
  Bytes collective_bytes_per_shard = KiB(16);

  // Backoff between consecutive aborted iterations (waits out a crash
  // window the resource manager could not remap around).
  pathways::RetryPolicy retry;
};

class Batcher {
 public:
  Batcher(pathways::Client* client, pathways::VirtualSlice slice,
          KvCacheConfig kv_config, BatcherConfig config,
          ServingMetrics* metrics, ServingTrace* trace = nullptr);

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // One request arriving now. Returns false iff it was shed on the spot
  // (queue overflow, or its projected KV alone exceeds the budget).
  bool Offer(Request req);

  // --- Introspection ---
  std::int64_t iterations() const { return iterations_; }
  std::int64_t finished() const { return finished_; }
  std::int64_t shed() const { return shed_; }
  std::int64_t aborted_iterations() const { return aborted_iterations_; }
  int running() const { return static_cast<int>(running_.size()); }
  std::size_t queue_depth() const { return queue_.size(); }
  bool idle() const {
    return !iteration_inflight_ && running_.empty() && queue_.empty();
  }
  KvCache& kv() { return kv_; }
  const KvCache& kv() const { return kv_; }
  const BatcherConfig& config() const { return config_; }

 private:
  void MaybeStartIteration();
  void StartIteration();
  void AdmitFromQueue();
  void OnIterationDone(const pathways::ExecutionResult& result);
  void HandleAbort();
  Bytes ProjectedPerShard(const Request& req) const {
    return kv_.BytesForTokens(req.max_kv_tokens());
  }
  // HBM the iteration itself reserves per device (activation staging +
  // output); fresh prompt KV must fit beside it (see AdmitFromQueue).
  Bytes StagingPerShard() const;
  void Trace(const char* kind, std::int64_t request, std::int64_t detail = 0);

  pathways::Client* client_;
  pathways::VirtualSlice slice_;
  BatcherConfig config_;
  KvCache kv_;
  ServingMetrics* metrics_;
  ServingTrace* trace_;
  sim::Simulator* sim_;

  // Smallest HBM capacity across the slice's devices: the bound on fresh
  // (not-yet-content-ready, hence unspillable) prompt KV per boundary.
  Bytes hbm_floor_ = 0;

  std::deque<Request> queue_;
  // Running batch keyed by request id (deterministic iteration order);
  // admission order and id order coincide per tenant.
  std::map<std::int64_t, Request> running_;
  Bytes batch_projected_per_shard_ = 0;
  // Program of the in-flight iteration (must outlive its execution).
  std::unique_ptr<pathways::PathwaysProgram> current_program_;
  bool iteration_inflight_ = false;
  int consecutive_aborts_ = 0;
  std::int64_t iterations_ = 0;
  std::int64_t finished_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t aborted_iterations_ = 0;
};

}  // namespace pw::serving
