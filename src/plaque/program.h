// Compact sharded dataflow programs (the PLAQUE substrate, paper §4.3).
//
// The representation requirement is explicit in the paper: "a single node
// for each sharded computation, to ensure a compact representation for
// computations that span many shards" — a chain Arg → Compute(A) →
// Compute(B) → Result is four nodes *regardless* of how many shards A and B
// have. The graph here is exactly that: nodes carry a shard count; edges
// connect nodes, not shards. At runtime, data tuples tagged with a
// destination shard flow along the (logical) edges.
//
// Typical use (see plaque/runtime.h for execution):
//
//   plaque::DataflowProgram p("double_chain");
//   NodeId arg = p.AddNode(NodeKind::kArg, "in", /*num_shards=*/4);
//   NodeId a   = p.AddNode(NodeKind::kCompute, "mul2", 4);
//   NodeId b   = p.AddNode(NodeKind::kCompute, "add1", 4);
//   NodeId res = p.AddNode(NodeKind::kResult, "out", 4);
//   p.AddEdge(arg, a);
//   p.AddEdge(a, b);
//   p.AddEdge(b, res);   // 4 nodes/3 edges no matter how many shards
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strong_id.h"

namespace pw::plaque {

struct NodeTag {};
using NodeId = StrongId<NodeTag>;
struct EdgeTag {};
using EdgeId = StrongId<EdgeTag>;

enum class NodeKind {
  kArg,      // externally injected inputs
  kCompute,  // user handler runs per shard
  kResult,   // terminal collection point
};

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kCompute;
  std::string name;
  int num_shards = 1;
  // If true the runtime closes the shard's out-edges when its handler
  // returns; handlers that emit asynchronously (e.g. after an accelerator
  // kernel completes) set this false and call CloseShard themselves.
  bool auto_close = true;
};

struct Edge {
  EdgeId id;
  NodeId from;
  NodeId to;
};

class DataflowProgram {
 public:
  explicit DataflowProgram(std::string name) : name_(std::move(name)) {}

  NodeId AddNode(NodeKind kind, std::string name, int num_shards,
                 bool auto_close = true) {
    PW_CHECK_GE(num_shards, 1);
    const NodeId id(static_cast<std::int64_t>(nodes_.size()));
    nodes_.push_back(Node{id, kind, std::move(name), num_shards, auto_close});
    return id;
  }

  EdgeId AddEdge(NodeId from, NodeId to) {
    PW_CHECK(valid(from) && valid(to)) << "edge references unknown node";
    PW_CHECK(from != to) << "self-edges are not supported";
    const EdgeId id(static_cast<std::int64_t>(edges_.size()));
    edges_.push_back(Edge{id, from, to});
    return id;
  }

  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const Node& node(NodeId id) const {
    return nodes_.at(static_cast<std::size_t>(id.value()));
  }
  const Edge& edge(EdgeId id) const {
    return edges_.at(static_cast<std::size_t>(id.value()));
  }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  std::vector<EdgeId> in_edges(NodeId node) const {
    std::vector<EdgeId> out;
    for (const Edge& e : edges_) {
      if (e.to == node) out.push_back(e.id);
    }
    return out;
  }
  std::vector<EdgeId> out_edges(NodeId node) const {
    std::vector<EdgeId> out;
    for (const Edge& e : edges_) {
      if (e.from == node) out.push_back(e.id);
    }
    return out;
  }

 private:
  bool valid(NodeId id) const {
    return id.valid() && id.value() < num_nodes();
  }

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace pw::plaque
