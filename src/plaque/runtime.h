// PLAQUE-style sharded dataflow runtime over the simulated DCN.
//
// Executes a DataflowProgram whose node shards are placed on hosts. Data
// tuples are tagged with a destination shard and routed point-to-point;
// messages to the same destination host coalesce in a batching window
// (paper §4.3: low latency for critical-path messages, batching for
// throughput). Completion of *sparse* exchanges — where only a dynamically
// chosen subset of source shards send — is detected with punctuation-based
// progress tracking in the style of MillWheel/Naiad: when a source shard
// closes an edge it advertises, to every destination shard, how many tuples
// it sent there; a destination shard's input on that edge is complete once
// every source shard has closed and all advertised tuples have arrived.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "hw/host.h"
#include "net/dcn.h"
#include "plaque/program.h"
#include "sim/simulator.h"

namespace pw::plaque {

// A data tuple delivered to a node shard.
struct Tuple {
  NodeId from;
  int src_shard = 0;
  Bytes bytes = 0;
  std::any payload;
};

// Tracks completion of one (edge, destination-shard) input.
class ProgressTracker {
 public:
  explicit ProgressTracker(int num_src_shards)
      : expected_closes_(num_src_shards) {}

  void TupleArrived() { ++tuples_received_; }
  void CloseArrived(std::int64_t tuples_promised) {
    PW_CHECK_LT(closes_received_, expected_closes_);
    ++closes_received_;
    tuples_promised_ += tuples_promised;
  }

  bool complete() const {
    return closes_received_ == expected_closes_ &&
           tuples_received_ == tuples_promised_;
  }
  std::int64_t tuples_received() const { return tuples_received_; }

 private:
  int expected_closes_;
  int closes_received_ = 0;
  std::int64_t tuples_promised_ = 0;
  std::int64_t tuples_received_ = 0;
};

struct RuntimeOptions {
  Duration batch_window = Duration::Micros(5);
  Duration handler_cpu_cost = Duration::Micros(5);  // per shard activation
  Bytes punctuation_bytes = 32;
};

class ProgramInstance;

class PlaqueRuntime {
 public:
  PlaqueRuntime(sim::Simulator* sim, RuntimeOptions options)
      : sim_(sim), options_(options) {}

  // Shard handler: runs on the owning host's CPU when the shard's inputs
  // are complete. `inputs` holds every tuple delivered to the shard.
  using ShardHandler =
      std::function<void(ProgramInstance&, int shard, std::vector<Tuple> inputs)>;

  // Placement: host owning each shard of each node.
  using Placement = std::function<hw::Host*(NodeId, int shard)>;

  // Instantiates a program. `handlers` maps node id values to handlers;
  // kArg and kResult nodes may omit one (results collect via OnResult).
  std::unique_ptr<ProgramInstance> Instantiate(
      const DataflowProgram* program, Placement placement,
      std::map<std::int64_t, ShardHandler> handlers);

  sim::Simulator* simulator() { return sim_; }
  const RuntimeOptions& options() const { return options_; }

 private:
  friend class ProgramInstance;
  sim::Simulator* sim_;
  RuntimeOptions options_;
};

class ProgramInstance {
 public:
  // --- Handler/driver API ---

  // Sends a tuple from (edge.from, src_shard) to (edge.to, dst_shard).
  void Send(EdgeId edge, int src_shard, int dst_shard, Bytes bytes,
            std::any payload = {});

  // Declares that src_shard will send nothing more on any out-edge of
  // `node`. Must be called exactly once per shard of nodes with
  // auto_close == false (auto_close nodes close implicitly).
  void CloseShard(NodeId node, int src_shard);

  // Injects an external input into an Arg node shard and closes it.
  void InjectArg(NodeId node, int shard, Bytes bytes, std::any payload = {});

  // Called once per Result-node shard completion.
  void OnResult(std::function<void(int shard, std::vector<Tuple>)> fn) {
    result_fn_ = std::move(fn);
  }

  // --- Introspection ---
  bool AllResultsComplete() const;
  std::int64_t tuples_routed() const { return tuples_routed_; }
  const DataflowProgram& program() const { return *program_; }

 private:
  friend class PlaqueRuntime;

  struct ShardState {
    std::vector<Tuple> inbox;
    int edges_complete = 0;
    bool fired = false;
    bool closed = false;
    // Per out-edge: tuples sent per destination shard (for punctuation).
    std::map<std::int64_t, std::map<int, std::int64_t>> sent;
  };

  struct NodeState {
    std::vector<ShardState> shards;
    // Per in-edge, per shard: progress tracker.
    std::map<std::int64_t, std::vector<ProgressTracker>> trackers;
  };

  ProgramInstance(PlaqueRuntime* rt, const DataflowProgram* program,
                  PlaqueRuntime::Placement placement,
                  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers);

  net::DcnBatcher& BatcherFor(hw::Host* src);
  void DeliverTuple(EdgeId edge, int dst_shard, Tuple tuple);
  void DeliverClose(EdgeId edge, int dst_shard, std::int64_t promised);
  void CheckEdgeComplete(EdgeId edge, int dst_shard);
  void MaybeFire(NodeId node, int shard);
  void Fire(NodeId node, int shard);

  PlaqueRuntime* rt_;
  const DataflowProgram* program_;
  PlaqueRuntime::Placement placement_;
  std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers_;
  std::vector<NodeState> nodes_;
  std::map<std::int64_t, std::unique_ptr<net::DcnBatcher>> batchers_;  // by host
  std::function<void(int, std::vector<Tuple>)> result_fn_;
  std::int64_t tuples_routed_ = 0;
  int results_fired_ = 0;
  int results_expected_ = 0;
};

}  // namespace pw::plaque
