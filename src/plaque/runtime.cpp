#include "plaque/runtime.h"

namespace pw::plaque {

std::unique_ptr<ProgramInstance> PlaqueRuntime::Instantiate(
    const DataflowProgram* program, Placement placement,
    std::map<std::int64_t, ShardHandler> handlers) {
  PW_CHECK(program != nullptr);
  // unique_ptr via new: the constructor is private to this friend.
  return std::unique_ptr<ProgramInstance>(new ProgramInstance(
      this, program, std::move(placement), std::move(handlers)));
}

ProgramInstance::ProgramInstance(
    PlaqueRuntime* rt, const DataflowProgram* program,
    PlaqueRuntime::Placement placement,
    std::map<std::int64_t, PlaqueRuntime::ShardHandler> handlers)
    : rt_(rt),
      program_(program),
      placement_(std::move(placement)),
      handlers_(std::move(handlers)) {
  nodes_.resize(static_cast<std::size_t>(program_->num_nodes()));
  for (const Node& n : program_->nodes()) {
    NodeState& state = nodes_[static_cast<std::size_t>(n.id.value())];
    state.shards.resize(static_cast<std::size_t>(n.num_shards));
    for (const EdgeId e : program_->in_edges(n.id)) {
      const Node& src = program_->node(program_->edge(e).from);
      auto& trackers = state.trackers[e.value()];
      trackers.reserve(static_cast<std::size_t>(n.num_shards));
      for (int s = 0; s < n.num_shards; ++s) {
        trackers.emplace_back(src.num_shards);
      }
    }
    if (n.kind == NodeKind::kResult) results_expected_ += n.num_shards;
  }
}

net::DcnBatcher& ProgramInstance::BatcherFor(hw::Host* src) {
  auto& slot = batchers_[src->id().value()];
  if (slot == nullptr) {
    slot = std::make_unique<net::DcnBatcher>(rt_->sim_, &src->dcn(), src->id(),
                                             rt_->options_.batch_window);
  }
  return *slot;
}

void ProgramInstance::Send(EdgeId edge, int src_shard, int dst_shard,
                           Bytes bytes, std::any payload) {
  const Edge& e = program_->edge(edge);
  const Node& from = program_->node(e.from);
  const Node& to = program_->node(e.to);
  PW_CHECK_GE(src_shard, 0);
  PW_CHECK_LT(src_shard, from.num_shards);
  PW_CHECK_GE(dst_shard, 0);
  PW_CHECK_LT(dst_shard, to.num_shards);
  ShardState& src_state =
      nodes_[static_cast<std::size_t>(e.from.value())].shards[static_cast<std::size_t>(src_shard)];
  PW_CHECK(!src_state.closed)
      << from.name << " shard " << src_shard << " sent after close";
  src_state.sent[edge.value()][dst_shard] += 1;
  ++tuples_routed_;

  Tuple tuple{e.from, src_shard, bytes, std::move(payload)};
  hw::Host* src_host = placement_(e.from, src_shard);
  hw::Host* dst_host = placement_(e.to, dst_shard);
  if (src_host->id() == dst_host->id()) {
    // Local edge: no DCN hop, deliver as a zero-delay event.
    rt_->sim_->Schedule(Duration::Zero(),
                        [this, edge, dst_shard, tuple = std::move(tuple)] {
                          DeliverTuple(edge, dst_shard, tuple);
                        });
  } else {
    BatcherFor(src_host).Send(dst_host->id(), bytes,
                              [this, edge, dst_shard, tuple = std::move(tuple)] {
                                DeliverTuple(edge, dst_shard, tuple);
                              });
  }
}

void ProgramInstance::CloseShard(NodeId node, int src_shard) {
  const Node& n = program_->node(node);
  ShardState& state =
      nodes_[static_cast<std::size_t>(node.value())].shards[static_cast<std::size_t>(src_shard)];
  PW_CHECK(!state.closed) << n.name << " shard " << src_shard << " closed twice";
  state.closed = true;
  hw::Host* src_host = placement_(node, src_shard);
  for (const EdgeId eid : program_->out_edges(node)) {
    const Edge& e = program_->edge(eid);
    const Node& to = program_->node(e.to);
    const auto& sent_map = state.sent[eid.value()];
    // Punctuation to every destination shard (including zero-count ones —
    // that is what makes sparse exchanges terminate).
    for (int d = 0; d < to.num_shards; ++d) {
      const auto it = sent_map.find(d);
      const std::int64_t promised = it == sent_map.end() ? 0 : it->second;
      hw::Host* dst_host = placement_(e.to, d);
      if (src_host->id() == dst_host->id()) {
        rt_->sim_->Schedule(Duration::Zero(), [this, eid, d, promised] {
          DeliverClose(eid, d, promised);
        });
      } else {
        BatcherFor(src_host).Send(dst_host->id(), rt_->options_.punctuation_bytes,
                                  [this, eid, d, promised] {
                                    DeliverClose(eid, d, promised);
                                  });
      }
    }
  }
}

void ProgramInstance::InjectArg(NodeId node, int shard, Bytes bytes,
                                std::any payload) {
  const Node& n = program_->node(node);
  PW_CHECK(n.kind == NodeKind::kArg) << n.name << " is not an Arg node";
  ShardState& state =
      nodes_[static_cast<std::size_t>(node.value())].shards[static_cast<std::size_t>(shard)];
  state.inbox.push_back(Tuple{node, shard, bytes, std::move(payload)});
  MaybeFire(node, shard);
}

void ProgramInstance::DeliverTuple(EdgeId edge, int dst_shard, Tuple tuple) {
  const Edge& e = program_->edge(edge);
  NodeState& node_state = nodes_[static_cast<std::size_t>(e.to.value())];
  node_state.shards[static_cast<std::size_t>(dst_shard)].inbox.push_back(
      std::move(tuple));
  node_state.trackers[edge.value()][static_cast<std::size_t>(dst_shard)]
      .TupleArrived();
  CheckEdgeComplete(edge, dst_shard);
}

void ProgramInstance::DeliverClose(EdgeId edge, int dst_shard,
                                   std::int64_t promised) {
  const Edge& e = program_->edge(edge);
  NodeState& node_state = nodes_[static_cast<std::size_t>(e.to.value())];
  node_state.trackers[edge.value()][static_cast<std::size_t>(dst_shard)]
      .CloseArrived(promised);
  CheckEdgeComplete(edge, dst_shard);
}

void ProgramInstance::CheckEdgeComplete(EdgeId edge, int dst_shard) {
  const Edge& e = program_->edge(edge);
  NodeState& node_state = nodes_[static_cast<std::size_t>(e.to.value())];
  ProgressTracker& tracker =
      node_state.trackers[edge.value()][static_cast<std::size_t>(dst_shard)];
  ShardState& shard = node_state.shards[static_cast<std::size_t>(dst_shard)];
  if (shard.fired || !tracker.complete()) return;
  // An edge transitions to complete exactly once: completeness is monotonic
  // (closes and counts only grow), so count it the first time we see it.
  // We mark by counting: recompute from scratch to stay simple and exact.
  int complete_edges = 0;
  for (const EdgeId eid : program_->in_edges(e.to)) {
    if (node_state.trackers[eid.value()][static_cast<std::size_t>(dst_shard)]
            .complete()) {
      ++complete_edges;
    }
  }
  shard.edges_complete = complete_edges;
  MaybeFire(e.to, dst_shard);
}

void ProgramInstance::MaybeFire(NodeId node, int shard) {
  const Node& n = program_->node(node);
  NodeState& node_state = nodes_[static_cast<std::size_t>(node.value())];
  ShardState& state = node_state.shards[static_cast<std::size_t>(shard)];
  if (state.fired) return;
  const auto in_degree = program_->in_edges(node).size();
  if (n.kind != NodeKind::kArg &&
      static_cast<std::size_t>(state.edges_complete) < in_degree) {
    return;
  }
  state.fired = true;
  Fire(node, shard);
}

void ProgramInstance::Fire(NodeId node, int shard) {
  const Node& n = program_->node(node);
  hw::Host* host = placement_(node, shard);
  ShardState& state =
      nodes_[static_cast<std::size_t>(node.value())].shards[static_cast<std::size_t>(shard)];
  std::vector<Tuple> inputs = std::move(state.inbox);
  state.inbox.clear();
  host->RunOnCpu(rt_->options_.handler_cpu_cost,
                 [this, node, shard, inputs = std::move(inputs)]() mutable {
    const Node& n2 = program_->node(node);
    if (n2.kind == NodeKind::kResult) {
      ++results_fired_;
      if (result_fn_) result_fn_(shard, std::move(inputs));
      return;
    }
    const auto it = handlers_.find(node.value());
    if (it != handlers_.end()) {
      it->second(*this, shard, std::move(inputs));
    }
    if (n2.auto_close) CloseShard(node, shard);
  });
  (void)n;
}

bool ProgramInstance::AllResultsComplete() const {
  return results_fired_ == results_expected_;
}

}  // namespace pw::plaque
