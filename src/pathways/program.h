// Pathways program IR and tracer (paper §3, §4.2).
//
// A PathwaysProgram is a device-location-agnostic DAG: each node is one
// *sharded* compiled function placed on a virtual slice, each edge is a
// logical (sharded) buffer flowing between nodes — the compact
// representation requirement again: node/edge counts are independent of
// shard counts. The ProgramBuilder is the "program tracer" of Fig. 2: user
// code calls compiled functions on traced values and gets a single
// multi-node program instead of one RPC per function.
//
// Lowering (virtual→physical placement and transfer-subgraph construction)
// happens at dispatch time in the execution engine, so a program can be
// re-lowered when the resource manager changes the mapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "pathways/ids.h"
#include "pathways/virtual_device.h"
#include "xlasim/compiled_function.h"

namespace pw::pathways {

// A value traced by the ProgramBuilder: either a program argument or the
// output of a computation node.
struct ValueRef {
  enum class Kind { kArgument, kNodeOutput };
  Kind kind = Kind::kArgument;
  int index = -1;  // argument index or node id

  static ValueRef Arg(int i) { return ValueRef{Kind::kArgument, i}; }
  static ValueRef Node(int i) { return ValueRef{Kind::kNodeOutput, i}; }
};

struct ComputationNode {
  int id = -1;
  xlasim::CompiledFunction fn;
  VirtualSlice slice;             // slice.num_devices() == fn.num_shards
  std::vector<ValueRef> inputs;   // operand order
  std::string name;
  // Data-dependent control flow: this node's resource requirements are not
  // known until its predecessors complete, so parallel asynchronous
  // dispatch cannot pre-run its host-side work — the scheduler falls back
  // to the traditional model for it (paper §4.5).
  bool irregular = false;
};

class PathwaysProgram {
 public:
  explicit PathwaysProgram(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_arguments() const { return num_arguments_; }
  const ComputationNode& node(int id) const {
    return nodes_.at(static_cast<std::size_t>(id));
  }
  const std::vector<ComputationNode>& nodes() const { return nodes_; }
  const std::vector<ValueRef>& results() const { return results_; }

  // Consumers of a node's output (node ids), in program order.
  std::vector<int> ConsumersOf(int node_id) const;
  // True if the value is returned as a program result.
  bool IsResult(ValueRef v) const;

 private:
  friend class ProgramBuilder;
  std::string name_;
  int num_arguments_ = 0;
  std::vector<ComputationNode> nodes_;
  std::vector<ValueRef> results_;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : program_(std::move(name)) {}

  // Declares a program argument (a ShardedBuffer supplied at run time).
  ValueRef Argument() { return ValueRef::Arg(program_.num_arguments_++); }

  // Traces a call of `fn` on `inputs`, placed on `slice`.
  ValueRef Call(const xlasim::CompiledFunction& fn, const VirtualSlice& slice,
                std::vector<ValueRef> inputs, std::string name = "");

  // Traces a call whose shapes depend on its input *values* (data-dependent
  // control flow, e.g. MoE routing): dispatched with the sequential
  // fallback.
  ValueRef CallIrregular(const xlasim::CompiledFunction& fn,
                         const VirtualSlice& slice,
                         std::vector<ValueRef> inputs, std::string name = "");

  // Marks a value as a program result.
  void Result(ValueRef v) { program_.results_.push_back(v); }

  PathwaysProgram Build() &&;

 private:
  PathwaysProgram program_;
};

}  // namespace pw::pathways
