#include "pathways/executor.h"

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::pathways {

DeviceExecutor::DeviceExecutor(PathwaysRuntime* runtime, hw::Device* device,
                               hw::Host* host)
    : runtime_(runtime), device_(device), host_(host) {}

void DeviceExecutor::Dispatch(std::shared_ptr<ProgramExecution> exec, int node,
                              int shard) {
  const std::uint64_t seq = next_arrival_seq_++;
  // Fault paths: a dispatch may land after its execution aborted (gang
  // partially emitted when the device died), or target a device that is
  // down (stranded virtual device — no island spare at remap time). Either
  // way the shard will never run; the in-order stream bookkeeping still
  // consumes the sequence number so later gangs can enqueue.
  if (exec->aborted() || device_->failed()) {
    if (!exec->aborted()) exec->Abort();
    EnqueueInOrder(seq, [] {});
    return;
  }
  const ComputationNode& n = exec->program().node(node);
  const hw::SystemParams& params = runtime_->params();

  // Host-side prep: input-buffer allocation, address exchange with the
  // producers' hosts, launch descriptor construction (paper §4.5 "performs
  // most of the preparatory work to launch node B's function").
  const Bytes staging =
      n.fn.scratch_bytes_per_shard + n.fn.input_bytes_per_shard;
  host_->RunOnCpu(
      runtime_->Jitter(params.executor_prep_cost),
      [this, exec, node, shard, seq, staging] {
        // Scratch rides the gang's dispatch ticket so it enters the device
        // FIFO in the same scheduler-consistent order as the gang's output
        // shards.
        auto scratch = runtime_->object_store().AllocateScratch(
            device_->id(), staging, exec->gang_ticket(node));
        auto output_reserved = exec->ReserveOutputShard(node, shard);
        sim::WhenAll(&runtime_->simulator(), {scratch, output_reserved})
            .Then([this, exec, node, shard, seq, staging](const sim::Unit&) {
              exec->MarkPrepDone(node, shard);
              EnqueueInOrder(seq, [this, exec, node, shard, staging] {
                if (exec->aborted()) {
                  // The execution died mid-prep. Its program may already be
                  // destroyed (single-use programs live only until done()
                  // fires), so don't touch it — just surrender the scratch
                  // and let the stream move on.
                  runtime_->object_store().FreeScratch(device_->id(), staging);
                  return;
                }
                const ComputationNode& cn = exec->program().node(node);
                hw::KernelDesc kernel;
                kernel.label = cn.name;
                kernel.client = exec->client().value();
                kernel.pre_time = cn.fn.pre_collective_time;
                kernel.post_time = cn.fn.post_collective_time;
                kernel.collective = exec->GroupFor(node);
                kernel.collective_bytes = cn.fn.collective_bytes_per_shard;
                kernel.inputs = exec->InputFutures(node, shard);
                device_->Enqueue(std::move(kernel))
                    .Then([this, exec, node, shard, staging](const sim::Unit&) {
                      runtime_->object_store().FreeScratch(device_->id(),
                                                           staging);
                      exec->MarkShardComplete(node, shard);
                      // Aborted first: IsResultNode reads the program, which
                      // may be gone once done() resolved with failure.
                      if (!exec->aborted() && exec->IsResultNode(node)) {
                        host_->SendDcn(exec->client_host(), /*bytes=*/64,
                                       [exec] { exec->OnResultShardMessage(); });
                      }
                    });
                exec->MarkEnqueued(node, shard);
              });
            });
      });
}

void DeviceExecutor::EnqueueInOrder(std::uint64_t seq,
                                    std::function<void()> enqueue_fn) {
  // Kernels must join the device stream in scheduler order even when preps
  // complete out of order (jitter, HBM back-pressure): stash until every
  // earlier dispatch has enqueued.
  ready_[seq] = std::move(enqueue_fn);
  DrainReady();
}

void DeviceExecutor::DrainReady() {
  while (true) {
    auto it = ready_.find(next_enqueue_seq_);
    if (it == ready_.end()) return;
    std::function<void()> fn = std::move(it->second);
    ready_.erase(it);
    ++next_enqueue_seq_;
    fn();
  }
}

}  // namespace pw::pathways
