// Per-device executor (paper Fig. 3: "Executor (per device)").
//
// Receives gang-dispatch messages from the island scheduler and performs
// the host-side work for one shard of one computation: executor prep
// (input-buffer allocation, address exchange, launch descriptor), HBM
// reservations, then the actual kernel enqueue over PCIe. Enqueues are
// issued in exactly the scheduler's arrival order per device — preps may
// finish out of order (HBM back-pressure, jitter) but a later gang's kernel
// never jumps an earlier one, preserving the consistent gang order.
//
// LP ownership: a DeviceExecutor belongs to its device's island LP; the
// `ready_` reorder buffer and enqueue sequence counters are only touched by
// events on that LP (dispatches come from the island's own scheduler).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/units.h"
#include "hw/cluster.h"
#include "pathways/execution.h"
#include "pathways/ids.h"

namespace pw::pathways {

class PathwaysRuntime;

class DeviceExecutor {
 public:
  DeviceExecutor(PathwaysRuntime* runtime, hw::Device* device, hw::Host* host);

  DeviceExecutor(const DeviceExecutor&) = delete;
  DeviceExecutor& operator=(const DeviceExecutor&) = delete;

  hw::Device* device() { return device_; }
  hw::Host* host() { return host_; }

  // Entry point: a dispatch message for (exec, node, shard) has arrived at
  // this executor's host.
  void Dispatch(std::shared_ptr<ProgramExecution> exec, int node, int shard);

  std::int64_t kernels_enqueued() const { return next_enqueue_seq_; }

 private:
  void EnqueueInOrder(std::uint64_t seq, std::function<void()> enqueue_fn);
  void DrainReady();

  PathwaysRuntime* runtime_;
  hw::Device* device_;
  hw::Host* host_;
  std::uint64_t next_arrival_seq_ = 0;
  std::uint64_t next_enqueue_seq_ = 0;
  std::map<std::uint64_t, std::function<void()>> ready_;
};

}  // namespace pw::pathways
