#include "pathways/execution.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::pathways {

std::shared_ptr<ProgramExecution> ProgramExecution::Create(
    PathwaysRuntime* runtime, ClientId client, double client_weight,
    net::HostId client_host, sim::SerialResource* client_cpu,
    const PathwaysProgram* program, std::vector<ShardedBuffer> args,
    ExecutionId id) {
  auto exec = std::shared_ptr<ProgramExecution>(new ProgramExecution(
      runtime, client, client_weight, client_host, client_cpu, program,
      std::move(args), id));
  exec->Lower();
  exec->WireTransfers();
  exec->WireRelease();
  runtime->RegisterExecution(exec);
  return exec;
}

ProgramExecution::ProgramExecution(PathwaysRuntime* runtime, ClientId client,
                                   double client_weight, net::HostId client_host,
                                   sim::SerialResource* client_cpu,
                                   const PathwaysProgram* program,
                                   std::vector<ShardedBuffer> args,
                                   ExecutionId id)
    : runtime_(runtime),
      client_(client),
      client_weight_(client_weight),
      client_host_(client_host),
      client_cpu_(client_cpu),
      program_(program),
      args_(std::move(args)),
      id_(id) {
  PW_CHECK_EQ(static_cast<int>(args_.size()), program_->num_arguments())
      << program_->name() << ": argument count mismatch";
  done_promise_ = std::make_unique<sim::SimPromise<ExecutionResult>>(
      &runtime_->simulator());
}

void ProgramExecution::Lower() {
  // Resolve virtual devices to physical (re-lowering happens per execution,
  // so resource-manager remaps take effect here), create output buffers, and
  // initialize per-shard dataflow state.
  sim::Simulator* sim = &runtime_->simulator();
  nodes_.resize(static_cast<std::size_t>(program_->num_nodes()));
  for (const ComputationNode& n : program_->nodes()) {
    NodeState& state = nodes_[static_cast<std::size_t>(n.id)];
    state.devices.reserve(n.slice.devices.size());
    for (const VirtualDevice& v : n.slice.devices) {
      state.devices.push_back(runtime_->resource_manager().Lookup(v.id));
    }
    state.output = runtime_->object_store().CreateBufferDeferred(
        client_, id_, state.devices, n.fn.output_bytes_per_shard);
    state.client_release = std::make_unique<sim::SimPromise<sim::Unit>>(sim);
    state.enqueue_latch =
        std::make_unique<sim::CountdownLatch>(sim, n.fn.num_shards);
    state.completion_latch =
        std::make_unique<sim::CountdownLatch>(sim, n.fn.num_shards);
    state.consumers_remaining =
        static_cast<int>(program_->ConsumersOf(n.id).size());
    state.shards.resize(static_cast<std::size_t>(n.fn.num_shards));
    for (ShardState& s : state.shards) {
      s.prep_done = std::make_unique<sim::SimPromise<sim::Unit>>(sim);
      s.output_ready = std::make_unique<sim::SimPromise<sim::Unit>>(sim);
      s.inputs.resize(n.inputs.size());
    }
  }
  // Completion accounting: one message per shard of each distinct result
  // node arrives at the client.
  std::set<int> result_nodes;
  for (const ValueRef& r : program_->results()) {
    if (r.kind == ValueRef::Kind::kNodeOutput) result_nodes.insert(r.index);
  }
  PW_CHECK(!result_nodes.empty()) << program_->name() << ": no computed results";
  for (const int n : result_nodes) {
    result_shard_messages_expected_ += program_->node(n).fn.num_shards;
  }
}

void ProgramExecution::WireTransfers() {
  for (const ComputationNode& n : program_->nodes()) {
    for (std::size_t op = 0; op < n.inputs.size(); ++op) {
      WireEdge(n.id, static_cast<int>(op));
    }
  }
}

void ProgramExecution::WireEdge(int consumer_node, int operand_index) {
  const ComputationNode& consumer = program_->node(consumer_node);
  const ValueRef src = consumer.inputs[static_cast<std::size_t>(operand_index)];
  NodeState& cstate = nodes_[static_cast<std::size_t>(consumer_node)];
  const int n_dst = consumer.fn.num_shards;
  sim::Simulator* sim = &runtime_->simulator();

  // Producer-side geometry.
  int n_src = 0;
  Bytes src_shard_bytes = 0;
  if (src.kind == ValueRef::Kind::kNodeOutput) {
    const ComputationNode& producer = program_->node(src.index);
    n_src = producer.fn.num_shards;
    src_shard_bytes = producer.fn.output_bytes_per_shard;
  } else {
    const ShardedBuffer& arg = args_.at(static_cast<std::size_t>(src.index));
    n_src = arg.num_shards();
    src_shard_bytes = arg.shards.empty() ? 0 : arg.shards[0].bytes;
  }

  // Shard mapping: 1:1 when counts match, full scatter/gather exchange
  // otherwise (each destination shard receives a slice from every source
  // shard).
  const bool one_to_one = (n_src == n_dst);
  const int pieces = one_to_one ? 1 : n_src;
  const Bytes piece_bytes = one_to_one
                                ? src_shard_bytes
                                : std::max<Bytes>(src_shard_bytes / n_dst, 1);

  for (int j = 0; j < n_dst; ++j) {
    auto latch = std::make_shared<sim::CountdownLatch>(sim, pieces);
    cstate.shards[static_cast<std::size_t>(j)]
        .inputs[static_cast<std::size_t>(operand_index)] = latch;
    const hw::DeviceId dst_dev = cstate.devices[static_cast<std::size_t>(j)];
    for (int i = one_to_one ? j : 0; i < (one_to_one ? j + 1 : n_src); ++i) {
      // Trigger: producer shard i ready AND consumer shard j prepped.
      sim::SimFuture<sim::Unit> producer_ready;
      hw::DeviceId src_dev;
      LogicalBufferId src_buf;
      if (src.kind == ValueRef::Kind::kNodeOutput) {
        NodeState& pstate = nodes_[static_cast<std::size_t>(src.index)];
        producer_ready =
            pstate.shards[static_cast<std::size_t>(i)].output_ready->future();
        src_dev = pstate.devices[static_cast<std::size_t>(i)];
        src_buf = pstate.output.id;
      } else {
        const ShardedBuffer& arg = args_[static_cast<std::size_t>(src.index)];
        producer_ready = arg.ready;
        src_dev = arg.shards[static_cast<std::size_t>(i)].device;
        src_buf = arg.id;
      }
      const auto consumer_prepped =
          cstate.shards[static_cast<std::size_t>(j)].prep_done->future();
      auto self = shared_from_this();
      sim::WhenAll(sim, {producer_ready, consumer_prepped})
          .Then([self, src_buf, src_shard = i, src_dev, dst_dev, piece_bytes,
                 latch](const sim::Unit&) {
            self->StartTransfer(src_buf, src_shard, src_dev, dst_dev,
                                piece_bytes, latch);
          });
    }
  }
}

void ProgramExecution::StartTransfer(LogicalBufferId src_buffer, int src_shard,
                                     hw::DeviceId src, hw::DeviceId dst,
                                     Bytes bytes,
                                     std::shared_ptr<sim::CountdownLatch> latch) {
  if (aborted_) return;  // input latches were force-completed by Abort()
  ObjectStore& store = runtime_->object_store();
  hw::Cluster& cluster = runtime_->cluster();
  auto self = shared_from_this();
  // Pin the source shard for the duration of the read (spill victims must
  // not be mid-read). Spilled sources are *read through* from host DRAM
  // into the consumer's input staging — consumption never re-acquires HBM,
  // which is what keeps spilling deadlock-free against the non-preemptible
  // in-order device streams (docs/MEMORY.md).
  store.PinShard(src_buffer, src_shard);
  outstanding_reads_.emplace_back(src_buffer, src_shard);
  if (store.ShardInDram(src_buffer, src_shard)) {
    hw::Host& src_host = cluster.host_of(src);
    hw::Host& dst_host = cluster.host_of(dst);
    ++transfers_;
    store.NoteDramRead(bytes);
    if (src == dst) {
      // Paging the bytes back to their own device: if idle HBM is free this
      // doubles as a restore (the shard becomes resident again — the
      // "spilled argument paged back in before its gang runs" path).
      store.TryRestoreShard(src_buffer, src_shard);
      dst_host.pcie(dst).Transfer(bytes, [self, src_buffer, src_shard, latch] {
        self->FinishRead(src_buffer, src_shard);
        latch->CountDown();
      });
      return;
    }
    if (src_host.id() == dst_host.id()) {
      // DRAM → destination device over the destination's PCIe link.
      dst_host.pcie(dst).Transfer(bytes, [self, src_buffer, src_shard, latch] {
        self->FinishRead(src_buffer, src_shard);
        latch->CountDown();
      });
      return;
    }
    // DRAM → DCN → destination host → destination device.
    src_host.SendDcn(dst_host.id(), bytes, [self, src_buffer, src_shard,
                                            &dst_host, dst, bytes, latch] {
      self->FinishRead(src_buffer, src_shard);
      dst_host.pcie(dst).Transfer(bytes, [latch] { latch->CountDown(); });
    });
    return;
  }
  if (src == dst) {
    // Producer output is directly addressable and the consumer's prep
    // staging already covers input_bytes_per_shard: the operand is handed
    // off in place, completing this read immediately.
    FinishRead(src_buffer, src_shard);
    latch->CountDown();
    return;
  }
  ++transfers_;
  const hw::IslandId src_island = cluster.device(src).island();
  const hw::IslandId dst_island = cluster.device(dst).island();
  if (src_island == dst_island) {
    // Device-to-device over the island's private interconnect; the read
    // completes once the data has landed.
    cluster.island_of(src).Transfer(src, dst, bytes).Then(
        [self, src_buffer, src_shard, latch](const sim::Unit&) {
          self->FinishRead(src_buffer, src_shard);
          latch->CountDown();
        });
    return;
  }
  // Cross-island: PCIe device→host, DCN host→host, PCIe host→device. The
  // read completes after the first hop — the bytes have left the source
  // device.
  hw::Host& src_host = cluster.host_of(src);
  hw::Host& dst_host = cluster.host_of(dst);
  src_host.pcie(src).Transfer(
      bytes, [self, src_buffer, src_shard, &src_host, &dst_host, dst, bytes,
              latch] {
        self->FinishRead(src_buffer, src_shard);
        src_host.SendDcn(dst_host.id(), bytes, [&dst_host, dst, bytes, latch] {
          dst_host.pcie(dst).Transfer(bytes, [latch] { latch->CountDown(); });
        });
      });
}

void ProgramExecution::FinishRead(LogicalBufferId buffer, int shard) {
  if (aborted_) return;
  auto it = std::find(outstanding_reads_.begin(), outstanding_reads_.end(),
                      std::make_pair(buffer, shard));
  PW_CHECK(it != outstanding_reads_.end());
  outstanding_reads_.erase(it);
  runtime_->object_store().UnpinShard(buffer, shard);
}

void ProgramExecution::WireRelease() {
  // Intermediate outputs are garbage once every consumer node completed.
  auto self = shared_from_this();
  for (const ComputationNode& n : program_->nodes()) {
    NodeState& state = nodes_[static_cast<std::size_t>(n.id)];
    const int node_id = n.id;
    state.completion_latch->done().Then([self, node_id](const sim::Unit&) {
      // An aborted execution's buffers are collected wholesale by Abort();
      // the per-consumer refcount dance below would double-free them.
      if (self->aborted_) return;
      // This node is done: credit each distinct producer it consumed.
      std::set<int> producers;
      for (const ValueRef& in : self->program_->node(node_id).inputs) {
        if (in.kind == ValueRef::Kind::kNodeOutput) producers.insert(in.index);
      }
      for (const int p : producers) {
        NodeState& pstate = self->nodes_[static_cast<std::size_t>(p)];
        if (--pstate.consumers_remaining == 0 &&
            !self->program_->IsResult(ValueRef::Node(p))) {
          self->runtime_->object_store().Release(pstate.output.id);
        }
      }
      // A sink node that is not a result frees its own output immediately.
      NodeState& own = self->nodes_[static_cast<std::size_t>(node_id)];
      if (own.consumers_remaining == 0 &&
          !self->program_->IsResult(ValueRef::Node(node_id))) {
        self->runtime_->object_store().Release(own.output.id);
      }
    });
  }
}

hw::DeviceId ProgramExecution::DeviceFor(int node, int shard) const {
  return nodes_.at(static_cast<std::size_t>(node))
      .devices.at(static_cast<std::size_t>(shard));
}

void ProgramExecution::AssignGangTicket(int node) {
  NodeState& state = nodes_.at(static_cast<std::size_t>(node));
  PW_CHECK(state.ticket == hw::kUnticketed)
      << "gang ticket for node " << node << " assigned twice";
  ObjectStore& store = runtime_->object_store();
  state.ticket = store.NextTicket();
  store.RegisterTicket(state.ticket, id_.value(),
                       "exec " + std::to_string(id_.value()));
  store.SetBufferTicket(state.output.id, state.ticket);
}

bool ProgramExecution::IsResultNode(int node) const {
  return program_->IsResult(ValueRef::Node(node));
}

sim::SimFuture<sim::Unit> ProgramExecution::ReserveOutputShard(int node,
                                                               int shard) {
  if (aborted_) {
    // Output buffers are already collected; grant immediately so in-flight
    // executor preps unwind instead of parking on a dead reservation.
    return sim::ReadyFuture(&runtime_->simulator(), sim::Unit{});
  }
  return runtime_->object_store().ReserveShard(
      nodes_.at(static_cast<std::size_t>(node)).output.id, shard);
}

void ProgramExecution::MarkPrepDone(int node, int shard) {
  if (aborted_) return;
  nodes_.at(static_cast<std::size_t>(node))
      .shards.at(static_cast<std::size_t>(shard))
      .prep_done->Set(sim::Unit{});
}

sim::SimFuture<sim::Unit> ProgramExecution::PrepDone(int node, int shard) const {
  return nodes_.at(static_cast<std::size_t>(node))
      .shards.at(static_cast<std::size_t>(shard))
      .prep_done->future();
}

void ProgramExecution::MarkEnqueued(int node, int shard) {
  if (aborted_) return;
  (void)shard;
  nodes_.at(static_cast<std::size_t>(node)).enqueue_latch->CountDown();
}

sim::SimFuture<sim::Unit> ProgramExecution::NodeEnqueued(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).enqueue_latch->done();
}

void ProgramExecution::MarkShardComplete(int node, int shard) {
  if (aborted_) return;
  NodeState& state = nodes_.at(static_cast<std::size_t>(node));
  ShardState& ss = state.shards.at(static_cast<std::size_t>(shard));
  // The output exists from here on, which is what makes the output shard a
  // spill candidate while it waits (refcount-held, idle) for consumers.
  runtime_->object_store().MarkShardContentReady(state.output.id, shard);
  ss.output_ready->Set(sim::Unit{});
  state.completion_latch->CountDown();
}

sim::SimFuture<sim::Unit> ProgramExecution::OutputReady(int node, int shard) const {
  return nodes_.at(static_cast<std::size_t>(node))
      .shards.at(static_cast<std::size_t>(shard))
      .output_ready->future();
}

sim::SimFuture<sim::Unit> ProgramExecution::NodeComplete(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).completion_latch->done();
}

void ProgramExecution::MarkClientReleased(int node) {
  if (aborted_) return;
  nodes_.at(static_cast<std::size_t>(node)).client_release->Set(sim::Unit{});
}

sim::SimFuture<sim::Unit> ProgramExecution::ClientReleased(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).client_release->future();
}

std::vector<sim::SimFuture<sim::Unit>> ProgramExecution::InputFutures(
    int node, int shard) const {
  const ShardState& state = nodes_.at(static_cast<std::size_t>(node))
                                .shards.at(static_cast<std::size_t>(shard));
  std::vector<sim::SimFuture<sim::Unit>> out;
  out.reserve(state.inputs.size());
  for (const auto& latch : state.inputs) {
    out.push_back(latch->done());
  }
  return out;
}

std::shared_ptr<hw::CollectiveGroup> ProgramExecution::GroupFor(int node) {
  // Aborted first — and before touching program_: any straggler kernels
  // still reaching the device run as plain compute (their peers will never
  // rendezvous), and the program object may already be destroyed.
  if (aborted_) return nullptr;
  NodeState& state = nodes_.at(static_cast<std::size_t>(node));
  const ComputationNode& n = program_->node(node);
  if (!n.fn.collective.has_value() || n.fn.num_shards <= 1) return nullptr;
  if (state.group == nullptr) {
    hw::Island& island = runtime_->cluster().island_of(state.devices[0]);
    state.group = std::make_shared<hw::CollectiveGroup>(
        &runtime_->simulator(), &island.collectives(), *n.fn.collective,
        n.fn.num_shards, n.name);
  }
  return state.group;
}

void ProgramExecution::OnResultShardMessage() {
  if (aborted_) return;
  // Bookkeeping cost on the client thread: with the sharded-buffer
  // abstraction, per-shard processing is a cheap network-stack touch and the
  // logical-buffer update is charged once at the end; without it, each shard
  // pays the full handle-tracking cost (the §4.2 scalability argument).
  const bool sharded = runtime_->options().sharded_buffer_bookkeeping;
  const Duration per_message =
      sharded ? Duration::Nanos(200) : Duration::Micros(2);
  auto self = shared_from_this();
  client_cpu_->Submit(per_message, [self] {
    if (self->aborted_) return;
    ++self->result_shard_messages_received_;
    if (self->result_shard_messages_received_ <
        self->result_shard_messages_expected_) {
      return;
    }
    const Duration logical_cost =
        self->runtime_->options().sharded_buffer_bookkeeping
            ? Duration::Micros(2) *
                  static_cast<std::int64_t>(self->program_->results().size())
            : Duration::Zero();
    self->client_cpu_->Submit(logical_cost, [self] {
      if (self->aborted_) return;
      ExecutionResult result;
      for (const ValueRef& r : self->program_->results()) {
        if (r.kind == ValueRef::Kind::kNodeOutput) {
          result.outputs.push_back(
              self->nodes_[static_cast<std::size_t>(r.index)].output);
        } else {
          result.outputs.push_back(
              self->args_[static_cast<std::size_t>(r.index)]);
        }
      }
      self->finished_ = true;
      // Retiring the gang tickets keeps the ordering diagnostics registry
      // from growing over a long run.
      for (const NodeState& node : self->nodes_) {
        self->runtime_->object_store().FinishTicket(node.ticket);
      }
      self->done_promise_->Set(std::move(result));
      self->runtime_->OnExecutionFinished(self->id_, /*success=*/true);
    });
  });
}

bool ProgramExecution::UsesDevice(hw::DeviceId dev) const {
  for (const NodeState& node : nodes_) {
    for (const hw::DeviceId d : node.devices) {
      if (d == dev) return true;
    }
  }
  return false;
}

void ProgramExecution::Abort() {
  if (aborted_ || finished_) return;
  aborted_ = true;
  // Unwind order matters only in that aborted_ is set first: every
  // continuation the force-fires below schedule will observe it and no-op.
  for (NodeState& node : nodes_) {
    // Release devices parked at (or later arriving at) this gang's
    // rendezvous — their peer on the failed device is never coming.
    if (node.group != nullptr) node.group->Abort();
    if (!node.client_release->fulfilled()) node.client_release->Set(sim::Unit{});
    node.enqueue_latch->ForceComplete();
    // NodeComplete() observers (gang-scheduler admission slots) fire here.
    node.completion_latch->ForceComplete();
    for (ShardState& shard : node.shards) {
      if (!shard.prep_done->fulfilled()) shard.prep_done->Set(sim::Unit{});
      if (!shard.output_ready->fulfilled()) shard.output_ready->Set(sim::Unit{});
      for (auto& input : shard.inputs) {
        if (input != nullptr) input->ForceComplete();
      }
    }
  }
  // Unpin every read that will now never happen — argument buffers outlive
  // this execution and must not stay spill-protected by a dead reader.
  // (aborted_ is already set, so late read-completion callbacks no-op.)
  for (const auto& [buf, shard] : outstanding_reads_) {
    runtime_->object_store().UnpinShard(buf, shard);
  }
  outstanding_reads_.clear();
  // Collect everything this execution produced (output buffers, reserved or
  // deferred). Scratch is freed by the executor continuations as the dropped
  // kernels' completion futures fire.
  runtime_->object_store().ReleaseAllForProducer(id_);
  for (const NodeState& node : nodes_) {
    runtime_->object_store().FinishTicket(node.ticket);
  }
  done_promise_->Set(ExecutionResult{.outputs = {}, .failed = true});
  runtime_->OnExecutionFinished(id_, /*success=*/false);
}

}  // namespace pw::pathways
