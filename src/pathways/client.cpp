#include "pathways/client.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::pathways {

Duration RetryPolicy::BackoffFor(int failed_attempts) const {
  const double factor =
      std::pow(multiplier, static_cast<double>(failed_attempts - 1));
  const double ns = static_cast<double>(initial_backoff.nanos()) * factor;
  const double cap = static_cast<double>(max_backoff.nanos());
  // The inverted comparison routes overflow (inf) and NaN to the cap too.
  if (!(ns < cap)) return max_backoff;
  return Duration::Nanos(static_cast<std::int64_t>(ns));
}

Client::Client(PathwaysRuntime* runtime, ClientId id, hw::Host* host,
               double weight)
    : runtime_(runtime),
      id_(id),
      host_(host),
      weight_(weight),
      cpu_(&runtime->simulator(), "client" + std::to_string(id.value())) {}

StatusOr<VirtualSlice> Client::AllocateSlice(int num_devices,
                                             std::optional<hw::IslandId> island) {
  return runtime_->resource_manager().AllocateSlice(id_, num_devices, island);
}

void Client::ReleaseSlice(const VirtualSlice& slice) {
  runtime_->resource_manager().ReleaseSlice(slice);
}

ShardedBuffer Client::TransferToDevice(const VirtualSlice& slice,
                                       Bytes bytes_per_shard) {
  std::vector<hw::DeviceId> devices;
  devices.reserve(slice.devices.size());
  for (const VirtualDevice& v : slice.devices) {
    devices.push_back(runtime_->resource_manager().Lookup(v.id));
  }
  std::vector<sim::SimFuture<sim::Unit>> reservations;
  ShardedBuffer buffer = runtime_->object_store().CreateBuffer(
      id_, ExecutionId(), devices, bytes_per_shard, &reservations);
  // Host→device staging: once each shard's HBM is reserved, the data crosses
  // the owning host's PCIe link.
  auto landed = std::make_shared<sim::CountdownLatch>(
      &runtime_->simulator(), static_cast<int>(devices.size()));
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const hw::DeviceId dev = devices[i];
    const int shard = static_cast<int>(i);
    const LogicalBufferId id = buffer.id;
    reservations[i].Then([this, id, shard, dev, bytes_per_shard,
                          landed](const sim::Unit&) {
      runtime_->cluster().host_of(dev).pcie(dev).Transfer(
          bytes_per_shard, [this, id, shard, landed] {
            // Data is on the device: from here the shard is cold-spillable
            // until an execution reads it.
            runtime_->object_store().MarkShardContentReady(id, shard);
            landed->CountDown();
          });
    });
  }
  buffer.ready = landed->done();
  return buffer;
}

void Client::ReleaseBuffer(const ShardedBuffer& buffer) {
  runtime_->object_store().Release(buffer.id);
}

sim::SimFuture<ExecutionResult> Client::Run(const PathwaysProgram* program,
                                            std::vector<ShardedBuffer> args) {
  PW_CHECK(program != nullptr);
  auto exec = ProgramExecution::Create(runtime_, id_, weight_, host_->id(),
                                       &cpu_, program, std::move(args),
                                       runtime_->execution_ids().Next());
  ++programs_submitted_;

  // Group the program's nodes by island, preserving program order: one
  // subgraph RPC per island (parallel asynchronous dispatch sends a single
  // message describing the entire subgraph, §4.5).
  std::map<std::int64_t, std::vector<int>> by_island;
  for (const ComputationNode& n : program->nodes()) {
    by_island[n.slice.island.value()].push_back(n.id);
  }
  cpu_.Submit(runtime_->params().client_rpc_cost,
              [this, exec, by_island = std::move(by_island)] {
    for (const auto& [island, nodes] : by_island) {
      GangScheduler& sched = runtime_->scheduler(hw::IslandId(island));
      const Bytes rpc_bytes =
          128 + 64 * static_cast<Bytes>(nodes.size());  // subgraph descriptor
      host_->SendDcn(sched.home()->id(), rpc_bytes,
                     [&sched, exec, nodes] { sched.SubmitSubgraph(exec, nodes); });
    }
  });
  // Stream the per-shard fan-out work — launch descriptors and output-
  // handle registration, ~17 us per computation shard, serialized on this
  // client's thread. A gang cannot dispatch before its descriptors exist,
  // which puts the whole fan-out on the critical path of tight single-node
  // loops (the Figure 5/6 single-controller overhead: 2048 x 17 us ≈ 35 ms
  // per step at 512 hosts); multi-node programs stream far ahead of
  // execution, and concurrent tenants each stream on their own thread
  // (Figure 8 scales).
  for (const ComputationNode& n : program->nodes()) {
    const int node_id = n.id;
    cpu_.Submit(runtime_->params().coordinator_msg_cost * n.fn.num_shards,
                [exec, node_id] { exec->MarkClientReleased(node_id); });
  }
  return exec->done();
}

sim::SimFuture<ExecutionResult> Client::RunWithRetry(
    const PathwaysProgram* program, std::vector<ShardedBuffer> args,
    RetryPolicy policy) {
  PW_CHECK_GE(policy.max_attempts, 1);
  auto outer = std::make_shared<sim::SimPromise<ExecutionResult>>(
      &runtime_->simulator());
  // Attempt loop. The function object must not capture its own shared_ptr
  // (that cycle would leak it); instead each in-flight continuation holds
  // the strong reference, re-acquired through the weak handle at call time,
  // so the loop frees itself when the last continuation resolves.
  auto attempt = std::make_shared<std::function<void(int)>>();
  std::weak_ptr<std::function<void(int)>> weak_attempt = attempt;
  *attempt = [this, program, args = std::move(args), policy, outer,
              weak_attempt](int attempt_no) {
    auto self = weak_attempt.lock();
    PW_CHECK(self != nullptr);  // callers hold a strong ref across the call
    Run(program, args).Then([this, policy, outer, self,
                             attempt_no](const ExecutionResult& result) {
      if (!result.failed || attempt_no >= policy.max_attempts) {
        ExecutionResult annotated = result;
        annotated.attempts = attempt_no;
        outer->Set(std::move(annotated));
        return;
      }
      ++retries_;
      runtime_->simulator().Schedule(
          policy.BackoffFor(attempt_no),
          [self, attempt_no] { (*self)(attempt_no + 1); });
    });
  };
  (*attempt)(1);
  return outer->future();
}

void Client::Submit(const PathwaysProgram* program,
                    std::function<void(const ExecutionResult&)> done,
                    std::optional<RetryPolicy> retry) {
  auto fut = retry.has_value() ? RunWithRetry(program, {}, *retry)
                               : Run(program);
  fut.Then([this, done = std::move(done)](const ExecutionResult& result) {
    // A program may list the same node output as a result more than once;
    // the store holds one reference per buffer, so release each id once.
    std::vector<LogicalBufferId> released;
    for (const ShardedBuffer& out : result.outputs) {
      if (std::find(released.begin(), released.end(), out.id) !=
          released.end()) {
        continue;
      }
      released.push_back(out.id);
      runtime_->object_store().Release(out.id);
    }
    if (done) done(result);
  });
}

sim::SimFuture<ExecutionResult> Client::RunFunction(
    const xlasim::CompiledFunction& fn, const VirtualSlice& slice,
    std::vector<ShardedBuffer> args) {
  ProgramBuilder builder(fn.name);
  std::vector<ValueRef> inputs;
  inputs.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    inputs.push_back(builder.Argument());
  }
  builder.Call(fn, slice, std::move(inputs));
  // Single-use program: owned by the execution via shared_ptr.
  auto program = std::make_shared<PathwaysProgram>(std::move(builder).Build());
  auto result = Run(program.get(), std::move(args));
  // Keep the program alive until the run resolves.
  result.Then([program](const ExecutionResult&) {});
  return result;
}

}  // namespace pw::pathways
