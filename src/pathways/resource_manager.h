// Centralized resource manager (paper §4.1).
//
// Owns all devices across all islands; hands out "virtual slices" with the
// requested device count, keeping a one-to-one virtual→physical mapping and
// statically balancing load by preferring the least-loaded devices. Devices
// can be removed (drain/maintenance) and added dynamically; virtual devices
// mapped to a removed physical device are transparently remapped, and
// clients pick up the new mapping the next time a program is lowered —
// the paper's suspend/resume/migration hook.
//
// LP ownership: the resource manager is control-plane state and lives on
// the control LP (the runtime's LP). Because it spans islands, an
// island-partitioned run must route add/remove/remap notifications to and
// from other LPs as cross-LP events; the slice maps themselves are never
// shared across LPs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "hw/cluster.h"
#include "pathways/ids.h"
#include "pathways/virtual_device.h"

namespace pw::pathways {

class ResourceManager {
 public:
  explicit ResourceManager(hw::Cluster* cluster);

  // Allocates `num_devices` virtual devices on one island. If `island` is
  // set, allocates there; otherwise picks the island with the most free
  // capacity. Fails if no single island can host the slice.
  StatusOr<VirtualSlice> AllocateSlice(ClientId client, int num_devices,
                                       std::optional<hw::IslandId> island = std::nullopt);

  // Releases a slice's load accounting and mappings.
  void ReleaseSlice(const VirtualSlice& slice);

  // Releases everything owned by a client (client failure / disconnect).
  void ReleaseClient(ClientId client);

  // Physical device currently backing a virtual device.
  hw::DeviceId Lookup(VirtualDeviceId vdev) const;

  // --- Dynamic reconfiguration ---
  // Removes a physical device from service; virtual devices mapped to it are
  // remapped to the least-loaded remaining device on the same island.
  // Fails (and rolls back) if the island has no other device — a *drain*
  // refuses to strand tenants.
  Status RemoveDevice(hw::DeviceId dev);
  // Returns a previously removed device to service.
  Status AddDevice(hw::DeviceId dev);

  // --- Failure handling (see docs/FAULTS.md) ---
  // A *crash* differs from a drain: the device is gone whether or not
  // spares exist, so the device always leaves service. Virtual devices are
  // remapped to island spares where possible; those that cannot be remapped
  // stay pointed at the dead device (executions lowered against them abort
  // at dispatch until the device recovers) and are counted as stranded.
  // Returns FailedPrecondition only if the device was already failed.
  Status MarkDeviceFailed(hw::DeviceId dev);
  // Recovery: the device rejoins service (and future remaps/allocations).
  Status MarkDeviceRecovered(hw::DeviceId dev);

  // --- Introspection ---
  int load(hw::DeviceId dev) const;
  int num_available_devices() const;
  bool in_service(hw::DeviceId dev) const;
  std::int64_t slices_allocated() const { return slices_allocated_; }
  std::int64_t vdevs_remapped() const { return vdevs_remapped_; }
  std::int64_t vdevs_stranded() const { return vdevs_stranded_; }

 private:
  struct VDevState {
    hw::DeviceId physical;
    ClientId owner;
    // Slice the vdev belongs to. Shards of one slice must stay on distinct
    // physical devices — two gang members on one single-threaded device
    // would self-deadlock at their collective rendezvous — so remaps
    // exclude devices already backing the same slice.
    std::int64_t slice_seq = -1;
  };

  // Least-loaded in-service devices of an island, stable order.
  std::vector<hw::DeviceId> PickDevices(hw::IslandId island, int count) const;
  int FreeCapacityRank(hw::IslandId island) const;
  // Least-loaded in-service island device not in `taken` (the devices
  // already backing the vdev's slice); invalid id if none exists.
  hw::DeviceId PickReplacement(hw::IslandId island,
                               const std::set<hw::DeviceId>& taken) const;
  // Devices currently backing each slice (keyed by slice_seq), computed in
  // one pass so per-vdev replacement lookups are set probes.
  std::map<std::int64_t, std::set<hw::DeviceId>> SliceDeviceSets() const;
  // Remaps every virtual device pointing at `dev` to an island spare,
  // keeping `by_slice` (a SliceDeviceSets() snapshot) current as it goes.
  // Returns the number left stranded (no valid spare available).
  int RemapAway(hw::DeviceId dev,
                std::map<std::int64_t, std::set<hw::DeviceId>>& by_slice);

  hw::Cluster* cluster_;
  std::map<VirtualDeviceId, VDevState> vdevs_;
  std::map<hw::DeviceId, int> load_;          // virtual devices per physical
  std::map<hw::DeviceId, bool> in_service_;
  IdGenerator<VirtualDeviceTag> vdev_ids_;
  std::int64_t slices_allocated_ = 0;
  std::int64_t vdevs_remapped_ = 0;
  std::int64_t vdevs_stranded_ = 0;
};

}  // namespace pw::pathways
