// Centralized resource manager (paper §4.1).
//
// Owns all devices across all islands; hands out "virtual slices" with the
// requested device count, keeping a one-to-one virtual→physical mapping and
// statically balancing load by preferring the least-loaded devices. Devices
// can be removed (drain/maintenance) and added dynamically; virtual devices
// mapped to a removed physical device are transparently remapped, and
// clients pick up the new mapping the next time a program is lowered —
// the paper's suspend/resume/migration hook.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/status.h"
#include "hw/cluster.h"
#include "pathways/ids.h"
#include "pathways/virtual_device.h"

namespace pw::pathways {

class ResourceManager {
 public:
  explicit ResourceManager(hw::Cluster* cluster);

  // Allocates `num_devices` virtual devices on one island. If `island` is
  // set, allocates there; otherwise picks the island with the most free
  // capacity. Fails if no single island can host the slice.
  StatusOr<VirtualSlice> AllocateSlice(ClientId client, int num_devices,
                                       std::optional<hw::IslandId> island = std::nullopt);

  // Releases a slice's load accounting and mappings.
  void ReleaseSlice(const VirtualSlice& slice);

  // Releases everything owned by a client (client failure / disconnect).
  void ReleaseClient(ClientId client);

  // Physical device currently backing a virtual device.
  hw::DeviceId Lookup(VirtualDeviceId vdev) const;

  // --- Dynamic reconfiguration ---
  // Removes a physical device from service; virtual devices mapped to it are
  // remapped to the least-loaded remaining device on the same island.
  // Fails if the island has no other device.
  Status RemoveDevice(hw::DeviceId dev);
  // Returns a previously removed device to service.
  Status AddDevice(hw::DeviceId dev);

  // --- Introspection ---
  int load(hw::DeviceId dev) const;
  int num_available_devices() const;
  std::int64_t slices_allocated() const { return slices_allocated_; }

 private:
  struct VDevState {
    hw::DeviceId physical;
    ClientId owner;
  };

  // Least-loaded in-service devices of an island, stable order.
  std::vector<hw::DeviceId> PickDevices(hw::IslandId island, int count) const;
  int FreeCapacityRank(hw::IslandId island) const;

  hw::Cluster* cluster_;
  std::map<VirtualDeviceId, VDevState> vdevs_;
  std::map<hw::DeviceId, int> load_;          // virtual devices per physical
  std::map<hw::DeviceId, bool> in_service_;
  IdGenerator<VirtualDeviceTag> vdev_ids_;
  std::int64_t slices_allocated_ = 0;
};

}  // namespace pw::pathways
