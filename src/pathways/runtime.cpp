#include "pathways/runtime.h"

#include "pathways/client.h"

namespace pw::pathways {

PathwaysRuntime::PathwaysRuntime(hw::Cluster* cluster, PathwaysOptions options)
    : cluster_(cluster),
      options_(options),
      resource_manager_(cluster),
      object_store_(cluster),
      rng_(cluster->params().seed),
      next_client_host_id_(cluster->num_hosts()) {
  schedulers_.reserve(static_cast<std::size_t>(cluster_->num_islands()));
  for (int i = 0; i < cluster_->num_islands(); ++i) {
    hw::Island& island = cluster_->island(i);
    PW_CHECK(!island.hosts().empty());
    schedulers_.push_back(std::make_unique<GangScheduler>(
        this, &island, island.hosts().front()));
  }
  executors_.reserve(static_cast<std::size_t>(cluster_->num_devices()));
  for (int d = 0; d < cluster_->num_devices(); ++d) {
    hw::Device& dev = cluster_->device(d);
    executors_.push_back(std::make_unique<DeviceExecutor>(
        this, &dev, &cluster_->host_of(dev.id())));
  }
  // Memory-oversubscription wiring (docs/MEMORY.md): reservation ordering
  // on every device's HBM allocator, the spiller behind its stall observer,
  // and per-device blocked probes so a wedged run is reported with the
  // stalled executions named instead of draining silently.
  spiller_ = std::make_unique<memory::Spiller>(
      &simulator(), &object_store_,
      memory::Spiller::Options{options_.enable_spill,
                               options_.max_concurrent_spills_per_device});
  object_store_.set_spiller(spiller_.get());
  for (int d = 0; d < cluster_->num_devices(); ++d) {
    hw::HbmAllocator& hbm = cluster_->device(d).hbm();
    hbm.set_ticket_ordering(options_.enforce_reservation_ordering);
    hbm.set_stall_observer([this, d] { spiller_->OnStall(d); });
    simulator().RegisterBlockedProbe([this, d] {
      return object_store_.BlockedReservationReason(hw::DeviceId(d));
    });
  }
}

PathwaysRuntime::~PathwaysRuntime() = default;

Client* PathwaysRuntime::CreateClient(double weight) {
  auto host = std::make_unique<hw::Host>(&simulator(),
                                         net::HostId(next_client_host_id_++),
                                         cluster_->params(), &cluster_->dcn());
  auto client = std::make_unique<Client>(this, client_ids_.Next(), host.get(),
                                         weight);
  Client* raw = client.get();
  client_hosts_.push_back(std::move(host));
  clients_.push_back(std::move(client));
  return raw;
}

int PathwaysRuntime::FailClient(ClientId client) {
  resource_manager_.ReleaseClient(client);
  return object_store_.ReleaseAllForOwner(client);
}

GangScheduler::ClientSchedStats PathwaysRuntime::SchedStatsFor(
    ClientId client) const {
  GangScheduler::ClientSchedStats total;
  for (const auto& sched : schedulers_) {
    auto it = sched->client_stats().find(client.value());
    if (it == sched->client_stats().end()) continue;
    total.gangs_dispatched += it->second.gangs_dispatched;
    total.queue_wait += it->second.queue_wait;
  }
  return total;
}

std::int64_t PathwaysRuntime::total_pass_rebases() const {
  std::int64_t total = 0;
  for (const auto& sched : schedulers_) total += sched->pass_rebases();
  return total;
}

void PathwaysRuntime::RegisterExecution(
    const std::shared_ptr<ProgramExecution>& exec) {
  live_execs_[exec->id()] = exec;
}

void PathwaysRuntime::OnExecutionFinished(ExecutionId id, bool success) {
  live_execs_.erase(id);
  if (success) {
    ++executions_completed_;
  } else {
    ++executions_aborted_;
  }
  for (const auto& [token, observer] : observers_) {
    observer(id, success);
  }
}

int PathwaysRuntime::AbortExecutionsUsing(hw::DeviceId dev) {
  // Collect first: Abort() mutates live_execs_ (via OnExecutionFinished).
  std::vector<std::shared_ptr<ProgramExecution>> doomed;
  for (const auto& [id, weak] : live_execs_) {
    if (std::shared_ptr<ProgramExecution> exec = weak.lock()) {
      if (!exec->aborted() && exec->UsesDevice(dev)) doomed.push_back(exec);
    }
  }
  for (const auto& exec : doomed) exec->Abort();
  return static_cast<int>(doomed.size());
}

Duration PathwaysRuntime::Jitter(Duration nominal) {
  const double frac = cluster_->params().host_jitter_frac;
  if (frac <= 0.0) return nominal;
  return nominal * (1.0 + rng_.NextExponential(frac));
}

}  // namespace pw::pathways
