// Umbrella header: the public API of the Pathways reproduction.
//
// Typical use (mirrors the paper's Fig. 2):
//
//   sim::Simulator sim;
//   auto cluster = hw::Cluster::ConfigB(&sim, /*hosts=*/16);
//   pathways::PathwaysRuntime runtime(cluster.get(), {});
//   pathways::Client* client = runtime.CreateClient();
//
//   auto slice = client->AllocateSlice(8).value();
//   auto fn = xlasim::CompiledFunction::Synthetic(
//       "mul2", 8, Duration::Micros(50), net::CollectiveKind::kAllReduce, 4);
//
//   pathways::ProgramBuilder pb("f");
//   auto v = pb.Argument();
//   auto x = pb.Call(fn, slice, {v});
//   pb.Result(pb.Call(fn, slice, {x}));
//   auto program = std::move(pb).Build();
//
//   auto input = client->TransferToDevice(slice, KiB(4));
//   auto result = client->Run(&program, {input});
//   sim.Run();   // drive the world
//   // result.value().outputs holds device-resident ShardedBuffers.
#pragma once

#include "pathways/client.h"          // IWYU pragma: export
#include "pathways/execution.h"       // IWYU pragma: export
#include "pathways/gang_scheduler.h"  // IWYU pragma: export
#include "pathways/ids.h"             // IWYU pragma: export
#include "pathways/object_store.h"    // IWYU pragma: export
#include "pathways/options.h"         // IWYU pragma: export
#include "pathways/program.h"         // IWYU pragma: export
#include "pathways/resource_manager.h"  // IWYU pragma: export
#include "pathways/runtime.h"         // IWYU pragma: export
#include "pathways/virtual_device.h"  // IWYU pragma: export
