// PathwaysRuntime: composition root for the single-controller runtime.
//
// Owns the resource manager, object store, one gang scheduler per island,
// and one executor per device, all layered over a hw::Cluster. Clients are
// created against the runtime; each gets a dedicated client host on the DCN
// (the paper's client-server split: clients are "farther away" than the
// per-host controllers of multi-controller systems).
//
// LP ownership (partitioned runs, docs/PARALLEL.md): a PathwaysRuntime and
// everything it owns live on the logical process of the Simulator its
// Cluster was built on — the control LP. Its state must only be touched by
// events executing there; other LPs interact with it exclusively through
// timestamped cross-LP events (PartitionedSimulator::SendAt or an
// LpChannelMap), never by direct calls. The serving goldens run the whole
// runtime on LP 0 of a partitioned engine under exactly this rule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "hw/cluster.h"
#include "memory/spiller.h"
#include "pathways/executor.h"
#include "pathways/gang_scheduler.h"
#include "pathways/ids.h"
#include "pathways/object_store.h"
#include "pathways/options.h"
#include "pathways/resource_manager.h"

namespace pw::pathways {

class Client;

class PathwaysRuntime {
 public:
  PathwaysRuntime(hw::Cluster* cluster, PathwaysOptions options);
  ~PathwaysRuntime();

  PathwaysRuntime(const PathwaysRuntime&) = delete;
  PathwaysRuntime& operator=(const PathwaysRuntime&) = delete;

  hw::Cluster& cluster() { return *cluster_; }
  sim::Simulator& simulator() { return cluster_->simulator(); }
  const PathwaysOptions& options() const { return options_; }
  const hw::SystemParams& params() const { return cluster_->params(); }

  ResourceManager& resource_manager() { return resource_manager_; }
  ObjectStore& object_store() { return object_store_; }
  // Spill engine behind every device's HBM stall observer (docs/MEMORY.md).
  memory::Spiller& spiller() { return *spiller_; }
  GangScheduler& scheduler(hw::IslandId island) {
    return *schedulers_.at(static_cast<std::size_t>(island.value()));
  }
  // Per-client scheduling stats summed over every island scheduler (a
  // multi-island program queues on several of them). Workload recorders use
  // this to split end-to-end latency into queueing and execution.
  GangScheduler::ClientSchedStats SchedStatsFor(ClientId client) const;
  // Total stride pass rebases across islands (drift-control telemetry).
  std::int64_t total_pass_rebases() const;
  DeviceExecutor& executor(hw::DeviceId device) {
    return *executors_.at(static_cast<std::size_t>(device.value()));
  }

  // Creates a client with its own host attached to the DCN. `weight` is the
  // proportional-share weight used by the stride scheduler.
  Client* CreateClient(double weight = 1.0);
  // Simulates a client failure: garbage-collects all buffers and virtual
  // devices the client owned. Returns the number of buffers collected.
  int FailClient(ClientId client);

  // --- Execution lifecycle & failure handling (see docs/FAULTS.md) ---
  // Every ProgramExecution registers itself here at creation and is dropped
  // when it finishes or aborts; the registry is what lets a device-crash
  // event find the in-flight work it doomed.
  void RegisterExecution(const std::shared_ptr<ProgramExecution>& exec);
  void OnExecutionFinished(ExecutionId id, bool success);
  // Aborts every live execution whose lowered placement includes `dev`
  // (gangs on that device can never complete). Returns the abort count.
  int AbortExecutionsUsing(hw::DeviceId dev);
  int live_executions() const { return static_cast<int>(live_execs_.size()); }
  std::int64_t executions_completed() const { return executions_completed_; }
  std::int64_t executions_aborted() const { return executions_aborted_; }

  // Observers run synchronously on every execution completion/abort (the
  // fault injector uses this to measure recovery latency and goodput).
  // Returns a token for RemoveExecutionObserver — observers capturing
  // shorter-lived objects must unregister before those objects die.
  using ExecutionObserver = std::function<void(ExecutionId, bool success)>;
  std::int64_t AddExecutionObserver(ExecutionObserver observer) {
    observers_.emplace_back(next_observer_id_, std::move(observer));
    return next_observer_id_++;
  }
  void RemoveExecutionObserver(std::int64_t token) {
    for (auto it = observers_.begin(); it != observers_.end(); ++it) {
      if (it->first == token) {
        observers_.erase(it);
        return;
      }
    }
  }

  // Host-side work jitter (exponential tail on CPU costs); deterministic.
  Duration Jitter(Duration nominal);

  IdGenerator<ExecutionTag>& execution_ids() { return execution_ids_; }

 private:
  hw::Cluster* cluster_;
  PathwaysOptions options_;
  ResourceManager resource_manager_;
  ObjectStore object_store_;
  std::unique_ptr<memory::Spiller> spiller_;
  std::vector<std::unique_ptr<GangScheduler>> schedulers_;
  std::vector<std::unique_ptr<DeviceExecutor>> executors_;
  std::vector<std::unique_ptr<hw::Host>> client_hosts_;
  std::vector<std::unique_ptr<Client>> clients_;
  IdGenerator<ClientTag> client_ids_;
  IdGenerator<ExecutionTag> execution_ids_;
  Rng rng_;
  std::int64_t next_client_host_id_;
  // Executions in flight; weak so a drained execution's callbacks don't keep
  // it alive through the registry.
  std::map<ExecutionId, std::weak_ptr<ProgramExecution>> live_execs_;
  std::vector<std::pair<std::int64_t, ExecutionObserver>> observers_;
  std::int64_t next_observer_id_ = 0;
  std::int64_t executions_completed_ = 0;
  std::int64_t executions_aborted_ = 0;
};

}  // namespace pw::pathways
