// PathwaysRuntime: composition root for the single-controller runtime.
//
// Owns the resource manager, object store, one gang scheduler per island,
// and one executor per device, all layered over a hw::Cluster. Clients are
// created against the runtime; each gets a dedicated client host on the DCN
// (the paper's client-server split: clients are "farther away" than the
// per-host controllers of multi-controller systems).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "hw/cluster.h"
#include "pathways/executor.h"
#include "pathways/gang_scheduler.h"
#include "pathways/ids.h"
#include "pathways/object_store.h"
#include "pathways/options.h"
#include "pathways/resource_manager.h"

namespace pw::pathways {

class Client;

class PathwaysRuntime {
 public:
  PathwaysRuntime(hw::Cluster* cluster, PathwaysOptions options);
  ~PathwaysRuntime();

  PathwaysRuntime(const PathwaysRuntime&) = delete;
  PathwaysRuntime& operator=(const PathwaysRuntime&) = delete;

  hw::Cluster& cluster() { return *cluster_; }
  sim::Simulator& simulator() { return cluster_->simulator(); }
  const PathwaysOptions& options() const { return options_; }
  const hw::SystemParams& params() const { return cluster_->params(); }

  ResourceManager& resource_manager() { return resource_manager_; }
  ObjectStore& object_store() { return object_store_; }
  GangScheduler& scheduler(hw::IslandId island) {
    return *schedulers_.at(static_cast<std::size_t>(island.value()));
  }
  DeviceExecutor& executor(hw::DeviceId device) {
    return *executors_.at(static_cast<std::size_t>(device.value()));
  }

  // Creates a client with its own host attached to the DCN. `weight` is the
  // proportional-share weight used by the stride scheduler.
  Client* CreateClient(double weight = 1.0);
  // Simulates a client failure: garbage-collects all buffers and virtual
  // devices the client owned. Returns the number of buffers collected.
  int FailClient(ClientId client);

  // Host-side work jitter (exponential tail on CPU costs); deterministic.
  Duration Jitter(Duration nominal);

  IdGenerator<ExecutionTag>& execution_ids() { return execution_ids_; }

 private:
  hw::Cluster* cluster_;
  PathwaysOptions options_;
  ResourceManager resource_manager_;
  ObjectStore object_store_;
  std::vector<std::unique_ptr<GangScheduler>> schedulers_;
  std::vector<std::unique_ptr<DeviceExecutor>> executors_;
  std::vector<std::unique_ptr<hw::Host>> client_hosts_;
  std::vector<std::unique_ptr<Client>> clients_;
  IdGenerator<ClientTag> client_ids_;
  IdGenerator<ExecutionTag> execution_ids_;
  Rng rng_;
  std::int64_t next_client_host_id_;
};

}  // namespace pw::pathways
