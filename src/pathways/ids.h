// Strongly typed identifiers used across the Pathways runtime.
#pragma once

#include "common/strong_id.h"

namespace pw::pathways {

struct ClientTag {};
using ClientId = StrongId<ClientTag>;

struct ProgramTag {};
using ProgramId = StrongId<ProgramTag>;

struct ExecutionTag {};
using ExecutionId = StrongId<ExecutionTag>;

struct BufferTag {};
using LogicalBufferId = StrongId<BufferTag>;

struct ShardBufferTag {};
using ShardBufferId = StrongId<ShardBufferTag>;

struct VirtualDeviceTag {};
using VirtualDeviceId = StrongId<VirtualDeviceTag>;

}  // namespace pw::pathways
