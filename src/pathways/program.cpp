#include "pathways/program.h"

namespace pw::pathways {

std::vector<int> PathwaysProgram::ConsumersOf(int node_id) const {
  std::vector<int> out;
  for (const ComputationNode& n : nodes_) {
    for (const ValueRef& in : n.inputs) {
      if (in.kind == ValueRef::Kind::kNodeOutput && in.index == node_id) {
        out.push_back(n.id);
        break;
      }
    }
  }
  return out;
}

bool PathwaysProgram::IsResult(ValueRef v) const {
  for (const ValueRef& r : results_) {
    if (r.kind == v.kind && r.index == v.index) return true;
  }
  return false;
}

ValueRef ProgramBuilder::Call(const xlasim::CompiledFunction& fn,
                              const VirtualSlice& slice,
                              std::vector<ValueRef> inputs, std::string name) {
  PW_CHECK_EQ(fn.num_shards, slice.num_devices())
      << "function " << fn.name << " has " << fn.num_shards
      << " shards but slice has " << slice.num_devices() << " devices";
  for (const ValueRef& in : inputs) {
    if (in.kind == ValueRef::Kind::kNodeOutput) {
      PW_CHECK_GE(in.index, 0);
      PW_CHECK_LT(in.index, program_.num_nodes()) << "input from unknown node";
    } else {
      PW_CHECK_GE(in.index, 0);
      PW_CHECK_LT(in.index, program_.num_arguments());
    }
  }
  ComputationNode node;
  node.id = program_.num_nodes();
  node.fn = fn;
  node.slice = slice;
  node.inputs = std::move(inputs);
  node.name = name.empty() ? fn.name : std::move(name);
  program_.nodes_.push_back(std::move(node));
  return ValueRef::Node(program_.num_nodes() - 1);
}

ValueRef ProgramBuilder::CallIrregular(const xlasim::CompiledFunction& fn,
                                       const VirtualSlice& slice,
                                       std::vector<ValueRef> inputs,
                                       std::string name) {
  const ValueRef ref = Call(fn, slice, std::move(inputs), std::move(name));
  program_.nodes_.back().irregular = true;
  return ref;
}

PathwaysProgram ProgramBuilder::Build() && {
  PW_CHECK_GT(program_.num_nodes(), 0) << "empty program";
  if (program_.results_.empty()) {
    // Default: the last node's output is the result.
    program_.results_.push_back(ValueRef::Node(program_.num_nodes() - 1));
  }
  return std::move(program_);
}

}  // namespace pw::pathways
