// Pathways client library (paper §4.2, Fig. 2).
//
// A client allocates virtual slices, stages data onto devices, traces
// programs with ProgramBuilder, and runs them. Run() issues a single RPC
// per island carrying the whole subgraph (parallel asynchronous dispatch);
// the returned future resolves when every result shard has reported back.
// Clients may keep many programs in flight — the paper's asynchronous
// pipelining — or chain Run().Then(...) for the OpByOp pattern.
//
// LP ownership: a Client (and its dedicated client host) lives on the
// control LP with its runtime. Its futures and promises are LP-local;
// resolving one from another LP's event is a race — cross-LP completions
// must arrive as timestamped events on this LP first.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "hw/cluster.h"
#include "pathways/execution.h"
#include "pathways/ids.h"
#include "pathways/object_store.h"
#include "pathways/program.h"
#include "pathways/virtual_device.h"
#include "sim/serial_resource.h"

namespace pw::pathways {

class PathwaysRuntime;

// Retry-with-backoff policy for RunWithRetry: attempt k (1-based) that fails
// waits min(initial_backoff * multiplier^(k-1), max_backoff) before
// resubmitting. Resubmission re-lowers the program, so it picks up any
// virtual-device remap the resource manager performed after a device
// failure. The cap is load-bearing, not cosmetic: the uncapped product
// overflows Duration's int64 nanoseconds within ~60 doublings, and the
// resulting negative delay aborts the run inside Simulator::Schedule.
struct RetryPolicy {
  int max_attempts = 4;
  Duration initial_backoff = Duration::Micros(500);
  double multiplier = 2.0;
  Duration max_backoff = Duration::Millis(100);

  // Backoff before re-attempting after the `failed_attempts`-th failure
  // (1-based). Computed in double and clamped to max_backoff *before* the
  // Duration conversion, so it is overflow-proof for any attempt count.
  Duration BackoffFor(int failed_attempts) const;
};

class Client {
 public:
  Client(PathwaysRuntime* runtime, ClientId id, hw::Host* host, double weight);

  ClientId id() const { return id_; }
  double weight() const { return weight_; }
  hw::Host* host() { return host_; }

  // --- Resource allocation (Fig. 2: make_virtual_device_set().add_slice) ---
  StatusOr<VirtualSlice> AllocateSlice(
      int num_devices, std::optional<hw::IslandId> island = std::nullopt);
  void ReleaseSlice(const VirtualSlice& slice);

  // --- Data staging ---
  // Creates a device-resident buffer sharded over the slice's devices,
  // paying host→device PCIe transfer time for each shard.
  ShardedBuffer TransferToDevice(const VirtualSlice& slice, Bytes bytes_per_shard);
  void ReleaseBuffer(const ShardedBuffer& buffer);

  // --- Execution ---
  // Runs a traced program. Arguments must match program.num_arguments().
  // The future resolves on the client host when all results are complete.
  sim::SimFuture<ExecutionResult> Run(const PathwaysProgram* program,
                                      std::vector<ShardedBuffer> args = {});

  // Convenience: runs one compiled function as a single-node program.
  sim::SimFuture<ExecutionResult> RunFunction(
      const xlasim::CompiledFunction& fn, const VirtualSlice& slice,
      std::vector<ShardedBuffer> args = {});

  // Runs a program, transparently resubmitting (with exponential backoff)
  // when the execution aborts due to a device failure. The returned future
  // resolves with the first successful result — or, after max_attempts
  // failures, with the last failed result — and `attempts` set either way.
  sim::SimFuture<ExecutionResult> RunWithRetry(
      const PathwaysProgram* program, std::vector<ShardedBuffer> args = {},
      RetryPolicy policy = {});

  // Fire-and-observe submission path for workload generators: runs the
  // program (through RunWithRetry when `retry` is set, so device-failure
  // aborts resubmit transparently), releases every output buffer on
  // completion, and invokes `done` with the result. Generators drive this
  // in a loop; buffer release keeps a long traffic run from accreting HBM.
  void Submit(const PathwaysProgram* program,
              std::function<void(const ExecutionResult&)> done,
              std::optional<RetryPolicy> retry = std::nullopt);

  sim::SerialResource& cpu() { return cpu_; }
  PathwaysRuntime& runtime() { return *runtime_; }
  std::int64_t programs_submitted() const { return programs_submitted_; }
  std::int64_t retries() const { return retries_; }

 private:
  PathwaysRuntime* runtime_;
  ClientId id_;
  hw::Host* host_;
  double weight_;
  sim::SerialResource cpu_;
  std::int64_t programs_submitted_ = 0;
  std::int64_t retries_ = 0;
};

}  // namespace pw::pathways
