#include "pathways/resource_manager.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace pw::pathways {

ResourceManager::ResourceManager(hw::Cluster* cluster) : cluster_(cluster) {
  PW_CHECK(cluster != nullptr);
  for (int i = 0; i < cluster_->num_devices(); ++i) {
    const hw::DeviceId id = cluster_->device(i).id();
    load_[id] = 0;
    in_service_[id] = true;
  }
}

std::vector<hw::DeviceId> ResourceManager::PickDevices(hw::IslandId island,
                                                       int count) const {
  std::vector<hw::DeviceId> candidates;
  for (const hw::Device* d :
       cluster_->island(static_cast<int>(island.value())).devices()) {
    if (in_service_.at(d->id())) candidates.push_back(d->id());
  }
  if (static_cast<int>(candidates.size()) < count) return {};
  // Least-loaded first; ties broken by id for determinism.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [this](hw::DeviceId a, hw::DeviceId b) {
                     const int la = load_.at(a), lb = load_.at(b);
                     if (la != lb) return la < lb;
                     return a < b;
                   });
  candidates.resize(static_cast<std::size_t>(count));
  return candidates;
}

int ResourceManager::FreeCapacityRank(hw::IslandId island) const {
  int free = 0;
  for (const hw::Device* d :
       cluster_->island(static_cast<int>(island.value())).devices()) {
    if (in_service_.at(d->id()) && load_.at(d->id()) == 0) ++free;
  }
  return free;
}

StatusOr<VirtualSlice> ResourceManager::AllocateSlice(
    ClientId client, int num_devices, std::optional<hw::IslandId> island) {
  if (num_devices <= 0) return InvalidArgumentError("slice needs >= 1 device");
  hw::IslandId target;
  if (island.has_value()) {
    if (island->value() < 0 || island->value() >= cluster_->num_islands()) {
      return NotFoundError("no such island");
    }
    target = *island;
  } else {
    // Spread load: island with the most completely free devices wins.
    int best_rank = -1;
    for (int i = 0; i < cluster_->num_islands(); ++i) {
      const int rank = FreeCapacityRank(hw::IslandId(i));
      if (rank > best_rank) {
        best_rank = rank;
        target = hw::IslandId(i);
      }
    }
  }
  std::vector<hw::DeviceId> devices = PickDevices(target, num_devices);
  if (devices.empty()) {
    return ResourceExhaustedError("island cannot host slice of requested size");
  }
  VirtualSlice slice;
  slice.owner = client;
  slice.island = target;
  slice.devices.reserve(static_cast<std::size_t>(num_devices));
  const std::int64_t slice_seq = slices_allocated_;
  for (const hw::DeviceId dev : devices) {
    const VirtualDeviceId vid = vdev_ids_.Next();
    vdevs_[vid] = VDevState{dev, client, slice_seq};
    ++load_[dev];
    slice.devices.push_back(VirtualDevice{vid});
  }
  ++slices_allocated_;
  return slice;
}

void ResourceManager::ReleaseSlice(const VirtualSlice& slice) {
  for (const VirtualDevice& v : slice.devices) {
    auto it = vdevs_.find(v.id);
    if (it == vdevs_.end()) continue;
    --load_[it->second.physical];
    vdevs_.erase(it);
  }
}

void ResourceManager::ReleaseClient(ClientId client) {
  for (auto it = vdevs_.begin(); it != vdevs_.end();) {
    if (it->second.owner == client) {
      --load_[it->second.physical];
      it = vdevs_.erase(it);
    } else {
      ++it;
    }
  }
}

hw::DeviceId ResourceManager::Lookup(VirtualDeviceId vdev) const {
  auto it = vdevs_.find(vdev);
  PW_CHECK(it != vdevs_.end()) << "unknown virtual device " << vdev;
  return it->second.physical;
}

std::map<std::int64_t, std::set<hw::DeviceId>>
ResourceManager::SliceDeviceSets() const {
  std::map<std::int64_t, std::set<hw::DeviceId>> by_slice;
  for (const auto& [vid, state] : vdevs_) {
    by_slice[state.slice_seq].insert(state.physical);
  }
  return by_slice;
}

hw::DeviceId ResourceManager::PickReplacement(
    hw::IslandId island, const std::set<hw::DeviceId>& taken) const {
  // `taken` holds the devices already backing the vdev's slice: a slice's
  // shards must stay on distinct physical devices (gang collectives on one
  // single-threaded device would self-deadlock).
  hw::DeviceId best;
  int best_load = 0;
  for (const hw::Device* d :
       cluster_->island(static_cast<int>(island.value())).devices()) {
    if (!in_service_.at(d->id()) || taken.contains(d->id())) continue;
    const int l = load_.at(d->id());
    if (!best.valid() || l < best_load) {
      best = d->id();
      best_load = l;
    }
  }
  return best;  // invalid if the island has no viable device
}

int ResourceManager::RemapAway(
    hw::DeviceId dev,
    std::map<std::int64_t, std::set<hw::DeviceId>>& by_slice) {
  const hw::IslandId island = cluster_->device(dev).island();
  int stranded = 0;
  for (auto& [vid, state] : vdevs_) {
    if (state.physical != dev) continue;
    std::set<hw::DeviceId>& taken = by_slice[state.slice_seq];
    const hw::DeviceId replacement = PickReplacement(island, taken);
    if (!replacement.valid()) {
      ++stranded;
      continue;
    }
    --load_[dev];
    taken.erase(state.physical);
    taken.insert(replacement);
    state.physical = replacement;
    ++load_[replacement];
    ++vdevs_remapped_;
  }
  return stranded;
}

Status ResourceManager::RemoveDevice(hw::DeviceId dev) {
  auto it = in_service_.find(dev);
  if (it == in_service_.end()) return NotFoundError("no such device");
  if (!it->second) return FailedPreconditionError("device already removed");
  it->second = false;
  // A drain must not strand tenants: dry-run every remap first. Feasibility
  // is per-vdev independent — exclusion is per-slice and a device backs at
  // most one vdev of any slice — so the dry run is exact.
  const hw::IslandId island = cluster_->device(dev).island();
  auto by_slice = SliceDeviceSets();
  for (const auto& [vid, state] : vdevs_) {
    if (state.physical != dev) continue;
    if (!PickReplacement(island, by_slice.at(state.slice_seq)).valid()) {
      it->second = true;  // roll back
      return ResourceExhaustedError("no replacement device on island");
    }
  }
  const int stranded = RemapAway(dev, by_slice);
  PW_CHECK_EQ(stranded, 0) << "drain stranded virtual devices";
  return OkStatus();
}

Status ResourceManager::MarkDeviceFailed(hw::DeviceId dev) {
  auto it = in_service_.find(dev);
  if (it == in_service_.end()) return NotFoundError("no such device");
  if (!it->second) return FailedPreconditionError("device already out of service");
  it->second = false;  // a crashed device leaves service unconditionally
  auto by_slice = SliceDeviceSets();
  vdevs_stranded_ += RemapAway(dev, by_slice);
  return OkStatus();
}

Status ResourceManager::MarkDeviceRecovered(hw::DeviceId dev) {
  return AddDevice(dev);
}

Status ResourceManager::AddDevice(hw::DeviceId dev) {
  auto it = in_service_.find(dev);
  if (it == in_service_.end()) return NotFoundError("no such device");
  if (it->second) return FailedPreconditionError("device already in service");
  it->second = true;
  return OkStatus();
}

int ResourceManager::load(hw::DeviceId dev) const {
  auto it = load_.find(dev);
  PW_CHECK(it != load_.end());
  return it->second;
}

bool ResourceManager::in_service(hw::DeviceId dev) const {
  auto it = in_service_.find(dev);
  PW_CHECK(it != in_service_.end());
  return it->second;
}

int ResourceManager::num_available_devices() const {
  int n = 0;
  for (const auto& [dev, ok] : in_service_) {
    if (ok) ++n;
  }
  return n;
}

}  // namespace pw::pathways
