// ProgramExecution: one run of a lowered PathwaysProgram.
//
// Owns the per-(node, shard) dataflow state: prep/enqueue/output futures,
// the collective rendezvous groups of each gang, and the transfer subgraph
// (paper §4.2: "operations to transfer outputs from a source computation
// shard to the locations of its destination shards, including scatter and
// gather operations"). Executions are shared-ptr-owned by the callbacks in
// flight; when the last completion message reaches the client the object
// drains naturally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/units.h"
#include "hw/cluster.h"
#include "hw/collective_group.h"
#include "pathways/ids.h"
#include "pathways/object_store.h"
#include "pathways/program.h"
#include "sim/future.h"

namespace pw::pathways {

class PathwaysRuntime;

struct ExecutionResult {
  std::vector<ShardedBuffer> outputs;  // one per program result
  // True if the execution was aborted (device failure mid-run); outputs is
  // then empty and the caller should re-lower and resubmit (see
  // Client::RunWithRetry).
  bool failed = false;
  // Attempts consumed when the result came through Client::RunWithRetry
  // (1 = first try succeeded); plain Run() leaves it at 1.
  int attempts = 1;
};

class ProgramExecution
    : public std::enable_shared_from_this<ProgramExecution> {
 public:
  // Created by Client::Run. `args` must be device-resident buffers.
  // `client_cpu` is the client host thread on which completion bookkeeping
  // is charged (per logical buffer or per shard, per PathwaysOptions).
  static std::shared_ptr<ProgramExecution> Create(
      PathwaysRuntime* runtime, ClientId client, double client_weight,
      net::HostId client_host, sim::SerialResource* client_cpu,
      const PathwaysProgram* program, std::vector<ShardedBuffer> args,
      ExecutionId id);

  ExecutionId id() const { return id_; }
  ClientId client() const { return client_; }
  double client_weight() const { return client_weight_; }
  net::HostId client_host() const { return client_host_; }
  const PathwaysProgram& program() const { return *program_; }

  // --- Reservation ordering (docs/MEMORY.md) ---
  // Called by the island scheduler at the instant it commits to dispatching
  // `node`'s gang: draws one global reservation ticket for the whole gang,
  // so all of its shard reservations (scratch + output, every device) enter
  // the per-device queues in one scheduler-consistent global order.
  void AssignGangTicket(int node);
  hw::MemoryTicket gang_ticket(int node) const {
    return nodes_.at(static_cast<std::size_t>(node)).ticket;
  }

  // --- Lowered placement (physical devices, resolved at creation) ---
  hw::DeviceId DeviceFor(int node, int shard) const;
  // True if this node's output is a program result (its shards report
  // completion to the client).
  bool IsResultNode(int node) const;

  // --- Executor-facing state transitions ---
  // Reserves HBM for one output shard (called from executor prep; lazy so
  // queued programs hold no memory).
  sim::SimFuture<sim::Unit> ReserveOutputShard(int node, int shard);
  void MarkPrepDone(int node, int shard);
  sim::SimFuture<sim::Unit> PrepDone(int node, int shard) const;
  void MarkEnqueued(int node, int shard);
  // Completes when all shards of `node` have been enqueued on their devices
  // (sequential dispatch gates the next node on this).
  sim::SimFuture<sim::Unit> NodeEnqueued(int node) const;
  void MarkShardComplete(int node, int shard);
  sim::SimFuture<sim::Unit> OutputReady(int node, int shard) const;
  // Completes when every shard of `node` has finished executing (the
  // scheduler's in-flight admission control subscribes to this).
  sim::SimFuture<sim::Unit> NodeComplete(int node) const;

  // Input-data futures the device kernel gates on (one per operand).
  std::vector<sim::SimFuture<sim::Unit>> InputFutures(int node, int shard) const;

  // Collective rendezvous group for a node's gang (lazily created; all the
  // node's shards share it).
  std::shared_ptr<hw::CollectiveGroup> GroupFor(int node);

  // --- Client-side descriptor streaming ---
  // The client thread produces each gang's launch descriptors (~17 us per
  // shard, serialized per client); the scheduler may not dispatch a gang
  // before its descriptors exist. For single-node programs this puts the
  // fan-out on the critical path (Figs. 5/6); for multi-node programs the
  // stream runs ahead of execution and costs nothing at steady state.
  void MarkClientReleased(int node);
  sim::SimFuture<sim::Unit> ClientReleased(int node) const;

  // --- Completion ---
  sim::SimFuture<ExecutionResult> done() const { return done_promise_->future(); }
  // Called on the client host when a result-shard completion message lands.
  void OnResultShardMessage();
  bool finished() const { return finished_; }

  // --- Failure handling (see docs/FAULTS.md) ---
  // True if this execution's lowered placement includes `dev` (any node,
  // any shard). Used to find the executions doomed by a device crash.
  bool UsesDevice(hw::DeviceId dev) const;
  // Aborts the execution: every pending promise/latch is force-fired so the
  // dataflow machinery unwinds without deadlock, collective rendezvous
  // groups are aborted (parked peer devices are released), the execution's
  // buffers are garbage-collected, and done() resolves with failed=true.
  // All subsequent state-transition calls (Mark*, transfers) are no-ops.
  // Idempotent; a finished execution cannot be aborted.
  void Abort();
  bool aborted() const { return aborted_; }

  // Stats.
  std::int64_t transfers_started() const { return transfers_; }

 private:
  // One wired-but-unconsumed read of a source shard finished (the data was
  // handed off / left the source device): drops the spill-protection pin.
  // No-op after Abort(), which drains the outstanding list itself.
  void FinishRead(LogicalBufferId buffer, int shard);

 private:
  ProgramExecution(PathwaysRuntime* runtime, ClientId client,
                   double client_weight, net::HostId client_host,
                   sim::SerialResource* client_cpu,
                   const PathwaysProgram* program,
                   std::vector<ShardedBuffer> args, ExecutionId id);

  void Lower();
  void WireTransfers();
  void WireEdge(int consumer_node, int operand_index);
  // Schedules the physical movement for one (src,dst) shard pair; fulfills
  // `done_latch` when the data lands in the consumer's input buffer. A
  // spilled source shard is read through from host DRAM (and restored to
  // HBM opportunistically when it is headed back to its own device); the
  // source stays pinned while it is being read.
  void StartTransfer(LogicalBufferId src_buffer, int src_shard,
                     hw::DeviceId src, hw::DeviceId dst, Bytes bytes,
                     std::shared_ptr<sim::CountdownLatch> done_latch);
  void WireRelease();

  struct ShardState {
    std::unique_ptr<sim::SimPromise<sim::Unit>> prep_done;
    std::unique_ptr<sim::SimPromise<sim::Unit>> output_ready;
    // One latch per operand; input future = latch.done().
    std::vector<std::shared_ptr<sim::CountdownLatch>> inputs;
  };
  struct NodeState {
    std::vector<ShardState> shards;
    std::vector<hw::DeviceId> devices;  // lowered placement per shard
    ShardedBuffer output;               // deferred: shards reserved at prep
    // Gang-wide reservation ticket, drawn at scheduler dispatch.
    hw::MemoryTicket ticket = hw::kUnticketed;
    std::unique_ptr<sim::SimPromise<sim::Unit>> client_release;
    std::unique_ptr<sim::CountdownLatch> enqueue_latch;
    std::unique_ptr<sim::CountdownLatch> completion_latch;
    std::shared_ptr<hw::CollectiveGroup> group;
    int consumers_remaining = 0;
  };

  PathwaysRuntime* runtime_;
  ClientId client_;
  double client_weight_;
  net::HostId client_host_;
  sim::SerialResource* client_cpu_;
  const PathwaysProgram* program_;
  std::vector<ShardedBuffer> args_;
  ExecutionId id_;

  std::vector<NodeState> nodes_;
  // Source shards pinned for the duration of an active read (multiset:
  // scatter/gather edges read one shard several times). The pin only spans
  // the read itself — spilled shards are consumed by reading through from
  // host DRAM, so idle data stays evictable right up to the moment it is
  // actually being moved.
  std::vector<std::pair<LogicalBufferId, int>> outstanding_reads_;
  std::unique_ptr<sim::SimPromise<ExecutionResult>> done_promise_;
  int result_shard_messages_expected_ = 0;
  int result_shard_messages_received_ = 0;
  bool finished_ = false;
  bool aborted_ = false;
  std::int64_t transfers_ = 0;
};

}  // namespace pw::pathways
