// Runtime-wide options: dispatch mode and scheduling policy.
#pragma once

#include "common/units.h"

namespace pw::pathways {

// Paper §4.5. Parallel asynchronous dispatch runs host-side work for all
// nodes of a statically known subgraph concurrently; sequential dispatch
// (the traditional model, Fig. 4a) starts a node's host-side work only
// after its predecessor has been enqueued.
enum class DispatchMode { kParallel, kSequential };

// Paper §4.4/§5.2. FIFO across programs, or weighted proportional share
// across clients (stride scheduling).
enum class SchedulerPolicy { kFifo, kWeightedStride };

struct PathwaysOptions {
  DispatchMode dispatch = DispatchMode::kParallel;
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  // If true, client-side bookkeeping is charged per *logical* buffer
  // (the sharded-buffer abstraction, §4.2); if false, per shard — the
  // ablation showing why the abstraction matters at 2048 shards.
  bool sharded_buffer_bookkeeping = true;
  // Admission control: maximum gangs dispatched-but-not-completed per
  // island scheduler. Deep enough for pipelines to fill (Table 2 uses up to
  // S=16 stages x in-flight micro-batches); fairness-sensitive multi-tenant
  // settings use small values so the proportional-share policy has a
  // backlog to arbitrate (Fig. 9).
  int max_inflight_gangs = 64;

  // --- Memory oversubscription (paper §4.6, docs/MEMORY.md) ---
  // Scheduler-consistent reservation ordering: every gang draws one global
  // ticket at dispatch (staged buffers at creation) and HBM waiters are
  // served strictly in ticket order, so staging/retry traffic cannot enter
  // two devices' queues in opposite orders and circular-wait against the
  // gang pipeline. Disabling this (test hook only) reverts to pre-fix
  // arrival-order FIFO service — the configuration the reservation
  // inversion regression test proves wedges.
  bool enforce_reservation_ordering = true;
  // Spill idle (granted, content-ready, unpinned) buffer shards to host
  // DRAM when a device's HBM waiters stall; consumers read spilled shards
  // straight from DRAM (restoring residency opportunistically). Off,
  // oversubscribed programs merely stall until holders release — on, ≥2
  // working sets per device-HBM stay servable.
  bool enable_spill = true;
  // Page-out migrations in flight per device (LRU victims, PCIe-paced).
  int max_concurrent_spills_per_device = 1;
};

}  // namespace pw::pathways
