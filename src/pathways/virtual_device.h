// Virtual devices and slices (paper §4.1, Fig. 2).
//
// Clients never hold physical device ids: they hold virtual devices grouped
// into slices. The resource manager owns the virtual→physical mapping and
// may change it (device removal, defragmentation); programs are lowered
// against the mapping current at dispatch time.
#pragma once

#include <vector>

#include "hw/device.h"
#include "pathways/ids.h"

namespace pw::pathways {

struct VirtualDevice {
  VirtualDeviceId id;
};

// A set of virtual devices carved out of one island with a mesh shape that
// suits the computation's communication pattern. One slice backs the shards
// of one (sharded) computation: shard i runs on devices()[i].
struct VirtualSlice {
  ClientId owner;
  hw::IslandId island;
  std::vector<VirtualDevice> devices;

  int num_devices() const { return static_cast<int>(devices.size()); }
};

}  // namespace pw::pathways
