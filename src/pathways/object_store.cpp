#include "pathways/object_store.h"

#include <algorithm>
#include <sstream>

#include "memory/wait_graph.h"

namespace pw::pathways {

namespace {

// Wait-for-graph node id for a buffer entry: executions key by their id
// value; ownerless staged buffers get a disjoint negative range.
std::int64_t EntityOf(ExecutionId producer, LogicalBufferId id) {
  if (producer.valid()) return producer.value();
  return -(id.value() + 1);
}

}  // namespace

void ObjectStore::RegisterTicket(hw::MemoryTicket ticket, std::int64_t entity,
                                 std::string name) {
  tickets_[ticket] = TicketInfo{entity, std::move(name)};
}

void ObjectStore::FinishTicket(hw::MemoryTicket ticket) {
  if (ticket == hw::kUnticketed) return;
  tickets_.erase(ticket);
}

void ObjectStore::SetBufferTicket(LogicalBufferId id, hw::MemoryTicket ticket) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;  // released before its gang dispatched
  it->second.ticket = ticket;
}

std::string ObjectStore::TicketName(hw::MemoryTicket ticket) const {
  auto it = tickets_.find(ticket);
  if (it != tickets_.end()) return it->second.name;
  std::ostringstream os;
  if (ticket == hw::kUnticketed) {
    os << "unticketed";
  } else {
    os << "ticket " << ticket;
  }
  return os.str();
}

void ObjectStore::Touch(ShardState& state) {
  state.last_use_ns = cluster_->simulator().now().nanos();
}

ShardedBuffer ObjectStore::CreateBuffer(
    ClientId owner, ExecutionId producer,
    const std::vector<hw::DeviceId>& devices, Bytes bytes_per_shard,
    std::vector<sim::SimFuture<sim::Unit>>* per_shard_reservations) {
  PW_CHECK(!devices.empty());
  PW_CHECK_GE(bytes_per_shard, 0);
  Entry entry;
  entry.owner = owner;
  entry.producer = producer;
  entry.ticket = NextTicket();
  for (const hw::DeviceId dev : devices) {
    entry.shards.push_back(
        ShardBuffer{shard_ids_.Next(), dev, bytes_per_shard, BufferLocation::kHbm});
  }
  entry.states.assign(devices.size(), ShardState{});
  const LogicalBufferId id = logical_ids_.Next();
  {
    std::ostringstream os;
    os << "staged buffer " << id;
    RegisterTicket(entry.ticket, EntityOf(producer, id), os.str());
  }
  ShardedBuffer handle;
  handle.id = id;
  handle.shards = entry.shards;
  const hw::MemoryTicket ticket = entry.ticket;
  entries_[id] = std::move(entry);
  // Issue every shard reservation atomically (one simulator event), all
  // under one ticket — an eager buffer's requests cannot interleave
  // inconsistently with anything across devices.
  std::vector<sim::SimFuture<sim::Unit>> reservations;
  reservations.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const hw::DeviceId dev = devices[i];
    const int shard = static_cast<int>(i);
    reservations.push_back(cluster_->device(dev).hbm().AllocateAsync(
        bytes_per_shard, ticket, [this, id, shard, dev, bytes_per_shard] {
          auto it = entries_.find(id);
          if (it == entries_.end()) {
            // Released while the reservation queued: hand the memory back.
            // Deferred to its own event — admission happens inside the
            // allocator's serve loop, which must not re-enter itself.
            cluster_->simulator().Schedule(
                Duration::Zero(), [this, dev, bytes_per_shard] {
                  cluster_->device(dev).hbm().Free(bytes_per_shard);
                });
            return;
          }
          ShardState& state = it->second.states[static_cast<std::size_t>(shard)];
          state.requested = true;
          state.granted = true;
          state.residency = ShardResidency::kHbm;
          Touch(state);
          const int d = static_cast<int>(dev.value());
          logical_live_[d] += bytes_per_shard;
          logical_peak_[d] = std::max(logical_peak_[d], logical_live_[d]);
        }));
  }
  handle.ready = sim::WhenAll(&cluster_->simulator(), reservations);
  if (per_shard_reservations != nullptr) {
    *per_shard_reservations = reservations;
  }
  return handle;
}

ShardedBuffer ObjectStore::CreateBufferDeferred(
    ClientId owner, ExecutionId producer,
    const std::vector<hw::DeviceId>& devices, Bytes bytes_per_shard) {
  PW_CHECK(!devices.empty());
  PW_CHECK_GE(bytes_per_shard, 0);
  Entry entry;
  entry.owner = owner;
  entry.producer = producer;
  for (const hw::DeviceId dev : devices) {
    entry.shards.push_back(
        ShardBuffer{shard_ids_.Next(), dev, bytes_per_shard, BufferLocation::kHbm});
  }
  entry.states.assign(devices.size(), ShardState{});
  ShardedBuffer handle;
  handle.id = logical_ids_.Next();
  handle.shards = entry.shards;
  handle.ready = sim::ReadyFuture(&cluster_->simulator(), sim::Unit{});
  entries_[handle.id] = std::move(entry);
  return handle;
}

sim::SimFuture<sim::Unit> ObjectStore::ReserveShard(LogicalBufferId id,
                                                    int shard) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "ReserveShard on unknown buffer " << id;
  Entry& entry = it->second;
  const ShardBuffer& sb = entry.shards.at(static_cast<std::size_t>(shard));
  ShardState& state = entry.states.at(static_cast<std::size_t>(shard));
  PW_CHECK(!state.requested)
      << "shard " << shard << " of buffer " << id << " reserved twice";
  state.requested = true;
  sim::SimPromise<sim::Unit> granted(&cluster_->simulator());
  auto fut = granted.future();
  cluster_->device(sb.device)
      .hbm()
      .AllocateAsync(
          sb.bytes, entry.ticket,
          [this, id, shard, device = sb.device, bytes = sb.bytes] {
            auto it2 = entries_.find(id);
            if (it2 == entries_.end()) {
              // Buffer released (failed-client GC, aborted execution) while
              // the reservation queued: hand the memory straight back — the
              // future below still fires its vacuous grant. Deferred to its
              // own event; admission happens inside the allocator's serve
              // loop, which must not re-enter itself.
              cluster_->simulator().Schedule(
                  Duration::Zero(), [this, device, bytes] {
                    cluster_->device(device).hbm().Free(bytes);
                  });
              return;
            }
            ShardState& st = it2->second.states[static_cast<std::size_t>(shard)];
            st.granted = true;
            st.residency = ShardResidency::kHbm;
            Touch(st);
            const int d = static_cast<int>(device.value());
            logical_live_[d] += bytes;
            logical_peak_[d] = std::max(logical_peak_[d], logical_live_[d]);
          })
      .Then([granted](const sim::Unit&) mutable {
        // Waiters gate work on this future (the executor's in-order enqueue
        // stream, most critically); a silently dropped promise would wedge
        // them forever, while a vacuous grant lets them unwind through
        // their own aborted-state checks.
        granted.Set(sim::Unit{});
      });
  return fut;
}

sim::SimFuture<sim::Unit> ObjectStore::GrowShard(LogicalBufferId id, int shard,
                                                 Bytes delta) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "GrowShard on unknown buffer " << id;
  PW_CHECK_GT(delta, 0);
  Entry& entry = it->second;
  ShardBuffer& sb = entry.shards.at(static_cast<std::size_t>(shard));
  ShardState& state = entry.states.at(static_cast<std::size_t>(shard));
  PW_CHECK(state.granted)
      << "GrowShard before shard " << shard << " of buffer " << id
      << " holds memory";
  const hw::DeviceId dev = sb.device;
  const int d = static_cast<int>(dev.value());

  if (state.residency == ShardResidency::kHostDram &&
      cluster_->host_of(dev).dram().TryAllocate(delta)) {
    // Paged-out sequence keeps growing in DRAM, no HBM traffic at all.
    sb.bytes += delta;
    logical_live_[d] += delta;
    logical_peak_[d] = std::max(logical_peak_[d], logical_live_[d]);
    ++grows_completed_;
    grown_bytes_total_ += delta;
    Touch(state);
    return sim::ReadyFuture(&cluster_->simulator(), sim::Unit{});
  }

  // Either resident (kHbm / kSpillingOut — the grow pin below makes an
  // in-flight page-out abandon) or paged out with DRAM exhausted, in which
  // case the shard re-enters HBM at its grown size and frees its DRAM copy
  // at grant (a forced restore).
  const bool forced_restore = state.residency == ShardResidency::kHostDram;
  const Bytes request = forced_restore ? sb.bytes + delta : delta;
  ++state.pins;  // spill-protect the shard while the delta is queued
  Touch(state);
  const hw::MemoryTicket ticket = NextTicket();
  {
    std::ostringstream os;
    os << "grow buffer " << id << "/" << shard;
    RegisterTicket(ticket, EntityOf(entry.producer, id), os.str());
  }
  sim::SimPromise<sim::Unit> granted(&cluster_->simulator());
  auto fut = granted.future();
  cluster_->device(dev)
      .hbm()
      .AllocateAsync(
          request, ticket,
          [this, id, shard, dev, delta, request, ticket, forced_restore] {
            FinishTicket(ticket);
            auto it2 = entries_.find(id);
            if (it2 == entries_.end()) {
              // Buffer released while the grow queued (fault unwinding):
              // hand the grant straight back. Deferred to its own event —
              // admission runs inside the allocator's serve loop, which
              // must not re-enter itself.
              cluster_->simulator().Schedule(
                  Duration::Zero(), [this, dev, request] {
                    cluster_->device(dev).hbm().Free(request);
                  });
              return;
            }
            Entry& e = it2->second;
            ShardBuffer& sb2 = e.shards[static_cast<std::size_t>(shard)];
            ShardState& st = e.states[static_cast<std::size_t>(shard)];
            if (forced_restore) {
              if (st.residency == ShardResidency::kHostDram) {
                // The expected case: flip residency to the fresh HBM copy
                // and return the DRAM side.
                cluster_->host_of(dev).dram().Free(sb2.bytes);
                st.residency = ShardResidency::kHbm;
                sb2.location = BufferLocation::kHbm;
                ++fills_completed_;
                for (const hw::Device* hd : cluster_->host_of(dev).devices()) {
                  MaybeKickSpiller(hd->id());
                }
              } else {
                // A same-device read restored the shard while our grown-size
                // reservation queued; only the delta is still needed, so the
                // redundant old-size portion goes back (deferred, as above).
                const Bytes extra = request - delta;
                cluster_->simulator().Schedule(
                    Duration::Zero(), [this, dev, extra] {
                      cluster_->device(dev).hbm().Free(extra);
                    });
              }
            }
            sb2.bytes += delta;
            const int d2 = static_cast<int>(dev.value());
            logical_live_[d2] += delta;
            logical_peak_[d2] = std::max(logical_peak_[d2], logical_live_[d2]);
            ++grows_completed_;
            grown_bytes_total_ += delta;
            Touch(st);
          })
      .Then([this, id, shard, granted](const sim::Unit&) mutable {
        // Drop the grow pin through UnpinShard so a stalled spiller is
        // re-kicked, then complete the caller's future. A vacuous grant on
        // a released buffer still fires — callers unwind through their own
        // aborted-state checks, exactly like ReserveShard.
        UnpinShard(id, shard);
        granted.Set(sim::Unit{});
      });
  return fut;
}

sim::SimFuture<sim::Unit> ObjectStore::AllocateScratch(hw::DeviceId device,
                                                       Bytes bytes,
                                                       hw::MemoryTicket ticket) {
  return cluster_->device(device).hbm().AllocateAsync(bytes, ticket);
}

void ObjectStore::FreeScratch(hw::DeviceId device, Bytes bytes) {
  cluster_->device(device).hbm().Free(bytes);
}

void ObjectStore::MarkShardContentReady(LogicalBufferId id, int shard) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  ShardState& state = entry.states.at(static_cast<std::size_t>(shard));
  state.content_ready = true;
  Touch(state);
  // Newly spillable: retry a stalled device whose candidates were all
  // still content-pending (staged bytes landing produce no HBM free that
  // would otherwise re-fire the stall observer).
  MaybeKickSpiller(entry.shards[static_cast<std::size_t>(shard)].device);
}

void ObjectStore::PinShard(LogicalBufferId id, int shard) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  ShardState& state = it->second.states.at(static_cast<std::size_t>(shard));
  ++state.pins;
  Touch(state);
}

void ObjectStore::UnpinShard(LogicalBufferId id, int shard) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  ShardState& state = entry.states.at(static_cast<std::size_t>(shard));
  PW_CHECK_GT(state.pins, 0) << "unpin of unpinned shard " << shard
                             << " of buffer " << id;
  --state.pins;
  if (state.pins == 0) {
    // The shard just became a spill candidate; a stalled device whose only
    // candidates were pinned would otherwise never be retried (nothing
    // else frees HBM there to re-fire the stall observer).
    MaybeKickSpiller(entry.shards[static_cast<std::size_t>(shard)].device);
  }
}

void ObjectStore::MaybeKickSpiller(hw::DeviceId device) {
  if (spiller_ != nullptr &&
      cluster_->device(device).hbm().HasStalledWaiter()) {
    spiller_->OnStall(static_cast<int>(device.value()));
  }
}

bool ObjectStore::ShardInDram(LogicalBufferId id, int shard) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  return it->second.states.at(static_cast<std::size_t>(shard)).residency ==
         ShardResidency::kHostDram;
}

bool ObjectStore::TryRestoreShard(LogicalBufferId id, int shard) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  Entry& entry = it->second;
  ShardBuffer& sb = entry.shards.at(static_cast<std::size_t>(shard));
  ShardState& state = entry.states.at(static_cast<std::size_t>(shard));
  if (state.residency != ShardResidency::kHostDram) return false;
  // Allocate() refuses while waiters queue, so a restore never jumps the
  // reservation order — it only soaks up genuinely idle capacity.
  if (!cluster_->device(sb.device).hbm().Allocate(sb.bytes).ok()) return false;
  state.residency = ShardResidency::kHbm;
  sb.location = BufferLocation::kHbm;
  cluster_->host_of(sb.device).dram().Free(sb.bytes);
  ++fills_completed_;
  Touch(state);
  // DRAM headroom returned: devices of this host whose spills were blocked
  // on an exhausted DRAM pool can try again.
  for (const hw::Device* dev : cluster_->host_of(sb.device).devices()) {
    MaybeKickSpiller(dev->id());
  }
  return true;
}

BufferLocation ObjectStore::shard_location(LogicalBufferId id,
                                           int shard) const {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end());
  return it->second.shards.at(static_cast<std::size_t>(shard)).location;
}

ShardResidency ObjectStore::shard_residency(LogicalBufferId id,
                                            int shard) const {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end());
  return it->second.states.at(static_cast<std::size_t>(shard)).residency;
}

bool ObjectStore::HasStalledReservation(int device) const {
  return cluster_->device(device).hbm().HasStalledWaiter();
}

bool ObjectStore::StartSpill(int device) {
  // LRU scan over granted, content-ready, unpinned, HBM-resident shards
  // homed on `device`. std::map iteration makes ties deterministic.
  LogicalBufferId victim_id;
  int victim_shard = -1;
  std::int64_t victim_last_use = 0;
  Bytes victim_bytes = 0;
  for (auto& [id, entry] : entries_) {
    for (std::size_t i = 0; i < entry.shards.size(); ++i) {
      const ShardBuffer& sb = entry.shards[i];
      const ShardState& st = entry.states[i];
      if (static_cast<int>(sb.device.value()) != device) continue;
      if (!st.granted || !st.content_ready || st.pins > 0 ||
          st.residency != ShardResidency::kHbm || sb.bytes <= 0) {
        continue;
      }
      if (victim_shard < 0 || st.last_use_ns < victim_last_use) {
        victim_id = id;
        victim_shard = static_cast<int>(i);
        victim_last_use = st.last_use_ns;
        victim_bytes = sb.bytes;
      }
    }
  }
  if (victim_shard < 0) return false;
  const hw::DeviceId dev(device);
  hw::Host& host = cluster_->host_of(dev);
  if (!host.dram().TryAllocate(victim_bytes)) return false;  // DRAM exhausted
  Entry& entry = entries_.at(victim_id);
  entry.states[static_cast<std::size_t>(victim_shard)].residency =
      ShardResidency::kSpillingOut;
  // Device→host page-out over the device's PCIe link; HBM frees when the
  // last byte lands in DRAM. Readers arriving mid-flight still source from
  // the (intact) HBM copy.
  host.pcie(dev).Transfer(
      victim_bytes, [this, id = victim_id, shard = victim_shard, dev,
                     bytes = victim_bytes, device] {
        auto it = entries_.find(id);
        if (it == entries_.end()) {
          // Buffer died mid-spill: FreeEntry already returned the HBM side;
          // the DRAM destination is ours to give back.
          cluster_->host_of(dev).dram().Free(bytes);
        } else {
          Entry& e = it->second;
          ShardState& st = e.states[static_cast<std::size_t>(shard)];
          PW_CHECK(st.residency == ShardResidency::kSpillingOut);
          if (st.pins > 0 || e.shards[static_cast<std::size_t>(shard)].bytes != bytes) {
            // Two reasons to abandon rather than complete: a reader pinned
            // the shard mid-migration and is sourcing from the (intact) HBM
            // copy, or the shard *grew* under the migration (KV append) so
            // the DRAM copy no longer covers it. Either way the HBM copy is
            // authoritative; free the DRAM destination and let a surviving
            // stall re-kick the spiller, which then picks elsewhere (or
            // re-picks this shard at its new size).
            st.residency = ShardResidency::kHbm;
            cluster_->host_of(dev).dram().Free(bytes);
          } else {
            st.residency = ShardResidency::kHostDram;
            e.shards[static_cast<std::size_t>(shard)].location =
                BufferLocation::kHostDram;
            ++spills_completed_;
            spilled_bytes_total_ += bytes;
            cluster_->device(dev).hbm().Free(bytes);  // serves waiters
          }
        }
        if (spiller_ != nullptr) spiller_->OnSpillComplete(device);
      });
  return true;
}

std::string ObjectStore::DescribeReservationCycle() const {
  // Build the wait-for graph across every device: a stalled front waiter's
  // entity waits on every entity holding granted memory on that device.
  memory::WaitForGraph graph;
  std::map<std::int64_t, std::string> names;
  for (int d = 0; d < cluster_->num_devices(); ++d) {
    const hw::HbmAllocator& hbm = cluster_->device(d).hbm();
    if (!hbm.HasStalledWaiter()) continue;
    const hw::MemoryTicket waiting = hbm.front_waiter_ticket();
    auto tick_it = tickets_.find(waiting);
    if (tick_it == tickets_.end()) continue;  // unattributable waiter
    const std::int64_t waiter_entity = tick_it->second.entity;
    names[waiter_entity] = tick_it->second.name;
    std::ostringstream label;
    label << "dev" << d << " HBM";
    for (const auto& [id, entry] : entries_) {
      bool holds = false;
      for (std::size_t i = 0; i < entry.shards.size(); ++i) {
        if (static_cast<int>(entry.shards[i].device.value()) == d &&
            entry.states[i].granted &&
            entry.states[i].residency != ShardResidency::kHostDram) {
          holds = true;
          break;
        }
      }
      if (!holds) continue;
      const std::int64_t holder = EntityOf(entry.producer, id);
      if (holder == waiter_entity) continue;
      std::ostringstream holder_name;
      if (entry.producer.valid()) {
        holder_name << "exec " << entry.producer.value();
      } else {
        holder_name << "buffer " << id;
      }
      names[holder] = holder_name.str();
      graph.AddEdge(waiter_entity, holder, label.str());
    }
  }
  return graph.DescribeCycle(names);
}

void ObjectStore::CheckNoReservationWedge() const {
  bool stalled = false;
  std::ostringstream reasons;
  for (int d = 0; d < cluster_->num_devices(); ++d) {
    const std::string reason = BlockedReservationReason(hw::DeviceId(d));
    if (reason.empty()) continue;
    if (stalled) reasons << "; ";
    stalled = true;
    reasons << reason;
  }
  if (!stalled) return;
  const std::string cycle = DescribeReservationCycle();
  PW_CHECK(false) << "HBM reservation wedge at quiescence: "
                  << (cycle.empty() ? reasons.str()
                                    : "cycle " + cycle + " (" + reasons.str() +
                                          ")");
}

std::string ObjectStore::BlockedReservationReason(hw::DeviceId device) const {
  const hw::HbmAllocator& hbm = cluster_->device(device).hbm();
  if (!hbm.HasStalledWaiter()) return "";
  std::ostringstream os;
  os << "dev" << device.value() << " HBM: " << hbm.waiters()
     << " stalled reservation(s); front " << TicketName(hbm.front_waiter_ticket())
     << " wants " << hbm.front_waiter_bytes() << " B (" << hbm.available()
     << " B free)";
  // Name the holders so the operator sees who to blame.
  bool first = true;
  for (const auto& [id, entry] : entries_) {
    for (std::size_t i = 0; i < entry.shards.size(); ++i) {
      if (entry.shards[i].device != device || !entry.states[i].granted ||
          entry.states[i].residency == ShardResidency::kHostDram) {
        continue;
      }
      os << (first ? "; holders: " : ", ");
      first = false;
      if (entry.producer.valid()) {
        os << "exec " << entry.producer.value();
      } else {
        os << "buffer " << id;
      }
      os << " (" << entry.shards[i].bytes << " B)";
      break;  // one line per buffer
    }
  }
  return os.str();
}

void ObjectStore::AddRef(LogicalBufferId id) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "AddRef on unknown buffer " << id;
  ++it->second.refcount;
}

void ObjectStore::Release(LogicalBufferId id) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "Release on unknown buffer " << id;
  if (--it->second.refcount > 0) return;
  FreeEntry(it->second);
  entries_.erase(it);
}

int ObjectStore::ReleaseAllForOwner(ClientId owner) {
  int collected = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      FreeEntry(it->second);
      it = entries_.erase(it);
      ++collected;
    } else {
      ++it;
    }
  }
  return collected;
}

int ObjectStore::ReleaseAllForProducer(ExecutionId producer) {
  int collected = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.producer == producer) {
      FreeEntry(it->second);
      it = entries_.erase(it);
      ++collected;
    } else {
      ++it;
    }
  }
  return collected;
}

Bytes ObjectStore::shard_bytes(LogicalBufferId id, int shard) const {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end());
  return it->second.shards.at(static_cast<std::size_t>(shard)).bytes;
}

int ObjectStore::refcount(LogicalBufferId id) const {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end());
  return it->second.refcount;
}

Bytes ObjectStore::logical_live_bytes(hw::DeviceId device) const {
  auto it = logical_live_.find(static_cast<int>(device.value()));
  return it == logical_live_.end() ? 0 : it->second;
}

Bytes ObjectStore::logical_peak_bytes(hw::DeviceId device) const {
  auto it = logical_peak_.find(static_cast<int>(device.value()));
  return it == logical_peak_.end() ? 0 : it->second;
}

std::string ObjectStore::DumpShardStates() const {
  std::ostringstream os;
  for (const auto& [id, entry] : entries_) {
    for (std::size_t i = 0; i < entry.shards.size(); ++i) {
      const ShardBuffer& sb = entry.shards[i];
      const ShardState& st = entry.states[i];
      const char* res = "hbm";
      switch (st.residency) {
        case ShardResidency::kHbm: res = "hbm"; break;
        case ShardResidency::kSpillingOut: res = "spilling"; break;
        case ShardResidency::kHostDram: res = "dram"; break;
      }
      os << "buffer " << id << "/" << i << " producer=" << entry.producer
         << " ticket=" << entry.ticket << " dev" << sb.device.value() << " "
         << sb.bytes << "B requested=" << st.requested
         << " granted=" << st.granted << " ready=" << st.content_ready
         << " residency=" << res << " pins=" << st.pins
         << " last_use=" << st.last_use_ns << "ns\n";
    }
  }
  return os.str();
}

void ObjectStore::FreeEntry(Entry& entry) {
  // Retire the buffer's ticket from the diagnostics registry (for gang
  // tickets the owning execution also does this — FinishTicket is an
  // idempotent erase). Without it, every staged buffer of a long serving
  // run would leak one registry entry.
  FinishTicket(entry.ticket);
  for (std::size_t i = 0; i < entry.shards.size(); ++i) {
    const ShardBuffer& s = entry.shards[i];
    ShardState& st = entry.states[i];
    if (!st.granted) continue;
    switch (st.residency) {
      case ShardResidency::kHbm:
        cluster_->device(s.device).hbm().Free(s.bytes);
        break;
      case ShardResidency::kSpillingOut:
        // We hold both sides mid-flight: the HBM source is ours to free,
        // the DRAM destination belongs to the in-flight migration (which
        // will find the entry gone).
        cluster_->device(s.device).hbm().Free(s.bytes);
        break;
      case ShardResidency::kHostDram:
        cluster_->host_of(s.device).dram().Free(s.bytes);
        // DRAM headroom returned; see TryRestoreShard.
        for (const hw::Device* dev : cluster_->host_of(s.device).devices()) {
          MaybeKickSpiller(dev->id());
        }
        break;
    }
    const int d = static_cast<int>(s.device.value());
    logical_live_[d] -= s.bytes;
  }
}

}  // namespace pw::pathways
