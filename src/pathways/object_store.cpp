#include "pathways/object_store.h"

namespace pw::pathways {

ShardedBuffer ObjectStore::CreateBuffer(
    ClientId owner, ExecutionId producer,
    const std::vector<hw::DeviceId>& devices, Bytes bytes_per_shard,
    std::vector<sim::SimFuture<sim::Unit>>* per_shard_reservations) {
  PW_CHECK(!devices.empty());
  PW_CHECK_GE(bytes_per_shard, 0);
  Entry entry;
  entry.owner = owner;
  entry.producer = producer;
  std::vector<sim::SimFuture<sim::Unit>> reservations;
  reservations.reserve(devices.size());
  for (const hw::DeviceId dev : devices) {
    entry.shards.push_back(
        ShardBuffer{shard_ids_.Next(), dev, bytes_per_shard, BufferLocation::kHbm});
    reservations.push_back(
        cluster_->device(dev).hbm().AllocateAsync(bytes_per_shard));
  }
  entry.shard_reserved.assign(devices.size(), true);
  ShardedBuffer handle;
  handle.id = logical_ids_.Next();
  handle.shards = entry.shards;
  handle.ready = sim::WhenAll(&cluster_->simulator(), reservations);
  if (per_shard_reservations != nullptr) {
    *per_shard_reservations = reservations;
  }
  entries_[handle.id] = std::move(entry);
  return handle;
}

ShardedBuffer ObjectStore::CreateBufferDeferred(
    ClientId owner, ExecutionId producer,
    const std::vector<hw::DeviceId>& devices, Bytes bytes_per_shard) {
  PW_CHECK(!devices.empty());
  PW_CHECK_GE(bytes_per_shard, 0);
  Entry entry;
  entry.owner = owner;
  entry.producer = producer;
  for (const hw::DeviceId dev : devices) {
    entry.shards.push_back(
        ShardBuffer{shard_ids_.Next(), dev, bytes_per_shard, BufferLocation::kHbm});
  }
  entry.shard_reserved.assign(devices.size(), false);
  ShardedBuffer handle;
  handle.id = logical_ids_.Next();
  handle.shards = entry.shards;
  handle.ready = sim::ReadyFuture(&cluster_->simulator(), sim::Unit{});
  entries_[handle.id] = std::move(entry);
  return handle;
}

sim::SimFuture<sim::Unit> ObjectStore::ReserveShard(LogicalBufferId id,
                                                    int shard) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "ReserveShard on unknown buffer " << id;
  Entry& entry = it->second;
  const ShardBuffer& sb = entry.shards.at(static_cast<std::size_t>(shard));
  PW_CHECK(!entry.shard_reserved.at(static_cast<std::size_t>(shard)))
      << "shard " << shard << " of buffer " << id << " reserved twice";
  sim::SimPromise<sim::Unit> granted(&cluster_->simulator());
  auto fut = granted.future();
  cluster_->device(sb.device)
      .hbm()
      .AllocateAsync(sb.bytes)
      .Then([this, id, shard, device = sb.device, bytes = sb.bytes,
             granted](const sim::Unit&) mutable {
        auto it2 = entries_.find(id);
        if (it2 == entries_.end()) {
          // Buffer released (failed-client GC, aborted execution) while the
          // reservation queued: hand the memory straight back — but still
          // fire the grant. Waiters gate work on this future (the executor's
          // in-order enqueue stream, most critically); a silently dropped
          // promise would wedge them forever, while a vacuous grant lets
          // them unwind through their own aborted-state checks.
          cluster_->device(device).hbm().Free(bytes);
        } else {
          it2->second.shard_reserved[static_cast<std::size_t>(shard)] = true;
        }
        granted.Set(sim::Unit{});
      });
  return fut;
}

sim::SimFuture<sim::Unit> ObjectStore::AllocateScratch(hw::DeviceId device,
                                                       Bytes bytes) {
  return cluster_->device(device).hbm().AllocateAsync(bytes);
}

void ObjectStore::FreeScratch(hw::DeviceId device, Bytes bytes) {
  cluster_->device(device).hbm().Free(bytes);
}

void ObjectStore::AddRef(LogicalBufferId id) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "AddRef on unknown buffer " << id;
  ++it->second.refcount;
}

void ObjectStore::Release(LogicalBufferId id) {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end()) << "Release on unknown buffer " << id;
  if (--it->second.refcount > 0) return;
  FreeEntry(it->second);
  entries_.erase(it);
}

int ObjectStore::ReleaseAllForOwner(ClientId owner) {
  int collected = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      FreeEntry(it->second);
      it = entries_.erase(it);
      ++collected;
    } else {
      ++it;
    }
  }
  return collected;
}

int ObjectStore::ReleaseAllForProducer(ExecutionId producer) {
  int collected = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.producer == producer) {
      FreeEntry(it->second);
      it = entries_.erase(it);
      ++collected;
    } else {
      ++it;
    }
  }
  return collected;
}

int ObjectStore::refcount(LogicalBufferId id) const {
  auto it = entries_.find(id);
  PW_CHECK(it != entries_.end());
  return it->second.refcount;
}

void ObjectStore::FreeEntry(const Entry& entry) {
  for (std::size_t i = 0; i < entry.shards.size(); ++i) {
    const ShardBuffer& s = entry.shards[i];
    if (s.location == BufferLocation::kHbm && entry.shard_reserved[i]) {
      cluster_->device(s.device).hbm().Free(s.bytes);
    }
  }
}

}  // namespace pw::pathways
