// Centralized per-island gang scheduler (paper §4.4).
//
// Consistently orders all computations on its island: programs submit their
// subgraphs in a single message; the scheduler picks the next gang (= one
// sharded computation node) by policy — FIFO, or weighted stride for
// proportional share across clients (Fig. 9) — and emits one dispatch
// message per device executor. Emission is serialized on the scheduler's
// own CPU thread at `coordinator_msg_cost` per message: that serialization
// is the single-controller overhead Figures 5/6 measure. A gang's messages
// are always fully emitted before the next gang's, which (with FIFO links)
// guarantees every device observes the same relative order of gangs — the
// property that makes non-preemptible collectives deadlock-free.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/cluster.h"
#include "pathways/execution.h"
#include "pathways/ids.h"
#include "pathways/options.h"
#include "sim/serial_resource.h"

namespace pw::pathways {

class PathwaysRuntime;

class GangScheduler {
 public:
  GangScheduler(PathwaysRuntime* runtime, hw::Island* island, hw::Host* home);

  GangScheduler(const GangScheduler&) = delete;
  GangScheduler& operator=(const GangScheduler&) = delete;

  hw::IslandId island_id() const;
  hw::Host* home() const { return home_; }

  // Called when a program's subgraph RPC arrives: `nodes` are the program's
  // node ids placed on this island, in program (topological) order.
  void SubmitSubgraph(std::shared_ptr<ProgramExecution> exec,
                      std::vector<int> nodes);

  // Stats.
  std::int64_t gangs_dispatched() const { return gangs_dispatched_; }
  std::int64_t gangs_aborted() const { return gangs_aborted_; }
  std::int64_t dispatch_messages() const { return dispatch_messages_; }
  Duration scheduler_busy() const { return sched_cpu_.total_busy(); }

 private:
  struct Entry {
    std::shared_ptr<ProgramExecution> exec;
    std::vector<int> nodes;
    std::size_t next_node = 0;
  };

  void Pump();
  // Picks the client queue to serve next (stride scheduling); returns
  // nullptr if all queues are empty.
  std::deque<Entry>* PickQueue();
  void DispatchGang(Entry entry);

  PathwaysRuntime* runtime_;
  hw::Island* island_;
  hw::Host* home_;
  sim::SerialResource sched_cpu_;

  // Per-client FIFO queues + stride scheduler state.
  struct ClientQueue {
    std::deque<Entry> entries;
    double pass = 0;
    double stride = 1.0;
  };
  std::map<std::int64_t, ClientQueue> queues_;
  bool pumping_ = false;
  int inflight_gangs_ = 0;
  std::int64_t gangs_dispatched_ = 0;
  std::int64_t gangs_aborted_ = 0;
  std::int64_t dispatch_messages_ = 0;
};

}  // namespace pw::pathways
