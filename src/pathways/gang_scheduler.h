// Centralized per-island gang scheduler (paper §4.4).
//
// Consistently orders all computations on its island: programs submit their
// subgraphs in a single message; the scheduler picks the next gang (= one
// sharded computation node) by policy — FIFO, or weighted stride for
// proportional share across clients (Fig. 9) — and emits one dispatch
// message per device executor. Emission is serialized on the scheduler's
// own CPU thread at `coordinator_msg_cost` per message: that serialization
// is the single-controller overhead Figures 5/6 measure. A gang's messages
// are always fully emitted before the next gang's, which (with FIFO links)
// guarantees every device observes the same relative order of gangs — the
// property that makes non-preemptible collectives deadlock-free.
//
// LP ownership: a GangScheduler is island state — in a partitioned run it
// lives on its island's LP and its queues are only mutated by events
// executing there. Dispatch messages to executors are intra-island
// (LP-local); subgraph submissions arriving from a client on another LP
// must come in as cross-LP events.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/cluster.h"
#include "pathways/execution.h"
#include "pathways/ids.h"
#include "pathways/options.h"
#include "sim/serial_resource.h"

namespace pw::pathways {

class PathwaysRuntime;

class GangScheduler {
 public:
  GangScheduler(PathwaysRuntime* runtime, hw::Island* island, hw::Host* home);

  GangScheduler(const GangScheduler&) = delete;
  GangScheduler& operator=(const GangScheduler&) = delete;

  hw::IslandId island_id() const;
  hw::Host* home() const { return home_; }

  // Called when a program's subgraph RPC arrives: `nodes` are the program's
  // node ids placed on this island, in program (topological) order.
  void SubmitSubgraph(std::shared_ptr<ProgramExecution> exec,
                      std::vector<int> nodes);

  // Rebases every queue's pass by the minimum pass among backlogged queues,
  // clamping at zero. Pass values only matter relative to each other, so
  // this is a semantic no-op — but `pass += stride` grows without bound,
  // and once pass/stride exceeds 2^52 the increment is absorbed by double
  // rounding (pass + stride == pass): the affected queue's virtual time
  // freezes and it monopolizes the island while every other client starves.
  // PickQueue calls this automatically (every kRebaseInterval picks, or
  // immediately once any pass crosses kRebaseThreshold); it is public so
  // long-lived embedders can also anchor passes at a quiescent point.
  void RebasePasses();

  // Stats.
  std::int64_t gangs_dispatched() const { return gangs_dispatched_; }
  std::int64_t gangs_aborted() const { return gangs_aborted_; }
  std::int64_t dispatch_messages() const { return dispatch_messages_; }
  std::int64_t pass_rebases() const { return pass_rebases_; }
  Duration scheduler_busy() const { return sched_cpu_.total_busy(); }

  // Per-client dispatch/wait accounting, keyed by client id under either
  // policy (a FIFO pick still belongs to the popped entry's client).
  // queue_wait sums, per *dispatched* gang, the time from the entry
  // entering a queue to the scheduler picking it (parked entries accrue
  // one episode per requeue; gangs aborted before dispatch contribute
  // nothing), so queue_wait / gangs_dispatched reads as per-gang
  // scheduling delay — the split of end-to-end latency that belongs to
  // the scheduler rather than execution.
  struct ClientSchedStats {
    std::int64_t gangs_dispatched = 0;
    Duration queue_wait;
  };
  const std::map<std::int64_t, ClientSchedStats>& client_stats() const {
    return client_stats_;
  }

  // Test-only: ages the scheduler by advancing every queue's pass by
  // `offset`, as if the island had already served a very long run. Relative
  // order is preserved, so this is behavior-neutral — except that it puts
  // pass values where `pass += stride` starts losing precision, which is
  // exactly what the long-run regression test needs to reproduce quickly.
  void AgePassesForTesting(double offset);

 private:
  struct Entry {
    std::shared_ptr<ProgramExecution> exec;
    std::vector<int> nodes;
    std::size_t next_node = 0;
    // Set every time the entry (re)enters a queue. Pump accrues the
    // elapsed time into picked_wait, which is committed to the owning
    // client's queue_wait when the gang actually dispatches (entries
    // aborted between pick and dispatch carry their wait to the grave).
    TimePoint enqueued_at;
    Duration picked_wait;
  };

  void Pump();
  // Picks the client queue to serve next (stride scheduling); returns
  // nullptr if all queues are empty.
  std::deque<Entry>* PickQueue();
  void DispatchGang(Entry entry);
  // Stamps the entry and pushes it onto `key`'s queue (front or back).
  void Enqueue(std::int64_t key, Entry entry, bool front);
  // Minimum pass among queues with waiting entries (the current virtual
  // time); +infinity when nothing is backlogged. Anchor for both the
  // re-entry catch-up rule and RebasePasses.
  double BackloggedMinPass() const;

  PathwaysRuntime* runtime_;
  hw::Island* island_;
  hw::Host* home_;
  sim::SerialResource sched_cpu_;

  // Per-client FIFO queues + stride scheduler state.
  struct ClientQueue {
    std::deque<Entry> entries;
    double pass = 0;
    double stride = 1.0;
  };
  std::map<std::int64_t, ClientQueue> queues_;
  std::map<std::int64_t, ClientSchedStats> client_stats_;
  // Pass-drift control: rebase every kRebaseInterval picks so passes stay
  // small in steady state, and immediately once a pass crosses
  // kRebaseThreshold (an aged or adversarial state — e.g. one tiny-weight
  // client — can outrun the periodic schedule). The threshold leaves
  // 2^52 / 2^24 = 2^28 of stride headroom before increments round away.
  static constexpr int kRebaseInterval = 1024;
  static constexpr double kRebaseThreshold = 16777216.0;  // 2^24
  int picks_since_rebase_ = 0;
  std::int64_t pass_rebases_ = 0;
  bool pumping_ = false;
  int inflight_gangs_ = 0;
  std::int64_t gangs_dispatched_ = 0;
  std::int64_t gangs_aborted_ = 0;
  std::int64_t dispatch_messages_ = 0;
};

}  // namespace pw::pathways
