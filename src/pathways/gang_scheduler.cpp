#include "pathways/gang_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::pathways {

GangScheduler::GangScheduler(PathwaysRuntime* runtime, hw::Island* island,
                             hw::Host* home)
    : runtime_(runtime),
      island_(island),
      home_(home),
      sched_cpu_(&runtime->simulator(),
                 "sched" + std::to_string(island->id().value())) {}

hw::IslandId GangScheduler::island_id() const { return island_->id(); }

void GangScheduler::SubmitSubgraph(std::shared_ptr<ProgramExecution> exec,
                                   std::vector<int> nodes) {
  PW_CHECK(!nodes.empty());
  // FIFO policy uses one shared queue; stride keeps one queue per client.
  const std::int64_t key =
      runtime_->options().policy == SchedulerPolicy::kFifo
          ? 0
          : exec->client().value();
  ClientQueue& q = queues_[key];
  if (q.entries.empty()) {
    // A newly busy client starts at the current virtual time so it cannot
    // claim a catch-up burst (standard stride-scheduler re-entry rule).
    // Virtual time is the backlogged minimum pass; when no queue happens
    // to be backlogged at this instant (e.g. the only active client's sole
    // entry is in flight), fall back to the maximum pass over all queues —
    // without it, a rebase-clamped idle queue re-entering at such an
    // instant would sit at pass 0 and win a bounded monopoly burst.
    double anchor = BackloggedMinPass();
    if (anchor == std::numeric_limits<double>::infinity()) {
      anchor = 0;
      for (const auto& [k, other] : queues_) {
        anchor = std::max(anchor, other.pass);
      }
    }
    q.pass = std::max(q.pass, anchor);
  }
  q.stride = 1.0 / std::max(exec->client_weight(), 1e-9);
  Enqueue(key,
          Entry{std::move(exec), std::move(nodes), 0, TimePoint(), Duration()},
          /*front=*/false);
  Pump();
}

double GangScheduler::BackloggedMinPass() const {
  double min_pass = std::numeric_limits<double>::infinity();
  for (const auto& [key, q] : queues_) {
    if (!q.entries.empty()) min_pass = std::min(min_pass, q.pass);
  }
  return min_pass;
}

void GangScheduler::Enqueue(std::int64_t key, Entry entry, bool front) {
  entry.enqueued_at = runtime_->simulator().now();
  std::deque<Entry>& q = queues_[key].entries;
  if (front) {
    q.push_front(std::move(entry));
  } else {
    q.push_back(std::move(entry));
  }
}

std::deque<GangScheduler::Entry>* GangScheduler::PickQueue() {
  ClientQueue* best = nullptr;
  for (auto& [key, q] : queues_) {
    if (q.entries.empty()) continue;
    if (best == nullptr || q.pass < best->pass) best = &q;
  }
  if (best == nullptr) return nullptr;
  best->pass += best->stride;
  if (++picks_since_rebase_ >= kRebaseInterval ||
      best->pass > kRebaseThreshold) {
    RebasePasses();
  }
  return &best->entries;
}

void GangScheduler::RebasePasses() {
  picks_since_rebase_ = 0;
  // Anchor at the minimum pass among backlogged queues: they are the ones
  // whose relative spacing decides upcoming picks. Idle queues clamp at
  // zero — on re-entry the catch-up rule in SubmitSubgraph lifts them back
  // to the current virtual time, so no burst can result.
  const double min_pass = BackloggedMinPass();
  if (min_pass == std::numeric_limits<double>::infinity() || min_pass <= 0) {
    return;
  }
  for (auto& [key, q] : queues_) {
    q.pass = std::max(0.0, q.pass - min_pass);
  }
  ++pass_rebases_;
}

void GangScheduler::AgePassesForTesting(double offset) {
  for (auto& [key, q] : queues_) q.pass += offset;
}

void GangScheduler::Pump() {
  if (pumping_ || inflight_gangs_ >= runtime_->options().max_inflight_gangs) {
    return;
  }
  std::deque<Entry>* q = PickQueue();
  if (q == nullptr) return;
  Entry entry = std::move(q->front());
  q->pop_front();
  // Gangs of an aborted execution (device failure) are dropped, not
  // dispatched: the client's retry resubmits the whole program against the
  // remapped placement. Free scheduling decision — re-pick immediately.
  if (entry.exec->aborted()) {
    ++gangs_aborted_;
    Pump();
    return;
  }
  // Accrue this queueing episode's wait on the entry; it is committed to
  // client_stats_ only when the gang actually dispatches (an abort while
  // the scheduling decision is in flight drops the entry, and its wait,
  // so queue_wait / gangs_dispatched stays a per-dispatched-gang delay).
  entry.picked_wait += runtime_->simulator().now() - entry.enqueued_at;
  pumping_ = true;
  // Scheduling decision cost, then emit the gang's dispatch messages.
  sched_cpu_.Submit(runtime_->params().scheduler_decision_cost,
                    [this, entry = std::move(entry)]() mutable {
                      DispatchGang(std::move(entry));
                    });
}

void GangScheduler::DispatchGang(Entry entry) {
  // The execution may have been aborted while the scheduling decision was
  // in flight on the scheduler CPU.
  if (entry.exec->aborted()) {
    ++gangs_aborted_;
    pumping_ = false;
    Pump();
    return;
  }
  const int node = entry.nodes[entry.next_node];
  auto exec = entry.exec;
  const ComputationNode& cn = exec->program().node(node);
  const int num_shards = cn.fn.num_shards;
  const hw::SystemParams& params = runtime_->params();

  // Two reasons to park an entry instead of dispatching:
  //  * the client has not yet streamed this gang's launch descriptors
  //    (Client::Run streams them at ~17 us/shard on its own thread);
  //  * data-dependent control flow (paper §4.5): an irregular node's
  //    resource requirements are unknown until its predecessors complete,
  //    so its host-side work cannot be pre-run — the traditional
  //    (sequential) model applies to that node only.
  {
    std::vector<sim::SimFuture<sim::Unit>> preds;
    auto released = exec->ClientReleased(node);
    if (!released.ready()) preds.push_back(released);
    if (cn.irregular) {
      for (const ValueRef& in : cn.inputs) {
        if (in.kind == ValueRef::Kind::kNodeOutput) {
          auto done = exec->NodeComplete(in.index);
          if (!done.ready()) preds.push_back(done);
        }
      }
    }
    if (!preds.empty()) {
      auto shared_entry = std::make_shared<Entry>(std::move(entry));
      sim::WhenAll(&runtime_->simulator(), preds)
          .Then([this, shared_entry](const sim::Unit&) {
            const std::int64_t key =
                runtime_->options().policy == SchedulerPolicy::kFifo
                    ? 0
                    : shared_entry->exec->client().value();
            Enqueue(key, std::move(*shared_entry), /*front=*/true);
            Pump();
          });
      pumping_ = false;
      Pump();  // serve other tenants while this entry waits
      return;
    }
  }

  // Commit point: the gang will be emitted. Draw its global reservation
  // ticket *here* — the scheduler is the single emission point, so ticket
  // order matches per-device gang arrival order by construction, and every
  // other reservation source (client staging, retries) is globally ordered
  // against the gang pipeline (paper §4.6 "scheduler ensures allocation
  // order"; docs/MEMORY.md).
  exec->AssignGangTicket(node);

  // Admission control: hold a slot until the gang's last shard completes
  // (completion notice rides back over the DCN).
  ++inflight_gangs_;
  exec->NodeComplete(node).Then([this](const sim::Unit&) {
    runtime_->simulator().Schedule(runtime_->params().dcn.latency, [this] {
      --inflight_gangs_;
      Pump();
    });
  });

  // One dispatch message per device executor. The scheduler only *orders*
  // and forwards (cheap, ~1us per message, so many tenants share it without
  // it becoming a bottleneck); the expensive per-shard fan-out work —
  // lowering, launch descriptors, handle registration — was already charged
  // on the submitting client's thread (Client::Run), which is what Figure 6
  // measures. Messages for one gang are fully emitted before the next gang
  // is considered, and per-host DCN links are FIFO, so every device sees
  // gangs in the same order.
  for (int shard = 0; shard < num_shards; ++shard) {
    const hw::DeviceId dev = exec->DeviceFor(node, shard);
    hw::Host& target = runtime_->cluster().host_of(dev);
    sched_cpu_.Submit(Duration::Micros(1),
                      [this, exec, node, shard, &target] {
                        ++dispatch_messages_;
                        home_->dcn().Send(
                            home_->id(), target.id(), /*bytes=*/96,
                            [this, exec, node, shard] {
                              runtime_->executor(exec->DeviceFor(node, shard))
                                  .Dispatch(exec, node, shard);
                            });
                      });
  }
  (void)params;

  // After the last message is emitted, advance this entry and keep pumping.
  sched_cpu_.Submit(Duration::Zero(), [this, entry = std::move(entry),
                                       node]() mutable {
    ++gangs_dispatched_;
    ClientSchedStats& stats = client_stats_[entry.exec->client().value()];
    ++stats.gangs_dispatched;
    stats.queue_wait += entry.picked_wait;
    entry.picked_wait = Duration::Zero();
    ++entry.next_node;
    auto exec2 = entry.exec;
    const bool more = entry.next_node < entry.nodes.size();
    auto continue_pumping = [this, entry = std::move(entry), more]() mutable {
      if (more) {
        const std::int64_t key =
            runtime_->options().policy == SchedulerPolicy::kFifo
                ? 0
                : entry.exec->client().value();
        Enqueue(key, std::move(entry), /*front=*/false);
      }
      pumping_ = false;
      Pump();
    };
    if (runtime_->options().dispatch == DispatchMode::kSequential) {
      // Traditional dispatch (paper Fig. 4a): wait until every shard of this
      // node has actually been enqueued (ack ride back over the DCN) before
      // any host-side work for the next node starts.
      const Duration ack_delay = runtime_->params().dcn.latency;
      exec2->NodeEnqueued(node).Then(
          [this, ack_delay,
           continue_pumping = std::move(continue_pumping)](const sim::Unit&) mutable {
            runtime_->simulator().Schedule(
                ack_delay, [this, continue_pumping = std::move(continue_pumping)]() mutable {
                  sched_cpu_.Submit(runtime_->params().coordinator_msg_cost,
                                    std::move(continue_pumping));
                });
          });
    } else {
      continue_pumping();
    }
  });
}

}  // namespace pw::pathways
