#include "pathways/gang_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::pathways {

GangScheduler::GangScheduler(PathwaysRuntime* runtime, hw::Island* island,
                             hw::Host* home)
    : runtime_(runtime),
      island_(island),
      home_(home),
      sched_cpu_(&runtime->simulator(),
                 "sched" + std::to_string(island->id().value())) {}

hw::IslandId GangScheduler::island_id() const { return island_->id(); }

void GangScheduler::SubmitSubgraph(std::shared_ptr<ProgramExecution> exec,
                                   std::vector<int> nodes) {
  PW_CHECK(!nodes.empty());
  // FIFO policy uses one shared queue; stride keeps one queue per client.
  const std::int64_t key =
      runtime_->options().policy == SchedulerPolicy::kFifo
          ? 0
          : exec->client().value();
  ClientQueue& q = queues_[key];
  if (q.entries.empty()) {
    // A newly busy client starts at the current virtual time so it cannot
    // claim a catch-up burst (standard stride-scheduler re-entry rule).
    double min_pass = std::numeric_limits<double>::infinity();
    for (const auto& [k, other] : queues_) {
      if (!other.entries.empty()) min_pass = std::min(min_pass, other.pass);
    }
    if (min_pass != std::numeric_limits<double>::infinity()) {
      q.pass = std::max(q.pass, min_pass);
    }
  }
  q.stride = 1.0 / std::max(exec->client_weight(), 1e-9);
  q.entries.push_back(Entry{std::move(exec), std::move(nodes), 0});
  Pump();
}

std::deque<GangScheduler::Entry>* GangScheduler::PickQueue() {
  ClientQueue* best = nullptr;
  for (auto& [key, q] : queues_) {
    if (q.entries.empty()) continue;
    if (best == nullptr || q.pass < best->pass) best = &q;
  }
  if (best == nullptr) return nullptr;
  best->pass += best->stride;
  return &best->entries;
}

void GangScheduler::Pump() {
  if (pumping_ || inflight_gangs_ >= runtime_->options().max_inflight_gangs) {
    return;
  }
  std::deque<Entry>* q = PickQueue();
  if (q == nullptr) return;
  Entry entry = std::move(q->front());
  q->pop_front();
  // Gangs of an aborted execution (device failure) are dropped, not
  // dispatched: the client's retry resubmits the whole program against the
  // remapped placement. Free scheduling decision — re-pick immediately.
  if (entry.exec->aborted()) {
    ++gangs_aborted_;
    Pump();
    return;
  }
  pumping_ = true;
  // Scheduling decision cost, then emit the gang's dispatch messages.
  sched_cpu_.Submit(runtime_->params().scheduler_decision_cost,
                    [this, entry = std::move(entry)]() mutable {
                      DispatchGang(std::move(entry));
                    });
}

void GangScheduler::DispatchGang(Entry entry) {
  // The execution may have been aborted while the scheduling decision was
  // in flight on the scheduler CPU.
  if (entry.exec->aborted()) {
    ++gangs_aborted_;
    pumping_ = false;
    Pump();
    return;
  }
  const int node = entry.nodes[entry.next_node];
  auto exec = entry.exec;
  const ComputationNode& cn = exec->program().node(node);
  const int num_shards = cn.fn.num_shards;
  const hw::SystemParams& params = runtime_->params();

  // Two reasons to park an entry instead of dispatching:
  //  * the client has not yet streamed this gang's launch descriptors
  //    (Client::Run streams them at ~17 us/shard on its own thread);
  //  * data-dependent control flow (paper §4.5): an irregular node's
  //    resource requirements are unknown until its predecessors complete,
  //    so its host-side work cannot be pre-run — the traditional
  //    (sequential) model applies to that node only.
  {
    std::vector<sim::SimFuture<sim::Unit>> preds;
    auto released = exec->ClientReleased(node);
    if (!released.ready()) preds.push_back(released);
    if (cn.irregular) {
      for (const ValueRef& in : cn.inputs) {
        if (in.kind == ValueRef::Kind::kNodeOutput) {
          auto done = exec->NodeComplete(in.index);
          if (!done.ready()) preds.push_back(done);
        }
      }
    }
    if (!preds.empty()) {
      auto shared_entry = std::make_shared<Entry>(std::move(entry));
      sim::WhenAll(&runtime_->simulator(), preds)
          .Then([this, shared_entry](const sim::Unit&) {
            const std::int64_t key =
                runtime_->options().policy == SchedulerPolicy::kFifo
                    ? 0
                    : shared_entry->exec->client().value();
            queues_[key].entries.push_front(std::move(*shared_entry));
            Pump();
          });
      pumping_ = false;
      Pump();  // serve other tenants while this entry waits
      return;
    }
  }

  // Admission control: hold a slot until the gang's last shard completes
  // (completion notice rides back over the DCN).
  ++inflight_gangs_;
  exec->NodeComplete(node).Then([this](const sim::Unit&) {
    runtime_->simulator().Schedule(runtime_->params().dcn.latency, [this] {
      --inflight_gangs_;
      Pump();
    });
  });

  // One dispatch message per device executor. The scheduler only *orders*
  // and forwards (cheap, ~1us per message, so many tenants share it without
  // it becoming a bottleneck); the expensive per-shard fan-out work —
  // lowering, launch descriptors, handle registration — was already charged
  // on the submitting client's thread (Client::Run), which is what Figure 6
  // measures. Messages for one gang are fully emitted before the next gang
  // is considered, and per-host DCN links are FIFO, so every device sees
  // gangs in the same order.
  for (int shard = 0; shard < num_shards; ++shard) {
    const hw::DeviceId dev = exec->DeviceFor(node, shard);
    hw::Host& target = runtime_->cluster().host_of(dev);
    sched_cpu_.Submit(Duration::Micros(1),
                      [this, exec, node, shard, &target] {
                        ++dispatch_messages_;
                        home_->dcn().Send(
                            home_->id(), target.id(), /*bytes=*/96,
                            [this, exec, node, shard] {
                              runtime_->executor(exec->DeviceFor(node, shard))
                                  .Dispatch(exec, node, shard);
                            });
                      });
  }
  (void)params;

  // After the last message is emitted, advance this entry and keep pumping.
  sched_cpu_.Submit(Duration::Zero(), [this, entry = std::move(entry),
                                       node]() mutable {
    ++gangs_dispatched_;
    ++entry.next_node;
    auto exec2 = entry.exec;
    const bool more = entry.next_node < entry.nodes.size();
    auto continue_pumping = [this, entry = std::move(entry), more]() mutable {
      if (more) {
        const std::int64_t key =
            runtime_->options().policy == SchedulerPolicy::kFifo
                ? 0
                : entry.exec->client().value();
        queues_[key].entries.push_back(std::move(entry));
      }
      pumping_ = false;
      Pump();
    };
    if (runtime_->options().dispatch == DispatchMode::kSequential) {
      // Traditional dispatch (paper Fig. 4a): wait until every shard of this
      // node has actually been enqueued (ack ride back over the DCN) before
      // any host-side work for the next node starts.
      const Duration ack_delay = runtime_->params().dcn.latency;
      exec2->NodeEnqueued(node).Then(
          [this, ack_delay,
           continue_pumping = std::move(continue_pumping)](const sim::Unit&) mutable {
            runtime_->simulator().Schedule(
                ack_delay, [this, continue_pumping = std::move(continue_pumping)]() mutable {
                  sched_cpu_.Submit(runtime_->params().coordinator_msg_cost,
                                    std::move(continue_pumping));
                });
          });
    } else {
      continue_pumping();
    }
  });
}

}  // namespace pw::pathways
