// Sharded object store (paper §4.6).
//
// Buffers live in device HBM — or host DRAM for spilled/staged data — and
// are referenced by opaque handles, so the system is free to migrate them.
// Client-visible buffers are *logical*: one ShardedBuffer covers N device
// shards with a single reference count, which is what lets the client scale
// ("amortizing the cost of bookkeeping tasks at the granularity of logical
// buffers instead of individual shards", §4.2). Objects carry ownership
// labels so everything a failed client or program held can be garbage
// collected. Allocation is asynchronous: when HBM is full the returned
// ready-future blocks, the back-pressure mechanism of §4.6.
//
// Oversubscription machinery (docs/MEMORY.md):
//   * Reservation ordering. Every gang draws one global MemoryTicket at the
//     instant its island scheduler dispatches it (and every staged buffer
//     at creation); the HBM allocators serve waiters strictly in ticket
//     order. Within an island this coincides with arrival order — the
//     scheduler is the single emission point — and across sources it pins
//     the one global order that stops staging/retry traffic from entering
//     two devices' queues in opposite orders and circular-waiting.
//   * Spilling. The store is the memory::SpillBackend: cold (granted,
//     content-ready, unpinned) shards migrate to host DRAM over PCIe when
//     a device's waiters stall. Consumers *read through*: a spilled shard
//     is served straight from host DRAM into the consumer's input staging,
//     so no kernel ever gates on re-acquiring HBM — the property that makes
//     spilling deadlock-free against non-preemptible in-order device
//     streams. A same-device read additionally restores residency when
//     capacity is free (TryRestoreShard), amortizing repeated use.
//   * Diagnostics. Per-device blocked probes describe stalled reservations
//     for Simulator::BlockedEntities, DescribeReservationCycle renders a
//     wait-for-graph cycle with the executions named, and
//     CheckNoReservationWedge PW_CHECKs at quiescence.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/units.h"
#include "hw/cluster.h"
#include "memory/spiller.h"
#include "pathways/ids.h"
#include "sim/future.h"

namespace pw::pathways {

enum class BufferLocation { kHbm, kHostDram };

// Fine-grained residency of one shard's granted memory.
enum class ShardResidency { kHbm, kSpillingOut, kHostDram };

struct ShardBuffer {
  ShardBufferId id;
  hw::DeviceId device;
  Bytes bytes = 0;
  BufferLocation location = BufferLocation::kHbm;
};

// Client-visible handle to a logical buffer distributed over devices.
struct ShardedBuffer {
  LogicalBufferId id;
  std::vector<ShardBuffer> shards;
  // Completes when every shard's memory is reserved AND its data is
  // resident (for program outputs: when the producing kernels finished).
  sim::SimFuture<sim::Unit> ready;

  int num_shards() const { return static_cast<int>(shards.size()); }
  Bytes total_bytes() const {
    Bytes total = 0;
    for (const auto& s : shards) total += s.bytes;
    return total;
  }
};

class ObjectStore : public memory::SpillBackend {
 public:
  explicit ObjectStore(hw::Cluster* cluster) : cluster_(cluster) {}

  // --- Reservation ordering (docs/MEMORY.md) ---
  // Draws the next global reservation ticket. Draws are synchronous, so
  // everything ticketed within one simulator event is totally ordered; the
  // gang scheduler draws at dispatch, which makes ticket order coincide
  // with per-device gang arrival order.
  hw::MemoryTicket NextTicket() { return next_ticket_++; }
  // Names the entity behind a ticket ("exec 3") for deadlock diagnostics.
  // `entity` keys the wait-for graph; executions use their id value.
  void RegisterTicket(hw::MemoryTicket ticket, std::int64_t entity,
                      std::string name);
  // Drops a retired ticket from the diagnostics registry.
  void FinishTicket(hw::MemoryTicket ticket);
  // Stamps a deferred buffer with its gang's dispatch ticket; subsequent
  // ReserveShard calls enter the device queues under it.
  void SetBufferTicket(LogicalBufferId id, hw::MemoryTicket ticket);

  // Allocates a logical buffer with one shard of `bytes_per_shard` on each
  // listed device, all reservations issued atomically under one fresh
  // ticket. The buffer's `ready` future completes when all shards' HBM
  // reservations succeed (data-readiness for program outputs is layered on
  // top by the execution engine). Initial refcount is 1. If
  // `per_shard_reservations` is non-null it receives one future per shard —
  // executors gate each shard's kernel enqueue on its own reservation so one
  // full device back-pressures only its own shard's prep.
  ShardedBuffer CreateBuffer(
      ClientId owner, ExecutionId producer,
      const std::vector<hw::DeviceId>& devices, Bytes bytes_per_shard,
      std::vector<sim::SimFuture<sim::Unit>>* per_shard_reservations = nullptr);

  // Creates the logical buffer *without* reserving HBM: shards are reserved
  // individually via ReserveShard during executor prep. This is how program
  // outputs avoid over-committing memory — a queued program's buffers claim
  // no HBM until its kernels are actually being prepared (paper §4.6
  // back-pressure composes with deep program queues only if reservations
  // are lazy).
  ShardedBuffer CreateBufferDeferred(ClientId owner, ExecutionId producer,
                                     const std::vector<hw::DeviceId>& devices,
                                     Bytes bytes_per_shard);

  // Reserves HBM for one shard of a deferred buffer (under the buffer's
  // gang ticket, see SetBufferTicket). If the buffer was released (or its
  // owner failed) before the reservation is granted, the grant is returned
  // to the allocator immediately.
  sim::SimFuture<sim::Unit> ReserveShard(LogicalBufferId id, int shard);

  // Appends `delta` bytes to one granted shard — the KV-cache decode-step
  // append (docs/SERVING.md). The shard is internally pinned for the grow's
  // duration, so it cannot become a *new* spill victim while the delta is
  // queued (and an in-flight page-out abandons itself rather than complete
  // against a shard that grew under it). By residency:
  //   * kHbm / kSpillingOut — the delta enters the device's reservation
  //     queue under a fresh ticket drawn now, so appends issued within one
  //     simulator event are served in a deterministic global order;
  //   * kHostDram — the append lands in host DRAM synchronously when it
  //     fits (a paged-out sequence keeps growing without touching HBM);
  //     with DRAM exhausted the shard instead re-enters HBM at its grown
  //     size (old + delta queued as one reservation) and the DRAM copy is
  //     freed at grant — a forced restore.
  // The returned future completes when the delta is granted; callers gate
  // the next decode step on it. Shard bytes (and the logical-bytes stats)
  // grow at grant time, never before.
  sim::SimFuture<sim::Unit> GrowShard(LogicalBufferId id, int shard,
                                      Bytes delta);

  // Raw per-device scratch allocation (executor-internal); same back-pressure
  // and the same ticket ordering as buffer reservations.
  sim::SimFuture<sim::Unit> AllocateScratch(
      hw::DeviceId device, Bytes bytes,
      hw::MemoryTicket ticket = hw::kUnticketed);
  void FreeScratch(hw::DeviceId device, Bytes bytes);

  // --- Residency / spilling ---
  // Marks a shard's *data* as resident (producer kernel finished, or staged
  // bytes landed). Only content-ready shards are spill candidates.
  void MarkShardContentReady(LogicalBufferId id, int shard);
  // Transient read pins: executions pin a source shard for the duration of
  // each wired read (transfer); pinned shards are never spill victims.
  // Both are no-ops on released buffers.
  void PinShard(LogicalBufferId id, int shard);
  void UnpinShard(LogicalBufferId id, int shard);
  // True if the shard's bytes currently live in host DRAM (readers must
  // source from the host side). False for resident shards, shards still on
  // their way out (the HBM copy is intact until the migration lands), and
  // released buffers.
  bool ShardInDram(LogicalBufferId id, int shard) const;
  // Opportunistic page-in: if the shard sits in DRAM and its device has
  // free, uncontended HBM, flip it back to resident (the caller is already
  // moving the bytes to the device, so this is pure accounting). Never
  // blocks and never jumps the reservation queue. Returns true on restore.
  bool TryRestoreShard(LogicalBufferId id, int shard);
  BufferLocation shard_location(LogicalBufferId id, int shard) const;
  ShardResidency shard_residency(LogicalBufferId id, int shard) const;

  // --- memory::SpillBackend (driven by the runtime's Spiller) ---
  bool HasStalledReservation(int device) const override;
  // Victim selection is a linear LRU scan over live shards — fine at
  // simulator scale (stall kicks are PCIe-paced, shard counts are small);
  // a per-device candidate index is the known upgrade path if stores grow.
  bool StartSpill(int device) override;

  void set_spiller(memory::Spiller* spiller) { spiller_ = spiller; }

  // Human-readable description of `device`'s stalled reservations for the
  // simulator's blocked-entity probes; "" when nothing is stalled.
  std::string BlockedReservationReason(hw::DeviceId device) const;
  // Wait-for-graph rendering of one reservation-deadlock cycle among the
  // stalled front waiters and the memory holders blocking them, with the
  // executions named; "" when the graph is acyclic.
  std::string DescribeReservationCycle() const;
  // Quiescence gate for tests/benches: after Run() drains, any surviving
  // stalled reservation is a wedge — PW_CHECKs with the cycle (or the
  // per-device blocked reasons) named. A no-op while waiters can still be
  // served, so call it only at quiescence.
  void CheckNoReservationWedge() const;

  // Logical refcounting. Release drops one reference; at zero, every
  // shard's memory is freed.
  void AddRef(LogicalBufferId id);
  void Release(LogicalBufferId id);

  // Garbage collection by ownership label (client failed / disconnected).
  // Returns the number of logical buffers collected.
  int ReleaseAllForOwner(ClientId owner);

  // Garbage collection by producing execution (execution aborted after a
  // device failure): frees every surviving buffer the execution produced,
  // regardless of refcount — an aborted execution's outputs were never
  // handed to anyone. Returns the number of logical buffers collected.
  int ReleaseAllForProducer(ExecutionId producer);

  // --- Introspection ---
  bool Contains(LogicalBufferId id) const { return entries_.contains(id); }
  int refcount(LogicalBufferId id) const;
  std::int64_t live_buffers() const { return static_cast<std::int64_t>(entries_.size()); }
  Bytes hbm_used(hw::DeviceId device) const {
    return cluster_->device(device).hbm().used();
  }
  // Logical bytes (HBM-resident + spilled) of granted buffer shards homed
  // on `device`, and the peak over the run — the oversubscription factor
  // bench_oversub gates on is logical_peak / hbm capacity.
  Bytes logical_live_bytes(hw::DeviceId device) const;
  Bytes logical_peak_bytes(hw::DeviceId device) const;
  std::int64_t spills_completed() const { return spills_completed_; }
  std::int64_t fills_completed() const { return fills_completed_; }
  Bytes spilled_bytes_total() const { return spilled_bytes_total_; }
  std::int64_t grows_completed() const { return grows_completed_; }
  Bytes grown_bytes_total() const { return grown_bytes_total_; }
  // Current bytes of one shard (grows land here at grant time).
  Bytes shard_bytes(LogicalBufferId id, int shard) const;
  // Reads served straight from host DRAM (spilled shard consumed without
  // restoring residency). Executions report these via NoteDramRead.
  void NoteDramRead(Bytes bytes) {
    ++dram_reads_;
    dram_read_bytes_ += bytes;
  }
  std::int64_t dram_reads() const { return dram_reads_; }
  Bytes dram_read_bytes() const { return dram_read_bytes_; }
  // One line per live shard (owner, device, bytes, residency, pins,
  // content-ready, last use) — the operator-facing memory map.
  std::string DumpShardStates() const;

 private:
  struct ShardState {
    bool requested = false;      // a reservation has been issued
    bool granted = false;        // HBM (or DRAM, when spilled) is held
    bool content_ready = false;  // the shard's data exists (spillable)
    ShardResidency residency = ShardResidency::kHbm;
    int pins = 0;                // active readers; pinned shards never spill
    std::int64_t last_use_ns = 0;
  };
  struct Entry {
    ClientId owner;
    ExecutionId producer;
    hw::MemoryTicket ticket = hw::kUnticketed;
    std::vector<ShardBuffer> shards;
    std::vector<ShardState> states;
    int refcount = 1;
  };

  void FreeEntry(Entry& entry);
  void Touch(ShardState& state);
  // Retries a stalled device's spiller after an event that can unblock a
  // previously failed victim search (pin dropped, content became ready,
  // DRAM freed) — those produce no HBM activity, so the allocator's own
  // stall observer would never re-fire.
  void MaybeKickSpiller(hw::DeviceId device);
  std::string TicketName(hw::MemoryTicket ticket) const;

  hw::Cluster* cluster_;
  memory::Spiller* spiller_ = nullptr;
  std::map<LogicalBufferId, Entry> entries_;
  IdGenerator<BufferTag> logical_ids_;
  IdGenerator<ShardBufferTag> shard_ids_;

  hw::MemoryTicket next_ticket_ = 1;
  struct TicketInfo {
    std::int64_t entity;
    std::string name;
  };
  std::map<hw::MemoryTicket, TicketInfo> tickets_;

  std::map<int, Bytes> logical_live_;
  std::map<int, Bytes> logical_peak_;
  std::int64_t spills_completed_ = 0;
  std::int64_t fills_completed_ = 0;
  Bytes spilled_bytes_total_ = 0;
  std::int64_t grows_completed_ = 0;
  Bytes grown_bytes_total_ = 0;
  std::int64_t dram_reads_ = 0;
  Bytes dram_read_bytes_ = 0;
};

}  // namespace pw::pathways
