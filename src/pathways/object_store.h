// Sharded object store (paper §4.6).
//
// Buffers live in device HBM (or host DRAM for spilled/staged data) and are
// referenced by opaque handles, so the system is free to migrate them.
// Client-visible buffers are *logical*: one ShardedBuffer covers N device
// shards with a single reference count, which is what lets the client scale
// ("amortizing the cost of bookkeeping tasks at the granularity of logical
// buffers instead of individual shards", §4.2). Objects carry ownership
// labels so everything a failed client or program held can be garbage
// collected. Allocation is asynchronous: when HBM is full the returned
// ready-future blocks, the back-pressure mechanism of §4.6.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/units.h"
#include "hw/cluster.h"
#include "pathways/ids.h"
#include "sim/future.h"

namespace pw::pathways {

enum class BufferLocation { kHbm, kHostDram };

struct ShardBuffer {
  ShardBufferId id;
  hw::DeviceId device;
  Bytes bytes = 0;
  BufferLocation location = BufferLocation::kHbm;
};

// Client-visible handle to a logical buffer distributed over devices.
struct ShardedBuffer {
  LogicalBufferId id;
  std::vector<ShardBuffer> shards;
  // Completes when every shard's memory is reserved AND its data is
  // resident (for program outputs: when the producing kernels finished).
  sim::SimFuture<sim::Unit> ready;

  int num_shards() const { return static_cast<int>(shards.size()); }
  Bytes total_bytes() const {
    Bytes total = 0;
    for (const auto& s : shards) total += s.bytes;
    return total;
  }
};

class ObjectStore {
 public:
  explicit ObjectStore(hw::Cluster* cluster) : cluster_(cluster) {}

  // Allocates a logical buffer with one shard of `bytes_per_shard` on each
  // listed device. The buffer's `ready` future completes when all shards'
  // HBM reservations succeed (data-readiness for program outputs is layered
  // on top by the execution engine). Initial refcount is 1. If
  // `per_shard_reservations` is non-null it receives one future per shard —
  // executors gate each shard's kernel enqueue on its own reservation so one
  // full device back-pressures only its own shard's prep.
  ShardedBuffer CreateBuffer(
      ClientId owner, ExecutionId producer,
      const std::vector<hw::DeviceId>& devices, Bytes bytes_per_shard,
      std::vector<sim::SimFuture<sim::Unit>>* per_shard_reservations = nullptr);

  // Creates the logical buffer *without* reserving HBM: shards are reserved
  // individually via ReserveShard during executor prep. This is how program
  // outputs avoid over-committing memory — a queued program's buffers claim
  // no HBM until its kernels are actually being prepared (paper §4.6
  // back-pressure composes with deep program queues only if reservations
  // are lazy).
  ShardedBuffer CreateBufferDeferred(ClientId owner, ExecutionId producer,
                                     const std::vector<hw::DeviceId>& devices,
                                     Bytes bytes_per_shard);

  // Reserves HBM for one shard of a deferred buffer. If the buffer was
  // released (or its owner failed) before the reservation is granted, the
  // grant is returned to the allocator immediately.
  sim::SimFuture<sim::Unit> ReserveShard(LogicalBufferId id, int shard);

  // Raw per-device scratch allocation (executor-internal); same back-pressure.
  sim::SimFuture<sim::Unit> AllocateScratch(hw::DeviceId device, Bytes bytes);
  void FreeScratch(hw::DeviceId device, Bytes bytes);

  // Logical refcounting. Release drops one reference; at zero, every
  // shard's memory is freed.
  void AddRef(LogicalBufferId id);
  void Release(LogicalBufferId id);

  // Garbage collection by ownership label (client failed / disconnected).
  // Returns the number of logical buffers collected.
  int ReleaseAllForOwner(ClientId owner);

  // Garbage collection by producing execution (execution aborted after a
  // device failure): frees every surviving buffer the execution produced,
  // regardless of refcount — an aborted execution's outputs were never
  // handed to anyone. Returns the number of logical buffers collected.
  int ReleaseAllForProducer(ExecutionId producer);

  // --- Introspection ---
  bool Contains(LogicalBufferId id) const { return entries_.contains(id); }
  int refcount(LogicalBufferId id) const;
  std::int64_t live_buffers() const { return static_cast<std::int64_t>(entries_.size()); }
  Bytes hbm_used(hw::DeviceId device) const {
    return cluster_->device(device).hbm().used();
  }

 private:
  struct Entry {
    ClientId owner;
    ExecutionId producer;
    std::vector<ShardBuffer> shards;
    std::vector<bool> shard_reserved;  // HBM actually held for this shard
    int refcount = 1;
  };

  void FreeEntry(const Entry& entry);

  hw::Cluster* cluster_;
  std::map<LogicalBufferId, Entry> entries_;
  IdGenerator<BufferTag> logical_ids_;
  IdGenerator<ShardBufferTag> shard_ids_;
};

}  // namespace pw::pathways
