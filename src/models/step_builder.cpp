#include "models/step_builder.h"

#include <string>

#include "common/logging.h"

namespace pw::models {

using pathways::PathwaysProgram;
using pathways::ProgramBuilder;
using pathways::ValueRef;
using pathways::VirtualSlice;
using xlasim::CompiledFunction;

StepBuilder::StepBuilder(TransformerConfig config,
                         const hw::SystemParams& hw_params,
                         StepBuilderParams params)
    : config_(std::move(config)), hw_(hw_params), params_(params) {}

double StepBuilder::ModelParallelPenalty(int model_parallel_cores) {
  if (model_parallel_cores <= 32) return 1.0;
  const double excess =
      std::log2(static_cast<double>(model_parallel_cores)) - 5.0;
  return 1.0 + 0.08 * excess * excess;
}

Duration StepBuilder::ComputeTime(int cores, int model_parallel) const {
  PW_CHECK_GT(cores, 0);
  return Duration::Seconds(config_.FlopsPerStep() /
                           (static_cast<double>(cores) * hw_.device_flops *
                            config_.effective_mfu)) *
         ModelParallelPenalty(model_parallel);
}

Duration StepBuilder::MpLatencyOverhead(
    int layers, int cores, const net::CollectiveModel& collectives) const {
  if (cores <= 1) return Duration::Zero();
  // Latency-bound part of each within-layer collective (payload excluded:
  // the bandwidth share is carried by the aggregated rendezvous payload).
  const Duration per_collective =
      collectives.Time(net::CollectiveKind::kAllReduce, /*bytes=*/0, cores);
  return per_collective * (layers * params_.collectives_per_layer);
}

CompiledFunction StepBuilder::SpmdStepFunction(
    int cores, const net::CollectiveModel& collectives,
    int model_parallel) const {
  if (model_parallel < 0) model_parallel = cores;
  CompiledFunction f;
  f.name = config_.name + "/spmd_step";
  f.num_shards = cores;
  const Duration compute = ComputeTime(cores, model_parallel);
  const Duration mp_latency = MpLatencyOverhead(
      static_cast<int>(config_.num_layers), cores, collectives);
  // Gradient apply happens after the aggregated collective.
  f.pre_collective_time = compute + mp_latency;
  f.post_collective_time = compute * 0.02;  // optimizer update
  f.collective = net::CollectiveKind::kAllReduce;
  // Exposed share of the activation-collective traffic, per shard.
  const double act_bytes =
      static_cast<double>(config_.ActivationBytes(config_.tokens_per_batch)) *
      config_.num_layers * params_.collectives_per_layer / cores;
  f.collective_bytes_per_shard =
      static_cast<Bytes>(act_bytes * params_.exposed_comm_fraction);
  f.input_bytes_per_shard =
      config_.ActivationBytes(config_.tokens_per_batch) / cores;
  f.output_bytes_per_shard = f.input_bytes_per_shard;
  f.scratch_bytes_per_shard = f.input_bytes_per_shard;
  return f;
}

std::vector<int> StepBuilder::StageLayerCounts(int stages) const {
  PW_CHECK_GT(stages, 0);
  if (stages == 1) return {static_cast<int>(config_.num_layers)};
  PW_CHECK_GE(config_.num_layers, 2 * stages)
      << "too many stages for " << config_.num_layers << " layers";
  // Balanced split: every stage gets floor(L/S) layers and the remainder
  // goes to *interior* stages first — the first and last stages keep the
  // smaller count because they also run the embedding lookup and softmax
  // (§5.3: "we took out one Transformer layer from the first and last
  // stage to balance the amount of compute per stage").
  const int base = static_cast<int>(config_.num_layers) / stages;
  int remainder = static_cast<int>(config_.num_layers) - base * stages;
  std::vector<int> counts(static_cast<std::size_t>(stages), base);
  for (int s = 1; s < stages - 1 && remainder > 0; ++s, --remainder) {
    counts[static_cast<std::size_t>(s)] += 1;
  }
  // More remainder than interior stages: edges take the overflow.
  for (int s = 0; remainder > 0; s += stages - 1, --remainder) {
    counts[static_cast<std::size_t>(s % stages)] += 1;
  }
  return counts;
}

PathwaysProgram StepBuilder::BuildGPipeProgram(
    const std::vector<VirtualSlice>& slices, int micro_batches,
    const net::CollectiveModel& collectives) const {
  const int stages = static_cast<int>(slices.size());
  PW_CHECK_GE(stages, 1);
  PW_CHECK_GE(micro_batches, 1);
  const int stage_cores = slices[0].num_devices();
  for (const auto& s : slices) PW_CHECK_EQ(s.num_devices(), stage_cores);

  const std::vector<int> layer_counts = StageLayerCounts(stages);
  const std::int64_t micro_tokens = config_.tokens_per_batch / micro_batches;
  const Bytes act_bytes = config_.ActivationBytes(micro_tokens) / stage_cores;

  // Per-(stage, micro-batch) compute: forward is 1/3, backward 2/3 of the
  // 6N flops; embedding/softmax costs are folded into the freed layer slot.
  auto stage_fn = [&](int stage, bool backward) {
    // Only the edge stages carry the extra embedding/softmax work that the
    // removed Transformer layer makes room for.
    const bool edge = stage == 0 || stage == stages - 1;
    const double layer_frac =
        (static_cast<double>(layer_counts[static_cast<std::size_t>(stage)]) +
         (edge ? 1.0 : 0.0)) /
        static_cast<double>(config_.num_layers);
    // Per-device time if the whole model ran on this stage's cores alone;
    // within a stage, layers shard over only stage_cores (cheap collectives,
    // full-width tiles — the advantage over whole-pod SPMD).
    const Duration whole =
        ComputeTime(stage_cores * stages, /*model_parallel=*/stage_cores) *
        stages;
    const Duration stage_compute =
        whole * layer_frac / micro_batches * (backward ? 2.0 / 3.0 : 1.0 / 3.0);
    const Duration mp_latency =
        MpLatencyOverhead(layer_counts[static_cast<std::size_t>(stage)],
                          stage_cores, collectives) *
        ((backward ? 2.0 : 1.0) / 3.0) * (1.0 / micro_batches);
    CompiledFunction f;
    f.name = config_.name + (backward ? "/bwd" : "/fwd") + std::to_string(stage);
    f.num_shards = stage_cores;
    f.pre_collective_time = stage_compute + mp_latency;
    f.input_bytes_per_shard = act_bytes;
    f.output_bytes_per_shard = act_bytes;
    f.scratch_bytes_per_shard = act_bytes;
    return f;
  };

  ProgramBuilder pb(config_.name + "/gpipe");
  std::vector<std::vector<ValueRef>> fwd(
      static_cast<std::size_t>(stages),
      std::vector<ValueRef>(static_cast<std::size_t>(micro_batches)));
  std::vector<std::vector<ValueRef>> bwd = fwd;

  // Forward wave: micro-batch major so stage s can start micro-batch m+1
  // while s+1 works on m (the 1F schedule; order only sets device FIFO).
  for (int m = 0; m < micro_batches; ++m) {
    for (int s = 0; s < stages; ++s) {
      std::vector<ValueRef> inputs;
      if (s > 0) inputs.push_back(fwd[static_cast<std::size_t>(s - 1)]
                                     [static_cast<std::size_t>(m)]);
      fwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)] =
          pb.Call(stage_fn(s, false), slices[static_cast<std::size_t>(s)],
                  std::move(inputs),
                  "f" + std::to_string(s) + "_" + std::to_string(m));
    }
  }
  // Backward wave: reverse order; bwd(s,m) needs bwd(s+1,m) and the stashed
  // fwd(s,m) activations.
  for (int m = 0; m < micro_batches; ++m) {
    for (int s = stages - 1; s >= 0; --s) {
      std::vector<ValueRef> inputs{
          fwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)]};
      if (s < stages - 1) {
        inputs.push_back(
            bwd[static_cast<std::size_t>(s + 1)][static_cast<std::size_t>(m)]);
      }
      bwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(m)] =
          pb.Call(stage_fn(s, true), slices[static_cast<std::size_t>(s)],
                  std::move(inputs),
                  "b" + std::to_string(s) + "_" + std::to_string(m));
    }
  }
  // Per-stage weight update: apply gradients once all micro-batches done.
  for (int s = 0; s < stages; ++s) {
    CompiledFunction update;
    update.name = config_.name + "/update" + std::to_string(s);
    update.num_shards = stage_cores;
    update.pre_collective_time = ComputeTime(stage_cores * stages) * 0.01;
    update.input_bytes_per_shard = act_bytes;
    update.output_bytes_per_shard = 8;
    std::vector<ValueRef> grads(bwd[static_cast<std::size_t>(s)]);
    pb.Result(pb.Call(update, slices[static_cast<std::size_t>(s)],
                      std::move(grads), "upd" + std::to_string(s)));
  }
  return std::move(pb).Build();
}

PathwaysProgram StepBuilder::BuildMultiIslandStep(
    const std::vector<VirtualSlice>& island_slices, int chunks,
    const net::CollectiveModel& collectives) const {
  const int islands = static_cast<int>(island_slices.size());
  PW_CHECK_GE(islands, 1);
  PW_CHECK_GE(chunks, 1);
  const int cores = island_slices[0].num_devices();
  for (const auto& s : island_slices) PW_CHECK_EQ(s.num_devices(), cores);

  // Each island computes 1/islands of the global batch on its `cores`
  // devices — per-device compute equals the whole batch over all devices —
  // split into `chunks` chained chunk nodes (the progressive backward
  // pass); each chunk ends with an intra-island reduce-scatter of its
  // gradient slice.
  const Duration chunk_compute =
      ComputeTime(cores * islands, /*model_parallel=*/32) / chunks;
  const Bytes grad_chunk_shard = config_.GradientBytes() / chunks / cores;

  ProgramBuilder pb(config_.name + "/dp" + std::to_string(islands));
  std::vector<std::vector<ValueRef>> chunk_out(
      static_cast<std::size_t>(islands));
  for (int i = 0; i < islands; ++i) {
    ValueRef prev{};
    bool has_prev = false;
    for (int k = 0; k < chunks; ++k) {
      CompiledFunction f;
      f.name = config_.name + "/i" + std::to_string(i) + "c" + std::to_string(k);
      f.num_shards = cores;
      f.pre_collective_time =
          chunk_compute +
          MpLatencyOverhead(
              static_cast<int>(config_.num_layers / chunks), cores, collectives);
      f.collective = net::CollectiveKind::kReduceScatter;
      f.collective_bytes_per_shard = grad_chunk_shard;
      f.input_bytes_per_shard = grad_chunk_shard;
      f.output_bytes_per_shard = grad_chunk_shard;
      std::vector<ValueRef> inputs;
      if (has_prev) inputs.push_back(prev);
      prev = pb.Call(f, island_slices[static_cast<std::size_t>(i)],
                     std::move(inputs));
      has_prev = true;
      chunk_out[static_cast<std::size_t>(i)].push_back(prev);
    }
  }
  // Apply node per island: consumes the local chunks and every remote
  // island's chunks (those edges cross the DCN), then all-gathers the
  // updated parameters within the island.
  for (int i = 0; i < islands; ++i) {
    CompiledFunction apply;
    apply.name = config_.name + "/apply" + std::to_string(i);
    apply.num_shards = cores;
    apply.pre_collective_time = ComputeTime(cores * islands) * 0.02;
    apply.collective = net::CollectiveKind::kAllGather;
    apply.collective_bytes_per_shard = config_.GradientBytes() / cores;
    apply.input_bytes_per_shard = grad_chunk_shard;
    apply.output_bytes_per_shard = 8;
    std::vector<ValueRef> inputs;
    for (int j = 0; j < islands; ++j) {
      for (const ValueRef& v : chunk_out[static_cast<std::size_t>(j)]) {
        inputs.push_back(v);
      }
    }
    pb.Result(pb.Call(apply, island_slices[static_cast<std::size_t>(i)],
                      std::move(inputs)));
  }
  return std::move(pb).Build();
}

TrainingMeasurement MeasureTraining(pathways::Client* client,
                                    const pathways::PathwaysProgram* program,
                                    std::int64_t tokens_per_batch, int steps) {
  PW_CHECK_GE(steps, 2);
  sim::Simulator& sim = client->runtime().simulator();
  // Step 0 pays pipeline fill and warm-up; measure the rest back-to-back
  // (weights stay resident: outputs are released once the step completes).
  TimePoint measure_start;
  for (int s = 0; s < steps; ++s) {
    auto result = client->Run(program);
    const bool done = sim.RunUntilPredicate([&result] { return result.ready(); });
    PW_CHECK(done) << "training step deadlocked or stalled";
    for (const auto& out : result.value().outputs) {
      client->runtime().object_store().Release(out.id);
    }
    if (s == 0) measure_start = sim.now();
  }
  TrainingMeasurement m;
  m.step_time = (sim.now() - measure_start) / (steps - 1);
  m.steps_per_sec = 1.0 / m.step_time.ToSeconds();
  m.tokens_per_sec = static_cast<double>(tokens_per_batch) * m.steps_per_sec;
  return m;
}

}  // namespace pw::models
