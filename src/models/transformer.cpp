#include "models/transformer.h"

namespace pw::models {

// The T5 effective-MFU values are calibrated so that the simulated
// throughput on the paper's core counts lands near Table 1's tokens/s;
// they absorb each configuration's batch/sequence geometry and
// model-parallel efficiency, which the paper does not specify.

TransformerConfig TransformerConfig::T5Base() {
  TransformerConfig c;
  c.name = "T5-Base";
  c.num_layers = 24;  // 12 encoder + 12 decoder
  c.d_model = 768;
  c.d_attn = 768;
  c.d_ff = 3072;
  c.num_heads = 12;
  c.encoder_decoder = true;
  c.tokens_per_batch = 1 << 16;
  c.effective_mfu = 0.44;  // calibrated: 618k tokens/s on 32 cores
  return c;
}

TransformerConfig TransformerConfig::T5Large() {
  TransformerConfig c;
  c.name = "T5-Large";
  c.num_layers = 48;
  c.d_model = 1024;
  c.d_attn = 1024;
  c.d_ff = 4096;
  c.num_heads = 16;
  c.encoder_decoder = true;
  c.tokens_per_batch = 1 << 16;
  c.effective_mfu = 0.209;  // calibrated: 90.4k tokens/s on 32 cores
  return c;
}

TransformerConfig TransformerConfig::T5_3B() {
  TransformerConfig c;
  c.name = "T5-3B";
  c.num_layers = 48;
  c.d_model = 1024;
  c.d_attn = 4096;
  c.d_ff = 16384;
  c.num_heads = 32;
  c.encoder_decoder = true;
  c.tokens_per_batch = 1 << 17;
  c.effective_mfu = 0.163;  // calibrated: 282.8k tokens/s on 512 cores
  return c;
}

TransformerConfig TransformerConfig::T5_11B() {
  TransformerConfig c;
  c.name = "T5-11B";
  c.num_layers = 48;
  c.d_model = 1024;
  c.d_attn = 16384;
  c.d_ff = 65536;
  c.num_heads = 128;
  c.encoder_decoder = true;
  c.tokens_per_batch = 1 << 17;
  c.effective_mfu = 0.188;  // calibrated: 84.8k tokens/s on 512 cores
  return c;
}

TransformerConfig TransformerConfig::Decoder3B() {
  TransformerConfig c;
  c.name = "LM-3B";
  c.num_layers = 62;  // paper §5.3
  c.d_model = 2048;
  c.d_attn = 2048;
  c.d_ff = 8192;
  c.num_heads = 32;
  c.encoder_decoder = false;
  // µ-batch of 4 examples, 2048 examples per step on 128 cores; sequences
  // of 256 tokens give ~0.5M tokens per batch.
  c.tokens_per_batch = 2048LL * 256;
  // Calibrated with StepBuilder::ModelParallelPenalty so SPMD-128 lands at
  // the paper's 125.7k tokens/s while balanced pipelines reach ~131-134k.
  c.effective_mfu = 0.40;
  return c;
}

TransformerConfig TransformerConfig::Decoder64B() {
  TransformerConfig c;
  c.name = "LM-64B";
  c.num_layers = 80;
  c.d_model = 8192;
  c.d_attn = 8192;
  c.d_ff = 32768;
  c.num_heads = 64;
  c.encoder_decoder = false;
  c.tokens_per_batch = 2048LL * 1024;
  c.effective_mfu = 0.35;
  return c;
}

TransformerConfig TransformerConfig::Decoder136B() {
  TransformerConfig c;
  c.name = "LM-136B";
  c.num_layers = 75;
  c.d_model = 12288;
  c.d_attn = 12288;
  c.d_ff = 49152;
  c.num_heads = 96;
  c.encoder_decoder = false;
  c.tokens_per_batch = 2048LL * 1024;
  c.effective_mfu = 0.35;
  return c;
}

}  // namespace pw::models
