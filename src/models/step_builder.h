// Builds executable training-step programs for the paper's §5.3 workloads.
//
// Three parallelism plans, all lowered to real PathwaysPrograms and *run on
// the simulated cluster* (step times are measured, not closed-form):
//
//   * SPMD: the whole step is one sharded compiled function — roofline
//     compute plus the model-parallel collective latency that cannot be
//     overlapped, with an aggregated activation-collective rendezvous.
//   * GPipe pipeline (Table 2, Fig. 10): S stages x M micro-batches of
//     forward and backward nodes plus per-stage weight updates; the bubble
//     and the inter-stage transfers emerge from the dataflow.
//   * Multi-island data parallel (Fig. 12): each island computes the step
//     in K backward "chunks"; each chunk's gradient shard crosses the DCN
//     while later chunks are still computing — the overlap that gives the
//     paper its ~97% two-island efficiency.
#pragma once

#include <memory>
#include <vector>

#include "hw/system_params.h"
#include "models/transformer.h"
#include "net/collective_model.h"
#include "pathways/pathways.h"
#include "xlasim/compiled_function.h"

namespace pw::models {

struct StepBuilderParams {
  // Fraction of activation-collective bandwidth cost that is *not*
  // overlapped with compute inside an SPMD step.
  double exposed_comm_fraction = 0.15;
  // Collectives per layer (2 forward + 2 backward in a Megatron-style
  // sharded Transformer block).
  int collectives_per_layer = 4;
};

class StepBuilder {
 public:
  StepBuilder(TransformerConfig config, const hw::SystemParams& hw_params,
              StepBuilderParams params = {});

  const TransformerConfig& config() const { return config_; }

  // Model-parallel efficiency penalty: sharding a layer over more than ~32
  // cores shrinks per-core matmul tiles below the width that sustains peak
  // MFU, so effective compute time inflates. Calibrated so that Table 2's
  // SPMD-128 vs pipeline ordering reproduces (EXPERIMENTS.md).
  static double ModelParallelPenalty(int model_parallel_cores);

  // Pure-compute roofline time of the whole step on `cores` total cores
  // with `model_parallel` cores sharding each layer.
  Duration ComputeTime(int cores, int model_parallel = 32) const;

  // --- SPMD ---
  // `model_parallel` defaults to all cores (the paper's Table 2 "Model-
  // parallel (SPMD)" row); hybrid data/model-parallel configurations pass
  // their within-replica sharding width.
  xlasim::CompiledFunction SpmdStepFunction(
      int cores, const net::CollectiveModel& collectives,
      int model_parallel = -1) const;

  // --- GPipe pipeline ---
  // Per-stage layer counts with the paper's balancing: one Transformer
  // layer is removed from the first and last stages to offset the
  // embedding lookup and softmax layers.
  std::vector<int> StageLayerCounts(int stages) const;

  // Builds one training step: stage s runs on slices[s] (any island).
  // Requires slices.size() == stages and equal devices per slice.
  pathways::PathwaysProgram BuildGPipeProgram(
      const std::vector<pathways::VirtualSlice>& slices, int micro_batches,
      const net::CollectiveModel& collectives) const;

  // --- Multi-island data parallel ---
  // Each island holds a full replica; gradients exchange in `chunks`
  // chunks overlapped with the backward pass.
  pathways::PathwaysProgram BuildMultiIslandStep(
      const std::vector<pathways::VirtualSlice>& island_slices, int chunks,
      const net::CollectiveModel& collectives) const;

 private:
  // Unoverlapped model-parallel latency added to device time per step-part
  // covering `layers` layers sharded over `cores`.
  Duration MpLatencyOverhead(int layers, int cores,
                             const net::CollectiveModel& collectives) const;

  TransformerConfig config_;
  // By value: callers routinely pass temporaries (SystemParams::TpuDefault())
  // and the builder outlives the constructor call.
  hw::SystemParams hw_;
  StepBuilderParams params_;
};

// Runs `program` for `steps` back-to-back steps on `client` and returns the
// steady-state step time (first step excluded: pipeline fill + compilation).
struct TrainingMeasurement {
  Duration step_time;
  double tokens_per_sec = 0;
  double steps_per_sec = 0;
};

TrainingMeasurement MeasureTraining(pathways::Client* client,
                                    const pathways::PathwaysProgram* program,
                                    std::int64_t tokens_per_batch, int steps = 3);

}  // namespace pw::models
