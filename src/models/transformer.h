// Transformer model configurations used in the paper's evaluation (§5.3):
// the T5 encoder-decoder family (Table 1) and decoder-only LMs of 3B/64B/
// 136B parameters (Table 2, Figs. 10 and 12).
//
// Parameter counts follow the standard dense-Transformer accounting:
//   per layer: attention 4·d² + feed-forward 2·d·d_ff
//   embeddings: vocab·d (shared in/out)
// Training FLOPs use the 6·N·tokens rule (fwd 2N + bwd 4N).
//
// `effective_mfu` is the calibration knob that absorbs everything our
// simulator does not model (exact batch/sequence geometry, kernel quality,
// remat policy); EXPERIMENTS.md records the calibrated values next to the
// paper's measured throughputs.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.h"

namespace pw::models {

struct TransformerConfig {
  std::string name;
  std::int64_t num_layers = 12;
  std::int64_t d_model = 768;
  std::int64_t d_ff = 3072;
  std::int64_t num_heads = 12;
  // Total attention inner width (num_heads x d_kv). Equals d_model for most
  // models, but T5-3B/11B widen it independently.
  std::int64_t d_attn = 768;
  std::int64_t vocab_size = 32128;
  bool encoder_decoder = false;  // T5-style if true; decoder-only otherwise

  // Training geometry.
  std::int64_t tokens_per_batch = 1 << 19;  // global tokens per step
  double effective_mfu = 0.30;

  std::int64_t ParamsPerLayer() const {
    // Self-attention QKVO + feed-forward; encoder-decoder stacks amortize
    // the decoder's cross-attention as +2·d·d_attn per layer on average.
    const std::int64_t attn = 4 * d_model * d_attn;
    const std::int64_t cross = encoder_decoder ? 2 * d_model * d_attn : 0;
    return attn + cross + 2 * d_model * d_ff;
  }
  std::int64_t EmbeddingParams() const { return vocab_size * d_model; }
  std::int64_t TotalParams() const {
    return num_layers * ParamsPerLayer() + EmbeddingParams();
  }
  // Training FLOPs for one step over the global batch.
  double FlopsPerStep() const {
    return 6.0 * static_cast<double>(TotalParams()) *
           static_cast<double>(tokens_per_batch);
  }
  // Gradient bytes exchanged per step (bf16 gradients).
  Bytes GradientBytes() const { return 2 * TotalParams(); }
  // Activation bytes flowing between consecutive layers for `tokens` tokens.
  Bytes ActivationBytes(std::int64_t tokens) const { return 2 * tokens * d_model; }

  // --- Inference accounting (serving regime, docs/SERVING.md) ---
  // Forward-pass FLOPs to process one token (prefill or decode): 2 per
  // parameter, the forward third of the 6N training rule.
  double InferenceFlopsPerToken() const {
    return 2.0 * static_cast<double>(TotalParams());
  }
  // bf16 K and V rows appended to the cache per token, summed over layers.
  Bytes KvBytesPerToken() const { return 2 * 2 * num_layers * d_attn; }
  // bf16 weights; a decode iteration streams them once from HBM regardless
  // of batch size, which is what makes decode memory-bound.
  Bytes WeightBytes() const { return 2 * TotalParams(); }

  // --- Table 1: T5 configurations (Raffel et al. 2019) ---
  static TransformerConfig T5Base();
  static TransformerConfig T5Large();
  static TransformerConfig T5_3B();
  static TransformerConfig T5_11B();

  // --- Table 2 / Figs. 10, 12: decoder-only LMs ---
  // 62 layers, d=2048, d_ff=8192 => 3B (paper §5.3).
  static TransformerConfig Decoder3B();
  static TransformerConfig Decoder64B();
  static TransformerConfig Decoder136B();
};

}  // namespace pw::models
