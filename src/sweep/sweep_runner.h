// SweepRunner: fans independent simulator runs across a thread pool.
//
// Each grid point is evaluated by a user callback that builds its own
// pw::sim::Simulator (and cluster/runtime on top). Simulators stay strictly
// single-threaded — parallelism exists only *between* points — so every
// point is as deterministic as a standalone run, and the result vector is
// ordered by grid index regardless of how threads interleave. Running the
// same sweep with 1 thread and N threads yields byte-identical tables.
//
//   sweep::ParamGrid grid;
//   grid.AxisInts("hosts", {2, 8, 32}).AxisInts("devs", {4, 8});
//   sweep::SweepRunner runner({.threads = 4});
//   sweep::ResultTable table = runner.Run(grid, [](const sweep::ParamPoint& p) {
//     sim::Simulator sim;                       // private to this point
//     auto cluster = hw::Cluster::ConfigA(&sim, (int)p.GetInt("hosts"));
//     ... run the scenario ...
//     return sweep::Metrics{{"events_per_sec", rate}};
//   });
//   table.WriteCsv(std::cout);
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sweep/param_grid.h"
#include "sweep/result_table.h"

namespace pw::sweep {

using Metrics = std::vector<std::pair<std::string, double>>;

class SweepRunner {
 public:
  struct Options {
    // Worker threads; 0 means std::thread::hardware_concurrency() (min 1).
    int threads = 0;
    // If true, append a "wall_ms" metric (host wall-clock per point) to
    // every row. Off by default so result tables stay deterministic.
    bool record_wall_ms = false;
  };

  using PointFn = std::function<Metrics(const ParamPoint&)>;

  SweepRunner() = default;
  explicit SweepRunner(Options options) : options_(options) {}

  // Evaluates `fn` on every point of `grid` and returns one row per point,
  // in grid order. `fn` is called concurrently from pool threads and must
  // not touch shared mutable state (build everything per point).
  ResultTable Run(const ParamGrid& grid, const PointFn& fn) const;

  // Number of threads a Run() would use for `points` work items.
  int EffectiveThreads(std::size_t points) const;

 private:
  Options options_;
};

}  // namespace pw::sweep
