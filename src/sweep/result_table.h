// Structured sweep results and their JSON/CSV serialization.
//
// A ResultTable is a list of rows, each pairing a ParamPoint's parameters
// with named double-valued metrics. Serialization needs no third-party
// library; the JSON layout is the BENCH_*.json schema the bench/ binaries
// emit (see docs/BENCHMARKS.md):
//
//   {
//     "bench": "<name>",
//     "schema_version": 1,
//     "summary": { "<metric>": <double>, ... },
//     "series": [
//       { "params": { "<axis>": <value>, ... },
//         "metrics": { "<metric>": <double>, ... } },
//       ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sweep/param_grid.h"

namespace pw::sweep {

struct ResultRow {
  std::vector<std::pair<std::string, ParamValue>> params;
  std::vector<std::pair<std::string, double>> metrics;
};

class ResultTable {
 public:
  void Add(ResultRow row) { rows_.push_back(std::move(row)); }
  // Convenience for hand-built rows (no grid).
  void Add(std::vector<std::pair<std::string, ParamValue>> params,
           std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back(ResultRow{std::move(params), std::move(metrics)});
  }

  const std::vector<ResultRow>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }
  std::size_t size() const { return rows_.size(); }

  // CSV with a header row: the union of parameter columns then the union of
  // metric columns, in first-seen order. Missing cells are empty.
  void WriteCsv(std::ostream& os) const;

  // The "series" array of the BENCH_*.json schema.
  void WriteJsonSeries(std::ostream& os, int indent = 2) const;

 private:
  std::vector<ResultRow> rows_;
};

// Writes a complete BENCH_*.json document (schema above).
void WriteBenchJson(std::ostream& os, const std::string& bench_name,
                    const std::map<std::string, double>& summary,
                    const ResultTable& series);

// Opens `dir`/BENCH_<bench_name>.json (dir defaults to $PWSIM_BENCH_DIR or
// ".") and writes the document; returns the path written, or "" on I/O
// failure (benches treat emission as best-effort).
std::string WriteBenchJsonFile(const std::string& bench_name,
                               const std::map<std::string, double>& summary,
                               const ResultTable& series,
                               std::string dir = "");

std::string JsonEscape(const std::string& s);

}  // namespace pw::sweep
