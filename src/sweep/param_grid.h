// Declarative parameter grids for simulator sweeps.
//
// A ParamGrid is an ordered list of named axes; Points() expands the
// cartesian product in a deterministic row-major order (the first axis
// varies slowest), so sweep output is stable across runs and machines.
//
//   sweep::ParamGrid grid;
//   grid.AxisInts("hosts", {2, 8, 32})
//       .AxisStrings("system", {"PW", "JAX"});
//   for (const sweep::ParamPoint& p : grid.Points()) {
//     Run(p.GetInt("hosts"), p.GetString("system"));
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace pw::sweep {

using ParamValue = std::variant<std::int64_t, double, std::string>;

// Compact human-readable rendering ("8", "0.5", "PW").
std::string ToString(const ParamValue& v);

// One assignment of a value to every axis of a grid.
class ParamPoint {
 public:
  ParamPoint(std::size_t index,
             std::vector<std::pair<std::string, ParamValue>> entries)
      : index_(index), entries_(std::move(entries)) {}

  // Position of this point in the grid's row-major expansion.
  std::size_t index() const { return index_; }

  const std::vector<std::pair<std::string, ParamValue>>& entries() const {
    return entries_;
  }

  bool Has(const std::string& name) const;
  // Get* die on a missing name or mismatched type — a sweep that asks for a
  // parameter it never declared is a programming error.
  const ParamValue& Get(const std::string& name) const;
  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // "hosts=8,system=PW" — for logs and trace labels.
  std::string Label() const;

 private:
  std::size_t index_;
  std::vector<std::pair<std::string, ParamValue>> entries_;
};

class ParamGrid {
 public:
  // Adds an axis; axis names must be unique, values non-empty.
  ParamGrid& Axis(std::string name, std::vector<ParamValue> values);
  ParamGrid& AxisInts(std::string name, std::vector<std::int64_t> values);
  ParamGrid& AxisDoubles(std::string name, std::vector<double> values);
  ParamGrid& AxisStrings(std::string name, std::vector<std::string> values);

  std::size_t num_axes() const { return axes_.size(); }
  // Product of axis sizes (1 for an empty grid: the single empty point).
  std::size_t size() const;

  // Row-major cartesian expansion: the first declared axis varies slowest.
  std::vector<ParamPoint> Points() const;

 private:
  struct AxisDef {
    std::string name;
    std::vector<ParamValue> values;
  };
  std::vector<AxisDef> axes_;
};

}  // namespace pw::sweep
