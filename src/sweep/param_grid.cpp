#include "sweep/param_grid.h"

#include <cstdio>

#include "common/logging.h"

namespace pw::sweep {

std::string ToString(const ParamValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

bool ParamPoint::Has(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return true;
  }
  return false;
}

const ParamValue& ParamPoint::Get(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v;
  }
  PW_CHECK(false) << "ParamPoint: no axis named '" << name << "'";
  __builtin_unreachable();
}

std::int64_t ParamPoint::GetInt(const std::string& name) const {
  const ParamValue& v = Get(name);
  PW_CHECK(std::holds_alternative<std::int64_t>(v))
      << "axis '" << name << "' is not an int";
  return std::get<std::int64_t>(v);
}

double ParamPoint::GetDouble(const std::string& name) const {
  const ParamValue& v = Get(name);
  // Ints promote to double transparently: AxisInts axes are usable in
  // arithmetic-heavy sweep bodies without casts.
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  PW_CHECK(std::holds_alternative<double>(v))
      << "axis '" << name << "' is not numeric";
  return std::get<double>(v);
}

const std::string& ParamPoint::GetString(const std::string& name) const {
  const ParamValue& v = Get(name);
  PW_CHECK(std::holds_alternative<std::string>(v))
      << "axis '" << name << "' is not a string";
  return std::get<std::string>(v);
}

std::string ParamPoint::Label() const {
  std::string out;
  for (const auto& [n, v] : entries_) {
    if (!out.empty()) out += ",";
    out += n + "=" + ToString(v);
  }
  return out;
}

ParamGrid& ParamGrid::Axis(std::string name, std::vector<ParamValue> values) {
  PW_CHECK(!values.empty()) << "axis '" << name << "' has no values";
  for (const AxisDef& a : axes_) {
    PW_CHECK(a.name != name) << "duplicate axis '" << name << "'";
  }
  axes_.push_back(AxisDef{std::move(name), std::move(values)});
  return *this;
}

ParamGrid& ParamGrid::AxisInts(std::string name,
                               std::vector<std::int64_t> values) {
  std::vector<ParamValue> vals(values.begin(), values.end());
  return Axis(std::move(name), std::move(vals));
}

ParamGrid& ParamGrid::AxisDoubles(std::string name, std::vector<double> values) {
  std::vector<ParamValue> vals(values.begin(), values.end());
  return Axis(std::move(name), std::move(vals));
}

ParamGrid& ParamGrid::AxisStrings(std::string name,
                                  std::vector<std::string> values) {
  std::vector<ParamValue> vals;
  vals.reserve(values.size());
  for (std::string& s : values) vals.emplace_back(std::move(s));
  return Axis(std::move(name), std::move(vals));
}

std::size_t ParamGrid::size() const {
  std::size_t n = 1;
  for (const AxisDef& a : axes_) n *= a.values.size();
  return n;
}

std::vector<ParamPoint> ParamGrid::Points() const {
  const std::size_t total = size();
  std::vector<ParamPoint> out;
  out.reserve(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    std::vector<std::pair<std::string, ParamValue>> entries;
    entries.reserve(axes_.size());
    // Row-major decode: first axis varies slowest.
    std::size_t rem = idx;
    std::size_t stride = total;
    for (const AxisDef& a : axes_) {
      stride /= a.values.size();
      const std::size_t vi = rem / stride;
      rem %= stride;
      entries.emplace_back(a.name, a.values[vi]);
    }
    out.emplace_back(idx, std::move(entries));
  }
  return out;
}

}  // namespace pw::sweep
