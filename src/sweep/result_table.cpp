#include "sweep/result_table.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace pw::sweep {
namespace {

// Doubles print with enough digits to round-trip (JSON has no float type
// distinction; %.17g is lossless for IEEE doubles but noisy — %.12g is
// plenty for metrics and keeps files diffable).
std::string FormatDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

std::string JsonValue(const ParamValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return FormatDouble(*d);
  return "\"" + JsonEscape(std::get<std::string>(v)) + "\"";
}

// Union of keys across rows, in first-seen order.
template <typename Field>
std::vector<std::string> ColumnOrder(const std::vector<ResultRow>& rows,
                                     Field field) {
  std::vector<std::string> cols;
  for (const ResultRow& row : rows) {
    for (const auto& [name, value] : row.*field) {
      bool seen = false;
      for (const std::string& c : cols) {
        if (c == name) { seen = true; break; }
      }
      if (!seen) cols.push_back(name);
    }
  }
  return cols;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ResultTable::WriteCsv(std::ostream& os) const {
  const auto param_cols = ColumnOrder(rows_, &ResultRow::params);
  const auto metric_cols = ColumnOrder(rows_, &ResultRow::metrics);
  bool first = true;
  for (const std::string& c : param_cols) {
    if (!first) os << ",";
    os << c;
    first = false;
  }
  for (const std::string& c : metric_cols) {
    if (!first) os << ",";
    os << c;
    first = false;
  }
  os << "\n";
  for (const ResultRow& row : rows_) {
    first = true;
    for (const std::string& c : param_cols) {
      if (!first) os << ",";
      first = false;
      for (const auto& [name, value] : row.params) {
        if (name == c) { os << ToString(value); break; }
      }
    }
    for (const std::string& c : metric_cols) {
      if (!first) os << ",";
      first = false;
      for (const auto& [name, value] : row.metrics) {
        if (name == c) { os << FormatDouble(value); break; }
      }
    }
    os << "\n";
  }
}

void ResultTable::WriteJsonSeries(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string pad2 = pad + "  ";
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const ResultRow& row = rows_[r];
    os << (r == 0 ? "\n" : ",\n") << pad << "{ \"params\": {";
    for (std::size_t i = 0; i < row.params.size(); ++i) {
      os << (i == 0 ? " " : ", ") << "\"" << JsonEscape(row.params[i].first)
         << "\": " << JsonValue(row.params[i].second);
    }
    os << (row.params.empty() ? "}," : " },") << "\n"
       << pad2 << "\"metrics\": {";
    for (std::size_t i = 0; i < row.metrics.size(); ++i) {
      os << (i == 0 ? " " : ", ") << "\"" << JsonEscape(row.metrics[i].first)
         << "\": " << FormatDouble(row.metrics[i].second);
    }
    os << (row.metrics.empty() ? "}" : " }") << " }";
  }
  const std::size_t close_pad = indent >= 2 ? static_cast<std::size_t>(indent - 2) : 0;
  os << (rows_.empty() ? "]" : "\n" + std::string(close_pad, ' ') + "]");
}

void WriteBenchJson(std::ostream& os, const std::string& bench_name,
                    const std::map<std::string, double>& summary,
                    const ResultTable& series) {
  os << "{\n";
  os << "  \"bench\": \"" << JsonEscape(bench_name) << "\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"summary\": {";
  bool first = true;
  for (const auto& [name, value] : summary) {
    os << (first ? " " : ", ") << "\"" << JsonEscape(name)
       << "\": " << FormatDouble(value);
    first = false;
  }
  os << (summary.empty() ? "},\n" : " },\n");
  os << "  \"series\": ";
  series.WriteJsonSeries(os, 4);
  os << "\n}\n";
}

std::string WriteBenchJsonFile(const std::string& bench_name,
                               const std::map<std::string, double>& summary,
                               const ResultTable& series, std::string dir) {
  if (dir.empty()) {
    const char* env = std::getenv("PWSIM_BENCH_DIR");
    dir = (env != nullptr && env[0] != '\0') ? env : ".";
  }
  const std::string path = dir + "/BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) return "";
  WriteBenchJson(out, bench_name, summary, series);
  return out ? path : "";
}

}  // namespace pw::sweep
