#include "sweep/sweep_runner.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace pw::sweep {

int SweepRunner::EffectiveThreads(std::size_t points) const {
  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (static_cast<std::size_t>(threads) > points) {
    threads = static_cast<int>(points);
  }
  return threads < 1 ? 1 : threads;
}

ResultTable SweepRunner::Run(const ParamGrid& grid, const PointFn& fn) const {
  const std::vector<ParamPoint> points = grid.Points();
  std::vector<ResultRow> rows(points.size());

  // Work-stealing by atomic index: threads race for the next point but
  // write results by grid index, so output order is deterministic.
  std::atomic<std::size_t> next{0};
  const bool wall = options_.record_wall_ms;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      const auto start = std::chrono::steady_clock::now();
      Metrics metrics = fn(points[i]);
      if (wall) {
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        metrics.emplace_back("wall_ms", elapsed.count());
      }
      rows[i] = ResultRow{points[i].entries(), std::move(metrics)};
    }
  };

  const int threads = EffectiveThreads(points.size());
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  ResultTable table;
  for (ResultRow& row : rows) table.Add(std::move(row));
  return table;
}

}  // namespace pw::sweep
