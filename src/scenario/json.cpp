#include "scenario/json.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pw::scenario {

const Json* Json::Find(const std::string& key) const {
  for (const Member& m : members_) {
    if (m.key == key) return &m.value;
  }
  return nullptr;
}

SourceLoc Json::KeyLoc(const std::string& key) const {
  for (const Member& m : members_) {
    if (m.key == key) return m.key_loc;
  }
  return loc_;
}

const char* Json::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kInt: return "int";
    case Kind::kDouble: return "double";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

// Recursive-descent parser tracking line/col as it consumes bytes.
class JsonParser {
 public:
  JsonParser(const std::string& text, DiagnosticEngine* diags)
      : text_(text), diags_(diags) {}

  bool Parse(Json* out) {
    SkipWhitespace();
    if (AtEnd()) {
      diags_->Error(Loc(), "empty document: expected a JSON value");
      return false;
    }
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWhitespace();
    if (!AtEnd()) {
      diags_->Error(Loc(), "trailing content after the top-level value");
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  SourceLoc Loc() const { return {line_, col_}; }

  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else {
        return;
      }
    }
  }

  bool Fail(SourceLoc loc, std::string msg) {
    diags_->Error(loc, std::move(msg));
    return false;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail(Loc(), "nesting deeper than " + std::to_string(kMaxDepth) +
                             " levels");
    }
    SkipWhitespace();
    if (AtEnd()) return Fail(Loc(), "unexpected end of input");
    out->loc_ = Loc();
    const char c = Peek();
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->kind_ = Json::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't': return ParseKeyword("true", out, Json::Kind::kBool, true);
      case 'f': return ParseKeyword("false", out, Json::Kind::kBool, false);
      case 'n': return ParseKeyword("null", out, Json::Kind::kNull, false);
      default: return ParseNumber(out);
    }
  }

  bool ParseKeyword(const char* word, Json* out, Json::Kind kind,
                    bool bool_value) {
    const SourceLoc start = Loc();
    for (const char* p = word; *p; ++p) {
      if (AtEnd() || Peek() != *p) {
        return Fail(start, std::string("invalid token; expected '") + word +
                               "'");
      }
      Advance();
    }
    out->kind_ = kind;
    out->bool_ = bool_value;
    return true;
  }

  bool ParseObject(Json* out, int depth) {
    out->kind_ = Json::Kind::kObject;
    Advance();  // '{'
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Fail(Loc(), "expected '\"' to begin an object key");
      }
      Json::Member member;
      member.key_loc = Loc();
      if (!ParseString(&member.key)) return false;
      for (const Json::Member& prev : out->members_) {
        if (prev.key == member.key) {
          return Fail(member.key_loc,
                      "duplicate key '" + member.key + "' (first at line " +
                          std::to_string(prev.key_loc.line) + ")");
        }
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') {
        return Fail(Loc(), "expected ':' after object key '" + member.key +
                               "'");
      }
      Advance();
      if (!ParseValue(&member.value, depth + 1)) return false;
      out->members_.push_back(std::move(member));
      SkipWhitespace();
      if (AtEnd()) return Fail(Loc(), "unterminated object: expected ',' or '}'");
      const char c = Advance();
      if (c == '}') return true;
      if (c != ',') {
        return Fail(out->members_.back().value.loc(),
                    "expected ',' or '}' after object member");
      }
    }
  }

  bool ParseArray(Json* out, int depth) {
    out->kind_ = Json::Kind::kArray;
    Advance();  // '['
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return true;
    }
    while (true) {
      Json element;
      if (!ParseValue(&element, depth + 1)) return false;
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Fail(Loc(), "unterminated array: expected ',' or ']'");
      const char c = Advance();
      if (c == ']') return true;
      if (c != ',') {
        return Fail(out->array_.back().loc(),
                    "expected ',' or ']' after array element");
      }
    }
  }

  bool ParseString(std::string* out) {
    const SourceLoc start = Loc();
    Advance();  // opening '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Fail(start, "unterminated string");
      const SourceLoc char_loc = Loc();
      const char c = Advance();
      if (c == '"') return true;
      if (c == '\n') return Fail(start, "unterminated string");
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (AtEnd()) return Fail(start, "unterminated string");
      const char esc = Advance();
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd()) return Fail(start, "unterminated string");
            const char h = Advance();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail(char_loc, "invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // stitched — scenario files are ASCII in practice).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail(char_loc, std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  bool ParseNumber(Json* out) {
    const SourceLoc start = Loc();
    const std::size_t begin = pos_;
    bool is_double = false;
    if (!AtEnd() && Peek() == '-') Advance();
    while (!AtEnd()) {
      const char c = Peek();
      if (c >= '0' && c <= '9') {
        Advance();
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        Advance();
      } else {
        break;
      }
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    if (token.empty() || token == "-") {
      return Fail(start, "invalid value");
    }
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == ERANGE) return Fail(start, "integer out of range");
      if (end != token.c_str() + token.size()) {
        return Fail(start, "invalid number '" + token + "'");
      }
      out->kind_ = Json::Kind::kInt;
      out->int_ = v;
      return true;
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail(start, "invalid number '" + token + "'");
    }
    out->kind_ = Json::Kind::kDouble;
    out->double_ = d;
    return true;
  }

  const std::string& text_;
  DiagnosticEngine* diags_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

bool ParseJson(const std::string& text, Json* out, DiagnosticEngine* diags) {
  return JsonParser(text, diags).Parse(out);
}

}  // namespace pw::scenario
