// Minimal strict-JSON parser with source positions, built for diagnosable
// configuration files rather than speed: every value and every object key
// remembers its line:col, so schema errors ("expected int", "unknown key")
// can point at the exact token. Shared by the scenario schema
// (scenario/scenario.h) and the BENCH_*.json result loader
// (scenario/result_store.h).
//
// Strictness: RFC-8259 JSON only — no comments, no trailing commas, no
// NaN/Infinity. Duplicate object keys and trailing content after the root
// value are errors. Integers without '.'/exponent parse as kInt (int64),
// everything else numeric as kDouble.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/diagnostics.h"

namespace pw::scenario {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  // One object member ("key": value) with the key's own location. Defined
  // after the class — it holds a Json by value.
  struct Member;

  Kind kind() const { return kind_; }
  SourceLoc loc() const { return loc_; }

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  // Any JSON number (int or double).
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Accessors assume the matching kind (callers check first; the schema
  // layer funnels every access through checked readers).
  bool bool_value() const { return bool_; }
  std::int64_t int_value() const { return int_; }
  // Numeric value as double (ints promote).
  double number_value() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& array() const { return array_; }
  const std::vector<Member>& members() const { return members_; }

  // Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  // Key location for diagnostics; value loc when the key is unknown.
  SourceLoc KeyLoc(const std::string& key) const;

  // "null" / "bool" / "int" / "double" / "string" / "array" / "object" —
  // for "expected X, got Y" messages.
  static const char* KindName(Kind kind);
  const char* kind_name() const { return KindName(kind_); }

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  SourceLoc loc_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<Member> members_;
};

struct Json::Member {
  std::string key;
  SourceLoc key_loc;
  Json value;
};

// Parses `text` (named `file` in diagnostics) into *out. Returns false and
// reports into `diags` on the first syntax error. `diags` should be
// constructed over the same file/text so renders can excerpt source lines.
bool ParseJson(const std::string& text, Json* out, DiagnosticEngine* diags);

}  // namespace pw::scenario
