// Hierarchical, path-addressed view over BENCH_*.json result files
// (sweep::WriteBenchJsonFile output). Every value gets a slash-separated
// address:
//
//   <bench>/summary/<metric>                      one per summary entry
//   <bench>/<axis>=<value>/.../<metric>           one per series row metric,
//                                                 axes in declaration order
//
// e.g. "serving/rate_per_s=1500/policy_continuous=1/kv_scale=0.5/ttft_p99_us".
// `pwsim query --select 'serving/**/p99_*'` resolves glob patterns over
// these paths: `*` and `?` match within one segment, `**` spans segments.
// A select may also be an aggregation: "<agg> over <glob>" reduces every
// matching value to one number, where <agg> is min, max, mean, sum, count,
// or pNN (a percentile, e.g. p50/p99).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace pw::scenario {

struct ResultEntry {
  std::string path;
  double value = 0;
};

// Parsed "<agg> over <glob>" selector.
struct Aggregation {
  enum class Kind { kMin, kMax, kMean, kSum, kCount, kPercentile };
  Kind kind = Kind::kMean;
  double percentile = 0;  // in [0, 100], kPercentile only
  std::string glob;
};

class ResultStore {
 public:
  // Loads one BENCH_<name>.json file, appending its entries. On schema or
  // parse errors returns false and describes the problem in *error.
  bool LoadBenchFile(const std::string& path, std::string* error);

  // Loads every BENCH_*.json directly inside `dir` (sorted by filename so
  // entry order is stable). Returns the number of files loaded, or -1 on
  // the first error.
  int LoadDir(const std::string& dir, std::string* error);

  const std::vector<ResultEntry>& entries() const { return entries_; }

  // Entries whose path matches the glob, in load order.
  std::vector<ResultEntry> Select(const std::string& pattern) const;

  // Parses "<agg> over <glob>" (e.g. "p99 over serving/**/ttft_*").
  // Returns nullopt when `select` is not an aggregation form — callers fall
  // back to a plain glob Select. A malformed aggregation (unknown <agg>)
  // also returns nullopt; `pNN over x` with NN out of [0,100] is malformed.
  static std::optional<Aggregation> ParseAggregation(const std::string& select);

  // Reduces the values matching agg.glob. Count of an empty match is 0;
  // every other aggregation over an empty match returns nullopt.
  std::optional<double> Aggregate(const Aggregation& agg) const;

  // Slash-aware glob match: `*` / `?` never cross a '/', `**` matches any
  // number of whole segments (including zero).
  static bool GlobMatch(const std::string& pattern, const std::string& path);

 private:
  std::vector<ResultEntry> entries_;
};

}  // namespace pw::scenario
