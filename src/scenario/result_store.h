// Hierarchical, path-addressed view over BENCH_*.json result files
// (sweep::WriteBenchJsonFile output). Every value gets a slash-separated
// address:
//
//   <bench>/summary/<metric>                      one per summary entry
//   <bench>/<axis>=<value>/.../<metric>           one per series row metric,
//                                                 axes in declaration order
//
// e.g. "serving/rate_per_s=1500/policy_continuous=1/kv_scale=0.5/ttft_p99_us".
// `pwsim query --select 'serving/**/p99_*'` resolves glob patterns over
// these paths: `*` and `?` match within one segment, `**` spans segments.
#pragma once

#include <string>
#include <vector>

namespace pw::scenario {

struct ResultEntry {
  std::string path;
  double value = 0;
};

class ResultStore {
 public:
  // Loads one BENCH_<name>.json file, appending its entries. On schema or
  // parse errors returns false and describes the problem in *error.
  bool LoadBenchFile(const std::string& path, std::string* error);

  // Loads every BENCH_*.json directly inside `dir` (sorted by filename so
  // entry order is stable). Returns the number of files loaded, or -1 on
  // the first error.
  int LoadDir(const std::string& dir, std::string* error);

  const std::vector<ResultEntry>& entries() const { return entries_; }

  // Entries whose path matches the glob, in load order.
  std::vector<ResultEntry> Select(const std::string& pattern) const;

  // Slash-aware glob match: `*` / `?` never cross a '/', `**` matches any
  // number of whole segments (including zero).
  static bool GlobMatch(const std::string& pattern, const std::string& path);

 private:
  std::vector<ResultEntry> entries_;
};

}  // namespace pw::scenario
