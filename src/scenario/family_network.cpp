// Family "network": contended DCN sweep over the flow-level Clos fabric —
// oversubscription ratio x incast fan-in, with the abstract per-NIC fabric
// measured at every point as the baseline the scalar model predicts.
// Extracted from bench/bench_network.cpp; the bench binary keeps the gates
// (uncontended agreement, ~N x incast, >= 2x oversubscription penalty) and
// reads them off this family's metrics and summary.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/dcn.h"
#include "scenario/family_common.h"

namespace pw::scenario {
namespace {

net::DcnParams MakeParams(const NetworkSpec& spec, bool flow_mode,
                          double oversub) {
  net::DcnParams p;  // 20us latency, 12.5 GB/s NIC, 128 B header
  p.clos.enabled = flow_mode;
  p.clos.hosts_per_leaf = spec.hosts_per_leaf;
  p.clos.num_spines = spec.num_spines;
  p.clos.oversubscription = oversub;
  return p;
}

// N senders (hosts 1..fan_in) -> host 0; returns last-arrival time in ms.
double MeasureIncast(const NetworkSpec& spec, bool flow_mode, double oversub,
                     int fan_in) {
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, MakeParams(spec, flow_mode, oversub));
  for (int h = 0; h < spec.hosts; ++h) dcn.AddHost(net::HostId(h));
  std::int64_t last_ns = 0;
  for (int s = 1; s <= fan_in; ++s) {
    dcn.Send(net::HostId(s), net::HostId(0), MiB(spec.message_mib),
             [&] { last_ns = sim.now().nanos(); });
  }
  sim.Run();
  return static_cast<double>(last_ns) / 1e6;
}

// Every host on leaf 0 streams to its counterpart on leaf 1 concurrently;
// returns last-arrival time in ms. Exercises the leaf->spine uplinks, whose
// bandwidth encodes the oversubscription ratio.
double MeasureShuffle(const NetworkSpec& spec, bool flow_mode,
                      double oversub) {
  sim::Simulator sim;
  net::DcnFabric dcn(&sim, MakeParams(spec, flow_mode, oversub));
  for (int h = 0; h < spec.hosts; ++h) dcn.AddHost(net::HostId(h));
  std::int64_t last_ns = 0;
  for (int s = 0; s < spec.hosts_per_leaf; ++s) {
    dcn.Send(net::HostId(s), net::HostId(spec.hosts_per_leaf + s),
             MiB(spec.message_mib), [&] { last_ns = sim.now().nanos(); });
  }
  sim.Run();
  return static_cast<double>(last_ns) / 1e6;
}

sweep::Metrics Measure(const Scenario& sc, const MeasureCtx& ctx,
                       const sweep::ParamPoint& p) {
  const NetworkSpec& spec = sc.network.For(ctx.quick);
  const double oversub = p.GetDouble("oversub");
  const int fan_in = static_cast<int>(p.GetInt("fan_in"));
  const double incast_flow = MeasureIncast(spec, true, oversub, fan_in);
  const double incast_abstract = MeasureIncast(spec, false, oversub, fan_in);
  const double shuffle_flow = MeasureShuffle(spec, true, oversub);
  const double shuffle_abstract = MeasureShuffle(spec, false, oversub);
  return {{"incast_flow_ms", incast_flow},
          {"incast_abstract_ms", incast_abstract},
          {"incast_slowdown", incast_flow / incast_abstract},
          {"shuffle_flow_ms", shuffle_flow},
          {"shuffle_abstract_ms", shuffle_abstract}};
}

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

std::map<std::string, double> Summarize(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>& points, bool deterministic) {
  // The shuffle is fan_in-independent, so any one row per oversub value
  // carries it; the penalty headline is the largest/smallest swept ratio.
  double max_incast_slowdown = 0, uncontended_max_diff_ms = 0;
  double oversub_lo = 0, oversub_hi = 0, shuffle_lo = 0, shuffle_hi = 0;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double oversub = points[i].GetDouble("oversub");
    max_incast_slowdown =
        std::max(max_incast_slowdown, MetricOf(row, "incast_slowdown"));
    if (points[i].GetInt("fan_in") == 1) {
      uncontended_max_diff_ms =
          std::max(uncontended_max_diff_ms,
                   std::abs(MetricOf(row, "incast_flow_ms") -
                            MetricOf(row, "incast_abstract_ms")));
    }
    if (oversub_lo == 0 || oversub < oversub_lo) {
      oversub_lo = oversub;
      shuffle_lo = MetricOf(row, "shuffle_flow_ms");
    }
    if (oversub > oversub_hi) {
      oversub_hi = oversub;
      shuffle_hi = MetricOf(row, "shuffle_flow_ms");
    }
  }
  return {{"max_incast_slowdown", max_incast_slowdown},
          {"uncontended_max_diff_ms", uncontended_max_diff_ms},
          {"oversub_shuffle_penalty",
           shuffle_lo > 0 ? shuffle_hi / shuffle_lo : 0.0},
          {"deterministic", deterministic ? 1.0 : 0.0}};
}

}  // namespace

Family MakeNetworkFamily() {
  Family f;
  f.name = "network";
  f.description =
      "contended flow-level Clos DCN vs the abstract per-NIC fabric: "
      "oversubscription x incast fan-in";
  f.axes = {{"oversub", AxisKind::kDouble}, {"fan_in", AxisKind::kInt}};
  f.measure = Measure;
  f.summarize = Summarize;
  return f;
}

}  // namespace pw::scenario
