// Family "multitenant": N weighted clients drive Poisson open-loop traffic
// through bounded admission queues into the weighted-stride gang scheduler.
// Extracted from bench/bench_multitenant.cpp; the bench main keeps its
// proportional-share and determinism gates and runs this harness through
// RunScenario.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "pathways/pathways.h"
#include "scenario/family_common.h"
#include "workload/workload.h"
#include "xlasim/compiled_function.h"

namespace pw::scenario {
namespace {

bool Overloaded(double scale, int clients, const std::vector<double>& w) {
  // Proportional share only binds while every client is backlogged: the
  // largest-weight client must be offered more than its weighted share of
  // capacity. 1.25x margin keeps marginal points out of the gate.
  double wsum = 0, wmax = 0;
  for (double x : w) {
    wsum += x;
    wmax = std::max(wmax, x);
  }
  return scale >= 1.25 * static_cast<double>(clients) * wmax / wsum;
}

sweep::Metrics Measure(const Scenario& sc, const MeasureCtx& ctx,
                       const sweep::ParamPoint& p) {
  using namespace pw::pathways;
  using namespace pw::workload;
  const MultitenantSpec& spec = sc.multitenant.For(ctx.quick);
  const int clients = static_cast<int>(p.GetInt("clients"));
  const double scale = p.GetDouble("rate_scale");
  const std::string& policy = p.GetString("policy");

  sim::Simulator sim;
  auto cluster = BuildCluster(&sim, sc.cluster, BaseSystemParams(sc.cluster));
  PathwaysOptions options;
  options.policy = SchedulerPolicy::kWeightedStride;
  // Shallow window: the policy decides often.
  options.max_inflight_gangs = spec.max_inflight_gangs;
  PathwaysRuntime runtime(cluster.get(), options);

  const Duration warmup = Duration::Millis(spec.warmup_ms);
  const Duration horizon = Duration::Millis(spec.horizon_ms);

  std::vector<double> weights(static_cast<std::size_t>(clients));
  double wsum = 0;
  for (int i = 0; i < clients; ++i) {
    weights[static_cast<std::size_t>(i)] = static_cast<double>(1 << i);
    wsum += weights[static_cast<std::size_t>(i)];
  }

  const int shards = cluster->num_devices();
  std::vector<std::unique_ptr<PathwaysProgram>> programs;
  std::vector<std::unique_ptr<OpenLoopGenerator>> gens;
  std::vector<Client*> tenants;
  for (int i = 0; i < clients; ++i) {
    Client* client = runtime.CreateClient(weights[static_cast<std::size_t>(i)]);
    tenants.push_back(client);
    auto slice = client->AllocateSlice(shards).value();
    ProgramBuilder pb("serve" + std::to_string(i));
    pb.Call(xlasim::CompiledFunction::Synthetic(
                "infer", shards, Duration::Micros(spec.step_us),
                net::CollectiveKind::kAllReduce, spec.collective_bytes),
            slice, {});
    programs.push_back(
        std::make_unique<PathwaysProgram>(std::move(pb).Build()));

    OpenLoopSpec ospec;
    ospec.process = ArrivalProcess::kPoisson;
    // Equal offered load per client: shares then reflect the scheduler's
    // weights, not the arrival mix.
    ospec.rate_per_sec = scale * spec.nominal_pod_per_sec / clients;
    ospec.horizon = horizon;
    ospec.seed = static_cast<std::uint64_t>(spec.seed_base) +
                 1000 * p.index() + static_cast<std::uint64_t>(i);
    AdmissionOptions adm;
    adm.capacity = static_cast<std::size_t>(spec.queue_capacity);
    // Larger than max_inflight_gangs so the stride scheduler — not each
    // client's submit round-trip — is the bottleneck under overload.
    adm.max_outstanding = spec.max_outstanding;
    adm.policy = policy == "reject-retry" ? ShedPolicy::kRejectWithRetry
                                          : ShedPolicy::kDropTail;
    adm.retry.max_attempts = spec.retry_max_attempts;
    adm.retry.initial_backoff = Duration::Micros(spec.retry_initial_backoff_us);
    adm.retry.max_backoff = Duration::Millis(spec.retry_max_backoff_ms);
    gens.push_back(std::make_unique<OpenLoopGenerator>(
        client, programs.back().get(), ospec, adm));
    gens.back()->Start();
  }

  // Every reported metric covers the same steady-state window
  // [warmup, horizon): at warmup the counters are snapshotted, the
  // distribution state (latency samples, depth histograms) is reset, and
  // the scheduler's cumulative per-client accounting is baselined.
  std::vector<std::int64_t> base(static_cast<std::size_t>(clients), 0);
  std::int64_t base_arrivals = 0, base_sheds = 0, base_gangs = 0;
  double base_wait_us = 0;
  sim.ScheduleAt(TimePoint() + warmup, [&] {
    for (int i = 0; i < clients; ++i) {
      LatencyRecorder& r = gens[static_cast<std::size_t>(i)]->recorder();
      base[static_cast<std::size_t>(i)] = r.completions();
      base_arrivals += r.arrivals();
      base_sheds += r.sheds();
      r.BeginMeasurementWindow();
    }
    for (Client* t : tenants) {
      const auto stats = runtime.SchedStatsFor(t->id());
      base_gangs += stats.gangs_dispatched;
      base_wait_us += stats.queue_wait.ToMicros();
    }
  });
  sim.RunUntil(TimePoint() + horizon);

  const double window_s = (horizon - warmup).ToSeconds();
  std::vector<double> goodput(static_cast<std::size_t>(clients));
  double total = 0;
  std::int64_t arrivals = 0, sheds = 0, gangs = 0;
  double wait_us = 0;
  for (int i = 0; i < clients; ++i) {
    const LatencyRecorder& r = gens[static_cast<std::size_t>(i)]->recorder();
    goodput[static_cast<std::size_t>(i)] = static_cast<double>(
        r.completions() - base[static_cast<std::size_t>(i)]);
    total += goodput[static_cast<std::size_t>(i)];
    arrivals += r.arrivals();
    sheds += r.sheds();
  }
  arrivals -= base_arrivals;
  sheds -= base_sheds;
  for (Client* t : tenants) {
    const auto stats = runtime.SchedStatsFor(t->id());
    gangs += stats.gangs_dispatched;
    wait_us += stats.queue_wait.ToMicros();
  }
  gangs -= base_gangs;
  wait_us -= base_wait_us;
  const std::int64_t rebases = runtime.total_pass_rebases();

  LatencyRecorder merged(static_cast<std::size_t>(spec.queue_capacity));
  for (const auto& g : gens) merged.Merge(g->recorder());

  // Everything was sampled at the horizon; now drain the backlog (arrivals
  // have stopped) so no in-flight execution is torn down mid-run.
  sim.Run();

  const bool overloaded = Overloaded(scale, clients, weights);
  sweep::Metrics m;
  double share_err_max = 0;
  for (int i = 0; i < clients; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::string suffix = "_c" + std::to_string(i);
    const double share = total > 0 ? goodput[idx] / total : 0.0;
    const double target = weights[idx] / wsum;
    if (overloaded && target > 0) {
      share_err_max = std::max(share_err_max,
                               std::abs(share - target) / target);
    }
    m.emplace_back("share" + suffix, share);
    m.emplace_back("target" + suffix, target);
    m.emplace_back("goodput_per_s" + suffix, goodput[idx] / window_s);
  }
  m.emplace_back("goodput_total_per_s", total / window_s);
  m.emplace_back("share_err_max", share_err_max);
  m.emplace_back("overloaded", overloaded ? 1.0 : 0.0);
  m.emplace_back("shed_frac",
                 arrivals > 0 ? static_cast<double>(sheds) /
                                    static_cast<double>(arrivals)
                              : 0.0);
  m.emplace_back("p50_us", merged.LatencyUs(50));
  m.emplace_back("p95_us", merged.LatencyUs(95));
  m.emplace_back("p99_us", merged.LatencyUs(99));
  // Admission-queue depth a typical arrival found, and the slice of
  // end-to-end latency spent waiting in the *scheduler's* queues (per
  // dispatched gang) — together they locate where requests spend their
  // time as overload grows.
  m.emplace_back("qdepth_mean", merged.MeanQueueDepth());
  m.emplace_back("sched_wait_us_per_gang",
                 gangs > 0 ? wait_us / static_cast<double>(gangs) : 0.0);
  m.emplace_back("pass_rebases", static_cast<double>(rebases));
  return m;
}

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

std::map<std::string, double> Summarize(
    const Scenario&, bool quick, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>&, bool deterministic) {
  double gate_err = 0;
  for (const auto& row : table.rows()) {
    if (MetricOf(row, "overloaded") > 0.5) {
      gate_err = std::max(gate_err, MetricOf(row, "share_err_max"));
    }
  }
  return {{"max_share_err_overloaded", gate_err},
          {"share_tolerance", quick ? 0.10 : 0.05},
          {"deterministic", deterministic ? 1.0 : 0.0}};
}

}  // namespace

Family MakeMultitenantFamily() {
  Family f;
  f.name = "multitenant";
  f.description =
      "weighted open-loop clients through the stride gang scheduler "
      "(proportional share under overload)";
  f.axes = {{"clients", AxisKind::kInt},
            {"rate_scale", AxisKind::kDouble},
            {"policy", AxisKind::kString}};
  f.check_determinism = true;
  f.measure = Measure;
  f.summarize = Summarize;
  return f;
}

}  // namespace pw::scenario
