// Family "fig12_twoisland": §5.3 / Figure 12 — large decoder-only LMs
// trained data-parallel over two islands connected by DCN, vs one island
// with twice the devices. Extracted from bench/bench_fig12_twoisland.cpp.
//
// The model axis fixes the per-island core count (decoder64b -> 512,
// decoder136b -> 1024). Every point also re-runs the two-island arm on the
// flow-level Clos DCN (single spine at R=1: a non-blocking fat pipe) so the
// bench can gate "uncontended flow == analytic" at full system scale.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "models/step_builder.h"
#include "pathways/pathways.h"
#include "scenario/family_common.h"

namespace pw::scenario {
namespace {

using pathways::Client;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::VirtualSlice;

struct ModelPoint {
  models::TransformerConfig config;
  int cores_per_island = 0;
};

ModelPoint ModelFor(const std::string& name) {
  if (name == "decoder64b") {
    return {models::TransformerConfig::Decoder64B(), 512};
  }
  PW_CHECK(name == "decoder136b")
      << "fig12_twoisland: unknown model '" << name
      << "' (known: decoder64b, decoder136b)";
  return {models::TransformerConfig::Decoder136B(), 1024};
}

struct ArmResult {
  double tokens_per_sec = 0;
  double dcn_gb_per_step = 0;
};

ArmResult MeasureDataParallel(const Fig12Spec& spec, const ModelPoint& m,
                              int islands, int cores_per_island,
                              const hw::SystemParams& params) {
  using namespace pathways;
  sim::Simulator sim;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, islands,
                                               cores_per_island / 8, 8);
  PathwaysOptions options;
  options.max_inflight_gangs = spec.max_inflight_gangs;
  PathwaysRuntime runtime(cluster.get(), options);
  Client* client = runtime.CreateClient();
  models::StepBuilder builder(m.config, cluster->params());

  std::unique_ptr<PathwaysProgram> program;
  if (islands == 1) {
    ProgramBuilder pb("spmd");
    auto slice = client->AllocateSlice(cores_per_island).value();
    pb.Call(builder.SpmdStepFunction(cores_per_island,
                                     cluster->island(0).collectives(),
                                     spec.model_parallel),
            slice, {});
    program = std::make_unique<PathwaysProgram>(std::move(pb).Build());
  } else {
    std::vector<VirtualSlice> slices;
    for (int i = 0; i < islands; ++i) {
      slices.push_back(
          client->AllocateSlice(cores_per_island, hw::IslandId(i)).value());
    }
    program = std::make_unique<PathwaysProgram>(builder.BuildMultiIslandStep(
        slices, spec.chunks, cluster->island(0).collectives()));
  }
  const auto meas = models::MeasureTraining(client, program.get(),
                                            m.config.tokens_per_batch,
                                            spec.steps);
  ArmResult r;
  r.tokens_per_sec = meas.tokens_per_sec;
  r.dcn_gb_per_step = static_cast<double>(cluster->dcn().bytes_sent()) /
                      (static_cast<double>(spec.steps) * 1e9);
  return r;
}

sweep::Metrics Measure(const Scenario& sc, const MeasureCtx& ctx,
                       const sweep::ParamPoint& p) {
  const Fig12Spec& spec = sc.fig12.For(ctx.quick);
  const ModelPoint m = ModelFor(p.GetString("model"));
  const hw::SystemParams params = BaseSystemParams(sc.cluster);

  const ArmResult two =
      MeasureDataParallel(spec, m, 2, m.cores_per_island, params);
  const ArmResult one =
      MeasureDataParallel(spec, m, 1, 2 * m.cores_per_island, params);

  // Flow-level validation arm: single spine at R=1 is non-blocking, so the
  // pairwise cross-island gradient exchange is uncontended and must land on
  // the analytic fabric's throughput (contention itself is the network
  // family's job).
  hw::SystemParams flow_params = params;
  flow_params.dcn.clos.enabled = true;
  flow_params.dcn.clos.hosts_per_leaf = 8;
  flow_params.dcn.clos.num_spines = 1;
  flow_params.dcn.clos.oversubscription = 1.0;
  const ArmResult flow =
      MeasureDataParallel(spec, m, 2, m.cores_per_island, flow_params);

  return {{"two_island_tokens_per_sec", two.tokens_per_sec},
          {"one_island_tokens_per_sec", one.tokens_per_sec},
          {"efficiency", two.tokens_per_sec / one.tokens_per_sec},
          {"dcn_gb_per_step", two.dcn_gb_per_step},
          {"flow_tokens_per_sec", flow.tokens_per_sec},
          {"flow_vs_analytic_ratio",
           flow.tokens_per_sec / two.tokens_per_sec}};
}

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

std::map<std::string, double> Summarize(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>& points, bool deterministic) {
  std::map<std::string, double> summary;
  double worst_flow_drift = 0;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    summary["efficiency_" + points[i].GetString("model")] =
        MetricOf(row, "efficiency");
    worst_flow_drift =
        std::max(worst_flow_drift,
                 std::abs(MetricOf(row, "flow_vs_analytic_ratio") - 1.0));
  }
  summary["worst_flow_drift"] = worst_flow_drift;
  summary["deterministic"] = deterministic ? 1.0 : 0.0;
  return summary;
}

}  // namespace

Family MakeFig12Family() {
  Family f;
  f.name = "fig12_twoisland";
  f.description =
      "Fig. 12: data-parallel LM training over two islands vs one island "
      "with 2x devices, plus the flow-level Clos validation arm";
  f.axes = {{"model", AxisKind::kString}};
  // Three full training measurements per point: too slow to rerun the whole
  // grid serially for the generic determinism check (the bench's own gates
  // compare against fixed paper numbers instead).
  f.check_determinism = false;
  f.measure = Measure;
  f.summarize = Summarize;
  return f;
}

}  // namespace pw::scenario
