// Families "serving" and "serving_disagg": iteration-level batching with
// per-sequence KV in the ObjectStore, colocated (continuous vs static under
// KV budgets) and disaggregated (prefill islands streaming KV over the DCN
// to decode islands, vs a colocated arm at equal device count). Extracted
// from bench/bench_serving.cpp.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/transformer.h"
#include "pathways/pathways.h"
#include "scenario/family_common.h"
#include "serving/serving.h"

namespace pw::scenario {
namespace {

using pathways::PathwaysRuntime;
using serving::BatcherConfig;
using serving::BatchPolicy;
using serving::KvCacheConfig;
using serving::ServingMetrics;
using serving::ServingTenant;
using serving::ServingTrace;
using serving::TenantSpec;

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

// --- family "serving" ------------------------------------------------------

// Projected full KV of one worst-case sequence, per device shard.
int MaxKvTokens(const ServingSpec& spec) {
  return spec.max_prefill_tokens + spec.max_decode_tokens - 1;
}

TenantSpec ColocatedTenantSpec(const ServingSpec& spec, int t, double rate,
                               Duration horizon) {
  TenantSpec ts;
  ts.arrivals.process = t == 0 ? workload::ArrivalProcess::kPoisson
                               : workload::ArrivalProcess::kUniform;
  ts.arrivals.rate_per_sec = rate / 2;
  ts.arrivals.horizon = horizon;
  ts.arrivals.seed = static_cast<std::uint64_t>(spec.arrival_seed_base) +
                     static_cast<std::uint64_t>(t) *
                         static_cast<std::uint64_t>(spec.arrival_seed_stride);
  ts.min_prefill_tokens = spec.min_prefill_tokens;
  ts.max_prefill_tokens = spec.max_prefill_tokens;
  ts.min_decode_tokens = spec.min_decode_tokens;
  ts.max_decode_tokens = spec.max_decode_tokens;
  ts.token_seed = static_cast<std::uint64_t>(spec.token_seed_base) +
                  static_cast<std::uint64_t>(t);
  return ts;
}

sweep::Metrics MeasureServing(const Scenario& sc, const MeasureCtx& ctx,
                              const sweep::ParamPoint& p) {
  const ServingSpec& spec = sc.serving.For(ctx.quick);
  const double rate = p.GetDouble("rate_per_s");  // total across tenants
  const bool continuous = p.GetInt("policy_continuous") != 0;
  const double kv_scale = p.GetDouble("kv_scale");
  const Duration horizon = Duration::Millis(spec.horizon_ms);

  // Aggregate projected KV working set of a full batch, per device shard.
  const Bytes working_set_per_shard =
      static_cast<Bytes>(spec.max_batch) * MaxKvTokens(spec) *
      spec.kv_bytes_per_token;

  sim::Simulator sim;
  hw::SystemParams params = BaseSystemParams(sc.cluster);
  BatcherConfig cfg;
  cfg.policy = continuous ? BatchPolicy::kContinuous : BatchPolicy::kStatic;
  cfg.max_batch = spec.max_batch;
  cfg.token_budget = spec.token_budget;
  cfg.kv_budget_per_device = static_cast<Bytes>(
      kv_scale * static_cast<double>(working_set_per_shard));
  // HBM far below the working set (plus fixed staging headroom): even the
  // 0.5x-budget point must overflow KV into host DRAM to keep serving.
  params.hbm_capacity =
      static_cast<Bytes>(spec.hbm_frac_of_working_set *
                         static_cast<double>(working_set_per_shard)) +
      cfg.activation_bytes_per_shard + cfg.output_bytes_per_shard +
      KiB(spec.hbm_headroom_kib);
  auto cluster = BuildCluster(&sim, sc.cluster, params);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
  pathways::Client* client = runtime.CreateClient();
  pathways::VirtualSlice slice =
      client->AllocateSlice(cluster->num_devices()).value();

  ServingMetrics metrics;
  ServingTrace trace;
  serving::Batcher batcher(client, slice,
                           KvCacheConfig{spec.kv_bytes_per_token}, cfg,
                           &metrics, &trace);

  ServingTenant tenant0(0, &batcher, &sim,
                        ColocatedTenantSpec(spec, 0, rate, horizon));
  ServingTenant tenant1(1, &batcher, &sim,
                        ColocatedTenantSpec(spec, 1, rate, horizon));
  tenant0.Start();
  tenant1.Start();
  sim.Run();

  runtime.object_store().CheckNoReservationWedge();
  const bool all_accounted =
      batcher.finished() + batcher.shed() == metrics.arrivals();
  const bool deadlocked =
      sim.Deadlocked() || !batcher.idle() || !all_accounted;
  const pathways::ObjectStore& store = runtime.object_store();
  const double seconds = sim.now().ToSeconds();

  sweep::Metrics m;
  m.emplace_back("arrivals", static_cast<double>(metrics.arrivals()));
  m.emplace_back("finished", static_cast<double>(batcher.finished()));
  m.emplace_back("shed", static_cast<double>(batcher.shed()));
  m.emplace_back("iterations", static_cast<double>(batcher.iterations()));
  m.emplace_back("goodput_per_s",
                 static_cast<double>(batcher.finished()) / seconds);
  m.emplace_back("tokens_per_s",
                 static_cast<double>(metrics.prefills() + metrics.tokens()) /
                     seconds);
  m.emplace_back("ttft_p50_us", metrics.TtftUs(50));
  m.emplace_back("ttft_p99_us", metrics.TtftUs(99));
  m.emplace_back("token_p50_us", metrics.TokenLatencyUs(50));
  m.emplace_back("token_p99_us", metrics.TokenLatencyUs(99));
  m.emplace_back("spills", static_cast<double>(store.spills_completed()));
  m.emplace_back("dram_reads", static_cast<double>(store.dram_reads()));
  m.emplace_back("kv_grows", static_cast<double>(store.grows_completed()));
  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("leaked_buffers",
                 static_cast<double>(store.live_buffers()));
  // Trace checksum folded into doubles: any nondeterminism in event order
  // shows up in the cross-thread-count CSV comparison.
  m.emplace_back("trace_lo",
                 static_cast<double>(trace.Checksum() & 0xffffffffULL));
  m.emplace_back("trace_hi", static_cast<double>(trace.Checksum() >> 32));
  return m;
}

std::map<std::string, double> SummarizeServing(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>& points, bool deterministic) {
  double max_rate = 0, min_rate = 1e18;
  for (const auto& pt : points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
    min_rate = std::min(min_rate, pt.GetDouble("rate_per_s"));
  }

  bool any_deadlock = false;
  double spills_at_half_budget = 0;
  double p99_ttft_low_rate_cont = 0;
  // goodput[policy][kv_scale] at the highest swept rate.
  std::map<std::pair<int, double>, double> top_rate_goodput;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double rate = points[i].GetDouble("rate_per_s");
    const bool cont = points[i].GetInt("policy_continuous") != 0;
    const double scale = points[i].GetDouble("kv_scale");
    any_deadlock |= MetricOf(row, "deadlocked") > 0.5;
    if (scale == 0.5) spills_at_half_budget += MetricOf(row, "spills");
    if (cont && rate == min_rate) {
      p99_ttft_low_rate_cont =
          std::max(p99_ttft_low_rate_cont, MetricOf(row, "ttft_p99_us"));
    }
    if (rate == max_rate) {
      top_rate_goodput[{cont ? 1 : 0, scale}] =
          MetricOf(row, "goodput_per_s");
    }
  }

  // Continuous-vs-static goodput at the highest swept rate, worst case
  // over KV budget scales.
  double min_speedup = 1e18;
  for (const auto& [key, goodput] : top_rate_goodput) {
    if (key.first != 1) continue;
    const auto st = top_rate_goodput.find({0, key.second});
    if (st == top_rate_goodput.end() || st->second <= 0) continue;
    min_speedup = std::min(min_speedup, goodput / st->second);
  }

  return {{"deadlocks", any_deadlock ? 1.0 : 0.0},
          {"continuous_goodput_x", min_speedup},
          {"spills_at_half_budget", spills_at_half_budget},
          {"p99_ttft_low_rate_us", p99_ttft_low_rate_cont},
          {"deterministic", deterministic ? 1.0 : 0.0}};
}

// --- family "serving_disagg" -----------------------------------------------

int DisaggMaxKvTokens(const DisaggSpec& spec) {
  return spec.max_prefill_tokens + spec.max_decode_tokens - 1;
}

TenantSpec DisaggTenantSpec(const DisaggSpec& spec, int t, double rate,
                            Duration horizon) {
  TenantSpec ts;
  ts.arrivals.process = t == 0 ? workload::ArrivalProcess::kPoisson
                               : workload::ArrivalProcess::kUniform;
  ts.arrivals.rate_per_sec = rate / 2;
  ts.arrivals.horizon = horizon;
  ts.arrivals.seed = static_cast<std::uint64_t>(spec.arrival_seed_base) +
                     static_cast<std::uint64_t>(t) *
                         static_cast<std::uint64_t>(spec.arrival_seed_stride);
  ts.min_prefill_tokens = spec.min_prefill_tokens;
  ts.max_prefill_tokens = spec.max_prefill_tokens;
  ts.min_decode_tokens = spec.min_decode_tokens;
  ts.max_decode_tokens = spec.max_decode_tokens;
  ts.token_seed = static_cast<std::uint64_t>(spec.token_seed_base) +
                  static_cast<std::uint64_t>(t);
  return ts;
}

// Decode-island KV working set per shard at the reference half:half split;
// HBM is fixed across every point at half of it (plus staging headroom).
Bytes DisaggHbm(const DisaggSpec& spec, const BatcherConfig& cfg,
                int devices_per_arm) {
  const models::TransformerConfig model =
      models::TransformerConfig::Decoder3B();
  const Bytes kv_per_shard = model.KvBytesPerToken() / (devices_per_arm / 2);
  const Bytes working_set = static_cast<Bytes>(spec.max_batch) *
                            DisaggMaxKvTokens(spec) * kv_per_shard;
  return working_set / 2 + cfg.activation_bytes_per_shard +
         cfg.output_bytes_per_shard + MiB(spec.hbm_headroom_mib);
}

sweep::Metrics MeasureDisagg(const Scenario& sc, const MeasureCtx& ctx,
                             const sweep::ParamPoint& p) {
  const DisaggSpec& spec = sc.disagg.For(ctx.quick);
  const double rate = p.GetDouble("rate_per_s");  // total across tenants
  const int prefill_devices = static_cast<int>(p.GetInt("prefill_devices"));
  // Per arm: P prefill + (devices_per_host - P) decode.
  const int arm_devices = sc.cluster.devices_per_host;
  const int decode_devices = arm_devices - prefill_devices;
  const double dcn_scale = p.GetDouble("dcn_scale");
  const Duration horizon = Duration::Millis(spec.horizon_ms);
  const models::TransformerConfig model =
      models::TransformerConfig::Decoder3B();

  auto base_cfg = [&] {
    BatcherConfig cfg;
    cfg.policy = BatchPolicy::kContinuous;
    cfg.max_batch = spec.max_batch;
    cfg.token_budget = spec.token_budget;
    return cfg;
  };
  // Projected-KV admission budget for a decode role with `shards` devices.
  auto kv_budget = [&](int shards) {
    return static_cast<Bytes>(spec.max_batch) * DisaggMaxKvTokens(spec) *
           (model.KvBytesPerToken() / shards);
  };

  sweep::Metrics m;
  bool deadlocked = false;
  double leaked = 0;

  // --- Disaggregated arm: P prefill shards (island 0) + D decode (1) ---
  {
    sim::Simulator sim;
    hw::SystemParams params = BaseSystemParams(sc.cluster);
    params.hbm_capacity = DisaggHbm(spec, base_cfg(), arm_devices);
    auto cluster = BuildCluster(&sim, sc.cluster, params);
    for (int h = 0; h < cluster->num_hosts(); ++h) {
      cluster->dcn().SetNicBandwidthScale(net::HostId(h), dcn_scale);
    }
    PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
    pathways::Client* client = runtime.CreateClient();

    const auto prefill_costs =
        serving::ModelServingCosts::Derive(model, params, prefill_devices);
    const auto decode_costs =
        serving::ModelServingCosts::Derive(model, params, decode_devices);
    ServingMetrics metrics;
    ServingTrace trace;
    BatcherConfig pcfg = base_cfg();
    pcfg.role = serving::BatcherRole::kPrefill;
    prefill_costs.Apply(&pcfg);
    serving::Batcher prefill(
        client,
        client->AllocateSlice(prefill_devices, hw::IslandId(0)).value(),
        prefill_costs.KvConfig(), pcfg, &metrics, &trace);
    BatcherConfig dcfg = base_cfg();
    dcfg.role = serving::BatcherRole::kDecode;
    dcfg.kv_budget_per_device = kv_budget(decode_devices);
    decode_costs.Apply(&dcfg);
    serving::Batcher decode(
        client,
        client->AllocateSlice(decode_devices, hw::IslandId(1)).value(),
        decode_costs.KvConfig(), dcfg, &metrics, &trace);
    serving::DisaggRouter router({&prefill}, {&decode}, &metrics, &trace);

    auto sink = [&router](serving::Request req) {
      return router.Offer(std::move(req));
    };
    ServingTenant tenant0(0, sink, &sim, DisaggTenantSpec(spec, 0, rate,
                                                          horizon));
    ServingTenant tenant1(1, sink, &sim, DisaggTenantSpec(spec, 1, rate,
                                                          horizon));
    tenant0.Start();
    tenant1.Start();
    sim.Run();

    runtime.object_store().CheckNoReservationWedge();
    const bool all_accounted =
        metrics.finished() + metrics.sheds() == metrics.arrivals();
    deadlocked |= sim.Deadlocked() || !router.idle() || !all_accounted;
    leaked += static_cast<double>(runtime.object_store().live_buffers());
    const double seconds = sim.now().ToSeconds();
    m.emplace_back("arrivals", static_cast<double>(metrics.arrivals()));
    m.emplace_back("d_finished", static_cast<double>(metrics.finished()));
    m.emplace_back("d_shed", static_cast<double>(metrics.sheds()));
    m.emplace_back("d_goodput_per_s",
                   static_cast<double>(metrics.finished()) / seconds);
    m.emplace_back("d_ttft_p50_us", metrics.TtftUs(50));
    m.emplace_back("d_ttft_p99_us", metrics.TtftUs(99));
    m.emplace_back("d_token_p50_us", metrics.TokenLatencyUs(50));
    m.emplace_back("d_token_p99_us", metrics.TokenLatencyUs(99));
    m.emplace_back("d_transfers",
                   static_cast<double>(router.transfers_completed()));
    m.emplace_back("d_reprefills", static_cast<double>(router.reprefills()));
    m.emplace_back("d_kv_mib",
                   static_cast<double>(router.bytes_transferred()) /
                       static_cast<double>(MiB(1)));
    m.emplace_back(
        "d_spills",
        static_cast<double>(runtime.object_store().spills_completed()));
    m.emplace_back("d_trace_lo",
                   static_cast<double>(trace.Checksum() & 0xffffffffULL));
    m.emplace_back("d_trace_hi", static_cast<double>(trace.Checksum() >> 32));
  }

  // --- Colocated baseline: same model, same total device count ---
  {
    sim::Simulator sim;
    hw::SystemParams params = BaseSystemParams(sc.cluster);
    params.hbm_capacity = DisaggHbm(spec, base_cfg(), arm_devices);
    auto cluster = BuildCluster(&sim, sc.cluster, params);
    PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});
    pathways::Client* client = runtime.CreateClient();

    const auto costs =
        serving::ModelServingCosts::Derive(model, params, arm_devices);
    ServingMetrics metrics;
    ServingTrace trace;
    BatcherConfig cfg = base_cfg();
    cfg.kv_budget_per_device = kv_budget(arm_devices);
    costs.Apply(&cfg);
    serving::Batcher batcher(
        client, client->AllocateSlice(arm_devices, hw::IslandId(0)).value(),
        costs.KvConfig(), cfg, &metrics, &trace);

    ServingTenant tenant0(0, &batcher, &sim, DisaggTenantSpec(spec, 0, rate,
                                                              horizon));
    ServingTenant tenant1(1, &batcher, &sim, DisaggTenantSpec(spec, 1, rate,
                                                              horizon));
    tenant0.Start();
    tenant1.Start();
    sim.Run();

    runtime.object_store().CheckNoReservationWedge();
    const bool all_accounted =
        batcher.finished() + batcher.shed() == metrics.arrivals();
    deadlocked |= sim.Deadlocked() || !batcher.idle() || !all_accounted;
    leaked += static_cast<double>(runtime.object_store().live_buffers());
    const double seconds = sim.now().ToSeconds();
    m.emplace_back("c_finished", static_cast<double>(batcher.finished()));
    m.emplace_back("c_shed", static_cast<double>(batcher.shed()));
    m.emplace_back("c_goodput_per_s",
                   static_cast<double>(batcher.finished()) / seconds);
    m.emplace_back("c_ttft_p50_us", metrics.TtftUs(50));
    m.emplace_back("c_ttft_p99_us", metrics.TtftUs(99));
    m.emplace_back("c_token_p50_us", metrics.TokenLatencyUs(50));
    m.emplace_back("c_token_p99_us", metrics.TokenLatencyUs(99));
    m.emplace_back("c_trace_lo",
                   static_cast<double>(trace.Checksum() & 0xffffffffULL));
    m.emplace_back("c_trace_hi", static_cast<double>(trace.Checksum() >> 32));
  }

  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("leaked_buffers", leaked);
  return m;
}

std::map<std::string, double> SummarizeDisagg(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>& points, bool deterministic) {
  double max_rate = 0;
  for (const auto& pt : points) {
    max_rate = std::max(max_rate, pt.GetDouble("rate_per_s"));
  }

  bool any_deadlock = false;
  double total_transfers = 0;
  double total_disagg_spills = 0;
  // Best (lowest) disagg p99 token latency over ratios at the top rate on
  // the healthy fabric, and colocated's p99 at the same rate.
  double best_d_tok_p99 = 1e18, best_d_ttft_p99 = 0, top_c_tok_p99 = 0;
  int best_ratio = 0;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double rate = points[i].GetDouble("rate_per_s");
    const int pd = static_cast<int>(points[i].GetInt("prefill_devices"));
    const double dcn = points[i].GetDouble("dcn_scale");
    any_deadlock |= MetricOf(row, "deadlocked") > 0.5;
    total_transfers += MetricOf(row, "d_transfers");
    total_disagg_spills += MetricOf(row, "d_spills");
    const double d_tok = MetricOf(row, "d_token_p99_us");
    if (rate == max_rate && dcn == 1.0) {
      top_c_tok_p99 = MetricOf(row, "c_token_p99_us");
      if (d_tok < best_d_tok_p99) {
        best_d_tok_p99 = d_tok;
        best_d_ttft_p99 = MetricOf(row, "d_ttft_p99_us");
        best_ratio = pd;
      }
    }
  }

  return {{"deadlocks", any_deadlock ? 1.0 : 0.0},
          {"best_ratio_prefill_devices", static_cast<double>(best_ratio)},
          {"best_d_token_p99_us", best_d_tok_p99},
          {"top_rate_c_token_p99_us", top_c_tok_p99},
          {"best_d_ttft_p99_us", best_d_ttft_p99},
          {"transfers", total_transfers},
          {"disagg_spills", total_disagg_spills},
          {"deterministic", deterministic ? 1.0 : 0.0}};
}

}  // namespace

Family MakeServingFamily() {
  Family f;
  f.name = "serving";
  f.description =
      "continuous vs static batching with KV caches under memory pressure "
      "(rate x policy x KV-budget grid)";
  f.axes = {{"rate_per_s", AxisKind::kDouble},
            {"policy_continuous", AxisKind::kInt},
            {"kv_scale", AxisKind::kDouble}};
  f.check_determinism = true;
  f.measure = MeasureServing;
  f.summarize = SummarizeServing;
  return f;
}

Family MakeServingDisaggFamily() {
  Family f;
  f.name = "serving_disagg";
  f.description =
      "disaggregated prefill/decode over DCN with cross-island KV transfer "
      "vs a colocated arm at equal device count";
  f.axes = {{"rate_per_s", AxisKind::kDouble},
            {"prefill_devices", AxisKind::kInt},
            {"dcn_scale", AxisKind::kDouble}};
  f.check_determinism = true;
  f.measure = MeasureDisagg;
  f.summarize = SummarizeDisagg;
  return f;
}

}  // namespace pw::scenario
