// Family "parallel": scaling microbenchmark for the partitioned
// (conservatively synchronized) event engine. Each grid point runs the
// same cross-island ring workload twice on a PartitionedCluster — once on
// one sim-thread (the serial baseline: identical engine, identical
// schedule) and once on the point's parallel thread count — and reports
// events/sec for both plus whether the canonically merged event traces are
// byte-identical. The trace comparison is the determinism contract of
// docs/PARALLEL.md surfaced as a metric the bench can gate on; wall-clock
// speedup is only meaningful on multi-core hosts (bench_parallel arms its
// >= 2x gate conditionally).
//
// Workload: `islands` chains, one starting on each island. A hop is an
// intra-island ICI transfer (dev 0 -> dev 1) followed by a cross-island
// message to the next island in the ring; the chains rotate concurrently,
// so at any instant every LP has work and the cross-LP channels stay busy.
// Per-destination logs are appended only by events on the owning LP (no
// shared mutable state between LPs) and merged after the run by the
// deterministic (time, island, seq) sort.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "hw/partitioned_cluster.h"
#include "scenario/family_common.h"
#include "sim/partition.h"

namespace pw::scenario {
namespace {

// One merged trace entry: (delivery time ns, destination island, per-island
// sequence). The per-island logs are deterministic, so the sorted merge is
// too — byte-equality of two WorkloadResults is the determinism gate.
using Trace = std::vector<std::tuple<std::int64_t, int, std::int64_t>>;

struct WorkloadResult {
  Trace trace;
  std::int64_t events = 0;     // engine events executed, all LPs
  std::int64_t delivered = 0;  // cross-island messages delivered
  double wall_sec = 0;
};

WorkloadResult RunRing(const ParallelSpec& spec, int islands, int threads) {
  sim::PartitionedSimulator part(
      {.num_lps = islands,
       .threads = threads,
       .lookahead = Duration::Micros(spec.lookahead_us)});
  hw::PartitionedCluster::Options opts;
  opts.islands = islands;
  opts.devices_per_host = spec.devices_per_host;
  opts.params.host_jitter_frac = 0;
  hw::PartitionedCluster pc(&part, opts);

  // logs[i] is written only by events executing on LP i.
  std::vector<std::vector<std::int64_t>> logs(
      static_cast<std::size_t>(islands));
  auto step = std::make_shared<std::function<void(int, int)>>();
  *step = [&, step](int island, int n) {
    if (n >= spec.steps) return;
    hw::Island& isl = pc.island_cluster(island).island(0);
    isl.Transfer(hw::DeviceId(0), hw::DeviceId(1), KiB(spec.ici_kib))
        .Then([&, step, island, n](sim::Unit) {
          const int dst = (island + 1) % islands;
          pc.SendCrossIsland(island, dst, KiB(spec.dcn_kib),
                             [&, step, dst, n] {
                               logs[static_cast<std::size_t>(dst)].push_back(
                                   pc.engine().lp(dst).now().nanos());
                               (*step)(dst, n + 1);
                             });
        });
  };
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < islands; ++i) {
    part.lp(i).ScheduleAt(TimePoint::FromNanos(0),
                          [&, step, i] { (*step)(i, 0); });
  }
  part.Run();
  const auto stop = std::chrono::steady_clock::now();
  PW_CHECK(!part.Deadlocked());

  WorkloadResult r;
  r.wall_sec = std::chrono::duration<double>(stop - start).count();
  r.events = part.TotalEventsExecuted();
  r.delivered = pc.channels().messages_delivered();
  for (int i = 0; i < islands; ++i) {
    const auto& log = logs[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < log.size(); ++k) {
      r.trace.emplace_back(log[k], i, static_cast<std::int64_t>(k));
    }
  }
  std::sort(r.trace.begin(), r.trace.end());
  return r;
}

sweep::Metrics Measure(const Scenario& sc, const MeasureCtx& ctx,
                       const sweep::ParamPoint& p) {
  const ParallelSpec& spec = sc.parallel.For(ctx.quick);
  const int islands = static_cast<int>(p.GetInt("islands"));
  // The parallel arm's thread count: --sim-threads when given, else every
  // core the host has, never more threads than LPs.
  int threads = ctx.sim_threads;
  if (threads <= 1) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::max(1, std::min(threads, islands));

  // Wall-clock on a sub-millisecond workload is mostly warmup noise; run
  // each arm twice and keep the faster wall time (the traces must agree
  // between repetitions — that is the determinism claim again).
  const auto timed = [&](int n_threads) {
    WorkloadResult r = RunRing(spec, islands, n_threads);
    const WorkloadResult rerun = RunRing(spec, islands, n_threads);
    PW_CHECK(rerun.trace == r.trace);
    r.wall_sec = std::min(r.wall_sec, rerun.wall_sec);
    return r;
  };
  RunRing(spec, islands, 1);  // untimed warmup: page-in, allocator growth
  const WorkloadResult serial = timed(1);
  const WorkloadResult parallel = timed(threads);
  const bool match = parallel.trace == serial.trace &&
                     parallel.events == serial.events &&
                     parallel.delivered == serial.delivered;
  const auto rate = [](const WorkloadResult& r) {
    return r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec : 0.0;
  };
  return {{"events", static_cast<double>(serial.events)},
          {"messages", static_cast<double>(serial.delivered)},
          {"sim_threads", static_cast<double>(threads)},
          {"serial_events_per_sec", rate(serial)},
          {"parallel_events_per_sec", rate(parallel)},
          {"speedup", rate(serial) > 0 ? rate(parallel) / rate(serial) : 0.0},
          {"trace_match", match ? 1.0 : 0.0}};
}

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

std::map<std::string, double> Summarize(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>&, bool) {
  double max_speedup = 0, all_match = 1;
  for (const auto& row : table.rows()) {
    max_speedup = std::max(max_speedup, MetricOf(row, "speedup"));
    all_match = std::min(all_match, MetricOf(row, "trace_match"));
  }
  return {{"max_speedup", max_speedup}, {"all_traces_match", all_match}};
}

}  // namespace

Family MakeParallelFamily() {
  Family f;
  f.name = "parallel";
  f.description =
      "partitioned-engine scaling: cross-island ring workload, 1 vs N "
      "sim-threads, trace-identity gated";
  f.axes = {{"islands", AxisKind::kInt}};
  // Wall-clock metrics are inherently non-reproducible; the determinism
  // claim lives in the trace_match metric instead.
  f.check_determinism = false;
  f.measure = Measure;
  f.summarize = Summarize;
  return f;
}

}  // namespace pw::scenario
