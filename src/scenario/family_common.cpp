#include "scenario/family_common.h"

namespace pw::scenario {

hw::SystemParams BaseSystemParams(const ClusterSpec& c) {
  hw::SystemParams p = c.preset == "gpu_vm" ? hw::SystemParams::GpuVmDefault()
                                            : hw::SystemParams::TpuDefault();
  if (c.host_jitter_frac) p.host_jitter_frac = *c.host_jitter_frac;
  if (c.hbm_capacity_mib) p.hbm_capacity = MiB(*c.hbm_capacity_mib);
  if (c.host_dram_capacity_mib) {
    p.host_dram_capacity = MiB(*c.host_dram_capacity_mib);
  }
  p.ici_flow.enabled = c.ici_flow;
  p.ici_flow.dims = c.ici_flow_dims;
  p.dcn.clos.enabled = c.dcn_clos;
  p.dcn.clos.hosts_per_leaf = c.clos_hosts_per_leaf;
  p.dcn.clos.num_spines = c.clos_num_spines;
  p.dcn.clos.oversubscription = c.clos_oversubscription;
  return p;
}

std::unique_ptr<hw::Cluster> BuildCluster(sim::Simulator* sim,
                                          const ClusterSpec& c,
                                          const hw::SystemParams& params) {
  if (c.preset == "config_a") {
    return hw::Cluster::ConfigA(sim, c.hosts_per_island, params);
  }
  if (c.preset == "config_b") {
    return hw::Cluster::ConfigB(sim, c.hosts_per_island, params);
  }
  if (c.preset == "gpu_vm") {
    return hw::Cluster::GpuVm(sim, c.hosts_per_island, params);
  }
  return std::make_unique<hw::Cluster>(sim, params, c.islands,
                                       c.hosts_per_island, c.devices_per_host);
}

}  // namespace pw::scenario
