// Family "faults": goodput and recovery latency under injected device
// crashes, stragglers, and link degrades, each grid point paired with its
// own fault-free baseline. Extracted from bench/bench_faults.cpp. The
// cluster shape is derived per point from the island_devices axis; the
// scenario's cluster section supplies only the base SystemParams.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "pathways/pathways.h"
#include "scenario/family_common.h"

namespace pw::scenario {
namespace {

using pathways::Client;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;

struct PointResult {
  double steps_ok = 0;
  double horizon_sec = 0;
  double recovery_mean_us = 0;
  double recovery_max_us = 0;
  double recovery_samples = 0;
  double aborted = 0;
  double retries = 0;

  double goodput() const { return steps_ok / horizon_sec; }
};

// The declarative fault_plan section lowered onto the builder API.
// Out-of-range targets die in FaultPlan::Validate when the injector arms,
// naming the offending event.
faults::FaultPlan PlanFromSpec(const FaultsSpec& spec) {
  faults::FaultPlan plan;
  for (const FaultPlanEvent& e : spec.fault_plan) {
    const TimePoint at = TimePoint() + Duration::Millis(e.at_ms);
    const Duration window = Duration::Millis(e.window_ms);
    if (e.kind == "device_crash") {
      plan.CrashDevice(hw::DeviceId(e.device), at, window);
    } else if (e.kind == "straggler") {
      plan.SlowDevice(hw::DeviceId(e.device), at, window, e.severity);
    } else if (e.kind == "link_degrade") {
      plan.DegradeHostLink(net::HostId(e.host), at, window, e.severity);
    } else {  // "partition" — the parser admits no other kind
      plan.PartitionHost(net::HostId(e.host), at, window);
    }
  }
  return plan;
}

// The axis-derived random plan (empty when crashes == 0, the baseline arm).
faults::FaultPlan RandomPlan(const FaultsSpec& spec, int island_devices,
                             int crashes, std::uint64_t seed) {
  if (crashes <= 0) return {};
  const int hosts = std::max(1, island_devices / 4);
  faults::FaultPlan::RandomSpec fspec;
  fspec.device_crashes = crashes;
  fspec.stragglers = crashes / 2;
  fspec.link_degrades = spec.link_degrades;
  fspec.partitions = 0;
  fspec.horizon = Duration::Millis(spec.horizon_ms);
  fspec.min_window = Duration::Millis(spec.min_window_ms);
  fspec.max_window = Duration::Millis(spec.max_window_ms);
  fspec.always_recover = spec.always_recover;
  return faults::FaultPlan::Random(
      seed, faults::ClusterShape{island_devices, hosts}, fspec);
}

// Runs the training loop on an island of `island_devices` with `plan`
// armed (an empty plan = the fault-free baseline) over the spec's horizon.
PointResult RunPoint(const Scenario& sc, const FaultsSpec& spec,
                     int island_devices, const faults::FaultPlan& plan) {
  const Duration horizon = Duration::Millis(spec.horizon_ms);
  sim::Simulator sim;
  const hw::SystemParams params = BaseSystemParams(sc.cluster);
  const int hosts = std::max(1, island_devices / 4);
  const int devs_per_host = island_devices / hosts;
  auto cluster = std::make_unique<hw::Cluster>(&sim, params, /*islands=*/1,
                                               hosts, devs_per_host);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});

  faults::FaultInjector injector(cluster.get(), &runtime, plan);
  injector.Arm();

  Client* client = runtime.CreateClient();
  auto slice = client->AllocateSlice(island_devices / 2).value();
  auto fn = xlasim::CompiledFunction::Synthetic(
      "step", island_devices / 2, Duration::Micros(spec.step_us),
      net::CollectiveKind::kAllReduce, KiB(spec.collective_kib));
  ProgramBuilder pb("train");
  pb.Call(fn, slice, {});
  PathwaysProgram prog = std::move(pb).Build();

  pathways::RetryPolicy policy;
  policy.max_attempts = spec.retry_max_attempts;
  policy.initial_backoff = Duration::Micros(spec.retry_initial_backoff_us);

  PointResult out;
  const TimePoint end = TimePoint() + horizon;
  while (sim.now() < end) {
    auto r = client->RunWithRetry(&prog, {}, policy);
    const bool resolved = sim.RunUntilPredicate([&r] { return r.ready(); });
    if (!resolved) break;  // would only happen on a liveness bug
    if (!r.value().failed) out.steps_ok += 1;
  }
  sim.Run();  // drain outstanding recoveries
  out.horizon_sec = horizon.ToSeconds();
  out.recovery_mean_us = injector.stats().recovery_latency_us.mean();
  out.recovery_max_us = injector.stats().recovery_latency_us.max();
  out.recovery_samples =
      static_cast<double>(injector.stats().recovery_latency_us.count());
  out.aborted = static_cast<double>(runtime.executions_aborted());
  out.retries = static_cast<double>(client->retries());
  return out;
}

sweep::Metrics Measure(const Scenario& sc, const MeasureCtx& ctx,
                       const sweep::ParamPoint& p) {
  const FaultsSpec& spec = sc.faults.For(ctx.quick);
  const int devices = static_cast<int>(p.GetInt("island_devices"));
  faults::FaultPlan plan;
  if (!spec.fault_plan.empty()) {
    // Declarative timeline: the same events replay at every grid point
    // (the faults_per_sec axis, if present, does not shape the plan).
    plan = PlanFromSpec(spec);
  } else {
    const int rate = static_cast<int>(p.GetInt("faults_per_sec"));
    const int crashes =
        std::max(1, static_cast<int>(
                        rate * Duration::Millis(spec.horizon_ms).ToSeconds()));
    // Seed varies per point so grid cells see different fault draws but
    // every rerun of the bench sees the same ones.
    const std::uint64_t seed =
        static_cast<std::uint64_t>(spec.seed_base) + p.index();
    plan = RandomPlan(spec, devices, crashes, seed);
  }
  const PointResult faulted = RunPoint(sc, spec, devices, plan);
  const PointResult baseline = RunPoint(sc, spec, devices, {});
  return {{"goodput_steps_per_sec", faulted.goodput()},
          {"baseline_steps_per_sec", baseline.goodput()},
          {"goodput_ratio", faulted.goodput() / baseline.goodput()},
          {"recovery_latency_mean_us", faulted.recovery_mean_us},
          {"recovery_latency_max_us", faulted.recovery_max_us},
          {"recovery_samples", faulted.recovery_samples},
          {"executions_aborted", faulted.aborted},
          {"client_retries", faulted.retries}};
}

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

std::map<std::string, double> Summarize(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>&, bool) {
  double ratio_sum = 0, recovery_sum = 0;
  for (const auto& row : table.rows()) {
    ratio_sum += MetricOf(row, "goodput_ratio");
    recovery_sum += MetricOf(row, "recovery_latency_mean_us");
  }
  const double rows = static_cast<double>(table.rows().size());
  return {{"mean_goodput_ratio", ratio_sum / rows},
          {"mean_recovery_latency_us", recovery_sum / rows}};
}

}  // namespace

Family MakeFaultsFamily() {
  Family f;
  f.name = "faults";
  f.description =
      "goodput & recovery latency vs fault rate x island size, each point "
      "vs its own fault-free baseline";
  f.axes = {{"island_devices", AxisKind::kInt},
            {"faults_per_sec", AxisKind::kInt}};
  // bench_faults never carried the determinism rerun (every point already
  // runs two private simulators); keep its BENCH summary byte-stable.
  f.check_determinism = false;
  f.measure = Measure;
  f.summarize = Summarize;
  return f;
}

}  // namespace pw::scenario
