#include "scenario/diagnostics.h"

#include <algorithm>

namespace pw::scenario {
namespace {

const char* SeverityName(Diagnostic::Severity s) {
  switch (s) {
    case Diagnostic::Severity::kError: return "error";
    case Diagnostic::Severity::kWarning: return "warning";
    case Diagnostic::Severity::kNote: return "note";
  }
  return "error";
}

}  // namespace

std::string Diagnostic::Header() const {
  std::string out = file;
  if (loc.line > 0) {
    out += ":" + std::to_string(loc.line) + ":" + std::to_string(loc.col);
  }
  out += ": ";
  out += SeverityName(severity);
  out += ": ";
  out += message;
  return out;
}

DiagnosticEngine::DiagnosticEngine(std::string file, std::string source)
    : file_(std::move(file)), source_(std::move(source)) {}

void DiagnosticEngine::Error(SourceLoc loc, std::string message) {
  diags_.push_back({Diagnostic::Severity::kError, file_, loc,
                    std::move(message)});
  ++num_errors_;
}

void DiagnosticEngine::Warning(SourceLoc loc, std::string message) {
  diags_.push_back({Diagnostic::Severity::kWarning, file_, loc,
                    std::move(message)});
}

void DiagnosticEngine::Note(SourceLoc loc, std::string message) {
  diags_.push_back({Diagnostic::Severity::kNote, file_, loc,
                    std::move(message)});
}

std::string DiagnosticEngine::Render(const Diagnostic& d) const {
  std::string out = d.Header();
  out += "\n";
  if (d.loc.line <= 0) return out;
  // Excerpt the offending line (1-based) and point a caret at the column.
  int line = 1;
  std::size_t start = 0;
  while (line < d.loc.line) {
    const std::size_t nl = source_.find('\n', start);
    if (nl == std::string::npos) return out;  // location past the buffer
    start = nl + 1;
    ++line;
  }
  std::size_t end = source_.find('\n', start);
  if (end == std::string::npos) end = source_.size();
  const std::string text = source_.substr(start, end - start);
  out += "  " + text + "\n";
  std::string caret = "  ";
  for (int i = 1; i < d.loc.col && static_cast<std::size_t>(i) <= text.size();
       ++i) {
    // Keep tabs so the caret lines up under tab-indented sources.
    caret += text[static_cast<std::size_t>(i) - 1] == '\t' ? '\t' : ' ';
  }
  caret += "^";
  out += caret + "\n";
  return out;
}

std::string DiagnosticEngine::Render() const {
  std::string out;
  for (const Diagnostic& d : diags_) out += Render(d);
  return out;
}

std::size_t EditDistance(const std::string& a, const std::string& b) {
  const std::size_t n = a.size(), m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Three rolling rows are enough for the transposition term.
  std::vector<std::size_t> prev2(m + 1), prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        cur[j] = std::min(cur[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, cur);
  }
  return prev[m];
}

std::string DidYouMean(const std::string& word,
                       const std::vector<std::string>& candidates) {
  // Budget scales with length: a 3-char key tolerates 1 edit, "policy"
  // tolerates 2, long keys 3. Ties break toward the first candidate so the
  // suggestion is deterministic.
  const std::size_t budget = std::min<std::size_t>(3, word.size() / 3 + 1);
  std::string best;
  std::size_t best_dist = budget + 1;
  for (const std::string& c : candidates) {
    const std::size_t d = EditDistance(word, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best_dist <= budget ? best : std::string();
}

std::string DidYouMeanSuffix(const std::string& word,
                             const std::vector<std::string>& candidates) {
  const std::string best = DidYouMean(word, candidates);
  return best.empty() ? std::string() : "; did you mean '" + best + "'?";
}

}  // namespace pw::scenario
