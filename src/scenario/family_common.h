// Internal helpers shared by the family_*.cpp measurement harnesses.
#pragma once

#include <memory>

#include "hw/cluster.h"
#include "hw/system_params.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"

namespace pw::scenario {

// SystemParams from the cluster spec: preset base (tpu_default/config_* ->
// TpuDefault, gpu_vm -> GpuVmDefault) plus the optional overrides and the
// flow-level ICI/DCN toggles. Families may further override derived fields
// (e.g. serving computes hbm_capacity from its KV working set).
hw::SystemParams BaseSystemParams(const ClusterSpec& c);

// Cluster from the spec's shape. config_a/config_b/gpu_vm use the preset
// constructors with hosts_per_island as the host count; tpu_default uses
// the uniform (islands x hosts x devices) constructor.
std::unique_ptr<hw::Cluster> BuildCluster(sim::Simulator* sim,
                                          const ClusterSpec& c,
                                          const hw::SystemParams& params);

// Family constructors, one per measurement harness (assembled into the
// registry by runner.cpp).
Family MakeMultitenantFamily();
Family MakeFaultsFamily();
Family MakeOversubFamily();
Family MakeServingFamily();
Family MakeServingDisaggFamily();
Family MakeNetworkFamily();
Family MakeFig12Family();
Family MakeParallelFamily();

}  // namespace pw::scenario
