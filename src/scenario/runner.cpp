#include "scenario/runner.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "scenario/family_common.h"

namespace pw::scenario {
namespace {

// Built lazily so family registration cannot be dropped by the linker or
// race static initialization across translation units.
const std::vector<Family>& Registry() {
  static const std::vector<Family>* families = [] {
    auto* v = new std::vector<Family>();
    v->push_back(MakeMultitenantFamily());
    v->push_back(MakeFaultsFamily());
    v->push_back(MakeOversubFamily());
    v->push_back(MakeServingFamily());
    v->push_back(MakeServingDisaggFamily());
    v->push_back(MakeNetworkFamily());
    v->push_back(MakeFig12Family());
    v->push_back(MakeParallelFamily());
    return v;
  }();
  return *families;
}

}  // namespace

const char* AxisKindName(AxisKind kind) {
  switch (kind) {
    case AxisKind::kInt: return "int";
    case AxisKind::kDouble: return "double";
    case AxisKind::kString: return "string";
  }
  return "?";
}

AxisKind KindOfValue(const sweep::ParamValue& v) {
  if (std::holds_alternative<std::int64_t>(v)) return AxisKind::kInt;
  if (std::holds_alternative<double>(v)) return AxisKind::kDouble;
  return AxisKind::kString;
}

const Family* FindFamily(const std::string& name) {
  for (const Family& f : Registry()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> FamilyNames() {
  std::vector<std::string> names;
  for (const Family& f : Registry()) names.push_back(f.name);
  return names;
}

bool ValidateForFamily(Scenario* s, DiagnosticEngine* diags) {
  const Family* fam = FindFamily(s->family);
  if (fam == nullptr) {
    diags->Error(s->family_loc, "unknown family '" + s->family + "'" +
                                    DidYouMeanSuffix(s->family, FamilyNames()));
    return false;
  }

  std::vector<std::string> axis_names;
  for (const FamilyAxis& fa : fam->axes) axis_names.push_back(fa.name);

  for (SweepAxis& axis : s->sweep) {
    const FamilyAxis* spec = nullptr;
    for (const FamilyAxis& fa : fam->axes) {
      if (fa.name == axis.name) {
        spec = &fa;
        break;
      }
    }
    if (spec == nullptr) {
      diags->Error(axis.loc, "family '" + fam->name + "' has no axis '" +
                                 axis.name + "'" +
                                 DidYouMeanSuffix(axis.name, axis_names));
      continue;
    }
    const AxisKind have = KindOfValue(axis.values.front());
    if (have == AxisKind::kInt && spec->kind == AxisKind::kDouble) {
      // Whole numbers in a double axis are a convenience, not an error:
      // [1, 4] on rate_scale means [1.0, 4.0].
      for (sweep::ParamValue& v : axis.values) {
        v = static_cast<double>(std::get<std::int64_t>(v));
      }
      for (sweep::ParamValue& v : axis.quick_values) {
        v = static_cast<double>(std::get<std::int64_t>(v));
      }
    } else if (have != spec->kind) {
      diags->Error(axis.loc, "axis '" + axis.name + "' of family '" +
                                 fam->name + "' expects " +
                                 AxisKindName(spec->kind) + " values, got " +
                                 AxisKindName(have));
    }
  }

  // A declarative fault_plan supersedes the axis-derived random plan, so
  // the faults_per_sec axis becomes optional for those scenarios.
  const bool has_fault_plan =
      s->family == "faults" && !s->faults.full.fault_plan.empty();
  for (const FamilyAxis& fa : fam->axes) {
    if (has_fault_plan && fa.name == "faults_per_sec") continue;
    bool found = false;
    for (const SweepAxis& axis : s->sweep) found |= axis.name == fa.name;
    if (!found) {
      diags->Error(s->sweep_loc, "family '" + fam->name +
                                     "' requires axis '" + fa.name + "' (" +
                                     AxisKindName(fa.kind) + ")");
    }
  }
  if (s->family == "faults" && !has_fault_plan) {
    diags->Note(s->faults.present ? s->faults.loc : s->sweep_loc,
                "deriving the fault timeline from the faults_per_sec axis is "
                "deprecated; declare an explicit 'fault_plan' in the 'faults' "
                "section (see scenarios/faults_plan.json)");
  }
  return diags->ok();
}

bool RunScenario(const Scenario& s, const RunOptions& opts, RunResult* out,
                 std::string* error) {
  const Family* fam = FindFamily(s.family);
  if (fam == nullptr) {
    if (error != nullptr) *error = "unknown family '" + s.family + "'";
    return false;
  }

  const MeasureCtx ctx{opts.quick, std::max(1, opts.sim_threads)};
  const sweep::ParamGrid grid = s.Grid(opts.quick);
  const auto point_fn = [&](const sweep::ParamPoint& p) {
    return fam->measure(s, ctx, p);
  };

  // Split the thread budget between sweep-parallelism and per-point
  // sim-parallelism: a partitioned-engine point already uses sim_threads
  // cores, so the sweep fans out with correspondingly fewer workers.
  int sweep_threads = opts.threads;
  if (ctx.sim_threads > 1) {
    int budget = opts.threads;
    if (budget == 0) {
      budget = static_cast<int>(std::thread::hardware_concurrency());
      if (budget <= 0) budget = 1;
    }
    sweep_threads = std::max(1, budget / ctx.sim_threads);
  }

  sweep::SweepRunner runner(sweep::SweepRunner::Options{
      .threads = sweep_threads, .record_wall_ms = false});
  out->table = runner.Run(grid, point_fn);
  out->points = grid.Points();

  out->deterministic = true;
  if (opts.check_determinism && fam->check_determinism) {
    // The SweepRunner contract: the identical sweep on one thread must
    // serialize to the identical table.
    sweep::SweepRunner serial(sweep::SweepRunner::Options{.threads = 1});
    const sweep::ResultTable table1 = serial.Run(grid, point_fn);
    std::ostringstream csv_mt, csv_1t;
    out->table.WriteCsv(csv_mt);
    table1.WriteCsv(csv_1t);
    out->deterministic = csv_mt.str() == csv_1t.str();
  }

  out->summary.clear();
  if (fam->summarize) {
    out->summary = fam->summarize(s, opts.quick, out->table, out->points,
                                  out->deterministic);
  }

  out->json_path.clear();
  if (opts.write_json) {
    out->json_path =
        sweep::WriteBenchJsonFile(s.name, out->summary, out->table,
                                  opts.out_dir);
  }
  return true;
}

}  // namespace pw::scenario
