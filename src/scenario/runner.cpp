#include "scenario/runner.h"

#include <sstream>
#include <utility>

#include "scenario/family_common.h"

namespace pw::scenario {
namespace {

// Built lazily so family registration cannot be dropped by the linker or
// race static initialization across translation units.
const std::vector<Family>& Registry() {
  static const std::vector<Family>* families = [] {
    auto* v = new std::vector<Family>();
    v->push_back(MakeMultitenantFamily());
    v->push_back(MakeFaultsFamily());
    v->push_back(MakeOversubFamily());
    v->push_back(MakeServingFamily());
    v->push_back(MakeServingDisaggFamily());
    return v;
  }();
  return *families;
}

}  // namespace

const char* AxisKindName(AxisKind kind) {
  switch (kind) {
    case AxisKind::kInt: return "int";
    case AxisKind::kDouble: return "double";
    case AxisKind::kString: return "string";
  }
  return "?";
}

AxisKind KindOfValue(const sweep::ParamValue& v) {
  if (std::holds_alternative<std::int64_t>(v)) return AxisKind::kInt;
  if (std::holds_alternative<double>(v)) return AxisKind::kDouble;
  return AxisKind::kString;
}

const Family* FindFamily(const std::string& name) {
  for (const Family& f : Registry()) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::vector<std::string> FamilyNames() {
  std::vector<std::string> names;
  for (const Family& f : Registry()) names.push_back(f.name);
  return names;
}

bool ValidateForFamily(Scenario* s, DiagnosticEngine* diags) {
  const Family* fam = FindFamily(s->family);
  if (fam == nullptr) {
    diags->Error(s->family_loc, "unknown family '" + s->family + "'" +
                                    DidYouMeanSuffix(s->family, FamilyNames()));
    return false;
  }

  std::vector<std::string> axis_names;
  for (const FamilyAxis& fa : fam->axes) axis_names.push_back(fa.name);

  for (SweepAxis& axis : s->sweep) {
    const FamilyAxis* spec = nullptr;
    for (const FamilyAxis& fa : fam->axes) {
      if (fa.name == axis.name) {
        spec = &fa;
        break;
      }
    }
    if (spec == nullptr) {
      diags->Error(axis.loc, "family '" + fam->name + "' has no axis '" +
                                 axis.name + "'" +
                                 DidYouMeanSuffix(axis.name, axis_names));
      continue;
    }
    const AxisKind have = KindOfValue(axis.values.front());
    if (have == AxisKind::kInt && spec->kind == AxisKind::kDouble) {
      // Whole numbers in a double axis are a convenience, not an error:
      // [1, 4] on rate_scale means [1.0, 4.0].
      for (sweep::ParamValue& v : axis.values) {
        v = static_cast<double>(std::get<std::int64_t>(v));
      }
      for (sweep::ParamValue& v : axis.quick_values) {
        v = static_cast<double>(std::get<std::int64_t>(v));
      }
    } else if (have != spec->kind) {
      diags->Error(axis.loc, "axis '" + axis.name + "' of family '" +
                                 fam->name + "' expects " +
                                 AxisKindName(spec->kind) + " values, got " +
                                 AxisKindName(have));
    }
  }

  for (const FamilyAxis& fa : fam->axes) {
    bool found = false;
    for (const SweepAxis& axis : s->sweep) found |= axis.name == fa.name;
    if (!found) {
      diags->Error(s->sweep_loc, "family '" + fam->name +
                                     "' requires axis '" + fa.name + "' (" +
                                     AxisKindName(fa.kind) + ")");
    }
  }
  return diags->ok();
}

bool RunScenario(const Scenario& s, const RunOptions& opts, RunResult* out,
                 std::string* error) {
  const Family* fam = FindFamily(s.family);
  if (fam == nullptr) {
    if (error != nullptr) *error = "unknown family '" + s.family + "'";
    return false;
  }

  const sweep::ParamGrid grid = s.Grid(opts.quick);
  const auto point_fn = [&](const sweep::ParamPoint& p) {
    return fam->measure(s, opts.quick, p);
  };

  sweep::SweepRunner runner(sweep::SweepRunner::Options{
      .threads = opts.threads, .record_wall_ms = false});
  out->table = runner.Run(grid, point_fn);
  out->points = grid.Points();

  out->deterministic = true;
  if (opts.check_determinism && fam->check_determinism) {
    // The SweepRunner contract: the identical sweep on one thread must
    // serialize to the identical table.
    sweep::SweepRunner serial(sweep::SweepRunner::Options{.threads = 1});
    const sweep::ResultTable table1 = serial.Run(grid, point_fn);
    std::ostringstream csv_mt, csv_1t;
    out->table.WriteCsv(csv_mt);
    table1.WriteCsv(csv_1t);
    out->deterministic = csv_mt.str() == csv_1t.str();
  }

  out->summary.clear();
  if (fam->summarize) {
    out->summary = fam->summarize(s, opts.quick, out->table, out->points,
                                  out->deterministic);
  }

  out->json_path.clear();
  if (opts.write_json) {
    out->json_path =
        sweep::WriteBenchJsonFile(s.name, out->summary, out->table,
                                  opts.out_dir);
  }
  return true;
}

}  // namespace pw::scenario
