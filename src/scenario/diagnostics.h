// Clang-style diagnostics for the declarative scenario layer.
//
// Every parse or validation problem is reported as a Diagnostic anchored to
// a file:line:col source location; DiagnosticEngine collects them and
// renders each with the offending source line and a caret, e.g.
//
//   scenarios/serving.json:7:5: error: unknown key 'quik'; did you mean
//   'quick'?
//       "quik": { "horizon_ms": 2 },
//       ^
//
// The engine is also where "did you mean" lives: DidYouMean() picks the
// closest candidate by Damerau-Levenshtein distance, bounded so wildly
// wrong keys do not produce absurd suggestions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pw::scenario {

// 1-based position in a source file; line 0 means "whole file" (e.g. an
// unreadable file or an empty document).
struct SourceLoc {
  int line = 0;
  int col = 0;
};

struct Diagnostic {
  enum class Severity { kError, kWarning, kNote };
  Severity severity = Severity::kError;
  std::string file;
  SourceLoc loc;
  std::string message;

  // "file:line:col: error: message" (no source excerpt).
  std::string Header() const;
};

// Collects diagnostics against one source buffer and renders them with
// source context. Keeps the buffer so rendering can excerpt lines.
class DiagnosticEngine {
 public:
  DiagnosticEngine() = default;
  DiagnosticEngine(std::string file, std::string source);

  void Error(SourceLoc loc, std::string message);
  void Warning(SourceLoc loc, std::string message);
  void Note(SourceLoc loc, std::string message);

  bool ok() const { return num_errors_ == 0; }
  std::size_t num_errors() const { return num_errors_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  const std::string& file() const { return file_; }

  // Every diagnostic, clang-style: header line, source line, caret line.
  std::string Render() const;
  // One diagnostic rendered with its source excerpt.
  std::string Render(const Diagnostic& d) const;

 private:
  std::string file_;
  std::string source_;
  std::vector<Diagnostic> diags_;
  std::size_t num_errors_ = 0;
};

// Damerau-Levenshtein edit distance (insert/delete/substitute/transpose).
std::size_t EditDistance(const std::string& a, const std::string& b);

// The closest candidate within a distance budget scaled to the word's
// length (short words tolerate 1 edit, longer ones up to 3), or "" when
// nothing is plausibly what the author meant.
std::string DidYouMean(const std::string& word,
                       const std::vector<std::string>& candidates);

// "; did you mean 'X'?" when a plausible candidate exists, else "".
std::string DidYouMeanSuffix(const std::string& word,
                             const std::vector<std::string>& candidates);

}  // namespace pw::scenario
