// Declarative scenario schema: one JSON file describes a complete sweep —
// which measurement family runs it, the cluster it runs on, the family's
// workload knobs, and the parameter grid — so new scenarios cost a file,
// not a recompile (docs/SCENARIOS.md has the full schema reference).
//
//   {
//     "name": "serving",            // result file: BENCH_<name>.json
//     "family": "serving",          // registered runner (scenario/runner.h)
//     "description": "...",
//     "cluster":  { "preset": "tpu_default", "devices_per_host": 2, ... },
//     "serving":  { "max_batch": 8, ..., "quick": { "horizon_ms": 2 } },
//     "sweep":    { "axes": [ { "name": "rate_per_s",
//                               "values": [1500.0, 24000.0],
//                               "quick_values": [1500.0] } ] }
//   }
//
// Parsing is strict: unknown keys are hard errors with "did you mean"
// suggestions, every diagnostic carries file:line:col, and a parsed
// scenario serializes back to a canonical byte-stable form (Serialize is a
// fixed field order; parse -> serialize -> parse round-trips
// byte-identically).
//
// Every family section accepts a "quick" sub-object overriding a subset of
// its fields for --quick (CI smoke) runs; each sweep axis may carry
// "quick_values". Spec(quick=true) / GridAxes(quick=true) select the
// overlaid view.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/diagnostics.h"
#include "sweep/param_grid.h"

namespace pw::scenario {

// --- Cluster topology (hw::SystemParams / hw::Cluster knobs) ---------------
//
// `preset` picks the base SystemParams and construction style:
//   "tpu_default" — SystemParams::TpuDefault() + the uniform shape below
//   "gpu_vm"      — SystemParams::GpuVmDefault() + the uniform shape below
//   "config_a" / "config_b" — the paper's evaluation configurations
//     (hw::Cluster::ConfigA/ConfigB; hosts_per_island supplies `hosts`)
// Optional overrides apply on top; families may further derive per-point
// values (e.g. oversub scales hbm_capacity from its sweep axis).
struct ClusterSpec {
  std::string preset = "tpu_default";
  int islands = 1;
  int hosts_per_island = 1;
  int devices_per_host = 2;
  std::optional<double> host_jitter_frac;
  std::optional<double> hbm_capacity_mib;
  std::optional<double> host_dram_capacity_mib;
  // Flow-level ICI (net::IciFlowParams): per-island torus pricing.
  bool ici_flow = false;
  int ici_flow_dims = 2;
  // Flow-level DCN (net::DcnClosParams): two-tier Clos pricing.
  bool dcn_clos = false;
  int clos_hosts_per_leaf = 8;
  int clos_num_spines = 4;
  double clos_oversubscription = 1.0;
};

// --- Family sections -------------------------------------------------------
// Field defaults are the full-size values the pre-scenario bench binaries
// hard-coded; shipped scenario files override via "quick" for smoke runs.

// family "multitenant": open-loop weighted clients through the stride
// scheduler (bench_multitenant).
struct MultitenantSpec {
  double nominal_pod_per_sec = 2500;
  int max_inflight_gangs = 2;
  double warmup_ms = 80;
  double horizon_ms = 800;
  int queue_capacity = 64;
  int max_outstanding = 6;
  int retry_max_attempts = 5;
  double retry_initial_backoff_us = 200;
  double retry_max_backoff_ms = 5;
  double step_us = 330;
  std::int64_t collective_bytes = 64;
  std::int64_t seed_base = 0xC0FFEE;
};

// One entry in a declarative fault timeline. `kind` selects which target
// fields apply (others are schema errors, so serialization stays canonical):
//   device_crash — device                 (crash at at_ms, down window_ms)
//   straggler    — device, severity > 1   (compute multiplier for window_ms)
//   link_degrade — host, severity in (0,1] (NIC bandwidth scale)
//   partition    — host                   (cut off the DCN for window_ms)
// window_ms = 0 on device_crash means the device never recovers.
struct FaultPlanEvent {
  std::string kind;
  double at_ms = 0;
  double window_ms = 0;
  int device = 0;
  int host = 0;
  double severity = 1.0;

  friend bool operator==(const FaultPlanEvent& a, const FaultPlanEvent& b) {
    return a.kind == b.kind && a.at_ms == b.at_ms &&
           a.window_ms == b.window_ms && a.device == b.device &&
           a.host == b.host && a.severity == b.severity;
  }
};

// family "faults": crash/straggler/degrade injection vs a per-point
// fault-free baseline (bench_faults).
//
// Two ways to get a fault timeline: a non-empty `fault_plan` replays those
// exact events at every grid point; an empty one derives a seeded random
// plan from the faults_per_sec axis (the original bench_faults behaviour,
// now deprecated — validation emits a note steering scenarios to the
// declarative form).
struct FaultsSpec {
  double horizon_ms = 200;
  double min_window_ms = 1;
  double max_window_ms = 5;
  int link_degrades = 1;
  bool always_recover = true;
  int retry_max_attempts = 6;
  double retry_initial_backoff_us = 250;
  double step_us = 300;
  std::int64_t collective_kib = 64;
  std::int64_t seed_base = 0x5eed;
  std::vector<FaultPlanEvent> fault_plan;
};

// family "oversub": tenants' working sets vs scaled-down HBM through the
// spill hierarchy (bench_oversub).
struct OversubSpec {
  int tenants = 4;
  double weights_per_shard_mib = 6;
  double output_per_shard_mib = 2;
  double working_headroom_mib = 64;
  int requests_per_tenant = 24;
  double step_us = 300;
};

// family "serving": continuous vs static batching under KV budgets
// (bench_serving).
struct ServingSpec {
  std::int64_t kv_bytes_per_token = 4096;
  int max_batch = 8;
  int token_budget = 256;
  int min_prefill_tokens = 8;
  int max_prefill_tokens = 48;
  int min_decode_tokens = 2;
  int max_decode_tokens = 32;
  double horizon_ms = 8;
  double hbm_frac_of_working_set = 0.2;
  double hbm_headroom_kib = 128;
  std::int64_t arrival_seed_base = 11;
  std::int64_t arrival_seed_stride = 17;
  std::int64_t token_seed_base = 101;
};

// family "serving_disagg": prefill/decode split across islands with
// cross-island KV transfer, vs a colocated arm (bench_serving --disagg).
struct DisaggSpec {
  std::string model = "decoder3b";
  int max_batch = 8;
  int token_budget = 256;
  int min_prefill_tokens = 8;
  int max_prefill_tokens = 48;
  int min_decode_tokens = 2;
  int max_decode_tokens = 32;
  double horizon_ms = 4000;
  double hbm_headroom_mib = 1;
  std::int64_t arrival_seed_base = 11;
  std::int64_t arrival_seed_stride = 17;
  std::int64_t token_seed_base = 101;
};

// family "network": contended flow-level Clos DCN vs the abstract per-NIC
// fabric, swept over oversubscription ratio x incast fan-in
// (bench_network, docs/NETWORK.md).
struct NetworkSpec {
  double message_mib = 16;
  int hosts = 32;
  int hosts_per_leaf = 8;
  int num_spines = 4;
};

// family "fig12_twoisland": Figure 12 / §5.3 — data-parallel training over
// two islands vs one island with twice the devices, plus the flow-level
// Clos validation arm (bench_fig12_twoisland). The model axis fixes the
// per-island core count: decoder64b -> 512, decoder136b -> 1024.
struct Fig12Spec {
  int steps = 3;
  int chunks = 8;
  int max_inflight_gangs = 64;
  int model_parallel = 32;  // single-island SPMD arm
};

// family "parallel": partitioned-engine scaling — the same cross-island
// ring workload on a 1-thread and an N-thread PartitionedSimulator, gated
// on byte-identical canonical traces (bench_parallel, docs/PARALLEL.md).
struct ParallelSpec {
  int steps = 600;         // ring hops per starting island
  double ici_kib = 256;    // intra-island transfer per hop
  double dcn_kib = 64;     // cross-island message per hop
  int devices_per_host = 2;
  double lookahead_us = 20;  // must stay <= the LP channel latency
};

// --- Sweep grid ------------------------------------------------------------

struct SweepAxis {
  std::string name;
  SourceLoc loc;  // of the axis object, for family-validation diagnostics
  std::vector<sweep::ParamValue> values;
  // Reduced values for --quick runs; empty = same as `values`.
  std::vector<sweep::ParamValue> quick_values;

  const std::vector<sweep::ParamValue>& For(bool quick) const {
    return quick && !quick_values.empty() ? quick_values : values;
  }
};

// One family section parsed twice: the full-size spec and the spec with the
// "quick" overlay applied.
template <typename T>
struct WithQuick {
  bool present = false;
  SourceLoc loc;
  T full;
  T quick;

  const T& For(bool is_quick) const { return is_quick ? quick : full; }
};

struct Scenario {
  std::string file;  // where it was loaded from ("" for in-memory)
  std::string name;
  std::string family;
  std::string description;
  SourceLoc name_loc, family_loc, sweep_loc;

  ClusterSpec cluster;
  std::vector<SweepAxis> sweep;

  WithQuick<MultitenantSpec> multitenant;
  WithQuick<FaultsSpec> faults;
  WithQuick<OversubSpec> oversub;
  WithQuick<ServingSpec> serving;
  WithQuick<DisaggSpec> disagg;
  WithQuick<NetworkSpec> network;
  WithQuick<Fig12Spec> fig12;
  WithQuick<ParallelSpec> parallel;

  // The axis list lowered into a sweep::ParamGrid (row-major order as
  // declared). Family-specific type coercion lives in runner.h's
  // ValidateForFamily; this is the raw lowering.
  sweep::ParamGrid Grid(bool quick) const;

  // Canonical serialization: fixed field order, canonical number
  // formatting, quick overlays reduced to their diff vs the full spec.
  // Parse(Serialize()) == *this, and re-serializing is byte-identical.
  std::string Serialize() const;
};

// Parses and schema-validates `text` into *out, reporting into `diags`
// (construct the engine over the same file/text). Returns false if any
// error was reported; *out is only meaningful on success.
bool ParseScenario(const std::string& text, Scenario* out,
                   DiagnosticEngine* diags);

// Loads a scenario file from disk. `diags` is reset to the file's content
// for rendering. Returns false on I/O or parse/validation errors.
bool LoadScenarioFile(const std::string& path, Scenario* out,
                      DiagnosticEngine* diags);

// Directory holding the shipped scenario files: $PWSIM_SCENARIO_DIR when
// set, else the compile-time default (<repo>/scenarios).
std::string ScenarioDir();
// ScenarioDir()/<name>.json
std::string DefaultScenarioPath(const std::string& name);

}  // namespace pw::scenario
