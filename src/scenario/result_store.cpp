#include "scenario/result_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/diagnostics.h"
#include "scenario/json.h"

namespace pw::scenario {
namespace {

// Shortest printf form that strtod-round-trips (the BENCH writer emits the
// same form, so addresses match the file text: 1500, 0.5, 750.91745217).
std::string FormatNumber(const Json& v) {
  if (v.is_int()) return std::to_string(v.int_value());
  const double d = v.number_value();
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

std::string ValueToken(const Json& v) {
  if (v.is_string()) return v.string_value();
  if (v.is_bool()) return v.bool_value() ? "true" : "false";
  return FormatNumber(v);
}

std::vector<std::string> SplitPath(const std::string& s) {
  std::vector<std::string> out;
  std::string seg;
  for (char c : s) {
    if (c == '/') {
      out.push_back(seg);
      seg.clear();
    } else {
      seg.push_back(c);
    }
  }
  out.push_back(seg);
  return out;
}

// `*` / `?` within one segment.
bool SegmentMatch(const std::string& pat, const std::string& seg) {
  std::size_t p = 0, s = 0, star = std::string::npos, mark = 0;
  while (s < seg.size()) {
    if (p < pat.size() && (pat[p] == '?' || pat[p] == seg[s])) {
      ++p;
      ++s;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

bool MatchFrom(const std::vector<std::string>& pat,
               const std::vector<std::string>& path, std::size_t pi,
               std::size_t si) {
  if (pi == pat.size()) return si == path.size();
  if (pat[pi] == "**") {
    // Zero segments, or consume one and stay on the `**`.
    if (MatchFrom(pat, path, pi + 1, si)) return true;
    return si < path.size() && MatchFrom(pat, path, pi, si + 1);
  }
  if (si == path.size()) return false;
  return SegmentMatch(pat[pi], path[si]) && MatchFrom(pat, path, pi + 1, si + 1);
}

}  // namespace

bool ResultStore::GlobMatch(const std::string& pattern,
                            const std::string& path) {
  return MatchFrom(SplitPath(pattern), SplitPath(path), 0, 0);
}

bool ResultStore::LoadBenchFile(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open file";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  DiagnosticEngine diags(path, text);
  Json root;
  if (!ParseJson(text, &root, &diags)) {
    if (error != nullptr && !diags.diagnostics().empty()) {
      *error = diags.diagnostics().front().Header();
    }
    return false;
  }
  if (!root.is_object()) {
    if (error != nullptr) *error = path + ": top-level value is not an object";
    return false;
  }
  const Json* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    if (error != nullptr) *error = path + ": missing string field 'bench'";
    return false;
  }
  const std::string& prefix = bench->string_value();

  if (const Json* summary = root.Find("summary");
      summary != nullptr && summary->is_object()) {
    for (const auto& m : summary->members()) {
      if (!m.value.is_number()) continue;
      entries_.push_back(
          {prefix + "/summary/" + m.key, m.value.number_value()});
    }
  }
  if (const Json* series = root.Find("series");
      series != nullptr && series->is_array()) {
    for (const Json& row : series->array()) {
      if (!row.is_object()) continue;
      std::string point = prefix;
      if (const Json* params = row.Find("params");
          params != nullptr && params->is_object()) {
        for (const auto& m : params->members()) {
          point += "/" + m.key + "=" + ValueToken(m.value);
        }
      }
      if (const Json* metrics = row.Find("metrics");
          metrics != nullptr && metrics->is_object()) {
        for (const auto& m : metrics->members()) {
          if (!m.value.is_number()) continue;
          entries_.push_back({point + "/" + m.key, m.value.number_value()});
        }
      }
    }
  }
  return true;
}

int ResultStore::LoadDir(const std::string& dir, std::string* error) {
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    if (error != nullptr) *error = dir + ": " + ec.message();
    return -1;
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    if (!LoadBenchFile(f, error)) return -1;
  }
  return static_cast<int>(files.size());
}

std::vector<ResultEntry> ResultStore::Select(const std::string& pattern) const {
  std::vector<ResultEntry> out;
  for (const ResultEntry& e : entries_) {
    if (GlobMatch(pattern, e.path)) out.push_back(e);
  }
  return out;
}

std::optional<Aggregation> ResultStore::ParseAggregation(
    const std::string& select) {
  // Form: "<agg> over <glob>". A glob can't contain spaces, so a plain
  // glob select never parses as an aggregation.
  const std::size_t sp = select.find(' ');
  if (sp == std::string::npos) return std::nullopt;
  const std::string agg_word = select.substr(0, sp);
  std::size_t rest = select.find_first_not_of(' ', sp);
  if (rest == std::string::npos || select.compare(rest, 5, "over ") != 0) {
    return std::nullopt;
  }
  rest = select.find_first_not_of(' ', rest + 5);
  if (rest == std::string::npos) return std::nullopt;

  Aggregation agg;
  agg.glob = select.substr(rest);
  if (agg_word == "min") {
    agg.kind = Aggregation::Kind::kMin;
  } else if (agg_word == "max") {
    agg.kind = Aggregation::Kind::kMax;
  } else if (agg_word == "mean") {
    agg.kind = Aggregation::Kind::kMean;
  } else if (agg_word == "sum") {
    agg.kind = Aggregation::Kind::kSum;
  } else if (agg_word == "count") {
    agg.kind = Aggregation::Kind::kCount;
  } else if (agg_word.size() > 1 && agg_word[0] == 'p') {
    char* end = nullptr;
    const double p = std::strtod(agg_word.c_str() + 1, &end);
    if (end == nullptr || *end != '\0' || p < 0 || p > 100) {
      return std::nullopt;
    }
    agg.kind = Aggregation::Kind::kPercentile;
    agg.percentile = p;
  } else {
    return std::nullopt;
  }
  return agg;
}

std::optional<double> ResultStore::Aggregate(const Aggregation& agg) const {
  std::vector<double> values;
  for (const ResultEntry& e : entries_) {
    if (GlobMatch(agg.glob, e.path)) values.push_back(e.value);
  }
  if (agg.kind == Aggregation::Kind::kCount) {
    return static_cast<double>(values.size());
  }
  if (values.empty()) return std::nullopt;
  switch (agg.kind) {
    case Aggregation::Kind::kMin:
      return *std::min_element(values.begin(), values.end());
    case Aggregation::Kind::kMax:
      return *std::max_element(values.begin(), values.end());
    case Aggregation::Kind::kSum:
    case Aggregation::Kind::kMean: {
      double sum = 0;
      for (double v : values) sum += v;
      return agg.kind == Aggregation::Kind::kSum
                 ? sum
                 : sum / static_cast<double>(values.size());
    }
    case Aggregation::Kind::kPercentile: {
      // Linear interpolation between ranks, matching
      // common::PercentileSampler::Percentile.
      std::sort(values.begin(), values.end());
      const double rank =
          agg.percentile / 100.0 * static_cast<double>(values.size() - 1);
      const std::size_t lo = static_cast<std::size_t>(rank);
      const std::size_t hi = std::min(lo + 1, values.size() - 1);
      const double frac = rank - static_cast<double>(lo);
      return values[lo] + (values[hi] - values[lo]) * frac;
    }
    case Aggregation::Kind::kCount:
      break;  // handled above
  }
  return std::nullopt;
}

}  // namespace pw::scenario
