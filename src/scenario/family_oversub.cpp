// Family "oversub": T tenants stage resident weights and serve closed-loop
// requests while per-device HBM is scaled below the sum of their working
// sets, so survival depends on scheduler-consistent reservations plus the
// host-DRAM spill path. Extracted from bench/bench_oversub.cpp.
#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pathways/pathways.h"
#include "scenario/family_common.h"
#include "xlasim/compiled_function.h"

namespace pw::scenario {
namespace {

using pathways::Client;
using pathways::ExecutionResult;
using pathways::PathwaysProgram;
using pathways::PathwaysRuntime;
using pathways::ProgramBuilder;
using pathways::ShardedBuffer;

sweep::Metrics Measure(const Scenario& sc, const MeasureCtx& ctx,
                       const sweep::ParamPoint& p) {
  const OversubSpec& spec = sc.oversub.For(ctx.quick);
  const double scale = p.GetDouble("hbm_scale");
  const int depth = static_cast<int>(p.GetInt("depth"));
  const int requests_per_tenant = spec.requests_per_tenant;

  const Bytes weights_per_shard = MiB(spec.weights_per_shard_mib);
  const Bytes output_per_shard = MiB(spec.output_per_shard_mib);
  // Logical bytes per tenant per device (weights + one in-flight output);
  // capacity = scale * (tenant bytes + transient headroom), so scale 1.0
  // really means un-oversubscribed.
  const Bytes tenant_bytes = weights_per_shard + output_per_shard;
  const Bytes headroom = MiB(spec.working_headroom_mib);

  sim::Simulator sim;
  hw::SystemParams params = BaseSystemParams(sc.cluster);
  params.hbm_capacity = static_cast<Bytes>(
      scale * static_cast<double>(spec.tenants * tenant_bytes + headroom));
  auto cluster = BuildCluster(&sim, sc.cluster, params);
  PathwaysRuntime runtime(cluster.get(), pathways::PathwaysOptions{});

  const int shards = cluster->num_devices();

  // Per tenant: a client, a slice over every device, staged weights, and a
  // serving program that consumes the weights (input staging = weights
  // bytes).
  struct Tenant {
    Client* client = nullptr;
    pathways::VirtualSlice slice;
    ShardedBuffer weights;
    std::unique_ptr<PathwaysProgram> program;
    int submitted = 0;
    int completed = 0;
  };
  std::vector<Tenant> tenants(static_cast<std::size_t>(spec.tenants));
  for (int t = 0; t < spec.tenants; ++t) {
    Tenant& tn = tenants[static_cast<std::size_t>(t)];
    tn.client = runtime.CreateClient();
    tn.slice = tn.client->AllocateSlice(shards).value();
    xlasim::CompiledFunction fn;
    fn.name = "serve" + std::to_string(t);
    fn.num_shards = shards;
    fn.pre_collective_time = Duration::Micros(spec.step_us);
    fn.input_bytes_per_shard = weights_per_shard;
    fn.output_bytes_per_shard = output_per_shard;
    ProgramBuilder pb("serve" + std::to_string(t));
    pathways::ValueRef arg = pb.Argument();
    pb.Result(pb.Call(fn, tn.slice, {arg}));
    tn.program = std::make_unique<PathwaysProgram>(std::move(pb).Build());
    // Staging the weights itself back-pressures (and spills) once the
    // scaled HBM cannot hold every tenant.
    tn.weights = tn.client->TransferToDevice(tn.slice, weights_per_shard);
  }
  sim.Run();  // land (or spill-shuffle) the weights

  // Closed loop per tenant: `depth` requests in flight, each completion
  // releases its outputs and issues the next.
  std::function<void(int)> issue = [&](int t) {
    Tenant& tn = tenants[static_cast<std::size_t>(t)];
    if (tn.submitted >= requests_per_tenant) return;
    ++tn.submitted;
    tn.client->Run(tn.program.get(), {tn.weights})
        .Then([&, t](const ExecutionResult& r) {
          Tenant& tn2 = tenants[static_cast<std::size_t>(t)];
          for (const auto& out : r.outputs) {
            runtime.object_store().Release(out.id);
          }
          if (!r.failed) ++tn2.completed;
          issue(t);
        });
  };
  for (int t = 0; t < spec.tenants; ++t) {
    for (int d = 0; d < depth; ++d) issue(t);
  }
  sim.Run();

  // Forward-progress gates: a wedge here PW_CHECKs the whole binary down
  // with the cycle named, and any shortfall shows up in `deadlocked`.
  runtime.object_store().CheckNoReservationWedge();
  int completed = 0;
  for (const Tenant& tn : tenants) completed += tn.completed;
  const bool all_done = completed == spec.tenants * requests_per_tenant;
  const bool deadlocked = sim.Deadlocked() || !all_done;

  pathways::ObjectStore& store = runtime.object_store();
  double oversub_x = 0;
  for (int d = 0; d < cluster->num_devices(); ++d) {
    const double peak = static_cast<double>(
        store.logical_peak_bytes(cluster->device(d).id()));
    oversub_x = std::max(
        oversub_x, peak / static_cast<double>(params.hbm_capacity));
  }

  sweep::Metrics m;
  m.emplace_back("completed", static_cast<double>(completed));
  m.emplace_back("deadlocked", deadlocked ? 1.0 : 0.0);
  m.emplace_back("goodput_per_s",
                 static_cast<double>(completed) / sim.now().ToSeconds());
  m.emplace_back("oversub_x", oversub_x);
  m.emplace_back("spills", static_cast<double>(store.spills_completed()));
  m.emplace_back("fills", static_cast<double>(store.fills_completed()));
  m.emplace_back("dram_reads", static_cast<double>(store.dram_reads()));
  m.emplace_back("spilled_mib",
                 static_cast<double>(store.spilled_bytes_total()) /
                     static_cast<double>(MiB(1)));
  m.emplace_back("dram_peak_mib",
                 static_cast<double>(cluster->host(0).dram().peak_used()) /
                     static_cast<double>(MiB(1)));
  return m;
}

double MetricOf(const sweep::ResultRow& row, const std::string& name) {
  for (const auto& [k, v] : row.metrics) {
    if (k == name) return v;
  }
  return 0.0;
}

std::map<std::string, double> Summarize(
    const Scenario&, bool, const sweep::ResultTable& table,
    const std::vector<sweep::ParamPoint>& points, bool deterministic) {
  // Per-depth goodput baselines at scale 1.0 for the degradation gate.
  std::map<std::int64_t, double> baseline;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    if (points[i].GetDouble("hbm_scale") == 1.0) {
      baseline[points[i].GetInt("depth")] =
          MetricOf(table.rows()[i], "goodput_per_s");
    }
  }
  bool any_deadlock = false;
  double min_ratio = 1.0;
  double max_oversub = 0.0;
  for (std::size_t i = 0; i < table.rows().size(); ++i) {
    const auto& row = table.rows()[i];
    const double scale = points[i].GetDouble("hbm_scale");
    const double base = baseline[points[i].GetInt("depth")];
    const double goodput = MetricOf(row, "goodput_per_s");
    const double ratio = base > 0 ? goodput / base : 0.0;
    any_deadlock |= MetricOf(row, "deadlocked") > 0.5;
    if (scale < 1.0) {
      min_ratio = std::min(min_ratio, ratio);
      max_oversub = std::max(max_oversub, MetricOf(row, "oversub_x"));
    }
  }
  return {{"deadlocks", any_deadlock ? 1.0 : 0.0},
          {"min_goodput_ratio_oversub", min_ratio},
          {"max_oversub_x", max_oversub},
          {"deterministic", deterministic ? 1.0 : 0.0}};
}

}  // namespace

Family MakeOversubFamily() {
  Family f;
  f.name = "oversub";
  f.description =
      "oversubscribed serving: HBM back-pressure + host-DRAM spilling "
      "across an hbm_scale x depth grid";
  f.axes = {{"hbm_scale", AxisKind::kDouble}, {"depth", AxisKind::kInt}};
  f.check_determinism = true;
  f.measure = Measure;
  f.summarize = Summarize;
  return f;
}

}  // namespace pw::scenario
