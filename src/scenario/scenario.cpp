#include "scenario/scenario.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "scenario/json.h"
#include "sweep/result_table.h"

namespace pw::scenario {
namespace {

// The known families double as the schema's section keys.
const std::vector<std::string>& KnownFamilies() {
  static const std::vector<std::string> kFamilies{
      "multitenant", "faults",  "oversub",       "serving",
      "serving_disagg", "network", "fig12_twoisland", "parallel"};
  return kFamilies;
}

const std::vector<std::string>& KnownPresets() {
  static const std::vector<std::string> kPresets{"tpu_default", "gpu_vm",
                                                "config_a", "config_b"};
  return kPresets;
}

// ---------------------------------------------------------------------------
// Typed field extraction with unknown-key detection.
//
// Every Read* function below funnels object members through one FieldReader;
// Finish() then reports any member that was never registered, with a
// "did you mean" suggestion over the registered keys. The same read function
// serves the full section and its "quick" overlay (overlay=true skips the
// nested "quick" registration and leaves absent fields at their incoming
// values, which are the full-spec values).

class FieldReader {
 public:
  FieldReader(const Json& obj, DiagnosticEngine* diags)
      : obj_(obj), diags_(diags) {}

  void Int(const char* key, int* out,
           std::int64_t min = std::numeric_limits<std::int64_t>::min()) {
    std::int64_t v = *out;
    I64(key, &v, min);
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      diags_->Error(obj_.KeyLoc(key),
                    std::string("key '") + key + "' is out of int range");
      return;
    }
    *out = static_cast<int>(v);
  }

  void I64(const char* key, std::int64_t* out,
           std::int64_t min = std::numeric_limits<std::int64_t>::min()) {
    const Json* v = Register(key);
    if (v == nullptr) return;
    if (!v->is_int()) {
      TypeError(key, "int", *v);
      return;
    }
    if (v->int_value() < min) {
      diags_->Error(v->loc(), std::string("key '") + key + "' must be >= " +
                                  std::to_string(min) + " (got " +
                                  std::to_string(v->int_value()) + ")");
      return;
    }
    *out = v->int_value();
  }

  void Double(const char* key, double* out,
              double min = -std::numeric_limits<double>::infinity()) {
    const Json* v = Register(key);
    if (v == nullptr) return;
    if (!v->is_number()) {
      TypeError(key, "number", *v);
      return;
    }
    if (v->number_value() < min) {
      diags_->Error(v->loc(), std::string("key '") + key + "' must be >= " +
                                  FormatNumber(min) + " (got " +
                                  FormatNumber(v->number_value()) + ")");
      return;
    }
    *out = v->number_value();
  }

  void OptDouble(const char* key, std::optional<double>* out, double min) {
    double v = 0;
    bool had = false;
    {
      const Json* j = Register(key);
      if (j == nullptr) return;
      if (!j->is_number()) {
        TypeError(key, "number", *j);
        return;
      }
      v = j->number_value();
      had = true;
      if (v < min) {
        diags_->Error(j->loc(), std::string("key '") + key +
                                    "' must be >= " + FormatNumber(min));
        return;
      }
    }
    if (had) *out = v;
  }

  void Bool(const char* key, bool* out) {
    const Json* v = Register(key);
    if (v == nullptr) return;
    if (!v->is_bool()) {
      TypeError(key, "bool", *v);
      return;
    }
    *out = v->bool_value();
  }

  void String(const char* key, std::string* out, SourceLoc* loc = nullptr) {
    const Json* v = Register(key);
    if (v == nullptr) return;
    if (!v->is_string()) {
      TypeError(key, "string", *v);
      return;
    }
    *out = v->string_value();
    if (loc != nullptr) *loc = v->loc();
  }

  // Registers `key` and returns it when present and an object/array.
  const Json* Object(const char* key) {
    const Json* v = Register(key);
    if (v == nullptr) return nullptr;
    if (!v->is_object()) {
      TypeError(key, "object", *v);
      return nullptr;
    }
    return v;
  }

  const Json* Array(const char* key) {
    const Json* v = Register(key);
    if (v == nullptr) return nullptr;
    if (!v->is_array()) {
      TypeError(key, "array", *v);
      return nullptr;
    }
    return v;
  }

  // Registers a key this reader handles elsewhere (e.g. "quick").
  void Allow(const char* key) { keys_.emplace_back(key); }

  bool Saw(const std::string& key) const {
    return obj_.Find(key) != nullptr;
  }

  // Reports unknown keys with a suggestion over everything registered.
  void Finish() {
    for (const Json::Member& m : obj_.members()) {
      bool known = false;
      for (const std::string& k : keys_) {
        if (k == m.key) {
          known = true;
          break;
        }
      }
      if (!known) {
        diags_->Error(m.key_loc, "unknown key '" + m.key + "'" +
                                     DidYouMeanSuffix(m.key, keys_));
      }
    }
  }

 private:
  const Json* Register(const char* key) {
    keys_.emplace_back(key);
    return obj_.Find(key);
  }

  void TypeError(const char* key, const char* want, const Json& got) {
    diags_->Error(got.loc(), std::string("key '") + key + "' expects " +
                                 want + ", got " + got.kind_name());
  }

  static std::string FormatNumber(double d) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", d);
    return buf;
  }

  const Json& obj_;
  DiagnosticEngine* diags_;
  std::vector<std::string> keys_;
};

// ---------------------------------------------------------------------------
// Section readers. One function per spec, shared by full and overlay parse.

void ReadCluster(const Json& obj, ClusterSpec* s, DiagnosticEngine* diags) {
  FieldReader r(obj, diags);
  SourceLoc preset_loc = obj.loc();
  r.String("preset", &s->preset, &preset_loc);
  if (r.Saw("preset")) {
    bool ok = false;
    for (const std::string& p : KnownPresets()) ok |= p == s->preset;
    if (!ok) {
      diags->Error(preset_loc, "unknown cluster preset '" + s->preset + "'" +
                                   DidYouMeanSuffix(s->preset, KnownPresets()));
    }
  }
  r.Int("islands", &s->islands, 1);
  r.Int("hosts_per_island", &s->hosts_per_island, 1);
  r.Int("devices_per_host", &s->devices_per_host, 1);
  r.OptDouble("host_jitter_frac", &s->host_jitter_frac, 0);
  r.OptDouble("hbm_capacity_mib", &s->hbm_capacity_mib, 0);
  r.OptDouble("host_dram_capacity_mib", &s->host_dram_capacity_mib, 0);
  if (const Json* flow = r.Object("ici_flow")) {
    FieldReader fr(*flow, diags);
    fr.Bool("enabled", &s->ici_flow);
    fr.Int("dims", &s->ici_flow_dims, 2);
    if (s->ici_flow_dims > 3) {
      diags->Error(flow->KeyLoc("dims"), "key 'dims' must be 2 or 3");
    }
    fr.Finish();
  }
  if (const Json* clos = r.Object("dcn_clos")) {
    FieldReader cr(*clos, diags);
    cr.Bool("enabled", &s->dcn_clos);
    cr.Int("hosts_per_leaf", &s->clos_hosts_per_leaf, 1);
    cr.Int("num_spines", &s->clos_num_spines, 1);
    cr.Double("oversubscription", &s->clos_oversubscription, 0);
    cr.Finish();
  }
  r.Finish();
}

void ReadMultitenant(const Json& obj, MultitenantSpec* s,
                     DiagnosticEngine* diags, bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.Double("nominal_pod_per_sec", &s->nominal_pod_per_sec, 0);
  r.Int("max_inflight_gangs", &s->max_inflight_gangs, 1);
  r.Double("warmup_ms", &s->warmup_ms, 0);
  r.Double("horizon_ms", &s->horizon_ms, 0);
  r.Int("queue_capacity", &s->queue_capacity, 1);
  r.Int("max_outstanding", &s->max_outstanding, 1);
  r.Int("retry_max_attempts", &s->retry_max_attempts, 1);
  r.Double("retry_initial_backoff_us", &s->retry_initial_backoff_us, 0);
  r.Double("retry_max_backoff_ms", &s->retry_max_backoff_ms, 0);
  r.Double("step_us", &s->step_us, 0);
  r.I64("collective_bytes", &s->collective_bytes, 0);
  r.I64("seed_base", &s->seed_base, 0);
  r.Finish();
}

const std::vector<std::string>& KnownFaultKinds() {
  static const std::vector<std::string> kKinds{"device_crash", "straggler",
                                              "link_degrade", "partition"};
  return kKinds;
}

// One fault_plan entry. Only the fields the kind uses are legal, so a
// parsed event serializes back to exactly the keys it was written with.
void ReadFaultPlanEvent(const Json& obj, FaultPlanEvent* e,
                        DiagnosticEngine* diags) {
  FieldReader r(obj, diags);
  SourceLoc kind_loc = obj.loc();
  r.String("kind", &e->kind, &kind_loc);
  r.Double("at_ms", &e->at_ms, 0);
  r.Double("window_ms", &e->window_ms, 0);
  r.Int("device", &e->device, 0);
  r.Int("host", &e->host, 0);
  r.Double("severity", &e->severity);
  r.Finish();

  bool known = false;
  for (const std::string& k : KnownFaultKinds()) known |= k == e->kind;
  if (!known) {
    diags->Error(kind_loc, "unknown fault kind '" + e->kind + "'" +
                               DidYouMeanSuffix(e->kind, KnownFaultKinds()));
    return;
  }
  const bool device_kind = e->kind == "device_crash" || e->kind == "straggler";
  if (!device_kind && r.Saw("device")) {
    diags->Error(obj.KeyLoc("device"),
                 "'device' does not apply to kind '" + e->kind + "'");
  }
  if (device_kind && r.Saw("host")) {
    diags->Error(obj.KeyLoc("host"),
                 "'host' does not apply to kind '" + e->kind + "'");
  }
  if (e->kind == "straggler") {
    if (e->severity < 1.0) {
      diags->Error(obj.KeyLoc("severity"),
                   "straggler 'severity' is a compute multiplier; "
                   "it must be >= 1");
    }
  } else if (e->kind == "link_degrade") {
    if (e->severity <= 0.0 || e->severity > 1.0) {
      diags->Error(obj.KeyLoc("severity"),
                   "link_degrade 'severity' is a bandwidth scale; "
                   "it must be in (0, 1]");
    }
  } else if (r.Saw("severity")) {
    diags->Error(obj.KeyLoc("severity"),
                 "'severity' does not apply to kind '" + e->kind + "'");
  }
}

void ReadFaults(const Json& obj, FaultsSpec* s, DiagnosticEngine* diags,
                bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.Double("horizon_ms", &s->horizon_ms, 0);
  r.Double("min_window_ms", &s->min_window_ms, 0);
  r.Double("max_window_ms", &s->max_window_ms, 0);
  r.Int("link_degrades", &s->link_degrades, 0);
  r.Bool("always_recover", &s->always_recover);
  r.Int("retry_max_attempts", &s->retry_max_attempts, 1);
  r.Double("retry_initial_backoff_us", &s->retry_initial_backoff_us, 0);
  r.Double("step_us", &s->step_us, 0);
  r.I64("collective_kib", &s->collective_kib, 0);
  r.I64("seed_base", &s->seed_base, 0);
  if (const Json* plan = r.Array("fault_plan")) {
    // A fault_plan in a quick overlay replaces the full plan wholesale
    // (merging timelines element-wise would be unintelligible).
    s->fault_plan.clear();
    for (const Json& entry : plan->array()) {
      if (!entry.is_object()) {
        diags->Error(entry.loc(),
                     std::string("fault_plan entries expect object, got ") +
                         entry.kind_name());
        continue;
      }
      FaultPlanEvent e;
      ReadFaultPlanEvent(entry, &e, diags);
      s->fault_plan.push_back(e);
    }
  }
  r.Finish();
  if (s->max_window_ms < s->min_window_ms) {
    diags->Error(obj.KeyLoc("max_window_ms"),
                 "'max_window_ms' must be >= 'min_window_ms'");
  }
}

void ReadOversub(const Json& obj, OversubSpec* s, DiagnosticEngine* diags,
                 bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.Int("tenants", &s->tenants, 1);
  r.Double("weights_per_shard_mib", &s->weights_per_shard_mib, 0);
  r.Double("output_per_shard_mib", &s->output_per_shard_mib, 0);
  r.Double("working_headroom_mib", &s->working_headroom_mib, 0);
  r.Int("requests_per_tenant", &s->requests_per_tenant, 1);
  r.Double("step_us", &s->step_us, 0);
  r.Finish();
}

void ReadServing(const Json& obj, ServingSpec* s, DiagnosticEngine* diags,
                 bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.I64("kv_bytes_per_token", &s->kv_bytes_per_token, 1);
  r.Int("max_batch", &s->max_batch, 1);
  r.Int("token_budget", &s->token_budget, 1);
  r.Int("min_prefill_tokens", &s->min_prefill_tokens, 1);
  r.Int("max_prefill_tokens", &s->max_prefill_tokens, 1);
  r.Int("min_decode_tokens", &s->min_decode_tokens, 1);
  r.Int("max_decode_tokens", &s->max_decode_tokens, 1);
  r.Double("horizon_ms", &s->horizon_ms, 0);
  r.Double("hbm_frac_of_working_set", &s->hbm_frac_of_working_set, 0);
  r.Double("hbm_headroom_kib", &s->hbm_headroom_kib, 0);
  r.I64("arrival_seed_base", &s->arrival_seed_base, 0);
  r.I64("arrival_seed_stride", &s->arrival_seed_stride, 0);
  r.I64("token_seed_base", &s->token_seed_base, 0);
  r.Finish();
  if (s->max_prefill_tokens < s->min_prefill_tokens) {
    diags->Error(obj.KeyLoc("max_prefill_tokens"),
                 "'max_prefill_tokens' must be >= 'min_prefill_tokens'");
  }
  if (s->max_decode_tokens < s->min_decode_tokens) {
    diags->Error(obj.KeyLoc("max_decode_tokens"),
                 "'max_decode_tokens' must be >= 'min_decode_tokens'");
  }
}

void ReadDisagg(const Json& obj, DisaggSpec* s, DiagnosticEngine* diags,
                bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  SourceLoc model_loc = obj.loc();
  r.String("model", &s->model, &model_loc);
  if (s->model != "decoder3b") {
    diags->Error(model_loc,
                 "unknown model '" + s->model + "'; known models: decoder3b");
  }
  r.Int("max_batch", &s->max_batch, 1);
  r.Int("token_budget", &s->token_budget, 1);
  r.Int("min_prefill_tokens", &s->min_prefill_tokens, 1);
  r.Int("max_prefill_tokens", &s->max_prefill_tokens, 1);
  r.Int("min_decode_tokens", &s->min_decode_tokens, 1);
  r.Int("max_decode_tokens", &s->max_decode_tokens, 1);
  r.Double("horizon_ms", &s->horizon_ms, 0);
  r.Double("hbm_headroom_mib", &s->hbm_headroom_mib, 0);
  r.I64("arrival_seed_base", &s->arrival_seed_base, 0);
  r.I64("arrival_seed_stride", &s->arrival_seed_stride, 0);
  r.I64("token_seed_base", &s->token_seed_base, 0);
  r.Finish();
}

void ReadNetwork(const Json& obj, NetworkSpec* s, DiagnosticEngine* diags,
                 bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.Double("message_mib", &s->message_mib, 0);
  r.Int("hosts", &s->hosts, 2);
  r.Int("hosts_per_leaf", &s->hosts_per_leaf, 1);
  r.Int("num_spines", &s->num_spines, 1);
  r.Finish();
}

void ReadFig12(const Json& obj, Fig12Spec* s, DiagnosticEngine* diags,
               bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.Int("steps", &s->steps, 1);
  r.Int("chunks", &s->chunks, 1);
  r.Int("max_inflight_gangs", &s->max_inflight_gangs, 1);
  r.Int("model_parallel", &s->model_parallel, 1);
  r.Finish();
}

void ReadParallel(const Json& obj, ParallelSpec* s, DiagnosticEngine* diags,
                  bool overlay) {
  FieldReader r(obj, diags);
  if (!overlay) r.Allow("quick");
  r.Int("steps", &s->steps, 1);
  r.Double("ici_kib", &s->ici_kib, 0);
  r.Double("dcn_kib", &s->dcn_kib, 0);
  r.Int("devices_per_host", &s->devices_per_host, 1);
  r.Double("lookahead_us", &s->lookahead_us, 1);
  r.Finish();
}

template <typename T, typename ReadFn>
void ReadSection(const Json& obj, WithQuick<T>* out, DiagnosticEngine* diags,
                 ReadFn read) {
  out->present = true;
  out->loc = obj.loc();
  read(obj, &out->full, diags, /*overlay=*/false);
  out->quick = out->full;
  if (const Json* q = obj.Find("quick")) {
    if (!q->is_object()) {
      diags->Error(q->loc(), std::string("key 'quick' expects object, got ") +
                                 q->kind_name());
      return;
    }
    read(*q, &out->quick, diags, /*overlay=*/true);
  }
}

// --- Sweep axes ------------------------------------------------------------

enum class AxisType { kInt, kDouble, kString };

const char* AxisTypeName(AxisType t) {
  switch (t) {
    case AxisType::kInt: return "int";
    case AxisType::kDouble: return "double";
    case AxisType::kString: return "string";
  }
  return "?";
}

// Reads one "values"/"quick_values" array into ParamValues. Numeric arrays
// mixing ints and doubles promote everything to double; otherwise elements
// must agree in type. Returns the element type via *type.
bool ReadAxisValues(const Json& arr, const char* key,
                    std::vector<sweep::ParamValue>* out, AxisType* type,
                    DiagnosticEngine* diags) {
  if (arr.array().empty()) {
    diags->Error(arr.loc(), std::string("'") + key + "' must not be empty");
    return false;
  }
  bool any_double = false, any_int = false, any_string = false;
  for (const Json& v : arr.array()) {
    if (v.is_int()) {
      any_int = true;
    } else if (v.is_double()) {
      any_double = true;
    } else if (v.is_string()) {
      any_string = true;
    } else {
      diags->Error(v.loc(), std::string("'") + key +
                                "' elements must be numbers or strings, got " +
                                v.kind_name());
      return false;
    }
  }
  if (any_string && (any_int || any_double)) {
    diags->Error(arr.loc(), std::string("'") + key +
                                "' mixes strings and numbers");
    return false;
  }
  out->clear();
  for (const Json& v : arr.array()) {
    if (any_string) {
      out->emplace_back(v.string_value());
    } else if (any_double) {
      out->emplace_back(v.number_value());
    } else {
      out->emplace_back(v.int_value());
    }
  }
  *type = any_string ? AxisType::kString
                     : (any_double ? AxisType::kDouble : AxisType::kInt);
  return true;
}

void ReadSweep(const Json& obj, Scenario* out, DiagnosticEngine* diags) {
  out->sweep_loc = obj.loc();
  FieldReader r(obj, diags);
  const Json* axes = r.Array("axes");
  r.Finish();
  if (axes == nullptr) {
    if (obj.Find("axes") == nullptr) {
      diags->Error(obj.loc(), "'sweep' requires an 'axes' array");
    }
    return;
  }
  for (const Json& axis_obj : axes->array()) {
    if (!axis_obj.is_object()) {
      diags->Error(axis_obj.loc(), std::string("axis entries expect object, "
                                               "got ") +
                                       axis_obj.kind_name());
      continue;
    }
    SweepAxis axis;
    axis.loc = axis_obj.loc();
    FieldReader ar(axis_obj, diags);
    ar.String("name", &axis.name);
    const Json* values = ar.Array("values");
    const Json* quick = ar.Array("quick_values");
    ar.Finish();
    if (axis.name.empty()) {
      diags->Error(axis_obj.loc(), "axis requires a non-empty 'name'");
      continue;
    }
    for (const SweepAxis& prev : out->sweep) {
      if (prev.name == axis.name) {
        diags->Error(axis_obj.KeyLoc("name"),
                     "duplicate axis '" + axis.name + "'");
      }
    }
    if (values == nullptr) {
      diags->Error(axis_obj.loc(),
                   "axis '" + axis.name + "' requires a 'values' array");
      continue;
    }
    AxisType type = AxisType::kInt;
    if (!ReadAxisValues(*values, "values", &axis.values, &type, diags)) {
      continue;
    }
    if (quick != nullptr) {
      AxisType qtype = AxisType::kInt;
      if (!ReadAxisValues(*quick, "quick_values", &axis.quick_values, &qtype,
                          diags)) {
        continue;
      }
      // Numeric widening keeps [1, 2] usable as quick values of a double
      // axis; everything else must agree.
      if (qtype == AxisType::kInt && type == AxisType::kDouble) {
        for (sweep::ParamValue& v : axis.quick_values) {
          v = static_cast<double>(std::get<std::int64_t>(v));
        }
        qtype = AxisType::kDouble;
      }
      if (qtype != type) {
        diags->Error(quick->loc(),
                     "axis '" + axis.name + "': 'quick_values' are " +
                         AxisTypeName(qtype) + " but 'values' are " +
                         AxisTypeName(type));
        continue;
      }
    }
    out->sweep.push_back(std::move(axis));
  }
}

// ---------------------------------------------------------------------------
// Canonical serialization.

// Shortest representation that parses back to the same double, with a
// ".0" suffix for integral values so the canonical form re-parses as a
// double (round-trip stability of the int/double distinction).
std::string FormatCanonicalDouble(double d) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  std::string s = buf;
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

std::string FormatParamValue(const sweep::ParamValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) return FormatCanonicalDouble(*d);
  return "\"" + sweep::JsonEscape(std::get<std::string>(v)) + "\"";
}

// Tiny canonical-JSON emitter: 2-space indent, one member per line, scalar
// arrays inline.
class JsonWriter {
 public:
  std::string Take() { return std::move(out_); }

  void BeginObject() {
    Value("{");
    stack_.push_back(true);
  }
  void EndObject() {
    stack_.pop_back();
    out_ += "\n" + Indent() + "}";
  }
  void Key(const std::string& k) {
    if (!stack_.back()) out_ += ",";
    stack_.back() = false;
    out_ += "\n" + Indent() + "\"" + sweep::JsonEscape(k) + "\": ";
  }
  void String(const std::string& v) {
    Value("\"" + sweep::JsonEscape(v) + "\"");
  }
  void Int(std::int64_t v) { Value(std::to_string(v)); }
  void Double(double v) { Value(FormatCanonicalDouble(v)); }
  void Bool(bool v) { Value(v ? "true" : "false"); }
  void Raw(const std::string& v) { Value(v); }

  void InlineArray(const std::vector<sweep::ParamValue>& values) {
    std::string s = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) s += ", ";
      s += FormatParamValue(values[i]);
    }
    s += "]";
    Value(s);
  }

  // Array of objects, one object per element, emitted via `fn`.
  template <typename It, typename Fn>
  void ObjectArray(It begin, It end, Fn fn) {
    Value("[");
    bool first = true;
    stack_.push_back(true);
    for (It it = begin; it != end; ++it) {
      if (!first) out_ += ",";
      first = false;
      out_ += "\n" + Indent();
      fn(*it);
    }
    stack_.pop_back();
    out_ += "\n" + Indent() + "]";
  }

 private:
  std::string Indent() const {
    return std::string(2 * stack_.size(), ' ');
  }
  void Value(const std::string& v) { out_ += v; }

  std::string out_;
  std::vector<bool> stack_;  // per level: no member emitted yet
};

// Emits `key: value` only when no baseline is given or the value differs
// from it — quick overlays canonicalize to their diff vs the full spec.
template <typename T, typename EmitFn>
void Diffed(JsonWriter* w, const char* key, const T& value, const T* base,
            EmitFn emit) {
  if (base != nullptr && value == *base) return;
  w->Key(key);
  emit(value);
}

void EmitInt(JsonWriter* w, const char* key, std::int64_t v,
             const std::int64_t* base) {
  Diffed(w, key, v, base, [w](std::int64_t x) { w->Int(x); });
}
void EmitInt(JsonWriter* w, const char* key, int v, const int* base) {
  Diffed(w, key, v, base, [w](int x) { w->Int(x); });
}
void EmitDouble(JsonWriter* w, const char* key, double v, const double* base) {
  Diffed(w, key, v, base, [w](double x) { w->Double(x); });
}
void EmitBool(JsonWriter* w, const char* key, bool v, const bool* base) {
  Diffed(w, key, v, base, [w](bool x) { w->Bool(x); });
}
void EmitString(JsonWriter* w, const char* key, const std::string& v,
                const std::string* base) {
  Diffed(w, key, v, base, [w](const std::string& x) { w->String(x); });
}

#define PW_EMIT_INT(field) EmitInt(w, #field, s.field, base ? &base->field : nullptr)
#define PW_EMIT_DOUBLE(field) \
  EmitDouble(w, #field, s.field, base ? &base->field : nullptr)
#define PW_EMIT_BOOL(field) \
  EmitBool(w, #field, s.field, base ? &base->field : nullptr)
#define PW_EMIT_STRING(field) \
  EmitString(w, #field, s.field, base ? &base->field : nullptr)

void EmitMultitenant(JsonWriter* w, const MultitenantSpec& s,
                     const MultitenantSpec* base) {
  PW_EMIT_DOUBLE(nominal_pod_per_sec);
  PW_EMIT_INT(max_inflight_gangs);
  PW_EMIT_DOUBLE(warmup_ms);
  PW_EMIT_DOUBLE(horizon_ms);
  PW_EMIT_INT(queue_capacity);
  PW_EMIT_INT(max_outstanding);
  PW_EMIT_INT(retry_max_attempts);
  PW_EMIT_DOUBLE(retry_initial_backoff_us);
  PW_EMIT_DOUBLE(retry_max_backoff_ms);
  PW_EMIT_DOUBLE(step_us);
  PW_EMIT_INT(collective_bytes);
  PW_EMIT_INT(seed_base);
}

void EmitFaults(JsonWriter* w, const FaultsSpec& s, const FaultsSpec* base) {
  PW_EMIT_DOUBLE(horizon_ms);
  PW_EMIT_DOUBLE(min_window_ms);
  PW_EMIT_DOUBLE(max_window_ms);
  PW_EMIT_INT(link_degrades);
  PW_EMIT_BOOL(always_recover);
  PW_EMIT_INT(retry_max_attempts);
  PW_EMIT_DOUBLE(retry_initial_backoff_us);
  PW_EMIT_DOUBLE(step_us);
  PW_EMIT_INT(collective_kib);
  PW_EMIT_INT(seed_base);
  // Only the keys the kind accepts are emitted, mirroring what the parser
  // admits, so parse -> serialize stays a fixed point.
  const bool plan_differs =
      base != nullptr ? !(s.fault_plan == base->fault_plan)
                      : !s.fault_plan.empty();
  if (plan_differs) {
    w->Key("fault_plan");
    w->ObjectArray(s.fault_plan.begin(), s.fault_plan.end(),
                   [w](const FaultPlanEvent& e) {
                     w->BeginObject();
                     w->Key("kind");
                     w->String(e.kind);
                     w->Key("at_ms");
                     w->Double(e.at_ms);
                     w->Key("window_ms");
                     w->Double(e.window_ms);
                     if (e.kind == "device_crash" || e.kind == "straggler") {
                       w->Key("device");
                       w->Int(e.device);
                     } else {
                       w->Key("host");
                       w->Int(e.host);
                     }
                     if (e.kind == "straggler" || e.kind == "link_degrade") {
                       w->Key("severity");
                       w->Double(e.severity);
                     }
                     w->EndObject();
                   });
  }
}

void EmitOversub(JsonWriter* w, const OversubSpec& s, const OversubSpec* base) {
  PW_EMIT_INT(tenants);
  PW_EMIT_DOUBLE(weights_per_shard_mib);
  PW_EMIT_DOUBLE(output_per_shard_mib);
  PW_EMIT_DOUBLE(working_headroom_mib);
  PW_EMIT_INT(requests_per_tenant);
  PW_EMIT_DOUBLE(step_us);
}

void EmitServing(JsonWriter* w, const ServingSpec& s, const ServingSpec* base) {
  PW_EMIT_INT(kv_bytes_per_token);
  PW_EMIT_INT(max_batch);
  PW_EMIT_INT(token_budget);
  PW_EMIT_INT(min_prefill_tokens);
  PW_EMIT_INT(max_prefill_tokens);
  PW_EMIT_INT(min_decode_tokens);
  PW_EMIT_INT(max_decode_tokens);
  PW_EMIT_DOUBLE(horizon_ms);
  PW_EMIT_DOUBLE(hbm_frac_of_working_set);
  PW_EMIT_DOUBLE(hbm_headroom_kib);
  PW_EMIT_INT(arrival_seed_base);
  PW_EMIT_INT(arrival_seed_stride);
  PW_EMIT_INT(token_seed_base);
}

void EmitDisagg(JsonWriter* w, const DisaggSpec& s, const DisaggSpec* base) {
  PW_EMIT_STRING(model);
  PW_EMIT_INT(max_batch);
  PW_EMIT_INT(token_budget);
  PW_EMIT_INT(min_prefill_tokens);
  PW_EMIT_INT(max_prefill_tokens);
  PW_EMIT_INT(min_decode_tokens);
  PW_EMIT_INT(max_decode_tokens);
  PW_EMIT_DOUBLE(horizon_ms);
  PW_EMIT_DOUBLE(hbm_headroom_mib);
  PW_EMIT_INT(arrival_seed_base);
  PW_EMIT_INT(arrival_seed_stride);
  PW_EMIT_INT(token_seed_base);
}

void EmitNetwork(JsonWriter* w, const NetworkSpec& s, const NetworkSpec* base) {
  PW_EMIT_DOUBLE(message_mib);
  PW_EMIT_INT(hosts);
  PW_EMIT_INT(hosts_per_leaf);
  PW_EMIT_INT(num_spines);
}

void EmitFig12(JsonWriter* w, const Fig12Spec& s, const Fig12Spec* base) {
  PW_EMIT_INT(steps);
  PW_EMIT_INT(chunks);
  PW_EMIT_INT(max_inflight_gangs);
  PW_EMIT_INT(model_parallel);
}

void EmitParallel(JsonWriter* w, const ParallelSpec& s,
                  const ParallelSpec* base) {
  PW_EMIT_INT(steps);
  PW_EMIT_DOUBLE(ici_kib);
  PW_EMIT_DOUBLE(dcn_kib);
  PW_EMIT_INT(devices_per_host);
  PW_EMIT_DOUBLE(lookahead_us);
}

#undef PW_EMIT_INT
#undef PW_EMIT_DOUBLE
#undef PW_EMIT_BOOL
#undef PW_EMIT_STRING

// Spec equality, used only to decide whether a quick overlay exists.
#define PW_EQ(field) a.field == b.field
bool SpecEq(const MultitenantSpec& a, const MultitenantSpec& b) {
  return PW_EQ(nominal_pod_per_sec) &&
         PW_EQ(max_inflight_gangs) && PW_EQ(warmup_ms) && PW_EQ(horizon_ms) &&
         PW_EQ(queue_capacity) && PW_EQ(max_outstanding) &&
         PW_EQ(retry_max_attempts) && PW_EQ(retry_initial_backoff_us) &&
         PW_EQ(retry_max_backoff_ms) && PW_EQ(step_us) &&
         PW_EQ(collective_bytes) && PW_EQ(seed_base);
}
bool SpecEq(const FaultsSpec& a, const FaultsSpec& b) {
  return PW_EQ(horizon_ms) && PW_EQ(min_window_ms) && PW_EQ(max_window_ms) &&
         PW_EQ(link_degrades) && PW_EQ(always_recover) &&
         PW_EQ(retry_max_attempts) && PW_EQ(retry_initial_backoff_us) &&
         PW_EQ(step_us) && PW_EQ(collective_kib) && PW_EQ(seed_base) &&
         PW_EQ(fault_plan);
}
bool SpecEq(const OversubSpec& a, const OversubSpec& b) {
  return PW_EQ(tenants) && PW_EQ(weights_per_shard_mib) &&
         PW_EQ(output_per_shard_mib) && PW_EQ(working_headroom_mib) &&
         PW_EQ(requests_per_tenant) && PW_EQ(step_us);
}
bool SpecEq(const ServingSpec& a, const ServingSpec& b) {
  return PW_EQ(kv_bytes_per_token) && PW_EQ(max_batch) &&
         PW_EQ(token_budget) && PW_EQ(min_prefill_tokens) &&
         PW_EQ(max_prefill_tokens) && PW_EQ(min_decode_tokens) &&
         PW_EQ(max_decode_tokens) && PW_EQ(horizon_ms) &&
         PW_EQ(hbm_frac_of_working_set) && PW_EQ(hbm_headroom_kib) &&
         PW_EQ(arrival_seed_base) && PW_EQ(arrival_seed_stride) &&
         PW_EQ(token_seed_base);
}
bool SpecEq(const NetworkSpec& a, const NetworkSpec& b) {
  return PW_EQ(message_mib) && PW_EQ(hosts) && PW_EQ(hosts_per_leaf) &&
         PW_EQ(num_spines);
}
bool SpecEq(const Fig12Spec& a, const Fig12Spec& b) {
  return PW_EQ(steps) && PW_EQ(chunks) && PW_EQ(max_inflight_gangs) &&
         PW_EQ(model_parallel);
}
bool SpecEq(const ParallelSpec& a, const ParallelSpec& b) {
  return PW_EQ(steps) && PW_EQ(ici_kib) && PW_EQ(dcn_kib) &&
         PW_EQ(devices_per_host) && PW_EQ(lookahead_us);
}
bool SpecEq(const DisaggSpec& a, const DisaggSpec& b) {
  return PW_EQ(model) && PW_EQ(max_batch) && PW_EQ(token_budget) &&
         PW_EQ(min_prefill_tokens) && PW_EQ(max_prefill_tokens) &&
         PW_EQ(min_decode_tokens) && PW_EQ(max_decode_tokens) &&
         PW_EQ(horizon_ms) && PW_EQ(hbm_headroom_mib) &&
         PW_EQ(arrival_seed_base) && PW_EQ(arrival_seed_stride) &&
         PW_EQ(token_seed_base);
}
#undef PW_EQ

template <typename T, typename EmitFn>
void EmitSection(JsonWriter* w, const char* key, const WithQuick<T>& section,
                 EmitFn emit) {
  if (!section.present) return;
  w->Key(key);
  w->BeginObject();
  emit(w, section.full, static_cast<const T*>(nullptr));
  // The quick overlay reduces to its diff vs the full spec; omit when empty.
  if (!SpecEq(section.quick, section.full)) {
    w->Key("quick");
    w->BeginObject();
    emit(w, section.quick, &section.full);
    w->EndObject();
  }
  w->EndObject();
}

}  // namespace

sweep::ParamGrid Scenario::Grid(bool quick) const {
  sweep::ParamGrid grid;
  for (const SweepAxis& axis : sweep) {
    grid.Axis(axis.name, axis.For(quick));
  }
  return grid;
}

std::string Scenario::Serialize() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.Key("family");
  w.String(family);
  if (!description.empty()) {
    w.Key("description");
    w.String(description);
  }

  w.Key("cluster");
  w.BeginObject();
  w.Key("preset");
  w.String(cluster.preset);
  w.Key("islands");
  w.Int(cluster.islands);
  w.Key("hosts_per_island");
  w.Int(cluster.hosts_per_island);
  w.Key("devices_per_host");
  w.Int(cluster.devices_per_host);
  if (cluster.host_jitter_frac) {
    w.Key("host_jitter_frac");
    w.Double(*cluster.host_jitter_frac);
  }
  if (cluster.hbm_capacity_mib) {
    w.Key("hbm_capacity_mib");
    w.Double(*cluster.hbm_capacity_mib);
  }
  if (cluster.host_dram_capacity_mib) {
    w.Key("host_dram_capacity_mib");
    w.Double(*cluster.host_dram_capacity_mib);
  }
  if (cluster.ici_flow || cluster.ici_flow_dims != 2) {
    w.Key("ici_flow");
    w.BeginObject();
    w.Key("enabled");
    w.Bool(cluster.ici_flow);
    w.Key("dims");
    w.Int(cluster.ici_flow_dims);
    w.EndObject();
  }
  if (cluster.dcn_clos || cluster.clos_hosts_per_leaf != 8 ||
      cluster.clos_num_spines != 4 || cluster.clos_oversubscription != 1.0) {
    w.Key("dcn_clos");
    w.BeginObject();
    w.Key("enabled");
    w.Bool(cluster.dcn_clos);
    w.Key("hosts_per_leaf");
    w.Int(cluster.clos_hosts_per_leaf);
    w.Key("num_spines");
    w.Int(cluster.clos_num_spines);
    w.Key("oversubscription");
    w.Double(cluster.clos_oversubscription);
    w.EndObject();
  }
  w.EndObject();

  EmitSection(&w, "multitenant", multitenant, EmitMultitenant);
  EmitSection(&w, "faults", faults, EmitFaults);
  EmitSection(&w, "oversub", oversub, EmitOversub);
  EmitSection(&w, "serving", serving, EmitServing);
  EmitSection(&w, "serving_disagg", disagg, EmitDisagg);
  EmitSection(&w, "network", network, EmitNetwork);
  EmitSection(&w, "fig12_twoisland", fig12, EmitFig12);
  EmitSection(&w, "parallel", parallel, EmitParallel);

  w.Key("sweep");
  w.BeginObject();
  w.Key("axes");
  w.ObjectArray(sweep.begin(), sweep.end(), [&w](const SweepAxis& axis) {
    w.BeginObject();
    w.Key("name");
    w.String(axis.name);
    w.Key("values");
    w.InlineArray(axis.values);
    if (!axis.quick_values.empty() && axis.quick_values != axis.values) {
      w.Key("quick_values");
      w.InlineArray(axis.quick_values);
    }
    w.EndObject();
  });
  w.EndObject();

  w.EndObject();
  std::string out = w.Take();
  out += "\n";
  return out;
}

bool ParseScenario(const std::string& text, Scenario* out,
                   DiagnosticEngine* diags) {
  Json root;
  if (!ParseJson(text, &root, diags)) return false;
  if (!root.is_object()) {
    diags->Error(root.loc(), std::string("top level expects object, got ") +
                                 root.kind_name());
    return false;
  }
  *out = Scenario();
  out->file = diags->file();

  FieldReader r(root, diags);
  r.String("name", &out->name, &out->name_loc);
  r.String("family", &out->family, &out->family_loc);
  r.String("description", &out->description);
  const Json* cluster = r.Object("cluster");
  const Json* sweep_obj = r.Object("sweep");
  const Json* mt = r.Object("multitenant");
  const Json* fl = r.Object("faults");
  const Json* ov = r.Object("oversub");
  const Json* sv = r.Object("serving");
  const Json* dg = r.Object("serving_disagg");
  const Json* nw = r.Object("network");
  const Json* fg = r.Object("fig12_twoisland");
  const Json* pl = r.Object("parallel");
  r.Finish();

  if (out->name.empty()) {
    diags->Error(root.loc(), "scenario requires a non-empty 'name'");
  } else {
    for (char c : out->name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
      if (!ok) {
        diags->Error(out->name_loc,
                     "'name' must match [A-Za-z0-9_-]+ (it names the "
                     "BENCH_<name>.json result file and the query-path root)");
        break;
      }
    }
  }
  if (out->family.empty()) {
    diags->Error(root.loc(), "scenario requires a 'family'");
  } else {
    bool known = false;
    for (const std::string& f : KnownFamilies()) known |= f == out->family;
    if (!known) {
      diags->Error(out->family_loc,
                   "unknown family '" + out->family + "'" +
                       DidYouMeanSuffix(out->family, KnownFamilies()));
    }
  }

  if (cluster != nullptr) ReadCluster(*cluster, &out->cluster, diags);
  if (mt != nullptr) ReadSection(*mt, &out->multitenant, diags, ReadMultitenant);
  if (fl != nullptr) ReadSection(*fl, &out->faults, diags, ReadFaults);
  if (ov != nullptr) ReadSection(*ov, &out->oversub, diags, ReadOversub);
  if (sv != nullptr) ReadSection(*sv, &out->serving, diags, ReadServing);
  if (dg != nullptr) ReadSection(*dg, &out->disagg, diags, ReadDisagg);
  if (nw != nullptr) ReadSection(*nw, &out->network, diags, ReadNetwork);
  if (fg != nullptr) ReadSection(*fg, &out->fig12, diags, ReadFig12);
  if (pl != nullptr) ReadSection(*pl, &out->parallel, diags, ReadParallel);

  // A section for a family this scenario does not run is almost certainly a
  // mistake (its knobs would be silently ignored).
  struct SectionRef {
    const char* key;
    const Json* obj;
  };
  for (const SectionRef& s : {SectionRef{"multitenant", mt},
                              SectionRef{"faults", fl},
                              SectionRef{"oversub", ov},
                              SectionRef{"serving", sv},
                              SectionRef{"serving_disagg", dg},
                              SectionRef{"network", nw},
                              SectionRef{"fig12_twoisland", fg},
                              SectionRef{"parallel", pl}}) {
    if (s.obj != nullptr && out->family != s.key) {
      diags->Error(root.KeyLoc(s.key),
                   std::string("section '") + s.key +
                       "' does not match family '" + out->family + "'");
    }
  }

  if (sweep_obj == nullptr) {
    if (root.Find("sweep") == nullptr) {
      diags->Error(root.loc(), "scenario requires a 'sweep' section");
    }
  } else {
    ReadSweep(*sweep_obj, out, diags);
  }

  return diags->ok();
}

bool LoadScenarioFile(const std::string& path, Scenario* out,
                      DiagnosticEngine* diags) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *diags = DiagnosticEngine(path, "");
    diags->Error({0, 0}, "cannot open file");
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *diags = DiagnosticEngine(path, buf.str());
  return ParseScenario(buf.str(), out, diags);
}

std::string ScenarioDir() {
  if (const char* env = std::getenv("PWSIM_SCENARIO_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#ifdef PWSIM_SCENARIO_DIR_DEFAULT
  return PWSIM_SCENARIO_DIR_DEFAULT;
#else
  return "scenarios";
#endif
}

std::string DefaultScenarioPath(const std::string& name) {
  return ScenarioDir() + "/" + name + ".json";
}

}  // namespace pw::scenario
