// Family registry + scenario runner: the layer that turns a validated
// Scenario into a sweep::ResultTable and a BENCH_<name>.json file.
//
// A Family is one measurement harness (the code that used to live in a
// bench_*.cpp main): it declares the sweep axes it understands, measures a
// single grid point on a private simulator, and reduces the finished table
// to the summary metrics CI trend lines track. The registry maps the
// scenario's "family" string to that harness, so bench binaries and the
// pwsim CLI share one implementation:
//
//   Scenario sc;
//   DiagnosticEngine diags;
//   if (!LoadScenarioFile(path, &sc, &diags) ||
//       !ValidateForFamily(&sc, &diags)) { ... diags.Render() ... }
//   RunResult result;
//   std::string error;
//   RunScenario(sc, {.quick = true}, &result, &error);
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "sweep/param_grid.h"
#include "sweep/result_table.h"
#include "sweep/sweep_runner.h"

namespace pw::scenario {

enum class AxisKind { kInt, kDouble, kString };

const char* AxisKindName(AxisKind kind);
// Kind of a parsed axis value (which element of the ParamValue variant).
AxisKind KindOfValue(const sweep::ParamValue& v);

// One sweep axis a family understands. Every declared axis is required:
// the family's point function reads all of them at every grid point.
struct FamilyAxis {
  std::string name;
  AxisKind kind = AxisKind::kInt;
};

// Per-point measurement context. `sim_threads` is the thread budget for a
// single point's simulation: families whose points run on the partitioned
// engine (sim/partition.h) pass it as PartitionedSimulator threads; serial
// families ignore it. RunScenario splits the overall thread budget so that
// sweep-parallelism x sim-parallelism never oversubscribes the machine.
struct MeasureCtx {
  bool quick = false;
  int sim_threads = 1;
};

struct Family {
  std::string name;
  // One-line description for `pwsim families`.
  std::string description;
  std::vector<FamilyAxis> axes;
  // Whether RunScenario reruns the sweep on one thread and compares tables
  // byte-for-byte (families whose BENCH summary carries "deterministic").
  bool check_determinism = true;

  // Measures one grid point. Runs concurrently across points; must build
  // all simulator state privately from (scenario, ctx, point).
  std::function<sweep::Metrics(const Scenario& s, const MeasureCtx& ctx,
                               const sweep::ParamPoint& p)>
      measure;
  // Reduces the finished table to the BENCH summary metrics. `points` is
  // grid.Points() aligned with table.rows().
  std::function<std::map<std::string, double>(
      const Scenario& s, bool quick, const sweep::ResultTable& table,
      const std::vector<sweep::ParamPoint>& points, bool deterministic)>
      summarize;
};

// nullptr when unknown. The registry is built lazily on first use.
const Family* FindFamily(const std::string& name);
std::vector<std::string> FamilyNames();

// Family-aware validation: every scenario axis must be one the family
// declares (with a "did you mean" over its axis names), every family axis
// must be present, and value kinds must match — whole-number values of a
// double axis are promoted in place (so "values": [1, 4] works for
// rate_scale). Reports into `diags`; returns diags->ok().
bool ValidateForFamily(Scenario* s, DiagnosticEngine* diags);

struct RunOptions {
  bool quick = false;
  // SweepRunner worker threads; 0 = hardware concurrency.
  int threads = 0;
  // Per-point simulator threads (pwsim run --sim-threads N). When > 1 the
  // sweep budget is divided: sweep workers = max(1, threads / sim_threads),
  // so points running a partitioned engine don't oversubscribe.
  int sim_threads = 1;
  // Master switch for the 1-thread determinism rerun (ANDed with the
  // family's check_determinism).
  bool check_determinism = true;
  // Write BENCH_<name>.json after the run.
  bool write_json = true;
  // Directory for the JSON ("" = $PWSIM_BENCH_DIR or ".").
  std::string out_dir;
};

struct RunResult {
  sweep::ResultTable table;
  // grid.Points() for the grid that produced `table` (same order).
  std::vector<sweep::ParamPoint> points;
  std::map<std::string, double> summary;
  bool deterministic = true;
  // Path of the written BENCH_<name>.json ("" if not written).
  std::string json_path;
};

// Lowers `s` (already parsed AND ValidateForFamily-ed) through SweepRunner.
// Returns false with *error set on a non-diagnostic failure (unknown
// family). Measurement itself cannot fail — gates live in the callers.
bool RunScenario(const Scenario& s, const RunOptions& opts, RunResult* out,
                 std::string* error);

}  // namespace pw::scenario
