#include "workload/latency_recorder.h"

#include <algorithm>

namespace pw::workload {

LatencyRecorder::LatencyRecorder(std::size_t queue_capacity)
    : queue_depth_(0.0, static_cast<double>(queue_capacity + 1),
                   static_cast<int>(queue_capacity + 1)),
      queue_capacity_(queue_capacity) {}

void LatencyRecorder::BeginMeasurementWindow() {
  latency_us_ = PercentileSampler();
  queue_depth_ = Histogram(0.0, static_cast<double>(queue_capacity_ + 1),
                           static_cast<int>(queue_capacity_ + 1));
}

void LatencyRecorder::OnArrival(std::size_t queue_depth) {
  ++arrivals_;
  queue_depth_.Add(static_cast<double>(queue_depth));
}

void LatencyRecorder::OnCompletion(Duration latency, bool failed) {
  if (failed) {
    ++failures_;
    return;
  }
  ++completions_;
  latency_us_.Add(latency.ToMicros());
}

double LatencyRecorder::MeanQueueDepth() const {
  // Integer depth d lands in bucket [d, d+1), so the midpoint mean is the
  // true mean plus half a bucket (and 0 for an empty histogram).
  return std::max(0.0, queue_depth_.MidpointMean() - 0.5);
}

double LatencyRecorder::shed_fraction() const {
  if (arrivals_ == 0) return 0.0;
  return static_cast<double>(sheds_) / static_cast<double>(arrivals_);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  latency_us_.Merge(other.latency_us_);
  if (queue_depth_.SameLayout(other.queue_depth_)) {
    queue_depth_.Merge(other.queue_depth_);
  }
  arrivals_ += other.arrivals_;
  completions_ += other.completions_;
  failures_ += other.failures_;
  sheds_ += other.sheds_;
  admission_retries_ += other.admission_retries_;
}

}  // namespace pw::workload
