#include "workload/admission_queue.h"

#include <utility>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::workload {

const char* ToString(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropTail: return "drop-tail";
    case ShedPolicy::kRejectWithRetry: return "reject-retry";
  }
  return "unknown";
}

AdmissionQueue::AdmissionQueue(pathways::Client* client,
                               const pathways::PathwaysProgram* program,
                               AdmissionOptions options,
                               LatencyRecorder* recorder)
    : client_(client),
      program_(program),
      options_(options),
      recorder_(recorder) {
  PW_CHECK(client != nullptr && program != nullptr && recorder != nullptr);
  PW_CHECK_GT(options_.capacity, 0u);
  PW_CHECK_GT(options_.max_outstanding, 0);
}

bool AdmissionQueue::Offer() {
  recorder_->OnArrival(waiting_.size());
  return OfferInternal(
      Request{client_->runtime().simulator().now(), /*offers=*/1});
}

bool AdmissionQueue::OfferInternal(Request req) {
  if (waiting_.size() >= options_.capacity) {
    if (options_.policy == ShedPolicy::kDropTail ||
        req.offers >= options_.retry.max_attempts) {
      recorder_->OnShed();
      return false;
    }
    recorder_->OnAdmissionRetry();
    const Duration backoff = options_.retry.BackoffFor(req.offers);
    ++req.offers;
    ++pending_reoffers_;
    client_->runtime().simulator().Schedule(backoff, [this, req] {
      --pending_reoffers_;
      OfferInternal(req);
    });
    return true;
  }
  waiting_.push_back(req);
  Pump();
  return true;
}

void AdmissionQueue::Pump() {
  while (outstanding_ < options_.max_outstanding && !waiting_.empty()) {
    const Request req = waiting_.front();
    waiting_.pop_front();
    ++outstanding_;
    client_->Submit(
        program_,
        [this, req](const pathways::ExecutionResult& result) {
          --outstanding_;
          recorder_->OnCompletion(
              client_->runtime().simulator().now() - req.arrival,
              result.failed);
          Pump();
        },
        options_.retry_executions ? std::optional(options_.retry)
                                  : std::nullopt);
  }
}

}  // namespace pw::workload
