// Umbrella header for the multi-tenant traffic engine: open/closed-loop
// generators, bounded admission queues with shed policies, and per-client
// latency recorders. See docs/WORKLOADS.md for the model and knobs.
#pragma once

#include "workload/admission_queue.h"
#include "workload/latency_recorder.h"
#include "workload/traffic.h"
