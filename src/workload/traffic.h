// Deterministic multi-tenant traffic generators (see docs/WORKLOADS.md).
//
// OpenLoopGenerator models a population of users who do not wait for each
// other: inter-arrival gaps are drawn from pw::Rng (Poisson, uniform, or
// bursty), so offered load is independent of how the system keeps up —
// the regime where queues actually grow and proportional-share scheduling
// is observable (paper Fig. 9 under serving traffic). ClosedLoopGenerator
// models a fixed pool of synchronous callers: a constant `concurrency`
// requests are always in flight, each reissued on completion.
//
// Every generator draws randomness only from its own seeded pw::Rng and
// schedules only simulator events, so a traffic run is bit-reproducible:
// same (seed, spec, scenario) => identical event trace, on any platform
// and across SweepRunner thread counts. Generators capture `this` in
// simulator callbacks and must outlive the run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/units.h"
#include "pathways/client.h"
#include "pathways/program.h"
#include "sim/simulator.h"
#include "workload/admission_queue.h"
#include "workload/latency_recorder.h"

namespace pw::workload {

enum class ArrivalProcess {
  kPoisson,  // exponential gaps, mean 1/rate — memoryless user population
  kUniform,  // uniform gaps in [0, 2/rate) — same mean, bounded burstiness
  kBurst,    // bursts of `burst_size` arrivals `burst_gap` apart; the
             // exponential gap between bursts is sized so the whole
             // process keeps the configured mean rate
};

const char* ToString(ArrivalProcess process);

struct OpenLoopSpec {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double rate_per_sec = 1000.0;  // mean arrival rate
  int burst_size = 8;            // kBurst only
  Duration burst_gap = Duration::Micros(5);
  // Arrivals are generated in [start time, start time + horizon).
  Duration horizon = Duration::Millis(50);
  std::uint64_t seed = 1;
};

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(pathways::Client* client,
                    const pathways::PathwaysProgram* program,
                    OpenLoopSpec spec, AdmissionOptions admission = {});

  // Sink mode: each arrival invokes `on_arrival` (at the arrival's sim
  // time) instead of offering to an internal AdmissionQueue. This is how
  // the serving layer reuses the arrival processes — a ServingTenant draws
  // per-request token counts in its sink and offers to a Batcher, whose
  // admission happens at iteration boundaries rather than per program.
  OpenLoopGenerator(sim::Simulator* sim, OpenLoopSpec spec,
                    std::function<void()> on_arrival);

  OpenLoopGenerator(const OpenLoopGenerator&) = delete;
  OpenLoopGenerator& operator=(const OpenLoopGenerator&) = delete;

  // Schedules the first arrival; call once, then run the simulator.
  void Start();

  LatencyRecorder& recorder() { return recorder_; }
  // Queue-mode only; sink-mode generators have no admission queue.
  const AdmissionQueue& queue() const {
    PW_CHECK(queue_ != nullptr) << "sink-mode generator has no queue";
    return *queue_;
  }
  std::int64_t arrivals_generated() const { return generated_; }

 private:
  void ScheduleNext();
  Duration NextInterarrival();

  sim::Simulator* sim_;
  OpenLoopSpec spec_;
  Rng rng_;
  LatencyRecorder recorder_;
  std::unique_ptr<AdmissionQueue> queue_;  // null in sink mode
  std::function<void()> on_arrival_;       // null in queue mode
  TimePoint stop_at_;
  int burst_left_ = 0;
  std::int64_t generated_ = 0;
  bool started_ = false;
};

struct ClosedLoopSpec {
  int concurrency = 4;  // requests always in flight
  // New requests are issued while now < start time + horizon.
  Duration horizon = Duration::Millis(50);
  // Passed to Client::Submit when retry_executions is set.
  pathways::RetryPolicy retry;
  bool retry_executions = false;
};

class ClosedLoopGenerator {
 public:
  ClosedLoopGenerator(pathways::Client* client,
                      const pathways::PathwaysProgram* program,
                      ClosedLoopSpec spec);

  ClosedLoopGenerator(const ClosedLoopGenerator&) = delete;
  ClosedLoopGenerator& operator=(const ClosedLoopGenerator&) = delete;

  // Issues the initial `concurrency` requests; call once, then run.
  void Start();

  LatencyRecorder& recorder() { return recorder_; }
  int in_flight() const { return in_flight_; }

 private:
  void IssueOne();

  pathways::Client* client_;
  const pathways::PathwaysProgram* program_;
  ClosedLoopSpec spec_;
  LatencyRecorder recorder_;
  TimePoint stop_at_;
  int in_flight_ = 0;
  bool started_ = false;
};

}  // namespace pw::workload
