// Bounded per-client admission queue in front of a Pathways client.
//
// Requests wait in a FIFO of at most `capacity`; a dispatcher window keeps
// up to `max_outstanding` programs in flight through Client::Submit. An
// arrival that finds the queue full is handled by the shed policy:
//
//   * kDropTail        — shed on the spot (load-shedding serving tier);
//   * kRejectWithRetry — re-offered after the RetryPolicy's capped
//                        exponential backoff, shed once max_attempts offers
//                        have failed (admission control with client-side
//                        retry, the pattern that exercised the backoff
//                        overflow this module was built to regression-gate).
//
// All timing flows through the owning client's simulator, so a traffic run
// is exactly as deterministic as the simulation itself. The queue schedules
// simulator callbacks that capture `this`: it must outlive the run.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/units.h"
#include "pathways/client.h"
#include "pathways/program.h"
#include "workload/latency_recorder.h"

namespace pw::workload {

enum class ShedPolicy { kDropTail, kRejectWithRetry };

const char* ToString(ShedPolicy policy);

struct AdmissionOptions {
  // Waiting requests bound (excludes the in-flight window).
  std::size_t capacity = 16;
  // Programs in flight per client; > 1 lets the runtime pipeline.
  int max_outstanding = 2;
  ShedPolicy policy = ShedPolicy::kDropTail;
  // kRejectWithRetry's re-offer schedule (BackoffFor + max_attempts), and —
  // when retry_executions is set — the execution retry policy passed to
  // Client::Submit so device-failure aborts resubmit transparently.
  pathways::RetryPolicy retry;
  bool retry_executions = false;
};

class AdmissionQueue {
 public:
  // `recorder` receives every arrival/shed/completion event; all pointers
  // must outlive the queue.
  AdmissionQueue(pathways::Client* client,
                 const pathways::PathwaysProgram* program,
                 AdmissionOptions options, LatencyRecorder* recorder);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // One request arriving now. Returns false iff it was shed on the spot
  // (drop-tail overflow); a deferred re-offer returns true and may still
  // shed later.
  bool Offer();

  std::size_t depth() const { return waiting_.size(); }
  int outstanding() const { return outstanding_; }
  // True when nothing is waiting, in flight, or pending a re-offer.
  bool drained() const {
    return waiting_.empty() && outstanding_ == 0 && pending_reoffers_ == 0;
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  struct Request {
    TimePoint arrival;
    int offers = 1;  // admission attempts so far (1 = the arrival itself)
  };

  bool OfferInternal(Request req);
  void Pump();

  pathways::Client* client_;
  const pathways::PathwaysProgram* program_;
  AdmissionOptions options_;
  LatencyRecorder* recorder_;
  std::deque<Request> waiting_;
  int outstanding_ = 0;
  int pending_reoffers_ = 0;
};

}  // namespace pw::workload
