// Per-client record of one traffic run.
//
// Collects end-to-end request latency (arrival to result landing back on
// the client host) in a PercentileSampler, an arrival-sampled queue-depth
// Histogram, and goodput/shed counters. One recorder per tenant; Merge()
// folds tenants into a fleet-wide view for reporting.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/units.h"

namespace pw::workload {

class LatencyRecorder {
 public:
  // `queue_capacity` sizes the depth histogram: one unit-wide bucket per
  // possible waiting-queue depth 0..capacity.
  explicit LatencyRecorder(std::size_t queue_capacity = 64);

  // --- Event hooks (driven by the generators / admission queue) ---
  // A request arrived; `queue_depth` is the waiting-queue depth it found.
  void OnArrival(std::size_t queue_depth);
  // A full-queue arrival was deferred for a backoff re-offer.
  void OnAdmissionRetry() { ++admission_retries_; }
  // A request was shed (drop-tail overflow, or re-offer budget exhausted).
  void OnShed() { ++sheds_; }
  // A submitted request resolved. Latency is sampled only for successes;
  // failures (execution aborted and retries exhausted) count separately.
  void OnCompletion(Duration latency, bool failed);

  // Discards distribution state (latency samples, depth histogram) while
  // keeping the cumulative counters. Benches call this when their warmup
  // transient ends so percentiles and depth describe the same steady-state
  // window as their differenced counters.
  void BeginMeasurementWindow();

  // --- Counters ---
  std::int64_t arrivals() const { return arrivals_; }
  std::int64_t completions() const { return completions_; }  // goodput
  std::int64_t failures() const { return failures_; }
  std::int64_t sheds() const { return sheds_; }
  std::int64_t admission_retries() const { return admission_retries_; }
  // Fraction of arrivals shed; 0 when nothing arrived.
  double shed_fraction() const;

  // --- Distributions ---
  // Latency percentile in microseconds (p in [0,100]); 0 when empty.
  double LatencyUs(double percentile) {
    return latency_us_.Percentile(percentile);
  }
  PercentileSampler& latency_us() { return latency_us_; }
  const Histogram& queue_depth() const { return queue_depth_; }
  // Mean waiting-queue depth observed by arrivals. Depth samples are
  // integers in unit-width buckets, so this corrects the half-bucket
  // offset a raw midpoint estimate would carry.
  double MeanQueueDepth() const;

  // Folds `other` into this recorder: latency samples and counters always
  // merge; the depth histograms merge only when both recorders share a
  // queue_capacity (depth distributions over different capacities are not
  // comparable — e.g. a closed-loop tenant's capacity-1 recorder folded
  // into an open-loop fleet view keeps its latencies, drops its depths).
  void Merge(const LatencyRecorder& other);

 private:
  PercentileSampler latency_us_;
  Histogram queue_depth_;
  std::size_t queue_capacity_;
  std::int64_t arrivals_ = 0;
  std::int64_t completions_ = 0;
  std::int64_t failures_ = 0;
  std::int64_t sheds_ = 0;
  std::int64_t admission_retries_ = 0;
};

}  // namespace pw::workload
