#include "workload/traffic.h"

#include <algorithm>

#include "common/logging.h"
#include "pathways/runtime.h"

namespace pw::workload {

const char* ToString(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kBurst: return "burst";
  }
  return "unknown";
}

namespace {
sim::Simulator* SimOf(pathways::Client* client) {
  PW_CHECK(client != nullptr);
  return &client->runtime().simulator();
}
}  // namespace

namespace {
void CheckSpec(const OpenLoopSpec& spec) {
  PW_CHECK_GT(spec.rate_per_sec, 0.0);
  PW_CHECK_GT(spec.horizon.nanos(), 0);
  if (spec.process == ArrivalProcess::kBurst) {
    PW_CHECK_GT(spec.burst_size, 0);
    PW_CHECK_GE(spec.burst_gap.nanos(), 0);
  }
}
}  // namespace

OpenLoopGenerator::OpenLoopGenerator(pathways::Client* client,
                                     const pathways::PathwaysProgram* program,
                                     OpenLoopSpec spec,
                                     AdmissionOptions admission)
    : sim_(SimOf(client)),
      spec_(spec),
      rng_(spec.seed),
      recorder_(admission.capacity),
      queue_(std::make_unique<AdmissionQueue>(client, program, admission,
                                              &recorder_)) {
  CheckSpec(spec_);
}

OpenLoopGenerator::OpenLoopGenerator(sim::Simulator* sim, OpenLoopSpec spec,
                                     std::function<void()> on_arrival)
    : sim_(sim), spec_(spec), rng_(spec.seed), on_arrival_(std::move(on_arrival)) {
  PW_CHECK(sim_ != nullptr);
  PW_CHECK(on_arrival_ != nullptr);
  CheckSpec(spec_);
}

void OpenLoopGenerator::Start() {
  PW_CHECK(!started_) << "OpenLoopGenerator::Start called twice";
  started_ = true;
  stop_at_ = sim_->now() + spec_.horizon;
  ScheduleNext();
}

Duration OpenLoopGenerator::NextInterarrival() {
  const double mean_gap_s = 1.0 / spec_.rate_per_sec;
  switch (spec_.process) {
    case ArrivalProcess::kPoisson:
      return Duration::Seconds(rng_.NextExponential(mean_gap_s));
    case ArrivalProcess::kUniform:
      return Duration::Seconds(rng_.NextDouble(0.0, 2.0 * mean_gap_s));
    case ArrivalProcess::kBurst: {
      if (burst_left_ > 0) {
        --burst_left_;
        return spec_.burst_gap;
      }
      burst_left_ = spec_.burst_size - 1;
      // One cycle delivers burst_size arrivals and must average
      // burst_size/rate of elapsed time to preserve the mean rate, so the
      // exponential burst-start gap's mean is that cycle time minus the
      // (burst_size-1)*burst_gap already spent inside the burst (clamped:
      // a burst_gap so large the intra-burst time alone exceeds the cycle
      // budget degrades to back-to-back bursts below the requested rate).
      const double cycle_s = mean_gap_s * static_cast<double>(spec_.burst_size);
      const double intra_s = static_cast<double>(spec_.burst_size - 1) *
                             spec_.burst_gap.ToSeconds();
      return Duration::Seconds(
          rng_.NextExponential(std::max(cycle_s - intra_s, 0.0)));
    }
  }
  PW_CHECK(false) << "unreachable";
  return Duration::Zero();
}

void OpenLoopGenerator::ScheduleNext() {
  const TimePoint at = sim_->now() + NextInterarrival();
  if (at >= stop_at_) return;  // open loop ends; in-flight work drains
  sim_->ScheduleAt(at, [this] {
    ++generated_;
    if (queue_ != nullptr) {
      queue_->Offer();
    } else {
      on_arrival_();
    }
    ScheduleNext();
  });
}

ClosedLoopGenerator::ClosedLoopGenerator(
    pathways::Client* client, const pathways::PathwaysProgram* program,
    ClosedLoopSpec spec)
    : client_(client),
      program_(program),
      spec_(spec),
      recorder_(/*queue_capacity=*/1) {
  PW_CHECK(client != nullptr && program != nullptr);
  PW_CHECK_GT(spec_.concurrency, 0);
  PW_CHECK_GT(spec_.horizon.nanos(), 0);
}

void ClosedLoopGenerator::Start() {
  PW_CHECK(!started_) << "ClosedLoopGenerator::Start called twice";
  started_ = true;
  stop_at_ = client_->runtime().simulator().now() + spec_.horizon;
  for (int i = 0; i < spec_.concurrency; ++i) IssueOne();
}

void ClosedLoopGenerator::IssueOne() {
  sim::Simulator& sim = client_->runtime().simulator();
  if (sim.now() >= stop_at_) return;
  // A closed loop never queues client-side: depth is always 0.
  recorder_.OnArrival(/*queue_depth=*/0);
  ++in_flight_;
  const TimePoint issued = sim.now();
  client_->Submit(
      program_,
      [this, issued, &sim](const pathways::ExecutionResult& result) {
        --in_flight_;
        recorder_.OnCompletion(sim.now() - issued, result.failed);
        IssueOne();
      },
      spec_.retry_executions ? std::optional(spec_.retry) : std::nullopt);
}

}  // namespace pw::workload
