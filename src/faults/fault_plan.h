// Declarative, deterministic fault schedules.
//
// A FaultPlan is an ordered list of fault events — device crashes (with
// optional recovery), straggler windows, NIC bandwidth degradation, and
// DCN partition windows — with simulated-time injection points. Plans are
// plain data: building one schedules nothing. A FaultInjector arms a plan
// against a cluster/runtime, turning each event into ordinary simulator
// events, so a faulted run is exactly as bit-reproducible as a fault-free
// one (see docs/FAULTS.md for the determinism contract).
//
// Random(seed, shape, spec) generates a seeded plan from the repo's own
// deterministic Rng: the same (seed, shape, spec) triple always yields the
// same plan on every platform, which is what the property/fuzz test layer
// and the fault sweep bench key on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/device.h"
#include "net/dcn.h"

namespace pw::faults {

enum class FaultKind {
  kDeviceCrash,   // fail-stop crash, optional recovery after `duration`
  kStraggler,     // compute multiplier `severity` (> 1 = slower) for `duration`
  kLinkDegrade,   // NIC bandwidth scaled by `severity` (< 1) for `duration`
  kPartition,     // host cut off the DCN for `duration`
};

const char* ToString(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceCrash;
  TimePoint at;                   // injection time
  Duration duration = Duration::Zero();  // window; Zero = no recovery event
  hw::DeviceId device;            // kDeviceCrash / kStraggler target
  net::HostId host;               // kLinkDegrade / kPartition target
  double severity = 1.0;          // multiplier (straggler) or scale (link)

  bool recovers() const { return duration > Duration::Zero(); }
  TimePoint recovery_at() const { return at + duration; }
  std::string ToString() const;
};

// Shape of the target cluster, used by Random() so plans can be generated
// without holding a cluster (sweep points build their clusters later).
struct ClusterShape {
  int num_devices = 0;
  int num_hosts = 0;
};

class FaultPlan {
 public:
  // --- Builder interface (fluent, in any time order; Arm() sorts) ---
  FaultPlan& CrashDevice(hw::DeviceId dev, TimePoint at,
                         Duration down_for = Duration::Zero());
  FaultPlan& SlowDevice(hw::DeviceId dev, TimePoint at, Duration window,
                        double multiplier);
  FaultPlan& DegradeHostLink(net::HostId host, TimePoint at, Duration window,
                             double bandwidth_scale);
  FaultPlan& PartitionHost(net::HostId host, TimePoint at, Duration window);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  // Events sorted by (at, insertion order) — the order Arm() schedules them.
  std::vector<FaultEvent> Sorted() const;

  // --- Seeded random plans (property tests, fault sweeps) ---
  struct RandomSpec {
    int device_crashes = 2;
    int stragglers = 2;
    int link_degrades = 1;
    int partitions = 0;
    // Injection times are uniform in [0, horizon); windows uniform in
    // [min_window, max_window].
    Duration horizon = Duration::Millis(10);
    Duration min_window = Duration::Micros(200);
    Duration max_window = Duration::Millis(2);
    double max_straggler_multiplier = 4.0;  // drawn from (1, max]
    double min_bandwidth_scale = 0.25;      // drawn from [min, 1)
    // If true every crash recovers (duration > 0); otherwise ~1 in 4 crashes
    // is permanent.
    bool always_recover = true;
  };
  static FaultPlan Random(std::uint64_t seed, const ClusterShape& shape,
                          const RandomSpec& spec);

  // Die-on-invalid sanity check against a concrete shape (targets in range,
  // sane severities). Arm() calls this.
  void Validate(const ClusterShape& shape) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace pw::faults
