#include "faults/fault_plan.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace pw::faults {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceCrash: return "device-crash";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kLinkDegrade: return "link-degrade";
    case FaultKind::kPartition: return "partition";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::ostringstream out;
  out << faults::ToString(kind) << " @" << at.ToMicros() << "us";
  switch (kind) {
    case FaultKind::kDeviceCrash:
    case FaultKind::kStraggler:
      out << " dev" << device.value();
      break;
    case FaultKind::kLinkDegrade:
    case FaultKind::kPartition:
      out << " host" << host.value();
      break;
  }
  if (kind == FaultKind::kStraggler || kind == FaultKind::kLinkDegrade) {
    out << " x" << severity;
  }
  if (recovers()) {
    out << " for " << duration.ToMicros() << "us";
  } else if (kind == FaultKind::kDeviceCrash) {
    out << " (permanent)";
  }
  return out.str();
}

FaultPlan& FaultPlan::CrashDevice(hw::DeviceId dev, TimePoint at,
                                  Duration down_for) {
  FaultEvent e;
  e.kind = FaultKind::kDeviceCrash;
  e.at = at;
  e.duration = down_for;
  e.device = dev;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::SlowDevice(hw::DeviceId dev, TimePoint at,
                                 Duration window, double multiplier) {
  PW_CHECK_GT(multiplier, 0.0);
  PW_CHECK_GT(window.nanos(), 0) << "straggler windows must end";
  FaultEvent e;
  e.kind = FaultKind::kStraggler;
  e.at = at;
  e.duration = window;
  e.device = dev;
  e.severity = multiplier;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::DegradeHostLink(net::HostId host, TimePoint at,
                                      Duration window, double bandwidth_scale) {
  PW_CHECK_GT(bandwidth_scale, 0.0);
  PW_CHECK_GT(window.nanos(), 0) << "degradation windows must end";
  FaultEvent e;
  e.kind = FaultKind::kLinkDegrade;
  e.at = at;
  e.duration = window;
  e.host = host;
  e.severity = bandwidth_scale;
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::PartitionHost(net::HostId host, TimePoint at,
                                    Duration window) {
  PW_CHECK_GT(window.nanos(), 0) << "partitions must heal (held messages "
                                    "would otherwise never deliver)";
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.at = at;
  e.duration = window;
  e.host = host;
  events_.push_back(e);
  return *this;
}

std::vector<FaultEvent> FaultPlan::Sorted() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return sorted;
}

FaultPlan FaultPlan::Random(std::uint64_t seed, const ClusterShape& shape,
                            const RandomSpec& spec) {
  PW_CHECK_GT(shape.num_devices, 0);
  PW_CHECK_GT(shape.num_hosts, 0);
  PW_CHECK_GT(spec.horizon.nanos(), 0);
  PW_CHECK_GE(spec.max_window.nanos(), spec.min_window.nanos());
  Rng rng(seed);
  FaultPlan plan;
  auto draw_time = [&] {
    return TimePoint() + Duration::Nanos(static_cast<std::int64_t>(
                             rng.NextBounded(static_cast<std::uint64_t>(
                                 spec.horizon.nanos()))));
  };
  auto draw_window = [&] {
    const std::int64_t span = spec.max_window.nanos() - spec.min_window.nanos();
    const std::int64_t extra =
        span == 0 ? 0
                  : static_cast<std::int64_t>(rng.NextBounded(
                        static_cast<std::uint64_t>(span + 1)));
    return Duration::Nanos(spec.min_window.nanos() + extra);
  };
  auto draw_device = [&] {
    return hw::DeviceId(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(shape.num_devices))));
  };
  auto draw_host = [&] {
    return net::HostId(static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(shape.num_hosts))));
  };
  // Each draw lands in a named local before the builder call: sibling
  // function arguments have unspecified evaluation order in C++, and the
  // cross-platform "same seed, same plan" contract requires a fixed Rng
  // consumption order.
  for (int i = 0; i < spec.device_crashes; ++i) {
    const bool permanent = !spec.always_recover && rng.NextBounded(4) == 0;
    const hw::DeviceId dev = draw_device();
    const TimePoint at = draw_time();
    const Duration window = permanent ? Duration::Zero() : draw_window();
    plan.CrashDevice(dev, at, window);
  }
  for (int i = 0; i < spec.stragglers; ++i) {
    const double mult =
        rng.NextDouble(1.0 + 1e-3, spec.max_straggler_multiplier);
    const hw::DeviceId dev = draw_device();
    const TimePoint at = draw_time();
    const Duration window = draw_window();
    plan.SlowDevice(dev, at, window, mult);
  }
  for (int i = 0; i < spec.link_degrades; ++i) {
    const double scale = rng.NextDouble(spec.min_bandwidth_scale, 1.0);
    const net::HostId host = draw_host();
    const TimePoint at = draw_time();
    const Duration window = draw_window();
    plan.DegradeHostLink(host, at, window, scale);
  }
  for (int i = 0; i < spec.partitions; ++i) {
    const net::HostId host = draw_host();
    const TimePoint at = draw_time();
    const Duration window = draw_window();
    plan.PartitionHost(host, at, window);
  }
  return plan;
}

void FaultPlan::Validate(const ClusterShape& shape) const {
  for (const FaultEvent& e : events_) {
    PW_CHECK_GE(e.at.nanos(), 0) << "fault scheduled before t=0";
    switch (e.kind) {
      case FaultKind::kDeviceCrash:
      case FaultKind::kStraggler:
        PW_CHECK(e.device.valid() && e.device.value() < shape.num_devices)
            << "fault targets unknown device " << e.device;
        break;
      case FaultKind::kLinkDegrade:
      case FaultKind::kPartition:
        PW_CHECK(e.host.valid() && e.host.value() < shape.num_hosts)
            << "fault targets unknown host " << e.host;
        break;
    }
    PW_CHECK_GT(e.severity, 0.0);
  }
}

}  // namespace pw::faults
