// FaultInjector: arms a FaultPlan against a cluster (and optionally a
// Pathways runtime), turning declarative fault events into simulator events.
//
// What each fault does once armed:
//   * kDeviceCrash — hw::Device::Fail() (fail-stop: stream discarded), the
//     resource manager marks the device failed and remaps virtual devices
//     to island spares, and every in-flight ProgramExecution placed on the
//     device is aborted (its gangs are dropped, parked collective peers are
//     released, clients see failed=true and can retry). Recovery reverses
//     the device and resource-manager state; remapped virtual devices stay
//     on their spares.
//   * kStraggler — Device::set_compute_multiplier(severity) for the window.
//   * kLinkDegrade — DcnFabric::SetNicBandwidthScale(host, severity). On
//     the abstract fabric this throttles the host's NIC link; in flow mode
//     (DcnClosParams::enabled) it scales that host's Clos access links and
//     re-solves the max-min rates of every in-flight flow crossing them,
//     so the degrade bites shared paths, not a scalar (docs/NETWORK.md).
//   * kPartition — DcnFabric::SetPartitioned(host): messages touching the
//     host are held and replayed at heal time in original submission
//     order (per-(src,dst) FIFO holds even when both endpoints partition
//     and heal at different times).
//
// Determinism contract: an injector armed with an *empty* plan schedules no
// events and perturbs nothing — the run is bit-identical to one without an
// injector (regression-gated by sim_determinism_test). A non-empty plan is
// itself deterministic: same plan, same scenario => same event trace.
//
// Typical use:
//
//   faults::FaultPlan plan;
//   plan.CrashDevice(hw::DeviceId(3), TimePoint() + Duration::Millis(2),
//                    /*down_for=*/Duration::Millis(5));
//   faults::FaultInjector injector(cluster.get(), &runtime, plan);
//   injector.Arm();
//   ... run the workload with Client::RunWithRetry ...
//   injector.stats().recovery_latency_us.mean();
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "faults/fault_plan.h"
#include "hw/cluster.h"
#include "pathways/runtime.h"

namespace pw::faults {

// Counters exported by the injector (common::stats accumulators for the
// latency-style metrics). recovery_latency_us samples, per device crash,
// the time from the crash to the next *successful* execution completion —
// the end-to-end "system is doing useful work again" latency including
// abort, remap, client backoff, and resubmission.
struct FaultStats {
  std::int64_t device_failures = 0;
  std::int64_t device_recoveries = 0;
  std::int64_t straggler_windows = 0;
  std::int64_t link_degrades = 0;
  std::int64_t partitions = 0;
  // Executions aborted by crash events this injector fired.
  std::int64_t executions_aborted = 0;
  RunningStat recovery_latency_us;
  RunningStat device_downtime_us;
};

class FaultInjector {
 public:
  // `runtime` may be null for hardware-only experiments: crashes then skip
  // the resource-manager/abort steps and only drive the device state
  // machine. The plan is validated against the cluster shape on Arm().
  FaultInjector(hw::Cluster* cluster, pathways::PathwaysRuntime* runtime,
                FaultPlan plan);
  // Unregisters the recovery-latency observer; the injector must therefore
  // not outlive the runtime it was given.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every plan event (sorted by injection time). Call once,
  // before running the simulator past the earliest event. An empty plan
  // schedules nothing.
  void Arm();
  bool armed() const { return armed_; }

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  bool device_up(hw::DeviceId dev) const {
    return !cluster_->device(dev).failed();
  }

 private:
  void Apply(const FaultEvent& e);
  void Revert(const FaultEvent& e);

  hw::Cluster* cluster_;
  pathways::PathwaysRuntime* runtime_;  // may be null
  FaultPlan plan_;
  FaultStats stats_;
  bool armed_ = false;
  std::int64_t observer_token_ = -1;
  // Crash times awaiting the next successful completion (recovery latency),
  // and per-device down-since times (downtime).
  std::vector<TimePoint> pending_recovery_;
  std::map<hw::DeviceId, TimePoint> down_since_;
  // Latest horizon per faulted target: overlapping windows of the same
  // kind on the same target merge — the effect reverts only once the union
  // of windows has passed (for overlapping stragglers/degrades the last
  // applied severity wins until then), and a permanent crash
  // (TimePoint::FromNanos(INT64_MAX)) is never revived by a later
  // recovering window.
  std::map<hw::DeviceId, TimePoint> down_until_;
  std::map<hw::DeviceId, TimePoint> straggler_until_;
  std::map<net::HostId, TimePoint> degrade_until_;
  std::map<net::HostId, TimePoint> partition_until_;
};

}  // namespace pw::faults
