#include "faults/fault_injector.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/logging.h"

namespace pw::faults {

FaultInjector::FaultInjector(hw::Cluster* cluster,
                             pathways::PathwaysRuntime* runtime,
                             FaultPlan plan)
    : cluster_(cluster), runtime_(runtime), plan_(std::move(plan)) {
  PW_CHECK(cluster != nullptr);
  if (runtime_ != nullptr) {
    // Recovery-latency probe: the first successful completion after one or
    // more crashes closes the books on all of them. Pure bookkeeping — the
    // observer schedules no simulator events, so registering it never
    // perturbs a fault-free run.
    observer_token_ = runtime_->AddExecutionObserver(
        [this](pathways::ExecutionId, bool success) {
          if (!success || pending_recovery_.empty()) return;
          const TimePoint now = cluster_->simulator().now();
          for (const TimePoint failed_at : pending_recovery_) {
            stats_.recovery_latency_us.Add((now - failed_at).ToMicros());
          }
          pending_recovery_.clear();
        });
  }
}

FaultInjector::~FaultInjector() {
  // The observer captures `this`; drop it so an injector with a shorter
  // lifetime than its runtime leaves no dangling callback behind.
  if (runtime_ != nullptr && observer_token_ >= 0) {
    runtime_->RemoveExecutionObserver(observer_token_);
  }
}

void FaultInjector::Arm() {
  PW_CHECK(!armed_) << "FaultInjector::Arm called twice";
  armed_ = true;
  plan_.Validate(ClusterShape{cluster_->num_devices(), cluster_->num_hosts()});
  sim::Simulator& sim = cluster_->simulator();
  for (const FaultEvent& e : plan_.Sorted()) {
    sim.ScheduleAt(e.at, [this, e] { Apply(e); });
    if (e.recovers()) {
      sim.ScheduleAt(e.recovery_at(), [this, e] { Revert(e); });
    }
  }
}

void FaultInjector::Apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kDeviceCrash: {
      constexpr TimePoint kForever = TimePoint::FromNanos(INT64_MAX);
      const TimePoint until = e.recovers() ? e.recovery_at() : kForever;
      hw::Device& dev = cluster_->device(e.device);
      if (dev.failed()) {
        // Overlapping crash windows merge: stay down until the last one.
        TimePoint& horizon = down_until_[e.device];
        horizon = std::max(horizon, until);
        break;
      }
      down_until_[e.device] = until;
      dev.Fail();
      ++stats_.device_failures;
      down_since_[e.device] = cluster_->simulator().now();
      pending_recovery_.push_back(cluster_->simulator().now());
      if (runtime_ != nullptr) {
        // Order matters: remap first so retries triggered by the aborts
        // below re-lower against the spare mapping.
        (void)runtime_->resource_manager().MarkDeviceFailed(e.device);
        stats_.executions_aborted +=
            runtime_->AbortExecutionsUsing(e.device);
      }
      break;
    }
    case FaultKind::kStraggler: {
      // Overlapping windows merge: last applied severity wins, the effect
      // outlasts the union of windows.
      TimePoint& horizon = straggler_until_[e.device];
      horizon = std::max(horizon, e.recovery_at());
      cluster_->device(e.device).set_compute_multiplier(e.severity);
      ++stats_.straggler_windows;
      break;
    }
    case FaultKind::kLinkDegrade: {
      TimePoint& horizon = degrade_until_[e.host];
      horizon = std::max(horizon, e.recovery_at());
      cluster_->dcn().SetNicBandwidthScale(e.host, e.severity);
      ++stats_.link_degrades;
      break;
    }
    case FaultKind::kPartition: {
      TimePoint& horizon = partition_until_[e.host];
      horizon = std::max(horizon, e.recovery_at());
      cluster_->dcn().SetPartitioned(e.host, true);
      ++stats_.partitions;
      break;
    }
  }
}

void FaultInjector::Revert(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::kDeviceCrash: {
      hw::Device& dev = cluster_->device(e.device);
      if (!dev.failed()) break;  // already recovered by an earlier window
      // A later overlapping window extended the outage: this revert is not
      // the last word, let the later window's revert do the recovery.
      if (cluster_->simulator().now() < down_until_[e.device]) break;
      dev.Recover();
      ++stats_.device_recoveries;
      auto it = down_since_.find(e.device);
      if (it != down_since_.end()) {
        stats_.device_downtime_us.Add(
            (cluster_->simulator().now() - it->second).ToMicros());
        down_since_.erase(it);
      }
      if (runtime_ != nullptr) {
        (void)runtime_->resource_manager().MarkDeviceRecovered(e.device);
      }
      break;
    }
    case FaultKind::kStraggler:
      // A later overlapping window extended the effect: not the last word.
      if (cluster_->simulator().now() < straggler_until_[e.device]) break;
      cluster_->device(e.device).set_compute_multiplier(1.0);
      break;
    case FaultKind::kLinkDegrade:
      if (cluster_->simulator().now() < degrade_until_[e.host]) break;
      cluster_->dcn().SetNicBandwidthScale(e.host, 1.0);
      break;
    case FaultKind::kPartition:
      if (cluster_->simulator().now() < partition_until_[e.host]) break;
      cluster_->dcn().SetPartitioned(e.host, false);
      break;
  }
}

}  // namespace pw::faults
