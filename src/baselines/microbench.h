// Shared vocabulary for the paper's §5.1 dispatch-overhead micro-benchmark.
//
// The workload: "a trivial gang-scheduled computation containing a single
// AllReduce of a scalar followed by a scalar addition, feeding the output of
// one computation to the input of the next". Three enqueue modes:
//   OpByOp  (-O): one user-level call per computation.
//   Chained (-C): one call executes a chain of 128 nodes (system-side chain).
//   Fused   (-F): one call executes a single node containing a chain of 128
//                 computations (compiler-side fusion).
#pragma once

#include "common/units.h"

namespace pw::baselines {

enum class CallMode { kOpByOp, kChained, kFused };

inline const char* CallModeName(CallMode m) {
  switch (m) {
    case CallMode::kOpByOp: return "O";
    case CallMode::kChained: return "C";
    case CallMode::kFused: return "F";
  }
  return "?";
}

struct MicrobenchSpec {
  CallMode mode = CallMode::kOpByOp;
  int chain_length = 128;  // nodes per call for -C / computations per node for -F
  // Device time of the scalar addition part of one computation; the
  // AllReduce part is charged by each system's own collective model.
  Duration unit_compute = Duration::Micros(1);
  // Measurement window (simulated time).
  Duration warmup = Duration::Millis(20);
  Duration measure = Duration::Millis(200);
  // How many user-level calls may be in flight at once (async dispatch
  // pipelining; 1 reproduces a strictly synchronous client).
  int max_inflight_calls = 8;
};

struct MicrobenchResult {
  double computations_per_sec = 0;
  double calls_per_sec = 0;
};

}  // namespace pw::baselines
