// TensorFlow-v1-style single-controller baseline (paper §2, Fig. 1b/1c).
//
// One coordinator drives workers over the DCN with the pathologies the
// paper attributes to TF1:
//   * the full sharded graph is materialized: per-run control messages are
//     emitted per *device* (M x N edges, no compact sharded representation);
//   * gang order is enforced by a centralized barrier implemented with
//     control edges: the coordinator releases computation k+1 only after
//     every worker acked computation k — no parallel dispatch;
//   * there is no device object store: results return to the client after
//     each call (device→host PCIe + DCN), which hurts OpByOp throughput.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "baselines/microbench.h"
#include "common/rng.h"
#include "hw/cluster.h"
#include "sim/serial_resource.h"

namespace pw::baselines {

class Tf1SingleController {
 public:
  explicit Tf1SingleController(hw::Cluster* cluster);

  MicrobenchResult Measure(const MicrobenchSpec& spec);

  Duration UnitKernelTime(const MicrobenchSpec& spec) const;

 private:
  void StartCall();
  void RunComputation(int remaining_in_call);
  void FinishCall();
  std::shared_ptr<hw::CollectiveGroup> NewGroup();

  hw::Cluster* cluster_;
  Rng rng_;
  MicrobenchSpec spec_;
  std::unique_ptr<hw::Host> coordinator_host_;
  std::unique_ptr<sim::SerialResource> coordinator_;
  std::int64_t group_counter_ = 0;
  std::int64_t computations_done_ = 0;
  bool counting_ = false;
  bool running_ = false;
};

}  // namespace pw::baselines
