#include "baselines/tf1.h"

#include <string>

#include "common/logging.h"

namespace pw::baselines {

Tf1SingleController::Tf1SingleController(hw::Cluster* cluster)
    : cluster_(cluster), rng_(cluster->params().seed ^ 0x7f7f) {
  PW_CHECK_EQ(cluster_->num_islands(), 1);
  coordinator_host_ = std::make_unique<hw::Host>(
      &cluster_->simulator(), net::HostId(cluster_->num_hosts() + 500),
      cluster_->params(), &cluster_->dcn());
  coordinator_ = std::make_unique<sim::SerialResource>(&cluster_->simulator(),
                                                       "tf_coordinator");
}

Duration Tf1SingleController::UnitKernelTime(const MicrobenchSpec& spec) const {
  return cluster_->island(0).collectives().AllReduce(4, cluster_->num_devices()) +
         spec.unit_compute;
}

std::shared_ptr<hw::CollectiveGroup> Tf1SingleController::NewGroup() {
  return std::make_shared<hw::CollectiveGroup>(
      &cluster_->simulator(), &cluster_->island(0).collectives(),
      net::CollectiveKind::kAllReduce, cluster_->num_devices(),
      "tf_step" + std::to_string(group_counter_++));
}

void Tf1SingleController::StartCall() {
  if (!running_) return;
  // session.run: client-side graph pruning + RPC issue.
  coordinator_->Submit(cluster_->params().client_rpc_cost, [this] {
    const int per_call =
        spec_.mode == CallMode::kOpByOp ? 1 : spec_.chain_length;
    RunComputation(per_call);
  });
}

void Tf1SingleController::RunComputation(int remaining_in_call) {
  // One gang-scheduled computation: per-device control messages (full
  // materialized graph — one edge per shard), then kernels, then the
  // centralized barrier: every device acks before the next computation.
  const hw::SystemParams& params = cluster_->params();
  const bool fused = spec_.mode == CallMode::kFused;
  const Duration body =
      fused ? UnitKernelTime(spec_) * (spec_.chain_length - 1) : Duration::Zero();
  auto group = NewGroup();
  auto barrier = std::make_shared<sim::CountdownLatch>(
      &cluster_->simulator(), cluster_->num_devices());
  barrier->done().Then([this, remaining_in_call, fused](const sim::Unit&) {
    // Barrier acks return over the DCN before the coordinator proceeds.
    cluster_->simulator().Schedule(cluster_->params().dcn.latency,
                                   [this, remaining_in_call, fused] {
      if (counting_) {
        computations_done_ += fused ? spec_.chain_length : 1;
      }
      if (remaining_in_call > 1) {
        RunComputation(remaining_in_call - 1);
      } else {
        FinishCall();
      }
    });
  });
  for (int d = 0; d < cluster_->num_devices(); ++d) {
    hw::Device& dev = cluster_->device(d);
    hw::Host& worker = cluster_->host_of(dev.id());
    coordinator_->Submit(params.coordinator_msg_cost, [this, &dev, &worker,
                                                       group, barrier, body] {
      coordinator_host_->SendDcn(worker.id(), 256, [this, &dev, &worker, group,
                                                    barrier, body] {
        hw::KernelDesc kernel;
        kernel.label = "tf_op";
        kernel.client = 0;
        kernel.collective = group;
        kernel.collective_bytes = 4;
        kernel.post_time = spec_.unit_compute + body;
        worker
            .DispatchKernel(&dev, std::move(kernel),
                            cluster_->params().host_kernel_dispatch_cost)
            .Then([barrier](const sim::Unit&) { barrier->CountDown(); });
      });
    });
  }
}

void Tf1SingleController::FinishCall() {
  // No device object store: the (scalar) result is fetched back to the
  // client before the next call — device→host PCIe + DCN to the client.
  hw::Host& worker = cluster_->host_of(cluster_->device(0).id());
  worker.pcie(cluster_->device(0).id()).Transfer(4, [this, &worker] {
    worker.SendDcn(coordinator_host_->id(), 64, [this] { StartCall(); });
  });
}

MicrobenchResult Tf1SingleController::Measure(const MicrobenchSpec& spec) {
  spec_ = spec;
  computations_done_ = 0;
  counting_ = false;
  running_ = true;
  StartCall();
  sim::Simulator& sim = cluster_->simulator();
  sim.RunFor(spec_.warmup);
  counting_ = true;
  sim.RunFor(spec_.measure);
  counting_ = false;
  running_ = false;
  sim.Run();  // drain the in-flight call
  MicrobenchResult result;
  result.computations_per_sec =
      static_cast<double>(computations_done_) / spec_.measure.ToSeconds();
  const int per_call = spec_.mode == CallMode::kOpByOp ? 1 : spec_.chain_length;
  result.calls_per_sec = result.computations_per_sec / per_call;
  return result;
}

}  // namespace pw::baselines
