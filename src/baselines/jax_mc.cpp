#include "baselines/jax_mc.h"

#include <string>

#include "common/logging.h"

namespace pw::baselines {

JaxMultiController::JaxMultiController(hw::Cluster* cluster)
    : cluster_(cluster), rng_(cluster->params().seed ^ 0x9a9a) {
  PW_CHECK_EQ(cluster_->num_islands(), 1)
      << "multi-controller JAX cannot span islands (XLA collectives are "
      << "ICI-only; the paper's motivation for Pathways)";
  controllers_.reserve(static_cast<std::size_t>(cluster_->num_hosts()));
  for (int h = 0; h < cluster_->num_hosts(); ++h) {
    HostController hc;
    hc.host = &cluster_->host(h);
    hc.python = std::make_unique<sim::SerialResource>(
        &cluster_->simulator(), "python" + std::to_string(h));
    controllers_.push_back(std::move(hc));
  }
}

Duration JaxMultiController::UnitKernelTime(const MicrobenchSpec& spec) const {
  const net::CollectiveModel& model = cluster_->island(0).collectives();
  return model.AllReduce(/*bytes=*/4, cluster_->num_devices()) +
         spec.unit_compute;
}

std::shared_ptr<hw::CollectiveGroup> JaxMultiController::GroupForStep(
    std::int64_t step) {
  auto& slot = groups_[step];
  if (slot == nullptr) {
    slot = std::make_shared<hw::CollectiveGroup>(
        &cluster_->simulator(), &cluster_->island(0).collectives(),
        net::CollectiveKind::kAllReduce, cluster_->num_devices(),
        "jax_step" + std::to_string(step));
  }
  return slot;
}

void JaxMultiController::PumpHost(HostController* hc,
                                  const MicrobenchSpec& spec) {
  if (hc->inflight >= spec.max_inflight_calls) return;
  ++hc->inflight;
  const std::int64_t step = hc->next_step++;
  const hw::SystemParams& params = cluster_->params();

  // Interpreter overhead for the user-level call, jittered.
  const Duration python = params.python_call_overhead *
                          (1.0 + rng_.NextExponential(params.host_jitter_frac));
  // Note: `spec` outlives all events (Measure keeps a member copy).
  hc->python->Submit(python, [this, hc, step, &spec] {
    const hw::SystemParams& p = cluster_->params();
    // The call covers `n_computations` device computations:
    //   OpByOp: 1 per call;  Fused: chain_length fused into one kernel.
    const bool fused = spec.mode == CallMode::kFused;
    const int n_computations = fused ? spec.chain_length : 1;
    // Fused chains keep the collectives inside one kernel: one gang
    // rendezvous, then (chain_length - 1) more unit computations of fused
    // execution.
    const Duration fused_body =
        fused ? (UnitKernelTime(spec) * (n_computations - 1)) : Duration::Zero();
    auto latch = std::make_shared<sim::CountdownLatch>(
        &cluster_->simulator(), static_cast<int>(hc->host->devices().size()));
    latch->done().Then([this, hc, &spec](const sim::Unit&) {
      --hc->inflight;
      if (counting_) ++gang_steps_done_;
      PumpHost(hc, spec);
    });
    for (hw::Device* dev : hc->host->devices()) {
      hw::KernelDesc kernel;
      kernel.label = fused ? "jax_fused" : "jax_op";
      kernel.client = 0;
      kernel.pre_time = Duration::Zero();
      kernel.collective = GroupForStep(step);
      kernel.collective_bytes = 4;
      kernel.post_time = spec.unit_compute + fused_body;
      hc->host->DispatchKernel(dev, std::move(kernel),
                               p.host_kernel_dispatch_cost)
          .Then([latch](const sim::Unit&) { latch->CountDown(); });
    }
    // Python proceeds to the next call immediately (async dispatch).
    PumpHost(hc, spec);
  });
}

MicrobenchResult JaxMultiController::Measure(const MicrobenchSpec& spec) {
  PW_CHECK(spec.mode != CallMode::kChained)
      << "there is no analog of Chained for a multi-controller (paper §5.1)";
  spec_ = spec;  // keep alive for in-flight event lambdas
  sim::Simulator& sim = cluster_->simulator();
  gang_steps_done_ = 0;
  counting_ = false;
  for (auto& hc : controllers_) PumpHost(&hc, spec_);
  sim.RunFor(spec_.warmup);
  counting_ = true;
  sim.RunFor(spec_.measure);
  counting_ = false;
  const double secs = spec_.measure.ToSeconds();
  // Every host counts each gang step once; normalize to whole-gang steps.
  const double gangs =
      static_cast<double>(gang_steps_done_) / cluster_->num_hosts();
  const int per_call = spec_.mode == CallMode::kFused ? spec_.chain_length : 1;
  MicrobenchResult result;
  result.calls_per_sec = gangs / secs;
  result.computations_per_sec = gangs * per_call / secs;
  return result;
}

}  // namespace pw::baselines
