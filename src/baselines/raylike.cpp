#include "baselines/raylike.h"

#include <string>

#include "common/logging.h"

namespace pw::baselines {

RayLike::RayLike(hw::Cluster* cluster, RayParams ray_params)
    : cluster_(cluster), ray_(ray_params), rng_(cluster->params().seed ^ 0x3c3c) {
  driver_host_ = std::make_unique<hw::Host>(
      &cluster_->simulator(), net::HostId(cluster_->num_hosts() + 700),
      cluster_->params(), &cluster_->dcn());
  actors_.reserve(static_cast<std::size_t>(cluster_->num_hosts()));
  for (int h = 0; h < cluster_->num_hosts(); ++h) {
    actors_.push_back(std::make_unique<sim::SerialResource>(
        &cluster_->simulator(), "actor" + std::to_string(h)));
  }
}

Duration RayLike::UnitCollectiveTime() const {
  // NCCL ring over the DCN across all GPUs (each its own "island" here, so
  // use the GPU cluster's per-island model which is DCN-parameterized).
  return cluster_->island(0).collectives().AllReduce(4, cluster_->num_hosts());
}

std::shared_ptr<hw::CollectiveGroup> RayLike::NewGroup() {
  return std::make_shared<hw::CollectiveGroup>(
      &cluster_->simulator(), &cluster_->island(0).collectives(),
      net::CollectiveKind::kAllReduce, cluster_->num_hosts(),
      "ray_step" + std::to_string(group_counter_++));
}

void RayLike::StartCall() {
  if (!running_) return;
  // Driver submits the gang of actor methods: one DCN message per actor.
  const int per_call = spec_.mode == CallMode::kOpByOp ? 1 : spec_.chain_length;
  driver_host_->cpu().Submit(Duration::Micros(50), [this, per_call] {
    RunStep(per_call);
  });
}

void RayLike::RunStep(int remaining_in_call) {
  const bool fused = spec_.mode == CallMode::kFused;
  const Duration body =
      fused ? (UnitCollectiveTime() + spec_.unit_compute) * (spec_.chain_length - 1)
            : Duration::Zero();
  auto group = NewGroup();
  auto all_done = std::make_shared<sim::CountdownLatch>(
      &cluster_->simulator(), cluster_->num_hosts());
  const bool chained = spec_.mode == CallMode::kChained;
  all_done->done().Then([this, remaining_in_call, fused,
                         chained](const sim::Unit&) {
    if (counting_) computations_done_ += fused ? spec_.chain_length : 1;
    if (remaining_in_call > 1) {
      // Chained: the next method is already scheduled on the actors via
      // future-passing; only per-step actor overhead recurs, no driver RTT.
      RunStep(remaining_in_call - 1);
      return;
    }
    // Final result handle returns to the driver.
    cluster_->host(0).SendDcn(driver_host_->id(), 64, [this] { StartCall(); });
  });

  for (int h = 0; h < cluster_->num_hosts(); ++h) {
    hw::Host& host = cluster_->host(h);
    hw::Device* gpu = host.devices().front();
    const Duration invoke =
        ray_.actor_call_overhead *
        (1.0 + rng_.NextExponential(cluster_->params().host_jitter_frac));
    auto run_method = [this, &host, gpu, group, body, all_done, invoke] {
      actors_[static_cast<std::size_t>(host.id().value())]->Submit(
          invoke, [this, &host, gpu, group, body, all_done] {
            hw::KernelDesc kernel;
            kernel.label = "ray_allreduce";
            kernel.client = 0;
            kernel.collective = group;
            kernel.collective_bytes = 4;
            kernel.post_time = spec_.unit_compute + body;
            host.DispatchKernel(gpu, std::move(kernel),
                                cluster_->params().host_kernel_dispatch_cost)
                .Then([this, &host, gpu, all_done](const sim::Unit&) {
                  // No GPU object store: result copies device→DRAM before
                  // the object handle is returned.
                  host.pcie(gpu->id()).Transfer(
                      ray_.result_bytes, [this, &host, all_done] {
                        host.cpu().Submit(ray_.object_store_put, [all_done] {
                          all_done->CountDown();
                        });
                      });
                });
          });
    };
    if (spec_.mode == CallMode::kOpByOp) {
      // Fresh driver→actor message per step.
      driver_host_->SendDcn(host.id(), 128, run_method);
    } else {
      // Chained/Fused: methods were shipped once; subsequent steps fire
      // locally on the actor.
      run_method();
    }
  }
}

MicrobenchResult RayLike::Measure(const MicrobenchSpec& spec) {
  spec_ = spec;
  computations_done_ = 0;
  counting_ = false;
  running_ = true;
  StartCall();
  sim::Simulator& sim = cluster_->simulator();
  sim.RunFor(spec_.warmup);
  counting_ = true;
  sim.RunFor(spec_.measure);
  counting_ = false;
  running_ = false;
  sim.Run();
  MicrobenchResult result;
  result.computations_per_sec =
      static_cast<double>(computations_done_) / spec_.measure.ToSeconds();
  const int per_call = spec_.mode == CallMode::kOpByOp ? 1 : spec_.chain_length;
  result.calls_per_sec = result.computations_per_sec / per_call;
  return result;
}

}  // namespace pw::baselines
