// Ray-style actor baseline on GPU VMs (paper §5.1 evaluation setup: Ray
// v1.3 + PyTorch on p3.2xlarge, one V100 per host, DCN-connected).
//
// Each host runs a long-lived actor; a driver invokes actor methods that
// execute PyTorch AllReduces. The costs the paper calls out:
//   * actor-method invocation overhead (general-purpose Python actors);
//   * no on-GPU object store: "Ray must transfer the result of a
//     computation from GPU to DRAM before returning the object handle";
//   * collectives ride NCCL rings over the DCN (no fast interconnect).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/microbench.h"
#include "common/rng.h"
#include "hw/cluster.h"
#include "sim/serial_resource.h"

namespace pw::baselines {

struct RayParams {
  Duration actor_call_overhead = Duration::Micros(300);  // schedule + deserialize
  Duration object_store_put = Duration::Micros(50);
  Bytes result_bytes = 4;  // scalar result copied GPU->DRAM
};

class RayLike {
 public:
  explicit RayLike(hw::Cluster* cluster, RayParams ray_params = {});

  MicrobenchResult Measure(const MicrobenchSpec& spec);

  Duration UnitCollectiveTime() const;

 private:
  void StartCall();
  void RunStep(int remaining_in_call);
  std::shared_ptr<hw::CollectiveGroup> NewGroup();

  hw::Cluster* cluster_;
  RayParams ray_;
  Rng rng_;
  MicrobenchSpec spec_;
  std::unique_ptr<hw::Host> driver_host_;
  std::vector<std::unique_ptr<sim::SerialResource>> actors_;  // per host
  std::int64_t group_counter_ = 0;
  std::int64_t computations_done_ = 0;
  bool counting_ = false;
  bool running_ = false;
};

}  // namespace pw::baselines
