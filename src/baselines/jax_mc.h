// JAX-style multi-controller baseline (paper §2, Fig. 1a).
//
// One controller per host runs an identical copy of the user program.
// Each user-level call pays interpreter overhead on the host ("transitions
// to Python for every computation"), then enqueues kernels for the host's
// local devices over PCIe — there is no cross-host control plane at all;
// hosts coordinate only through the gang collective inside the kernels.
// Dispatch is asynchronous: a controller keeps up to `max_inflight_calls`
// steps enqueued ahead, so throughput is min(python rate, device rate) —
// the low-dispatch-latency behaviour Pathways has to match.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "baselines/microbench.h"
#include "common/rng.h"
#include "hw/cluster.h"
#include "sim/serial_resource.h"

namespace pw::baselines {

class JaxMultiController {
 public:
  explicit JaxMultiController(hw::Cluster* cluster);

  // Runs the micro-benchmark across all devices of the cluster and returns
  // steady-state throughput. Drives the cluster's simulator.
  MicrobenchResult Measure(const MicrobenchSpec& spec);

  // Per-step gang time on the device for one computation (collective +
  // scalar add), exposed for calibration and tests.
  Duration UnitKernelTime(const MicrobenchSpec& spec) const;

 private:
  struct HostController {
    hw::Host* host = nullptr;
    std::unique_ptr<sim::SerialResource> python;
    int inflight = 0;
    std::int64_t next_step = 0;
  };

  void PumpHost(HostController* hc, const MicrobenchSpec& spec);
  std::shared_ptr<hw::CollectiveGroup> GroupForStep(std::int64_t step);

  hw::Cluster* cluster_;
  Rng rng_;
  MicrobenchSpec spec_;
  std::vector<HostController> controllers_;
  std::map<std::int64_t, std::shared_ptr<hw::CollectiveGroup>> groups_;
  std::int64_t gang_steps_done_ = 0;
  bool counting_ = false;
};

}  // namespace pw::baselines
