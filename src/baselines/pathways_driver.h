// Drives the Pathways runtime through the §5.1 micro-benchmark so it can be
// compared head-to-head with the baselines (Fig. 5/6/8).
//
//   PW-O: one single-node program per call; the client waits for the output
//         handles of each call before issuing the next (the overhead source
//         the paper names for OpByOp).
//   PW-C: one traced program per call containing a chain of `chain_length`
//         nodes; the runtime executes the chain back-to-back from C++.
//   PW-F: one single-node program whose node fuses `chain_length`
//         computations (same kernel shape as JAX-F).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/microbench.h"
#include "hw/cluster.h"
#include "pathways/pathways.h"

namespace pw::baselines {

class PathwaysDriver {
 public:
  // Constructs a runtime over `cluster` (single island) with one client.
  PathwaysDriver(hw::Cluster* cluster, pathways::PathwaysOptions options = {});

  MicrobenchResult Measure(const MicrobenchSpec& spec);

  Duration UnitKernelTime(const MicrobenchSpec& spec) const;
  pathways::PathwaysRuntime& runtime() { return *runtime_; }
  pathways::Client* client() { return client_; }

 private:
  void Pump();
  std::unique_ptr<pathways::PathwaysProgram> BuildProgram(
      const MicrobenchSpec& spec);

  hw::Cluster* cluster_;
  std::unique_ptr<pathways::PathwaysRuntime> runtime_;
  pathways::Client* client_;
  pathways::VirtualSlice slice_;
  MicrobenchSpec spec_;
  std::unique_ptr<pathways::PathwaysProgram> program_;
  int inflight_ = 0;
  std::int64_t computations_done_ = 0;
  bool counting_ = false;
  bool running_ = false;
};

}  // namespace pw::baselines
