#include "baselines/pathways_driver.h"

#include "common/logging.h"

namespace pw::baselines {

PathwaysDriver::PathwaysDriver(hw::Cluster* cluster,
                               pathways::PathwaysOptions options)
    : cluster_(cluster) {
  runtime_ = std::make_unique<pathways::PathwaysRuntime>(cluster, options);
  client_ = runtime_->CreateClient();
  slice_ = client_->AllocateSlice(cluster_->num_devices()).value();
}

Duration PathwaysDriver::UnitKernelTime(const MicrobenchSpec& spec) const {
  return cluster_->island(0).collectives().AllReduce(4, cluster_->num_devices()) +
         spec.unit_compute;
}

std::unique_ptr<pathways::PathwaysProgram> PathwaysDriver::BuildProgram(
    const MicrobenchSpec& spec) {
  using xlasim::CompiledFunction;
  const int shards = cluster_->num_devices();
  pathways::ProgramBuilder pb("micro");
  switch (spec.mode) {
    case CallMode::kOpByOp: {
      auto fn = CompiledFunction::Synthetic("op", shards, spec.unit_compute,
                                            net::CollectiveKind::kAllReduce, 4);
      pb.Call(fn, slice_, {});
      break;
    }
    case CallMode::kChained: {
      auto fn = CompiledFunction::Synthetic("link", shards, spec.unit_compute,
                                            net::CollectiveKind::kAllReduce, 4);
      pathways::ValueRef v = pb.Call(fn, slice_, {});
      for (int i = 1; i < spec.chain_length; ++i) {
        v = pb.Call(fn, slice_, {v});
      }
      pb.Result(v);
      break;
    }
    case CallMode::kFused: {
      // One kernel: a single rendezvous then the fused chain body — the same
      // kernel shape the JAX baseline compiles (collectives stay on-device).
      const Duration body =
          spec.unit_compute + UnitKernelTime(spec) * (spec.chain_length - 1);
      auto fn = CompiledFunction::Synthetic("fused", shards, body,
                                            net::CollectiveKind::kAllReduce, 4);
      pb.Call(fn, slice_, {});
      break;
    }
  }
  return std::make_unique<pathways::PathwaysProgram>(std::move(pb).Build());
}

void PathwaysDriver::Pump() {
  if (!running_) return;
  const int window =
      spec_.mode == CallMode::kOpByOp ? 1 : spec_.max_inflight_calls;
  while (inflight_ < window) {
    ++inflight_;
    client_->Run(program_.get())
        .Then([this](const pathways::ExecutionResult& result) {
          --inflight_;
          if (counting_) {
            computations_done_ += spec_.mode == CallMode::kOpByOp
                                      ? 1
                                      : spec_.chain_length;
          }
          // Micro-benchmark results are scalars: release immediately.
          for (const auto& out : result.outputs) {
            runtime_->object_store().Release(out.id);
          }
          Pump();
        });
  }
}

MicrobenchResult PathwaysDriver::Measure(const MicrobenchSpec& spec) {
  spec_ = spec;
  program_ = BuildProgram(spec_);
  computations_done_ = 0;
  counting_ = false;
  running_ = true;
  Pump();
  sim::Simulator& sim = cluster_->simulator();
  sim.RunFor(spec_.warmup);
  counting_ = true;
  sim.RunFor(spec_.measure);
  counting_ = false;
  running_ = false;
  sim.Run();
  MicrobenchResult result;
  result.computations_per_sec =
      static_cast<double>(computations_done_) / spec_.measure.ToSeconds();
  const int per_call = spec_.mode == CallMode::kOpByOp ? 1 : spec_.chain_length;
  result.calls_per_sec = result.computations_per_sec / per_call;
  return result;
}

}  // namespace pw::baselines
