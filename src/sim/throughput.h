// Throughput measurement helper for benchmarks: counts completions during a
// measurement window of simulated time, excluding a warm-up prefix so
// steady-state rates are reported (the paper reports steady-state
// computations/sec and tokens/sec).
#pragma once

#include <cstdint>

#include "common/logging.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace pw::sim {

class ThroughputMeter {
 public:
  explicit ThroughputMeter(Simulator* sim) : sim_(sim) {}

  // Begins the measurement window at the current simulated time.
  void StartWindow() {
    window_start_ = sim_->now();
    count_ = 0;
    started_ = true;
  }

  // Records one completed unit (a computation, a token batch, ...).
  void Count(std::int64_t n = 1) {
    if (started_) count_ += n;
  }

  std::int64_t count() const { return count_; }

  // Units per second over the window ending now.
  double RatePerSecond() const {
    PW_CHECK(started_);
    const Duration elapsed = sim_->now() - window_start_;
    PW_CHECK_GT(elapsed.nanos(), 0);
    return static_cast<double>(count_) / elapsed.ToSeconds();
  }

 private:
  Simulator* sim_;
  TimePoint window_start_;
  std::int64_t count_ = 0;
  bool started_ = false;
};

}  // namespace pw::sim
